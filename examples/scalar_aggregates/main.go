// scalar_aggregates demonstrates the JoinOnKeys scalar special case
// (§IV.B / §V.B) on TPC-DS Q09: fifteen scalar subqueries over the same
// fact table with different range predicates collapse into a single scan
// with fifteen masked aggregates — the paper's largest class of wins
// (3–6x latency, 60–85%% fewer bytes at Athena's scale).
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/engine"
	"repro/internal/tpcds"
)

func main() {
	st, err := tpcds.NewLoadedStore(0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	baseline := engine.OpenWithStore(st, engine.Config{EnableFusion: false})
	fused := engine.OpenWithStore(st, engine.Config{EnableFusion: true})

	q09, _ := tpcds.Get("q09")

	basePlan, _ := baseline.Explain(q09.SQL)
	fusedPlan, _ := fused.Explain(q09.SQL)
	fmt.Printf("baseline plan scans store_sales %d times\n", strings.Count(basePlan, "Scan store_sales"))
	fmt.Printf("fused plan scans store_sales %d times\n\n", strings.Count(fusedPlan, "Scan store_sales"))

	baseRes, err := baseline.Query(q09.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fusedRes, err := fused.Query(q09.SQL)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("result row (5 CASE buckets):")
	for i, col := range fusedRes.Columns {
		fmt.Printf("  %-8s = %s\n", col, fusedRes.Rows[0][i])
	}
	fmt.Printf("\nbaseline: %v, %d bytes\n", baseRes.Metrics.Elapsed, baseRes.Metrics.Storage.BytesScanned)
	fmt.Printf("fused:    %v, %d bytes (%.0f%% fewer)\n",
		fusedRes.Metrics.Elapsed, fusedRes.Metrics.Storage.BytesScanned,
		100*(1-float64(fusedRes.Metrics.Storage.BytesScanned)/float64(baseRes.Metrics.Storage.BytesScanned)))
	fmt.Printf("rules: %v\n", fusedRes.RulesFired)

	// Also run Q28, which exercises the MarkDistinct fusion path (§III.F).
	q28, _ := tpcds.Get("q28")
	r28, err := fused.Query(q28.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQ28 (DISTINCT aggregates through MarkDistinct fusion) fired: %v\n", r28.RulesFired)
}
