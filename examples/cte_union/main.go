// cte_union reproduces the paper's §I second motivating example: a CTE
// referenced by two UNION ALL branches with different filters. The baseline
// engine evaluates the CTE twice; the UnionAllFusion rule evaluates it once
// and restores each branch with compensating filters (or, for contradictory
// filters, a plain disjunction).
package main

import (
	"fmt"
	"log"

	"repro/engine"
	"repro/internal/tpcds"
)

const query = `
WITH cte AS (
  SELECT c_customer_id, c_first_name, c_last_name, SUM(ss_net_profit) AS profit
  FROM customer, store_sales
  WHERE c_customer_sk = ss_customer_sk
  GROUP BY c_customer_id, c_first_name, c_last_name)
SELECT c_customer_id FROM cte WHERE c_first_name = 'John'
UNION ALL
SELECT c_customer_id FROM cte WHERE c_last_name = 'Smith'`

func main() {
	st, err := tpcds.NewLoadedStore(0.1, 42)
	if err != nil {
		log.Fatal(err)
	}
	baseline := engine.OpenWithStore(st, engine.Config{EnableFusion: false})
	fused := engine.OpenWithStore(st, engine.Config{EnableFusion: true})

	baseRes, err := baseline.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fusedRes, err := fused.Query(query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rows: baseline=%d fused=%d (must match)\n", len(baseRes.Rows), len(fusedRes.Rows))
	fmt.Printf("bytes scanned: baseline=%d fused=%d (%.0f%% saved)\n",
		baseRes.Metrics.Storage.BytesScanned, fusedRes.Metrics.Storage.BytesScanned,
		100*(1-float64(fusedRes.Metrics.Storage.BytesScanned)/float64(baseRes.Metrics.Storage.BytesScanned)))
	fmt.Printf("latency: baseline=%v fused=%v\n", baseRes.Metrics.Elapsed, fusedRes.Metrics.Elapsed)
	fmt.Printf("rules fired: %v\n\n", fusedRes.RulesFired)

	plan, _ := fused.Explain(query)
	fmt.Println("fused plan (one scan of the CTE, tag-compensated):")
	fmt.Print(plan)
}
