// Quickstart: declare a schema, load rows, run SQL, and see what the
// fusion optimizer does to a query with a duplicated common expression.
package main

import (
	"fmt"
	"log"

	"repro/engine"
)

func main() {
	// 1. Declare a catalog.
	cat := engine.NewCatalog()
	cat.MustAdd(&engine.Table{
		Name: "orders",
		Columns: []engine.Column{
			{Name: "o_id", Type: engine.KindInt64},
			{Name: "o_customer", Type: engine.KindString},
			{Name: "o_region", Type: engine.KindString},
			{Name: "o_amount", Type: engine.KindFloat64},
		},
	})

	// 2. Open an engine with the paper's fusion rules enabled and load rows.
	eng := engine.Open(cat, engine.Config{EnableFusion: true})
	rows := [][]engine.Value{
		{engine.Int(1), engine.String("ada"), engine.String("west"), engine.Float(120)},
		{engine.Int(2), engine.String("bob"), engine.String("east"), engine.Float(80)},
		{engine.Int(3), engine.String("ada"), engine.String("west"), engine.Float(45)},
		{engine.Int(4), engine.String("cyd"), engine.String("east"), engine.Float(210)},
		{engine.Int(5), engine.String("bob"), engine.String("west"), engine.Float(30)},
		{engine.Int(6), engine.String("ada"), engine.String("east"), engine.Float(95)},
	}
	if err := eng.Load("orders", rows); err != nil {
		log.Fatal(err)
	}

	// 3. A query with a common subexpression: per-region totals joined back
	// to the overall picture. The same aggregation feeds both sides.
	query := `
		WITH region_totals AS (
		  SELECT o_region, SUM(o_amount) AS total
		  FROM orders GROUP BY o_region)
		SELECT a.o_region, a.total
		FROM region_totals a, region_totals b
		WHERE a.o_region = b.o_region AND a.total > 100
		ORDER BY a.o_region`

	res, err := eng.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("results:")
	for _, row := range res.Rows {
		fmt.Printf("  %s  %s\n", row[0], row[1])
	}
	fmt.Printf("\nfusion rules fired: %v\n", res.RulesFired)
	fmt.Printf("bytes scanned: %d\n", res.Metrics.Storage.BytesScanned)

	// 4. EXPLAIN shows the single-scan plan the JoinOnKeys rule produced.
	plan, err := eng.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noptimized plan:")
	fmt.Print(plan)
}
