// groupby_join_window walks through the paper's headline rewrite
// (GroupByJoinToWindow, §IV.A) on TPC-DS Q65: an aggregation joined back to
// its own input becomes a window function over a single evaluation,
// roughly halving both latency and bytes scanned.
package main

import (
	"fmt"
	"log"

	"repro/engine"
	"repro/internal/tpcds"
)

func main() {
	st, err := tpcds.NewLoadedStore(0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	baseline := engine.OpenWithStore(st, engine.Config{EnableFusion: false})
	fused := engine.OpenWithStore(st, engine.Config{EnableFusion: true})

	q65, _ := tpcds.Get("q65")
	fmt.Println("TPC-DS Q65 (the paper's §I motivating variant):")
	fmt.Println(q65.SQL)

	basePlan, _ := baseline.Explain(q65.SQL)
	fusedPlan, _ := fused.Explain(q65.SQL)
	fmt.Println("\n--- baseline plan (store_sales scanned twice) ---")
	fmt.Print(basePlan)
	fmt.Println("\n--- fused plan (one scan + window) ---")
	fmt.Print(fusedPlan)

	baseRes, err := baseline.Query(q65.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fusedRes, err := fused.Query(q65.SQL)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrows: baseline=%d fused=%d\n", len(baseRes.Rows), len(fusedRes.Rows))
	fmt.Printf("latency: baseline=%v fused=%v (%.1fx)\n",
		baseRes.Metrics.Elapsed, fusedRes.Metrics.Elapsed,
		float64(baseRes.Metrics.Elapsed)/float64(fusedRes.Metrics.Elapsed))
	fmt.Printf("bytes: baseline=%d fused=%d (%.0f%% reduction; paper reports ~50%%)\n",
		baseRes.Metrics.Storage.BytesScanned, fusedRes.Metrics.Storage.BytesScanned,
		100*(1-float64(fusedRes.Metrics.Storage.BytesScanned)/float64(baseRes.Metrics.Storage.BytesScanned)))
}
