// fusion_vs_spooling contrasts the paper's contribution with its §I
// comparator on TPC-DS Q95 (a CTE that self-joins a fact table, referenced
// by two IN-subqueries): spooling materializes the CTE once and re-reads
// it; fusion eliminates the duplicate entirely. The same query runs on
// four engine configurations sharing one store.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/engine"
	"repro/internal/tpcds"
)

func main() {
	st, err := tpcds.NewLoadedStore(0.2, 42)
	if err != nil {
		log.Fatal(err)
	}
	modes := []struct {
		name string
		cfg  engine.Config
	}{
		{"baseline", engine.Config{}},
		{"spooling", engine.Config{EnableSpooling: true}},
		{"fusion", engine.Config{EnableFusion: true}},
		{"fusion+spooling", engine.Config{EnableFusion: true, EnableSpooling: true}},
	}

	q95, _ := tpcds.Get("q95")
	fmt.Println("TPC-DS Q95: two IN-subqueries over a self-joined CTE (ws_wh)")
	fmt.Println()
	fmt.Printf("%-16s %10s %14s %12s %12s %6s\n",
		"mode", "latency", "bytes scanned", "spool write", "spool read", "rows")
	for _, m := range modes {
		eng := engine.OpenWithStore(st, m.cfg)
		res, err := eng.Query(q95.SQL)
		if err != nil {
			log.Fatalf("%s: %v", m.name, err)
		}
		fmt.Printf("%-16s %10v %14d %12d %12d %6d\n",
			m.name, res.Metrics.Elapsed.Round(10_000), res.Metrics.Storage.BytesScanned,
			res.Metrics.SpoolBytesWritten, res.Metrics.SpoolBytesRead, len(res.Rows))
	}

	fmt.Println()
	fused := engine.OpenWithStore(st, engine.Config{EnableFusion: true})
	plan, _ := fused.Explain(q95.SQL)
	fmt.Printf("fused plan evaluates ws_wh %s:\n",
		map[bool]string{true: "once", false: "several times"}[strings.Count(plan, "Scan web_sales") <= 3])
	fmt.Print(plan)
}
