// Command benchrunner regenerates the paper's evaluation artifacts:
// Figure 1 (latency improvement per selected query), Figure 2 (fraction of
// data read vs baseline), the whole-workload summary, and auxiliary
// CPU/memory metrics.
//
// Usage:
//
//	benchrunner                      # everything at default scale
//	benchrunner -figure 1            # just Figure 1
//	benchrunner -q q65,q09           # specific queries
//	benchrunner -scale 0.5 -iters 5  # bigger data, steadier timings
//	benchrunner -exec BENCH_exec.json  # row-at-a-time vs vectorized comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.2, "data scale factor (1.0 ≈ 100k fact rows)")
		seed   = flag.Int64("seed", 42, "data generator seed")
		iters  = flag.Int("iters", 3, "timing iterations per query per engine")
		figure = flag.Int("figure", 0, "render only figure 1 or 2 (0 = everything)")
		qlist  = flag.String("q", "", "comma-separated query names (default: whole workload)")

		execOut       = flag.String("exec", "", "write a row-at-a-time vs vectorized execution comparison to this JSON file and exit")
		aggOut        = flag.String("agg", "", "write a serial vs partition-wise parallel aggregation comparison to this JSON file and exit")
		sharedOut     = flag.String("shared", "", "write a concurrent shared-vs-unshared scan comparison to this JSON file and exit")
		spillOut      = flag.String("spill", "", "write an unlimited-vs-memory-budget spill comparison to this JSON file and exit")
		maskOut       = flag.String("mask", "", "write a naive-vs-family mask kernel comparison to this JSON file and exit")
		pipelineOut   = flag.String("pipeline", "", "write a pull-vs-push pipeline execution comparison to this JSON file and exit")
		sharedExecOut = flag.String("sharedexec", "", "write a concurrent shared-execution vs independent-run comparison to this JSON file and exit")
		serviceOut    = flag.String("service", "", "write a multi-tenant service vs no-queue baseline comparison to this JSON file and exit")
		rescacheOut   = flag.String("rescache", "", "write a repeated-dashboard result-cache comparison to this JSON file and exit")
		skipOut       = flag.String("skip", "", "write a data-skipping vs no-skip comparison to this JSON file and exit")
		parallelism   = flag.Int("parallelism", 4, "workers for the parallel side of -exec/-agg/-shared")
		batchSize     = flag.Int("batch", 1024, "rows per batch for the parallel side of -exec/-agg/-shared")
		concurrency   = flag.Int("concurrency", 4, "concurrent query workers for -shared")
		cacheBytes    = flag.Int64("scancache", 0, "decoded-chunk cache bound in bytes for -shared (0 = default)")
	)
	flag.Parse()

	if *execOut != "" {
		runExecComparison(*execOut, bench.ExecOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: *parallelism, BatchSize: *batchSize,
			Queries: splitList(*qlist),
		})
		return
	}
	if *aggOut != "" {
		runAggComparison(*aggOut, bench.AggOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: *parallelism, BatchSize: *batchSize,
			Queries: splitList(*qlist),
		})
		return
	}
	if *spillOut != "" {
		runSpillComparison(*spillOut, bench.SpillOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: *parallelism, BatchSize: *batchSize,
			Queries: splitList(*qlist),
		})
		return
	}
	if *maskOut != "" {
		runMaskComparison(*maskOut, bench.MaskOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: *parallelism, BatchSize: *batchSize,
			Queries: splitList(*qlist),
		})
		return
	}
	if *pipelineOut != "" {
		// -pipeline defaults parallelism to the hardware's (see
		// bench.DefaultPipelineOptions) unless the flag was set explicitly —
		// the other comparisons' fixed default of 4 would measure scheduler
		// thrash on smaller machines.
		par := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "parallelism" {
				par = *parallelism
			}
		})
		runPipelineComparison(*pipelineOut, bench.PipelineOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: par, BatchSize: *batchSize,
			Queries: splitList(*qlist),
		})
		return
	}
	if *sharedExecOut != "" {
		// -sharedexec uses the testgen catalog (the shared-execution
		// differential's store) rather than TPC-DS: the wave queries are
		// generated per client count, so -q does not apply.
		opts := bench.DefaultSharedExecOptions()
		opts.Seed = *seed
		opts.Iterations = *iters
		opts.Parallelism = *parallelism
		opts.BatchSize = *batchSize
		runSharedExecComparison(*sharedExecOut, opts)
		return
	}
	if *serviceOut != "" {
		// -service also uses the testgen catalog: the mixed-tenant query
		// list is generated per connection, so -q does not apply.
		opts := bench.DefaultServiceOptions()
		opts.Seed = *seed
		opts.Iterations = *iters
		opts.Parallelism = *parallelism
		opts.BatchSize = *batchSize
		runServiceComparison(*serviceOut, opts)
		return
	}
	if *rescacheOut != "" {
		// -rescache uses a fixed dashboard query set over TPC-DS tables, so
		// -q does not apply; -iters maps to refresh waves.
		opts := bench.DefaultRescacheOptions()
		opts.Scale = *scale
		opts.Seed = *seed
		opts.Parallelism = *parallelism
		opts.BatchSize = *batchSize
		if *iters > 1 {
			opts.Waves = *iters
		}
		runRescacheComparison(*rescacheOut, opts)
		return
	}
	if *skipOut != "" {
		// -skip uses a dedicated clustered store (zone maps cannot prune a
		// uniformly random layout), so -scale and -q do not apply.
		opts := bench.DefaultSkipOptions()
		opts.Seed = *seed
		opts.Iterations = *iters
		opts.Parallelism = *parallelism
		opts.BatchSize = *batchSize
		runSkipComparison(*skipOut, opts)
		return
	}
	if *sharedOut != "" {
		runSharedComparison(*sharedOut, bench.SharedOptions{
			Scale: *scale, Seed: *seed, Iterations: *iters,
			Parallelism: *parallelism, BatchSize: *batchSize,
			Concurrency: *concurrency, CacheBytes: *cacheBytes,
			Queries: splitList(*qlist),
		})
		return
	}

	opts := bench.Options{Scale: *scale, Seed: *seed, Iterations: *iters}
	if *qlist != "" {
		opts.Queries = strings.Split(*qlist, ",")
	}

	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and running %s...\n",
		*scale, queriesLabel(opts.Queries))
	report, err := bench.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}

	switch *figure {
	case 1:
		report.WriteFigure1(os.Stdout)
	case 2:
		report.WriteFigure2(os.Stdout)
	default:
		report.WriteFigure1(os.Stdout)
		fmt.Println()
		report.WriteFigure2(os.Stdout)
		fmt.Println()
		report.WriteCPUAndMemory(os.Stdout)
		fmt.Println()
		report.WriteSpoolComparison(os.Stdout)
		fmt.Println()
		report.WriteSummary(os.Stdout)
	}
}

func runExecComparison(path string, opts bench.ExecOptions) {
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing execution models on %s...\n",
		opts.Scale, queriesLabel(opts.Queries))
	cmp, err := bench.RunExecComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runAggComparison(path string, opts bench.AggOptions) {
	if len(opts.Queries) == 0 {
		opts.Queries = bench.DefaultAggQueries
	}
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing aggregation parallelism on %s...\n",
		opts.Scale, queriesLabel(opts.Queries))
	cmp, err := bench.RunAggComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runSharedComparison(path string, opts bench.SharedOptions) {
	if len(opts.Queries) == 0 {
		opts.Queries = bench.DefaultSharedQueries
	}
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing %d concurrent workers with scan sharing off/on over %s...\n",
		opts.Scale, opts.Concurrency, queriesLabel(opts.Queries))
	cmp, err := bench.RunSharedComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runSharedExecComparison(path string, opts bench.SharedExecOptions) {
	fmt.Fprintf(os.Stderr, "generating %d fact rows and comparing waves of %v concurrent clients with shared execution off/on...\n",
		opts.Rows, opts.Clients)
	cmp, err := bench.RunSharedExecComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runRescacheComparison(path string, opts bench.RescacheOptions) {
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and refreshing the dashboard %d times with the result cache off and on...\n",
		opts.Scale, opts.Waves)
	cmp, err := bench.RunRescacheComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runSkipComparison(path string, opts bench.SkipOptions) {
	fmt.Fprintf(os.Stderr, "generating %d clustered fact rows and comparing data skipping off and on over the selective and join waves...\n",
		opts.Rows)
	cmp, err := bench.RunSkipComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runServiceComparison(path string, opts bench.ServiceOptions) {
	fmt.Fprintf(os.Stderr, "generating %d fact rows and comparing %v client connections through the service vs a no-queue baseline...\n",
		opts.Rows, opts.Connections)
	cmp, err := bench.RunServiceComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runMaskComparison(path string, opts bench.MaskOptions) {
	if len(opts.Queries) == 0 {
		opts.Queries = bench.DefaultMaskQueries
	}
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing naive vs mask-family evaluation on %s...\n",
		opts.Scale, queriesLabel(opts.Queries))
	cmp, err := bench.RunMaskComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runPipelineComparison(path string, opts bench.PipelineOptions) {
	if len(opts.Queries) == 0 {
		opts.Queries = bench.DefaultPipelineQueries
	}
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing pull vs push pipeline execution on %s...\n",
		opts.Scale, queriesLabel(opts.Queries))
	cmp, err := bench.RunPipelineComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func runSpillComparison(path string, opts bench.SpillOptions) {
	if len(opts.Queries) == 0 {
		opts.Queries = bench.DefaultSpillQueries
	}
	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and comparing unlimited vs budgeted memory on %s...\n",
		opts.Scale, queriesLabel(opts.Queries))
	cmp, err := bench.RunSpillComparison(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	defer f.Close()
	if err := cmp.WriteJSON(f); err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}
	cmp.WriteTable(os.Stdout)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

func queriesLabel(qs []string) string {
	if len(qs) == 0 {
		return "the full workload"
	}
	return strings.Join(qs, ", ")
}
