// Command benchrunner regenerates the paper's evaluation artifacts:
// Figure 1 (latency improvement per selected query), Figure 2 (fraction of
// data read vs baseline), the whole-workload summary, and auxiliary
// CPU/memory metrics.
//
// Usage:
//
//	benchrunner                      # everything at default scale
//	benchrunner -figure 1            # just Figure 1
//	benchrunner -q q65,q09           # specific queries
//	benchrunner -scale 0.5 -iters 5  # bigger data, steadier timings
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.2, "data scale factor (1.0 ≈ 100k fact rows)")
		seed   = flag.Int64("seed", 42, "data generator seed")
		iters  = flag.Int("iters", 3, "timing iterations per query per engine")
		figure = flag.Int("figure", 0, "render only figure 1 or 2 (0 = everything)")
		qlist  = flag.String("q", "", "comma-separated query names (default: whole workload)")
	)
	flag.Parse()

	opts := bench.Options{Scale: *scale, Seed: *seed, Iterations: *iters}
	if *qlist != "" {
		opts.Queries = strings.Split(*qlist, ",")
	}

	fmt.Fprintf(os.Stderr, "generating TPC-DS data at scale %.2f and running %s...\n",
		*scale, queriesLabel(opts.Queries))
	report, err := bench.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchrunner:", err)
		os.Exit(1)
	}

	switch *figure {
	case 1:
		report.WriteFigure1(os.Stdout)
	case 2:
		report.WriteFigure2(os.Stdout)
	default:
		report.WriteFigure1(os.Stdout)
		fmt.Println()
		report.WriteFigure2(os.Stdout)
		fmt.Println()
		report.WriteCPUAndMemory(os.Stdout)
		fmt.Println()
		report.WriteSpoolComparison(os.Stdout)
		fmt.Println()
		report.WriteSummary(os.Stdout)
	}
}

func queriesLabel(qs []string) string {
	if len(qs) == 0 {
		return "the full workload"
	}
	return strings.Join(qs, ", ")
}
