package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/engine"
	"repro/internal/service"
	"repro/internal/tpcds"
)

// serveMain is `athenalite serve`: load the dataset once, open one resident
// ShareExec engine, and put the multi-tenant service's wire front end on a
// TCP address. SIGINT/SIGTERM triggers a graceful drain: queued and running
// queries finish, new ones are rejected, then the engine shuts down.
func serveMain(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	var (
		addr       = fs.String("addr", "127.0.0.1:4141", "listen address")
		scale      = fs.Float64("scale", 0.1, "data scale factor")
		window     = fs.Duration("window", 25*time.Millisecond, "shared-execution admission window")
		queueDepth = fs.Int("queue", 256, "global admission queue depth")
		tenantConc = fs.Int("tenant-concurrency", 4, "max concurrent queries per tenant")
		tenantMem  = fs.Int64("tenant-memory", 0, "per-tenant memory budget in bytes (0 = uncapped)")
		memLimit   = fs.Int64("memlimit", 0, "engine memory limit in bytes (0 = unlimited)")
		qtimeout   = fs.Duration("queue-timeout", 30*time.Second, "max time a query may wait in the queue")
		rescache   = fs.Int64("rescache", 64<<20, "semantic result-cache budget in bytes (0 = off)")
	)
	fs.Parse(args)

	fmt.Fprintf(os.Stderr, "loading TPC-DS data at scale %.2f...\n", *scale)
	st, err := tpcds.NewLoadedStore(*scale, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cfg := engine.Config{
		ShareExec:        true,
		AdmissionWindow:  *window,
		ShareScans:       true,
		ResultCacheBytes: *rescache,
	}
	if *memLimit > 0 {
		cfg.MemoryLimitBytes = *memLimit
		dir, err := os.MkdirTemp("", "athenalite-spill-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer os.RemoveAll(dir)
		cfg.SpillDir = dir
	}
	eng := engine.OpenWithStore(st, cfg)
	srv := service.New(eng, service.Config{
		QueueDepth:        *queueDepth,
		TenantConcurrency: *tenantConc,
		TenantMemoryBytes: *tenantMem,
		QueueTimeout:      *qtimeout,
	})
	ns := service.NewNetServer(srv)
	if err := ns.Listen(*addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("athenalite service listening on %s (window %v, queue %d, tenant concurrency %d)\n",
		ns.Addr(), *window, *queueDepth, *tenantConc)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "draining...")
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := ns.Shutdown(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "drain:", err)
	}
	if err := eng.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "engine close:", err)
	}
	stats := srv.Stats()
	fmt.Fprintf(os.Stderr, "served %d queries (%d rejected)\n", stats.Completed, stats.Rejected)
}

// clientMain is `athenalite client`: an interactive shell whose statements
// travel over the wire protocol to a running `athenalite serve`.
func clientMain(args []string) {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	var (
		addr   = fs.String("addr", "127.0.0.1:4141", "server address")
		tenant = fs.String("tenant", "", "tenant name for this connection")
	)
	fs.Parse(args)

	cl, err := service.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	ctx := context.Background()
	if *tenant != "" {
		if err := cl.Hello(ctx, *tenant); err != nil {
			fmt.Fprintln(os.Stderr, "hello:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("connected to %s", *addr)
	if *tenant != "" {
		fmt.Printf(" as tenant %q", *tenant)
	}
	fmt.Println(". End statements with ';', \\quit to exit.")

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if trimmed == "\\quit" || trimmed == "\\q!" || trimmed == "\\exit" {
				return
			}
			fmt.Printf("unknown command %s\n", trimmed)
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
			pending.Reset()
			if stmt != "" {
				runRemote(ctx, cl, stmt)
			}
		}
		prompt()
	}
}

func runRemote(ctx context.Context, cl *service.Client, stmt string) {
	start := time.Now()
	res, err := cl.Query(ctx, stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	limit := len(res.Rows)
	if limit > 50 {
		limit = 50
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if len(res.Rows) > limit {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
	}
	fmt.Printf("-- %d rows, %v round-trip, %d bytes scanned", len(res.Rows),
		time.Since(start).Round(10*time.Microsecond), res.Metrics.BytesScanned)
	if res.Metrics.BatchedQueries > 1 {
		fmt.Printf(", batched with %d queries (fused %d)",
			res.Metrics.BatchedQueries-1, res.Metrics.FusedPlans)
	}
	fmt.Println()
}
