// Command athenalite is an interactive SQL shell over the TPC-DS dataset:
// type queries, see results and per-query metrics, toggle fusion on and
// off, and EXPLAIN plans to watch the rewrite rules work.
//
// Usage:
//
//	athenalite [-scale 0.1] [-fusion=true]
//	athenalite serve [-addr :4141] [-scale 0.1] [-rescache 67108864]  # multi-tenant query service
//	athenalite client [-addr :4141] [-tenant t1]                      # remote shell over the wire
//	athenalite ingest -table store_sales [-file rows.csv]             # append rows over the wire
//
// Inside the shell:
//
//	SELECT ...;            run a query
//	EXPLAIN SELECT ...;    show the optimized plan
//	\fusion on|off         toggle the fusion rules
//	\q <name>              run a named workload query (q65, q09, f01, ...)
//	\list                  list workload queries
//	\quit                  exit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/engine"
	"repro/internal/tpcds"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "client":
			clientMain(os.Args[2:])
			return
		case "ingest":
			ingestMain(os.Args[2:])
			return
		}
	}
	var (
		scale  = flag.Float64("scale", 0.1, "data scale factor")
		fusion = flag.Bool("fusion", true, "enable fusion rules")
	)
	flag.Parse()

	fmt.Fprintf(os.Stderr, "loading TPC-DS data at scale %.2f...\n", *scale)
	st, err := tpcds.NewLoadedStore(*scale, 42)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	engines := map[string]*engine.Engine{
		"baseline": engine.OpenWithStore(st, engine.Config{}),
		"fusion":   engine.OpenWithStore(st, engine.Config{EnableFusion: true}),
		"spool":    engine.OpenWithStore(st, engine.Config{EnableSpooling: true}),
		"both":     engine.OpenWithStore(st, engine.Config{EnableFusion: true, EnableSpooling: true}),
	}
	mode := "baseline"
	if *fusion {
		mode = "fusion"
	}
	fmt.Printf("athenalite ready (mode %s). End statements with ';'.\n", mode)

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !command(trimmed, engines, &mode) {
				return
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteByte('\n')
		if strings.Contains(line, ";") {
			stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(pending.String()), ";"))
			pending.Reset()
			if stmt != "" {
				runStatement(engines[mode], stmt)
			}
		}
		prompt()
	}
}

func command(cmd string, engines map[string]*engine.Engine, mode *string) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case "\\quit", "\\q!", "\\exit":
		return false
	case "\\fusion":
		if len(fields) == 2 {
			if fields[1] == "on" {
				*mode = "fusion"
			} else {
				*mode = "baseline"
			}
		}
		fmt.Printf("mode %s\n", *mode)
	case "\\mode":
		if len(fields) == 2 {
			if _, ok := engines[fields[1]]; ok {
				*mode = fields[1]
			} else {
				fmt.Println("modes: baseline, fusion, spool, both")
			}
		}
		fmt.Printf("mode %s\n", *mode)
	case "\\list":
		for _, q := range tpcds.Queries() {
			marker := " "
			if q.Affected {
				marker = "*"
			}
			fmt.Printf("  %s %-4s %s\n", marker, q.Name, q.Pattern)
		}
		fmt.Println("  (* = affected by fusion rules)")
	case "\\q":
		if len(fields) != 2 {
			fmt.Println("usage: \\q <name>")
			break
		}
		q, ok := tpcds.Get(fields[1])
		if !ok {
			fmt.Printf("unknown query %q\n", fields[1])
			break
		}
		runStatement(engines[*mode], q.SQL)
	default:
		fmt.Printf("unknown command %s\n", fields[0])
	}
	return true
}

func runStatement(eng *engine.Engine, stmt string) {
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "EXPLAIN") {
		plan, err := eng.Explain(strings.TrimSpace(stmt[len("EXPLAIN"):]))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Print(plan)
		return
	}
	res, err := eng.Query(stmt)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res)
}

func printResult(res *engine.Result) {
	fmt.Println(strings.Join(res.Columns, " | "))
	limit := len(res.Rows)
	if limit > 50 {
		limit = 50
	}
	for _, row := range res.Rows[:limit] {
		parts := make([]string, len(row))
		for i, v := range row {
			parts[i] = v.String()
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	if len(res.Rows) > limit {
		fmt.Printf("... (%d more rows)\n", len(res.Rows)-limit)
	}
	fmt.Printf("-- %d rows, %v, %d bytes scanned", len(res.Rows),
		res.Metrics.Elapsed.Round(10_000), res.Metrics.Storage.BytesScanned)
	if len(res.RulesFired) > 0 {
		fmt.Printf(", fusion: %s", strings.Join(res.RulesFired, ","))
	}
	fmt.Println()
}
