package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/service"
	"repro/internal/types"
)

// ingestMain is `athenalite ingest`: append rows to a table on a running
// `athenalite serve` over the wire protocol. Rows are read one per line as
// comma-separated fields (from -file, or stdin when omitted), batched, and
// acknowledged only once the server has durably published them — at which
// point every result-cache entry over the table is invalidated and later
// queries see the new data.
//
// Field syntax: an integer literal becomes an INT64, a decimal literal a
// FLOAT64, `\N:i` / `\N:f` / `\N:s` a typed NULL, anything else (optionally
// single-quoted) a STRING.
func ingestMain(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:4141", "server address")
		table = fs.String("table", "", "target table (required)")
		file  = fs.String("file", "", "rows file, one CSV row per line (default stdin)")
		batch = fs.Int("batch", 512, "rows per ingest request")
	)
	fs.Parse(args)
	if *table == "" {
		fmt.Fprintln(os.Stderr, "ingest: -table is required")
		os.Exit(2)
	}
	in := io.Reader(os.Stdin)
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	cl, err := service.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer cl.Close()
	ctx := context.Background()

	var (
		rows  [][]types.Value
		total int
	)
	flush := func() {
		if len(rows) == 0 {
			return
		}
		if err := cl.Ingest(ctx, *table, rows); err != nil {
			fmt.Fprintln(os.Stderr, "ingest:", err)
			os.Exit(1)
		}
		total += len(rows)
		rows = rows[:0]
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		row, err := parseIngestRow(line)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ingest: line %d: %v\n", lineNo, err)
			os.Exit(1)
		}
		rows = append(rows, row)
		if len(rows) >= *batch {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "ingest:", err)
		os.Exit(1)
	}
	flush()
	fmt.Printf("appended %d rows to %s\n", total, *table)
}

// parseIngestRow converts one comma-separated line into typed values.
func parseIngestRow(line string) ([]types.Value, error) {
	fields := strings.Split(line, ",")
	row := make([]types.Value, len(fields))
	for i, f := range fields {
		f = strings.TrimSpace(f)
		switch {
		case f == `\N:i`:
			row[i] = types.NullOf(types.KindInt64)
		case f == `\N:f`:
			row[i] = types.NullOf(types.KindFloat64)
		case f == `\N:s`:
			row[i] = types.NullOf(types.KindString)
		case strings.HasPrefix(f, `\N`):
			return nil, fmt.Errorf("null field %q needs a kind suffix (\\N:i, \\N:f or \\N:s)", f)
		default:
			if n, err := strconv.ParseInt(f, 10, 64); err == nil {
				row[i] = types.Int(n)
				continue
			}
			if x, err := strconv.ParseFloat(f, 64); err == nil {
				row[i] = types.Float(x)
				continue
			}
			if len(f) >= 2 && f[0] == '\'' && f[len(f)-1] == '\'' {
				f = f[1 : len(f)-1]
			}
			row[i] = types.String(f)
		}
	}
	return row, nil
}
