// Command datagen generates the synthetic TPC-DS dataset as CSV files, for
// inspection or for loading into other systems.
//
// Usage:
//
//	datagen -scale 0.5 -out /tmp/tpcds
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/tpcds"
	"repro/internal/types"
)

func main() {
	var (
		scale = flag.Float64("scale", 0.1, "scale factor (1.0 ≈ 100k fact rows)")
		seed  = flag.Int64("seed", 42, "generator seed")
		out   = flag.String("out", "tpcds-data", "output directory")
	)
	flag.Parse()

	data := tpcds.Generate(*scale, *seed)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	cat := tpcds.NewCatalog()
	total := 0
	for name, rows := range data.Tables {
		tab, _ := cat.Table(name)
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var header []string
		for _, c := range tab.Columns {
			header = append(header, c.Name)
		}
		fmt.Fprintln(f, strings.Join(header, ","))
		for _, row := range rows {
			parts := make([]string, len(row))
			for i, v := range row {
				parts[i] = csvValue(v)
			}
			fmt.Fprintln(f, strings.Join(parts, ","))
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		total += len(rows)
		fmt.Printf("%-24s %8d rows -> %s\n", name, len(rows), path)
	}
	fmt.Printf("done: %d rows total\n", total)
}

func csvValue(v types.Value) string {
	if v.Null {
		return ""
	}
	if v.Kind == types.KindString {
		if strings.ContainsAny(v.S, ",\"\n") {
			return `"` + strings.ReplaceAll(v.S, `"`, `""`) + `"`
		}
		return v.S
	}
	return strings.Trim(v.String(), "'")
}
