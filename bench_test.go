// Package repro's top-level benchmarks regenerate the paper's evaluation
// (§V): one benchmark pair (baseline vs fused) per selected query of
// Figures 1 and 2, plus whole-workload benchmarks for the §V aggregates.
// Bytes-scanned and rows-processed counters are reported as custom metrics,
// so `go test -bench=. -benchmem` reproduces both the latency shape
// (Figure 1) and the data-read shape (Figure 2) in one run.
//
// An ablation pair per fusion rule measures the design choices DESIGN.md
// calls out (rules disabled individually via query selection).
package repro

import (
	"sync"
	"testing"

	"repro/engine"
	"repro/internal/storage"
	"repro/internal/tpcds"
)

const (
	benchScale = 0.2
	benchSeed  = 42
)

var (
	benchOnce  sync.Once
	benchStore *storage.Store
)

// engines returns a baseline and a fused engine over a shared, lazily
// generated store (generation cost is excluded from timings).
func engines(b *testing.B) (*engine.Engine, *engine.Engine) {
	b.Helper()
	benchOnce.Do(func() {
		st, err := tpcds.NewLoadedStore(benchScale, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		benchStore = st
	})
	return engine.OpenWithStore(benchStore, engine.Config{EnableFusion: false}),
		engine.OpenWithStore(benchStore, engine.Config{EnableFusion: true})
}

// benchQuery runs one prepared query on one engine, reporting bytes scanned
// and the CPU proxy as custom metrics. Preparation happens once outside the
// timed loop (planning cost is measured separately by the Optimize
// benchmarks), matching how the paper's engine amortizes compilation.
func benchQuery(b *testing.B, eng *engine.Engine, name string) {
	b.Helper()
	q, ok := tpcds.Get(name)
	if !ok {
		b.Fatalf("unknown query %s", name)
	}
	prepared, err := eng.Prepare(q.SQL)
	if err != nil {
		b.Fatal(err)
	}
	var bytes, rows int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prepared.Run()
		if err != nil {
			b.Fatal(err)
		}
		bytes = res.Metrics.Storage.BytesScanned
		rows = res.Metrics.RowsProcessed
	}
	b.ReportMetric(float64(bytes), "bytes_scanned")
	b.ReportMetric(float64(rows), "rows_processed")
}

// --- Figure 1 + Figure 2: per-query baseline/fused pairs. The latency
// ratio between the Baseline and Fused variants reproduces Figure 1; the
// bytes_scanned metric ratio reproduces Figure 2. ---

func BenchmarkFigure_Q01_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q01") }
func BenchmarkFigure_Q01_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q01") }
func BenchmarkFigure_Q09_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q09") }
func BenchmarkFigure_Q09_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q09") }
func BenchmarkFigure_Q23_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q23") }
func BenchmarkFigure_Q23_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q23") }
func BenchmarkFigure_Q28_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q28") }
func BenchmarkFigure_Q28_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q28") }
func BenchmarkFigure_Q30_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q30") }
func BenchmarkFigure_Q30_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q30") }
func BenchmarkFigure_Q65_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q65") }
func BenchmarkFigure_Q65_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q65") }
func BenchmarkFigure_Q88_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q88") }
func BenchmarkFigure_Q88_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q88") }
func BenchmarkFigure_Q95_Baseline(b *testing.B) { base, _ := engines(b); benchQuery(b, base, "q95") }
func BenchmarkFigure_Q95_Fused(b *testing.B)    { _, fused := engines(b); benchQuery(b, fused, "q95") }

// --- §V whole-workload aggregates: the 14%-overall and 60%-affected
// numbers come from the ratio of these two benchmarks. ---

func benchWorkload(b *testing.B, eng *engine.Engine, queries []tpcds.Query) {
	b.Helper()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bytes = 0
		for _, q := range queries {
			res, err := eng.Query(q.SQL)
			if err != nil {
				b.Fatalf("%s: %v", q.Name, err)
			}
			bytes += res.Metrics.Storage.BytesScanned
		}
	}
	b.ReportMetric(float64(bytes), "bytes_scanned")
}

func BenchmarkWorkload_All_Baseline(b *testing.B) {
	base, _ := engines(b)
	benchWorkload(b, base, tpcds.Queries())
}

func BenchmarkWorkload_All_Fused(b *testing.B) {
	_, fused := engines(b)
	benchWorkload(b, fused, tpcds.Queries())
}

func BenchmarkWorkload_Affected_Baseline(b *testing.B) {
	base, _ := engines(b)
	benchWorkload(b, base, tpcds.AffectedQueries())
}

func BenchmarkWorkload_Affected_Fused(b *testing.B) {
	_, fused := engines(b)
	benchWorkload(b, fused, tpcds.AffectedQueries())
}

// --- Ablations: each fusion rule's contribution, measured on the queries
// that exercise it (rule off = baseline engine on those queries). ---

var ablations = []struct {
	rule    string
	queries []string
}{
	{"GroupByJoinToWindow", []string{"q01", "q30", "q65"}},
	{"JoinOnKeys", []string{"q09", "q28", "q88", "q95"}},
	{"UnionAllOnJoin", []string{"q23"}},
}

func BenchmarkAblation(b *testing.B) {
	base, fused := engines(b)
	for _, ab := range ablations {
		for _, mode := range []struct {
			name string
			eng  *engine.Engine
		}{{"off", base}, {"on", fused}} {
			b.Run(ab.rule+"/"+mode.name, func(b *testing.B) {
				var qs []tpcds.Query
				for _, n := range ab.queries {
					q, _ := tpcds.Get(n)
					qs = append(qs, q)
				}
				benchWorkload(b, mode.eng, qs)
			})
		}
	}
}

// --- §I comparator: spooling instead of fusion on the queries where both
// apply. Compare against the matching Fused benchmarks above. ---

func spoolEngine(b *testing.B) *engine.Engine {
	b.Helper()
	engines(b) // ensure store
	return engine.OpenWithStore(benchStore, engine.Config{EnableSpooling: true})
}

func BenchmarkSpool_Q65(b *testing.B) { benchQuery(b, spoolEngine(b), "q65") }
func BenchmarkSpool_Q88(b *testing.B) { benchQuery(b, spoolEngine(b), "q88") }
func BenchmarkSpool_Q95(b *testing.B) { benchQuery(b, spoolEngine(b), "q95") }
func BenchmarkSpool_Q23(b *testing.B) { benchQuery(b, spoolEngine(b), "q23") }

// --- Micro-benchmarks of the fusion machinery itself. ---

func BenchmarkOptimizeFusedPlan(b *testing.B) {
	_, fused := engines(b)
	q, _ := tpcds.Get("q65")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fused.Explain(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeBaselinePlan(b *testing.B) {
	base, _ := engines(b)
	q, _ := tpcds.Get("q65")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := base.Explain(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimizeWorstCase plans Q28 — six MarkDistinct-bearing branches
// fused pairwise — the most expensive optimization in the workload.
func BenchmarkOptimizeWorstCase(b *testing.B) {
	_, fused := engines(b)
	q, _ := tpcds.Get("q28")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fused.Explain(q.SQL); err != nil {
			b.Fatal(err)
		}
	}
}
