// Package testgen generates deterministic random SQL queries and small
// synthetic catalogs for the engine's differential test harness. Every
// query it emits is valid over the catalog NewStore builds, and the
// generator leans on the operators whose execution is configuration
// dependent — GROUP BY aggregation (masked, scalar and keyed), hash and
// LEFT joins, DISTINCT — so that running the same query under different
// {Parallelism, BatchSize, fusion} settings exercises the engine's
// bit-for-bit result contract where it is hardest to keep.
package testgen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/types"
)

// NewStore builds the harness catalog — a partitioned fact table and a
// small dimension — and loads deterministic random rows (including NULLs in
// group keys, aggregate arguments and join keys) derived from seed.
func NewStore(seed int64, factRows int) (*storage.Store, error) {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_k1", Type: types.KindInt64},
			{Name: "f_k2", Type: types.KindInt64},
			{Name: "f_qty", Type: types.KindInt64},
			{Name: "f_price", Type: types.KindFloat64},
			{Name: "f_tag", Type: types.KindString},
			{Name: "f_part", Type: types.KindInt64},
		},
		PartitionColumn: "f_part",
	})
	cat.MustAdd(&catalog.Table{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_k", Type: types.KindInt64},
			{Name: "d_name", Type: types.KindString},
			{Name: "d_grp", Type: types.KindInt64},
		},
		Keys: [][]string{{"d_k"}},
	})
	st := storage.NewStore(cat)

	rng := rand.New(rand.NewSource(seed))
	tags := []string{"alpha", "beta", "gamma", "delta", "", "aleph"}
	rows := make([][]types.Value, 0, factRows)
	for i := 0; i < factRows; i++ {
		k1 := types.Int(int64(rng.Intn(8)))
		if rng.Intn(10) < 3 {
			k1 = types.Int(0) // skew: a hot key that concentrates one shard
		}
		k2 := types.Int(int64(rng.Intn(50)))
		if rng.Intn(12) == 0 {
			k2 = types.NullOf(types.KindInt64) // NULL group/join keys
		}
		qty := types.Int(int64(rng.Intn(100)))
		if rng.Intn(20) == 0 {
			qty = types.NullOf(types.KindInt64)
		}
		price := types.Float(float64(rng.Intn(10000)) / 4)
		if rng.Intn(20) == 0 {
			price = types.NullOf(types.KindFloat64)
		}
		tag := types.String(tags[rng.Intn(len(tags))])
		if rng.Intn(15) == 0 {
			tag = types.NullOf(types.KindString)
		}
		part := types.Int(int64(rng.Intn(6)))
		rows = append(rows, []types.Value{k1, k2, qty, price, tag, part})
	}
	if err := st.Load("fact", rows); err != nil {
		return nil, err
	}

	var dimRows [][]types.Value
	names := []string{"north", "south", "east", "west", "up", "down"}
	for k := 0; k < 10; k++ { // keys 8,9 never match fact (probe misses)
		grp := types.Int(int64(k % 4))
		if k == 5 {
			grp = types.NullOf(types.KindInt64)
		}
		dimRows = append(dimRows, []types.Value{
			types.Int(int64(k)), types.String(names[k%len(names)]), grp,
		})
	}
	if err := st.Load("dim", dimRows); err != nil {
		return nil, err
	}
	return st, nil
}

// Gen is a deterministic random query generator.
type Gen struct {
	rng *rand.Rand
}

// New creates a generator; the same seed always yields the same query
// sequence.
func New(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// predicate builds a random WHERE condition over the fact table, mixing
// comparisons, BETWEEN, IN, LIKE, IS [NOT] NULL and AND/OR nesting, and —
// sometimes — a partition-column conjunct so the partition pruner and the
// morsel scheduler see varying partition sets.
func (g *Gen) predicate() string {
	var atoms []string
	lo := g.rng.Intn(60)
	atoms = append(atoms, fmt.Sprintf("f_qty BETWEEN %d AND %d", lo, lo+20+g.rng.Intn(40)))
	atoms = append(atoms, fmt.Sprintf("f_price > %d", g.rng.Intn(2000)))
	atoms = append(atoms, fmt.Sprintf("f_price < %d.5", 200+g.rng.Intn(2200)))
	atoms = append(atoms, "f_tag LIKE '"+[]string{"a%", "%ta", "%e%", "d_lta"}[g.rng.Intn(4)]+"'")
	atoms = append(atoms, "f_tag IN ('alpha', 'delta', '')")
	atoms = append(atoms, "f_k2 IS NOT NULL")
	atoms = append(atoms, "f_k2 IS NULL")
	atoms = append(atoms, fmt.Sprintf("f_k2 > %d", g.rng.Intn(40)))
	atoms = append(atoms, fmt.Sprintf("f_part <= %d", g.rng.Intn(6)))
	atoms = append(atoms, fmt.Sprintf("f_part = %d", g.rng.Intn(6)))

	pick := func() string { return atoms[g.rng.Intn(len(atoms))] }
	switch g.rng.Intn(4) {
	case 0:
		return pick()
	case 1:
		return pick() + " AND " + pick()
	case 2:
		return "(" + pick() + " OR " + pick() + ")"
	default:
		return pick() + " AND (" + pick() + " OR " + pick() + ")"
	}
}

// aggList builds a random list of aggregate expressions.
func (g *Gen) aggList() string {
	all := []string{
		"COUNT(*) AS cnt",
		"SUM(f_qty) AS sq",
		"SUM(f_price) AS sp",
		"AVG(f_price) AS ap",
		"AVG(f_qty) AS aq",
		"MIN(f_qty) AS mq",
		"MAX(f_price) AS xp",
		"COUNT(f_price) AS cp",
		"MIN(f_tag) AS mt",
	}
	n := 2 + g.rng.Intn(4)
	g.rng.Shuffle(len(all), func(i, j int) { all[i], all[j] = all[j], all[i] })
	return strings.Join(all[:n], ", ")
}

// QuerySet emits n queries from one generator seed — the unit of the
// shared-vs-unshared differential mode, where the same set runs
// concurrently with scan sharing on and off. Every query targets the same
// fact/dim tables, so a concurrent run overlaps scans by construction.
func QuerySet(seed int64, n int) []string {
	g := New(seed)
	out := make([]string, n)
	for i := range out {
		out[i] = g.Query()
	}
	return out
}

// ShareSet emits n shared-execution-eligible queries from one generator
// seed — the unit of the shared-execution differential mode, where the set
// is submitted concurrently to a ShareExec engine and each client's result
// is compared against an independent solo run. A separate entry point (not
// Query) so its draws never perturb Query()'s deterministic sequence.
func ShareSet(seed int64, n int) []string {
	g := New(seed)
	out := make([]string, n)
	for i := range out {
		out[i] = g.ShareQuery()
	}
	return out
}

// ShareQuery emits one query whose optimized plan is eligible for
// cross-query shared execution: a Filter/Project chain over one scan, or a
// scalar aggregation (optionally with arithmetic above it) over such a
// chain. Most shapes target the fact table so concurrent submissions fuse;
// the occasional dim-table chain exercises the fold declining to fuse
// across tables (and the solo fallback when it ends up alone).
func (g *Gen) ShareQuery() string {
	switch g.rng.Intn(8) {
	case 0: // plain column projection
		return fmt.Sprintf("SELECT f_k1, f_k2, f_qty FROM fact WHERE %s", g.predicate())
	case 1: // computed projection
		return fmt.Sprintf("SELECT f_k1, f_qty * %d AS q, f_price + %d.5 AS p FROM fact WHERE %s",
			1+g.rng.Intn(5), g.rng.Intn(100), g.predicate())
	case 2: // unfiltered scan projection
		return "SELECT f_k1, f_tag FROM fact"
	case 3: // scalar aggregation
		return fmt.Sprintf("SELECT %s FROM fact WHERE %s", g.aggList(), g.predicate())
	case 4: // scalar aggregation with arithmetic above it
		return fmt.Sprintf(
			"SELECT SUM(f_qty) + COUNT(*) AS t, MAX(f_price) AS mp FROM fact WHERE %s",
			g.predicate())
	case 5: // scalar aggregation over the whole table
		return fmt.Sprintf("SELECT %s FROM fact", g.aggList())
	case 6: // dimension-table chain (fuses only with other dim chains)
		return fmt.Sprintf("SELECT d_name, d_grp FROM dim WHERE d_grp >= %d", g.rng.Intn(4))
	default: // narrow single-column chain
		return fmt.Sprintf("SELECT f_tag FROM fact WHERE %s", g.predicate())
	}
}

// Query emits one random query. Patterns cover keyed aggregation, scalar
// aggregation, join+aggregation, LEFT JOIN projection, DISTINCT,
// COUNT(DISTINCT), residual join conditions and UNION ALL reuse shapes.
func (g *Gen) Query() string {
	switch g.rng.Intn(8) {
	case 0: // keyed aggregation, sometimes multi-key, sometimes HAVING
		keys := "f_k1"
		if g.rng.Intn(2) == 0 {
			keys = "f_k1, f_k2"
		}
		q := fmt.Sprintf("SELECT %s, %s FROM fact WHERE %s GROUP BY %s",
			keys, g.aggList(), g.predicate(), keys)
		if g.rng.Intn(3) == 0 {
			q += fmt.Sprintf(" HAVING COUNT(*) > %d", g.rng.Intn(4))
		}
		return q
	case 1: // scalar aggregation
		return fmt.Sprintf("SELECT %s FROM fact WHERE %s", g.aggList(), g.predicate())
	case 2: // hash join + aggregation on a dimension attribute
		return fmt.Sprintf(
			"SELECT d_grp, %s FROM fact JOIN dim ON f_k1 = d_k WHERE %s GROUP BY d_grp",
			g.aggList(), g.predicate())
	case 3: // LEFT JOIN projection (NULL-extended probe rows), often sorted
		if g.rng.Intn(2) == 0 {
			// An unfiltered wide ORDER BY over the full probe output — the
			// query shape that buffers the most rows in the sort, so the
			// memory-limit differential mode exercises external sort runs.
			return "SELECT f_k1, f_qty, d_name, d_grp FROM fact LEFT JOIN dim ON f_k1 = d_k" +
				" ORDER BY f_qty DESC, f_k1, d_name"
		}
		return fmt.Sprintf(
			"SELECT f_k1, f_qty, d_name, d_grp FROM fact LEFT JOIN dim ON f_k1 = d_k WHERE %s",
			g.predicate())
	case 4: // DISTINCT
		q := fmt.Sprintf("SELECT DISTINCT f_k1, f_k2 FROM fact WHERE %s", g.predicate())
		if g.rng.Intn(2) == 0 {
			q += " ORDER BY f_k2, f_k1"
		}
		return q
	case 5: // COUNT(DISTINCT) — MarkDistinct over grouped aggregation
		return fmt.Sprintf(
			"SELECT f_k1, COUNT(DISTINCT f_k2) AS dk, COUNT(*) AS cnt FROM fact WHERE %s GROUP BY f_k1",
			g.predicate())
	case 6: // join with residual (non-equi) condition
		return fmt.Sprintf(
			"SELECT f_k1, SUM(f_qty) AS sq, COUNT(*) AS cnt FROM fact JOIN dim ON f_k1 = d_k AND f_qty > d_grp * %d WHERE %s GROUP BY f_k1",
			5+g.rng.Intn(20), g.predicate())
	default: // UNION ALL over one aggregation (the paper's reuse shape)
		t1, t2 := g.rng.Intn(200), g.rng.Intn(200)
		return fmt.Sprintf(`WITH c AS (SELECT f_k1 AS k, SUM(f_price) AS v, COUNT(*) AS n FROM fact WHERE %s GROUP BY f_k1)
SELECT k, v FROM c WHERE v > %d
UNION ALL
SELECT k, v FROM c WHERE n <= %d`, g.predicate(), t1, t2)
	}
}
