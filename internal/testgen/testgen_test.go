package testgen

import "testing"

func TestStoreAndGeneratorDeterministic(t *testing.T) {
	s1, err := NewStore(7, 100)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == nil {
		t.Fatal("nil store")
	}
	g1, g2 := New(42), New(42)
	for i := 0; i < 50; i++ {
		q1, q2 := g1.Query(), g2.Query()
		if q1 != q2 {
			t.Fatalf("generator not deterministic at %d:\n%s\n%s", i, q1, q2)
		}
		if q1 == "" {
			t.Fatal("empty query")
		}
	}
}
