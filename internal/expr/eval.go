package expr

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// Env supplies column values during evaluation. The executor binds column
// IDs to row slots; the constant folder uses a nil Env.
type Env interface {
	// Value returns the current value of the column.
	Value(id ColumnID) types.Value
}

// SlotEnv is the executor's Env: a layout from column ID to row position
// plus the current row. The Row field is swapped per input row without
// reallocating the env.
type SlotEnv struct {
	Slots map[ColumnID]int
	Row   []types.Value
}

// Value implements Env.
func (e *SlotEnv) Value(id ColumnID) types.Value {
	idx, ok := e.Slots[id]
	if !ok {
		panic(fmt.Sprintf("expr: column #%d not bound in row layout", id))
	}
	return e.Row[idx]
}

// Eval evaluates an expression against an environment using SQL semantics:
// NULL propagation through arithmetic and comparison, Kleene three-valued
// AND/OR, and NULL for division by zero.
func Eval(e Expr, env Env) types.Value {
	switch x := e.(type) {
	case *Literal:
		return x.Val
	case *ColumnRef:
		return env.Value(x.Col.ID)
	case *Binary:
		return evalBinary(x, env)
	case *Not:
		v := Eval(x.E, env)
		if v.Null {
			return types.NullOf(types.KindBool)
		}
		return types.Bool(!v.AsBool())
	case *IsNull:
		v := Eval(x.E, env)
		if x.Neg {
			return types.Bool(!v.Null)
		}
		return types.Bool(v.Null)
	case *Case:
		for _, w := range x.Whens {
			if Eval(w.Cond, env).IsTrue() {
				return Eval(w.Then, env)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, env)
		}
		return types.NullOf(x.Type())
	case *InList:
		return evalInList(x, env)
	case *Like:
		v := Eval(x.E, env)
		if v.Null {
			return types.NullOf(types.KindBool)
		}
		return types.Bool(MatchLike(v.S, x.Pattern))
	case *Coalesce:
		for _, a := range x.Args {
			if v := Eval(a, env); !v.Null {
				return v
			}
		}
		return types.NullOf(x.Type())
	default:
		panic(fmt.Sprintf("expr: cannot evaluate %T", e))
	}
}

func evalBinary(x *Binary, env Env) types.Value {
	// Kleene logic needs special NULL handling, so AND/OR come first.
	switch x.Op {
	case OpAnd:
		l := Eval(x.L, env)
		if !l.Null && !l.AsBool() {
			return types.Bool(false)
		}
		r := Eval(x.R, env)
		if !r.Null && !r.AsBool() {
			return types.Bool(false)
		}
		if l.Null || r.Null {
			return types.NullOf(types.KindBool)
		}
		return types.Bool(true)
	case OpOr:
		l := Eval(x.L, env)
		if !l.Null && l.AsBool() {
			return types.Bool(true)
		}
		r := Eval(x.R, env)
		if !r.Null && r.AsBool() {
			return types.Bool(true)
		}
		if l.Null || r.Null {
			return types.NullOf(types.KindBool)
		}
		return types.Bool(false)
	}
	l := Eval(x.L, env)
	r := Eval(x.R, env)
	if l.Null || r.Null {
		if x.Op.IsComparison() {
			return types.NullOf(types.KindBool)
		}
		return types.NullOf(x.Type())
	}
	if x.Op.IsComparison() {
		c := types.Compare(l, r)
		switch x.Op {
		case OpEq:
			return types.Bool(c == 0)
		case OpNe:
			return types.Bool(c != 0)
		case OpLt:
			return types.Bool(c < 0)
		case OpLe:
			return types.Bool(c <= 0)
		case OpGt:
			return types.Bool(c > 0)
		default:
			return types.Bool(c >= 0)
		}
	}
	// Arithmetic.
	if x.Op == OpDiv {
		rf := r.AsFloat()
		if rf == 0 {
			return types.NullOf(types.KindFloat64)
		}
		return types.Float(l.AsFloat() / rf)
	}
	if l.Kind == types.KindFloat64 || r.Kind == types.KindFloat64 {
		lf, rf := l.AsFloat(), r.AsFloat()
		switch x.Op {
		case OpAdd:
			return types.Float(lf + rf)
		case OpSub:
			return types.Float(lf - rf)
		default:
			return types.Float(lf * rf)
		}
	}
	switch x.Op {
	case OpAdd:
		return types.Int(l.I + r.I)
	case OpSub:
		return types.Int(l.I - r.I)
	default:
		return types.Int(l.I * r.I)
	}
}

func evalInList(x *InList, env Env) types.Value {
	v := Eval(x.E, env)
	if v.Null {
		return types.NullOf(types.KindBool)
	}
	sawNull := false
	for _, item := range x.List {
		iv := Eval(item, env)
		if iv.Null {
			sawNull = true
			continue
		}
		if types.Compare(v, iv) == 0 {
			return types.Bool(!x.Neg)
		}
	}
	if sawNull {
		return types.NullOf(types.KindBool)
	}
	return types.Bool(x.Neg)
}

// MatchLike implements SQL LIKE with % (any run) and _ (any single char),
// by simple backtracking.
func MatchLike(s, pattern string) bool {
	return likeMatch(s, pattern)
}

func likeMatch(s, p string) bool {
	for len(p) > 0 {
		switch p[0] {
		case '%':
			// Collapse consecutive %.
			for len(p) > 0 && p[0] == '%' {
				p = p[1:]
			}
			if len(p) == 0 {
				return true
			}
			for i := 0; i <= len(s); i++ {
				if likeMatch(s[i:], p) {
					return true
				}
			}
			return false
		case '_':
			if len(s) == 0 {
				return false
			}
			s, p = s[1:], p[1:]
		default:
			if len(s) == 0 || s[0] != p[0] {
				return false
			}
			s, p = s[1:], p[1:]
		}
	}
	return len(s) == 0
}

// IsConstant reports whether the expression references no columns.
func IsConstant(e Expr) bool {
	constant := true
	Walk(e, func(x Expr) bool {
		if _, ok := x.(*ColumnRef); ok {
			constant = false
			return false
		}
		return constant
	})
	return constant
}

// EvalConst evaluates a constant expression; ok is false if the expression
// references columns.
func EvalConst(e Expr) (types.Value, bool) {
	if !IsConstant(e) {
		return types.Value{}, false
	}
	return Eval(e, nil), true
}

// FormatList renders a list of expressions comma-separated.
func FormatList(es []Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
