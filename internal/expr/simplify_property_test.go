package expr

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

// randBoolExpr generates a random boolean expression over the given
// columns, with depth-bounded AND/OR/NOT/comparison/IS NULL structure.
func randBoolExpr(rng *rand.Rand, cols []*Column, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		// Leaf: comparison, IS NULL, or boolean literal.
		switch rng.Intn(6) {
		case 0:
			return TrueExpr()
		case 1:
			return FalseExpr()
		case 2:
			c := cols[rng.Intn(len(cols))]
			return &IsNull{E: Ref(c), Neg: rng.Intn(2) == 0}
		default:
			c := cols[rng.Intn(len(cols))]
			op := []BinOp{OpEq, OpNe, OpLt, OpLe, OpGt, OpGe}[rng.Intn(6)]
			return NewBinary(op, Ref(c), Lit(types.Int(rng.Int63n(10))))
		}
	}
	switch rng.Intn(4) {
	case 0:
		return NewBinary(OpAnd, randBoolExpr(rng, cols, depth-1), randBoolExpr(rng, cols, depth-1))
	case 1:
		return NewBinary(OpOr, randBoolExpr(rng, cols, depth-1), randBoolExpr(rng, cols, depth-1))
	case 2:
		return &Not{E: randBoolExpr(rng, cols, depth-1)}
	default:
		// Duplicate-heavy shapes to exercise absorption: X AND (X OR Y).
		x := randBoolExpr(rng, cols, depth-1)
		y := randBoolExpr(rng, cols, depth-1)
		if rng.Intn(2) == 0 {
			return NewBinary(OpAnd, x, NewBinary(OpOr, x, y))
		}
		return NewBinary(OpOr, x, NewBinary(OpAnd, x, y))
	}
}

type sliceEnv struct {
	ids  []ColumnID
	vals []types.Value
}

func (e *sliceEnv) Value(id ColumnID) types.Value {
	for i, x := range e.ids {
		if x == id {
			return e.vals[i]
		}
	}
	panic("unbound")
}

// TestSimplifyPreservesSemantics evaluates random boolean expressions and
// their simplified forms over random rows (including NULLs) and requires
// identical three-valued results. This guards the absorption laws and
// NOT-pushdown against unsound rewrites.
func TestSimplifyPreservesSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cols := []*Column{
		NewColumn("a", types.KindInt64),
		NewColumn("b", types.KindInt64),
		NewColumn("c", types.KindInt64),
	}
	ids := []ColumnID{cols[0].ID, cols[1].ID, cols[2].ID}
	for iter := 0; iter < 2000; iter++ {
		e := randBoolExpr(rng, cols, 4)
		s := Simplify(e)
		for trial := 0; trial < 8; trial++ {
			vals := make([]types.Value, len(cols))
			for i := range vals {
				if rng.Intn(5) == 0 {
					vals[i] = types.NullOf(types.KindInt64)
				} else {
					vals[i] = types.Int(rng.Int63n(10))
				}
			}
			env := &sliceEnv{ids: ids, vals: vals}
			got := Eval(s, env)
			want := Eval(e, env)
			// Three-valued equality: NULL == NULL, else same boolean.
			if got.Null != want.Null || (!got.Null && got.AsBool() != want.AsBool()) {
				t.Fatalf("iter %d: Simplify changed semantics\n  e: %s\n  s: %s\n  row: %v\n  want %v got %v",
					iter, e, s, vals, want, got)
			}
		}
	}
}

// TestNormalizePreservesEquivalence checks that normalize-based Equivalent
// is sound: expressions it declares equivalent must agree on random rows.
func TestNormalizePreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cols := []*Column{
		NewColumn("a", types.KindInt64),
		NewColumn("b", types.KindInt64),
	}
	ids := []ColumnID{cols[0].ID, cols[1].ID}
	checked := 0
	for iter := 0; iter < 3000; iter++ {
		e1 := randBoolExpr(rng, cols, 3)
		e2 := randBoolExpr(rng, cols, 3)
		if !Equivalent(e1, e2) {
			continue
		}
		checked++
		for trial := 0; trial < 8; trial++ {
			vals := []types.Value{types.Int(rng.Int63n(10)), types.Int(rng.Int63n(10))}
			env := &sliceEnv{ids: ids, vals: vals}
			g1, g2 := Eval(e1, env), Eval(e2, env)
			if g1.Null != g2.Null || (!g1.Null && g1.AsBool() != g2.AsBool()) {
				t.Fatalf("Equivalent(%s, %s) but they disagree on %v: %v vs %v", e1, e2, vals, g1, g2)
			}
		}
	}
	if checked < 10 {
		t.Skipf("only %d random pairs were equivalent; still sound", checked)
	}
}

// TestContradictorySoundness: whenever Contradictory says two conditions
// cannot both hold, no random row may satisfy their conjunction.
func TestContradictorySoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	cols := []*Column{NewColumn("a", types.KindInt64)}
	ids := []ColumnID{cols[0].ID}
	flagged := 0
	for iter := 0; iter < 3000; iter++ {
		e1 := randBoolExpr(rng, cols, 2)
		e2 := randBoolExpr(rng, cols, 2)
		if !Contradictory(e1, e2) {
			continue
		}
		flagged++
		both := And(e1, e2)
		for v := int64(-2); v < 12; v++ {
			env := &sliceEnv{ids: ids, vals: []types.Value{types.Int(v)}}
			if Eval(both, env).IsTrue() {
				t.Fatalf("Contradictory(%s, %s) but a=%d satisfies both", e1, e2, v)
			}
		}
	}
	if flagged == 0 {
		t.Skip("no contradictions generated")
	}
	t.Logf("verified %d contradiction judgements", flagged)
}
