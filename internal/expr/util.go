package expr

import (
	"sort"
)

// Mapping maps column identities of one plan's outputs to column instances
// of another plan — the M component of Fuse(P1, P2) = (P, M, L, R), which
// maps output columns of P2 to output columns of P. Applying a mapping to
// an expression (M(expr), in the paper's notation) is Mapping.Apply.
type Mapping map[ColumnID]*Column

// Identity returns an empty mapping (every column maps to itself).
func Identity() Mapping { return Mapping{} }

// Add records that column id now resolves to col.
func (m Mapping) Add(id ColumnID, col *Column) { m[id] = col }

// Resolve follows the mapping for one column; columns not present map to
// themselves (the caller keeps using the original column instance).
func (m Mapping) Resolve(c *Column) *Column {
	if t, ok := m[c.ID]; ok {
		return t
	}
	return c
}

// Apply substitutes mapped columns throughout an expression: M(expr).
// Unmapped columns are left untouched. A nil expression maps to nil.
func (m Mapping) Apply(e Expr) Expr {
	if e == nil || len(m) == 0 {
		return e
	}
	return Transform(e, func(x Expr) Expr {
		if ref, ok := x.(*ColumnRef); ok {
			if t, found := m[ref.Col.ID]; found {
				return Ref(t)
			}
		}
		return x
	})
}

// ApplyAgg substitutes mapped columns through an aggregate call's argument
// and mask.
func (m Mapping) ApplyAgg(a AggCall) AggCall {
	return AggCall{Fn: a.Fn, Arg: m.Apply(a.Arg), Mask: m.Apply(a.Mask), Distinct: a.Distinct}
}

// Merge combines two mappings with disjoint domains (used when fusing join
// sides: M = ML ∪ MR).
func (m Mapping) Merge(o Mapping) Mapping {
	out := make(Mapping, len(m)+len(o))
	for k, v := range m {
		out[k] = v
	}
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Transform rewrites an expression bottom-up: children are transformed
// first, then f is applied to the (possibly rebuilt) node. f returning its
// argument unchanged keeps the original node.
func Transform(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	ch := e.Children()
	if len(ch) > 0 {
		newCh := make([]Expr, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = Transform(c, f)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			e = e.WithChildren(newCh)
		}
	}
	return f(e)
}

// Walk visits every node of the expression tree in pre-order; returning
// false from f prunes the subtree.
func Walk(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	for _, c := range e.Children() {
		Walk(c, f)
	}
}

// Columns returns the set of column IDs referenced by the expression.
func Columns(e Expr) map[ColumnID]bool {
	out := make(map[ColumnID]bool)
	Walk(e, func(x Expr) bool {
		if ref, ok := x.(*ColumnRef); ok {
			out[ref.Col.ID] = true
		}
		return true
	})
	return out
}

// CollectColumns appends every referenced column ID into the given set.
func CollectColumns(e Expr, into map[ColumnID]bool) {
	Walk(e, func(x Expr) bool {
		if ref, ok := x.(*ColumnRef); ok {
			into[ref.Col.ID] = true
		}
		return true
	})
}

// RefersOnly reports whether every column referenced by e is in allowed.
func RefersOnly(e Expr, allowed map[ColumnID]bool) bool {
	ok := true
	Walk(e, func(x Expr) bool {
		if ref, isRef := x.(*ColumnRef); isRef && !allowed[ref.Col.ID] {
			ok = false
			return false
		}
		return ok
	})
	return ok
}

// Conjuncts flattens nested ANDs into a list. TRUE yields an empty list.
func Conjuncts(e Expr) []Expr {
	if e == nil || IsTrueLiteral(e) {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(Conjuncts(b.L), Conjuncts(b.R)...)
	}
	return []Expr{e}
}

// Disjuncts flattens nested ORs into a list. FALSE yields an empty list.
func Disjuncts(e Expr) []Expr {
	if e == nil || IsFalseLiteral(e) {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpOr {
		return append(Disjuncts(b.L), Disjuncts(b.R)...)
	}
	return []Expr{e}
}

// And combines expressions with AND, dropping nils and TRUE literals.
// An empty combination yields TRUE.
func And(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil || IsTrueLiteral(e) {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBinary(OpAnd, out, e)
		}
	}
	if out == nil {
		return TrueExpr()
	}
	return out
}

// Or combines expressions with OR, dropping nils and FALSE literals.
// An empty combination yields FALSE.
func Or(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil || IsFalseLiteral(e) {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = NewBinary(OpOr, out, e)
		}
	}
	if out == nil {
		return FalseExpr()
	}
	return out
}

// Equal reports structural equality of two expressions: same shape, same
// operators, same column identities, same literal values.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *ColumnRef:
		y, ok := b.(*ColumnRef)
		return ok && x.Col.ID == y.Col.ID
	case *Literal:
		y, ok := b.(*Literal)
		return ok && x.Val.Equal(y.Val)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.E, y.E)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && x.Neg == y.Neg && Equal(x.E, y.E)
	case *Like:
		y, ok := b.(*Like)
		return ok && x.Pattern == y.Pattern && Equal(x.E, y.E)
	case *InList:
		y, ok := b.(*InList)
		if !ok || x.Neg != y.Neg || len(x.List) != len(y.List) || !Equal(x.E, y.E) {
			return false
		}
		for i := range x.List {
			if !Equal(x.List[i], y.List[i]) {
				return false
			}
		}
		return true
	case *Case:
		y, ok := b.(*Case)
		if !ok || len(x.Whens) != len(y.Whens) || !Equal(x.Else, y.Else) {
			return false
		}
		for i := range x.Whens {
			if !Equal(x.Whens[i].Cond, y.Whens[i].Cond) || !Equal(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		return true
	case *Coalesce:
		y, ok := b.(*Coalesce)
		if !ok || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// AggEqual reports structural equality of two aggregate calls.
func AggEqual(a, b AggCall) bool {
	return a.Fn == b.Fn && a.Distinct == b.Distinct &&
		Equal(a.Arg, b.Arg) && maskEqual(a.Mask, b.Mask)
}

func maskEqual(a, b Expr) bool {
	ta := a == nil || IsTrueLiteral(a)
	tb := b == nil || IsTrueLiteral(b)
	if ta || tb {
		return ta && tb
	}
	return Equivalent(a, b)
}

// normalize reorders the operand lists of commutative operators (AND, OR,
// and the operands of = and <>) into a canonical order so that Equivalent
// can compare by structure.
func normalize(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpAnd:
			parts := Conjuncts(e)
			for i, p := range parts {
				parts[i] = normalize(p)
			}
			sortByString(parts)
			return And(parts...)
		case OpOr:
			parts := Disjuncts(e)
			for i, p := range parts {
				parts[i] = normalize(p)
			}
			sortByString(parts)
			return Or(parts...)
		case OpEq, OpNe:
			l, r := normalize(x.L), normalize(x.R)
			if l.String() > r.String() {
				l, r = r, l
			}
			return NewBinary(x.Op, l, r)
		case OpAdd, OpMul:
			l, r := normalize(x.L), normalize(x.R)
			if l.String() > r.String() {
				l, r = r, l
			}
			return NewBinary(x.Op, l, r)
		}
	}
	ch := e.Children()
	if len(ch) == 0 {
		return e
	}
	newCh := make([]Expr, len(ch))
	for i, c := range ch {
		newCh[i] = normalize(c)
	}
	return e.WithChildren(newCh)
}

func sortByString(es []Expr) {
	// Rendering is recursive and comparisons are O(n log n); cache the keys
	// so each expression renders exactly once.
	keys := make([]string, len(es))
	for i, e := range es {
		keys[i] = e.String()
	}
	idx := make([]int, len(es))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sorted := make([]Expr, len(es))
	for i, j := range idx {
		sorted[i] = es[j]
	}
	copy(es, sorted)
}

// Canonical returns a normal form of e: simplified (constant folding,
// flattening, absorption) with commutative operand lists in a stable
// sorted order. Two expressions that are Equivalent render to Equal
// canonical forms, so canonical `String()` keys can drive dedup maps —
// this is how compiledAggs collapses `a AND b` against `b AND a`.
func Canonical(e Expr) Expr {
	if e == nil {
		return nil
	}
	return normalize(Simplify(e))
}

// Equivalent reports whether two expressions are equal modulo commutativity
// of AND/OR/=/<>/+/* and constant folding. It is a sound but incomplete
// equivalence check, exactly what the fusion primitives need for the
// "C1 ≡ M(C2)" tests in §III.
func Equivalent(a, b Expr) bool {
	if Equal(a, b) {
		return true
	}
	return Equal(normalize(Simplify(a)), normalize(Simplify(b)))
}

// EquivalentUnder reports whether a ≡ M(b).
func EquivalentUnder(m Mapping, a, b Expr) bool {
	return Equivalent(a, m.Apply(b))
}
