package expr

import (
	"math"

	"repro/internal/types"
)

// Simplify rewrites an expression into a cheaper equivalent form: constant
// folding, boolean identity elimination (x AND TRUE → x, x OR TRUE → TRUE,
// …), double-negation removal, duplicate-conjunct elimination, and
// NOT-pushdown over comparisons. It is applied after every fusion step so
// that compensating filters stay small (the paper relies on "orthogonal
// rules … applicable to fused results", e.g. expression simplification over
// masks).
func Simplify(e Expr) Expr {
	if e == nil {
		return nil
	}
	return simplifyRec(e)
}

// simplifyRec walks the tree but treats whole AND/OR chains as single
// units: each chain is flattened, its parts simplified, and the chain
// recombined exactly once. (A naive bottom-up rewrite would re-flatten and
// re-deduplicate at every node of the chain — quadratic in the width of
// the fused conditions the optimizer builds.)
func simplifyRec(e Expr) Expr {
	switch x := e.(type) {
	case *Binary:
		switch x.Op {
		case OpAnd:
			parts := Conjuncts(x)
			out := make([]Expr, 0, len(parts))
			for _, p := range parts {
				// A part may itself simplify into a conjunction.
				out = append(out, Conjuncts(simplifyRec(p))...)
			}
			return simplifyAnd(out)
		case OpOr:
			parts := Disjuncts(x)
			out := make([]Expr, 0, len(parts))
			for _, p := range parts {
				out = append(out, Disjuncts(simplifyRec(p))...)
			}
			return simplifyOr(out)
		}
		l, r := simplifyRec(x.L), simplifyRec(x.R)
		nx := x
		if l != x.L || r != x.R {
			nx = NewBinary(x.Op, l, r)
		}
		return simplifyBinary(nx)
	case *Not:
		inner := simplifyRec(x.E)
		nx := x
		if inner != x.E {
			nx = &Not{E: inner}
		}
		return simplifyNot(nx)
	case *IsNull:
		inner := simplifyRec(x.E)
		nx := x
		if inner != x.E {
			nx = &IsNull{E: inner, Neg: x.Neg}
		}
		if l, ok := nx.E.(*Literal); ok {
			if nx.Neg {
				return Lit(types.Bool(!l.Val.Null))
			}
			return Lit(types.Bool(l.Val.Null))
		}
		return nx
	case *Case:
		return simplifyCase(simplifyChildren(x).(*Case))
	default:
		return simplifyChildren(e)
	}
}

// simplifyChildren recursively simplifies a node's children generically.
func simplifyChildren(e Expr) Expr {
	ch := e.Children()
	if len(ch) == 0 {
		return e
	}
	newCh := make([]Expr, len(ch))
	changed := false
	for i, c := range ch {
		newCh[i] = simplifyRec(c)
		if newCh[i] != c {
			changed = true
		}
	}
	if changed {
		return e.WithChildren(newCh)
	}
	return e
}

func simplifyBinary(x *Binary) Expr {
	// Fold constant subtrees.
	if IsConstant(x.L) && IsConstant(x.R) {
		return Lit(Eval(x, nil))
	}
	// x = x, x <= x etc. over identical column refs (safe only for
	// comparisons that are reflexive; = on a NULL yields NULL, so we only
	// fold when we cannot produce a wrong NULL → skip. Keep it simple and
	// sound: no folding here.)
	return x
}

func simplifyAnd(parts []Expr) Expr {
	out := make([]Expr, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		if IsTrueLiteral(p) {
			continue
		}
		if IsFalseLiteral(p) {
			return FalseExpr()
		}
		key := p.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	// x = x is TRUE for non-NULL x; drop it when an x IS NOT NULL conjunct
	// guards the NULL case (the shape JoinOnKeys rewrites leave behind).
	if len(out) > 1 {
		notNull := map[ColumnID]bool{}
		for _, p := range out {
			if isn, ok := p.(*IsNull); ok && isn.Neg {
				if ref, ok := isn.E.(*ColumnRef); ok {
					notNull[ref.Col.ID] = true
				}
			}
		}
		if len(notNull) > 0 {
			kept := out[:0]
			for _, p := range out {
				if b, ok := p.(*Binary); ok && b.Op == OpEq {
					lr, ok1 := b.L.(*ColumnRef)
					rr, ok2 := b.R.(*ColumnRef)
					if ok1 && ok2 && lr.Col.ID == rr.Col.ID && notNull[lr.Col.ID] {
						continue
					}
				}
				kept = append(kept, p)
			}
			out = kept
		}
	}
	// Absorption: A AND (A OR B) → A. Drop any disjunctive conjunct one of
	// whose disjuncts already appears as a conjunct. This keeps the masks
	// produced by incremental n-ary fusion linear instead of quadratic.
	if len(out) > 1 {
		kept := out[:0]
		for _, p := range out {
			disjuncts := Disjuncts(p)
			absorbed := false
			if len(disjuncts) > 1 {
				for _, d := range disjuncts {
					if seen[d.String()] && d.String() != p.String() {
						absorbed = true
						break
					}
				}
			}
			if !absorbed {
				kept = append(kept, p)
			}
		}
		out = kept
	}
	return And(out...)
}

func simplifyOr(parts []Expr) Expr {
	out := make([]Expr, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		if IsFalseLiteral(p) {
			continue
		}
		if IsTrueLiteral(p) {
			return TrueExpr()
		}
		key := p.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, p)
	}
	// Absorption: A OR (A AND B) → A.
	if len(out) > 1 {
		kept := out[:0]
		for _, p := range out {
			conjuncts := Conjuncts(p)
			absorbed := false
			if len(conjuncts) > 1 {
				for _, c := range conjuncts {
					if seen[c.String()] && c.String() != p.String() {
						absorbed = true
						break
					}
				}
			}
			if !absorbed {
				kept = append(kept, p)
			}
		}
		out = kept
	}
	return Or(out...)
}

func simplifyNot(x *Not) Expr {
	switch inner := x.E.(type) {
	case *Literal:
		if inner.Val.Null {
			return Lit(types.NullOf(types.KindBool))
		}
		return Lit(types.Bool(!inner.Val.AsBool()))
	case *Not:
		return inner.E
	case *Binary:
		if inner.Op.IsComparison() {
			var neg BinOp
			switch inner.Op {
			case OpEq:
				neg = OpNe
			case OpNe:
				neg = OpEq
			case OpLt:
				neg = OpGe
			case OpLe:
				neg = OpGt
			case OpGt:
				neg = OpLe
			default:
				neg = OpLt
			}
			return NewBinary(neg, inner.L, inner.R)
		}
	}
	return x
}

func simplifyCase(x *Case) Expr {
	// Drop arms with constant-FALSE conditions; short-circuit on a leading
	// constant-TRUE condition.
	whens := make([]When, 0, len(x.Whens))
	for _, w := range x.Whens {
		if IsFalseLiteral(w.Cond) {
			continue
		}
		if IsTrueLiteral(w.Cond) && len(whens) == 0 {
			return w.Then
		}
		whens = append(whens, w)
	}
	if len(whens) == 0 {
		if x.Else != nil {
			return x.Else
		}
		return Lit(types.NullOf(x.Type()))
	}
	if len(whens) == len(x.Whens) {
		return x
	}
	return &Case{Whens: whens, Else: x.Else}
}

// interval is a numeric range with optional open bounds, used by the
// contradiction detector.
type interval struct {
	lo, hi         float64
	loOpen, hiOpen bool
	// eqStrings collects required string equalities (v = 'x').
	eqString    string
	hasEqString bool
	impossible  bool
}

func newInterval() *interval {
	return &interval{lo: math.Inf(-1), hi: math.Inf(1)}
}

func (iv *interval) addCompare(op BinOp, v types.Value) {
	if v.Kind == types.KindString {
		if op == OpEq {
			if iv.hasEqString && iv.eqString != v.S {
				iv.impossible = true
			}
			iv.eqString = v.S
			iv.hasEqString = true
		}
		return
	}
	if !v.Kind.IsNumeric() && v.Kind != types.KindDate {
		return
	}
	f := v.AsFloat()
	switch op {
	case OpEq:
		iv.tightenLo(f, false)
		iv.tightenHi(f, false)
	case OpLt:
		iv.tightenHi(f, true)
	case OpLe:
		iv.tightenHi(f, false)
	case OpGt:
		iv.tightenLo(f, true)
	case OpGe:
		iv.tightenLo(f, false)
	}
}

func (iv *interval) tightenLo(f float64, open bool) {
	if f > iv.lo || (f == iv.lo && open && !iv.loOpen) {
		iv.lo, iv.loOpen = f, open
	}
}

func (iv *interval) tightenHi(f float64, open bool) {
	if f < iv.hi || (f == iv.hi && open && !iv.hiOpen) {
		iv.hi, iv.hiOpen = f, open
	}
}

func (iv *interval) empty() bool {
	if iv.impossible {
		return true
	}
	if iv.lo > iv.hi {
		return true
	}
	if iv.lo == iv.hi && (iv.loOpen || iv.hiOpen) {
		return true
	}
	return false
}

// Contradictory reports whether the conjunction of a and b is unsatisfiable
// by simple single-column range analysis (e.g. x > 1000 AND x < 50, or
// s = 'a' AND s = 'b'). It is sound (a true result really is a
// contradiction) but incomplete. The UnionAll fusion rule uses it for the
// L AND R ≡ FALSE shortcut from §IV.D.
func Contradictory(a, b Expr) bool {
	conj := append(Conjuncts(Simplify(a)), Conjuncts(Simplify(b))...)
	ranges := make(map[ColumnID]*interval)
	for _, c := range conj {
		if IsFalseLiteral(c) {
			return true
		}
		bin, ok := c.(*Binary)
		if !ok || !bin.Op.IsComparison() {
			continue
		}
		col, val, op, ok := normalizeComparison(bin)
		if !ok {
			continue
		}
		iv := ranges[col]
		if iv == nil {
			iv = newInterval()
			ranges[col] = iv
		}
		iv.addCompare(op, val)
		if iv.empty() {
			return true
		}
	}
	return false
}

// normalizeComparison extracts (column, literal, op) from col-op-lit or
// lit-op-col comparisons, flipping the operator in the latter case.
func normalizeComparison(b *Binary) (ColumnID, types.Value, BinOp, bool) {
	if ref, ok := b.L.(*ColumnRef); ok {
		if lit, ok := b.R.(*Literal); ok && !lit.Val.Null {
			return ref.Col.ID, lit.Val, b.Op, true
		}
	}
	if ref, ok := b.R.(*ColumnRef); ok {
		if lit, ok := b.L.(*Literal); ok && !lit.Val.Null {
			return ref.Col.ID, lit.Val, flipOp(b.Op), true
		}
	}
	return 0, types.Value{}, 0, false
}

func flipOp(op BinOp) BinOp {
	switch op {
	case OpLt:
		return OpGt
	case OpLe:
		return OpGe
	case OpGt:
		return OpLt
	case OpGe:
		return OpLe
	default:
		return op
	}
}
