package expr

import (
	"testing"

	"repro/internal/types"
)

func col(name string, k types.Kind) *Column { return NewColumn(name, k) }

func TestColumnIDsUnique(t *testing.T) {
	a := col("x", types.KindInt64)
	b := col("x", types.KindInt64)
	if a.ID == b.ID {
		t.Fatal("two NewColumn calls returned the same ID")
	}
}

func TestBinaryTypes(t *testing.T) {
	a := Ref(col("a", types.KindInt64))
	f := Ref(col("f", types.KindFloat64))
	if NewBinary(OpAdd, a, a).Type() != types.KindInt64 {
		t.Error("int + int should be int")
	}
	if NewBinary(OpAdd, a, f).Type() != types.KindFloat64 {
		t.Error("int + float should be float")
	}
	if NewBinary(OpDiv, a, a).Type() != types.KindFloat64 {
		t.Error("div should be float")
	}
	if NewBinary(OpLt, a, a).Type() != types.KindBool {
		t.Error("comparison should be bool")
	}
}

func TestExprString(t *testing.T) {
	a := col("a", types.KindInt64)
	e := NewBinary(OpGt, Ref(a), Lit(types.Int(5)))
	want := "(a#" + itoa(int(a.ID)) + " > 5)"
	if e.String() != want {
		t.Errorf("String() = %q, want %q", e.String(), want)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

type mapEnv map[ColumnID]types.Value

func (m mapEnv) Value(id ColumnID) types.Value { return m[id] }

func TestEvalArithmetic(t *testing.T) {
	a := col("a", types.KindInt64)
	env := mapEnv{a.ID: types.Int(10)}
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{NewBinary(OpAdd, Ref(a), Lit(types.Int(5))), types.Int(15)},
		{NewBinary(OpSub, Ref(a), Lit(types.Int(3))), types.Int(7)},
		{NewBinary(OpMul, Ref(a), Lit(types.Int(2))), types.Int(20)},
		{NewBinary(OpDiv, Ref(a), Lit(types.Int(4))), types.Float(2.5)},
		{NewBinary(OpMul, Ref(a), Lit(types.Float(0.5))), types.Float(5)},
		{NewBinary(OpDiv, Ref(a), Lit(types.Int(0))), types.NullOf(types.KindFloat64)},
	}
	for _, c := range cases {
		if got := Eval(c.e, env); !got.Equal(c.want) {
			t.Errorf("Eval(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalNullPropagation(t *testing.T) {
	a := col("a", types.KindInt64)
	env := mapEnv{a.ID: types.NullOf(types.KindInt64)}
	e := NewBinary(OpAdd, Ref(a), Lit(types.Int(1)))
	if got := Eval(e, env); !got.Null {
		t.Errorf("NULL + 1 = %v, want NULL", got)
	}
	cmp := NewBinary(OpEq, Ref(a), Lit(types.Int(1)))
	if got := Eval(cmp, env); !got.Null {
		t.Errorf("NULL = 1 should be NULL, got %v", got)
	}
}

func TestEvalKleeneLogic(t *testing.T) {
	b := col("b", types.KindBool)
	nullEnv := mapEnv{b.ID: types.NullOf(types.KindBool)}
	// FALSE AND NULL = FALSE.
	e := NewBinary(OpAnd, FalseExpr(), Ref(b))
	if got := Eval(e, nullEnv); got.Null || got.AsBool() {
		t.Errorf("FALSE AND NULL = %v, want false", got)
	}
	// TRUE OR NULL = TRUE.
	e = NewBinary(OpOr, TrueExpr(), Ref(b))
	if got := Eval(e, nullEnv); got.Null || !got.AsBool() {
		t.Errorf("TRUE OR NULL = %v, want true", got)
	}
	// TRUE AND NULL = NULL.
	e = NewBinary(OpAnd, TrueExpr(), Ref(b))
	if got := Eval(e, nullEnv); !got.Null {
		t.Errorf("TRUE AND NULL = %v, want NULL", got)
	}
	// FALSE OR NULL = NULL.
	e = NewBinary(OpOr, FalseExpr(), Ref(b))
	if got := Eval(e, nullEnv); !got.Null {
		t.Errorf("FALSE OR NULL = %v, want NULL", got)
	}
}

func TestEvalCase(t *testing.T) {
	a := col("a", types.KindInt64)
	e := &Case{
		Whens: []When{
			{Cond: NewBinary(OpGt, Ref(a), Lit(types.Int(10))), Then: Lit(types.String("big"))},
			{Cond: NewBinary(OpGt, Ref(a), Lit(types.Int(0))), Then: Lit(types.String("small"))},
		},
		Else: Lit(types.String("neg")),
	}
	if got := Eval(e, mapEnv{a.ID: types.Int(20)}); got.S != "big" {
		t.Errorf("CASE(20) = %v", got)
	}
	if got := Eval(e, mapEnv{a.ID: types.Int(5)}); got.S != "small" {
		t.Errorf("CASE(5) = %v", got)
	}
	if got := Eval(e, mapEnv{a.ID: types.Int(-5)}); got.S != "neg" {
		t.Errorf("CASE(-5) = %v", got)
	}
	noElse := &Case{Whens: e.Whens[:1]}
	if got := Eval(noElse, mapEnv{a.ID: types.Int(-5)}); !got.Null {
		t.Errorf("CASE without match should be NULL, got %v", got)
	}
}

func TestEvalInList(t *testing.T) {
	a := col("a", types.KindString)
	e := &InList{E: Ref(a), List: []Expr{Lit(types.String("m")), Lit(types.String("l"))}}
	if got := Eval(e, mapEnv{a.ID: types.String("m")}); !got.IsTrue() {
		t.Error("'m' IN ('m','l') should be true")
	}
	if got := Eval(e, mapEnv{a.ID: types.String("x")}); got.IsTrue() || got.Null {
		t.Error("'x' IN ('m','l') should be false")
	}
	if got := Eval(e, mapEnv{a.ID: types.NullOf(types.KindString)}); !got.Null {
		t.Error("NULL IN (...) should be NULL")
	}
	// NOT IN with a NULL element and no match is NULL.
	e2 := &InList{E: Ref(a), List: []Expr{Lit(types.String("m")), Lit(types.NullOf(types.KindString))}, Neg: true}
	if got := Eval(e2, mapEnv{a.ID: types.String("x")}); !got.Null {
		t.Errorf("'x' NOT IN ('m', NULL) = %v, want NULL", got)
	}
}

func TestEvalLike(t *testing.T) {
	a := col("a", types.KindString)
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "h%", true},
		{"hello", "%llo", true},
		{"hello", "h_llo", true},
		{"hello", "x%", false},
		{"hello", "hello", true},
		{"hello", "%%", true},
		{"", "%", true},
		{"abc", "_", false},
	}
	for _, c := range cases {
		e := &Like{E: Ref(a), Pattern: c.p}
		if got := Eval(e, mapEnv{a.ID: types.String(c.s)}); got.AsBool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.p, got.AsBool(), c.want)
		}
	}
}

func TestEvalCoalesce(t *testing.T) {
	a := col("a", types.KindInt64)
	e := &Coalesce{Args: []Expr{Ref(a), Lit(types.Int(7))}}
	if got := Eval(e, mapEnv{a.ID: types.NullOf(types.KindInt64)}); got.I != 7 {
		t.Errorf("COALESCE(NULL, 7) = %v", got)
	}
	if got := Eval(e, mapEnv{a.ID: types.Int(3)}); got.I != 3 {
		t.Errorf("COALESCE(3, 7) = %v", got)
	}
}

func TestConjunctsAndBuilders(t *testing.T) {
	a := Ref(col("a", types.KindBool))
	b := Ref(col("b", types.KindBool))
	c := Ref(col("c", types.KindBool))
	e := And(a, And(b, c))
	parts := Conjuncts(e)
	if len(parts) != 3 {
		t.Fatalf("Conjuncts = %d parts, want 3", len(parts))
	}
	if !IsTrueLiteral(And()) {
		t.Error("And() should be TRUE")
	}
	if !IsFalseLiteral(Or()) {
		t.Error("Or() should be FALSE")
	}
	if And(nil, TrueExpr(), a) != a {
		t.Error("And should drop nil and TRUE")
	}
	if len(Disjuncts(Or(a, Or(b, c)))) != 3 {
		t.Error("Disjuncts should flatten")
	}
}

func TestSubstitute(t *testing.T) {
	a := col("a", types.KindInt64)
	b := col("b", types.KindInt64)
	m := Mapping{a.ID: b}
	e := NewBinary(OpGt, Ref(a), Lit(types.Int(5)))
	got := m.Apply(e)
	want := NewBinary(OpGt, Ref(b), Lit(types.Int(5)))
	if !Equal(got, want) {
		t.Errorf("Apply = %s, want %s", got, want)
	}
	// Original untouched.
	if !Equal(e, NewBinary(OpGt, Ref(a), Lit(types.Int(5)))) {
		t.Error("Apply mutated its input")
	}
	if m.Apply(nil) != nil {
		t.Error("Apply(nil) should be nil")
	}
}

func TestMappingMergeAndResolve(t *testing.T) {
	a, b, c, d := col("a", types.KindInt64), col("b", types.KindInt64), col("c", types.KindInt64), col("d", types.KindInt64)
	m1 := Mapping{a.ID: b}
	m2 := Mapping{c.ID: d}
	m := m1.Merge(m2)
	if m.Resolve(a) != b || m.Resolve(c) != d {
		t.Error("Merge lost entries")
	}
	if m.Resolve(d) != d {
		t.Error("unmapped column should resolve to itself")
	}
}

func TestEqualAndEquivalent(t *testing.T) {
	a := col("a", types.KindInt64)
	b := col("b", types.KindInt64)
	e1 := And(NewBinary(OpGt, Ref(a), Lit(types.Int(1))), NewBinary(OpLt, Ref(b), Lit(types.Int(9))))
	e2 := And(NewBinary(OpLt, Ref(b), Lit(types.Int(9))), NewBinary(OpGt, Ref(a), Lit(types.Int(1))))
	if Equal(e1, e2) {
		t.Error("Equal should be order-sensitive")
	}
	if !Equivalent(e1, e2) {
		t.Error("Equivalent should handle AND commutativity")
	}
	eq1 := Eq(Ref(a), Ref(b))
	eq2 := Eq(Ref(b), Ref(a))
	if !Equivalent(eq1, eq2) {
		t.Error("Equivalent should handle = commutativity")
	}
	if Equivalent(NewBinary(OpGt, Ref(a), Lit(types.Int(1))), NewBinary(OpGt, Ref(a), Lit(types.Int(2)))) {
		t.Error("different literals must not be equivalent")
	}
}

func TestEquivalentUnder(t *testing.T) {
	a := col("a", types.KindInt64)
	a2 := col("a", types.KindInt64)
	m := Mapping{a2.ID: a}
	e1 := NewBinary(OpGt, Ref(a), Lit(types.Int(1)))
	e2 := NewBinary(OpGt, Ref(a2), Lit(types.Int(1)))
	if !EquivalentUnder(m, e1, e2) {
		t.Error("EquivalentUnder failed through mapping")
	}
}

func TestSimplify(t *testing.T) {
	a := Ref(col("a", types.KindBool))
	cases := []struct {
		in, want Expr
	}{
		{And(a, TrueExpr()), a},
		{NewBinary(OpAnd, a, FalseExpr()), FalseExpr()},
		{NewBinary(OpOr, a, TrueExpr()), TrueExpr()},
		{NewBinary(OpOr, a, FalseExpr()), a},
		{&Not{E: &Not{E: a}}, a},
		{NewBinary(OpAdd, Lit(types.Int(2)), Lit(types.Int(3))), Lit(types.Int(5))},
		{NewBinary(OpAnd, a, a), a},
	}
	for _, c := range cases {
		if got := Simplify(c.in); !Equal(got, c.want) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyNotComparison(t *testing.T) {
	a := col("a", types.KindInt64)
	e := &Not{E: NewBinary(OpGt, Ref(a), Lit(types.Int(5)))}
	want := NewBinary(OpLe, Ref(a), Lit(types.Int(5)))
	if got := Simplify(e); !Equal(got, want) {
		t.Errorf("Simplify(NOT >) = %s, want %s", got, want)
	}
}

func TestSimplifyCase(t *testing.T) {
	a := Ref(col("a", types.KindInt64))
	e := &Case{Whens: []When{
		{Cond: FalseExpr(), Then: Lit(types.Int(1))},
		{Cond: TrueExpr(), Then: a},
	}}
	if got := Simplify(e); !Equal(got, a) {
		t.Errorf("Simplify(CASE) = %s, want %s", got, a)
	}
}

func TestContradictory(t *testing.T) {
	a := col("a", types.KindInt64)
	s := col("s", types.KindString)
	gt1000 := NewBinary(OpGt, Ref(a), Lit(types.Int(1000)))
	lt50 := NewBinary(OpLt, Ref(a), Lit(types.Int(50)))
	if !Contradictory(gt1000, lt50) {
		t.Error("a>1000 AND a<50 should be contradictory")
	}
	if Contradictory(gt1000, NewBinary(OpGt, Ref(a), Lit(types.Int(2000)))) {
		t.Error("a>1000 AND a>2000 is satisfiable")
	}
	eqA := Eq(Ref(s), Lit(types.String("x")))
	eqB := Eq(Ref(s), Lit(types.String("y")))
	if !Contradictory(eqA, eqB) {
		t.Error("s='x' AND s='y' should be contradictory")
	}
	if !Contradictory(Eq(Ref(a), Lit(types.Int(1))), Eq(Ref(a), Lit(types.Int(2)))) {
		t.Error("a=1 AND a=2 should be contradictory")
	}
	// Flipped literal side.
	if !Contradictory(NewBinary(OpLt, Lit(types.Int(1000)), Ref(a)), lt50) {
		t.Error("1000<a AND a<50 should be contradictory")
	}
	// Boundary: a >= 5 AND a <= 5 is satisfiable; a > 5 AND a <= 5 is not.
	if Contradictory(NewBinary(OpGe, Ref(a), Lit(types.Int(5))), NewBinary(OpLe, Ref(a), Lit(types.Int(5)))) {
		t.Error("a>=5 AND a<=5 is satisfiable")
	}
	if !Contradictory(NewBinary(OpGt, Ref(a), Lit(types.Int(5))), NewBinary(OpLe, Ref(a), Lit(types.Int(5)))) {
		t.Error("a>5 AND a<=5 should be contradictory")
	}
}

func TestColumnsAndRefersOnly(t *testing.T) {
	a := col("a", types.KindInt64)
	b := col("b", types.KindInt64)
	e := NewBinary(OpAdd, Ref(a), Ref(b))
	cols := Columns(e)
	if !cols[a.ID] || !cols[b.ID] || len(cols) != 2 {
		t.Errorf("Columns = %v", cols)
	}
	if !RefersOnly(e, map[ColumnID]bool{a.ID: true, b.ID: true}) {
		t.Error("RefersOnly should accept full set")
	}
	if RefersOnly(e, map[ColumnID]bool{a.ID: true}) {
		t.Error("RefersOnly should reject missing column")
	}
}

func TestAggCallString(t *testing.T) {
	a := col("a", types.KindInt64)
	agg := AggCall{Fn: AggSum, Arg: Ref(a), Mask: NewBinary(OpGt, Ref(a), Lit(types.Int(0)))}
	got := agg.String()
	if got == "" || got == "SUM" {
		t.Errorf("String() = %q", got)
	}
	cs := AggCall{Fn: AggCountStar}
	if cs.String() != "COUNT(*)" {
		t.Errorf("COUNT(*) String() = %q", cs.String())
	}
}

func TestAggResultType(t *testing.T) {
	a := col("a", types.KindInt64)
	f := col("f", types.KindFloat64)
	if (AggCall{Fn: AggCountStar}).ResultType() != types.KindInt64 {
		t.Error("COUNT(*) should be int")
	}
	if (AggCall{Fn: AggSum, Arg: Ref(a)}).ResultType() != types.KindInt64 {
		t.Error("SUM(int) should be int")
	}
	if (AggCall{Fn: AggSum, Arg: Ref(f)}).ResultType() != types.KindFloat64 {
		t.Error("SUM(float) should be float")
	}
	if (AggCall{Fn: AggAvg, Arg: Ref(a)}).ResultType() != types.KindFloat64 {
		t.Error("AVG should be float")
	}
	if (AggCall{Fn: AggMin, Arg: Ref(f)}).ResultType() != types.KindFloat64 {
		t.Error("MIN should preserve type")
	}
}

func TestAggEqual(t *testing.T) {
	a := col("a", types.KindInt64)
	x := AggCall{Fn: AggSum, Arg: Ref(a)}
	y := AggCall{Fn: AggSum, Arg: Ref(a), Mask: TrueExpr()}
	if !AggEqual(x, y) {
		t.Error("nil mask and TRUE mask should compare equal")
	}
	z := AggCall{Fn: AggSum, Arg: Ref(a), Mask: Eq(Ref(a), Lit(types.Int(1)))}
	if AggEqual(x, z) {
		t.Error("different masks must not be equal")
	}
}

func TestTransformRebuilds(t *testing.T) {
	a := col("a", types.KindInt64)
	e := NewBinary(OpAdd, Ref(a), Lit(types.Int(1)))
	got := Transform(e, func(x Expr) Expr {
		if l, ok := x.(*Literal); ok && l.Val.Kind == types.KindInt64 {
			return Lit(types.Int(l.Val.I + 100))
		}
		return x
	})
	want := NewBinary(OpAdd, Ref(a), Lit(types.Int(101)))
	if !Equal(got, want) {
		t.Errorf("Transform = %s, want %s", got, want)
	}
}

func TestEvalConst(t *testing.T) {
	if v, ok := EvalConst(NewBinary(OpMul, Lit(types.Int(6)), Lit(types.Int(7)))); !ok || v.I != 42 {
		t.Errorf("EvalConst = %v, %v", v, ok)
	}
	if _, ok := EvalConst(Ref(col("a", types.KindInt64))); ok {
		t.Error("EvalConst should fail on column refs")
	}
}
