// Package expr implements the scalar expression algebra of the engine:
// column references with process-unique identities, literals, arithmetic,
// comparisons, three-valued boolean logic, CASE, IN, IS NULL, and masked
// aggregate calls (the paper's §III.E aggregate/mask pairs).
//
// The package also provides the machinery query fusion is built from:
// column Mappings (the M component of Fuse results), substitution M(expr),
// structural equality and equivalence-under-mapping, conjunct manipulation,
// simplification with constant folding, and a contradiction detector used
// by the UnionAll rule's L AND R ≡ FALSE shortcut.
package expr

import (
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// ColumnID uniquely identifies a column instance across the whole process.
// Each scan of a table allocates fresh IDs for its output columns, matching
// the paper's note that "the engine follows the common practice of
// assigning new column identities to each instance of the same table".
type ColumnID int32

var nextColumnID atomic.Int32

// Column is a named, typed column instance. Columns are shared by pointer
// between an operator's output schema and the ColumnRefs above it.
type Column struct {
	ID   ColumnID
	Name string
	Type types.Kind
}

// NewColumn allocates a column with a fresh unique ID.
func NewColumn(name string, t types.Kind) *Column {
	return &Column{ID: ColumnID(nextColumnID.Add(1)), Name: name, Type: t}
}

// String renders the column as name#id for unambiguous plan output.
func (c *Column) String() string { return c.Name + "#" + strconv.Itoa(int(c.ID)) }

// Expr is a scalar expression tree node. Implementations are immutable;
// rewrites build new nodes.
type Expr interface {
	// Type returns the result kind of the expression.
	Type() types.Kind
	// Children returns the direct sub-expressions.
	Children() []Expr
	// WithChildren returns a copy of the node with the given children; the
	// slice length must match Children().
	WithChildren(ch []Expr) Expr
	// String renders the expression for plan output.
	String() string
}

// ColumnRef references a column instance.
type ColumnRef struct {
	Col *Column
}

// Ref is shorthand for constructing a ColumnRef.
func Ref(c *Column) *ColumnRef { return &ColumnRef{Col: c} }

func (e *ColumnRef) Type() types.Kind         { return e.Col.Type }
func (e *ColumnRef) Children() []Expr         { return nil }
func (e *ColumnRef) WithChildren([]Expr) Expr { return e }
func (e *ColumnRef) String() string           { return e.Col.String() }

// Literal is a constant value.
type Literal struct {
	Val types.Value
}

// Lit constructs a literal.
func Lit(v types.Value) *Literal { return &Literal{Val: v} }

// TrueExpr and FalseExpr are the canonical boolean literals.
func TrueExpr() Expr  { return Lit(types.Bool(true)) }
func FalseExpr() Expr { return Lit(types.Bool(false)) }

func (e *Literal) Type() types.Kind         { return e.Val.Kind }
func (e *Literal) Children() []Expr         { return nil }
func (e *Literal) WithChildren([]Expr) Expr { return e }
func (e *Literal) String() string           { return e.Val.String() }

// IsTrueLiteral reports whether e is the literal TRUE.
func IsTrueLiteral(e Expr) bool {
	l, ok := e.(*Literal)
	return ok && l.Val.IsTrue()
}

// IsFalseLiteral reports whether e is the literal FALSE (non-NULL).
func IsFalseLiteral(e Expr) bool {
	l, ok := e.(*Literal)
	return ok && !l.Val.Null && l.Val.Kind == types.KindBool && l.Val.I == 0
}

// BinOp enumerates binary operators.
type BinOp uint8

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"}

// String returns the SQL spelling of the operator.
func (op BinOp) String() string { return binOpNames[op] }

// IsComparison reports whether the operator is a comparison.
func (op BinOp) IsComparison() bool { return op >= OpEq && op <= OpGe }

// IsArithmetic reports whether the operator is arithmetic.
func (op BinOp) IsArithmetic() bool { return op <= OpDiv }

// Binary is a binary operation node. memo caches the rendered form:
// expression nodes are immutable and built per query, and the optimizer
// renders large fused conditions repeatedly (normalization, equivalence,
// dedup), so caching turns those passes from quadratic to linear.
type Binary struct {
	Op   BinOp
	L, R Expr
	memo string
}

// NewBinary constructs a binary node.
func NewBinary(op BinOp, l, r Expr) *Binary { return &Binary{Op: op, L: l, R: r} }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return NewBinary(OpEq, l, r) }

func (e *Binary) Type() types.Kind {
	if e.Op.IsArithmetic() {
		if e.Op == OpDiv {
			return types.KindFloat64
		}
		return types.NumericResult(e.L.Type(), e.R.Type())
	}
	return types.KindBool
}
func (e *Binary) Children() []Expr { return []Expr{e.L, e.R} }
func (e *Binary) WithChildren(ch []Expr) Expr {
	return &Binary{Op: e.Op, L: ch[0], R: ch[1]}
}
func (e *Binary) String() string {
	if e.memo == "" {
		e.memo = render(e)
	}
	return e.memo
}

// Not is logical negation.
type Not struct {
	E Expr
}

func (e *Not) Type() types.Kind            { return types.KindBool }
func (e *Not) Children() []Expr            { return []Expr{e.E} }
func (e *Not) WithChildren(ch []Expr) Expr { return &Not{E: ch[0]} }
func (e *Not) String() string              { return render(e) }

// IsNull tests for NULL (or NOT NULL when Neg is set).
type IsNull struct {
	E   Expr
	Neg bool
}

func (e *IsNull) Type() types.Kind            { return types.KindBool }
func (e *IsNull) Children() []Expr            { return []Expr{e.E} }
func (e *IsNull) WithChildren(ch []Expr) Expr { return &IsNull{E: ch[0], Neg: e.Neg} }
func (e *IsNull) String() string              { return render(e) }

// NotNull builds e IS NOT NULL.
func NotNull(e Expr) Expr { return &IsNull{E: e, Neg: true} }

// When is one WHEN...THEN arm of a CASE expression.
type When struct {
	Cond Expr
	Then Expr
}

// Case is a searched CASE expression (the binder desugars the simple form).
type Case struct {
	Whens []When
	Else  Expr // nil means ELSE NULL
	memo  string
}

func (e *Case) Type() types.Kind {
	t := e.Whens[0].Then.Type()
	if t == types.KindUnknown && e.Else != nil {
		return e.Else.Type()
	}
	return t
}
func (e *Case) Children() []Expr {
	ch := make([]Expr, 0, len(e.Whens)*2+1)
	for _, w := range e.Whens {
		ch = append(ch, w.Cond, w.Then)
	}
	if e.Else != nil {
		ch = append(ch, e.Else)
	}
	return ch
}
func (e *Case) WithChildren(ch []Expr) Expr {
	n := &Case{Whens: make([]When, len(e.Whens))}
	for i := range e.Whens {
		n.Whens[i] = When{Cond: ch[2*i], Then: ch[2*i+1]}
	}
	if e.Else != nil {
		n.Else = ch[len(ch)-1]
	}
	return n
}
func (e *Case) String() string {
	if e.memo == "" {
		e.memo = render(e)
	}
	return e.memo
}

// InList tests membership in a literal list (IN subqueries are planned as
// semi-joins by the binder and never reach this node).
type InList struct {
	E    Expr
	List []Expr
	Neg  bool
}

func (e *InList) Type() types.Kind { return types.KindBool }
func (e *InList) Children() []Expr {
	ch := make([]Expr, 0, len(e.List)+1)
	ch = append(ch, e.E)
	ch = append(ch, e.List...)
	return ch
}
func (e *InList) WithChildren(ch []Expr) Expr {
	return &InList{E: ch[0], List: ch[1:], Neg: e.Neg}
}
func (e *InList) String() string { return render(e) }

// Like is a SQL LIKE pattern match with % and _ wildcards.
type Like struct {
	E       Expr
	Pattern string
}

func (e *Like) Type() types.Kind            { return types.KindBool }
func (e *Like) Children() []Expr            { return []Expr{e.E} }
func (e *Like) WithChildren(ch []Expr) Expr { return &Like{E: ch[0], Pattern: e.Pattern} }
func (e *Like) String() string              { return render(e) }

// Coalesce returns the first non-NULL argument.
type Coalesce struct {
	Args []Expr
}

func (e *Coalesce) Type() types.Kind            { return e.Args[0].Type() }
func (e *Coalesce) Children() []Expr            { return e.Args }
func (e *Coalesce) WithChildren(ch []Expr) Expr { return &Coalesce{Args: ch} }
func (e *Coalesce) String() string              { return render(e) }

// AggFunc enumerates aggregate functions.
type AggFunc uint8

const (
	AggCountStar AggFunc = iota
	AggCount
	AggSum
	AggAvg
	AggMin
	AggMax
)

var aggNames = [...]string{"COUNT(*)", "COUNT", "SUM", "AVG", "MIN", "MAX"}

// String returns the SQL name of the aggregate function.
func (f AggFunc) String() string { return aggNames[f] }

// AggCall is a masked aggregate: the paper's (a, m) pair from §III.E. The
// aggregate only considers input rows for which Mask evaluates to TRUE.
// Mask == nil means TRUE. Distinct is set by the binder for DISTINCT
// aggregates and lowered to a MarkDistinct operator + mask before
// optimization, so it is always false in optimized plans.
type AggCall struct {
	Fn       AggFunc
	Arg      Expr // nil for COUNT(*)
	Mask     Expr // nil means TRUE
	Distinct bool
}

// ResultType returns the kind the aggregate produces.
func (a AggCall) ResultType() types.Kind {
	switch a.Fn {
	case AggCountStar, AggCount:
		return types.KindInt64
	case AggAvg:
		return types.KindFloat64
	case AggSum:
		if a.Arg != nil && a.Arg.Type() == types.KindInt64 {
			return types.KindInt64
		}
		return types.KindFloat64
	default: // MIN / MAX
		return a.Arg.Type()
	}
}

// String renders the aggregate with its FILTER mask if present.
func (a AggCall) String() string {
	var b strings.Builder
	if a.Fn == AggCountStar {
		b.WriteString("COUNT(*)")
	} else {
		b.WriteString(a.Fn.String())
		b.WriteString("(")
		if a.Distinct {
			b.WriteString("DISTINCT ")
		}
		write(&b, a.Arg)
		b.WriteString(")")
	}
	if a.Mask != nil && !IsTrueLiteral(a.Mask) {
		b.WriteString(" FILTER (WHERE ")
		write(&b, a.Mask)
		b.WriteString(")")
	}
	return b.String()
}

// render is the shared fmt-free renderer behind every String method; the
// recursive write avoids per-node Sprintf allocations, which otherwise
// dominate optimization-time profiles (plan signatures, normalization and
// equivalence checks all render expressions).
func render(e Expr) string {
	var b strings.Builder
	write(&b, e)
	return b.String()
}

func write(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColumnRef:
		b.WriteString(x.Col.Name)
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(int(x.Col.ID)))
	case *Literal:
		b.WriteString(x.Val.String())
	case *Binary:
		b.WriteByte('(')
		write(b, x.L)
		b.WriteByte(' ')
		b.WriteString(x.Op.String())
		b.WriteByte(' ')
		write(b, x.R)
		b.WriteByte(')')
	case *Not:
		b.WriteString("(NOT ")
		write(b, x.E)
		b.WriteByte(')')
	case *IsNull:
		b.WriteByte('(')
		write(b, x.E)
		if x.Neg {
			b.WriteString(" IS NOT NULL)")
		} else {
			b.WriteString(" IS NULL)")
		}
	case *Case:
		b.WriteString("CASE")
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			write(b, w.Cond)
			b.WriteString(" THEN ")
			write(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			write(b, x.Else)
		}
		b.WriteString(" END")
	case *InList:
		b.WriteByte('(')
		write(b, x.E)
		if x.Neg {
			b.WriteString(" NOT IN (")
		} else {
			b.WriteString(" IN (")
		}
		for i, it := range x.List {
			if i > 0 {
				b.WriteString(", ")
			}
			write(b, it)
		}
		b.WriteString("))")
	case *Like:
		b.WriteByte('(')
		write(b, x.E)
		b.WriteString(" LIKE '")
		b.WriteString(x.Pattern)
		b.WriteString("')")
	case *Coalesce:
		b.WriteString("COALESCE(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			write(b, a)
		}
		b.WriteByte(')')
	default:
		b.WriteString(e.String())
	}
}
