package tpcds

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/storage"
	"repro/internal/types"
)

// Scale constants: row counts at Scale = 1. The generator is a synthetic
// stand-in for the official dsdgen at 3TB (which is proprietary tooling and
// far beyond a test-process footprint); it preserves the properties the
// queries exercise — date-partitioned facts, realistic key relationships,
// skewed measures, shared order numbers for the Q95 self join — so plan
// shapes and relative metrics carry over.
const (
	baseDays         = 1826 // 1998-01-01 .. 2002-12-31
	baseItems        = 1000
	baseStores       = 20
	baseCustomers    = 2000
	baseAddresses    = 1000
	baseWebSites     = 10
	baseReasons      = 10
	baseHousehold    = 100
	baseTimes        = 1440
	baseStoreSales   = 60000
	baseStoreReturns = 12000
	baseCatalogSales = 20000
	baseWebSales     = 20000
	baseWebReturns   = 4000

	firstDateSK = 2450815
)

// Data holds generated rows per table.
type Data struct {
	Scale  float64
	Tables map[string][][]types.Value
}

// Generate builds a deterministic dataset at the given scale (1.0 ≈ 100k
// fact rows total) from the given seed.
func Generate(scale float64, seed int64) *Data {
	if scale <= 0 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{Scale: scale, Tables: map[string][][]types.Value{}}

	n := func(base int) int {
		v := int(math.Round(float64(base) * scale))
		if v < 1 {
			v = 1
		}
		return v
	}
	// Dimensions do not scale linearly with facts (square-root scaling
	// keeps fan-outs realistic at small scales).
	dim := func(base int) int {
		v := int(math.Round(float64(base) * math.Sqrt(scale)))
		if v < 1 {
			v = 1
		}
		return v
	}

	days := baseDays // the calendar does not scale
	items := dim(baseItems)
	stores := dim(baseStores)
	customers := dim(baseCustomers)
	addresses := dim(baseAddresses)
	webSites := dim(baseWebSites)
	households := dim(baseHousehold)

	// date_dim: d_month_seq 1188 (1998-01) .. 1247 (2002-12), so the
	// paper's BETWEEN 1212 AND 1247 covers 2000-01 onward.
	var dateRows [][]types.Value
	day := 0
	for year := 1998; year <= 2002; year++ {
		for moy := 1; moy <= 12; moy++ {
			dom := 1
			daysInMonth := 30
			if moy == 2 {
				daysInMonth = 28
			}
			for ; dom <= daysInMonth && day < days; dom++ {
				seq := int64(1188 + (year-1998)*12 + (moy - 1))
				dateRows = append(dateRows, []types.Value{
					types.Int(int64(firstDateSK + day)),
					types.Int(int64(year)),
					types.Int(int64(moy)),
					types.Int(int64(dom)),
					types.Int(seq),
					types.String(dayNames[day%7]),
				})
				day++
			}
		}
	}
	d.Tables["date_dim"] = dateRows
	maxDate := int64(firstDateSK + len(dateRows) - 1)

	randDate := func() int64 { return firstDateSK + rng.Int63n(int64(len(dateRows))) }

	var itemRows [][]types.Value
	for i := 1; i <= items; i++ {
		itemRows = append(itemRows, []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("ITEM%06d", i)),
			types.String(fmt.Sprintf("description of item %d", i)),
			types.Int(int64(1 + rng.Intn(500))),
			types.String(brands[rng.Intn(len(brands))]),
			types.Int(int64(1 + rng.Intn(10))),
			types.String(categories[rng.Intn(len(categories))]),
			types.String(sizes[rng.Intn(len(sizes))]),
			types.String(colors[rng.Intn(len(colors))]),
			types.Float(round2(0.5 + rng.Float64()*99)),
		})
	}
	d.Tables["item"] = itemRows

	var storeRows [][]types.Value
	for i := 1; i <= stores; i++ {
		storeRows = append(storeRows, []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("STORE%04d", i)),
			types.String(fmt.Sprintf("Store #%d", i)),
			types.String(states[rng.Intn(len(states))]),
			types.String(fmt.Sprintf("City%02d", rng.Intn(30))),
		})
	}
	d.Tables["store"] = storeRows

	var custRows [][]types.Value
	for i := 1; i <= customers; i++ {
		custRows = append(custRows, []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("CUST%08d", i)),
			types.String(firstNames[rng.Intn(len(firstNames))]),
			types.String(lastNames[rng.Intn(len(lastNames))]),
			types.Int(int64(1 + rng.Intn(addresses))),
		})
	}
	d.Tables["customer"] = custRows

	var addrRows [][]types.Value
	for i := 1; i <= addresses; i++ {
		addrRows = append(addrRows, []types.Value{
			types.Int(int64(i)),
			types.String(states[rng.Intn(len(states))]),
			types.String(fmt.Sprintf("City%02d", rng.Intn(30))),
		})
	}
	d.Tables["customer_address"] = addrRows

	var siteRows [][]types.Value
	for i := 1; i <= webSites; i++ {
		siteRows = append(siteRows, []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("pri%d", i)),
		})
	}
	d.Tables["web_site"] = siteRows

	var reasonRows [][]types.Value
	for i := 1; i <= baseReasons; i++ {
		reasonRows = append(reasonRows, []types.Value{
			types.Int(int64(i)),
			types.String(fmt.Sprintf("reason %d", i)),
		})
	}
	d.Tables["reason"] = reasonRows

	var hdRows [][]types.Value
	for i := 1; i <= households; i++ {
		hdRows = append(hdRows, []types.Value{
			types.Int(int64(i)),
			types.Int(int64(rng.Intn(10))),
			types.Int(int64(rng.Intn(5))),
		})
	}
	d.Tables["household_demographics"] = hdRows

	var timeRows [][]types.Value
	for i := 0; i < baseTimes; i++ {
		timeRows = append(timeRows, []types.Value{
			types.Int(int64(i)),
			types.Int(int64(i / 60)),
			types.Int(int64(i % 60)),
		})
	}
	d.Tables["time_dim"] = timeRows

	// Skewed price helper: a heavy tail makes averages discriminative.
	price := func() float64 {
		p := rng.Float64()
		return round2(1 + 200*p*p*p)
	}

	var ssRows [][]types.Value
	for i := 0; i < n(baseStoreSales); i++ {
		list := price()
		sales := round2(list * (0.4 + 0.6*rng.Float64()))
		ssRows = append(ssRows, []types.Value{
			types.Int(randDate()),
			types.Int(rng.Int63n(baseTimes)),
			types.Int(int64(1 + rng.Intn(items))),
			types.Int(int64(1 + rng.Intn(customers))),
			types.Int(int64(1 + rng.Intn(households))),
			types.Int(int64(1 + rng.Intn(addresses))),
			types.Int(int64(1 + rng.Intn(stores))),
			types.Int(int64(1 + rng.Intn(100))),
			types.Float(list),
			types.Float(sales),
			types.Float(round2(list * 0.1 * rng.Float64())),
			types.Float(round2(sales * float64(1+rng.Intn(10)))),
			types.Float(round2(list * 0.05 * rng.Float64())),
			types.Float(round2(sales - list*0.7)),
		})
	}
	d.Tables["store_sales"] = ssRows

	var srRows [][]types.Value
	for i := 0; i < n(baseStoreReturns); i++ {
		srRows = append(srRows, []types.Value{
			types.Int(randDate()),
			types.Int(int64(1 + rng.Intn(items))),
			types.Int(int64(1 + rng.Intn(customers))),
			types.Int(int64(1 + rng.Intn(stores))),
			types.Float(price()),
			types.Float(round2(rng.Float64() * 50)),
		})
	}
	d.Tables["store_returns"] = srRows

	var csRows [][]types.Value
	for i := 0; i < n(baseCatalogSales); i++ {
		csRows = append(csRows, []types.Value{
			types.Int(randDate()),
			types.Int(int64(1 + rng.Intn(items))),
			types.Int(int64(1 + rng.Intn(customers))),
			types.Int(int64(1 + rng.Intn(100))),
			types.Float(price()),
		})
	}
	d.Tables["catalog_sales"] = csRows

	numWebSales := n(baseWebSales)
	numOrders := numWebSales/3 + 1
	var wsRows [][]types.Value
	for i := 0; i < numWebSales; i++ {
		soldDate := randDate()
		shipDate := soldDate + rng.Int63n(90)
		if shipDate > maxDate {
			shipDate = maxDate
		}
		wsRows = append(wsRows, []types.Value{
			types.Int(soldDate),
			types.Int(shipDate),
			types.Int(int64(1 + rng.Intn(items))),
			types.Int(int64(1 + rng.Intn(customers))),
			types.Int(int64(1 + rng.Intn(addresses))),
			types.Int(int64(1 + rng.Intn(webSites))),
			types.Int(int64(1 + rng.Intn(numOrders))),
			types.Int(int64(1 + rng.Intn(5))),
			types.Int(int64(1 + rng.Intn(100))),
			types.Float(price()),
			types.Float(round2(rng.Float64() * 20)),
			types.Float(round2(rng.Float64()*100 - 30)),
		})
	}
	d.Tables["web_sales"] = wsRows

	var wrRows [][]types.Value
	for i := 0; i < n(baseWebReturns); i++ {
		wrRows = append(wrRows, []types.Value{
			types.Int(randDate()),
			types.Int(int64(1 + rng.Intn(numOrders))),
			types.Int(int64(1 + rng.Intn(items))),
			types.Int(int64(1 + rng.Intn(customers))),
			types.Int(int64(1 + rng.Intn(addresses))),
			types.Float(round2(rng.Float64() * 80)),
		})
	}
	d.Tables["web_returns"] = wrRows

	return d
}

// LoadAll ingests every generated table into the store.
func (d *Data) LoadAll(st *storage.Store) error {
	for name, rows := range d.Tables {
		if err := st.Load(name, rows); err != nil {
			return fmt.Errorf("tpcds: loading %s: %w", name, err)
		}
	}
	return nil
}

// NewLoadedStore is the one-call setup used by tests, examples and benches.
func NewLoadedStore(scale float64, seed int64) (*storage.Store, error) {
	cat := NewCatalog()
	st := storage.NewStore(cat)
	if err := Generate(scale, seed).LoadAll(st); err != nil {
		return nil, err
	}
	return st, nil
}

func round2(f float64) float64 { return math.Round(f*100) / 100 }

var (
	dayNames   = []string{"Monday", "Tuesday", "Wednesday", "Thursday", "Friday", "Saturday", "Sunday"}
	brands     = []string{"amalgimporto", "edu packscholar", "exportiimporto", "scholarmaxi", "univmaxi", "importoamalg", "brandbrand", "corpnameless"}
	categories = []string{"Music", "Books", "Electronics", "Home", "Sports", "Shoes", "Jewelry", "Men", "Women", "Children"}
	sizes      = []string{"small", "medium", "large", "extra large", "petite", "N/A"}
	colors     = []string{"red", "green", "blue", "yellow", "black", "white", "purple", "orange"}
	states     = []string{"TN", "CA", "WA", "NY", "TX", "GA", "OH", "IL", "FL", "MI"}
	firstNames = []string{"John", "Mary", "James", "Linda", "Robert", "Susan", "Michael", "Karen"}
	lastNames  = []string{"Smith", "Jones", "Brown", "Wilson", "Taylor", "Lee", "White", "Clark"}
)
