package tpcds

// Query is one workload entry.
type Query struct {
	// Name is the TPC-DS identifier (q01, q09, ...) or filler id (f01...).
	Name string
	// SQL is the query text (the paper's variant for affected queries).
	SQL string
	// Affected marks queries the paper reports as changed by the fusion
	// rules (Figures 1 and 2).
	Affected bool
	// Rules lists the fusion rules expected to fire.
	Rules []string
	// Pattern describes which paper section the query exercises.
	Pattern string
}

// AffectedQueries returns the eight queries of the paper's Figures 1 and 2.
func AffectedQueries() []Query {
	var out []Query
	for _, q := range Queries() {
		if q.Affected {
			out = append(out, q)
		}
	}
	return out
}

// FillerQueries returns the fusion-neutral remainder of the workload.
func FillerQueries() []Query {
	var out []Query
	for _, q := range Queries() {
		if !q.Affected {
			out = append(out, q)
		}
	}
	return out
}

// Get returns a query by name.
func Get(name string) (Query, bool) {
	for _, q := range Queries() {
		if q.Name == name {
			return q, true
		}
	}
	return Query{}, false
}

// Queries returns the full workload: the paper's eight affected queries
// plus twenty filler queries standing in for the untouched remainder of
// the 99-query benchmark.
func Queries() []Query {
	return []Query{
		{
			Name:     "q01",
			Affected: true,
			Rules:    []string{"GroupByJoinToWindow"},
			Pattern:  "§V.A decorrelation + window rewrite",
			SQL: `
WITH customer_total_return AS (
  SELECT sr_customer_sk AS ctr_customer_sk,
         sr_store_sk AS ctr_store_sk,
         SUM(sr_return_amt) AS ctr_total_return
  FROM store_returns, date_dim
  WHERE sr_returned_date_sk = d_date_sk AND d_year = 2000
  GROUP BY sr_customer_sk, sr_store_sk)
SELECT c_customer_id
FROM customer_total_return ctr1, store, customer
WHERE ctr1.ctr_total_return > (
    SELECT AVG(ctr_total_return) * 1.2
    FROM customer_total_return ctr2
    WHERE ctr1.ctr_store_sk = ctr2.ctr_store_sk)
  AND s_store_sk = ctr1.ctr_store_sk
  AND s_state = 'TN'
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id LIMIT 100`,
		},
		{
			Name:     "q09",
			Affected: true,
			Rules:    []string{"JoinOnKeys"},
			Pattern:  "§V.B scalar aggregate merging",
			SQL: `
SELECT CASE
         WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20) > 12000
         THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20)
         ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20) END AS bucket1,
       CASE
         WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 21 AND 40) > 12000
         THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 21 AND 40)
         ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 21 AND 40) END AS bucket2,
       CASE
         WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 41 AND 60) > 12000
         THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 41 AND 60)
         ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 41 AND 60) END AS bucket3,
       CASE
         WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 61 AND 80) > 12000
         THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 61 AND 80)
         ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 61 AND 80) END AS bucket4,
       CASE
         WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 81 AND 100) > 12000
         THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 81 AND 100)
         ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 81 AND 100) END AS bucket5
FROM reason
WHERE r_reason_sk = 1`,
		},
		{
			Name:     "q23",
			Affected: true,
			Rules:    []string{"UnionAllOnJoin"},
			Pattern:  "§V.C union refactoring over different fact tables",
			SQL: `
WITH freq_items AS (
  SELECT ss_item_sk AS item_sk
  FROM store_sales, date_dim
  WHERE ss_sold_date_sk = d_date_sk AND d_year = 1999
  GROUP BY ss_item_sk
  HAVING COUNT(*) > 8),
best_customer AS (
  SELECT ss_customer_sk AS cust_sk
  FROM store_sales
  GROUP BY ss_customer_sk
  HAVING SUM(ss_sales_price) > 900)
SELECT SUM(sales) AS total_sales FROM (
  SELECT cs_quantity * cs_list_price AS sales
  FROM catalog_sales, date_dim
  WHERE d_year = 1999 AND d_moy = 1 AND cs_sold_date_sk = d_date_sk
    AND cs_item_sk IN (SELECT item_sk FROM freq_items)
    AND cs_bill_customer_sk IN (SELECT cust_sk FROM best_customer)
  UNION ALL
  SELECT ws_quantity * ws_list_price AS sales
  FROM web_sales, date_dim
  WHERE d_year = 1999 AND d_moy = 1 AND ws_sold_date_sk = d_date_sk
    AND ws_item_sk IN (SELECT item_sk FROM freq_items)
    AND ws_bill_customer_sk IN (SELECT cust_sk FROM best_customer)) x`,
		},
		{
			Name:     "q28",
			Affected: true,
			Rules:    []string{"JoinOnKeys"},
			Pattern:  "§V.B scalar aggregates with DISTINCT (MarkDistinct fusion)",
			SQL: `
SELECT b1.b1_lp, b1.b1_cnt, b1.b1_cntd,
       b2.b2_lp, b2.b2_cnt, b2.b2_cntd,
       b3.b3_lp, b3.b3_cnt, b3.b3_cntd,
       b4.b4_lp, b4.b4_cnt, b4.b4_cntd,
       b5.b5_lp, b5.b5_cnt, b5.b5_cntd,
       b6.b6_lp, b6.b6_cnt, b6.b6_cntd
FROM
 (SELECT AVG(ss_list_price) AS b1_lp, COUNT(ss_list_price) AS b1_cnt, COUNT(DISTINCT ss_list_price) AS b1_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 0 AND 5
    AND (ss_list_price BETWEEN 10 AND 60 OR ss_coupon_amt BETWEEN 1 AND 5)) b1,
 (SELECT AVG(ss_list_price) AS b2_lp, COUNT(ss_list_price) AS b2_cnt, COUNT(DISTINCT ss_list_price) AS b2_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 6 AND 10
    AND (ss_list_price BETWEEN 20 AND 70 OR ss_coupon_amt BETWEEN 2 AND 6)) b2,
 (SELECT AVG(ss_list_price) AS b3_lp, COUNT(ss_list_price) AS b3_cnt, COUNT(DISTINCT ss_list_price) AS b3_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 11 AND 15
    AND (ss_list_price BETWEEN 30 AND 80 OR ss_coupon_amt BETWEEN 3 AND 7)) b3,
 (SELECT AVG(ss_list_price) AS b4_lp, COUNT(ss_list_price) AS b4_cnt, COUNT(DISTINCT ss_list_price) AS b4_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 16 AND 20
    AND (ss_list_price BETWEEN 40 AND 90 OR ss_coupon_amt BETWEEN 4 AND 8)) b4,
 (SELECT AVG(ss_list_price) AS b5_lp, COUNT(ss_list_price) AS b5_cnt, COUNT(DISTINCT ss_list_price) AS b5_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 21 AND 25
    AND (ss_list_price BETWEEN 50 AND 100 OR ss_coupon_amt BETWEEN 5 AND 9)) b5,
 (SELECT AVG(ss_list_price) AS b6_lp, COUNT(ss_list_price) AS b6_cnt, COUNT(DISTINCT ss_list_price) AS b6_cntd
  FROM store_sales
  WHERE ss_quantity BETWEEN 26 AND 30
    AND (ss_list_price BETWEEN 60 AND 110 OR ss_coupon_amt BETWEEN 6 AND 10)) b6`,
		},
		{
			Name:     "q30",
			Affected: true,
			Rules:    []string{"GroupByJoinToWindow"},
			Pattern:  "§V.A window rewrite over web returns",
			SQL: `
WITH customer_total_return AS (
  SELECT wr_returning_customer_sk AS ctr_customer_sk,
         ca_state AS ctr_state,
         SUM(wr_return_amt) AS ctr_total_return
  FROM web_returns, date_dim, customer_address
  WHERE wr_returned_date_sk = d_date_sk AND d_year = 2000
    AND wr_returning_addr_sk = ca_address_sk
  GROUP BY wr_returning_customer_sk, ca_state)
SELECT c_customer_id
FROM customer_total_return ctr1, customer
WHERE ctr1.ctr_total_return > (
    SELECT AVG(ctr_total_return) * 1.2
    FROM customer_total_return ctr2
    WHERE ctr1.ctr_state = ctr2.ctr_state)
  AND ctr1.ctr_customer_sk = c_customer_sk
ORDER BY c_customer_id LIMIT 100`,
		},
		{
			Name:     "q65",
			Affected: true,
			Rules:    []string{"GroupByJoinToWindow"},
			Pattern:  "§I motivating example: aggregate joined back to its input",
			SQL: `
SELECT s_store_name, i_item_desc, revenue
FROM store, item,
    (SELECT ss_store_sk, AVG(revenue) AS ave
     FROM (SELECT ss_store_sk, ss_item_sk,
               SUM(ss_sales_price) AS revenue
           FROM store_sales, date_dim
           WHERE ss_sold_date_sk = d_date_sk
         AND d_month_seq BETWEEN 1212 AND 1247
           GROUP BY ss_store_sk, ss_item_sk) sa
     GROUP BY ss_store_sk) sb,
    (SELECT ss_store_sk, ss_item_sk,
            SUM(ss_sales_price) AS revenue
     FROM store_sales, date_dim
     WHERE ss_sold_date_sk = d_date_sk
     AND d_month_seq BETWEEN 1212 AND 1247
     GROUP BY ss_store_sk, ss_item_sk) sc
WHERE sb.ss_store_sk = sc.ss_store_sk
  AND sc.revenue <= 0.1 * sb.ave
  AND s_store_sk = sc.ss_store_sk
  AND i_item_sk = sc.ss_item_sk
ORDER BY s_store_name, i_item_desc LIMIT 100`,
		},
		{
			Name:     "q88",
			Affected: true,
			Rules:    []string{"JoinOnKeys"},
			Pattern:  "§V.B scalar aggregates over a multi-way join",
			SQL: `
SELECT s1.h8_30 AS h8_30, s2.h9_00 AS h9_00, s3.h9_30 AS h9_30, s4.h10_00 AS h10_00,
       s5.h10_30 AS h10_30, s6.h11_00 AS h11_00, s7.h11_30 AS h11_30, s8.h12_00 AS h12_00
FROM
 (SELECT COUNT(*) AS h8_30 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 8 AND t_minute >= 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s1,
 (SELECT COUNT(*) AS h9_00 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 9 AND t_minute < 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s2,
 (SELECT COUNT(*) AS h9_30 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 9 AND t_minute >= 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s3,
 (SELECT COUNT(*) AS h10_00 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 10 AND t_minute < 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s4,
 (SELECT COUNT(*) AS h10_30 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 10 AND t_minute >= 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s5,
 (SELECT COUNT(*) AS h11_00 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 11 AND t_minute < 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s6,
 (SELECT COUNT(*) AS h11_30 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 11 AND t_minute >= 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s7,
 (SELECT COUNT(*) AS h12_00 FROM store_sales, household_demographics, time_dim, store
  WHERE ss_sold_time_sk = t_time_sk AND ss_hdemo_sk = hd_demo_sk AND ss_store_sk = s_store_sk
    AND t_hour = 12 AND t_minute < 30
    AND ((hd_dep_count = 4 AND hd_vehicle_count <= 6) OR (hd_dep_count = 2 AND hd_vehicle_count <= 4))
    AND s_store_name = 'Store #1') s8`,
		},
		{
			Name:     "q95",
			Affected: true,
			Rules:    []string{"JoinOnKeys"},
			Pattern:  "§V.D redundant relational aggregates over a self-joined CTE",
			SQL: `
WITH ws_wh AS (
  SELECT ws1.ws_order_number AS ws_wh_number
  FROM web_sales ws1, web_sales ws2
  WHERE ws1.ws_order_number = ws2.ws_order_number
    AND ws1.ws_warehouse_sk <> ws2.ws_warehouse_sk)
SELECT COUNT(DISTINCT ws_order_number) AS order_count,
       SUM(ws_ext_ship_cost) AS total_shipping_cost,
       SUM(ws_net_profit) AS total_net_profit
FROM web_sales, date_dim, customer_address, web_site
WHERE d_year = 1999 AND d_moy = 2
  AND ws_ship_date_sk = d_date_sk
  AND ws_ship_addr_sk = ca_address_sk
  AND ca_state = 'TN'
  AND ws_web_site_sk = web_site_sk
  AND ws_order_number IN (SELECT ws_wh_number FROM ws_wh)
  AND ws_order_number IN (SELECT wr_order_number FROM ws_wh
       JOIN web_returns ON wr_order_number = ws_wh_number)`,
		},

		// ---- Filler workload: fusion-neutral queries standing in for the
		// untouched remainder of the 99-query benchmark. ----
		{Name: "f01", Pattern: "aggregate join", SQL: `
SELECT s_store_name, SUM(ss_sales_price) AS revenue
FROM store_sales, store
WHERE ss_store_sk = s_store_sk
GROUP BY s_store_name
ORDER BY revenue DESC LIMIT 10`},
		{Name: "f02", Pattern: "date-filtered aggregate", SQL: `
SELECT d_moy, SUM(ss_sales_price) AS monthly
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_year = 1999
GROUP BY d_moy
ORDER BY d_moy`},
		{Name: "f03", Pattern: "top-n", SQL: `
SELECT ss_item_sk, SUM(ss_quantity) AS qty
FROM store_sales
GROUP BY ss_item_sk
ORDER BY qty DESC, ss_item_sk LIMIT 10`},
		{Name: "f04", Pattern: "dimension rollup", SQL: `
SELECT i_category, COUNT(*) AS cnt, AVG(ss_sales_price) AS avg_price
FROM store_sales, item
WHERE ss_item_sk = i_item_sk
GROUP BY i_category
ORDER BY i_category`},
		{Name: "f05", Pattern: "returns rollup", SQL: `
SELECT sr_store_sk, SUM(sr_return_amt) AS returned
FROM store_returns
GROUP BY sr_store_sk
ORDER BY returned DESC LIMIT 5`},
		{Name: "f06", Pattern: "catalog monthly", SQL: `
SELECT d_year, d_moy, COUNT(*) AS orders
FROM catalog_sales, date_dim
WHERE cs_sold_date_sk = d_date_sk AND d_year = 2000
GROUP BY d_year, d_moy
ORDER BY d_moy`},
		{Name: "f07", Pattern: "web profit", SQL: `
SELECT web_company_name, SUM(ws_net_profit) AS profit
FROM web_sales, web_site
WHERE ws_web_site_sk = web_site_sk
GROUP BY web_company_name
ORDER BY profit DESC`},
		{Name: "f08", Pattern: "customers by state", SQL: `
SELECT ca_state, COUNT(*) AS customers
FROM customer, customer_address
WHERE c_current_addr_sk = ca_address_sk
GROUP BY ca_state
ORDER BY customers DESC, ca_state`},
		{Name: "f09", Pattern: "price by size", SQL: `
SELECT i_size, AVG(i_current_price) AS avg_price
FROM item
GROUP BY i_size
ORDER BY i_size`},
		{Name: "f10", Pattern: "day-name filter", SQL: `
SELECT COUNT(*) AS monday_sales
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_day_name = 'Monday'`},
		{Name: "f11", Pattern: "distinct aggregate", SQL: `
SELECT ss_store_sk, COUNT(DISTINCT ss_customer_sk) AS uniq_customers
FROM store_sales
GROUP BY ss_store_sk
ORDER BY ss_store_sk`},
		{Name: "f12", Pattern: "hourly histogram", SQL: `
SELECT t_hour, COUNT(*) AS cnt
FROM store_sales, time_dim
WHERE ss_sold_time_sk = t_time_sk AND t_hour BETWEEN 9 AND 17
GROUP BY t_hour
ORDER BY t_hour`},
		{Name: "f13", Pattern: "demographics", SQL: `
SELECT hd_vehicle_count, COUNT(*) AS households
FROM household_demographics
GROUP BY hd_vehicle_count
ORDER BY hd_vehicle_count`},
		{Name: "f14", Pattern: "scalar statistics", SQL: `
SELECT MIN(sr_fee) AS min_fee, MAX(sr_fee) AS max_fee, AVG(sr_fee) AS avg_fee
FROM store_returns`},
		{Name: "f15", Pattern: "web returns by state", SQL: `
SELECT ca_state, SUM(wr_return_amt) AS returned
FROM web_returns, customer_address
WHERE wr_returning_addr_sk = ca_address_sk
GROUP BY ca_state
ORDER BY returned DESC LIMIT 5`},
		{Name: "f16", Pattern: "uncorrelated scalar subquery (not fusable)", SQL: `
SELECT COUNT(*) AS pricey_items
FROM item
WHERE i_current_price > (SELECT AVG(i_current_price) FROM item)`},
		{Name: "f17", Pattern: "bucketed CASE rollup", SQL: `
SELECT CASE WHEN ss_quantity < 25 THEN 'low'
            WHEN ss_quantity < 75 THEN 'mid'
            ELSE 'high' END AS bucket,
       COUNT(*) AS cnt
FROM store_sales
GROUP BY CASE WHEN ss_quantity < 25 THEN 'low'
              WHEN ss_quantity < 75 THEN 'mid'
              ELSE 'high' END
ORDER BY bucket`},
		{Name: "f18", Pattern: "three-way join", SQL: `
SELECT s_state, i_category, SUM(ss_net_profit) AS profit
FROM store_sales, store, item
WHERE ss_store_sk = s_store_sk AND ss_item_sk = i_item_sk AND i_category = 'Music'
GROUP BY s_state, i_category
ORDER BY profit DESC LIMIT 10`},
		{Name: "f19", Pattern: "semi join (single instance)", SQL: `
SELECT COUNT(*) AS big_ticket
FROM catalog_sales
WHERE cs_item_sk IN (SELECT i_item_sk FROM item WHERE i_current_price > 100)`},
		{Name: "f20", Pattern: "union of different facts (not fusable)", SQL: `
SELECT 'catalog' AS channel, COUNT(*) AS cnt FROM catalog_sales
UNION ALL
SELECT 'web' AS channel, COUNT(*) AS cnt FROM web_sales`},
		{Name: "f21", Pattern: "plain window function", SQL: `
SELECT ss_item_sk, ss_sales_price,
       AVG(ss_sales_price) OVER (PARTITION BY ss_store_sk) AS store_avg
FROM store_sales
WHERE ss_quantity > 95
ORDER BY ss_item_sk, ss_sales_price LIMIT 20`},
		{Name: "f22", Pattern: "distinct aggregate by month", SQL: `
SELECT d_moy, COUNT(DISTINCT ss_item_sk) AS items_sold
FROM store_sales, date_dim
WHERE ss_sold_date_sk = d_date_sk AND d_year = 2001
GROUP BY d_moy
ORDER BY d_moy`},
		{Name: "f23", Pattern: "left join report", SQL: `
SELECT s_store_name, COUNT(*) AS cnt
FROM store LEFT JOIN store_sales ON s_store_sk = ss_store_sk AND ss_quantity > 98
GROUP BY s_store_name
ORDER BY s_store_name LIMIT 10`},
		{Name: "f24", Pattern: "LIKE filter", SQL: `
SELECT COUNT(*) AS music_like
FROM item
WHERE i_category LIKE 'M%' AND i_item_desc LIKE '%item%'`},
		{Name: "f25", Pattern: "IN-list filter", SQL: `
SELECT i_size, COUNT(*) AS cnt
FROM item
WHERE i_color IN ('red', 'green', 'blue')
GROUP BY i_size
ORDER BY i_size`},
		{Name: "f26", Pattern: "multi-key rollup with HAVING", SQL: `
SELECT ss_store_sk, ss_item_sk, SUM(ss_quantity) AS qty
FROM store_sales
GROUP BY ss_store_sk, ss_item_sk
HAVING SUM(ss_quantity) > 150
ORDER BY qty DESC, ss_store_sk, ss_item_sk LIMIT 10`},
		{Name: "f27", Pattern: "CASE and COALESCE mix", SQL: `
SELECT COALESCE(hd_vehicle_count, 0) AS vehicles,
       SUM(CASE WHEN hd_dep_count > 5 THEN 1 ELSE 0 END) AS big_households
FROM household_demographics
GROUP BY COALESCE(hd_vehicle_count, 0)
ORDER BY vehicles`},
		{Name: "f28", Pattern: "returns by customer", SQL: `
SELECT c_customer_id, SUM(sr_return_amt) AS returned
FROM store_returns, customer
WHERE sr_customer_sk = c_customer_sk
GROUP BY c_customer_id
ORDER BY returned DESC, c_customer_id LIMIT 10`},
		{Name: "f29", Pattern: "single IN subquery", SQL: `
SELECT COUNT(*) AS cheap_web_orders
FROM web_sales
WHERE ws_item_sk IN (SELECT i_item_sk FROM item WHERE i_current_price < 10)`},
		{Name: "f30", Pattern: "date-range scan with order", SQL: `
SELECT d_date_sk, COUNT(*) AS cnt
FROM web_sales, date_dim
WHERE ws_sold_date_sk = d_date_sk AND d_year = 2002 AND d_moy BETWEEN 6 AND 8
GROUP BY d_date_sk
ORDER BY cnt DESC, d_date_sk LIMIT 5`},
		{Name: "f31", Pattern: "nested derived tables", SQL: `
SELECT big.s_store_sk, big.total FROM (
  SELECT s_store_sk, total FROM (
    SELECT ss_store_sk AS s_store_sk, SUM(ss_ext_sales_price) AS total
    FROM store_sales GROUP BY ss_store_sk) inner_t
  WHERE total > 100) big
ORDER BY big.total DESC LIMIT 5`},
		{Name: "f32", Pattern: "three-way union of different tables", SQL: `
SELECT 'store' AS channel, SUM(ss_sales_price) AS amt FROM store_sales
UNION ALL
SELECT 'catalog' AS channel, SUM(cs_list_price) AS amt FROM catalog_sales
UNION ALL
SELECT 'web' AS channel, SUM(ws_list_price) AS amt FROM web_sales`},
	}
}
