// Package tpcds provides the evaluation substrate: the subset of the
// TPC-DS schema touched by the paper's queries, a deterministic scaled data
// generator, and the query texts — the eight queries the paper's Figures 1
// and 2 analyze (Q01, Q09, Q23, Q28, Q30, Q65, Q88, Q95, written as the
// paper's variants) plus a filler workload of fusion-neutral queries used
// to reproduce the whole-benchmark aggregates.
package tpcds

import (
	"repro/internal/catalog"
	"repro/internal/types"
)

// NewCatalog builds the TPC-DS subset catalog. The seven largest tables are
// partitioned by their date column, mirroring the paper's layout (store
// returns/catalog sales/web sales partitioned into hundreds of date
// partitions).
func NewCatalog() *catalog.Catalog {
	cat := catalog.New()
	i64 := types.KindInt64
	f64 := types.KindFloat64
	str := types.KindString

	cat.MustAdd(&catalog.Table{
		Name: "date_dim",
		Columns: []catalog.Column{
			{Name: "d_date_sk", Type: i64},
			{Name: "d_year", Type: i64},
			{Name: "d_moy", Type: i64},
			{Name: "d_dom", Type: i64},
			{Name: "d_month_seq", Type: i64},
			{Name: "d_day_name", Type: str},
		},
		Keys: [][]string{{"d_date_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item_sk", Type: i64},
			{Name: "i_item_id", Type: str},
			{Name: "i_item_desc", Type: str},
			{Name: "i_brand_id", Type: i64},
			{Name: "i_brand", Type: str},
			{Name: "i_category_id", Type: i64},
			{Name: "i_category", Type: str},
			{Name: "i_size", Type: str},
			{Name: "i_color", Type: str},
			{Name: "i_current_price", Type: f64},
		},
		Keys: [][]string{{"i_item_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "store",
		Columns: []catalog.Column{
			{Name: "s_store_sk", Type: i64},
			{Name: "s_store_id", Type: str},
			{Name: "s_store_name", Type: str},
			{Name: "s_state", Type: str},
			{Name: "s_city", Type: str},
		},
		Keys: [][]string{{"s_store_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "customer",
		Columns: []catalog.Column{
			{Name: "c_customer_sk", Type: i64},
			{Name: "c_customer_id", Type: str},
			{Name: "c_first_name", Type: str},
			{Name: "c_last_name", Type: str},
			{Name: "c_current_addr_sk", Type: i64},
		},
		Keys: [][]string{{"c_customer_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "customer_address",
		Columns: []catalog.Column{
			{Name: "ca_address_sk", Type: i64},
			{Name: "ca_state", Type: str},
			{Name: "ca_city", Type: str},
		},
		Keys: [][]string{{"ca_address_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "web_site",
		Columns: []catalog.Column{
			{Name: "web_site_sk", Type: i64},
			{Name: "web_company_name", Type: str},
		},
		Keys: [][]string{{"web_site_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "reason",
		Columns: []catalog.Column{
			{Name: "r_reason_sk", Type: i64},
			{Name: "r_reason_desc", Type: str},
		},
		Keys: [][]string{{"r_reason_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "household_demographics",
		Columns: []catalog.Column{
			{Name: "hd_demo_sk", Type: i64},
			{Name: "hd_dep_count", Type: i64},
			{Name: "hd_vehicle_count", Type: i64},
		},
		Keys: [][]string{{"hd_demo_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "time_dim",
		Columns: []catalog.Column{
			{Name: "t_time_sk", Type: i64},
			{Name: "t_hour", Type: i64},
			{Name: "t_minute", Type: i64},
		},
		Keys: [][]string{{"t_time_sk"}},
	})

	cat.MustAdd(&catalog.Table{
		Name: "store_sales",
		Columns: []catalog.Column{
			{Name: "ss_sold_date_sk", Type: i64},
			{Name: "ss_sold_time_sk", Type: i64},
			{Name: "ss_item_sk", Type: i64},
			{Name: "ss_customer_sk", Type: i64},
			{Name: "ss_hdemo_sk", Type: i64},
			{Name: "ss_addr_sk", Type: i64},
			{Name: "ss_store_sk", Type: i64},
			{Name: "ss_quantity", Type: i64},
			{Name: "ss_list_price", Type: f64},
			{Name: "ss_sales_price", Type: f64},
			{Name: "ss_ext_discount_amt", Type: f64},
			{Name: "ss_ext_sales_price", Type: f64},
			{Name: "ss_coupon_amt", Type: f64},
			{Name: "ss_net_profit", Type: f64},
		},
		PartitionColumn: "ss_sold_date_sk",
	})

	cat.MustAdd(&catalog.Table{
		Name: "store_returns",
		Columns: []catalog.Column{
			{Name: "sr_returned_date_sk", Type: i64},
			{Name: "sr_item_sk", Type: i64},
			{Name: "sr_customer_sk", Type: i64},
			{Name: "sr_store_sk", Type: i64},
			{Name: "sr_return_amt", Type: f64},
			{Name: "sr_fee", Type: f64},
		},
		PartitionColumn: "sr_returned_date_sk",
	})

	cat.MustAdd(&catalog.Table{
		Name: "catalog_sales",
		Columns: []catalog.Column{
			{Name: "cs_sold_date_sk", Type: i64},
			{Name: "cs_item_sk", Type: i64},
			{Name: "cs_bill_customer_sk", Type: i64},
			{Name: "cs_quantity", Type: i64},
			{Name: "cs_list_price", Type: f64},
		},
		PartitionColumn: "cs_sold_date_sk",
	})

	cat.MustAdd(&catalog.Table{
		Name: "web_sales",
		Columns: []catalog.Column{
			{Name: "ws_sold_date_sk", Type: i64},
			{Name: "ws_ship_date_sk", Type: i64},
			{Name: "ws_item_sk", Type: i64},
			{Name: "ws_bill_customer_sk", Type: i64},
			{Name: "ws_ship_addr_sk", Type: i64},
			{Name: "ws_web_site_sk", Type: i64},
			{Name: "ws_order_number", Type: i64},
			{Name: "ws_warehouse_sk", Type: i64},
			{Name: "ws_quantity", Type: i64},
			{Name: "ws_list_price", Type: f64},
			{Name: "ws_ext_ship_cost", Type: f64},
			{Name: "ws_net_profit", Type: f64},
		},
		PartitionColumn: "ws_sold_date_sk",
	})

	cat.MustAdd(&catalog.Table{
		Name: "web_returns",
		Columns: []catalog.Column{
			{Name: "wr_returned_date_sk", Type: i64},
			{Name: "wr_order_number", Type: i64},
			{Name: "wr_item_sk", Type: i64},
			{Name: "wr_returning_customer_sk", Type: i64},
			{Name: "wr_returning_addr_sk", Type: i64},
			{Name: "wr_return_amt", Type: f64},
		},
		PartitionColumn: "wr_returned_date_sk",
	})

	return cat
}
