package tpcds

import (
	"testing"

	"repro/internal/types"
)

func TestCatalogCompleteness(t *testing.T) {
	cat := NewCatalog()
	want := []string{
		"date_dim", "item", "store", "customer", "customer_address",
		"web_site", "reason", "household_demographics", "time_dim",
		"store_sales", "store_returns", "catalog_sales", "web_sales", "web_returns",
	}
	for _, name := range want {
		if _, ok := cat.Table(name); !ok {
			t.Errorf("missing table %s", name)
		}
	}
	// The paper partitions the large fact tables by date.
	for _, name := range []string{"store_sales", "store_returns", "catalog_sales", "web_sales", "web_returns"} {
		tab, _ := cat.Table(name)
		if tab.PartitionColumn == "" {
			t.Errorf("%s must be date-partitioned", name)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.01, 7)
	b := Generate(0.01, 7)
	for name, rowsA := range a.Tables {
		rowsB := b.Tables[name]
		if len(rowsA) != len(rowsB) {
			t.Fatalf("%s: %d vs %d rows across runs", name, len(rowsA), len(rowsB))
		}
		for i := range rowsA {
			for j := range rowsA[i] {
				if !rowsA[i][j].Equal(rowsB[i][j]) {
					t.Fatalf("%s row %d col %d differs", name, i, j)
				}
			}
		}
	}
	c := Generate(0.01, 8)
	if len(c.Tables["store_sales"]) == 0 {
		t.Fatal("no sales generated")
	}
}

func TestGenerateScaling(t *testing.T) {
	small := Generate(0.01, 1)
	big := Generate(0.1, 1)
	if len(big.Tables["store_sales"]) <= len(small.Tables["store_sales"]) {
		t.Error("fact tables must scale")
	}
	// The calendar does not scale.
	if len(big.Tables["date_dim"]) != len(small.Tables["date_dim"]) {
		t.Error("date_dim must not scale")
	}
}

func TestGenerateReferentialIntegrity(t *testing.T) {
	d := Generate(0.02, 42)
	items := map[int64]bool{}
	for _, r := range d.Tables["item"] {
		items[r[0].I] = true
	}
	dates := map[int64]bool{}
	for _, r := range d.Tables["date_dim"] {
		dates[r[0].I] = true
	}
	for i, r := range d.Tables["store_sales"] {
		if !dates[r[0].I] {
			t.Fatalf("store_sales row %d references unknown date %d", i, r[0].I)
		}
		if !items[r[2].I] {
			t.Fatalf("store_sales row %d references unknown item %d", i, r[2].I)
		}
	}
	// Month sequences must cover the paper's 1212..1247 window.
	seqs := map[int64]bool{}
	for _, r := range d.Tables["date_dim"] {
		seqs[r[4].I] = true
	}
	if !seqs[1212] || !seqs[1247] {
		t.Error("d_month_seq must cover 1212..1247")
	}
}

func TestGenerateRowTypes(t *testing.T) {
	cat := NewCatalog()
	d := Generate(0.01, 3)
	for name, rows := range d.Tables {
		tab, ok := cat.Table(name)
		if !ok {
			t.Fatalf("generated unknown table %s", name)
		}
		for i, r := range rows {
			if len(r) != len(tab.Columns) {
				t.Fatalf("%s row %d has %d cols, want %d", name, i, len(r), len(tab.Columns))
			}
			for j, v := range r {
				if v.Null {
					continue
				}
				want := tab.Columns[j].Type
				if v.Kind != want && !(v.Kind.IsNumeric() && want.IsNumeric()) {
					t.Fatalf("%s row %d col %s: kind %v, want %v", name, i, tab.Columns[j].Name, v.Kind, want)
				}
			}
			if i > 50 {
				break // sampling is enough
			}
		}
	}
}

func TestNewLoadedStore(t *testing.T) {
	st, err := NewLoadedStore(0.01, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Data("store_sales") == nil || st.Data("store_sales").NumRows() == 0 {
		t.Error("store_sales not loaded")
	}
	if st.Data("store_sales").Table.Stats.Partitions.Load() < 100 {
		t.Errorf("expected hundreds of date partitions, got %d", st.Data("store_sales").Table.Stats.Partitions.Load())
	}
}

func TestQueriesWellFormed(t *testing.T) {
	all := Queries()
	if len(all) != 40 {
		t.Errorf("workload size = %d, want 40", len(all))
	}
	affected := AffectedQueries()
	if len(affected) != 8 {
		t.Errorf("affected = %d, want 8", len(affected))
	}
	names := map[string]bool{}
	for _, q := range all {
		if names[q.Name] {
			t.Errorf("duplicate query name %s", q.Name)
		}
		names[q.Name] = true
		if q.SQL == "" {
			t.Errorf("%s has no SQL", q.Name)
		}
		if q.Affected && len(q.Rules) == 0 {
			t.Errorf("%s is affected but lists no rules", q.Name)
		}
	}
	for _, want := range []string{"q01", "q09", "q23", "q28", "q30", "q65", "q88", "q95"} {
		if _, ok := Get(want); !ok {
			t.Errorf("missing paper query %s", want)
		}
	}
	if _, ok := Get("zzz"); ok {
		t.Error("Get should fail for unknown query")
	}
	if len(FillerQueries()) != 32 {
		t.Errorf("filler = %d, want 32", len(FillerQueries()))
	}
}

func TestRound2(t *testing.T) {
	if round2(1.005) != 1.01 && round2(1.005) != 1.0 {
		// Floating point: just check it's within a cent.
		t.Errorf("round2(1.005) = %v", round2(1.005))
	}
	if round2(2.344) != 2.34 {
		t.Errorf("round2(2.344) = %v", round2(2.344))
	}
	_ = types.Int(0)
}
