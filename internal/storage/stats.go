package storage

import (
	"encoding/binary"

	"repro/internal/types"
)

// Chunk format versioning.
//
// The legacy (v0) chunk layout is the transformed value stream alone. Its
// first byte is always a transformed null flag — 0x5a or 0x5b — so any
// other leading byte can serve as a format marker. v1 chunks prepend an
// UNtransformed statistics header:
//
//	[chunkMagic][chunkStatsV1][uvarint len(stats)][stats][transformed payload]
//	stats = [uvarint nullCount][flags][min][max]
//
// where flags bit0 says min/max are present (appendValue-encoded) and bit1
// says the chunk holds at least one NaN (excluded from the bounds, because
// types.Compare cannot order it). The payload is byte-identical to the v0
// encoding and is transformed independently from offset 0, so decode cost
// and the Bytes accounting (payload length only — statistics ride free,
// like a Parquet footer) are unchanged from pre-stats stores. Readers that
// see neither magic nor a known version fall back to v0: statistics come
// back nil and pruning degrades to a no-op.
const (
	chunkMagic   = 0xC7
	chunkStatsV1 = 0x01

	statsFlagBounds = 1 << 0
	statsFlagNaN    = 1 << 1
)

// ChunkStats is the zone map of one column chunk: the null count and, when
// at least one orderable non-NULL value exists, inclusive min/max bounds.
// NaN values are counted via HasNaN instead of the bounds. Bounds cover
// every non-NULL, non-NaN value, so a predicate provably false over
// [Min, Max] (and false/NULL for NULLs and NaNs) has an empty survivor set.
type ChunkStats struct {
	NullCount int
	HasBounds bool
	HasNaN    bool
	Min, Max  types.Value
}

// observe folds one value into the statistics at encode time.
func (st *ChunkStats) observe(v types.Value) {
	if v.Null {
		st.NullCount++
		return
	}
	if v.Kind == types.KindFloat64 && v.F != v.F {
		st.HasNaN = true
		return
	}
	if !st.HasBounds {
		st.Min, st.Max, st.HasBounds = v, v, true
		return
	}
	if types.Compare(v, st.Min) < 0 {
		st.Min = v
	}
	if types.Compare(v, st.Max) > 0 {
		st.Max = v
	}
}

// encodeChunkData assembles the stored v1 byte layout from computed stats
// and the raw (untransformed) value payload.
func encodeChunkData(st *ChunkStats, payload []byte) []byte {
	blk := binary.AppendUvarint(nil, uint64(st.NullCount))
	var flags byte
	if st.HasBounds {
		flags |= statsFlagBounds
	}
	if st.HasNaN {
		flags |= statsFlagNaN
	}
	blk = append(blk, flags)
	if st.HasBounds {
		blk = appendValue(blk, st.Min)
		blk = appendValue(blk, st.Max)
	}
	out := make([]byte, 0, 2+binary.MaxVarintLen32+len(blk)+len(payload))
	out = append(out, chunkMagic, chunkStatsV1)
	out = binary.AppendUvarint(out, uint64(len(blk)))
	out = append(out, blk...)
	out = append(out, transform(payload)...)
	return out
}

// payloadStart returns the offset of the transformed value payload within
// the stored chunk bytes: past the stats header for v1 chunks, 0 for
// legacy ones.
func payloadStart(data []byte) int {
	if len(data) < 3 || data[0] != chunkMagic || data[1] != chunkStatsV1 {
		return 0
	}
	n, k := binary.Uvarint(data[2:])
	if k <= 0 {
		return 0
	}
	return 2 + k + int(n)
}

// parseStats decodes the statistics header, returning nil for legacy or
// malformed chunks. It never mutates the chunk, so concurrent callers are
// safe.
func parseStats(data []byte, kind types.Kind) *ChunkStats {
	if len(data) < 3 || data[0] != chunkMagic || data[1] != chunkStatsV1 {
		return nil
	}
	n, k := binary.Uvarint(data[2:])
	if k <= 0 || 2+k+int(n) > len(data) {
		return nil
	}
	blk := data[2+k : 2+k+int(n)]
	nulls, k2 := binary.Uvarint(blk)
	if k2 <= 0 || k2 >= len(blk) {
		return nil
	}
	flags := blk[k2]
	st := &ChunkStats{NullCount: int(nulls), HasNaN: flags&statsFlagNaN != 0}
	if flags&statsFlagBounds != 0 {
		r := ChunkReader{kind: kind, data: blk[k2+1:]}
		st.HasBounds = true
		st.Min = r.Next()
		st.Max = r.Next()
	}
	return st
}

// Stats returns the chunk's zone map, or nil when the chunk predates the
// statistics format (pruning then degrades to reading the chunk). Chunks
// built by this store version carry a pre-parsed copy; for bytes received
// from elsewhere the header is re-parsed read-only on each call.
func (c *ColumnChunk) Stats() *ChunkStats {
	if c.stats != nil {
		return c.stats
	}
	return parseStats(c.Data, c.Kind)
}
