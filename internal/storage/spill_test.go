package storage

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
)

func spillRows() [][]types.Value {
	rows := [][]types.Value{
		{types.Int(1), types.Float(2.5), types.String("alpha"), types.Bool(true), types.Date(19000)},
		{types.Int(-42), types.Float(math.Inf(1)), types.String(""), types.Bool(false), types.NullOf(types.KindDate)},
		{types.NullOf(types.KindInt64), types.Float(math.NaN()), types.NullOf(types.KindString), types.NullOf(types.KindBool), types.Date(0)},
		{types.Int(1 << 60), types.Float(math.Copysign(0, -1)), types.String(strings.Repeat("x", 500)), types.Bool(true), types.Date(-5)},
		{types.Int(0), types.Float(1e-300), types.String("mixed\x00bytes\xff"), types.Bool(false), types.Unknown()},
	}
	return rows
}

func valuesBitEqual(a, b types.Value) bool {
	if a.Null || b.Null {
		// NULLs round-trip as NULL; Kind is preserved by the tag.
		return a.Null == b.Null && a.Kind == b.Kind
	}
	return a.Kind == b.Kind && a.I == b.I && a.S == b.S &&
		math.Float64bits(a.F) == math.Float64bits(b.F)
}

func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rows := spillRows()
	w, err := NewSpillWriter(dir, len(rows[0]))
	if err != nil {
		t.Fatal(err)
	}
	// Append enough rows to span several chunks.
	const repeats = 2000
	for r := 0; r < repeats; r++ {
		for _, row := range rows {
			if err := w.Append(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Rows() != repeats*len(rows) {
		t.Fatalf("rows = %d, want %d", f.Rows(), repeats*len(rows))
	}
	if f.Bytes() <= 0 {
		t.Fatal("spill file reports zero bytes")
	}

	r := f.NewReader()
	dst := make([]types.Value, len(rows[0]))
	for i := 0; i < repeats*len(rows); i++ {
		ok, err := r.Next(dst)
		if err != nil {
			t.Fatalf("row %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("EOF at row %d", i)
		}
		want := rows[i%len(rows)]
		for c := range want {
			if c == 4 && want[c].Kind == types.KindUnknown {
				// A zero/unknown value rounds to NULL-of-unknown by design.
				if !dst[c].Null || dst[c].Kind != types.KindUnknown {
					t.Fatalf("row %d col %d: unknown value decoded as %+v", i, c, dst[c])
				}
				continue
			}
			if !valuesBitEqual(dst[c], want[c]) {
				t.Fatalf("row %d col %d: got %+v, want %+v", i, c, dst[c], want[c])
			}
		}
	}
	if ok, _ := r.Next(dst); ok {
		t.Fatal("reader produced rows past EOF")
	}
}

func TestSpillMultipleReaders(t *testing.T) {
	w, err := NewSpillWriter(t.TempDir(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := w.Append([]types.Value{types.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	r1, r2 := f.NewReader(), f.NewReader()
	dst := make([]types.Value, 1)
	for i := 0; i < 100; i++ {
		for _, r := range []*SpillReader{r1, r2} {
			if ok, err := r.Next(dst); !ok || err != nil {
				t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
			}
			if dst[0].I != int64(i) {
				t.Fatalf("row %d: got %d", i, dst[0].I)
			}
		}
	}
}

func TestSpillUnwritableDir(t *testing.T) {
	// A path that exists but is not a directory: CreateTemp must fail with
	// a descriptive error (running as root makes permission bits useless).
	notADir := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := NewSpillWriter(notADir, 1)
	if err == nil {
		t.Fatal("expected error for unwritable spill dir")
	}
	if !strings.Contains(err.Error(), "spill") {
		t.Fatalf("error should mention spill: %v", err)
	}
}

func TestSpillCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSpillWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		row := []types.Value{types.Int(int64(i)), types.String("payload-payload")}
		if err := w.Append(row); err != nil {
			t.Fatal(err)
		}
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Flip one payload byte on disk.
	raw, err := os.ReadFile(f.path)
	if err != nil {
		t.Fatal(err)
	}
	raw[spillHeaderLen+10] ^= 0x40
	if err := os.WriteFile(f.path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	r := f.NewReader()
	dst := make([]types.Value, 2)
	_, err = r.Next(dst)
	if err == nil {
		t.Fatal("corrupted chunk decoded without error")
	}
	if !strings.Contains(err.Error(), "CRC") || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption error should mention CRC mismatch: %v", err)
	}
}

func TestSpillTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSpillWriter(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	big := types.String(strings.Repeat("t", 100))
	for i := 0; i < 1000; i++ {
		if err := w.Append([]types.Value{big}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := os.Truncate(f.path, f.Bytes()/2); err != nil {
		t.Fatal(err)
	}
	r := f.NewReader()
	dst := make([]types.Value, 1)
	var readErr error
	for {
		ok, err := r.Next(dst)
		if err != nil {
			readErr = err
			break
		}
		if !ok {
			break
		}
	}
	if readErr == nil {
		t.Fatal("truncated spill file read to EOF without error")
	}
}

func TestSpillFileCloseRemoves(t *testing.T) {
	dir := t.TempDir()
	w, err := NewSpillWriter(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]types.Value{types.Int(7)}); err != nil {
		t.Fatal(err)
	}
	f, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	path := f.path
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("spill file missing before close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("spill file still present after close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}

	// Abort also removes the file.
	w2, err := NewSpillWriter(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := w2.f.Name()
	w2.Abort()
	if _, err := os.Stat(p2); !os.IsNotExist(err) {
		t.Fatal("aborted spill file still present")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("spill dir not empty: %v", ents)
	}
}
