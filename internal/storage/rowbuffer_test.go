package storage

import (
	"testing"

	"repro/internal/types"
)

// TestRowBufferAppendAllocs is the regression guard for the spool/spill
// hot path: Append must amortize to (nearly) zero allocations per row —
// the scratch encode buffer is reused and data grows by capacity doubling.
func TestRowBufferAppendAllocs(t *testing.T) {
	kinds := []types.Kind{types.KindInt64, types.KindFloat64, types.KindString}
	row := []types.Value{types.Int(12345), types.Float(3.25), types.String("some-tag")}

	buf := NewRowBuffer(kinds)
	// Warm up scratch and the first data block.
	for i := 0; i < 64; i++ {
		buf.Append(row)
	}
	const rows = 10000
	avg := testing.AllocsPerRun(10, func() {
		for i := 0; i < rows; i++ {
			buf.Append(row)
		}
	})
	perRow := avg / rows
	if perRow > 0.01 {
		t.Fatalf("RowBuffer.Append allocates %.4f allocs/row; want amortized ~0", perRow)
	}
}

func TestRowBufferRoundTripAfterGrowth(t *testing.T) {
	kinds := []types.Kind{types.KindInt64, types.KindString}
	buf := NewRowBuffer(kinds)
	const n = 5000
	for i := 0; i < n; i++ {
		buf.Append([]types.Value{types.Int(int64(i)), types.String("v")})
	}
	buf.Seal()
	r := buf.NewReader()
	for i := 0; i < n; i++ {
		row := r.Next()
		if row == nil {
			t.Fatalf("EOF at %d", i)
		}
		if row[0].I != int64(i) || row[1].S != "v" {
			t.Fatalf("row %d: %+v", i, row)
		}
	}
	if r.Next() != nil {
		t.Fatal("rows past EOF")
	}
}
