package storage

import (
	"sync"
	"testing"

	"repro/internal/types"
)

func TestAppendExtendsTable(t *testing.T) {
	st := NewStore(testCatalog())
	if err := st.Load("t", [][]types.Value{
		{types.Int(1), types.String("one"), types.Int(10)},
		{types.Int(2), types.String("two"), types.Int(20)},
	}); err != nil {
		t.Fatal(err)
	}
	before := st.Data("t")
	epoch0 := st.Epoch()
	seqs0, ok := st.PartitionSeqs("t")
	if !ok || len(seqs0) != 2 {
		t.Fatalf("PartitionSeqs = %v, %v", seqs0, ok)
	}

	if err := st.Append("t", [][]types.Value{
		{types.Int(3), types.String("three"), types.Int(10)},
		{types.Int(4), types.String("four"), types.Int(30)},
	}); err != nil {
		t.Fatal(err)
	}
	after := st.Data("t")
	if after.NumRows() != 4 {
		t.Fatalf("rows after append = %d, want 4", after.NumRows())
	}
	// Append groups its own rows by partition value (10 and 30 here) and
	// adds fresh partitions; it never rewrites published ones.
	if len(after.Partitions) != 4 {
		t.Fatalf("partitions after append = %d, want 4", len(after.Partitions))
	}
	for i, p := range before.Partitions {
		if after.Partitions[i] != p {
			t.Fatalf("append replaced published partition %d", i)
		}
	}
	if st.Epoch() == epoch0 {
		t.Fatal("append did not bump the epoch")
	}
	seqs1, _ := st.PartitionSeqs("t")
	if len(seqs1) != 4 || seqs1[0] != seqs0[0] || seqs1[1] != seqs0[1] {
		t.Fatalf("seqs = %v, want prefix %v preserved", seqs1, seqs0)
	}
	if seqs1[2] == seqs1[3] || seqs1[2] <= seqs0[1] {
		t.Fatalf("new partition seqs not fresh and unique: %v", seqs1)
	}
	tab, _ := st.Catalog().Table("t")
	if tab.Stats.RowCount.Load() != 4 || tab.Stats.Partitions.Load() != 4 {
		t.Errorf("stats not refreshed: rows=%d parts=%d", tab.Stats.RowCount.Load(), tab.Stats.Partitions.Load())
	}
}

func TestAppendLeavesOtherTablesSignatureAlone(t *testing.T) {
	st := NewStore(testCatalog())
	if err := st.Load("t", [][]types.Value{{types.Int(1), types.String("one"), types.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Load("u", [][]types.Value{{types.Float(1.5)}}); err != nil {
		t.Fatal(err)
	}
	uSeqs, _ := st.PartitionSeqs("u")
	if err := st.Append("t", [][]types.Value{{types.Int(2), types.String("two"), types.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	uSeqs2, _ := st.PartitionSeqs("u")
	if len(uSeqs) != len(uSeqs2) || uSeqs[0] != uSeqs2[0] {
		t.Fatalf("append to t changed u's partition set: %v -> %v", uSeqs, uSeqs2)
	}
}

func TestAppendErrorsAndEmpty(t *testing.T) {
	st := NewStore(testCatalog())
	if err := st.Append("missing", nil); err == nil {
		t.Error("unknown table accepted")
	}
	if err := st.Load("t", [][]types.Value{{types.Int(1), types.String("one"), types.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("t", [][]types.Value{{types.Int(1)}}); err == nil {
		t.Error("short row accepted")
	}
	if err := st.Append("t", [][]types.Value{{types.String("x"), types.String("one"), types.Int(10)}}); err == nil {
		t.Error("mistyped row accepted")
	}
	epoch := st.Epoch()
	if err := st.Append("t", nil); err != nil {
		t.Fatalf("empty append: %v", err)
	}
	if st.Epoch() != epoch {
		t.Error("empty append bumped the epoch")
	}
	// Append into a table that was never loaded starts it from scratch.
	if err := st.Append("u", [][]types.Value{{types.Float(2.5)}}); err != nil {
		t.Fatal(err)
	}
	if td := st.Data("u"); td == nil || td.NumRows() != 1 {
		t.Fatalf("append to empty table: %+v", td)
	}
}

// TestAppendRoundTrip verifies appended partitions decode back to exactly
// the rows that went in, through the same chunk encoding Load uses.
func TestAppendRoundTrip(t *testing.T) {
	st := NewStore(testCatalog())
	if err := st.Load("t", [][]types.Value{{types.Int(1), types.String("one"), types.Int(10)}}); err != nil {
		t.Fatal(err)
	}
	appended := [][]types.Value{
		{types.Int(7), types.String("seven"), types.Int(10)},
		{types.Int(8), types.NullOf(types.KindString), types.Int(20)},
	}
	if err := st.Append("t", appended); err != nil {
		t.Fatal(err)
	}
	var got [][]types.Value
	var m Metrics
	parts, err := st.ScanPartitions("t", []string{"a", "b", "d"}, nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		cols, err := p.DecodeColumns([]string{"a", "b", "d"})
		if err != nil {
			t.Fatal(err)
		}
		for i := range cols[0] {
			got = append(got, []types.Value{cols[0][i], cols[1][i], cols[2][i]})
		}
	}
	if len(got) != 3 {
		t.Fatalf("decoded %d rows, want 3", len(got))
	}
	want := map[int64]types.Value{7: types.String("seven"), 8: types.NullOf(types.KindString)}
	for _, r := range got {
		if w, ok := want[r[0].I]; ok && !r[1].Equal(w) {
			t.Fatalf("row %d decoded b=%v, want %v", r[0].I, r[1], w)
		}
	}
}

// TestAppendConcurrentSameTable drives concurrent appends into one table:
// none may be lost (the read-modify-publish runs under the write lock).
func TestAppendConcurrentSameTable(t *testing.T) {
	st := NewStore(testCatalog())
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				err := st.Append("t", [][]types.Value{
					{types.Int(int64(w*1000 + i)), types.String("r"), types.Int(int64(w))},
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := st.Data("t").NumRows(); n != writers*perWriter {
		t.Fatalf("rows = %d, want %d (lost appends)", n, writers*perWriter)
	}
	seqs, _ := st.PartitionSeqs("t")
	seen := map[int64]bool{}
	for _, s := range seqs {
		if seen[s] {
			t.Fatalf("duplicate partition seq %d", s)
		}
		seen[s] = true
	}
}
