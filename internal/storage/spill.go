package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/types"
)

// Spill files are the disk format behind the memctl subsystem: blocking
// operators shed row-shaped state (buffered sort runs, aggregation
// partitions) into temp files and stream it back on emit. The format
// reuses the RowBuffer/chunk value encoding and the storage stream
// transform, wrapped in CRC-checked chunks so a truncated or corrupted
// spill surfaces a descriptive error instead of garbage rows.
//
// Layout: a sequence of chunks, each
//
//	uint32 payload length | uint32 row count | uint32 CRC-32 (IEEE) of payload
//
// followed by the payload: transform()-ed rows of self-describing values.
// Unlike base-table chunks, spill values carry a kind tag per value
// (bit 0 = null, bits 1+ = types.Kind), because spilled state mixes kinds
// per column (group keys, aggregate partials) and must round-trip Values
// bit-for-bit, including their Kind.

const (
	// spillChunkBytes is the buffered-payload threshold that closes a
	// chunk. It bounds both the writer's buffer and the reader's resident
	// chunk — untracked overhead per open spill file.
	spillChunkBytes = 32 << 10
	spillHeaderLen  = 12
)

// SpillWriter streams rows into a CRC-chunked temp file.
type SpillWriter struct {
	f         *os.File
	width     int
	buf       []byte // pending payload, pre-transform
	chunkRows int
	rows      int
	bytes     int64
	scratch   []byte
}

// NewSpillWriter creates a spill file for rows of the given width in dir.
// The file is unlinked by SpillFile.Close.
func NewSpillWriter(dir string, width int) (*SpillWriter, error) {
	f, err := os.CreateTemp(dir, "spill-*.run")
	if err != nil {
		return nil, fmt.Errorf("storage: creating spill file in %q: %w", dir, err)
	}
	return &SpillWriter{f: f, width: width}, nil
}

// Append encodes one row into the pending chunk, flushing it to disk when
// it reaches the chunk size.
func (w *SpillWriter) Append(row []types.Value) error {
	if len(row) != w.width {
		return fmt.Errorf("storage: spill row has %d values, want %d", len(row), w.width)
	}
	for _, v := range row {
		// Tag: bit 0 = null, bits 1+ = kind. A zero Value (KindUnknown)
		// encodes as NULL; unknown-kind values are only ever legal as NULL.
		tag := byte(v.Kind) << 1
		if v.Null || v.Kind == types.KindUnknown {
			w.buf = append(w.buf, tag|1)
			continue
		}
		w.buf = append(w.buf, tag)
		w.buf = appendValue(w.buf, v) // flag byte + payload, as RowBuffer rows
	}
	w.chunkRows++
	w.rows++
	if len(w.buf) >= spillChunkBytes {
		return w.flushChunk()
	}
	return nil
}

func (w *SpillWriter) flushChunk() error {
	if w.chunkRows == 0 {
		return nil
	}
	payload := w.buf
	if cap(w.scratch) < len(payload) {
		w.scratch = make([]byte, len(payload))
	}
	out := w.scratch[:len(payload)]
	for i, b := range payload {
		out[i] = b ^ byte(xorKey+i)
	}
	var hdr [spillHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(out)))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(w.chunkRows))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(out))
	if _, err := w.f.Write(hdr[:]); err != nil {
		return fmt.Errorf("storage: writing spill chunk header: %w", err)
	}
	if _, err := w.f.Write(out); err != nil {
		return fmt.Errorf("storage: writing spill chunk: %w", err)
	}
	w.bytes += int64(spillHeaderLen + len(out))
	w.buf = w.buf[:0]
	w.chunkRows = 0
	return nil
}

// Rows returns the number of rows appended so far.
func (w *SpillWriter) Rows() int { return w.rows }

// Finish flushes the final chunk and seals the file for reading.
func (w *SpillWriter) Finish() (*SpillFile, error) {
	if err := w.flushChunk(); err != nil {
		w.Abort()
		return nil, err
	}
	return &SpillFile{f: w.f, path: w.f.Name(), width: w.width, rows: w.rows, bytes: w.bytes}, nil
}

// Abort discards the writer, closing and removing the file.
func (w *SpillWriter) Abort() {
	if w.f != nil {
		w.f.Close()
		os.Remove(w.f.Name())
		w.f = nil
	}
}

// SpillFile is a sealed spill file; it supports any number of sequential
// readers and is removed from disk by Close.
type SpillFile struct {
	f     *os.File
	path  string
	width int
	rows  int
	bytes int64
}

// Rows returns the row count.
func (s *SpillFile) Rows() int { return s.rows }

// Bytes returns the on-disk size (headers included), the amount charged to
// the spilled-bytes metric.
func (s *SpillFile) Bytes() int64 { return s.bytes }

// Close removes the file from disk. Idempotent.
func (s *SpillFile) Close() error {
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	os.Remove(s.path)
	s.f = nil
	return err
}

// NewReader opens a sequential reader over the file.
func (s *SpillFile) NewReader() *SpillReader {
	return &SpillReader{file: s, remaining: s.rows}
}

// SpillReader sequentially decodes a spill file chunk by chunk, verifying
// each chunk's CRC before decoding any of its rows.
type SpillReader struct {
	file      *SpillFile
	off       int64
	remaining int
	chunk     []byte
	chunkOff  int
	chunkRows int
}

// Next decodes the next row into dst (which must hold the file's width) and
// reports whether a row was produced; (false, nil) signals EOF.
func (r *SpillReader) Next(dst []types.Value) (bool, error) {
	if r.remaining == 0 {
		return false, nil
	}
	if r.chunkRows == 0 {
		if err := r.loadChunk(); err != nil {
			return false, err
		}
	}
	cr := ChunkReader{data: r.chunk, off: r.chunkOff}
	for i := 0; i < r.file.width; i++ {
		if cr.off >= len(r.chunk) {
			return false, fmt.Errorf("storage: spill file %s: chunk underrun decoding row", r.file.path)
		}
		tag := cr.data[cr.off]
		cr.off++
		kind := types.Kind(tag >> 1)
		if tag&1 != 0 {
			dst[i] = types.NullOf(kind)
			continue
		}
		cr.kind = kind
		// The per-value null flag written by appendValue.
		if cr.data[cr.off] == 0 {
			cr.off++
			dst[i] = types.NullOf(kind)
			continue
		}
		dst[i] = cr.Next()
	}
	r.chunkOff = cr.off
	r.chunkRows--
	r.remaining--
	return true, nil
}

func (r *SpillReader) loadChunk() error {
	var hdr [spillHeaderLen]byte
	if _, err := r.file.f.ReadAt(hdr[:], r.off); err != nil {
		return fmt.Errorf("storage: spill file %s: reading chunk header: %w", r.file.path, err)
	}
	plen := int(binary.LittleEndian.Uint32(hdr[0:]))
	rows := int(binary.LittleEndian.Uint32(hdr[4:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[8:])
	if rows <= 0 || plen <= 0 {
		return fmt.Errorf("storage: spill file %s: corrupt chunk header (len %d, rows %d)", r.file.path, plen, rows)
	}
	if cap(r.chunk) < plen {
		r.chunk = make([]byte, plen)
	}
	r.chunk = r.chunk[:plen]
	if _, err := io.ReadFull(io.NewSectionReader(r.file.f, r.off+spillHeaderLen, int64(plen)), r.chunk); err != nil {
		return fmt.Errorf("storage: spill file %s: reading chunk payload: %w", r.file.path, err)
	}
	if got := crc32.ChecksumIEEE(r.chunk); got != wantCRC {
		return fmt.Errorf("storage: spill file %s: chunk CRC mismatch (got %08x, want %08x): spill data corrupted", r.file.path, got, wantCRC)
	}
	// Reverse the stream transform in place (XOR is its own inverse).
	for i, b := range r.chunk {
		r.chunk[i] = b ^ byte(xorKey+i)
	}
	r.off += int64(spillHeaderLen + plen)
	r.chunkOff = 0
	r.chunkRows = rows
	return nil
}
