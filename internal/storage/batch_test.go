package storage

import (
	"testing"

	"repro/internal/types"
)

// DecodeAll must produce exactly the sequence the streaming reader yields.
func TestDecodeAllMatchesReader(t *testing.T) {
	vals := []types.Value{
		types.Int(1), types.Int(-7), types.NullOf(types.KindInt64),
		types.Int(1 << 40), types.Int(0),
	}
	chunk := &ColumnChunk{Kind: types.KindInt64, Count: len(vals)}
	for _, v := range vals {
		chunk.Data = appendValue(chunk.Data, v)
	}
	chunk.Data = transform(chunk.Data)

	got := chunk.DecodeAll(nil)
	if len(got) != len(vals) {
		t.Fatalf("decoded %d values, want %d", len(got), len(vals))
	}
	r := chunk.NewReader()
	for i := range vals {
		want := r.Next()
		if !got[i].Equal(want) {
			t.Errorf("value %d: DecodeAll=%v reader=%v", i, got[i], want)
		}
	}

	// Appending into a partially-filled destination keeps the prefix.
	pre := []types.Value{types.String("sentinel")}
	combined := chunk.DecodeAll(pre)
	if len(combined) != 1+len(vals) || combined[0].S != "sentinel" {
		t.Fatalf("DecodeAll clobbered destination prefix: %v", combined)
	}
}

func TestDecodeColumns(t *testing.T) {
	st := NewStore(testCatalog())
	rows := [][]types.Value{
		{types.Int(1), types.String("one"), types.Int(10)},
		{types.Int(2), types.String("two"), types.Int(10)},
		{types.Int(3), types.String("three"), types.Int(10)},
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	parts, err := st.ScanPartitions("t", []string{"b", "a"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("partitions = %d", len(parts))
	}
	cols, err := parts[0].DecodeColumns([]string{"b", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 2 || len(cols[0]) != 3 || len(cols[1]) != 3 {
		t.Fatalf("unexpected shape: %d cols", len(cols))
	}
	for i, want := range []string{"one", "two", "three"} {
		if cols[0][i].S != want {
			t.Errorf("b[%d] = %v, want %s", i, cols[0][i], want)
		}
		if cols[1][i].I != int64(i+1) {
			t.Errorf("a[%d] = %v", i, cols[1][i])
		}
	}
	if _, err := parts[0].DecodeColumns([]string{"zzz"}); err == nil {
		t.Error("unknown column accepted")
	}
}
