// Package storage implements the engine's table store: an in-memory
// columnar layout with date-partitioned fact tables, per-(partition,
// column) byte accounting, and partition pruning.
//
// It substitutes for the paper's S3 + Parquet/Snappy substrate. The
// evaluation's Figure 2 reports *ratios* of bytes read between baseline and
// fused plans; those ratios depend only on which scans are eliminated and
// which partitions/columns are pruned — behaviour this layer reproduces —
// not on absolute data volume or the encoding format.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/types"
)

// ColumnChunk is the encoded values of one column within one partition.
// Bytes is the exact encoded size, which is what the bytes-scanned metric
// charges when the chunk is read.
type ColumnChunk struct {
	Kind  types.Kind
	Count int
	Data  []byte
	Bytes int64
}

// Partition is a horizontal slice of a table sharing one partition-column
// value (the whole table, for unpartitioned tables).
type Partition struct {
	// Key is the shared partition-column value; unpartitioned tables have a
	// single partition with a NULL key.
	Key     types.Value
	NumRows int
	chunks  map[string]*ColumnChunk
}

// Chunk returns the named column's chunk.
func (p *Partition) Chunk(col string) *ColumnChunk { return p.chunks[col] }

// DecodeColumns decodes the named column chunks of the partition, one
// one-pass DecodeAll per chunk, returning column vectors of NumRows values.
// It is the unit of work a morsel-scan worker performs per partition.
func (p *Partition) DecodeColumns(cols []string) ([][]types.Value, error) {
	out := make([][]types.Value, len(cols))
	for i, name := range cols {
		chunk := p.chunks[name]
		if chunk == nil {
			return nil, fmt.Errorf("storage: partition has no column %q", name)
		}
		out[i] = chunk.DecodeAll(make([]types.Value, 0, chunk.Count))
	}
	return out, nil
}

// TableData is the stored form of one table.
type TableData struct {
	Table      *catalog.Table
	Partitions []*Partition
}

// TotalBytes returns the full on-storage size of the table (all partitions,
// all columns).
func (t *TableData) TotalBytes() int64 {
	var total int64
	for _, p := range t.Partitions {
		for _, c := range p.chunks {
			total += c.Bytes
		}
	}
	return total
}

// NumRows returns the total row count.
func (t *TableData) NumRows() int64 {
	var total int64
	for _, p := range t.Partitions {
		total += int64(p.NumRows)
	}
	return total
}

// Metrics accumulates scan-side counters for one query execution. Safe for
// concurrent increments.
type Metrics struct {
	BytesScanned int64
	RowsScanned  int64
}

// AddBytes atomically adds scanned bytes.
func (m *Metrics) AddBytes(n int64) { atomic.AddInt64(&m.BytesScanned, n) }

// AddRows atomically adds scanned rows.
func (m *Metrics) AddRows(n int64) { atomic.AddInt64(&m.RowsScanned, n) }

// Store holds the data of every table in a catalog.
type Store struct {
	cat    *catalog.Catalog
	tables map[string]*TableData

	// shareState is lazily initialized cross-query scan-share state, owned
	// by the scanshare layer but anchored here so every engine instance over
	// the same data resolves the same manager (sharing is only meaningful —
	// and only safe, since cache keys are partition pointers — within one
	// store).
	shareMu    sync.Mutex
	shareState any

	// epoch counts data mutations (Load calls). Layers that cache anything
	// derived from partition metadata — chain-shape attribution, pruning
	// statistics — key their entries by epoch so a reload invalidates them
	// without coordination.
	epoch atomic.Int64
}

// Epoch returns the store's data version: it increments on every Load, so
// caches keyed by (anything, epoch) are invalidated by data changes.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// NewStore creates an empty store over the catalog.
func NewStore(cat *catalog.Catalog) *Store {
	return &Store{cat: cat, tables: make(map[string]*TableData)}
}

// Catalog returns the catalog this store serves.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// SharedScanState returns the store's scan-share state, initializing it with
// init on first use. The first caller wins; later callers receive the
// existing state regardless of their own configuration.
func (s *Store) SharedScanState(init func() any) any {
	s.shareMu.Lock()
	defer s.shareMu.Unlock()
	if s.shareState == nil {
		s.shareState = init()
	}
	return s.shareState
}

// Load ingests rows for a table, splitting them into partitions by the
// table's partition column and building per-partition column chunks. Rows
// are row-major and must match the table's column order.
func (s *Store) Load(table string, rows [][]types.Value) error {
	tab, ok := s.cat.Table(table)
	if !ok {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	for i, r := range rows {
		if len(r) != len(tab.Columns) {
			return fmt.Errorf("storage: row %d of %q has %d values, want %d", i, table, len(r), len(tab.Columns))
		}
	}
	td := &TableData{Table: tab}

	partIdx := tab.ColumnIndex(tab.PartitionColumn) // -1 when unpartitioned
	groups := make(map[string][]int)
	var keys []string
	keyVals := make(map[string]types.Value)
	for i, r := range rows {
		key := ""
		var kv types.Value
		if partIdx >= 0 {
			kv = r[partIdx]
			key = kv.String()
		} else {
			kv = types.NullOf(types.KindInt64)
		}
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
			keyVals[key] = kv
		}
		groups[key] = append(groups[key], i)
	}
	sort.Strings(keys)

	for _, key := range keys {
		idxs := groups[key]
		p := &Partition{Key: keyVals[key], NumRows: len(idxs), chunks: make(map[string]*ColumnChunk, len(tab.Columns))}
		for ci, col := range tab.Columns {
			chunk := &ColumnChunk{Kind: col.Type, Count: len(idxs)}
			for _, ri := range idxs {
				chunk.Data = appendValue(chunk.Data, rows[ri][ci])
			}
			chunk.Data = transform(chunk.Data) // stored transformed; reads pay the reverse pass
			chunk.Bytes = int64(len(chunk.Data))
			p.chunks[col.Name] = chunk
		}
		td.Partitions = append(td.Partitions, p)
	}
	s.tables[table] = td

	// Refresh coarse statistics used by optimizer heuristics.
	tab.Stats.RowCount = td.NumRows()
	tab.Stats.Partitions = len(td.Partitions)
	s.epoch.Add(1)
	return nil
}

// Data returns the stored table, or nil if not loaded.
func (s *Store) Data(table string) *TableData { return s.tables[table] }

// Pruner decides whether a partition must be read given its key value.
type Pruner func(key types.Value) bool

// ScanPartitions returns the partitions surviving the pruner (all of them
// when pruner is nil), charging bytes and rows for the given columns to the
// metrics.
func (s *Store) ScanPartitions(table string, cols []string, prune Pruner, m *Metrics) ([]*Partition, error) {
	td, ok := s.tables[table]
	if !ok {
		return nil, fmt.Errorf("storage: table %q has no data loaded", table)
	}
	var out []*Partition
	for _, p := range td.Partitions {
		if prune != nil && !prune(p.Key) {
			continue
		}
		for _, c := range cols {
			chunk := p.chunks[c]
			if chunk == nil {
				return nil, fmt.Errorf("storage: table %q has no column %q", table, c)
			}
			if m != nil {
				m.AddBytes(chunk.Bytes)
			}
		}
		if m != nil {
			m.AddRows(int64(p.NumRows))
		}
		out = append(out, p)
	}
	return out, nil
}
