// Package storage implements the engine's table store: an in-memory
// columnar layout with date-partitioned fact tables, per-(partition,
// column) byte accounting, and partition pruning.
//
// It substitutes for the paper's S3 + Parquet/Snappy substrate. The
// evaluation's Figure 2 reports *ratios* of bytes read between baseline and
// fused plans; those ratios depend only on which scans are eliminated and
// which partitions/columns are pruned — behaviour this layer reproduces —
// not on absolute data volume or the encoding format.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/types"
)

// ColumnChunk is the encoded values of one column within one partition.
// Bytes is the exact encoded size of the value payload — excluding the
// optional statistics header — which is what the bytes-scanned metric
// charges when the chunk is read.
type ColumnChunk struct {
	Kind  types.Kind
	Count int
	Data  []byte
	Bytes int64

	// stats is the pre-parsed zone map for chunks encoded by this store
	// version; chunks built from raw bytes leave it nil and Stats()
	// re-parses the header on demand.
	stats *ChunkStats
}

// Partition is a horizontal slice of a table sharing one partition-column
// value (the whole table, for unpartitioned tables). Partitions are
// immutable once published: Load and Append only ever create fresh
// Partition values, which is what keeps pointer-keyed caches (scanshare's
// decoded-chunk LRU) and Seq-keyed caches (rescache partition signatures)
// invalidation-safe without coordination.
type Partition struct {
	// Key is the shared partition-column value; unpartitioned tables have a
	// single partition with a NULL key.
	Key     types.Value
	NumRows int
	// Seq is the store-wide creation sequence number of this partition: every
	// partition ever published by Load or Append gets a distinct, monotonic
	// Seq. A table's ordered Seq list is therefore a precise fingerprint of
	// its current partition set — data-version state at partition
	// granularity, where the store epoch is the coarse whole-store version.
	Seq    int64
	chunks map[string]*ColumnChunk
}

// Chunk returns the named column's chunk.
func (p *Partition) Chunk(col string) *ColumnChunk { return p.chunks[col] }

// DecodeColumns decodes the named column chunks of the partition, one
// one-pass DecodeAll per chunk, returning column vectors of NumRows values.
// It is the unit of work a morsel-scan worker performs per partition.
func (p *Partition) DecodeColumns(cols []string) ([][]types.Value, error) {
	out := make([][]types.Value, len(cols))
	for i, name := range cols {
		chunk := p.chunks[name]
		if chunk == nil {
			return nil, fmt.Errorf("storage: partition has no column %q", name)
		}
		out[i] = chunk.DecodeAll(make([]types.Value, 0, chunk.Count))
	}
	return out, nil
}

// TableData is the stored form of one table.
type TableData struct {
	Table      *catalog.Table
	Partitions []*Partition
}

// TotalBytes returns the full on-storage size of the table (all partitions,
// all columns).
func (t *TableData) TotalBytes() int64 {
	var total int64
	for _, p := range t.Partitions {
		for _, c := range p.chunks {
			total += c.Bytes
		}
	}
	return total
}

// NumRows returns the total row count.
func (t *TableData) NumRows() int64 {
	var total int64
	for _, p := range t.Partitions {
		total += int64(p.NumRows)
	}
	return total
}

// Metrics accumulates scan-side counters for one query execution. Safe for
// concurrent increments.
type Metrics struct {
	BytesScanned int64
	RowsScanned  int64
}

// AddBytes atomically adds scanned bytes.
func (m *Metrics) AddBytes(n int64) { atomic.AddInt64(&m.BytesScanned, n) }

// AddRows atomically adds scanned rows.
func (m *Metrics) AddRows(n int64) { atomic.AddInt64(&m.RowsScanned, n) }

// Store holds the data of every table in a catalog.
type Store struct {
	cat *catalog.Catalog

	// mu guards the tables map. Mutations are copy-on-write: Load and
	// Append publish a brand-new *TableData (with a fresh partition slice)
	// under the write lock, so a reader that snapshotted a TableData before
	// a concurrent mutation keeps a fully consistent immutable view.
	mu     sync.RWMutex
	tables map[string]*TableData

	// shareState is lazily initialized cross-query scan-share state, owned
	// by the scanshare layer but anchored here so every engine instance over
	// the same data resolves the same manager (sharing is only meaningful —
	// and only safe, since cache keys are partition pointers — within one
	// store).
	shareMu    sync.Mutex
	shareState any

	// rescacheState is the lazily initialized cross-query result-cache
	// state, owned by the rescache layer but anchored here for the same
	// reason as shareState: entries are validated against this store's
	// partition sequence numbers, so the cache is only meaningful within
	// one store.
	rescacheMu    sync.Mutex
	rescacheState any

	// epoch counts data mutations (Load and Append calls). Layers that
	// cache anything derived from partition metadata — chain-shape
	// attribution, pruning statistics — key their entries by epoch so a
	// data change invalidates them without coordination. Layers that want
	// finer invalidation (surviving an append to an unrelated table) use
	// per-partition Seq signatures instead.
	epoch atomic.Int64

	// partSeq allocates Partition.Seq values.
	partSeq atomic.Int64
}

// Epoch returns the store's data version: it increments on every Load and
// Append, so caches keyed by (anything, epoch) are invalidated by data
// changes. Cache layers must read the epoch BEFORE enumerating partitions:
// that ordering guarantees a concurrent mutation can at worst leave a
// result recorded under the pre-mutation epoch (a dead entry), never stale
// data under the live epoch.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// NewStore creates an empty store over the catalog.
func NewStore(cat *catalog.Catalog) *Store {
	return &Store{cat: cat, tables: make(map[string]*TableData)}
}

// Catalog returns the catalog this store serves.
func (s *Store) Catalog() *catalog.Catalog { return s.cat }

// SharedScanState returns the store's scan-share state, initializing it with
// init on first use. The first caller wins; later callers receive the
// existing state regardless of their own configuration.
func (s *Store) SharedScanState(init func() any) any {
	s.shareMu.Lock()
	defer s.shareMu.Unlock()
	if s.shareState == nil {
		s.shareState = init()
	}
	return s.shareState
}

// ResultCacheState returns the store's semantic result-cache state,
// initializing it with init on first use. Like SharedScanState, the first
// caller wins; later callers receive the existing state regardless of their
// own configuration.
func (s *Store) ResultCacheState(init func() any) any {
	s.rescacheMu.Lock()
	defer s.rescacheMu.Unlock()
	if s.rescacheState == nil {
		s.rescacheState = init()
	}
	return s.rescacheState
}

// checkRows validates row widths against the table schema.
func checkRows(tab *catalog.Table, table string, rows [][]types.Value) error {
	for i, r := range rows {
		if len(r) != len(tab.Columns) {
			return fmt.Errorf("storage: row %d of %q has %d values, want %d", i, table, len(r), len(tab.Columns))
		}
	}
	return nil
}

// checkRowKinds additionally validates value kinds against the column
// types. The runtime Append path applies it because its rows arrive from
// untrusted wire clients; Load keeps the historical width-only check for
// embedding callers that rely on it.
func checkRowKinds(tab *catalog.Table, table string, rows [][]types.Value) error {
	for i, r := range rows {
		for j, v := range r {
			if !v.Null && v.Kind != tab.Columns[j].Type {
				return fmt.Errorf("storage: row %d of %q column %q has kind %v, want %v",
					i, table, tab.Columns[j].Name, v.Kind, tab.Columns[j].Type)
			}
		}
	}
	return nil
}

// buildPartitions splits rows into partitions by the table's partition
// column and encodes per-partition column chunks (the cmd/datagen encoding:
// appendValue per value, then the storage transform), returning the new
// partitions in sorted partition-key order. Each partition gets a fresh
// store-wide Seq.
func (s *Store) buildPartitions(tab *catalog.Table, rows [][]types.Value) []*Partition {
	partIdx := tab.ColumnIndex(tab.PartitionColumn) // -1 when unpartitioned
	groups := make(map[string][]int)
	var keys []string
	keyVals := make(map[string]types.Value)
	for i, r := range rows {
		key := ""
		var kv types.Value
		if partIdx >= 0 {
			kv = r[partIdx]
			key = kv.String()
		} else {
			kv = types.NullOf(types.KindInt64)
		}
		if _, seen := groups[key]; !seen {
			keys = append(keys, key)
			keyVals[key] = kv
		}
		groups[key] = append(groups[key], i)
	}
	sort.Strings(keys)

	parts := make([]*Partition, 0, len(keys))
	for _, key := range keys {
		idxs := groups[key]
		p := &Partition{
			Key:     keyVals[key],
			NumRows: len(idxs),
			Seq:     s.partSeq.Add(1),
			chunks:  make(map[string]*ColumnChunk, len(tab.Columns)),
		}
		for ci, col := range tab.Columns {
			chunk := &ColumnChunk{Kind: col.Type, Count: len(idxs)}
			st := &ChunkStats{}
			var payload []byte
			for _, ri := range idxs {
				v := rows[ri][ci]
				st.observe(v)
				payload = appendValue(payload, v)
			}
			// Stored transformed behind the versioned stats header; reads pay
			// the reverse pass over the payload only. Bytes stays the payload
			// length, so scan accounting is unchanged by the header.
			chunk.Data = encodeChunkData(st, payload)
			chunk.Bytes = int64(len(payload))
			chunk.stats = st
			p.chunks[col.Name] = chunk
		}
		parts = append(parts, p)
	}
	return parts
}

// publish installs td as the table's data under the write lock, refreshes
// the coarse optimizer statistics, and bumps the store epoch. Holding the
// lock across the stats refresh keeps last-publish-wins ordering between
// the map and the statistics.
func (s *Store) publish(table string, td *TableData) {
	s.mu.Lock()
	s.tables[table] = td
	td.Table.Stats.RowCount.Store(td.NumRows())
	td.Table.Stats.Partitions.Store(int64(len(td.Partitions)))
	s.mu.Unlock()
	s.epoch.Add(1)
}

// Load ingests rows for a table, splitting them into partitions by the
// table's partition column and building per-partition column chunks. Rows
// are row-major and must match the table's column order. Load replaces any
// existing data for the table.
func (s *Store) Load(table string, rows [][]types.Value) error {
	tab, ok := s.cat.Table(table)
	if !ok {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	if err := checkRows(tab, table, rows); err != nil {
		return err
	}
	td := &TableData{Table: tab, Partitions: s.buildPartitions(tab, rows)}
	s.publish(table, td)
	return nil
}

// Append ingests rows for a table as new partitions alongside the existing
// ones — the runtime write path. Like new objects landing under a table's
// S3 prefix, appended rows become fresh Partition values (several
// partitions may share a Key after appends); existing partitions are never
// mutated, so pointer-keyed caches over them stay valid, and because every
// new partition gets a fresh Seq, partition-set signatures over any touched
// table change while signatures over untouched tables survive. The store
// epoch bumps, invalidating coarse epoch-keyed caches.
func (s *Store) Append(table string, rows [][]types.Value) error {
	tab, ok := s.cat.Table(table)
	if !ok {
		return fmt.Errorf("storage: unknown table %q", table)
	}
	if err := checkRows(tab, table, rows); err != nil {
		return err
	}
	if err := checkRowKinds(tab, table, rows); err != nil {
		return err
	}
	if len(rows) == 0 {
		return nil
	}
	fresh := s.buildPartitions(tab, rows)
	// Copy-on-write under the write lock: concurrent readers holding the old
	// TableData keep a consistent immutable snapshot, and the read-modify-
	// publish of the partition list is atomic against concurrent appends.
	s.mu.Lock()
	td := &TableData{Table: tab}
	if old := s.tables[table]; old != nil {
		td.Partitions = append(make([]*Partition, 0, len(old.Partitions)+len(fresh)), old.Partitions...)
	}
	td.Partitions = append(td.Partitions, fresh...)
	s.tables[table] = td
	tab.Stats.RowCount.Store(td.NumRows())
	tab.Stats.Partitions.Store(int64(len(td.Partitions)))
	s.mu.Unlock()
	s.epoch.Add(1)
	return nil
}

// Data returns the stored table, or nil if not loaded. The returned
// TableData is an immutable snapshot: concurrent Load/Append calls publish
// replacement values rather than mutating it.
func (s *Store) Data(table string) *TableData {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tables[table]
}

// Pruner decides whether a partition must be read given its key value.
type Pruner func(key types.Value) bool

// ScanPartitions returns the partitions surviving the pruner (all of them
// when pruner is nil), charging bytes and rows for the given columns to the
// metrics. The walk runs over an immutable TableData snapshot, so a
// concurrent Load/Append never changes the partition set mid-enumeration.
func (s *Store) ScanPartitions(table string, cols []string, prune Pruner, m *Metrics) ([]*Partition, error) {
	td := s.Data(table)
	if td == nil {
		return nil, fmt.Errorf("storage: table %q has no data loaded", table)
	}
	var out []*Partition
	for _, p := range td.Partitions {
		if prune != nil && !prune(p.Key) {
			continue
		}
		for _, c := range cols {
			chunk := p.chunks[c]
			if chunk == nil {
				return nil, fmt.Errorf("storage: table %q has no column %q", table, c)
			}
			if m != nil {
				m.AddBytes(chunk.Bytes)
			}
		}
		if m != nil {
			m.AddRows(int64(p.NumRows))
		}
		out = append(out, p)
	}
	return out, nil
}

// PartitionSeqs returns the ordered Seq numbers of the table's current
// partitions — a precise, cheap signature of the table's data version
// (metadata only; nothing is decoded or charged). ok is false when the
// table has no data loaded.
func (s *Store) PartitionSeqs(table string) (seqs []int64, ok bool) {
	td := s.Data(table)
	if td == nil {
		return nil, false
	}
	seqs = make([]int64, len(td.Partitions))
	for i, p := range td.Partitions {
		seqs[i] = p.Seq
	}
	return seqs, true
}
