package storage

import (
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/types"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: types.KindInt64},
			{Name: "b", Type: types.KindString},
			{Name: "d", Type: types.KindInt64},
		},
		PartitionColumn: "d",
	})
	cat.MustAdd(&catalog.Table{
		Name: "u",
		Columns: []catalog.Column{
			{Name: "x", Type: types.KindFloat64},
		},
	})
	return cat
}

func TestLoadAndPartitioning(t *testing.T) {
	st := NewStore(testCatalog())
	rows := [][]types.Value{
		{types.Int(1), types.String("one"), types.Int(10)},
		{types.Int(2), types.String("two"), types.Int(20)},
		{types.Int(3), types.String("three"), types.Int(10)},
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	td := st.Data("t")
	if len(td.Partitions) != 2 {
		t.Fatalf("partitions = %d, want 2", len(td.Partitions))
	}
	if td.NumRows() != 3 {
		t.Errorf("rows = %d", td.NumRows())
	}
	tab, _ := st.Catalog().Table("t")
	if tab.Stats.RowCount.Load() != 3 || tab.Stats.Partitions.Load() != 2 {
		t.Errorf("stats not refreshed: rows=%d parts=%d", tab.Stats.RowCount.Load(), tab.Stats.Partitions.Load())
	}
}

func TestLoadErrors(t *testing.T) {
	st := NewStore(testCatalog())
	if err := st.Load("missing", nil); err == nil {
		t.Error("unknown table accepted")
	}
	if err := st.Load("t", [][]types.Value{{types.Int(1)}}); err == nil {
		t.Error("short row accepted")
	}
}

func TestScanPartitionsPruning(t *testing.T) {
	st := NewStore(testCatalog())
	var rows [][]types.Value
	for i := 0; i < 30; i++ {
		rows = append(rows, []types.Value{
			types.Int(int64(i)), types.String("v"), types.Int(int64(i % 3)),
		})
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	var m Metrics
	parts, err := st.ScanPartitions("t", []string{"a"}, func(key types.Value) bool {
		return key.I == 1
	}, &m)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 {
		t.Fatalf("pruned to %d partitions, want 1", len(parts))
	}
	if m.RowsScanned != 10 {
		t.Errorf("rows scanned = %d, want 10", m.RowsScanned)
	}
	if m.BytesScanned <= 0 {
		t.Error("bytes not accounted")
	}

	// Full scan of more columns reads more bytes.
	var m2 Metrics
	if _, err := st.ScanPartitions("t", []string{"a", "b", "d"}, nil, &m2); err != nil {
		t.Fatal(err)
	}
	if m2.BytesScanned <= m.BytesScanned {
		t.Error("wider scan should cost more bytes")
	}
	if _, err := st.ScanPartitions("t", []string{"zzz"}, nil, nil); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := st.ScanPartitions("u", []string{"x"}, nil, nil); err == nil {
		t.Error("unloaded table accepted")
	}
}

// Property: every value round-trips through the chunk encoding.
func TestChunkEncodingRoundTrip(t *testing.T) {
	cases := []types.Value{
		types.Int(0), types.Int(-1), types.Int(1 << 40), types.Int(-(1 << 40)),
		types.Float(0), types.Float(-3.25), types.Float(1e300),
		types.String(""), types.String("hello world"), types.String("with | pipe"),
		types.Bool(true), types.Bool(false),
		types.Date(12000),
		types.NullOf(types.KindInt64), types.NullOf(types.KindString),
	}
	for _, v := range cases {
		chunk := &ColumnChunk{Kind: v.Kind, Count: 1}
		chunk.Data = appendValue(chunk.Data, v)
		chunk.Data = transform(chunk.Data)
		r := chunk.NewReader()
		got := r.Next()
		if !got.Equal(v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestChunkEncodingSequenceProperty(t *testing.T) {
	f := func(ints []int64, strs []string) bool {
		chunkI := &ColumnChunk{Kind: types.KindInt64}
		for _, i := range ints {
			chunkI.Data = appendValue(chunkI.Data, types.Int(i))
		}
		chunkI.Data = transform(chunkI.Data)
		r := chunkI.NewReader()
		for _, i := range ints {
			if got := r.Next(); got.I != i || got.Null {
				return false
			}
		}
		chunkS := &ColumnChunk{Kind: types.KindString}
		for _, s := range strs {
			chunkS.Data = appendValue(chunkS.Data, types.String(s))
		}
		chunkS.Data = transform(chunkS.Data)
		rs := chunkS.NewReader()
		for _, s := range strs {
			if got := rs.Next(); got.S != s || got.Null {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTotalBytes(t *testing.T) {
	st := NewStore(testCatalog())
	rows := [][]types.Value{
		{types.Int(1), types.String("one"), types.Int(10)},
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	if st.Data("t").TotalBytes() <= 0 {
		t.Error("TotalBytes should be positive")
	}
}
