package storage

import "repro/internal/types"

// RowBuffer is an encoded row-major buffer used by the spooling executor to
// materialize intermediate results. Writes pay the same encode + stream
// transform as base-table storage, and every read pays the reverse — so a
// spooled common subexpression is written once and *read back* by every
// consumer, reproducing the cost structure the paper argues fusion avoids
// ("alternatives that materialize intermediate results ... not only write
// those intermediates, but need to read them multiple times").
type RowBuffer struct {
	kinds   []types.Kind
	data    []byte
	rows    int
	sealed  bool
	scratch []byte // per-row encode buffer, reused across Appends
}

// NewRowBuffer creates a buffer for rows with the given column kinds.
func NewRowBuffer(kinds []types.Kind) *RowBuffer {
	return &RowBuffer{kinds: append([]types.Kind{}, kinds...)}
}

// Append encodes one row; the row width must match the declared kinds.
// The row is encoded into a reused scratch buffer and copied into data,
// which grows by capacity doubling — on the spool/spill hot path this
// amortizes to zero allocations per row.
func (b *RowBuffer) Append(row []types.Value) {
	if b.sealed {
		panic("storage: append to sealed RowBuffer")
	}
	enc := b.scratch[:0]
	for _, v := range row {
		enc = appendValue(enc, v)
	}
	b.scratch = enc
	if need := len(b.data) + len(enc); need > cap(b.data) {
		newCap := 2 * cap(b.data)
		if newCap < need {
			newCap = need
		}
		if newCap < 256 {
			newCap = 256
		}
		grown := make([]byte, len(b.data), newCap)
		copy(grown, b.data)
		b.data = grown
	}
	b.data = append(b.data, enc...)
	b.rows++
}

// Seal applies the storage transform; the buffer becomes read-only.
func (b *RowBuffer) Seal() {
	if !b.sealed {
		b.data = transform(b.data)
		b.sealed = true
	}
}

// Rows returns the number of buffered rows.
func (b *RowBuffer) Rows() int { return b.rows }

// Bytes returns the encoded size (charged once on write and once per
// reader).
func (b *RowBuffer) Bytes() int64 { return int64(len(b.data)) }

// NewReader reverses the transform and decodes rows sequentially.
func (b *RowBuffer) NewReader() *RowReader {
	if !b.sealed {
		panic("storage: read from unsealed RowBuffer")
	}
	return &RowReader{kinds: b.kinds, data: transform(b.data), remaining: b.rows}
}

// RowReader sequentially decodes a sealed RowBuffer.
type RowReader struct {
	kinds     []types.Kind
	data      []byte
	off       int
	remaining int
}

// Next decodes the next row, or returns nil when exhausted.
func (r *RowReader) Next() []types.Value {
	if r.remaining == 0 {
		return nil
	}
	r.remaining--
	row := make([]types.Value, len(r.kinds))
	cr := ChunkReader{data: r.data, off: r.off}
	for i, k := range r.kinds {
		cr.kind = k
		row[i] = cr.Next()
	}
	r.off = cr.off
	return row
}
