package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/types"
)

// Column chunks are stored encoded, not as live Value slices: scans must
// decode every value they read, like a real columnar reader (the paper's
// substrate reads Parquet with Snappy from S3, where decode cost is a
// first-class component of scan cost). The format per value is a 1-byte
// null flag followed by a kind-specific payload: zig-zag varints for
// BIGINT/DATE, 8 little-endian bytes for DOUBLE, uvarint length + bytes for
// VARCHAR, one byte for BOOLEAN.

// appendValue encodes v onto buf.
func appendValue(buf []byte, v types.Value) []byte {
	if v.Null {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	switch v.Kind {
	case types.KindInt64, types.KindDate:
		buf = binary.AppendVarint(buf, v.I)
	case types.KindFloat64:
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(v.F))
		buf = append(buf, b[:]...)
	case types.KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.S)))
		buf = append(buf, v.S...)
	case types.KindBool:
		if v.I != 0 {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	default:
		panic(fmt.Sprintf("storage: cannot encode kind %v", v.Kind))
	}
	return buf
}

// xorKey drives the byte-wise stream transform applied to stored chunks.
// Reversing it on read costs one linear pass over the chunk — the same
// cost class as Snappy decompression (~1-2 GB/s), which the paper's
// substrate pays on every S3 read. Without it, an in-memory scan would be
// unrealistically cheap relative to expression evaluation.
const xorKey = 0x5a

func transform(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ byte(xorKey+i)
	}
	return out
}

// DecodeAll reverses the storage transform once and decodes every value of
// the chunk in a single tight pass, appending onto dst (which may be nil).
// This is the batch analogue of NewReader+Next: the transform and the
// decode loop each touch the chunk exactly once, instead of paying reader
// dispatch per value.
func (c *ColumnChunk) DecodeAll(dst []types.Value) []types.Value {
	if cap(dst)-len(dst) < c.Count {
		grown := make([]types.Value, len(dst), len(dst)+c.Count)
		copy(grown, dst)
		dst = grown
	}
	r := ChunkReader{kind: c.Kind, data: transform(c.Data[payloadStart(c.Data):])}
	for i := 0; i < c.Count; i++ {
		dst = append(dst, r.Next())
	}
	return dst
}

// ChunkReader sequentially decodes a column chunk.
type ChunkReader struct {
	kind types.Kind
	data []byte
	off  int
}

// NewReader reverses the storage transform (the simulated decompression
// pass) and positions a reader at the chunk's first value, past any
// statistics header.
func (c *ColumnChunk) NewReader() ChunkReader {
	return ChunkReader{kind: c.Kind, data: transform(c.Data[payloadStart(c.Data):])}
}

// Next decodes the next value; calling past the end panics (chunk row
// counts are authoritative).
func (r *ChunkReader) Next() types.Value {
	flag := r.data[r.off]
	r.off++
	if flag == 0 {
		return types.NullOf(r.kind)
	}
	switch r.kind {
	case types.KindInt64, types.KindDate:
		i, n := binary.Varint(r.data[r.off:])
		r.off += n
		return types.Value{Kind: r.kind, I: i}
	case types.KindFloat64:
		f := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.off:]))
		r.off += 8
		return types.Float(f)
	case types.KindString:
		l, n := binary.Uvarint(r.data[r.off:])
		r.off += n
		s := string(r.data[r.off : r.off+int(l)])
		r.off += int(l)
		return types.String(s)
	case types.KindBool:
		b := r.data[r.off] != 0
		r.off++
		return types.Bool(b)
	default:
		panic(fmt.Sprintf("storage: cannot decode kind %v", r.kind))
	}
}
