package storage

import (
	"math"
	"testing"

	"repro/internal/types"
)

// TestChunkStatsRoundTrip verifies the v1 chunk layout end to end: stats
// computed at Load time survive the encode, a cold re-parse of the stored
// bytes reproduces them, and the payload decodes to the original values.
func TestChunkStatsRoundTrip(t *testing.T) {
	st := NewStore(testCatalog())
	rows := [][]types.Value{
		{types.Int(7), types.String("bb"), types.Int(0)},
		{types.Int(-3), types.NullOf(types.KindString), types.Int(0)},
		{types.Int(12), types.String("aa"), types.Int(0)},
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	p := st.Data("t").Partitions[0]

	a := p.Chunk("a")
	stats := a.Stats()
	if stats == nil {
		t.Fatal("v1 chunk returned nil stats")
	}
	if stats.NullCount != 0 || !stats.HasBounds || stats.HasNaN {
		t.Fatalf("int stats = %+v", stats)
	}
	if stats.Min.I != -3 || stats.Max.I != 12 {
		t.Fatalf("int bounds = [%d, %d], want [-3, 12]", stats.Min.I, stats.Max.I)
	}

	b := p.Chunk("b")
	bs := b.Stats()
	if bs == nil || bs.NullCount != 1 || !bs.HasBounds {
		t.Fatalf("string stats = %+v", bs)
	}
	if bs.Min.S != "aa" || bs.Max.S != "bb" {
		t.Fatalf("string bounds = [%q, %q]", bs.Min.S, bs.Max.S)
	}

	// Cold parse: a chunk carrying only the stored bytes (as if received
	// from elsewhere) must re-derive identical stats from the header.
	cold := &ColumnChunk{Kind: a.Kind, Count: a.Count, Bytes: a.Bytes, Data: a.Data}
	cs := cold.Stats()
	if cs == nil || cs.NullCount != stats.NullCount || cs.Min.I != stats.Min.I || cs.Max.I != stats.Max.I {
		t.Fatalf("cold re-parse = %+v, want %+v", cs, stats)
	}

	got := a.DecodeAll(nil)
	want := []int64{7, -3, 12}
	for i, v := range got {
		if v.Null || v.I != want[i] {
			t.Fatalf("decode[%d] = %+v, want %d", i, v, want[i])
		}
	}
	// Bytes accounts the payload only: the stats header rides free.
	if a.Bytes >= int64(len(a.Data)) {
		t.Fatalf("Bytes = %d covers the stats header (len(Data) = %d)", a.Bytes, len(a.Data))
	}
}

// TestLegacyStatslessChunkDecodes builds a pre-stats (v0) chunk — the
// transformed value stream with no header — and verifies both readers
// decode it unchanged while Stats degrades to nil (pruning then reads the
// chunk; it never guesses).
func TestLegacyStatslessChunkDecodes(t *testing.T) {
	vals := []types.Value{types.Int(5), types.NullOf(types.KindInt64), types.Int(-9)}
	var payload []byte
	for _, v := range vals {
		payload = appendValue(payload, v)
	}
	legacy := &ColumnChunk{Kind: types.KindInt64, Count: len(vals),
		Bytes: int64(len(payload)), Data: transform(payload)}
	if legacy.Stats() != nil {
		t.Fatal("legacy chunk reported stats")
	}
	got := legacy.DecodeAll(nil)
	for i, v := range got {
		if v.Null != vals[i].Null || v.I != vals[i].I {
			t.Fatalf("legacy decode[%d] = %+v, want %+v", i, v, vals[i])
		}
	}
	r := legacy.NewReader()
	for i := range vals {
		if v := r.Next(); v.Null != vals[i].Null || v.I != vals[i].I {
			t.Fatalf("legacy reader[%d] = %+v", i, v)
		}
	}
}

// TestChunkStatsFloatEdges pins the float-bound policy: NaN never enters
// the bounds (types.Compare cannot order it) but sets HasNaN; -0 and +0
// compare equal so either may serve as a bound; an all-NULL chunk has no
// bounds at all.
func TestChunkStatsFloatEdges(t *testing.T) {
	st := NewStore(testCatalog())
	rows := [][]types.Value{
		{types.Float(math.NaN())},
		{types.Float(math.Copysign(0, -1))},
		{types.Float(2.5)},
		{types.NullOf(types.KindFloat64)},
	}
	if err := st.Load("u", rows); err != nil {
		t.Fatal(err)
	}
	c := st.Data("u").Partitions[0].Chunk("x")
	stats := c.Stats()
	if stats == nil {
		t.Fatal("nil stats")
	}
	if !stats.HasNaN || stats.NullCount != 1 || !stats.HasBounds {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.Min.F != 0 || stats.Max.F != 2.5 {
		t.Fatalf("bounds = [%v, %v], want [-0, 2.5]", stats.Min.F, stats.Max.F)
	}
	if math.IsNaN(stats.Min.F) || math.IsNaN(stats.Max.F) {
		t.Fatal("NaN leaked into bounds")
	}

	st2 := NewStore(testCatalog())
	if err := st2.Load("u", [][]types.Value{{types.NullOf(types.KindFloat64)}, {types.NullOf(types.KindFloat64)}}); err != nil {
		t.Fatal(err)
	}
	c2 := st2.Data("u").Partitions[0].Chunk("x")
	s2 := c2.Stats()
	if s2 == nil || s2.HasBounds || s2.HasNaN || s2.NullCount != 2 {
		t.Fatalf("all-NULL stats = %+v", s2)
	}
}

// TestParseStatsRejectsMalformedHeaders feeds truncated and corrupt headers
// and expects nil (legacy fallback), never a panic or a bogus zone map.
func TestParseStatsRejectsMalformedHeaders(t *testing.T) {
	good := encodeChunkData(&ChunkStats{HasBounds: true, Min: types.Int(1), Max: types.Int(2)}, appendValue(nil, types.Int(1)))
	cases := [][]byte{
		nil,
		{chunkMagic},
		{chunkMagic, chunkStatsV1},
		{chunkMagic, 0x7F, 0x00},         // unknown version
		{chunkMagic, chunkStatsV1, 0xFF}, // unterminated uvarint length
		good[:4],                         // truncated mid-header
	}
	for i, data := range cases {
		if st := parseStats(data, types.KindInt64); st != nil {
			t.Fatalf("case %d: malformed header parsed to %+v", i, st)
		}
	}
	if st := parseStats(good, types.KindInt64); st == nil || st.Min.I != 1 || st.Max.I != 2 {
		t.Fatalf("well-formed header rejected: %+v", st)
	}
}
