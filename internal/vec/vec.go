// Package vec defines the columnar batch representation shared by the
// storage layer and the vectorized executor. A Batch is a set of column
// vectors plus an optional selection vector: filters qualify rows by
// shrinking the selection instead of materializing survivors, so a
// predicate's cost is one pass over a column, not one virtual call per row
// (the push/pull fusion literature's argument against tuple-at-a-time
// interpretation, applied to this engine).
package vec

import "repro/internal/types"

// Batch is a columnar slice of rows. Cols[c][r] is the value of column c at
// physical row r; N is the physical row count. Sel, when non-nil, lists the
// physical indices of the active rows in output order — rows outside Sel
// are dead (filtered out) but not compacted away.
type Batch struct {
	Cols [][]types.Value
	Sel  []int
	N    int
}

// NewDense wraps column vectors of n rows into a batch with all rows active.
func NewDense(cols [][]types.Value, n int) *Batch {
	return &Batch{Cols: cols, N: n}
}

// Len returns the number of active rows.
func (b *Batch) Len() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.N
}

// Width returns the number of columns.
func (b *Batch) Width() int { return len(b.Cols) }

// RowIdx maps the i-th active row to its physical index.
func (b *Batch) RowIdx(i int) int {
	if b.Sel != nil {
		return b.Sel[i]
	}
	return i
}

// Value returns column c at active row i.
func (b *Batch) Value(c, i int) types.Value {
	return b.Cols[c][b.RowIdx(i)]
}

// Gather copies active row i into dst, which must have at least Width
// values.
func (b *Batch) Gather(i int, dst []types.Value) {
	r := b.RowIdx(i)
	for c := range b.Cols {
		dst[c] = b.Cols[c][r]
	}
}

// WithSel returns a batch sharing this batch's columns but with the given
// selection (physical row indices, in output order).
func (b *Batch) WithSel(sel []int) *Batch {
	return &Batch{Cols: b.Cols, Sel: sel, N: b.N}
}

// Builder accumulates row-major appends into columnar batches of a target
// size. Operators that inherently produce rows (join outputs, group
// results) use it to re-columnarize without a second copy.
type Builder struct {
	width  int
	target int
	n      int
	cols   [][]types.Value
}

// NewBuilder creates a builder for rows of the given width; Flush returns
// batches and Full reports when target rows have accumulated.
func NewBuilder(width, target int) *Builder {
	if target <= 0 {
		target = 1
	}
	return &Builder{width: width, target: target}
}

func (bl *Builder) ensure() {
	if bl.cols == nil {
		bl.cols = make([][]types.Value, bl.width)
		for c := range bl.cols {
			bl.cols[c] = make([]types.Value, 0, bl.target)
		}
	}
}

// Append copies one row into the builder.
func (bl *Builder) Append(row []types.Value) {
	bl.ensure()
	for c := range bl.cols {
		bl.cols[c] = append(bl.cols[c], row[c])
	}
	bl.n++
}

// Len returns the number of buffered rows.
func (bl *Builder) Len() int { return bl.n }

// Full reports whether the builder holds at least the target row count.
func (bl *Builder) Full() bool { return bl.Len() >= bl.target }

// Flush returns the buffered rows as a dense batch (nil when empty) and
// resets the builder.
func (bl *Builder) Flush() *Batch {
	n := bl.Len()
	if n == 0 {
		return nil
	}
	bl.ensure() // width-0 rows still need a non-nil column set
	b := NewDense(bl.cols, n)
	bl.cols = nil
	bl.n = 0
	return b
}
