package vec

import (
	"math"
	"testing"

	"repro/internal/types"
)

// The partition routing depends on one property: tuples the executor's key
// encoding treats as equal must hash equal. Kind discrimination mirrors the
// encoding (integer-payload kinds share a tag, strings and floats have
// their own, NULL its own).
func TestHashKeyConsistency(t *testing.T) {
	equal := [][2][]types.Value{
		// BIGINT, BOOLEAN and DATE share the integer payload tag, exactly
		// like the executor's encoded keys.
		{{types.Int(1)}, {types.Bool(true)}},
		{{types.Int(5)}, {types.Date(5)}},
		{{types.NullOf(types.KindInt64)}, {types.NullOf(types.KindString)}},
		{{types.Float(math.NaN())}, {types.Float(-math.NaN())}},
		{{types.String("ab"), types.Int(3)}, {types.String("ab"), types.Int(3)}},
	}
	for i, pair := range equal {
		if HashKey(pair[0]) != HashKey(pair[1]) {
			t.Errorf("case %d: keys %v and %v should hash equal", i, pair[0], pair[1])
		}
	}
	distinct := [][]types.Value{
		{types.Int(1)},
		{types.Int(2)},
		{types.Float(1)},
		{types.Float(math.Copysign(0, -1))},
		{types.Float(0)},
		{types.String("1")},
		{types.String("")},
		{types.NullOf(types.KindInt64)},
		{types.String("a"), types.String("bc")},
		{types.String("ab"), types.String("c")},
	}
	seen := make(map[uint64][]types.Value)
	for _, k := range distinct {
		h := HashKey(k)
		if prev, ok := seen[h]; ok {
			t.Errorf("collision between %v and %v", prev, k)
		}
		seen[h] = k
	}
}

func TestHashColumnsMatchesHashKey(t *testing.T) {
	cols := [][]types.Value{
		{types.Int(1), types.Int(2), types.Int(3), types.Int(4)},
		{types.String("a"), types.String("b"), types.NullOf(types.KindString), types.String("d")},
		{types.Float(0.5), types.Float(1.5), types.Float(2.5), types.Float(3.5)},
	}
	b := NewDense(cols, 4)
	sel := b.WithSel([]int{3, 1})

	for _, tc := range []struct {
		name string
		b    *Batch
	}{{"dense", b}, {"selected", sel}} {
		n := tc.b.Len()
		out := make([]uint64, n)
		tc.b.HashColumns([]int{0, 1, 2}, out)
		kv := make([]types.Value, 3)
		for i := 0; i < n; i++ {
			tc.b.Gather(i, kv)
			if want := HashKey(kv); out[i] != want {
				t.Errorf("%s row %d: HashColumns=%d HashKey=%d", tc.name, i, out[i], want)
			}
		}
	}
}

func TestHashRowsMatchesHashKey(t *testing.T) {
	cols := [][]types.Value{
		{types.Int(7), types.NullOf(types.KindInt64), types.Int(9)},
		{types.Float(1.25), types.Float(2.5), types.Float(3.75)},
	}
	out := make([]uint64, 3)
	HashRows(cols, out)
	for i := range out {
		kv := []types.Value{cols[0][i], cols[1][i]}
		if want := HashKey(kv); out[i] != want {
			t.Errorf("row %d: HashRows=%d HashKey=%d", i, out[i], want)
		}
	}
}
