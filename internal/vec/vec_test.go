package vec

import (
	"testing"

	"repro/internal/types"
)

func col(vals ...int64) []types.Value {
	out := make([]types.Value, len(vals))
	for i, v := range vals {
		out[i] = types.Int(v)
	}
	return out
}

func TestBatchSelection(t *testing.T) {
	b := NewDense([][]types.Value{col(10, 20, 30, 40), col(1, 2, 3, 4)}, 4)
	if b.Len() != 4 || b.Width() != 2 {
		t.Fatalf("dense batch: len=%d width=%d", b.Len(), b.Width())
	}
	if b.Value(0, 2).I != 30 {
		t.Errorf("Value(0,2) = %v", b.Value(0, 2))
	}

	s := b.WithSel([]int{1, 3})
	if s.Len() != 2 {
		t.Fatalf("selected len = %d", s.Len())
	}
	if s.RowIdx(0) != 1 || s.RowIdx(1) != 3 {
		t.Errorf("RowIdx: %d, %d", s.RowIdx(0), s.RowIdx(1))
	}
	if s.Value(0, 0).I != 20 || s.Value(0, 1).I != 40 {
		t.Errorf("selected values: %v, %v", s.Value(0, 0), s.Value(0, 1))
	}
	row := make([]types.Value, 2)
	s.Gather(1, row)
	if row[0].I != 40 || row[1].I != 4 {
		t.Errorf("gathered row: %v", row)
	}
	// The original batch is unchanged.
	if b.Sel != nil || b.Len() != 4 {
		t.Error("WithSel mutated the source batch")
	}
}

func TestBuilder(t *testing.T) {
	bl := NewBuilder(1, 2)
	if bl.Flush() != nil {
		t.Error("empty builder should flush nil")
	}
	src := []types.Value{types.Int(7)}
	bl.Append(src)
	src[0] = types.Int(99) // Append must copy
	bl.Append([]types.Value{types.Int(8)})
	if !bl.Full() {
		t.Error("builder should be full at target")
	}
	b := bl.Flush()
	if b == nil || b.Len() != 2 {
		t.Fatalf("flushed batch: %+v", b)
	}
	if b.Value(0, 0).I != 7 || b.Value(0, 1).I != 8 {
		t.Errorf("values: %v, %v", b.Value(0, 0), b.Value(0, 1))
	}
	// Builder is reusable after Flush.
	if bl.Len() != 0 || bl.Full() {
		t.Error("Flush did not reset builder")
	}
}

// Zero-width rows (e.g. COUNT(*) over a pruned-away schema) still count.
func TestBuilderZeroWidth(t *testing.T) {
	bl := NewBuilder(0, 4)
	bl.Append(nil)
	bl.Append(nil)
	b := bl.Flush()
	if b == nil || b.Len() != 2 || b.Width() != 0 {
		t.Fatalf("zero-width batch: %+v", b)
	}
}
