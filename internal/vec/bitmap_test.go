package vec

import (
	"math/rand"
	"testing"
)

// tri is the reference three-valued model: 0 FALSE, 1 TRUE, 2 NULL.
type tri uint8

const (
	triFalse tri = 0
	triTrue  tri = 1
	triNull  tri = 2
)

func kleeneAndRef(a, b tri) tri {
	if a == triFalse || b == triFalse {
		return triFalse
	}
	if a == triNull || b == triNull {
		return triNull
	}
	return triTrue
}

func kleeneOrRef(a, b tri) tri {
	if a == triTrue || b == triTrue {
		return triTrue
	}
	if a == triNull || b == triNull {
		return triNull
	}
	return triFalse
}

func kleeneNotRef(a tri) tri {
	switch a {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	default:
		return triNull
	}
}

func bitmapFromTri(vals []tri) *Bitmap {
	bm := &Bitmap{}
	bm.Reset(len(vals))
	for i, v := range vals {
		switch v {
		case triTrue:
			bm.SetTrue(i)
		case triNull:
			bm.SetNull(i)
		}
	}
	return bm
}

func triAt(bm *Bitmap, i int) tri {
	switch {
	case bm.True(i):
		if bm.Null(i) {
			return 99 // invariant violation, caught by comparison
		}
		return triTrue
	case bm.Null(i):
		return triNull
	default:
		return triFalse
	}
}

func randomTri(rng *rand.Rand, n int) []tri {
	vals := make([]tri, n)
	for i := range vals {
		vals[i] = tri(rng.Intn(3))
	}
	return vals
}

// Sizes straddle word boundaries to exercise tail masking.
var bitmapSizes = []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 200, 1000}

func TestBitmapKleeneKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range bitmapSizes {
		for trial := 0; trial < 4; trial++ {
			a := randomTri(rng, n)
			b := randomTri(rng, n)

			and := bitmapFromTri(a)
			and.AndWith(bitmapFromTri(b))
			or := bitmapFromTri(a)
			or.OrWith(bitmapFromTri(b))
			not := bitmapFromTri(a)
			not.Not()
			truth := bitmapFromTri(a)
			truth.AndTruthWith(bitmapFromTri(b))

			for i := 0; i < n; i++ {
				if got, want := triAt(and, i), kleeneAndRef(a[i], b[i]); got != want {
					t.Fatalf("n=%d AND row %d (%v,%v): got %v want %v", n, i, a[i], b[i], got, want)
				}
				if got, want := triAt(or, i), kleeneOrRef(a[i], b[i]); got != want {
					t.Fatalf("n=%d OR row %d (%v,%v): got %v want %v", n, i, a[i], b[i], got, want)
				}
				if got, want := triAt(not, i), kleeneNotRef(a[i]); got != want {
					t.Fatalf("n=%d NOT row %d (%v): got %v want %v", n, i, a[i], got, want)
				}
				wantTruth := triFalse
				if a[i] == triTrue && b[i] == triTrue {
					wantTruth = triTrue
				}
				if got := triAt(truth, i); got != wantTruth {
					t.Fatalf("n=%d AndTruth row %d (%v,%v): got %v want %v", n, i, a[i], b[i], got, wantTruth)
				}
			}
			// Tail bits past n must stay zero so Count stays exact.
			for _, bm := range []*Bitmap{and, or, not, truth} {
				wantCount := 0
				for i := 0; i < n; i++ {
					if triAt(bm, i) == triTrue {
						wantCount++
					}
				}
				if got := bm.Count(); got != wantCount {
					t.Fatalf("n=%d Count: got %d want %d", n, got, wantCount)
				}
			}
		}
	}
}

func TestBitmapFillAndCopy(t *testing.T) {
	for _, n := range bitmapSizes {
		bm := &Bitmap{}
		bm.Reset(n)
		bm.FillTrue()
		if got := bm.Count(); got != n {
			t.Fatalf("n=%d FillTrue Count=%d", n, got)
		}
		bm.FillNull()
		if got := bm.Count(); got != 0 {
			t.Fatalf("n=%d FillNull Count=%d", n, got)
		}
		for i := 0; i < n; i++ {
			if !bm.Null(i) {
				t.Fatalf("n=%d FillNull row %d not null", n, i)
			}
		}
		cp := &Bitmap{}
		cp.CopyFrom(bm)
		if cp.Len() != n {
			t.Fatalf("CopyFrom len %d want %d", cp.Len(), n)
		}
		for i := 0; i < n; i++ {
			if cp.True(i) != bm.True(i) || cp.Null(i) != bm.Null(i) {
				t.Fatalf("n=%d CopyFrom row %d mismatch", n, i)
			}
		}
	}
}

func TestBitmapResetReuse(t *testing.T) {
	bm := &Bitmap{}
	bm.Reset(200)
	bm.FillTrue()
	// Shrinking reuses the backing array; all rows must come back FALSE.
	bm.Reset(70)
	if got := bm.Count(); got != 0 {
		t.Fatalf("after Reset Count=%d", got)
	}
	bm.SetTrue(69)
	if !bm.True(69) || bm.Count() != 1 {
		t.Fatal("SetTrue after reuse failed")
	}
}

func TestBitmapAppendTrue(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range bitmapSizes {
		vals := randomTri(rng, n)
		bm := bitmapFromTri(vals)
		var want []int
		for i, v := range vals {
			if v == triTrue {
				want = append(want, i)
			}
		}
		got := bm.AppendTrue(nil)
		if len(got) != len(want) {
			t.Fatalf("n=%d AppendTrue len %d want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d AppendTrue[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
		// Appending onto a non-empty slice preserves the prefix.
		pre := []int{-1}
		got2 := bm.AppendTrue(pre)
		if got2[0] != -1 || len(got2) != 1+len(want) {
			t.Fatalf("n=%d AppendTrue with prefix broken", n)
		}
	}
}
