package vec

import "math/bits"

// Bitmap is a three-valued boolean vector over the active rows of a batch,
// packed 64 rows per word. Bit i of words is set when row i is TRUE; bit i
// of nullWords is set when row i is NULL; both clear means FALSE. The two
// planes are disjoint by construction (a row is never TRUE and NULL), which
// is what lets mask consumers — aggregation FILTER masks, filter selection
// building — read SQL truth (`IsTrue`) straight off the words plane with no
// per-row null test.
//
// Predicate kernels write Bitmaps instead of materializing one types.Value
// per row, so a conjunct's cost is one comparison and one bit write per
// row, and combining sibling masks is a handful of word operations per 64
// rows.
type Bitmap struct {
	n         int
	words     []uint64
	nullWords []uint64
}

// wordsFor returns the number of 64-bit words covering n rows.
func wordsFor(n int) int { return (n + 63) >> 6 }

// Reset resizes the bitmap to n rows with every row FALSE.
func (bm *Bitmap) Reset(n int) {
	w := wordsFor(n)
	if cap(bm.words) < w {
		bm.words = make([]uint64, w)
		bm.nullWords = make([]uint64, w)
	}
	bm.words = bm.words[:w]
	bm.nullWords = bm.nullWords[:w]
	for i := range bm.words {
		bm.words[i] = 0
		bm.nullWords[i] = 0
	}
	bm.n = n
}

// Len returns the row count.
func (bm *Bitmap) Len() int { return bm.n }

// SetTrue marks row i TRUE. The row must not already be NULL.
func (bm *Bitmap) SetTrue(i int) { bm.words[i>>6] |= 1 << (uint(i) & 63) }

// SetNull marks row i NULL. The row must not already be TRUE.
func (bm *Bitmap) SetNull(i int) { bm.nullWords[i>>6] |= 1 << (uint(i) & 63) }

// True reports whether row i is TRUE (not FALSE, not NULL).
func (bm *Bitmap) True(i int) bool { return bm.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Null reports whether row i is NULL.
func (bm *Bitmap) Null(i int) bool { return bm.nullWords[i>>6]&(1<<(uint(i)&63)) != 0 }

// tailMask keeps bits past row n-1 zero so Count and word scans stay exact.
func (bm *Bitmap) tailMask() uint64 {
	if r := uint(bm.n) & 63; r != 0 {
		return (1 << r) - 1
	}
	return ^uint64(0)
}

// clampTail zeroes any bits set past the last row.
func (bm *Bitmap) clampTail() {
	if len(bm.words) == 0 {
		return
	}
	m := bm.tailMask()
	bm.words[len(bm.words)-1] &= m
	bm.nullWords[len(bm.nullWords)-1] &= m
}

// FillTrue sets every row TRUE.
func (bm *Bitmap) FillTrue() {
	for i := range bm.words {
		bm.words[i] = ^uint64(0)
		bm.nullWords[i] = 0
	}
	bm.clampTail()
}

// FillNull sets every row NULL.
func (bm *Bitmap) FillNull() {
	for i := range bm.words {
		bm.words[i] = 0
		bm.nullWords[i] = ^uint64(0)
	}
	bm.clampTail()
}

// CopyFrom makes bm an exact copy of o.
func (bm *Bitmap) CopyFrom(o *Bitmap) {
	bm.Reset(o.n)
	copy(bm.words, o.words)
	copy(bm.nullWords, o.nullWords)
}

// AndWith folds o into bm under Kleene AND: TRUE iff both TRUE, FALSE iff
// either FALSE, NULL otherwise. Lengths must match.
func (bm *Bitmap) AndWith(o *Bitmap) {
	for i := range bm.words {
		t1, u1 := bm.words[i], bm.nullWords[i]
		t2, u2 := o.words[i], o.nullWords[i]
		// NULL iff at least one side is NULL and neither side is FALSE
		// (FALSE = neither TRUE nor NULL).
		bm.words[i] = t1 & t2
		bm.nullWords[i] = (u1 | u2) & (t1 | u1) & (t2 | u2)
	}
}

// OrWith folds o into bm under Kleene OR: TRUE iff either TRUE, FALSE iff
// both FALSE, NULL otherwise. Lengths must match.
func (bm *Bitmap) OrWith(o *Bitmap) {
	for i := range bm.words {
		t := bm.words[i] | o.words[i]
		bm.words[i] = t
		bm.nullWords[i] = (bm.nullWords[i] | o.nullWords[i]) &^ t
	}
}

// Not replaces bm with its Kleene negation in place: TRUE↔FALSE, NULL
// stays NULL.
func (bm *Bitmap) Not() {
	for i := range bm.words {
		bm.words[i] = ^(bm.words[i] | bm.nullWords[i])
	}
	bm.clampTail()
}

// AndTruthWith intersects only the TRUE planes: bm row stays TRUE iff both
// are TRUE. Null bits of bm are cleared — the result is two-valued SQL
// truth, exactly what mask and filter consumers read. This is the kernel
// that combines a mask's conjunct bitmaps.
func (bm *Bitmap) AndTruthWith(o *Bitmap) {
	for i := range bm.words {
		bm.words[i] &= o.words[i]
		bm.nullWords[i] = 0
	}
}

// Count returns the number of TRUE rows.
func (bm *Bitmap) Count() int {
	c := 0
	for _, w := range bm.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AppendTrue appends the indices of TRUE rows to dst in ascending order.
func (bm *Bitmap) AppendTrue(dst []int) []int {
	for wi, w := range bm.words {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}
