package vec

import (
	"math"

	"repro/internal/types"
)

// FNV-1a parameters; the executor's partition-wise parallel operators use
// these hashes to route rows to hash-table shards, so the only requirement
// is determinism plus consistency with key equality (below) — not
// cryptographic strength.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime64 }

func hashUint64(h uint64, x uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(x))
		x >>= 8
	}
	return h
}

// HashValue folds one value into h. The discrimination mirrors the
// executor's encoded group/join keys exactly: NULL hashes as its own tag,
// strings by length-prefixed bytes, doubles by their bit pattern (NaN
// payloads collapse to one canonical NaN, because the key encoding renders
// every NaN identically), and every integer-payload kind (BIGINT, BOOLEAN,
// DATE) under one shared tag. Two tuples with equal encoded keys therefore
// always land in the same hash partition.
func HashValue(h uint64, v types.Value) uint64 {
	switch {
	case v.Null:
		return hashByte(h, 'n')
	case v.Kind == types.KindString:
		h = hashByte(h, 's')
		h = hashUint64(h, uint64(len(v.S)))
		for i := 0; i < len(v.S); i++ {
			h = hashByte(h, v.S[i])
		}
		return h
	case v.Kind == types.KindFloat64:
		f := v.F
		if f != f {
			f = math.NaN()
		}
		return hashUint64(hashByte(h, 'f'), math.Float64bits(f))
	default:
		return hashUint64(hashByte(h, 'i'), uint64(v.I))
	}
}

// HashKey hashes one tuple of key values.
func HashKey(vals []types.Value) uint64 {
	h := fnvOffset64
	for _, v := range vals {
		h = HashValue(h, v)
	}
	return h
}

// HashColumns writes one hash per active row of b, combining the columns at
// the given indexes; out must hold b.Len() values. This is the batch kernel
// behind partition-wise aggregation: one pass per key column, no per-row
// key materialization.
func (b *Batch) HashColumns(cols []int, out []uint64) {
	n := b.Len()
	for i := 0; i < n; i++ {
		out[i] = fnvOffset64
	}
	for _, c := range cols {
		col := b.Cols[c]
		if b.Sel == nil {
			for i := 0; i < n; i++ {
				out[i] = HashValue(out[i], col[i])
			}
			continue
		}
		for i, r := range b.Sel {
			out[i] = HashValue(out[i], col[r])
		}
	}
}

// HashRows writes one hash per row across logical column vectors (selection
// already applied, as produced by batch evaluators); every vector must hold
// len(out) values. The join build uses it to partition rows by evaluated
// key expressions.
func HashRows(cols [][]types.Value, out []uint64) {
	for i := range out {
		out[i] = fnvOffset64
	}
	for _, col := range cols {
		for i := range out {
			out[i] = HashValue(out[i], col[i])
		}
	}
}
