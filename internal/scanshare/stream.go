package scanshare

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/types"
)

const (
	// subQueueCap bounds each subscriber's queue in partitions: a publisher
	// racing far ahead of a slow subscriber drops chunks instead of
	// buffering the table or stalling. Dropped chunks are re-obtained from
	// the cache or decoded by the subscriber itself.
	subQueueCap = 8
	// subStashCap bounds the chunks a subscriber parks between receiving
	// them and reaching their partition in its own scan order.
	subStashCap = 64
)

// streamKeyFor identifies a scan's partition set. Partition pointers are
// load-unique, so two scans share a key exactly when pruning left them the
// same partitions of the same table.
func streamKeyFor(table string, parts []*storage.Partition) string {
	h := fnv.New64a()
	for _, p := range parts {
		fmt.Fprintf(h, "%p,", p)
	}
	return fmt.Sprintf("%s/%d/%x", table, len(parts), h.Sum64())
}

// partChunk is one published unit: the decoded vectors of one partition's
// columns.
type partChunk struct {
	part *storage.Partition
	cols map[string][]types.Value
}

// stream is an in-flight scan's broadcast channel to late-arriving
// compatible scans. Publishing never blocks; subscribers that cannot keep
// up miss chunks rather than slowing the publisher down (fairness: a shared
// scan can make a late query faster, never the publishing query slower).
type stream struct {
	key  string
	cols map[string]bool

	mu   sync.Mutex
	subs []*subscription
	done bool
}

func newStream(key string, cols []string) *stream {
	set := make(map[string]bool, len(cols))
	for _, c := range cols {
		set[c] = true
	}
	return &stream{key: key, cols: set}
}

// covers reports whether the stream publishes every column in cols (a scan
// may attach to a stream decoding a superset of its columns).
func (st *stream) covers(cols []string) bool {
	for _, c := range cols {
		if !st.cols[c] {
			return false
		}
	}
	return true
}

func (st *stream) attach(sub *subscription) {
	st.mu.Lock()
	if !st.done {
		st.subs = append(st.subs, sub)
	}
	st.mu.Unlock()
}

func (st *stream) detach(sub *subscription) {
	st.mu.Lock()
	live := st.subs[:0]
	for _, s := range st.subs {
		if s != sub {
			live = append(live, s)
		}
	}
	st.subs = live
	st.mu.Unlock()
}

func (st *stream) publish(pc partChunk) {
	st.mu.Lock()
	if st.done || len(st.subs) == 0 {
		st.mu.Unlock()
		return
	}
	subs := append([]*subscription(nil), st.subs...)
	st.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- pc:
		default:
			atomic.AddInt64(&sub.dropped, 1)
		}
	}
}

// finish marks the stream done and releases its subscribers; residual
// queued chunks remain consumable. Called under the manager's mutex.
func (st *stream) finish() {
	st.mu.Lock()
	st.done = true
	st.subs = nil
	st.mu.Unlock()
}

// subscription is one attached scan's bounded receive side.
type subscription struct {
	ch      chan partChunk
	dropped int64

	mu    sync.Mutex
	stash map[chunkKey][]types.Value
}

func newSubscription() *subscription {
	return &subscription{
		ch:    make(chan partChunk, subQueueCap),
		stash: make(map[chunkKey][]types.Value),
	}
}

// take drains the queue into the stash and returns the chunk for key if the
// stream delivered it. Consumed entries are removed (each chunk is read
// once per scan).
func (sub *subscription) take(key chunkKey) ([]types.Value, bool) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
drain:
	for {
		select {
		case pc := <-sub.ch:
			for col, vals := range pc.cols {
				if len(sub.stash) >= subStashCap {
					atomic.AddInt64(&sub.dropped, 1)
					break drain
				}
				sub.stash[chunkKey{part: pc.part, col: col}] = vals
			}
		default:
			break drain
		}
	}
	vals, ok := sub.stash[key]
	if ok {
		delete(sub.stash, key)
	}
	return vals, ok
}
