package scanshare

import (
	"container/list"

	"repro/internal/types"
)

// valueOverhead approximates the in-memory footprint of one types.Value
// (struct fields plus slice bookkeeping); string payloads are added on top.
const valueOverhead = 48

// decodedSize estimates the resident size of a decoded chunk, which is what
// the cache bound accounts — decoded vectors are several times larger than
// their encoded form, and the bound must track what is actually held.
func decodedSize(vals []types.Value, kind types.Kind) int64 {
	size := int64(len(vals)) * valueOverhead
	if kind == types.KindString {
		for i := range vals {
			size += int64(len(vals[i].S))
		}
	}
	return size
}

// chunkCache is a size-accounted LRU over decoded column chunks. It is not
// internally locked; the Manager's mutex guards it.
type chunkCache struct {
	capacity int64
	used     int64
	entries  map[chunkKey]*list.Element
	order    *list.List // front = most recently used
}

type cacheEntry struct {
	key  chunkKey
	vals []types.Value
	size int64
}

func newChunkCache(capacity int64) *chunkCache {
	return &chunkCache{
		capacity: capacity,
		entries:  make(map[chunkKey]*list.Element),
		order:    list.New(),
	}
}

func (c *chunkCache) get(key chunkKey) ([]types.Value, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).vals, true
}

// put inserts a decoded chunk, evicting least-recently-used entries until
// the bound holds. Chunks larger than the whole cache are not admitted.
// Eviction only drops the cache's reference: queries already holding the
// vector keep it alive, so eviction is always safe mid-use.
func (c *chunkCache) put(key chunkKey, vals []types.Value, kind types.Kind) {
	if _, ok := c.entries[key]; ok {
		return // another leader raced us in; keep the resident entry
	}
	size := decodedSize(vals, kind)
	if size > c.capacity {
		return
	}
	for c.used+size > c.capacity {
		back := c.order.Back()
		if back == nil {
			break
		}
		e := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.used -= e.size
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, vals: vals, size: size})
	c.used += size
}
