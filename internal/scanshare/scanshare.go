// Package scanshare implements cross-query scan sharing: concurrent queries
// over the same store partitions share the physical work of decoding column
// chunks instead of each paying it independently (the multi-query reuse
// direction the fusion paper names in §I).
//
// Three mechanisms compose, cheapest first:
//
//  1. A bounded, size-accounted LRU cache of decoded column chunks, keyed by
//     (partition, column). Partitions are immutable after Load — reloading a
//     table allocates fresh Partition values — so cache entries can never go
//     stale; they simply stop being referenced and age out.
//  2. In-flight decode attach: when one query is currently decoding a chunk,
//     a late-arriving query attaches to that flight and waits for the
//     decoded vector instead of re-decoding. Flights exist only while a
//     leader is actively decoding, so every wait is bounded by one chunk
//     decode; a waiter whose own query is abandoned (LIMIT, error) detaches
//     via its stop channel.
//  3. Morsel-stream attach: each scan registers its (table, partition-set,
//     column-set) stream; a compatible late arrival subscribes and receives
//     decoded partition chunks through a bounded per-subscriber queue as the
//     publisher produces them, pinning them for that subscriber even when
//     the global cache is too small to retain them. Queues never block the
//     publisher — a full queue drops the chunk and the subscriber falls back
//     to the cache, a flight, or its own decode.
//
// Because subscribers receive the same immutable decoded vectors the
// publisher produced (never partially decoded state), a shared scan is
// value-identical to an unshared one; each query still windows the vectors
// into its own batches in its own partition order, so ordered delivery and
// LIMIT early-exit semantics are untouched.
package scanshare

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/storage"
	"repro/internal/types"
)

// DefaultCacheBytes is the decoded-chunk cache bound when the caller does
// not set one (estimated in-memory bytes, not encoded bytes).
const DefaultCacheBytes = 64 << 20

// ErrStopped is returned by Decode when the scan's stop channel fires while
// waiting on another query's in-flight decode; the caller is being abandoned
// and its result will be discarded.
var ErrStopped = errors.New("scanshare: scan stopped while waiting for shared decode")

// Counters accumulates one query's scan-share activity. Fields are updated
// atomically; read them only after the query's workers have drained.
type Counters struct {
	// BytesDecoded is the encoded size of the chunks this query physically
	// decoded itself — the real CPU work, as opposed to the logical
	// BytesScanned the query is billed for.
	BytesDecoded int64
	// ChunksDecoded counts those chunks.
	ChunksDecoded int64
	// SharedHits counts chunks obtained by attaching to another query's
	// in-flight decode.
	SharedHits int64
	// CacheHits counts chunks served from the decoded-chunk cache.
	CacheHits int64
	// StreamHits counts chunks received from a subscribed morsel stream's
	// queue.
	StreamHits int64
}

// AddDecoded charges one physically decoded chunk of the given encoded size.
func (c *Counters) AddDecoded(bytes int64) {
	atomic.AddInt64(&c.BytesDecoded, bytes)
	atomic.AddInt64(&c.ChunksDecoded, 1)
}

func (c *Counters) addShared() { atomic.AddInt64(&c.SharedHits, 1) }
func (c *Counters) addCache()  { atomic.AddInt64(&c.CacheHits, 1) }
func (c *Counters) addStream() { atomic.AddInt64(&c.StreamHits, 1) }

// chunkKey identifies one decoded column chunk. Partition pointers are
// unique per Load and per Append (the store only ever creates fresh
// Partition values and never mutates published ones), which is what makes
// the key invalidation-safe under runtime mutation: a replaced table's old
// chunks can never be returned for its new partitions, they just age out
// of the LRU.
type chunkKey struct {
	part *storage.Partition
	col  string
}

// flight is one in-progress chunk decode. The leader fills vals/err and
// closes done; attached waiters block on done (or their stop channel).
type flight struct {
	done chan struct{}
	vals []types.Value
	err  error
}

// Manager is the process-wide (per store) scan-share state: the decoded
// chunk cache, the in-flight decode table and the stream registry. All
// methods are safe for concurrent use by many queries.
type Manager struct {
	mu      sync.Mutex
	cache   *chunkCache
	flights map[chunkKey]*flight
	streams map[string][]*stream
	// flightsDone is broadcast whenever an in-flight decode resolves;
	// Quiesce waits on it.
	flightsDone sync.Cond
}

// NewManager creates a manager whose decoded-chunk cache is bounded at
// cacheBytes estimated in-memory bytes (<= 0 means DefaultCacheBytes).
func NewManager(cacheBytes int64) *Manager {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	m := &Manager{
		cache:   newChunkCache(cacheBytes),
		flights: make(map[chunkKey]*flight),
		streams: make(map[string][]*stream),
	}
	m.flightsDone.L = &m.mu
	return m
}

// Quiesce blocks until no chunk decode is in flight. Leaders resolve
// flights with pure CPU work, so the wait is bounded by the slowest
// in-progress decode — an engine shutting down calls it after draining its
// own queries to guarantee no decode it led is still publishing. It does
// NOT wait for other engines' open scans (streams), which can outlive this
// engine legitimately when several engines share one store.
func (m *Manager) Quiesce() {
	m.mu.Lock()
	for len(m.flights) > 0 {
		m.flightsDone.Wait()
	}
	m.mu.Unlock()
}

// For resolves the store's shared manager, creating it with cacheBytes on
// first use (later callers share the first caller's cache bound).
func For(st *storage.Store, cacheBytes int64) *Manager {
	return st.SharedScanState(func() any { return NewManager(cacheBytes) }).(*Manager)
}

// CacheBytes reports the estimated bytes currently held by the chunk cache.
func (m *Manager) CacheBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.used
}

// CacheChunks reports the number of chunks currently cached.
func (m *Manager) CacheChunks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cache.order.Len()
}

// Open registers a scan of the given partitions and columns. If a
// compatible stream is already in flight — same table and partition set,
// column set covering cols — the scan additionally attaches to it as a
// subscriber. The returned Scan is used by exactly one query run (its
// Decode may be called from that run's workers concurrently) and must be
// Closed after those workers have drained.
func (m *Manager) Open(table string, parts []*storage.Partition, cols []string, ctr *Counters) *Scan {
	s := &Scan{mgr: m, cols: append([]string(nil), cols...), ctr: ctr}
	if len(parts) == 0 {
		// Zero-partition scans have nothing to publish or receive.
		return s
	}
	key := streamKeyFor(table, parts)
	m.mu.Lock()
	for _, st := range m.streams[key] {
		if st.covers(cols) {
			s.sub = newSubscription()
			s.subStream = st
			st.attach(s.sub)
			break
		}
	}
	s.pub = newStream(key, cols)
	m.streams[key] = append(m.streams[key], s.pub)
	m.mu.Unlock()
	return s
}

// getChunk returns the decoded vector for one chunk: cache hit, in-flight
// attach, or leader decode (which publishes to the cache). stop may be nil.
func (m *Manager) getChunk(key chunkKey, chunk *storage.ColumnChunk, stop <-chan struct{}, ctr *Counters) ([]types.Value, error) {
	m.mu.Lock()
	if vals, ok := m.cache.get(key); ok {
		m.mu.Unlock()
		ctr.addCache()
		return vals, nil
	}
	if f, ok := m.flights[key]; ok {
		m.mu.Unlock()
		select {
		case <-f.done:
			if f.err != nil {
				return nil, f.err
			}
			ctr.addShared()
			return f.vals, nil
		case <-stop: // nil stop never fires; the wait is then bounded by the leader's decode
			return nil, ErrStopped
		}
	}
	f := &flight{done: make(chan struct{})}
	m.flights[key] = f
	m.mu.Unlock()

	// Leader path: pure CPU, never blocks, so the flight always resolves.
	f.vals = chunk.DecodeAll(make([]types.Value, 0, chunk.Count))
	m.mu.Lock()
	delete(m.flights, key)
	m.cache.put(key, f.vals, chunk.Kind)
	m.flightsDone.Broadcast()
	m.mu.Unlock()
	close(f.done)
	ctr.AddDecoded(chunk.Bytes)
	return f.vals, nil
}

// Scan is one query run's handle on the share manager: a publisher of its
// own morsel stream and, when it arrived while a compatible scan was in
// flight, a subscriber of that scan's stream.
type Scan struct {
	mgr       *Manager
	cols      []string
	ctr       *Counters
	pub       *stream
	sub       *subscription
	subStream *stream
	closed    bool
}

// Decode returns the decoded column vectors for p in the scan's column
// order, sharing work with concurrent queries wherever possible. stop, when
// non-nil, abandons waits on other queries' in-flight decodes (returning
// ErrStopped) once the caller's query has gone away. Safe for concurrent use
// by one query's scan workers.
func (s *Scan) Decode(p *storage.Partition, stop <-chan struct{}) ([][]types.Value, error) {
	out := make([][]types.Value, len(s.cols))
	var pubCols map[string][]types.Value
	if s.pub != nil {
		pubCols = make(map[string][]types.Value, len(s.cols))
	}
	for i, col := range s.cols {
		key := chunkKey{part: p, col: col}
		if s.sub != nil {
			if vals, ok := s.sub.take(key); ok {
				s.ctr.addStream()
				out[i] = vals
				if pubCols != nil {
					pubCols[col] = vals
				}
				continue
			}
		}
		chunk := p.Chunk(col)
		if chunk == nil {
			return nil, fmt.Errorf("scanshare: partition has no column %q", col)
		}
		vals, err := s.mgr.getChunk(key, chunk, stop, s.ctr)
		if err != nil {
			return nil, err
		}
		out[i] = vals
		if pubCols != nil {
			pubCols[col] = vals
		}
	}
	if s.pub != nil {
		// Publish everything this scan obtained (decoded or not): late
		// subscribers may have missed the original publication, and the
		// cache may already have evicted it.
		s.pub.publish(partChunk{part: p, cols: pubCols})
	}
	return out, nil
}

// Close detaches the scan: its stream stops accepting subscribers and is
// removed from the registry, and its own subscription (if any) is dropped.
// Call after the query's scan workers have drained; an abandoned scan
// (LIMIT early exit) closes the stream with partitions unpublished, and
// subscribers simply fall back to the cache or their own decodes.
func (s *Scan) Close() {
	if s.closed {
		return
	}
	s.closed = true
	if s.pub != nil {
		m := s.mgr
		m.mu.Lock()
		s.pub.finish()
		live := m.streams[s.pub.key][:0]
		for _, st := range m.streams[s.pub.key] {
			if st != s.pub {
				live = append(live, st)
			}
		}
		if len(live) == 0 {
			delete(m.streams, s.pub.key)
		} else {
			m.streams[s.pub.key] = live
		}
		m.mu.Unlock()
	}
	if s.sub != nil {
		s.subStream.detach(s.sub)
	}
}
