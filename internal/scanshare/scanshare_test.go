package scanshare

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/types"
)

// newTestParts loads a partitioned three-column table and returns its
// partitions. Each partition gets rowsPerPart rows.
func newTestParts(t testing.TB, parts, rowsPerPart int) []*storage.Partition {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "t",
		Columns: []catalog.Column{
			{Name: "a", Type: types.KindInt64},
			{Name: "b", Type: types.KindString},
			{Name: "p", Type: types.KindInt64},
		},
		PartitionColumn: "p",
	})
	st := storage.NewStore(cat)
	var rows [][]types.Value
	for p := 0; p < parts; p++ {
		for r := 0; r < rowsPerPart; r++ {
			rows = append(rows, []types.Value{
				types.Int(int64(p*1000 + r)),
				types.String(fmt.Sprintf("row-%d-%d", p, r)),
				types.Int(int64(p)),
			})
		}
	}
	if err := st.Load("t", rows); err != nil {
		t.Fatal(err)
	}
	return st.Data("t").Partitions
}

var testCols = []string{"a", "b"}

// wantDecoded is the reference decode, bypassing the share manager.
func wantDecoded(t *testing.T, p *storage.Partition, cols []string) [][]types.Value {
	t.Helper()
	d, err := p.DecodeColumns(cols)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func decodeAll(t *testing.T, s *Scan, parts []*storage.Partition, cols []string) {
	t.Helper()
	for _, p := range parts {
		got, err := s.Decode(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := wantDecoded(t, p, cols); !reflect.DeepEqual(got, want) {
			t.Fatalf("shared decode differs from direct decode for partition %v", p.Key)
		}
	}
}

func chunkBytes(parts []*storage.Partition, cols []string) int64 {
	var total int64
	for _, p := range parts {
		for _, c := range cols {
			total += p.Chunk(c).Bytes
		}
	}
	return total
}

// TestAttachMidFlight: a scan that opens while another is mid-stream gets
// already-published partitions from the cache and subsequent ones from the
// stream queue, decoding nothing itself.
func TestAttachMidFlight(t *testing.T) {
	parts := newTestParts(t, 4, 20)
	mgr := NewManager(0)
	var ca, cb Counters

	a := mgr.Open("t", parts, testCols, &ca)
	decodeAll(t, a, parts[:2], testCols) // A is mid-flight: 2 of 4 partitions done

	b := mgr.Open("t", parts, testCols, &cb)
	if b.sub == nil {
		t.Fatal("B did not attach to A's in-flight stream")
	}
	// B replays partitions already published by A: cache hits.
	decodeAll(t, b, parts[:2], testCols)
	if cb.CacheHits != 4 {
		t.Fatalf("CacheHits = %d, want 4 (2 partitions x 2 columns)", cb.CacheHits)
	}
	// A decodes the rest, publishing to B's queue; B consumes via the stream.
	decodeAll(t, a, parts[2:], testCols)
	decodeAll(t, b, parts[2:], testCols)
	if cb.StreamHits != 4 {
		t.Fatalf("StreamHits = %d, want 4 (2 partitions x 2 columns)", cb.StreamHits)
	}
	if cb.BytesDecoded != 0 || cb.ChunksDecoded != 0 {
		t.Fatalf("attached scan decoded %d chunks (%d bytes) itself, want 0", cb.ChunksDecoded, cb.BytesDecoded)
	}
	if want := chunkBytes(parts, testCols); ca.BytesDecoded != want {
		t.Fatalf("publisher BytesDecoded = %d, want %d", ca.BytesDecoded, want)
	}
	a.Close()
	b.Close()
}

// TestAttachAfterCompleted: a scan arriving after the stream finished finds
// no stream to attach to but is served entirely from the chunk cache.
func TestAttachAfterCompleted(t *testing.T) {
	parts := newTestParts(t, 3, 15)
	mgr := NewManager(0)
	var ca, cb Counters

	a := mgr.Open("t", parts, testCols, &ca)
	decodeAll(t, a, parts, testCols)
	a.Close()

	b := mgr.Open("t", parts, testCols, &cb)
	if b.sub != nil {
		t.Fatal("B attached to a finished stream")
	}
	decodeAll(t, b, parts, testCols)
	b.Close()
	if cb.BytesDecoded != 0 {
		t.Fatalf("late scan decoded %d bytes, want 0 (cache path)", cb.BytesDecoded)
	}
	if want := int64(len(parts) * len(testCols)); cb.CacheHits != want {
		t.Fatalf("CacheHits = %d, want %d", cb.CacheHits, want)
	}
}

// TestSubscriberAbandonment: a subscriber that goes away early (LIMIT) must
// not stall the publisher, and later scans still share normally.
func TestSubscriberAbandonment(t *testing.T) {
	parts := newTestParts(t, 5, 10)
	mgr := NewManager(0)
	var ca, cb, cc Counters

	a := mgr.Open("t", parts, testCols, &ca)
	decodeAll(t, a, parts[:1], testCols)
	b := mgr.Open("t", parts, testCols, &cb)
	decodeAll(t, b, parts[:1], testCols)
	b.Close() // B hit its LIMIT and detached mid-stream

	// A keeps going: publishing to zero subscribers must be a no-op, and
	// well past B's queue bound.
	decodeAll(t, a, parts[1:], testCols)
	a.Close()

	c := mgr.Open("t", parts, testCols, &cc)
	decodeAll(t, c, parts, testCols)
	c.Close()
	if cc.BytesDecoded != 0 {
		t.Fatalf("post-abandonment scan decoded %d bytes, want 0", cc.BytesDecoded)
	}
}

// TestCacheEviction: under a tiny ScanCacheBytes bound the LRU must stay
// within budget, and evicted chunks are decoded again on the next request.
func TestCacheEviction(t *testing.T) {
	parts := newTestParts(t, 6, 10)
	intCols := []string{"a"}
	// Room for roughly two decoded 10-row int chunks (10*48=480 each).
	const capacity = 1000
	mgr := NewManager(capacity)
	var c Counters

	s := mgr.Open("t", parts, intCols, &c)
	decodeAll(t, s, parts, intCols)
	if mgr.CacheBytes() > capacity {
		t.Fatalf("cache holds %d bytes, bound is %d", mgr.CacheBytes(), capacity)
	}
	if got := mgr.CacheChunks(); got != 2 {
		t.Fatalf("cache holds %d chunks, want 2 under bound %d", got, capacity)
	}
	// parts[0] was evicted long ago: decoding it again is physical work.
	before := c.ChunksDecoded
	decodeAll(t, s, parts[:1], intCols)
	if c.ChunksDecoded != before+1 {
		t.Fatalf("evicted chunk not re-decoded: ChunksDecoded %d -> %d", before, c.ChunksDecoded)
	}
	s.Close()

	// A chunk larger than the whole cache is never admitted.
	tiny := NewManager(1)
	var ct Counters
	st := tiny.Open("t", parts, intCols, &ct)
	decodeAll(t, st, parts[:1], intCols)
	st.Close()
	if tiny.CacheChunks() != 0 || tiny.CacheBytes() != 0 {
		t.Fatalf("oversized chunk admitted: %d chunks, %d bytes", tiny.CacheChunks(), tiny.CacheBytes())
	}
}

// TestZeroPartitions: empty scans register nothing and close cleanly.
func TestZeroPartitions(t *testing.T) {
	mgr := NewManager(0)
	var c1, c2 Counters
	a := mgr.Open("empty", nil, testCols, &c1)
	if a.pub != nil || a.sub != nil {
		t.Fatal("zero-partition scan registered a stream")
	}
	b := mgr.Open("empty", nil, testCols, &c2)
	a.Close()
	a.Close() // double close is a no-op
	b.Close()
	if len(mgr.streams) != 0 {
		t.Fatalf("stream registry not empty: %d entries", len(mgr.streams))
	}
}

// TestColumnSubsetAttach: a scan needing a subset of an in-flight stream's
// columns attaches; one needing more does not (but still shares chunks).
func TestColumnSubsetAttach(t *testing.T) {
	parts := newTestParts(t, 3, 10)
	mgr := NewManager(0)
	var ca, cb, cc Counters

	a := mgr.Open("t", parts, []string{"a", "b"}, &ca)
	sub := mgr.Open("t", parts, []string{"b"}, &cb)
	if sub.sub == nil {
		t.Fatal("column-subset scan did not attach")
	}
	wide := mgr.Open("t", parts, []string{"a", "b", "p"}, &cc)
	if wide.sub != nil {
		t.Fatal("superset scan attached to a narrower stream")
	}
	// The wide scan still shares the overlapping chunks once A decoded them.
	decodeAll(t, a, parts, []string{"a", "b"})
	decodeAll(t, wide, parts, []string{"a", "b", "p"})
	if cc.CacheHits != int64(len(parts)*2) {
		t.Fatalf("wide scan CacheHits = %d, want %d", cc.CacheHits, len(parts)*2)
	}
	if want := chunkBytes(parts, []string{"p"}); cc.BytesDecoded != want {
		t.Fatalf("wide scan BytesDecoded = %d, want %d (only the extra column)", cc.BytesDecoded, want)
	}
	a.Close()
	sub.Close()
	wide.Close()
}

// TestMissingColumn: the error path mirrors storage.DecodeColumns.
func TestMissingColumn(t *testing.T) {
	parts := newTestParts(t, 1, 5)
	mgr := NewManager(0)
	var c Counters
	s := mgr.Open("t", parts, []string{"nope"}, &c)
	if _, err := s.Decode(parts[0], nil); err == nil {
		t.Fatal("expected error for unknown column")
	}
	s.Close()
}

// TestStopBeforeFlightWait: a pre-closed stop channel only matters while
// waiting on someone else's flight; a plain decode still succeeds.
func TestStopBeforeFlightWait(t *testing.T) {
	parts := newTestParts(t, 1, 5)
	mgr := NewManager(0)
	var c Counters
	s := mgr.Open("t", parts, testCols, &c)
	stop := make(chan struct{})
	close(stop)
	if _, err := s.Decode(parts[0], stop); err != nil {
		t.Fatalf("decode with closed stop failed: %v", err)
	}
	s.Close()
}

// TestConcurrentIdenticalScans: N concurrent sessions over the same
// partitions decode each chunk exactly once between them (run under -race).
func TestConcurrentIdenticalScans(t *testing.T) {
	parts := newTestParts(t, 8, 50)
	mgr := NewManager(0)
	const n = 8
	ctrs := make([]Counters, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := mgr.Open("t", parts, testCols, &ctrs[i])
			for _, p := range parts {
				if _, err := s.Decode(p, nil); err != nil {
					t.Error(err)
					return
				}
			}
			s.Close()
		}()
	}
	wg.Wait()
	chunks := int64(len(parts) * len(testCols))
	var decoded, served int64
	for i := range ctrs {
		decoded += ctrs[i].ChunksDecoded
		served += ctrs[i].ChunksDecoded + ctrs[i].SharedHits + ctrs[i].CacheHits + ctrs[i].StreamHits
	}
	if decoded != chunks {
		t.Fatalf("chunks decoded across sessions = %d, want exactly %d", decoded, chunks)
	}
	if served != n*chunks {
		t.Fatalf("chunks served = %d, want %d", served, n*chunks)
	}
}
