package logical

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/types"
)

func statTable(rows int64) *catalog.Table {
	t := itemTable()
	t.Stats.RowCount.Store(rows)
	return t
}

func TestEstimateScanAndFilter(t *testing.T) {
	s := NewScan(statTable(10000))
	if got := EstimateRows(s); got != 10000 {
		t.Errorf("scan estimate = %v", got)
	}
	eq := NewFilter(s, expr.Eq(expr.Ref(s.Cols[1]), expr.Lit(types.String("b"))))
	if got := EstimateRows(eq); got != 1000 {
		t.Errorf("equality filter estimate = %v, want 1000", got)
	}
	rng := NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[0]), expr.Lit(types.Int(5))))
	if got := EstimateRows(rng); got != 3000 {
		t.Errorf("range filter estimate = %v, want 3000", got)
	}
	// Unknown table defaults.
	unknown := NewScan(itemTable())
	if got := EstimateRows(unknown); got != 1000 {
		t.Errorf("unknown table estimate = %v", got)
	}
}

func TestEstimateJoins(t *testing.T) {
	l := NewScan(statTable(10000))
	r := NewScan(statTable(100))
	equi := &Join{Kind: InnerJoin, Left: l, Right: r,
		Cond: expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0]))}
	if got := EstimateRows(equi); got != 10000 {
		t.Errorf("equi join estimate = %v, want 10000", got)
	}
	cross := &Join{Kind: CrossJoin, Left: l, Right: r}
	if got := EstimateRows(cross); got != 1e6 {
		t.Errorf("cross join estimate = %v, want 1e6", got)
	}
	semi := &Join{Kind: SemiJoin, Left: l, Right: r,
		Cond: expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0]))}
	if got := EstimateRows(semi); got != 5000 {
		t.Errorf("semi join estimate = %v, want 5000", got)
	}
	left := &Join{Kind: LeftJoin, Left: l, Right: r,
		Cond: expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0]))}
	if got := EstimateRows(left); got < 10000 {
		t.Errorf("left join estimate = %v, want >= left side", got)
	}
}

func TestEstimateAggregatesAndMisc(t *testing.T) {
	s := NewScan(statTable(10000))
	scalar := &GroupBy{Input: s}
	if got := EstimateRows(scalar); got != 1 {
		t.Errorf("scalar agg estimate = %v", got)
	}
	keyed := &GroupBy{Input: s, Keys: []*expr.Column{s.Cols[0]}}
	got := EstimateRows(keyed)
	if got <= 1 || got > 10000 {
		t.Errorf("keyed agg estimate = %v, want in (1, input]", got)
	}
	lim := &Limit{Input: s, N: 7}
	if got := EstimateRows(lim); got != 7 {
		t.Errorf("limit estimate = %v", got)
	}
	esr := &EnforceSingleRow{Input: s}
	if EstimateRows(esr) != 1 {
		t.Error("ESR estimate must be 1")
	}
	v := NewValuesInt("t", 1, 2, 3)
	if EstimateRows(v) != 3 {
		t.Error("values estimate wrong")
	}
	u := NewUnionAll([]Operator{s, NewScan(statTable(500))},
		[][]*expr.Column{{s.Cols[0]}, {NewScan(statTable(500)).Cols[0]}})
	_ = u // arity mismatch on purpose avoided below
}

func TestEstimateUnionAndSpool(t *testing.T) {
	a := NewScan(statTable(100))
	b := NewScan(statTable(200))
	u := NewUnionAll([]Operator{a, b}, [][]*expr.Column{{a.Cols[0]}, {b.Cols[0]}})
	if got := EstimateRows(u); got != 300 {
		t.Errorf("union estimate = %v, want 300", got)
	}
	sp := &Spool{ID: 1, Producer: a, Cols: a.Cols}
	if got := EstimateRows(sp); got != 100 {
		t.Errorf("spool estimate = %v", got)
	}
}

func TestSelectivityShapes(t *testing.T) {
	s := NewScan(statTable(1000))
	cases := []struct {
		cond expr.Expr
		lo   float64
		hi   float64
	}{
		{expr.FalseExpr(), 0, 0},
		{expr.TrueExpr(), 1000, 1000},
		{&expr.IsNull{E: expr.Ref(s.Cols[0])}, 1, 100},
		{&expr.InList{E: expr.Ref(s.Cols[0]), List: []expr.Expr{expr.Lit(types.Int(1)), expr.Lit(types.Int(2))}}, 100, 300},
		{&expr.Like{E: expr.Ref(s.Cols[1]), Pattern: "a%"}, 100, 400},
		{&expr.Not{E: expr.Eq(expr.Ref(s.Cols[0]), expr.Lit(types.Int(1)))}, 800, 1000},
	}
	for _, c := range cases {
		got := EstimateRows(NewFilter(s, c.cond))
		if got < c.lo || got > c.hi {
			t.Errorf("estimate(%s) = %v, want in [%v, %v]", c.cond, got, c.lo, c.hi)
		}
	}
}
