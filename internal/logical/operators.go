// Package logical defines the logical relational algebra the optimizer and
// the fusion primitives operate on: operator trees with per-instance column
// identities, schema propagation, validation, printing, and tree rewriting.
//
// The operator vocabulary mirrors the paper's §III: Scan, Filter, Project,
// Join (inner/left/semi/cross), GroupBy with masked aggregates, MarkDistinct,
// Window, UnionAll, Values (constant tables), Sort, Limit, and
// EnforceSingleRow. Fused plans are expressed with these operators only —
// no ResinMap/ResinReduce-style super-operators — which is the property
// that lets every other rewrite rule keep firing on fused results.
package logical

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/types"
)

// Operator is a node of a logical plan tree.
type Operator interface {
	// Schema returns the output columns of the operator, in order.
	Schema() []*expr.Column
	// Children returns the operator's inputs.
	Children() []Operator
	// WithChildren returns a copy of the operator with the inputs replaced;
	// the slice length must match Children().
	WithChildren(ch []Operator) Operator
	// Describe returns a one-line description without children.
	Describe() string
}

// Scan reads a base table. Cols[i] is the output column instance bound to
// the table column named ColNames[i]. Every Scan allocates fresh column
// identities, so two scans of the same table never share column IDs.
type Scan struct {
	Table    *catalog.Table
	Cols     []*expr.Column
	ColNames []string
}

// NewScan builds a scan over all columns of the table with fresh identities.
func NewScan(t *catalog.Table) *Scan {
	s := &Scan{Table: t}
	for _, c := range t.Columns {
		s.Cols = append(s.Cols, expr.NewColumn(c.Name, c.Type))
		s.ColNames = append(s.ColNames, c.Name)
	}
	return s
}

func (s *Scan) Schema() []*expr.Column { return s.Cols }
func (s *Scan) Children() []Operator   { return nil }
func (s *Scan) WithChildren(ch []Operator) Operator {
	if len(ch) != 0 {
		panic("logical: Scan has no children")
	}
	return s
}
func (s *Scan) Describe() string {
	return fmt.Sprintf("Scan %s [%s]", s.Table.Name, columnList(s.Cols))
}

// ColumnFor returns the output column bound to the named table column, or
// nil if the scan does not read it.
func (s *Scan) ColumnFor(name string) *expr.Column {
	for i, n := range s.ColNames {
		if n == name {
			return s.Cols[i]
		}
	}
	return nil
}

// Filter keeps rows for which Cond evaluates to TRUE.
type Filter struct {
	Input Operator
	Cond  expr.Expr
}

// NewFilter wraps input in a filter, dropping a trivially TRUE condition.
func NewFilter(input Operator, cond expr.Expr) Operator {
	if cond == nil || expr.IsTrueLiteral(cond) {
		return input
	}
	return &Filter{Input: input, Cond: cond}
}

func (f *Filter) Schema() []*expr.Column { return f.Input.Schema() }
func (f *Filter) Children() []Operator   { return []Operator{f.Input} }
func (f *Filter) WithChildren(ch []Operator) Operator {
	return &Filter{Input: ch[0], Cond: f.Cond}
}
func (f *Filter) Describe() string { return fmt.Sprintf("Filter %s", f.Cond) }

// Assignment binds an expression to a (new) output column.
type Assignment struct {
	Col *expr.Column
	E   expr.Expr
}

// Assign creates an assignment with a fresh column of the right type.
func Assign(name string, e expr.Expr) Assignment {
	return Assignment{Col: expr.NewColumn(name, e.Type()), E: e}
}

// Project computes a new schema from expressions over the input.
type Project struct {
	Input Operator
	Cols  []Assignment
}

func (p *Project) Schema() []*expr.Column {
	out := make([]*expr.Column, len(p.Cols))
	for i, a := range p.Cols {
		out[i] = a.Col
	}
	return out
}
func (p *Project) Children() []Operator { return []Operator{p.Input} }
func (p *Project) WithChildren(ch []Operator) Operator {
	return &Project{Input: ch[0], Cols: p.Cols}
}
func (p *Project) Describe() string {
	parts := make([]string, len(p.Cols))
	for i, a := range p.Cols {
		if ref, ok := a.E.(*expr.ColumnRef); ok && ref.Col == a.Col {
			parts[i] = a.Col.String()
		} else {
			parts[i] = fmt.Sprintf("%s := %s", a.Col, a.E)
		}
	}
	return fmt.Sprintf("Project [%s]", strings.Join(parts, ", "))
}

// IdentityProject builds a projection that passes through the given columns
// unchanged (used when manufacturing trivial projections during fusion).
func IdentityProject(input Operator, cols []*expr.Column) *Project {
	p := &Project{Input: input}
	for _, c := range cols {
		p.Cols = append(p.Cols, Assignment{Col: c, E: expr.Ref(c)})
	}
	return p
}

// JoinKind enumerates join variants.
type JoinKind uint8

const (
	InnerJoin JoinKind = iota
	LeftJoin
	SemiJoin
	CrossJoin
)

var joinNames = [...]string{"InnerJoin", "LeftJoin", "SemiJoin", "CrossJoin"}

func (k JoinKind) String() string { return joinNames[k] }

// Join combines two inputs. Cond is nil for CrossJoin. A SemiJoin outputs
// only the left schema (rows of the left input with at least one match).
type Join struct {
	Kind  JoinKind
	Left  Operator
	Right Operator
	Cond  expr.Expr
}

func (j *Join) Schema() []*expr.Column {
	if j.Kind == SemiJoin {
		return j.Left.Schema()
	}
	l := j.Left.Schema()
	r := j.Right.Schema()
	out := make([]*expr.Column, 0, len(l)+len(r))
	out = append(out, l...)
	out = append(out, r...)
	return out
}
func (j *Join) Children() []Operator { return []Operator{j.Left, j.Right} }
func (j *Join) WithChildren(ch []Operator) Operator {
	return &Join{Kind: j.Kind, Left: ch[0], Right: ch[1], Cond: j.Cond}
}
func (j *Join) Describe() string {
	if j.Cond == nil {
		return j.Kind.String()
	}
	return fmt.Sprintf("%s on %s", j.Kind, j.Cond)
}

// AggAssign binds a masked aggregate call to an output column.
type AggAssign struct {
	Col *expr.Column
	Agg expr.AggCall
}

// GroupBy groups the input on Keys and computes masked aggregates. Keys are
// input columns and keep their identity in the output schema (followed by
// the aggregate output columns). An empty Keys list is a scalar aggregate
// producing exactly one row.
type GroupBy struct {
	Input Operator
	Keys  []*expr.Column
	Aggs  []AggAssign
}

func (g *GroupBy) Schema() []*expr.Column {
	out := make([]*expr.Column, 0, len(g.Keys)+len(g.Aggs))
	out = append(out, g.Keys...)
	for _, a := range g.Aggs {
		out = append(out, a.Col)
	}
	return out
}
func (g *GroupBy) Children() []Operator { return []Operator{g.Input} }
func (g *GroupBy) WithChildren(ch []Operator) Operator {
	return &GroupBy{Input: ch[0], Keys: g.Keys, Aggs: g.Aggs}
}
func (g *GroupBy) Describe() string {
	parts := make([]string, len(g.Aggs))
	for i, a := range g.Aggs {
		parts[i] = fmt.Sprintf("%s := %s", a.Col, a.Agg)
	}
	return fmt.Sprintf("GroupBy keys=[%s] aggs=[%s]", columnList(g.Keys), strings.Join(parts, ", "))
}

// IsScalar reports whether this is a scalar (no grouping keys) aggregate.
func (g *GroupBy) IsScalar() bool { return len(g.Keys) == 0 }

// MarkDistinct passes the input through, appending a boolean column MarkCol
// that is TRUE the first time each combination of values of On is seen
// (§III.F). Together with aggregate masks it implements DISTINCT aggregates.
// Mask, when non-nil, restricts marking to rows satisfying it (rows failing
// the mask get FALSE and do not consume first-occurrences) — the paper's
// "extending the MarkDistinct operator itself to consider masks natively"
// optimization, which lets fusion avoid materializing compensation columns.
type MarkDistinct struct {
	Input   Operator
	MarkCol *expr.Column
	On      []*expr.Column
	Mask    expr.Expr
}

func (m *MarkDistinct) Schema() []*expr.Column {
	return append(append([]*expr.Column{}, m.Input.Schema()...), m.MarkCol)
}
func (m *MarkDistinct) Children() []Operator { return []Operator{m.Input} }
func (m *MarkDistinct) WithChildren(ch []Operator) Operator {
	return &MarkDistinct{Input: ch[0], MarkCol: m.MarkCol, On: m.On, Mask: m.Mask}
}
func (m *MarkDistinct) Describe() string {
	if m.Mask != nil && !expr.IsTrueLiteral(m.Mask) {
		return fmt.Sprintf("MarkDistinct %s := distinct(%s) MASK %s", m.MarkCol, columnList(m.On), m.Mask)
	}
	return fmt.Sprintf("MarkDistinct %s := distinct(%s)", m.MarkCol, columnList(m.On))
}

// WindowAssign binds a windowed aggregate (partitioned, unordered — the
// full-partition frame the paper's rewrites need) to an output column.
type WindowAssign struct {
	Col         *expr.Column
	Agg         expr.AggCall
	PartitionBy []*expr.Column
}

// Window appends windowed aggregate columns to the input schema.
type Window struct {
	Input Operator
	Funcs []WindowAssign
}

func (w *Window) Schema() []*expr.Column {
	out := append([]*expr.Column{}, w.Input.Schema()...)
	for _, f := range w.Funcs {
		out = append(out, f.Col)
	}
	return out
}
func (w *Window) Children() []Operator { return []Operator{w.Input} }
func (w *Window) WithChildren(ch []Operator) Operator {
	return &Window{Input: ch[0], Funcs: w.Funcs}
}
func (w *Window) Describe() string {
	parts := make([]string, len(w.Funcs))
	for i, f := range w.Funcs {
		parts[i] = fmt.Sprintf("%s := %s OVER (PARTITION BY %s)", f.Col, f.Agg, columnList(f.PartitionBy))
	}
	return "Window " + strings.Join(parts, ", ")
}

// UnionAll concatenates the rows of its inputs. Cols are fresh output
// columns; InputCols[i][j] names the column of Inputs[i] that feeds output
// column j (the positional mapping UM from §IV.C/D).
type UnionAll struct {
	Inputs    []Operator
	Cols      []*expr.Column
	InputCols [][]*expr.Column
}

// NewUnionAll builds a union whose output columns take names/types from the
// first input's selected columns.
func NewUnionAll(inputs []Operator, inputCols [][]*expr.Column) *UnionAll {
	u := &UnionAll{Inputs: inputs, InputCols: inputCols}
	for _, c := range inputCols[0] {
		u.Cols = append(u.Cols, expr.NewColumn(c.Name, c.Type))
	}
	return u
}

func (u *UnionAll) Schema() []*expr.Column { return u.Cols }
func (u *UnionAll) Children() []Operator   { return u.Inputs }
func (u *UnionAll) WithChildren(ch []Operator) Operator {
	return &UnionAll{Inputs: ch, Cols: u.Cols, InputCols: u.InputCols}
}
func (u *UnionAll) Describe() string {
	return fmt.Sprintf("UnionAll(%d inputs) [%s]", len(u.Inputs), columnList(u.Cols))
}

// Values is a constant table (e.g. the tag table (1),(2) used by the
// UnionAll fusion rewrite).
type Values struct {
	Cols []*expr.Column
	Rows [][]types.Value
}

// NewValuesInt builds a single-column BIGINT constant table.
func NewValuesInt(name string, vals ...int64) *Values {
	v := &Values{Cols: []*expr.Column{expr.NewColumn(name, types.KindInt64)}}
	for _, x := range vals {
		v.Rows = append(v.Rows, []types.Value{types.Int(x)})
	}
	return v
}

func (v *Values) Schema() []*expr.Column { return v.Cols }
func (v *Values) Children() []Operator   { return nil }
func (v *Values) WithChildren(ch []Operator) Operator {
	if len(ch) != 0 {
		panic("logical: Values has no children")
	}
	return v
}
func (v *Values) Describe() string {
	return fmt.Sprintf("Values %d rows [%s]", len(v.Rows), columnList(v.Cols))
}

// Spool materializes a common subexpression once and replays it to every
// consumer — the paper's §I comparator ("a common approach to deal with
// common subexpressions is via spooling"), inducing DAG-like execution.
// Exactly one occurrence per ID carries the Producer plan; the others are
// pure readers. Cols is this occurrence's output schema, corresponding
// positionally to the producer's schema (duplicate subtrees are
// structurally identical, so their schemas align by position).
type Spool struct {
	ID       int
	Producer Operator // nil for secondary consumers
	Cols     []*expr.Column
}

func (s *Spool) Schema() []*expr.Column { return s.Cols }
func (s *Spool) Children() []Operator {
	if s.Producer == nil {
		return nil
	}
	return []Operator{s.Producer}
}
func (s *Spool) WithChildren(ch []Operator) Operator {
	if s.Producer == nil {
		if len(ch) != 0 {
			panic("logical: consumer Spool has no children")
		}
		return s
	}
	return &Spool{ID: s.ID, Producer: ch[0], Cols: s.Cols}
}
func (s *Spool) Describe() string {
	role := "read"
	if s.Producer != nil {
		role = "materialize"
	}
	return fmt.Sprintf("Spool #%d (%s) [%s]", s.ID, role, columnList(s.Cols))
}

// SortKey is one ORDER BY term.
type SortKey struct {
	E    expr.Expr
	Desc bool
}

// Sort orders the input by the given keys.
type Sort struct {
	Input Operator
	Keys  []SortKey
}

func (s *Sort) Schema() []*expr.Column { return s.Input.Schema() }
func (s *Sort) Children() []Operator   { return []Operator{s.Input} }
func (s *Sort) WithChildren(ch []Operator) Operator {
	return &Sort{Input: ch[0], Keys: s.Keys}
}
func (s *Sort) Describe() string {
	parts := make([]string, len(s.Keys))
	for i, k := range s.Keys {
		dir := "ASC"
		if k.Desc {
			dir = "DESC"
		}
		parts[i] = fmt.Sprintf("%s %s", k.E, dir)
	}
	return "Sort " + strings.Join(parts, ", ")
}

// Limit truncates the input to N rows.
type Limit struct {
	Input Operator
	N     int64
}

func (l *Limit) Schema() []*expr.Column { return l.Input.Schema() }
func (l *Limit) Children() []Operator   { return []Operator{l.Input} }
func (l *Limit) WithChildren(ch []Operator) Operator {
	return &Limit{Input: ch[0], N: l.N}
}
func (l *Limit) Describe() string { return fmt.Sprintf("Limit %d", l.N) }

// EnforceSingleRow asserts that its input produces at most one row (failing
// the query otherwise) and emits exactly one row, NULL-extending an empty
// input. It is how the binder plans scalar subqueries.
type EnforceSingleRow struct {
	Input Operator
}

func (e *EnforceSingleRow) Schema() []*expr.Column { return e.Input.Schema() }
func (e *EnforceSingleRow) Children() []Operator   { return []Operator{e.Input} }
func (e *EnforceSingleRow) WithChildren(ch []Operator) Operator {
	return &EnforceSingleRow{Input: ch[0]}
}
func (e *EnforceSingleRow) Describe() string { return "EnforceSingleRow" }

func columnList(cols []*expr.Column) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = c.String()
	}
	return strings.Join(parts, ", ")
}
