package logical

import (
	"fmt"
	"strings"

	"repro/internal/expr"
)

// Format renders a plan tree with two-space indentation per level, one
// operator per line. It is the EXPLAIN output and the format tests assert
// against.
func Format(op Operator) string {
	return FormatWith(op, nil)
}

// FormatWith renders the plan with an optional per-operator annotation
// appended to each line (e.g. cardinality estimates in EXPLAIN output).
func FormatWith(op Operator, annot func(Operator) string) string {
	var b strings.Builder
	format(&b, op, 0, annot)
	return b.String()
}

func format(b *strings.Builder, op Operator, depth int, annot func(Operator) string) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(op.Describe())
	if annot != nil {
		if a := annot(op); a != "" {
			b.WriteString("  ")
			b.WriteString(a)
		}
	}
	b.WriteByte('\n')
	for _, c := range op.Children() {
		format(b, c, depth+1, annot)
	}
}

// Walk visits every operator pre-order; returning false prunes the subtree.
func Walk(op Operator, f func(Operator) bool) {
	if op == nil || !f(op) {
		return
	}
	for _, c := range op.Children() {
		Walk(c, f)
	}
}

// Transform rewrites a plan bottom-up: children first, then f on the
// (possibly rebuilt) node. f returning its argument keeps the node.
func Transform(op Operator, f func(Operator) Operator) Operator {
	ch := op.Children()
	if len(ch) > 0 {
		newCh := make([]Operator, len(ch))
		changed := false
		for i, c := range ch {
			newCh[i] = Transform(c, f)
			if newCh[i] != c {
				changed = true
			}
		}
		if changed {
			op = op.WithChildren(newCh)
		}
	}
	return f(op)
}

// TransformDown rewrites a plan top-down: f on the node first, then recurse
// into the (possibly new) node's children.
func TransformDown(op Operator, f func(Operator) Operator) Operator {
	op = f(op)
	ch := op.Children()
	if len(ch) == 0 {
		return op
	}
	newCh := make([]Operator, len(ch))
	changed := false
	for i, c := range ch {
		newCh[i] = TransformDown(c, f)
		if newCh[i] != c {
			changed = true
		}
	}
	if changed {
		op = op.WithChildren(newCh)
	}
	return op
}

// OutputSet returns the set of column IDs in op's output schema.
func OutputSet(op Operator) map[expr.ColumnID]bool {
	out := make(map[expr.ColumnID]bool)
	for _, c := range op.Schema() {
		out[c.ID] = true
	}
	return out
}

// OutputColumn finds an output column by ID, or nil.
func OutputColumn(op Operator, id expr.ColumnID) *expr.Column {
	for _, c := range op.Schema() {
		if c.ID == id {
			return c
		}
	}
	return nil
}

// ExprsOf returns every expression embedded in a single operator (not its
// children), for validation and column-usage analysis. Aggregate args and
// masks, window partition columns, sort keys and union input columns are
// all included (column lists as ColumnRefs).
func ExprsOf(op Operator) []expr.Expr {
	var out []expr.Expr
	add := func(e expr.Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	switch o := op.(type) {
	case *Filter:
		add(o.Cond)
	case *Project:
		for _, a := range o.Cols {
			add(a.E)
		}
	case *Join:
		add(o.Cond)
	case *GroupBy:
		for _, k := range o.Keys {
			add(expr.Ref(k))
		}
		for _, a := range o.Aggs {
			add(a.Agg.Arg)
			add(a.Agg.Mask)
		}
	case *MarkDistinct:
		for _, c := range o.On {
			add(expr.Ref(c))
		}
		add(o.Mask)
	case *Window:
		for _, f := range o.Funcs {
			add(f.Agg.Arg)
			add(f.Agg.Mask)
			for _, p := range f.PartitionBy {
				add(expr.Ref(p))
			}
		}
	case *UnionAll:
		for _, cols := range o.InputCols {
			for _, c := range cols {
				add(expr.Ref(c))
			}
		}
	case *Sort:
		for _, k := range o.Keys {
			add(k.E)
		}
	}
	return out
}

// Validate checks structural well-formedness of a plan: every expression in
// every operator references only columns produced by that operator's
// children (join conditions may use both sides; union input lists must
// reference the corresponding input and match arity), and output schemas
// contain no duplicate column IDs. It returns the first problem found.
// The optimizer runs Validate after every rule application in tests, which
// catches malformed fusion results early.
func Validate(op Operator) error {
	var walkErr error
	Walk(op, func(o Operator) bool {
		if err := validateOne(o); err != nil {
			walkErr = err
			return false
		}
		return true
	})
	return walkErr
}

func validateOne(op Operator) error {
	// Duplicate output columns.
	seen := make(map[expr.ColumnID]bool)
	for _, c := range op.Schema() {
		if seen[c.ID] {
			return fmt.Errorf("logical: %s has duplicate output column %s", op.Describe(), c)
		}
		seen[c.ID] = true
	}

	visible := make(map[expr.ColumnID]bool)
	for _, c := range op.Children() {
		for _, col := range c.Schema() {
			visible[col.ID] = true
		}
	}

	switch o := op.(type) {
	case *UnionAll:
		if len(o.InputCols) != len(o.Inputs) {
			return fmt.Errorf("logical: UnionAll has %d inputs but %d input column lists", len(o.Inputs), len(o.InputCols))
		}
		for i, cols := range o.InputCols {
			if len(cols) != len(o.Cols) {
				return fmt.Errorf("logical: UnionAll input %d provides %d columns, want %d", i, len(cols), len(o.Cols))
			}
			inSet := OutputSet(o.Inputs[i])
			for _, c := range cols {
				if !inSet[c.ID] {
					return fmt.Errorf("logical: UnionAll input %d column %s not produced by that input", i, c)
				}
			}
		}
		return nil
	case *GroupBy:
		inSet := OutputSet(o.Input)
		for _, k := range o.Keys {
			if !inSet[k.ID] {
				return fmt.Errorf("logical: GroupBy key %s not produced by input", k)
			}
		}
	case *MarkDistinct:
		inSet := OutputSet(o.Input)
		for _, c := range o.On {
			if !inSet[c.ID] {
				return fmt.Errorf("logical: MarkDistinct column %s not produced by input", c)
			}
		}
	}

	for _, e := range ExprsOf(op) {
		if !expr.RefersOnly(e, visible) {
			return fmt.Errorf("logical: %s references columns outside its inputs in %s", op.Describe(), e)
		}
	}
	return nil
}

// FilterConjuncts returns the flattened conjuncts of a filter condition
// directly above op, or nil if op is not a Filter.
func FilterConjuncts(op Operator) []expr.Expr {
	if f, ok := op.(*Filter); ok {
		return expr.Conjuncts(f.Cond)
	}
	return nil
}

// CountOperators returns the number of operators in the tree (including
// shared subtrees once per reachable path; plans are trees, so this is the
// plan size). Useful for heuristics and tests asserting duplicate removal.
func CountOperators(op Operator) int {
	n := 0
	Walk(op, func(Operator) bool { n++; return true })
	return n
}

// CountScansOf counts Scan operators over the named table; the Figure 2
// bytes-scanned story reduces to this number going down.
func CountScansOf(op Operator, table string) int {
	n := 0
	Walk(op, func(o Operator) bool {
		if s, ok := o.(*Scan); ok && s.Table.Name == table {
			n++
		}
		return true
	})
	return n
}
