package logical

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/types"
)

func TestDescribeStrings(t *testing.T) {
	tab := itemTable()
	s := NewScan(tab)
	cases := []struct {
		op   Operator
		want string
	}{
		{s, "Scan item"},
		{&Filter{Input: s, Cond: expr.TrueExpr()}, "Filter"},
		{&Project{Input: s, Cols: []Assignment{Assign("x", expr.Ref(s.Cols[0]))}}, "Project"},
		{&Join{Kind: CrossJoin, Left: s, Right: NewScan(tab)}, "CrossJoin"},
		{&Join{Kind: LeftJoin, Left: s, Right: NewScan(tab), Cond: expr.TrueExpr()}, "LeftJoin"},
		{&GroupBy{Input: s, Keys: []*expr.Column{s.Cols[0]}}, "GroupBy"},
		{&MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool), On: s.Cols[:1]}, "MarkDistinct"},
		{&MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool), On: s.Cols[:1],
			Mask: expr.NotNull(expr.Ref(s.Cols[0]))}, "MASK"},
		{&Window{Input: s, Funcs: []WindowAssign{{Col: expr.NewColumn("w", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[2])}, PartitionBy: s.Cols[:1]}}}, "Window"},
		{NewValuesInt("t", 1), "Values"},
		{&Sort{Input: s, Keys: []SortKey{{E: expr.Ref(s.Cols[0]), Desc: true}}}, "DESC"},
		{&Limit{Input: s, N: 3}, "Limit 3"},
		{&EnforceSingleRow{Input: s}, "EnforceSingleRow"},
		{&Spool{ID: 7, Producer: s, Cols: s.Cols}, "Spool #7 (materialize)"},
		{&Spool{ID: 7, Cols: s.Cols}, "Spool #7 (read)"},
	}
	for _, c := range cases {
		if got := c.op.Describe(); !strings.Contains(got, c.want) {
			t.Errorf("Describe() = %q, want substring %q", got, c.want)
		}
	}
}

func TestWithChildrenRoundTrips(t *testing.T) {
	tab := itemTable()
	s := NewScan(tab)
	ops := []Operator{
		&Filter{Input: s, Cond: expr.TrueExpr()},
		&Project{Input: s, Cols: []Assignment{Assign("x", expr.Ref(s.Cols[0]))}},
		&Join{Kind: InnerJoin, Left: s, Right: NewScan(tab), Cond: expr.TrueExpr()},
		&GroupBy{Input: s, Keys: []*expr.Column{s.Cols[0]}},
		&MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool), On: s.Cols[:1]},
		&Window{Input: s},
		&Sort{Input: s},
		&Limit{Input: s, N: 1},
		&EnforceSingleRow{Input: s},
		&Spool{ID: 1, Producer: s, Cols: s.Cols},
	}
	for _, op := range ops {
		ch := op.Children()
		rebuilt := op.WithChildren(ch)
		if len(rebuilt.Children()) != len(ch) {
			t.Errorf("%T: WithChildren changed arity", op)
		}
		if len(rebuilt.Schema()) != len(op.Schema()) {
			t.Errorf("%T: WithChildren changed schema", op)
		}
	}
	// Leaf nodes panic when given children.
	for _, leaf := range []Operator{s, NewValuesInt("t", 1), &Spool{ID: 2, Cols: s.Cols}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T: WithChildren(child) must panic for leaves", leaf)
				}
			}()
			leaf.WithChildren([]Operator{s})
		}()
	}
}

func TestWalkPrune(t *testing.T) {
	s := NewScan(itemTable())
	f := NewFilter(s, expr.NotNull(expr.Ref(s.Cols[0])))
	visited := 0
	Walk(f, func(op Operator) bool {
		visited++
		return false // prune immediately
	})
	if visited != 1 {
		t.Errorf("visited = %d, want 1 after prune", visited)
	}
	Walk(nil, func(Operator) bool { t.Error("nil walk must not call f"); return true })
}

func TestTransformDown(t *testing.T) {
	s := NewScan(itemTable())
	l := &Limit{Input: &Limit{Input: s, N: 5}, N: 10}
	out := TransformDown(l, func(op Operator) Operator {
		if lim, ok := op.(*Limit); ok && lim.N == 10 {
			return lim.Input // drop the outer limit
		}
		return op
	})
	if out.(*Limit).N != 5 {
		t.Errorf("TransformDown result wrong:\n%s", Format(out))
	}
}

func TestFilterConjunctsHelper(t *testing.T) {
	s := NewScan(itemTable())
	cond := expr.And(expr.NotNull(expr.Ref(s.Cols[0])), expr.NotNull(expr.Ref(s.Cols[1])))
	f := &Filter{Input: s, Cond: cond}
	if got := FilterConjuncts(f); len(got) != 2 {
		t.Errorf("FilterConjuncts = %d items", len(got))
	}
	if FilterConjuncts(s) != nil {
		t.Error("non-filter should yield nil")
	}
}

func TestOutputColumn(t *testing.T) {
	s := NewScan(itemTable())
	if OutputColumn(s, s.Cols[1].ID) != s.Cols[1] {
		t.Error("OutputColumn lookup failed")
	}
	if OutputColumn(s, expr.ColumnID(999999)) != nil {
		t.Error("missing column should be nil")
	}
}

func TestValidateSpoolAndMask(t *testing.T) {
	s := NewScan(itemTable())
	sp := &Spool{ID: 1, Producer: s, Cols: s.Cols}
	if err := Validate(sp); err != nil {
		t.Errorf("valid spool rejected: %v", err)
	}
	// MarkDistinct with a mask over foreign columns must fail validation.
	other := NewScan(itemTable())
	bad := &MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool),
		On: s.Cols[:1], Mask: expr.NotNull(expr.Ref(other.Cols[0]))}
	if err := Validate(bad); err == nil {
		t.Error("mask over foreign columns accepted")
	}
}

func TestValidateDuplicateOutput(t *testing.T) {
	s := NewScan(itemTable())
	dup := &Project{Input: s, Cols: []Assignment{
		{Col: s.Cols[0], E: expr.Ref(s.Cols[0])},
		{Col: s.Cols[0], E: expr.Ref(s.Cols[0])},
	}}
	if err := Validate(dup); err == nil {
		t.Error("duplicate output columns accepted")
	}
}
