package logical

import (
	"math"

	"repro/internal/expr"
)

// EstimateRows returns a coarse cardinality estimate for a plan, derived
// from catalog statistics and textbook selectivity guesses. The paper notes
// Athena "rel[ies] on local heuristics based on statistics and plan
// properties to decide the applicability of each rule" (§IV.E, in lieu of
// Cascades-style exploration); this estimator provides those statistics.
// Estimates are order-of-magnitude tools, not truths — callers gate
// decisions, they do not cost plans.
func EstimateRows(op Operator) float64 {
	switch o := op.(type) {
	case *Scan:
		if rc := o.Table.Stats.RowCount.Load(); rc > 0 {
			return float64(rc)
		}
		return 1000 // unknown tables assume a moderate size

	case *Filter:
		return EstimateRows(o.Input) * selectivity(o.Cond)

	case *Project:
		return EstimateRows(o.Input)

	case *Join:
		l, r := EstimateRows(o.Left), EstimateRows(o.Right)
		switch o.Kind {
		case CrossJoin:
			return l * r
		case SemiJoin:
			return l * 0.5
		case LeftJoin:
			return math.Max(l, equiJoinRows(o, l, r))
		default: // inner
			return equiJoinRows(o, l, r)
		}

	case *GroupBy:
		in := EstimateRows(o.Input)
		if len(o.Keys) == 0 {
			return 1
		}
		// Distinct groups grow sublinearly with input; more keys → more
		// groups.
		est := math.Pow(in, 0.75) * float64(len(o.Keys))
		return math.Min(in, math.Max(1, est))

	case *MarkDistinct, *Window:
		return EstimateRows(op.Children()[0])

	case *UnionAll:
		var sum float64
		for _, in := range o.Inputs {
			sum += EstimateRows(in)
		}
		return sum

	case *Values:
		return float64(len(o.Rows))

	case *Sort:
		return EstimateRows(o.Input)

	case *Limit:
		return math.Min(float64(o.N), EstimateRows(o.Input))

	case *EnforceSingleRow:
		return 1

	case *Spool:
		if o.Producer != nil {
			return EstimateRows(o.Producer)
		}
		return 1000

	default:
		return 1000
	}
}

// equiJoinRows estimates an equi-join as the larger side (each probe row
// matches about one build row through a key-ish column); joins without any
// equality conjunct degrade toward a cross product damped by the residual
// predicate selectivity.
func equiJoinRows(j *Join, l, r float64) float64 {
	hasEq := false
	residual := 1.0
	for _, c := range expr.Conjuncts(j.Cond) {
		if b, ok := c.(*expr.Binary); ok && b.Op == expr.OpEq {
			if _, lref := b.L.(*expr.ColumnRef); lref {
				if _, rref := b.R.(*expr.ColumnRef); rref {
					hasEq = true
					continue
				}
			}
		}
		residual *= selectivity(c)
	}
	if hasEq {
		return math.Max(1, math.Max(l, r)*residual)
	}
	return math.Max(1, l*r*residual)
}

// selectivity guesses the fraction of rows a predicate keeps, using the
// System R-era constants.
func selectivity(cond expr.Expr) float64 {
	if cond == nil || expr.IsTrueLiteral(cond) {
		return 1
	}
	switch x := cond.(type) {
	case *expr.Binary:
		switch x.Op {
		case expr.OpAnd:
			return selectivity(x.L) * selectivity(x.R)
		case expr.OpOr:
			sl, sr := selectivity(x.L), selectivity(x.R)
			return sl + sr - sl*sr
		case expr.OpEq:
			return 0.1
		case expr.OpNe:
			return 0.9
		default: // range comparisons
			return 0.3
		}
	case *expr.Not:
		return 1 - selectivity(x.E)
	case *expr.IsNull:
		if x.Neg {
			return 0.95
		}
		return 0.05
	case *expr.InList:
		s := 0.1 * float64(len(x.List))
		if s > 1 {
			s = 1
		}
		if x.Neg {
			return 1 - s
		}
		return s
	case *expr.Like:
		return 0.25
	case *expr.Literal:
		if expr.IsFalseLiteral(cond) {
			return 0
		}
		return 1
	default:
		return 0.5
	}
}
