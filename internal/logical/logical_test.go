package logical

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/types"
)

func itemTable() *catalog.Table {
	return &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item_sk", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
			{Name: "i_price", Type: types.KindFloat64},
		},
	}
}

func TestScanSchemaAndFreshIDs(t *testing.T) {
	tab := itemTable()
	s1 := NewScan(tab)
	s2 := NewScan(tab)
	if len(s1.Schema()) != 3 {
		t.Fatalf("scan schema len = %d", len(s1.Schema()))
	}
	for i := range s1.Cols {
		if s1.Cols[i].ID == s2.Cols[i].ID {
			t.Error("two scans share column IDs; instances must be fresh")
		}
	}
	if s1.ColumnFor("i_brand") == nil || s1.ColumnFor("nope") != nil {
		t.Error("ColumnFor lookup wrong")
	}
}

func TestFilterProjectSchemas(t *testing.T) {
	s := NewScan(itemTable())
	f := NewFilter(s, expr.Eq(expr.Ref(s.Cols[1]), expr.Lit(types.String("b"))))
	if len(f.Schema()) != 3 {
		t.Error("filter must preserve schema")
	}
	if NewFilter(s, expr.TrueExpr()) != Operator(s) {
		t.Error("NewFilter should elide TRUE")
	}
	p := &Project{Input: s, Cols: []Assignment{Assign("x", expr.Ref(s.Cols[0]))}}
	if len(p.Schema()) != 1 || p.Schema()[0].Name != "x" {
		t.Error("project schema wrong")
	}
}

func TestJoinSchemas(t *testing.T) {
	s1, s2 := NewScan(itemTable()), NewScan(itemTable())
	inner := &Join{Kind: InnerJoin, Left: s1, Right: s2, Cond: expr.Eq(expr.Ref(s1.Cols[0]), expr.Ref(s2.Cols[0]))}
	if len(inner.Schema()) != 6 {
		t.Errorf("inner join schema = %d cols", len(inner.Schema()))
	}
	semi := &Join{Kind: SemiJoin, Left: s1, Right: s2, Cond: inner.Cond}
	if len(semi.Schema()) != 3 {
		t.Errorf("semi join schema = %d cols, want left only", len(semi.Schema()))
	}
}

func TestGroupBySchema(t *testing.T) {
	s := NewScan(itemTable())
	g := &GroupBy{
		Input: s,
		Keys:  []*expr.Column{s.Cols[0]},
		Aggs:  []AggAssign{{Col: expr.NewColumn("cnt", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}}},
	}
	sch := g.Schema()
	if len(sch) != 2 || sch[0] != s.Cols[0] || sch[1].Name != "cnt" {
		t.Errorf("groupby schema wrong: %v", sch)
	}
	if g.IsScalar() {
		t.Error("keyed groupby is not scalar")
	}
	if !(&GroupBy{Input: s}).IsScalar() {
		t.Error("keyless groupby is scalar")
	}
}

func TestMarkDistinctAndWindowSchemas(t *testing.T) {
	s := NewScan(itemTable())
	md := &MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool), On: []*expr.Column{s.Cols[1]}}
	if got := len(md.Schema()); got != 4 {
		t.Errorf("markdistinct schema = %d cols", got)
	}
	w := &Window{Input: s, Funcs: []WindowAssign{{
		Col:         expr.NewColumn("avg_p", types.KindFloat64),
		Agg:         expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[2])},
		PartitionBy: []*expr.Column{s.Cols[0]},
	}}}
	if got := len(w.Schema()); got != 4 {
		t.Errorf("window schema = %d cols", got)
	}
}

func TestUnionAllSchema(t *testing.T) {
	s1, s2 := NewScan(itemTable()), NewScan(itemTable())
	u := NewUnionAll(
		[]Operator{s1, s2},
		[][]*expr.Column{{s1.Cols[0]}, {s2.Cols[0]}},
	)
	if len(u.Schema()) != 1 || u.Schema()[0].ID == s1.Cols[0].ID {
		t.Error("union output must be fresh single column")
	}
}

func TestValuesAndFormat(t *testing.T) {
	v := NewValuesInt("tag", 1, 2)
	if len(v.Rows) != 2 || v.Rows[1][0].I != 2 {
		t.Error("NewValuesInt rows wrong")
	}
	s := NewScan(itemTable())
	f := NewFilter(s, expr.NotNull(expr.Ref(s.Cols[0])))
	out := Format(f)
	if !strings.Contains(out, "Filter") || !strings.Contains(out, "  Scan item") {
		t.Errorf("Format output unexpected:\n%s", out)
	}
}

func TestTransformRewrites(t *testing.T) {
	s := NewScan(itemTable())
	f := NewFilter(s, expr.NotNull(expr.Ref(s.Cols[0])))
	l := &Limit{Input: f, N: 10}
	got := Transform(l, func(op Operator) Operator {
		if lim, ok := op.(*Limit); ok {
			return &Limit{Input: lim.Input, N: 5}
		}
		return op
	})
	if got.(*Limit).N != 5 {
		t.Error("Transform did not rewrite limit")
	}
	// Bottom-up rebuild preserves unrelated nodes.
	if got.(*Limit).Input != Operator(f) {
		t.Error("Transform rebuilt an unchanged subtree")
	}
}

func TestValidateCatchesBadColumnRefs(t *testing.T) {
	s := NewScan(itemTable())
	other := NewScan(itemTable())
	bad := &Filter{Input: s, Cond: expr.NotNull(expr.Ref(other.Cols[0]))}
	if err := Validate(bad); err == nil {
		t.Error("Validate should reject filter over foreign columns")
	}
	good := &Filter{Input: s, Cond: expr.NotNull(expr.Ref(s.Cols[0]))}
	if err := Validate(good); err != nil {
		t.Errorf("Validate rejected valid plan: %v", err)
	}
}

func TestValidateUnionArity(t *testing.T) {
	s1, s2 := NewScan(itemTable()), NewScan(itemTable())
	u := NewUnionAll([]Operator{s1, s2}, [][]*expr.Column{{s1.Cols[0]}, {s2.Cols[0]}})
	if err := Validate(u); err != nil {
		t.Errorf("valid union rejected: %v", err)
	}
	bad := &UnionAll{Inputs: []Operator{s1, s2}, Cols: u.Cols, InputCols: [][]*expr.Column{{s1.Cols[0]}}}
	if err := Validate(bad); err == nil {
		t.Error("union with missing input column list accepted")
	}
	bad2 := &UnionAll{Inputs: []Operator{s1, s2}, Cols: u.Cols, InputCols: [][]*expr.Column{{s1.Cols[0]}, {s1.Cols[0]}}}
	if err := Validate(bad2); err == nil {
		t.Error("union referencing wrong input's column accepted")
	}
}

func TestValidateGroupByKeys(t *testing.T) {
	s := NewScan(itemTable())
	foreign := expr.NewColumn("zz", types.KindInt64)
	bad := &GroupBy{Input: s, Keys: []*expr.Column{foreign}}
	if err := Validate(bad); err == nil {
		t.Error("groupby with foreign key column accepted")
	}
}

func TestCountScansOf(t *testing.T) {
	tab := itemTable()
	s1, s2 := NewScan(tab), NewScan(tab)
	j := &Join{Kind: CrossJoin, Left: s1, Right: s2}
	if got := CountScansOf(j, "item"); got != 2 {
		t.Errorf("CountScansOf = %d, want 2", got)
	}
	if got := CountScansOf(j, "store"); got != 0 {
		t.Errorf("CountScansOf(store) = %d, want 0", got)
	}
	if CountOperators(j) != 3 {
		t.Errorf("CountOperators = %d, want 3", CountOperators(j))
	}
}

func TestIdentityProject(t *testing.T) {
	s := NewScan(itemTable())
	p := IdentityProject(s, s.Cols[:2])
	if len(p.Schema()) != 2 || p.Schema()[0] != s.Cols[0] {
		t.Error("IdentityProject should pass columns through by identity")
	}
	if err := Validate(p); err != nil {
		t.Errorf("IdentityProject invalid: %v", err)
	}
}
