package rescache

import (
	"testing"
)

// TestAdmissionFloorAdapts drives the cache with observed decode profiles
// and verifies the density floor tracks the workload's bytes-per-row
// instead of assuming 8: wide-row workloads lower the bar (their identity
// scans are naturally low-density), narrow-row workloads raise it.
func TestAdmissionFloorAdapts(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	if got := c.AdmissionFloor(); got != 1.0/8 {
		t.Fatalf("unobserved floor = %v, want 1/8", got)
	}

	// Wide rows: 128 scanned bytes per scanned row → floor 1/128.
	tx := c.Begin(chainPlan(t, st, 1), st)
	rows, bytes := rowsOfBytes(10, 26) // 500 result bytes
	if admitted, _ := tx.Offer(rows, bytes, CostMetrics{BytesScanned: 128000, RowsScanned: 1000}); !admitted {
		t.Fatal("dense-enough result rejected") // density 2.0 clears any floor
	}
	if got := c.AdmissionFloor(); got != 1.0/128 {
		t.Fatalf("wide-row floor = %v, want 1/128", got)
	}

	// A cheap result (density 10/500 = 0.02) the fixed 1/8 would reject now
	// clears the adapted floor (1/128 ≈ 0.0078).
	tx2 := c.Begin(chainPlan(t, st, 2), st)
	if admitted, _ := tx2.Offer(rows, bytes, CostMetrics{BytesScanned: 1280, RowsScanned: 10}); !admitted {
		t.Fatal("wide-row workload: low-density result rejected despite adapted floor")
	}
	if _, ok := tx2.Lookup(); !ok {
		t.Fatal("adapted admission not served")
	}
}

// TestAdmissionFloorCheapVsExpensive pins the discrimination the floor
// exists for: under one observed profile, a bulk identity-scan-shaped
// result is rejected while a compute-dense result of the same size is
// admitted.
func TestAdmissionFloorCheapVsExpensive(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	// Establish a narrow-row profile: 4 bytes per scanned row → floor 1/4.
	seed := c.Begin(chainPlan(t, st, 1), st)
	rows, bytes := rowsOfBytes(10, 26)
	seed.Offer(rows, bytes, CostMetrics{BytesScanned: 4000, RowsScanned: 1000, RowsProcessed: 1000})
	if got := c.AdmissionFloor(); got != 1.0/4 {
		t.Fatalf("narrow-row floor = %v, want 1/4", got)
	}

	// Cheap: density 60/500 = 0.12 — the fixed 1/8 floor would have
	// admitted this bulky result; the adapted floor refuses it.
	cheap := c.Begin(chainPlan(t, st, 2), st)
	if admitted, _ := cheap.Offer(rows, bytes, CostMetrics{BytesScanned: 240, RowsScanned: 60}); admitted {
		t.Fatal("cheap bulky result admitted under narrow-row floor")
	}
	// Expensive: density 4000/500 = 8 clears it easily.
	dense := c.Begin(chainPlan(t, st, 3), st)
	if admitted, _ := dense.Offer(rows, bytes, CostMetrics{BytesScanned: 8000, RowsScanned: 2000, RowsProcessed: 2000}); !admitted {
		t.Fatal("dense result rejected")
	}
}

// TestAdmissionFloorClamps verifies the [2, 256] bytes-per-row clamp: a
// degenerate observation window can neither open the cache to everything
// nor close it entirely.
func TestAdmissionFloorClamps(t *testing.T) {
	st := testStore(t)
	low := New(1 << 20)
	tx := low.Begin(chainPlan(t, st, 1), st)
	rows, bytes := rowsOfBytes(4, 8)
	tx.Offer(rows, bytes, CostMetrics{BytesScanned: 1, RowsScanned: 1000})
	if got := low.AdmissionFloor(); got != 1.0/2 {
		t.Fatalf("low clamp floor = %v, want 1/2", got)
	}
	high := New(1 << 20)
	tx2 := high.Begin(chainPlan(t, st, 1), st)
	tx2.Offer(rows, bytes, CostMetrics{BytesScanned: 1 << 30, RowsScanned: 1})
	if got := high.AdmissionFloor(); got != 1.0/256 {
		t.Fatalf("high clamp floor = %v, want 1/256", got)
	}
}
