// Package rescache is the semantic sub-plan result cache: the reuse tier
// above scan sharing (decoded chunks) and shared execution (concurrently
// fused plans). After an eligible sub-plan — a Scan→Filter→Project chain,
// optionally through one scalar or keyed GroupBy — completes, its
// materialized output is offered to a size-accounted store under a
// cost-weighted admission test (observed compute cost per result byte, the
// Cache-based MQO framework's density criterion), and later structurally
// equal sub-plans are served straight from cache, skipping scan, decode and
// evaluation entirely.
//
// Entries are keyed by a canonical plan fingerprint and validated against
// the scanned table's partition-set signature (ordered storage.Partition
// Seq numbers). A runtime Append to the scanned table changes the signature
// and invalidates the entry lazily on next lookup; appends to other tables
// leave it untouched. Capture is snapshot-validated: the signature is read
// before the sub-plan enumerates partitions and re-checked at offer time,
// so a mutation racing the computation can at worst produce a dead entry,
// never a stale hit.
//
// Eviction is GreedyDual-Size: each entry carries priority H = clock +
// cost/bytes; eviction removes the minimum-H entry and advances the clock
// to its H, and hits refresh H against the current clock — cheap-to-
// recompute bulky results age out first, expensive dense results persist.
package rescache

import (
	"sync"

	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// CostMetrics is the as-if-solo logical work a sub-plan performed to
// produce its result — the counters a cache hit must replay so served
// queries remain metric-identical to cold runs, and the numerator of the
// admission density test.
type CostMetrics struct {
	BytesScanned   int64
	RowsScanned    int64
	RowsProcessed  int64
	HashRows       int64
	MaskPrefixHits int64
}

// cost is the admission/eviction scalar: logical rows touched end to end.
func (c CostMetrics) cost() int64 { return c.RowsScanned + c.RowsProcessed }

// Entry is a cached, fully materialized sub-plan result.
type Entry struct {
	// Rows is the sub-plan output in emission order. Shared and immutable:
	// consumers must copy values out rather than mutate in place.
	Rows [][]types.Value
	// Cost is the logical work of the run that produced Rows.
	Cost CostMetrics
	// Bytes is the accounted size of Rows.
	Bytes int64
}

type cacheEntry struct {
	Entry
	sig string
	h   float64 // GreedyDual-Size priority: clock-at-touch + cost/bytes
}

// Cache is a size-bounded semantic result cache over one store.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	bytes   int64
	clock   float64
	entries map[string]*cacheEntry
	// obsBytes/obsRows accumulate the scanned bytes and rows of every
	// offered sub-plan, whatever the admission verdict — the observed
	// decode cost profile the adaptive admission floor is derived from.
	obsBytes int64
	obsRows  int64
}

// New creates a cache bounded to capBytes of accounted result bytes.
func New(capBytes int64) *Cache {
	return &Cache{cap: capBytes, entries: make(map[string]*cacheEntry)}
}

// For resolves the store's shared result cache, creating it bounded to
// capBytes on first use. The first caller fixes the capacity (the same
// first-caller-wins contract as the scan-share cache).
func For(st *storage.Store, capBytes int64) *Cache {
	return st.ResultCacheState(func() any { return New(capBytes) }).(*Cache)
}

// MaxEntryBytes is the largest result the cache will admit: a quarter of
// capacity, so no single entry can monopolize the budget. Captures should
// abandon materialization past this bound.
func (c *Cache) MaxEntryBytes() int64 { return c.cap / 4 }

// Stats reports the cache's current footprint.
func (c *Cache) Stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.bytes
}

// Tx is one sub-plan's cache interaction: Begin fingerprints the plan and
// snapshots the scanned table's partition-set signature (before the caller
// enumerates any partition — the ordering that makes capture race-safe),
// Lookup probes for a valid entry, and Offer proposes a computed result
// for admission.
type Tx struct {
	c     *Cache
	store *storage.Store
	fp    string
	table string
	sig   string
}

// Begin starts a cache transaction for op. It returns nil when op is not
// an eligible sub-plan shape or its table has no data.
func (c *Cache) Begin(op logical.Operator, store *storage.Store) *Tx {
	if c == nil || c.cap <= 0 {
		return nil
	}
	fp, table, ok := Fingerprint(op)
	if !ok {
		return nil
	}
	sig, ok := signature(store, table)
	if !ok {
		return nil
	}
	return &Tx{c: c, store: store, fp: fp, table: table, sig: sig}
}

// Table returns the base table the sub-plan scans.
func (tx *Tx) Table() string { return tx.table }

// Lookup returns the cached entry for this sub-plan if one exists and its
// partition-set signature still matches the live table. A signature
// mismatch deletes the stale entry (lazy invalidation) and reports a miss.
func (tx *Tx) Lookup() (*Entry, bool) {
	c := tx.c
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[tx.fp]
	if !ok {
		return nil, false
	}
	if e.sig != tx.sig {
		c.bytes -= e.Bytes
		delete(c.entries, tx.fp)
		return nil, false
	}
	// GreedyDual-Size touch: re-anchor the priority at the current clock.
	e.h = c.clock + density(e.Cost, e.Bytes)
	return &e.Entry, true
}

// density is cost per byte, the admission criterion and the GDS priority
// increment.
func density(cost CostMetrics, bytes int64) float64 {
	if bytes <= 0 {
		bytes = 1
	}
	return float64(cost.cost()) / float64(bytes)
}

// admissionFloorLocked is the minimum cost-per-byte an entry must have
// earned to be worth caching. The break-even entry is a bulk identity scan:
// it touches one logical row per stored row and re-emits every byte, so its
// density is 1/(bytes per row). Rather than hard-coding the 8-byte rows
// that ratio once assumed, the floor divides by the workload's OBSERVED
// scanned-bytes-per-scanned-row (accumulated over every offer, admitted or
// not): wide-row workloads, whose identity scans are naturally low-density,
// lower the bar proportionally, and narrow-row workloads raise it. Clamped
// to [2, 256] bytes/row so a degenerate observation window cannot open the
// cache to everything or close it entirely; until both counters have real
// observations the floor is the historical 1/8.
func (c *Cache) admissionFloorLocked() float64 {
	bpr := int64(8)
	if c.obsRows > 0 && c.obsBytes > 0 {
		bpr = c.obsBytes / c.obsRows
	}
	if bpr < 2 {
		bpr = 2
	}
	if bpr > 256 {
		bpr = 256
	}
	return 1.0 / float64(bpr)
}

// AdmissionFloor reports the current adaptive admission density floor.
func (c *Cache) AdmissionFloor() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.admissionFloorLocked()
}

// Offer proposes a computed result for admission. rows must be immutable
// from here on. bytes is the caller-accounted result size. It returns
// whether the entry was admitted and how many entry bytes were evicted to
// make room; a rejection (cost density below the threshold, result too
// large, or the table's partition set changed while the result was being
// computed) evicts nothing.
func (tx *Tx) Offer(rows [][]types.Value, bytes int64, cost CostMetrics) (admitted bool, evictedBytes int64) {
	c := tx.c
	if bytes > c.MaxEntryBytes() {
		return false, 0
	}
	// Observe this sub-plan's decode cost BEFORE deciding, so the floor
	// reflects the workload being offered, not just what was admitted.
	c.mu.Lock()
	c.obsBytes += cost.BytesScanned
	c.obsRows += cost.RowsScanned
	floor := c.admissionFloorLocked()
	c.mu.Unlock()
	if density(cost, bytes) < floor {
		return false, 0
	}
	// Snapshot validation: if the partition set changed since Begin, the
	// result may mix pre- and post-append partitions — never admit it.
	if sig, ok := signature(tx.store, tx.table); !ok || sig != tx.sig {
		return false, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.entries[tx.fp]; ok {
		c.bytes -= old.Bytes
		delete(c.entries, tx.fp)
	}
	for c.bytes+bytes > c.cap && len(c.entries) > 0 {
		evictedBytes += c.evictMinLocked()
	}
	if c.bytes+bytes > c.cap {
		return false, evictedBytes
	}
	c.entries[tx.fp] = &cacheEntry{
		Entry: Entry{Rows: rows, Cost: cost, Bytes: bytes},
		sig:   tx.sig,
		h:     c.clock + density(cost, bytes),
	}
	c.bytes += bytes
	return true, evictedBytes
}

// evictMinLocked removes the minimum-priority entry and advances the GDS
// clock to its priority, returning the evicted bytes.
func (c *Cache) evictMinLocked() int64 {
	var victimKey string
	var victim *cacheEntry
	for k, e := range c.entries {
		if victim == nil || e.h < victim.h || (e.h == victim.h && k < victimKey) {
			victimKey, victim = k, e
		}
	}
	if victim == nil {
		return 0
	}
	if victim.h > c.clock {
		c.clock = victim.h
	}
	c.bytes -= victim.Bytes
	delete(c.entries, victimKey)
	return victim.Bytes
}

// RowBytes is the accounted size of one result row: a fixed per-value
// overhead (the in-memory Value footprint) plus string payloads. Callers
// accumulate it during capture so oversized results can be abandoned
// mid-stream.
func RowBytes(row []types.Value) int64 {
	n := int64(0)
	for _, v := range row {
		n += 24 + int64(len(v.S))
	}
	return n
}
