package rescache

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

func testStore(t *testing.T) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "f",
		Columns: []catalog.Column{
			{Name: "k", Type: types.KindInt64},
			{Name: "v", Type: types.KindInt64},
			{Name: "d", Type: types.KindInt64},
		},
		PartitionColumn: "d",
	})
	cat.MustAdd(&catalog.Table{
		Name: "g",
		Columns: []catalog.Column{
			{Name: "x", Type: types.KindInt64},
		},
	})
	st := storage.NewStore(cat)
	var rows [][]types.Value
	for i := 0; i < 30; i++ {
		rows = append(rows, []types.Value{types.Int(int64(i % 5)), types.Int(int64(i)), types.Int(int64(i % 3))})
	}
	if err := st.Load("f", rows); err != nil {
		t.Fatal(err)
	}
	if err := st.Load("g", [][]types.Value{{types.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	return st
}

// chainPlan builds SELECT k FROM f WHERE v > lim as a fresh plan tree with
// fresh column identities, the way an independent query compilation would.
func chainPlan(t *testing.T, st *storage.Store, lim int64) logical.Operator {
	t.Helper()
	tab, ok := st.Catalog().Table("f")
	if !ok {
		t.Fatal("no table f")
	}
	s := logical.NewScan(tab)
	f := logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("v")), expr.Lit(types.Int(lim))))
	return &logical.Project{Input: f, Cols: []logical.Assignment{
		logical.Assign("k", expr.Ref(s.ColumnFor("k"))),
	}}
}

func rowsOfBytes(n int, payload int) ([][]types.Value, int64) {
	rows := make([][]types.Value, n)
	var b int64
	for i := range rows {
		rows[i] = []types.Value{types.String(string(make([]byte, payload)))}
		b += RowBytes(rows[i])
	}
	return rows, b
}

func TestFingerprintStableAcrossInstances(t *testing.T) {
	st := testStore(t)
	fp1, tab1, ok1 := Fingerprint(chainPlan(t, st, 7))
	fp2, tab2, ok2 := Fingerprint(chainPlan(t, st, 7))
	if !ok1 || !ok2 {
		t.Fatal("eligible chain rejected")
	}
	if fp1 != fp2 || tab1 != tab2 || tab1 != "f" {
		t.Fatalf("fingerprints diverge across instances:\n%s\n%s", fp1, fp2)
	}
	fp3, _, _ := Fingerprint(chainPlan(t, st, 8))
	if fp3 == fp1 {
		t.Fatal("different predicates share a fingerprint")
	}
}

func TestFingerprintRejectsIneligibleShapes(t *testing.T) {
	st := testStore(t)
	tab, _ := st.Catalog().Table("f")
	s := logical.NewScan(tab)
	sum := expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor("v"))}
	gb1 := &logical.GroupBy{Input: s, Keys: []*expr.Column{s.ColumnFor("k")},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("s", sum.ResultType()), Agg: sum}}}
	if _, _, ok := Fingerprint(gb1); !ok {
		t.Fatal("keyed aggregation over a scan must be eligible")
	}
	cnt := expr.AggCall{Fn: expr.AggCountStar}
	gb2 := &logical.GroupBy{Input: gb1, Keys: nil,
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("c", cnt.ResultType()), Agg: cnt}}}
	if _, _, ok := Fingerprint(gb2); ok {
		t.Fatal("double aggregation must be ineligible")
	}
	if _, _, ok := Fingerprint(&logical.Values{}); ok {
		t.Fatal("values leaf must be ineligible")
	}
}

func TestAdmissionRejectsCheapBulkyResults(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	tx := c.Begin(chainPlan(t, st, 0), st)
	if tx == nil {
		t.Fatal("Begin = nil for eligible plan")
	}
	// 100 logical rows producing 8000 result bytes: density 0.0125 < 1/8.
	rows, bytes := rowsOfBytes(100, 56)
	admitted, evicted := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 50, RowsProcessed: 50})
	if admitted || evicted != 0 {
		t.Fatalf("cheap bulky result admitted=%v evicted=%d", admitted, evicted)
	}
	// The same bytes backed by dense compute clears the bar.
	if admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 4000, RowsProcessed: 4000}); !admitted {
		t.Fatal("dense result rejected")
	}
	if _, ok := tx.Lookup(); !ok {
		t.Fatal("admitted entry not served")
	}
}

func TestAdmissionRejectsOversizedResults(t *testing.T) {
	st := testStore(t)
	c := New(1024) // MaxEntryBytes = 256
	tx := c.Begin(chainPlan(t, st, 0), st)
	rows, bytes := rowsOfBytes(20, 8) // 640 bytes > 256
	if admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 1 << 20}); admitted {
		t.Fatal("entry above MaxEntryBytes admitted")
	}
}

// TestEvictionOrderGreedyDualSize fills the cache with entries of equal
// size but different cost densities and verifies pressure evicts the
// cheapest-to-recompute entry first, and that a hit refreshes an entry's
// priority past an unhit peer's.
func TestEvictionOrderGreedyDualSize(t *testing.T) {
	st := testStore(t)
	// Four 500-byte entries fit (2000 ≤ 2048) and each clears the cap/4
	// per-entry bound (500 ≤ 512); a fifth forces eviction.
	c := New(2048)
	offer := func(lim int64, costRows int64) *Tx {
		t.Helper()
		tx := c.Begin(chainPlan(t, st, lim), st)
		rows, bytes := rowsOfBytes(10, 26) // 500 bytes each
		admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: costRows})
		if !admitted {
			t.Fatalf("offer(lim=%d) rejected", lim)
		}
		return tx
	}
	a := offer(1, 200)   // density 0.4, h = 0.4
	b := offer(2, 250)   // density 0.5, h = 0.5
	cc := offer(3, 2500) // density 5.0, h = 5.0
	d := offer(4, 275)   // density 0.55, h = 0.55
	if n, bytes := c.Stats(); n != 4 || bytes != 2000 {
		t.Fatalf("stats = %d entries %d bytes", n, bytes)
	}
	// A fifth entry forces the first eviction: the minimum-priority entry
	// (a, cheapest to recompute) goes, and the clock advances to its h=0.4.
	offer(5, 350)
	if _, ok := a.Lookup(); ok {
		t.Fatal("cheapest entry survived the first eviction")
	}
	if _, ok := cc.Lookup(); !ok {
		t.Fatal("dense entry evicted first")
	}
	// A hit refreshes b against the advanced clock: h = 0.4 + 0.5 = 0.9,
	// overtaking d (0.55). The next eviction must therefore pick d — had
	// the hit not re-anchored b's priority, b (h=0.5) would have been the
	// victim instead.
	if _, ok := b.Lookup(); !ok {
		t.Fatal("b vanished early")
	}
	offer(6, 400)
	if _, ok := d.Lookup(); ok {
		t.Fatal("d survived: hit-refresh did not re-anchor b's priority")
	}
	if _, ok := b.Lookup(); !ok {
		t.Fatal("refreshed entry b was evicted before untouched d")
	}
	if _, ok := cc.Lookup(); !ok {
		t.Fatal("dense entry evicted under pressure it should outrank")
	}
}

func TestAppendInvalidatesOnlyTouchedTable(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	tx := c.Begin(chainPlan(t, st, 5), st)
	rows, bytes := rowsOfBytes(4, 8)
	if admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 1 << 20}); !admitted {
		t.Fatal("offer rejected")
	}
	// Append to an unrelated table: entry survives.
	if err := st.Append("g", [][]types.Value{{types.Int(2)}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Begin(chainPlan(t, st, 5), st).Lookup(); !ok {
		t.Fatal("append to g invalidated an entry over f")
	}
	// Append to the scanned table: lazy invalidation on next lookup.
	if err := st.Append("f", [][]types.Value{{types.Int(1), types.Int(99), types.Int(0)}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Begin(chainPlan(t, st, 5), st).Lookup(); ok {
		t.Fatal("stale entry served after append to f")
	}
	if n, _ := c.Stats(); n != 0 {
		t.Fatalf("stale entry not deleted: %d entries", n)
	}
}

// TestOfferRejectsRacingAppend begins a transaction, mutates the table
// before the offer (the append-raced-the-computation window), and verifies
// the snapshot revalidation refuses the mixed-epoch result.
func TestOfferRejectsRacingAppend(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	tx := c.Begin(chainPlan(t, st, 5), st)
	if err := st.Append("f", [][]types.Value{{types.Int(1), types.Int(99), types.Int(0)}}); err != nil {
		t.Fatal(err)
	}
	rows, bytes := rowsOfBytes(4, 8)
	if admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 1 << 20}); admitted {
		t.Fatal("offer admitted a result computed across an append")
	}
	if n, _ := c.Stats(); n != 0 {
		t.Fatalf("rejected offer left %d entries", n)
	}
}

func TestReplaceSameFingerprint(t *testing.T) {
	st := testStore(t)
	c := New(1 << 20)
	for i := 0; i < 3; i++ {
		tx := c.Begin(chainPlan(t, st, 5), st)
		rows, bytes := rowsOfBytes(4+i, 8)
		if admitted, _ := tx.Offer(rows, bytes, CostMetrics{RowsScanned: 1 << 20}); !admitted {
			t.Fatalf("offer %d rejected", i)
		}
	}
	n, b := c.Stats()
	if n != 1 {
		t.Fatalf("same-fingerprint offers accumulated %d entries", n)
	}
	if want := int64(6 * 32); b != want {
		t.Fatalf("bytes = %d, want %d (latest entry only)", b, want)
	}
}

func TestBeginNilCases(t *testing.T) {
	st := testStore(t)
	if tx := (*Cache)(nil).Begin(chainPlan(t, st, 1), st); tx != nil {
		t.Fatal("nil cache began a transaction")
	}
	if tx := New(0).Begin(chainPlan(t, st, 1), st); tx != nil {
		t.Fatal("zero-capacity cache began a transaction")
	}
	c := New(1 << 20)
	if tx := c.Begin(&logical.Values{}, st); tx != nil {
		t.Fatal("ineligible shape began a transaction")
	}
	// A table with no data has no signature.
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{Name: "f", Columns: []catalog.Column{
		{Name: "k", Type: types.KindInt64}, {Name: "v", Type: types.KindInt64}, {Name: "d", Type: types.KindInt64},
	}})
	empty := storage.NewStore(cat)
	if tx := c.Begin(chainPlan(t, st, 1), empty); tx != nil {
		t.Fatal("empty table began a transaction")
	}
}
