package rescache

import (
	"strconv"
	"strings"
	"sync"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// Sub-plan fingerprints must be equal exactly when two sub-plans compute
// the same result from the same table. Plan trees carry per-instance
// column identities (two compilations of the same SQL never share column
// IDs), so the walker rewrites every expression onto interned canonical
// columns before rendering: scan outputs map to a column named by
// (table, column), project outputs map to a column named by their own
// canonical defining expression. Two structurally-equal sub-plans then
// render byte-identical strings through expr.Canonical regardless of which
// query instance produced them.

var (
	internMu   sync.Mutex
	internCols = make(map[string]*expr.Column)
)

// internCol returns the process-wide canonical column for a name: the same
// name always resolves to the same *expr.Column (hence the same ID), which
// is what makes rendered fingerprints stable across query instances.
func internCol(name string, k types.Kind) *expr.Column {
	internMu.Lock()
	defer internMu.Unlock()
	if c, ok := internCols[name]; ok {
		return c
	}
	c := expr.NewColumn(name, k)
	internCols[name] = c
	return c
}

// allMapped reports whether every column referenced by e is in the mapping
// (Mapping.Apply silently passes unmapped columns through, which would make
// fingerprints depend on instance IDs).
func allMapped(m expr.Mapping, e expr.Expr) bool {
	ok := true
	expr.Walk(e, func(x expr.Expr) bool {
		if ref, isRef := x.(*expr.ColumnRef); isRef {
			if _, mapped := m[ref.Col.ID]; !mapped {
				ok = false
			}
		}
		return ok
	})
	return ok
}

// mapCanonical rewrites e onto canonical columns and renders its canonical
// form. ok is false when e references a column outside the mapping.
func mapCanonical(m expr.Mapping, e expr.Expr) (string, bool) {
	if e == nil {
		return "", true
	}
	if !allMapped(m, e) {
		return "", false
	}
	return expr.Canonical(m.Apply(e)).String(), true
}

// Fingerprint renders the semantic identity of an eligible sub-plan: a
// Filter/Project chain over a single Scan, with at most one GroupBy
// (scalar or keyed) anywhere in the stack. It returns the fingerprint, the
// scanned table, and ok=false for any other shape.
func Fingerprint(op logical.Operator) (fp string, table string, ok bool) {
	var b strings.Builder
	sawGB := false
	_, table, ok = fingerprintNode(op, &b, &sawGB)
	if !ok {
		return "", "", false
	}
	return b.String(), table, true
}

func fingerprintNode(op logical.Operator, b *strings.Builder, sawGB *bool) (expr.Mapping, string, bool) {
	switch o := op.(type) {
	case *logical.Scan:
		m := expr.Identity()
		b.WriteString("scan:")
		b.WriteString(o.Table.Name)
		b.WriteByte('[')
		for i, c := range o.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(o.ColNames[i])
			m.Add(c.ID, internCol("s:"+o.Table.Name+"."+o.ColNames[i], c.Type))
		}
		b.WriteByte(']')
		return m, o.Table.Name, true

	case *logical.Filter:
		m, tab, ok := fingerprintNode(o.Input, b, sawGB)
		if !ok {
			return nil, "", false
		}
		ce, ok := mapCanonical(m, o.Cond)
		if !ok {
			return nil, "", false
		}
		b.WriteString("|filter:")
		b.WriteString(ce)
		return m, tab, true

	case *logical.Project:
		m, tab, ok := fingerprintNode(o.Input, b, sawGB)
		if !ok {
			return nil, "", false
		}
		b.WriteString("|proj:")
		for i, a := range o.Cols {
			ce, ok := mapCanonical(m, a.E)
			if !ok {
				return nil, "", false
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(ce)
			m.Add(a.Col.ID, internCol("d:"+ce, a.Col.Type))
		}
		return m, tab, true

	case *logical.GroupBy:
		if *sawGB {
			return nil, "", false
		}
		*sawGB = true
		m, tab, ok := fingerprintNode(o.Input, b, sawGB)
		if !ok {
			return nil, "", false
		}
		b.WriteString("|gb:[")
		for i, k := range o.Keys {
			if _, mapped := m[k.ID]; !mapped {
				return nil, "", false
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(m.Resolve(k).String())
		}
		b.WriteString("]aggs:[")
		for i, a := range o.Aggs {
			if !allMapped(m, a.Agg.Arg) || !allMapped(m, a.Agg.Mask) {
				return nil, "", false
			}
			mapped := m.ApplyAgg(a.Agg)
			canon := expr.AggCall{
				Fn:       mapped.Fn,
				Arg:      expr.Canonical(mapped.Arg),
				Mask:     expr.Canonical(mapped.Mask),
				Distinct: mapped.Distinct,
			}
			s := canon.String()
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(s)
			m.Add(a.Col.ID, internCol("a:"+s, a.Col.Type))
		}
		b.WriteByte(']')
		return m, tab, true
	}
	return nil, "", false
}

// signature renders the table's current partition-set version: its ordered
// partition Seq numbers. Two signatures are equal exactly when the table's
// partition set is unchanged, so entries survive appends to other tables.
// ok is false when the table has no data loaded.
func signature(st *storage.Store, table string) (string, bool) {
	seqs, ok := st.PartitionSeqs(table)
	if !ok {
		return "", false
	}
	var b strings.Builder
	for _, s := range seqs {
		b.WriteString(strconv.FormatInt(s, 36))
		b.WriteByte(',')
	}
	return b.String(), true
}
