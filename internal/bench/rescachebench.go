package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
	"repro/internal/types"
)

// RescacheOptions configures the semantic result-cache comparison: the same
// repeated-dashboard workload — a fixed query set refreshed wave after wave
// over one store — once with the cache off and once on, followed by an
// append that invalidates the store_sales entries and two more cached waves
// showing hits drop and then recover.
type RescacheOptions struct {
	Scale float64
	Seed  int64
	// Waves is how many times the dashboard refreshes in each mode.
	Waves       int
	Parallelism int
	BatchSize   int
	// CacheBytes bounds the result cache for the cached runs.
	CacheBytes int64
}

// DefaultRescacheOptions models the paper's repeated-dashboards motivation:
// six refreshes of a five-panel dashboard.
func DefaultRescacheOptions() RescacheOptions {
	return RescacheOptions{Scale: 1.0, Seed: 42, Waves: 6, Parallelism: 4, BatchSize: 1024, CacheBytes: 32 << 20}
}

// rescacheQuery is one dashboard panel.
type rescacheQuery struct {
	Name string
	SQL  string
}

// rescacheDashboard is the repeated workload: q09-style quantity buckets
// and a per-store rollup over store_sales (invalidated by the append), plus
// one web_sales panel whose cache entry must survive it.
var rescacheDashboard = []rescacheQuery{
	{"bucket_lo", "SELECT COUNT(*) AS cnt, AVG(ss_ext_discount_amt) AS disc, AVG(ss_net_profit) AS prof FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20"},
	{"bucket_mid", "SELECT COUNT(*) AS cnt, AVG(ss_ext_discount_amt) AS disc, AVG(ss_net_profit) AS prof FROM store_sales WHERE ss_quantity BETWEEN 21 AND 40"},
	{"bucket_hi", "SELECT COUNT(*) AS cnt, AVG(ss_ext_discount_amt) AS disc, AVG(ss_net_profit) AS prof FROM store_sales WHERE ss_quantity BETWEEN 41 AND 60"},
	{"store_rollup", "SELECT ss_store_sk, COUNT(*) AS cnt, SUM(ss_net_profit) AS prof FROM store_sales GROUP BY ss_store_sk"},
	{"web_revenue", "SELECT COUNT(*) AS cnt, SUM(ws_list_price) AS rev FROM web_sales WHERE ws_quantity > 50"},
}

// RescacheWave is one dashboard refresh's cache activity.
type RescacheWave struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	BytesDecoded int64 `json:"bytes_decoded"`
}

// RescacheComparison is the BENCH_rescache.json payload.
type RescacheComparison struct {
	Scale       float64 `json:"scale"`
	Waves       int     `json:"waves"`
	Parallelism int     `json:"parallelism"`
	BatchSize   int     `json:"batch_size"`
	CacheBytes  int64   `json:"cache_bytes"`

	// ColdBytesDecoded / CachedBytesDecoded sum the physical chunk-decode
	// work over all pre-append waves; the dashboard's logical BytesScanned
	// is identical in every run.
	ColdBytesDecoded   int64   `json:"cold_bytes_decoded"`
	CachedBytesDecoded int64   `json:"cached_bytes_decoded"`
	DecodeReduction    float64 `json:"decode_reduction"`
	ColdWallMS         float64 `json:"cold_wall_ms"`
	CachedWallMS       float64 `json:"cached_wall_ms"`
	Speedup            float64 `json:"speedup"`

	// CachedWaves is the per-refresh cache story: wave 0 is all misses,
	// later waves all hits.
	CachedWaves []RescacheWave `json:"cached_waves"`
	// PostAppendWaves shows invalidation working: the first wave after the
	// append loses its store_sales hits (the web_sales panel keeps its
	// entry), the second recovers them.
	PostAppendWaves []RescacheWave `json:"post_append_waves"`

	AdmissionRejects int64 `json:"admission_rejects"`
	ServedBytes      int64 `json:"served_bytes"`
	// AllIdentical is true when every run in both modes — including the
	// post-append waves, checked against a recomputed reference — returned
	// rows byte-identical to the cache-off reference with the same
	// BytesScanned.
	AllIdentical bool `json:"all_identical"`
}

// RunRescacheComparison measures the repeated-dashboard workload with the
// result cache off and on against one store, verifying every run against a
// cache-off reference, then appends rows to store_sales and verifies the
// cached engine recomputes exactly and re-admits.
func RunRescacheComparison(opts RescacheOptions) (*RescacheComparison, error) {
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Waves <= 1 {
		opts.Waves = 6
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if opts.CacheBytes <= 0 {
		opts.CacheBytes = 32 << 20
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	base := engine.Config{Parallelism: opts.Parallelism, BatchSize: opts.BatchSize}
	ref := engine.OpenWithStore(st, base)
	cmp := &RescacheComparison{
		Scale: opts.Scale, Waves: opts.Waves, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, CacheBytes: opts.CacheBytes, AllIdentical: true,
	}

	oracle := func() ([]string, []int64, error) {
		rows := make([]string, len(rescacheDashboard))
		scanned := make([]int64, len(rescacheDashboard))
		for i, q := range rescacheDashboard {
			res, err := ref.Query(q.SQL)
			if err != nil {
				return nil, nil, fmt.Errorf("bench: %s (reference): %w", q.Name, err)
			}
			rows[i] = renderRows(res.Rows)
			scanned[i] = res.Metrics.Storage.BytesScanned
		}
		return rows, scanned, nil
	}
	wantRows, wantScanned, err := oracle()
	if err != nil {
		return nil, err
	}

	runWave := func(eng *engine.Engine) (RescacheWave, time.Duration, error) {
		var w RescacheWave
		start := time.Now()
		for i, q := range rescacheDashboard {
			res, err := eng.Query(q.SQL)
			if err != nil {
				return w, 0, fmt.Errorf("bench: %s: %w", q.Name, err)
			}
			if renderRows(res.Rows) != wantRows[i] || res.Metrics.Storage.BytesScanned != wantScanned[i] {
				cmp.AllIdentical = false
			}
			w.Hits += res.Metrics.ResultCache.Hits
			w.Misses += res.Metrics.ResultCache.Misses
			w.BytesDecoded += res.Metrics.Share.BytesDecoded
			cmp.AdmissionRejects += res.Metrics.ResultCache.AdmissionRejects
			cmp.ServedBytes += res.Metrics.ResultCache.ServedBytes
		}
		return w, time.Since(start), nil
	}

	cold := engine.OpenWithStore(st, base)
	for i := 0; i < opts.Waves; i++ {
		w, wall, err := runWave(cold)
		if err != nil {
			return nil, err
		}
		cmp.ColdBytesDecoded += w.BytesDecoded
		cmp.ColdWallMS += float64(wall) / float64(time.Millisecond)
	}

	warmCfg := base
	warmCfg.ResultCacheBytes = opts.CacheBytes
	warm := engine.OpenWithStore(st, warmCfg)
	for i := 0; i < opts.Waves; i++ {
		w, wall, err := runWave(warm)
		if err != nil {
			return nil, err
		}
		cmp.CachedBytesDecoded += w.BytesDecoded
		cmp.CachedWallMS += float64(wall) / float64(time.Millisecond)
		cmp.CachedWaves = append(cmp.CachedWaves, w)
	}
	if cmp.CachedBytesDecoded > 0 {
		cmp.DecodeReduction = float64(cmp.ColdBytesDecoded) / float64(cmp.CachedBytesDecoded)
	}
	if cmp.CachedWallMS > 0 {
		cmp.Speedup = cmp.ColdWallMS / cmp.CachedWallMS
	}

	// The append invalidates the four store_sales panels; the web_sales
	// panel's entry survives. Both the reference and the cached engine see
	// the same new data, so the identity check keeps holding.
	if err := st.Append("store_sales", appendedSales(opts.Seed)); err != nil {
		return nil, err
	}
	if wantRows, wantScanned, err = oracle(); err != nil {
		return nil, err
	}
	for i := 0; i < 2; i++ {
		w, _, err := runWave(warm)
		if err != nil {
			return nil, err
		}
		cmp.PostAppendWaves = append(cmp.PostAppendWaves, w)
	}
	return cmp, nil
}

// appendedSales builds a small deterministic batch of new store_sales rows
// landing in two fresh date partitions.
func appendedSales(seed int64) [][]types.Value {
	var rows [][]types.Value
	for i := 0; i < 64; i++ {
		date := int64(2450815 + 1900 + i%2) // past the generated calendar: always fresh partitions
		list := 1 + float64((seed+int64(i)*37)%200)
		rows = append(rows, []types.Value{
			types.Int(date),
			types.Int(int64(i % 1440)),
			types.Int(int64(1 + i%50)),
			types.Int(int64(1 + i%100)),
			types.Int(int64(1 + i%10)),
			types.Int(int64(1 + i%20)),
			types.Int(int64(1 + i%5)),
			types.Int(int64(1 + i%100)),
			types.Float(list),
			types.Float(list * 0.8),
			types.Float(list * 0.05),
			types.Float(list * 2),
			types.Float(list * 0.02),
			types.Float(list*0.8 - list*0.7),
		})
	}
	return rows
}

// WriteJSON emits the comparison as indented JSON (the BENCH_rescache.json
// artifact).
func (c *RescacheComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *RescacheComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Semantic result cache (scale=%.2f, %d waves x %d panels, parallelism=%d, cache=%d MB)\n",
		c.Scale, c.Waves, len(rescacheDashboard), c.Parallelism, c.CacheBytes>>20)
	fmt.Fprintf(out, "decode bytes: cold %.2f MB, cached %.2f MB (%.2fx reduction)\n",
		float64(c.ColdBytesDecoded)/1e6, float64(c.CachedBytesDecoded)/1e6, c.DecodeReduction)
	fmt.Fprintf(out, "wall: cold %.1f ms, cached %.1f ms (%.2fx speedup)\n", c.ColdWallMS, c.CachedWallMS, c.Speedup)
	fmt.Fprintln(out, "wave | hits | misses | decoded")
	for i, w := range c.CachedWaves {
		fmt.Fprintf(out, "%4d | %4d | %6d | %7.2f MB\n", i, w.Hits, w.Misses, float64(w.BytesDecoded)/1e6)
	}
	for i, w := range c.PostAppendWaves {
		fmt.Fprintf(out, "+ap%d | %4d | %6d | %7.2f MB\n", i, w.Hits, w.Misses, float64(w.BytesDecoded)/1e6)
	}
	fmt.Fprintf(out, "admission rejects %d, served %.2f MB, identical=%v\n",
		c.AdmissionRejects, float64(c.ServedBytes)/1e6, c.AllIdentical)
}
