package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/engine"
	"repro/internal/catalog"
	"repro/internal/storage"
	"repro/internal/types"
)

// SkipOptions configures the data-skipping comparison: a clustered fact
// table (per-partition key ranges are disjoint, the layout zone maps are
// built for) queried by a selective wave and a join-heavy wave, each query
// run with skipping on (the default) and with Config.NoSkip, solo and
// under mask-family fusion.
type SkipOptions struct {
	// Rows is the fact-table row count; partitions hold skipPartRows rows
	// each, so the partition count scales with it.
	Rows int
	Seed int64
	// Iterations is how many timed runs each side gets; latencies keep the
	// minimum.
	Iterations  int
	Parallelism int
	BatchSize   int
}

// DefaultSkipOptions sizes the store so pruning has room to matter: 200
// partitions of 1000 rows, of which the selective queries need a handful.
func DefaultSkipOptions() SkipOptions {
	return SkipOptions{
		Rows: 200000, Seed: 42, Iterations: 3,
		Parallelism: 4, BatchSize: 1024,
	}
}

// skipPartRows is the clustered store's partition size. It stays under the
// sideways bloom's 1024-value enumeration span so integer probe chunks
// with no matching build key are prunable by the bloom, not just by range.
const skipPartRows = 1000

// skipBenchQuery is one benchmarked query.
type skipBenchQuery struct {
	Name string
	Wave string // "selective" or "join"
	SQL  string
}

// skipBenchQueries derives the two waves from the store size. Selective
// queries carry zone-map-prunable predicates over the clustered key and
// price; join queries probe the fact table against dimensions whose key
// sets leave most fact partitions without a possible match.
func skipBenchQueries(rows int) []skipBenchQuery {
	lo := rows / 2
	tail := rows - 4*skipPartRows
	return []skipBenchQuery{
		{"narrow-range", "selective", fmt.Sprintf(
			"SELECT ev_k, ev_qty FROM ev WHERE ev_k BETWEEN %d AND %d", lo, lo+2*skipPartRows)},
		{"point-agg", "selective", fmt.Sprintf(
			"SELECT COUNT(*) AS c, SUM(ev_qty) AS s FROM ev WHERE ev_k = %d", lo+417)},
		{"price-tail", "selective", fmt.Sprintf(
			"SELECT ev_k FROM ev WHERE ev_price >= %d.0", tail/4)},
		{"top-k", "selective", fmt.Sprintf(
			"SELECT ev_k, ev_qty FROM ev WHERE ev_k >= %d ORDER BY ev_qty DESC LIMIT 10", tail)},
		{"join-narrow", "join",
			"SELECT ev_k, dn_k FROM ev JOIN dn ON ev_k = dn_k"},
		{"join-narrow-agg", "join",
			"SELECT COUNT(*) AS c, SUM(ev_qty) AS s FROM ev JOIN dn ON ev_k = dn_k"},
		{"join-sparse", "join",
			"SELECT ev_k, ds_k FROM ev JOIN ds ON ev_k = ds_k"},
	}
}

// newSkipStore builds the clustered store: ev_k is the global row index
// (each partition owns a disjoint 1000-value range), ev_price tracks it,
// ev_qty cycles so aggregates and sorts have work. Dimension dn's keys all
// land inside one fact partition's range (min/max sideways pruning);
// dimension ds spreads one key into every fourth partition, so its
// min/max span covers the whole table and only the bloom refinement can
// prune the other three quarters.
func newSkipStore(rows int) (*storage.Store, error) {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "ev",
		Columns: []catalog.Column{
			{Name: "ev_k", Type: types.KindInt64},
			{Name: "ev_qty", Type: types.KindInt64},
			{Name: "ev_price", Type: types.KindFloat64},
			{Name: "ev_part", Type: types.KindInt64},
		},
		PartitionColumn: "ev_part",
	})
	cat.MustAdd(&catalog.Table{
		Name: "dn",
		Columns: []catalog.Column{
			{Name: "dn_k", Type: types.KindInt64},
			{Name: "dn_name", Type: types.KindString},
		},
		Keys: [][]string{{"dn_k"}},
	})
	cat.MustAdd(&catalog.Table{
		Name: "ds",
		Columns: []catalog.Column{
			{Name: "ds_k", Type: types.KindInt64},
			{Name: "ds_name", Type: types.KindString},
		},
		Keys: [][]string{{"ds_k"}},
	})
	st := storage.NewStore(cat)
	facts := make([][]types.Value, 0, rows)
	for k := 0; k < rows; k++ {
		facts = append(facts, []types.Value{
			types.Int(int64(k)),
			types.Int(int64(k % 100)),
			types.Float(float64(k) / 4),
			types.Int(int64(k / skipPartRows)),
		})
	}
	if err := st.Load("ev", facts); err != nil {
		return nil, err
	}
	var narrow [][]types.Value
	base := (rows / 2 / skipPartRows) * skipPartRows
	for k := base; k < base+skipPartRows; k += 13 {
		narrow = append(narrow, []types.Value{types.Int(int64(k)), types.String("n")})
	}
	if err := st.Load("dn", narrow); err != nil {
		return nil, err
	}
	var sparse [][]types.Value
	for p := 0; p*skipPartRows < rows; p += 4 {
		sparse = append(sparse, []types.Value{types.Int(int64(p*skipPartRows + 500)), types.String("s")})
	}
	if err := st.Load("ds", sparse); err != nil {
		return nil, err
	}
	return st, nil
}

// SkipModeReport compares skipping on vs off for one query under one
// fusion setting.
type SkipModeReport struct {
	Fusion bool `json:"fusion"`
	// Latencies are minimums over the iterations, in milliseconds.
	NoSkipMS float64 `json:"noskip_ms"`
	SkipMS   float64 `json:"skip_ms"`
	Speedup  float64 `json:"speedup"`
	// Decoded bytes are the physical decode work (Metrics.Share.BytesDecoded);
	// a pruned partition's chunks never decode, so the reduction is the
	// benchmark's headline.
	NoSkipDecodedBytes int64   `json:"noskip_decoded_bytes"`
	SkipDecodedBytes   int64   `json:"skip_decoded_bytes"`
	DecodeReduction    float64 `json:"decode_reduction"`
	// Skip counters from the skipping run.
	ChunksPruned     int64 `json:"chunks_pruned"`
	PartitionsPruned int64 `json:"partitions_pruned"`
	BloomPruned      int64 `json:"bloom_pruned"`
	PrunedBytes      int64 `json:"pruned_bytes"`
	// Identical is true when the skipping run returned rows byte-identical
	// to the NoSkip run with the same BytesScanned and RowsProcessed.
	Identical bool `json:"identical_results"`
}

// SkipQueryReport is one query's results across both fusion settings.
type SkipQueryReport struct {
	Name  string           `json:"name"`
	Wave  string           `json:"wave"`
	SQL   string           `json:"sql"`
	Modes []SkipModeReport `json:"modes"`
}

// SkipComparison is the BENCH_skip.json payload.
type SkipComparison struct {
	Rows        int `json:"rows"`
	Partitions  int `json:"partitions"`
	Parallelism int `json:"parallelism"`
	BatchSize   int `json:"batch_size"`
	Iterations  int `json:"iterations"`

	Queries []SkipQueryReport `json:"queries"`

	// Per-wave decode-bytes reductions (NoSkip sum / skip sum over both
	// fusion settings) and wall-clock speedups (latency sums likewise).
	SelectiveDecodeReduction float64 `json:"selective_decode_reduction"`
	JoinDecodeReduction      float64 `json:"join_decode_reduction"`
	SelectiveSpeedup         float64 `json:"selective_speedup"`
	JoinSpeedup              float64 `json:"join_speedup"`

	AllIdentical bool `json:"all_identical"`
}

// RunSkipComparison measures zone-map and sideways-filter pruning against
// the NoSkip baseline over one clustered store. Both sides share every
// other configuration knob, so the only difference is whether chunks whose
// zone maps (or the join's build-key footprint) exclude the predicate are
// decoded or skipped — which the result contract says must be unobservable
// in rows, BytesScanned and RowsProcessed.
func RunSkipComparison(opts SkipOptions) (*SkipComparison, error) {
	if opts.Rows <= 0 {
		opts.Rows = 200000
	}
	// Round to whole partitions so the query derivations line up.
	opts.Rows -= opts.Rows % skipPartRows
	if opts.Rows < 8*skipPartRows {
		opts.Rows = 8 * skipPartRows
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	st, err := newSkipStore(opts.Rows)
	if err != nil {
		return nil, err
	}
	queries := skipBenchQueries(opts.Rows)

	cmp := &SkipComparison{
		Rows: opts.Rows, Partitions: opts.Rows / skipPartRows,
		Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		Iterations:   opts.Iterations,
		AllIdentical: true,
	}
	type sideState struct {
		lat       time.Duration
		rows      string
		scanned   int64
		processed int64
		decoded   int64
		skip      engine.SkipMetrics
	}
	waveLat := map[string][2]time.Duration{} // wave -> [noskip, skip] latency sums
	waveDecoded := map[string][2]int64{}     // wave -> [noskip, skip] decode-byte sums
	for _, q := range queries {
		qr := SkipQueryReport{Name: q.Name, Wave: q.Wave, SQL: q.SQL}
		for _, fusion := range []bool{false, true} {
			var sides [2]*sideState // [noskip, skip]
			for si, noSkip := range []bool{true, false} {
				eng := engine.OpenWithStore(st, engine.Config{
					EnableFusion: fusion, Parallelism: opts.Parallelism,
					BatchSize: opts.BatchSize, NoSkip: noSkip,
				})
				// One unmeasured warmup.
				if _, err := eng.Query(q.SQL); err != nil {
					return nil, fmt.Errorf("bench: %s (fusion=%v, noskip=%v): %w", q.Name, fusion, noSkip, err)
				}
				s := &sideState{}
				for i := 0; i < opts.Iterations; i++ {
					res, err := eng.Query(q.SQL)
					if err != nil {
						return nil, fmt.Errorf("bench: %s (fusion=%v, noskip=%v): %w", q.Name, fusion, noSkip, err)
					}
					if i == 0 || res.Metrics.Elapsed < s.lat {
						s.lat = res.Metrics.Elapsed
					}
					s.rows = renderRows(res.Rows)
					s.scanned = res.Metrics.Storage.BytesScanned
					s.processed = res.Metrics.RowsProcessed
					s.decoded = res.Metrics.Share.BytesDecoded
					s.skip = res.Metrics.Skip
				}
				sides[si] = s
			}
			noskip, skip := sides[0], sides[1]
			mr := SkipModeReport{
				Fusion:             fusion,
				NoSkipMS:           float64(noskip.lat) / float64(time.Millisecond),
				SkipMS:             float64(skip.lat) / float64(time.Millisecond),
				NoSkipDecodedBytes: noskip.decoded,
				SkipDecodedBytes:   skip.decoded,
				ChunksPruned:       skip.skip.ChunksPruned,
				PartitionsPruned:   skip.skip.PartitionsPruned,
				BloomPruned:        skip.skip.BloomPruned,
				PrunedBytes:        skip.skip.PrunedBytes,
				Identical: skip.rows == noskip.rows &&
					skip.scanned == noskip.scanned &&
					skip.processed == noskip.processed,
			}
			if skip.lat > 0 {
				mr.Speedup = float64(noskip.lat) / float64(skip.lat)
			}
			if skip.decoded > 0 {
				mr.DecodeReduction = float64(noskip.decoded) / float64(skip.decoded)
			}
			if !mr.Identical {
				cmp.AllIdentical = false
			}
			lat := waveLat[q.Wave]
			lat[0] += noskip.lat
			lat[1] += skip.lat
			waveLat[q.Wave] = lat
			dec := waveDecoded[q.Wave]
			dec[0] += noskip.decoded
			dec[1] += skip.decoded
			waveDecoded[q.Wave] = dec
			qr.Modes = append(qr.Modes, mr)
		}
		cmp.Queries = append(cmp.Queries, qr)
	}
	if d := waveDecoded["selective"]; d[1] > 0 {
		cmp.SelectiveDecodeReduction = float64(d[0]) / float64(d[1])
	}
	if d := waveDecoded["join"]; d[1] > 0 {
		cmp.JoinDecodeReduction = float64(d[0]) / float64(d[1])
	}
	if l := waveLat["selective"]; l[1] > 0 {
		cmp.SelectiveSpeedup = float64(l[0]) / float64(l[1])
	}
	if l := waveLat["join"]; l[1] > 0 {
		cmp.JoinSpeedup = float64(l[0]) / float64(l[1])
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_skip.json
// artifact).
func (c *SkipComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *SkipComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Data-skipping comparison (%d rows, %d partitions, parallelism=%d, batch=%d)\n",
		c.Rows, c.Partitions, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query           | fused | noskip    | skip      | speedup | decode red. | parts | bloom | identical")
	fmt.Fprintln(out, "----------------+-------+-----------+-----------+---------+-------------+-------+-------+----------")
	for _, q := range c.Queries {
		for _, m := range q.Modes {
			fmt.Fprintf(out, "%-15s | %-5v | %7.2fms | %7.2fms | %6.2fx | %10.2fx | %5d | %5d | %v\n",
				q.Name, m.Fusion, m.NoSkipMS, m.SkipMS, m.Speedup, m.DecodeReduction,
				m.PartitionsPruned, m.BloomPruned, m.Identical)
		}
	}
	fmt.Fprintf(out, "selective wave: %.2fx decode reduction, %.2fx speedup; join wave: %.2fx decode reduction, %.2fx speedup; all identical: %v\n",
		c.SelectiveDecodeReduction, c.SelectiveSpeedup,
		c.JoinDecodeReduction, c.JoinSpeedup, c.AllIdentical)
}
