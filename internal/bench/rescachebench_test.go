package bench

import (
	"strings"
	"testing"
)

// TestRunRescacheComparisonSmoke runs the result-cache comparison at toy
// scale: every run in both modes must verify against the cache-off
// reference, the repeat waves must actually hit, and the post-append waves
// must show hits dropping (to the surviving web_sales panel) and then
// recovering — otherwise the benchmark is measuring nothing.
func TestRunRescacheComparisonSmoke(t *testing.T) {
	cmp, err := RunRescacheComparison(RescacheOptions{
		Scale: 0.05, Seed: 7, Waves: 3, Parallelism: 2, BatchSize: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.AllIdentical {
		t.Fatalf("cached runs diverged from the cache-off reference: %+v", cmp)
	}
	if len(cmp.CachedWaves) != 3 || len(cmp.PostAppendWaves) != 2 {
		t.Fatalf("got %d cached + %d post-append waves", len(cmp.CachedWaves), len(cmp.PostAppendWaves))
	}
	if cmp.CachedWaves[0].Hits != 0 || cmp.CachedWaves[1].Hits == 0 || cmp.CachedWaves[2].Hits == 0 {
		t.Fatalf("repeat waves did not hit: %+v", cmp.CachedWaves)
	}
	first, second := cmp.PostAppendWaves[0], cmp.PostAppendWaves[1]
	if first.Hits >= cmp.CachedWaves[1].Hits {
		t.Fatalf("append did not drop hits: %+v vs steady-state %+v", first, cmp.CachedWaves[1])
	}
	if first.Misses == 0 {
		t.Fatalf("post-append wave recomputed nothing: %+v", first)
	}
	if second.Hits != cmp.CachedWaves[1].Hits {
		t.Fatalf("hits did not recover after re-admission: %+v vs steady-state %+v", second, cmp.CachedWaves[1])
	}
	if cmp.ColdBytesDecoded <= cmp.CachedBytesDecoded {
		t.Fatalf("cache saved no decode work: cold %d vs cached %d", cmp.ColdBytesDecoded, cmp.CachedBytesDecoded)
	}
	var tbl strings.Builder
	cmp.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "identical=true") {
		t.Fatalf("table rendering missing identity line:\n%s", tbl.String())
	}
}
