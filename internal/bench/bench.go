// Package bench is the evaluation harness: it runs the TPC-DS workload
// against a baseline engine (fusion off) and an instrumented engine (fusion
// on) over the same store, and renders the paper's evaluation artifacts —
// Figure 1 (latency improvement per selected query), Figure 2 (fraction of
// data read per selected query), and the §V whole-workload aggregates
// (overall improvement, mean improvement on changed-plan queries, maximum
// speedup).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// QueryReport compares one query's baseline and fused runs.
type QueryReport struct {
	Name     string
	Affected bool
	Pattern  string

	BaselineLatency time.Duration
	FusedLatency    time.Duration
	BaselineBytes   int64
	FusedBytes      int64
	BaselineCPU     int64 // rows processed across operators
	FusedCPU        int64
	BaselineHash    int64 // rows held in hash state (memory proxy)
	FusedHash       int64
	RulesFired      []string
	PlanChanged     bool

	// Spooling comparator (§I): latency, base-table bytes, and intermediate
	// write/read volume with EnableSpooling instead of fusion.
	SpoolLatency time.Duration
	SpoolBytes   int64
	SpoolWritten int64
	SpoolRead    int64
}

// Speedup is baseline latency / fused latency.
func (r *QueryReport) Speedup() float64 {
	if r.FusedLatency <= 0 {
		return 1
	}
	return float64(r.BaselineLatency) / float64(r.FusedLatency)
}

// LatencyImprovement is the fractional latency reduction (paper Figure 1).
func (r *QueryReport) LatencyImprovement() float64 {
	if r.BaselineLatency <= 0 {
		return 0
	}
	return 1 - float64(r.FusedLatency)/float64(r.BaselineLatency)
}

// BytesFraction is fused bytes / baseline bytes (paper Figure 2 reports the
// fraction of input data read compared to the baseline).
func (r *QueryReport) BytesFraction() float64 {
	if r.BaselineBytes <= 0 {
		return 1
	}
	return float64(r.FusedBytes) / float64(r.BaselineBytes)
}

// CPUReduction is the fractional reduction in rows processed.
func (r *QueryReport) CPUReduction() float64 {
	if r.BaselineCPU <= 0 {
		return 0
	}
	return 1 - float64(r.FusedCPU)/float64(r.BaselineCPU)
}

// WorkloadReport aggregates the full run.
type WorkloadReport struct {
	Scale   float64
	Queries []QueryReport
}

// Overall returns the whole-workload latency improvement (the paper's
// "improves the overall execution time of the 99-query workload by 14%").
func (w *WorkloadReport) Overall() float64 {
	var base, fused time.Duration
	for _, q := range w.Queries {
		base += q.BaselineLatency
		fused += q.FusedLatency
	}
	if base <= 0 {
		return 0
	}
	return 1 - float64(fused)/float64(base)
}

// AffectedMean returns the mean latency improvement over queries whose
// plans changed (the paper's "60% improvement in performance on average").
func (w *WorkloadReport) AffectedMean() float64 {
	var sum float64
	n := 0
	for _, q := range w.Queries {
		if q.PlanChanged {
			sum += q.LatencyImprovement()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxSpeedup returns the largest per-query speedup (paper: "some queries
// improving performance over 6 times").
func (w *WorkloadReport) MaxSpeedup() float64 {
	best := 1.0
	for _, q := range w.Queries {
		if s := q.Speedup(); s > best {
			best = s
		}
	}
	return best
}

// Options configures a workload run.
type Options struct {
	Scale float64
	Seed  int64
	// Iterations per query per engine; the minimum latency is reported
	// (steadiest estimator for in-process runs).
	Iterations int
	// Queries restricts the run to the named queries (nil = all).
	Queries []string
}

// DefaultOptions is suitable for regenerating the figures in a few seconds.
func DefaultOptions() Options {
	return Options{Scale: 0.2, Seed: 42, Iterations: 3}
}

// Run executes the workload and returns the comparison report.
func Run(opts Options) (*WorkloadReport, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 0.2
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	base := engine.OpenWithStore(st, engine.Config{EnableFusion: false})
	fused := engine.OpenWithStore(st, engine.Config{EnableFusion: true})
	spool := engine.OpenWithStore(st, engine.Config{EnableSpooling: true})

	var queries []tpcds.Query
	if len(opts.Queries) == 0 {
		queries = tpcds.Queries()
	} else {
		for _, name := range opts.Queries {
			q, ok := tpcds.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", name)
			}
			queries = append(queries, q)
		}
	}

	report := &WorkloadReport{Scale: opts.Scale}
	for _, q := range queries {
		qr, err := RunQuery(base, fused, q, opts.Iterations)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", q.Name, err)
		}
		if q.Affected {
			for i := 0; i < opts.Iterations; i++ {
				res, err := spool.Query(q.SQL)
				if err != nil {
					return nil, fmt.Errorf("bench: %s (spool): %w", q.Name, err)
				}
				if i == 0 || res.Metrics.Elapsed < qr.SpoolLatency {
					qr.SpoolLatency = res.Metrics.Elapsed
				}
				qr.SpoolBytes = res.Metrics.Storage.BytesScanned
				qr.SpoolWritten = res.Metrics.SpoolBytesWritten
				qr.SpoolRead = res.Metrics.SpoolBytesRead
			}
		}
		report.Queries = append(report.Queries, *qr)
	}
	return report, nil
}

// WriteSpoolComparison renders the §I fusion-vs-spooling comparison for the
// selected queries: fusion avoids both the duplicate evaluation *and* the
// intermediate write/read traffic that spooling pays; spooling covers only
// syntactically identical duplicates (it leaves q09/q28 untouched).
func (w *WorkloadReport) WriteSpoolComparison(out io.Writer) {
	fmt.Fprintln(out, "Fusion vs spooling (the paper's §I comparator) — selected queries")
	fmt.Fprintln(out, "query | baseline | fused    | spooled  | spool write | spool read")
	fmt.Fprintln(out, "------+----------+----------+----------+-------------+-----------")
	for _, q := range w.selected() {
		spooled := "   n/a"
		if q.SpoolLatency > 0 {
			spooled = fmtDur(q.SpoolLatency)
		}
		fmt.Fprintf(out, "%-5s | %8s | %8s | %8s | %11d | %10d\n",
			q.Name, fmtDur(q.BaselineLatency), fmtDur(q.FusedLatency), spooled,
			q.SpoolWritten, q.SpoolRead)
	}
}

// RunQuery measures one query on both engines.
func RunQuery(base, fused *engine.Engine, q tpcds.Query, iterations int) (*QueryReport, error) {
	qr := &QueryReport{Name: q.Name, Affected: q.Affected, Pattern: q.Pattern}
	for i := 0; i < iterations; i++ {
		res, err := base.Query(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w", err)
		}
		if i == 0 || res.Metrics.Elapsed < qr.BaselineLatency {
			qr.BaselineLatency = res.Metrics.Elapsed
		}
		qr.BaselineBytes = res.Metrics.Storage.BytesScanned
		qr.BaselineCPU = res.Metrics.RowsProcessed
		qr.BaselineHash = res.Metrics.HashRows
	}
	for i := 0; i < iterations; i++ {
		res, err := fused.Query(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("fused: %w", err)
		}
		if i == 0 || res.Metrics.Elapsed < qr.FusedLatency {
			qr.FusedLatency = res.Metrics.Elapsed
		}
		qr.FusedBytes = res.Metrics.Storage.BytesScanned
		qr.FusedCPU = res.Metrics.RowsProcessed
		qr.FusedHash = res.Metrics.HashRows
		qr.RulesFired = res.RulesFired
	}
	qr.PlanChanged = len(qr.RulesFired) > 0
	return qr, nil
}

// selectedOrder is the x-axis order of the paper's figures.
var selectedOrder = []string{"q01", "q09", "q23", "q28", "q30", "q65", "q88", "q95"}

func (w *WorkloadReport) selected() []QueryReport {
	byName := map[string]QueryReport{}
	for _, q := range w.Queries {
		byName[q.Name] = q
	}
	var out []QueryReport
	for _, name := range selectedOrder {
		if q, ok := byName[name]; ok {
			out = append(out, q)
		}
	}
	return out
}

// WriteFigure1 renders the Figure 1 analogue: latency improvement for the
// selected queries, as speedup factor and percentage.
func (w *WorkloadReport) WriteFigure1(out io.Writer) {
	fmt.Fprintln(out, "Figure 1 — Latency improvement for selected queries")
	fmt.Fprintln(out, "query | baseline | fused    | speedup | improvement | rules")
	fmt.Fprintln(out, "------+----------+----------+---------+-------------+------")
	for _, q := range w.selected() {
		fmt.Fprintf(out, "%-5s | %8s | %8s | %6.2fx | %10.1f%% | %s\n",
			q.Name, fmtDur(q.BaselineLatency), fmtDur(q.FusedLatency),
			q.Speedup(), 100*q.LatencyImprovement(), strings.Join(dedupe(q.RulesFired), ","))
	}
}

// WriteFigure2 renders the Figure 2 analogue: fraction of input data read
// compared to the baseline for the selected queries.
func (w *WorkloadReport) WriteFigure2(out io.Writer) {
	fmt.Fprintln(out, "Figure 2 — Fraction of data read vs baseline for selected queries")
	fmt.Fprintln(out, "query | baseline bytes | fused bytes | fraction | reduction")
	fmt.Fprintln(out, "------+----------------+-------------+----------+----------")
	for _, q := range w.selected() {
		fmt.Fprintf(out, "%-5s | %14d | %11d | %7.1f%% | %8.1f%%\n",
			q.Name, q.BaselineBytes, q.FusedBytes,
			100*q.BytesFraction(), 100*(1-q.BytesFraction()))
	}
}

// WriteSummary renders the §V whole-workload aggregates.
func (w *WorkloadReport) WriteSummary(out io.Writer) {
	fmt.Fprintf(out, "Workload summary (scale=%.2f, %d queries, %d with changed plans)\n",
		w.Scale, len(w.Queries), w.changedCount())
	fmt.Fprintf(out, "  overall latency improvement:        %5.1f%%  (paper: 14%%)\n", 100*w.Overall())
	fmt.Fprintf(out, "  mean improvement on changed plans:  %5.1f%%  (paper: ~60%%)\n", 100*w.AffectedMean())
	fmt.Fprintf(out, "  maximum speedup:                    %5.2fx  (paper: >6x)\n", w.MaxSpeedup())
}

// WriteCPUAndMemory renders the auxiliary §V.A/§V.C observations: CPU
// savings for the window-rewrite queries and hash-memory reduction for Q23.
func (w *WorkloadReport) WriteCPUAndMemory(out io.Writer) {
	fmt.Fprintln(out, "Auxiliary metrics (CPU proxy = rows processed; memory proxy = hash-state rows)")
	fmt.Fprintln(out, "query | cpu reduction | hash-rows baseline | hash-rows fused")
	fmt.Fprintln(out, "------+---------------+--------------------+----------------")
	for _, q := range w.selected() {
		fmt.Fprintf(out, "%-5s | %12.1f%% | %18d | %15d\n",
			q.Name, 100*q.CPUReduction(), q.BaselineHash, q.FusedHash)
	}
}

func (w *WorkloadReport) changedCount() int {
	n := 0
	for _, q := range w.Queries {
		if q.PlanChanged {
			n++
		}
	}
	return n
}

func fmtDur(d time.Duration) string {
	return d.Round(10 * time.Microsecond).String()
}

func dedupe(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Strings(out)
	return out
}
