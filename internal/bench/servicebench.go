package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/engine"
	"repro/internal/service"
	"repro/internal/testgen"
)

// ServiceOptions configures the multi-tenant service comparison: K client
// connections drive a mixed-tenant load through the wire front end into one
// resident ShareExec engine, against a no-queue baseline where the same K
// clients race the engine directly. The service side reports queue-wait
// percentiles and how often its dispatch rounds actually fed the
// shared-execution window.
type ServiceOptions struct {
	// Rows is the fact-table row count (the testgen catalog at bench scale).
	Rows int
	Seed int64
	// Iterations is how many times each connection replays its query list;
	// wall times are summed across them.
	Iterations  int
	Parallelism int
	BatchSize   int
	// Connections are the client counts compared, e.g. 2, 4, 8. Each
	// connection is its own tenant.
	Connections []int
	// QueriesPerConn is the number of queries each connection issues per
	// iteration (pipelined, so a connection keeps several in flight).
	QueriesPerConn int
	// Window is the engine's admission window. The service announces each
	// dispatch round to the window, so batches seal on arrival rather than
	// waiting the window out.
	Window time.Duration
}

// DefaultServiceOptions models a small multi-tenant fleet: a few
// dashboard-like tenants repeating overlapping statements concurrently.
func DefaultServiceOptions() ServiceOptions {
	return ServiceOptions{
		Rows: 120000, Seed: 42, Iterations: 2,
		Parallelism: 4, BatchSize: 1024,
		Connections:    []int{2, 4, 8},
		QueriesPerConn: 12,
		Window:         25 * time.Millisecond,
	}
}

// serviceQuery is connection c's i-th statement: every even slot is the hot
// statement all tenants share (the paper's concurrent-dashboards case), odd
// slots are the per-client overlapping aggregates from the shared-exec
// bench, so fusion sees both identical and merely-compatible work.
func serviceQuery(c, i int) string {
	if i%2 == 0 {
		return "SELECT f_k1, SUM(f_qty) AS sq, SUM(f_price) AS sp FROM fact WHERE f_qty > 5 GROUP BY f_k1"
	}
	return sharedExecQuery(c)
}

// ServiceConnReport compares one connection count across modes.
type ServiceConnReport struct {
	Connections int `json:"connections"`
	// QueriesRun is the total statements per mode (connections x
	// queries-per-conn x iterations).
	QueriesRun int `json:"queries_run"`

	BaselineWallMS float64 `json:"baseline_wall_ms"`
	ServiceWallMS  float64 `json:"service_wall_ms"`
	BaselineQPS    float64 `json:"baseline_qps"`
	ServiceQPS     float64 `json:"service_qps"`

	// Queue-wait percentiles across all tenants (service mode only; the
	// baseline has no queue).
	QueueWaitP50MS float64 `json:"queue_wait_p50_ms"`
	QueueWaitP95MS float64 `json:"queue_wait_p95_ms"`
	QueueWaitP99MS float64 `json:"queue_wait_p99_ms"`

	// BaselineBatched / ServiceBatched count queries whose metrics show
	// they ran inside a shared-execution batch (BatchedQueries > 1). The
	// baseline only batches when racing clients happen to land in the same
	// window; the service feeds whole dispatch rounds into one window.
	BaselineBatched int64 `json:"baseline_batched"`
	ServiceBatched  int64 `json:"service_batched"`
	// ServiceBatchRate is ServiceBatched over QueriesRun.
	ServiceBatchRate float64 `json:"service_batch_rate"`

	// Identical is true when every result in both modes was byte-identical
	// to the serial solo reference.
	Identical bool `json:"identical_results"`
}

// ServiceComparison is the BENCH_service.json payload.
type ServiceComparison struct {
	Rows           int     `json:"rows"`
	Parallelism    int     `json:"parallelism"`
	BatchSize      int     `json:"batch_size"`
	Iterations     int     `json:"iterations"`
	WindowMS       float64 `json:"window_ms"`
	QueriesPerConn int     `json:"queries_per_conn"`

	Conns []ServiceConnReport `json:"connections"`

	AllIdentical bool `json:"all_identical"`
}

// RunServiceComparison measures a mixed-tenant load through the service's
// wire front end against a no-queue baseline on the same store, verifying
// every result against a serial solo reference.
func RunServiceComparison(opts ServiceOptions) (*ServiceComparison, error) {
	if opts.Rows <= 0 {
		opts.Rows = 120000
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Connections) == 0 {
		opts.Connections = []int{2, 4, 8}
	}
	if opts.QueriesPerConn <= 0 {
		opts.QueriesPerConn = 12
	}
	if opts.Window <= 0 {
		opts.Window = 25 * time.Millisecond
	}
	st, err := testgen.NewStore(opts.Seed, opts.Rows)
	if err != nil {
		return nil, err
	}

	maxConns := 0
	for _, k := range opts.Connections {
		if k > maxConns {
			maxConns = k
		}
	}

	// Serial solo reference: the correctness oracle for every statement.
	serial := engine.OpenWithStore(st, engine.Config{Parallelism: 1, BatchSize: 1})
	want := make(map[string]string)
	for c := 0; c < maxConns; c++ {
		for i := 0; i < 2; i++ { // each connection cycles two statements
			q := serviceQuery(c, i)
			if _, ok := want[q]; ok {
				continue
			}
			res, err := serial.Query(q)
			if err != nil {
				return nil, fmt.Errorf("bench: reference %q: %w", q, err)
			}
			want[q] = renderRows(res.Rows)
		}
	}

	cmp := &ServiceComparison{
		Rows: opts.Rows, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		Iterations: opts.Iterations, WindowMS: float64(opts.Window) / float64(time.Millisecond),
		QueriesPerConn: opts.QueriesPerConn,
		AllIdentical:   true,
	}

	engCfg := engine.Config{
		Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		ShareExec: true, AdmissionWindow: opts.Window,
	}

	for _, k := range opts.Connections {
		total := k * opts.QueriesPerConn * opts.Iterations

		// Baseline: the same K clients race the engine directly — no
		// admission queue, no round announcements; batching only happens
		// when submissions collide inside the window by luck.
		baseEng := engine.OpenWithStore(st, engCfg)
		var baseWall time.Duration
		var baseBatched atomic.Int64
		baseIdentical := true
		var baseErr error
		var identMu sync.Mutex
		for iter := 0; iter < opts.Iterations; iter++ {
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < k; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for i := 0; i < opts.QueriesPerConn; i++ {
						q := serviceQuery(c, i)
						res, err := baseEng.Query(q)
						identMu.Lock()
						if err != nil {
							if baseErr == nil {
								baseErr = fmt.Errorf("bench: baseline conn %d: %w", c, err)
							}
						} else {
							if res.Metrics.SharedExec.BatchedQueries > 1 {
								baseBatched.Add(1)
							}
							if renderRows(res.Rows) != want[q] {
								baseIdentical = false
							}
						}
						identMu.Unlock()
					}
				}(c)
			}
			wg.Wait()
			baseWall += time.Since(start)
		}
		if err := baseEng.Close(); err != nil {
			return nil, err
		}
		if baseErr != nil {
			return nil, baseErr
		}

		// Service mode: the same load through admission control, weighted
		// fair dispatch, and the wire protocol. Each connection is its own
		// tenant; four statements stay pipelined per connection so the
		// scheduler always has a backlog to form rounds from.
		svcEng := engine.OpenWithStore(st, engCfg)
		srv := service.New(svcEng, service.Config{TenantConcurrency: 4})
		ns := service.NewNetServer(srv)
		if err := ns.Listen("127.0.0.1:0"); err != nil {
			return nil, err
		}
		addr := ns.Addr().String()

		var svcWall time.Duration
		var svcBatched atomic.Int64
		svcIdentical := true
		var svcErr error
		ctx := context.Background()
		for iter := 0; iter < opts.Iterations; iter++ {
			start := time.Now()
			var wg sync.WaitGroup
			for c := 0; c < k; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					cl, err := service.Dial(addr)
					if err != nil {
						identMu.Lock()
						if svcErr == nil {
							svcErr = fmt.Errorf("bench: dial: %w", err)
						}
						identMu.Unlock()
						return
					}
					defer cl.Close()
					if err := cl.Hello(ctx, fmt.Sprintf("tenant-%d", c)); err != nil {
						identMu.Lock()
						if svcErr == nil {
							svcErr = fmt.Errorf("bench: hello: %w", err)
						}
						identMu.Unlock()
						return
					}
					sem := make(chan struct{}, 4)
					var qwg sync.WaitGroup
					for i := 0; i < opts.QueriesPerConn; i++ {
						q := serviceQuery(c, i)
						sem <- struct{}{}
						qwg.Add(1)
						go func(q string) {
							defer qwg.Done()
							defer func() { <-sem }()
							res, err := cl.Query(ctx, q)
							identMu.Lock()
							defer identMu.Unlock()
							if err != nil {
								if svcErr == nil {
									svcErr = fmt.Errorf("bench: service conn %d: %w", c, err)
								}
								return
							}
							if res.Metrics.BatchedQueries > 1 {
								svcBatched.Add(1)
							}
							if renderRows(res.Rows) != want[q] {
								svcIdentical = false
							}
						}(q)
					}
					qwg.Wait()
				}(c)
			}
			wg.Wait()
			svcWall += time.Since(start)
		}
		stats := srv.Stats()
		if err := ns.Shutdown(context.Background()); err != nil {
			return nil, err
		}
		if err := svcEng.Close(); err != nil {
			return nil, err
		}
		if svcErr != nil {
			return nil, svcErr
		}

		var waits []time.Duration
		for _, ws := range stats.QueueWaits {
			waits = append(waits, ws...)
		}
		sort.Slice(waits, func(i, j int) bool { return waits[i] < waits[j] })
		pct := func(p int) float64 {
			if len(waits) == 0 {
				return 0
			}
			return float64(waits[(len(waits)*p)/100]) / float64(time.Millisecond)
		}

		cr := ServiceConnReport{
			Connections:     k,
			QueriesRun:      total,
			BaselineWallMS:  float64(baseWall) / float64(time.Millisecond),
			ServiceWallMS:   float64(svcWall) / float64(time.Millisecond),
			QueueWaitP50MS:  pct(50),
			QueueWaitP95MS:  pct(95),
			QueueWaitP99MS:  pct(99),
			BaselineBatched: baseBatched.Load(),
			ServiceBatched:  svcBatched.Load(),
			Identical:       baseIdentical && svcIdentical,
		}
		if baseWall > 0 {
			cr.BaselineQPS = float64(total) / baseWall.Seconds()
		}
		if svcWall > 0 {
			cr.ServiceQPS = float64(total) / svcWall.Seconds()
		}
		if total > 0 {
			cr.ServiceBatchRate = float64(cr.ServiceBatched) / float64(total)
		}
		if !cr.Identical {
			cmp.AllIdentical = false
		}
		cmp.Conns = append(cmp.Conns, cr)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_service.json
// artifact).
func (c *ServiceComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *ServiceComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Multi-tenant service (%d fact rows, %d iters, %d queries/conn, parallelism=%d, window=%.0fms)\n",
		c.Rows, c.Iterations, c.QueriesPerConn, c.Parallelism, c.WindowMS)
	fmt.Fprintln(out, "conns | base wall | svc wall | base qps | svc qps | wait p50 | p95 | p99 | base batched | svc batched | rate | identical")
	fmt.Fprintln(out, "------+-----------+----------+----------+---------+----------+-----+-----+--------------+-------------+------+----------")
	for _, r := range c.Conns {
		fmt.Fprintf(out, "%5d | %7.1fms | %6.1fms | %8.1f | %7.1f | %6.2fms | %3.0f | %3.0f | %12d | %11d | %4.2f | %v\n",
			r.Connections, r.BaselineWallMS, r.ServiceWallMS, r.BaselineQPS, r.ServiceQPS,
			r.QueueWaitP50MS, r.QueueWaitP95MS, r.QueueWaitP99MS,
			r.BaselineBatched, r.ServiceBatched, r.ServiceBatchRate, r.Identical)
	}
	fmt.Fprintf(out, "all identical: %v\n", c.AllIdentical)
}
