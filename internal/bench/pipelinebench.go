package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// PipelineOptions configures the push-vs-pull comparison: the same fused
// engine configuration run once with PullExec (fusible chains as pull
// iterators with dense projection materialization, serial scalar aggregation
// and sort) and once with push-based pipeline fusion — the default path.
type PipelineOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	Queries     []string
}

// DefaultPipelineQueries are the workload's scan-heavy queries whose runtime
// is dominated by fusible Scan→Filter(→Project) chains. q23 carries
// project-bearing chains (its fused pipelines save projection
// materializations); q28, q88 and f17 fuse range- and bucket-filter chains
// into their aggregations; f27 is a pure computed-projection chain; f29 a
// selective filter chain. Join-dominated queries are deliberately absent —
// probe build sides are pipeline breakers, so fusion cannot address them.
var DefaultPipelineQueries = []string{
	"q23", "q28", "q88", "f17", "f27", "f29",
}

// DefaultPipelineOptions mirrors DefaultMaskOptions, except parallelism
// defaults to the hardware's (GOMAXPROCS) rather than a fixed worker count:
// the pipeline sinks trade per-worker setup for multicore scaling, and
// benchmarking more workers than cores would measure scheduler thrash, not
// the execution model.
func DefaultPipelineOptions() PipelineOptions {
	return PipelineOptions{
		Scale: 1.0, Seed: 42, Iterations: 5,
		Parallelism: runtime.GOMAXPROCS(0), BatchSize: 1024,
		Queries: DefaultPipelineQueries,
	}
}

// PipelineQueryReport compares one query between pull execution and
// push-based pipeline fusion.
type PipelineQueryReport struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Latencies are the minimum over the run's iterations, in milliseconds.
	// Pull and push iterations interleave so machine drift hits both sides.
	PullMS  float64 `json:"pull_ms"`
	PushMS  float64 `json:"push_ms"`
	Speedup float64 `json:"speedup"`
	// FusedPipelines and PipelineBatches describe the push run: compiled
	// chains and push-loop iterations. MaterializedBatchesSaved counts
	// batches whose projection stage avoided the pull path's dense
	// materialization; zero marks a filter-only chain, which the pull path
	// does not materialize either.
	FusedPipelines           int64 `json:"fused_pipelines"`
	PipelineBatches          int64 `json:"pipeline_batches"`
	MaterializedBatchesSaved int64 `json:"materialized_batches_saved"`
	// Identical is true when both paths returned byte-identical rows in
	// identical order.
	Identical bool `json:"identical_results"`
	// BytesScanned and RowsProcessed must match between paths: moving from
	// pull iterators to compiled push loops must not change what work is
	// accounted.
	BytesScanned      int64 `json:"bytes_scanned"`
	BytesScannedSame  bool  `json:"bytes_scanned_same"`
	RowsProcessed     int64 `json:"rows_processed"`
	RowsProcessedSame bool  `json:"rows_processed_same"`
}

// PipelineComparison is the BENCH_pipeline.json payload.
type PipelineComparison struct {
	Scale          float64               `json:"scale"`
	Parallelism    int                   `json:"parallelism"`
	BatchSize      int                   `json:"batch_size"`
	Iterations     int                   `json:"iterations"`
	Queries        []PipelineQueryReport `json:"queries"`
	OverallSpeedup float64               `json:"overall_speedup"`
	MaxSpeedup     float64               `json:"max_speedup"`
	AllIdentical   bool                  `json:"all_identical"`
}

// RunPipelineComparison measures pull execution against push-based pipeline
// fusion over one shared store with fusion enabled and the same parallelism
// and batch size on both sides, so the only difference between the two
// measurements is the execution model — which the result contract says must
// be unobservable in rows, BytesScanned and RowsProcessed.
func RunPipelineComparison(opts PipelineOptions) (*PipelineComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Queries) == 0 {
		opts.Queries = DefaultPipelineQueries
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	pull := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		PullExec: true,
	})
	push := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
	})

	cmp := &PipelineComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, Iterations: opts.Iterations,
		AllIdentical: true,
	}
	type queryState struct {
		q                            tpcds.Query
		pullRows, pushRows           string
		pullBytes, pushBytes         int64
		pullProcessed, pushProcessed int64
		pullLat, pushLat             time.Duration
		fused, batches, saved        int64
	}
	states := make([]*queryState, 0, len(opts.Queries))
	for _, name := range opts.Queries {
		q, ok := tpcds.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", name)
		}
		// One unmeasured warmup per side.
		if _, err := pull.Query(q.SQL); err != nil {
			return nil, fmt.Errorf("bench: %s (pull): %w", q.Name, err)
		}
		if _, err := push.Query(q.SQL); err != nil {
			return nil, fmt.Errorf("bench: %s (push): %w", q.Name, err)
		}
		states = append(states, &queryState{q: q})
	}
	// Timed iterations round-robin the whole query list, alternating pull
	// and push within each query: every query's samples spread over the
	// bench's full wall-clock span, so a sustained machine-load spike dents
	// a few samples of many queries instead of every sample of one.
	for i := 0; i < opts.Iterations; i++ {
		for _, qs := range states {
			res, err := pull.Query(qs.q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (pull): %w", qs.q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < qs.pullLat {
				qs.pullLat = res.Metrics.Elapsed
			}
			qs.pullRows = renderRows(res.Rows)
			qs.pullBytes = res.Metrics.Storage.BytesScanned
			qs.pullProcessed = res.Metrics.RowsProcessed

			res, err = push.Query(qs.q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (push): %w", qs.q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < qs.pushLat {
				qs.pushLat = res.Metrics.Elapsed
			}
			qs.pushRows = renderRows(res.Rows)
			qs.pushBytes = res.Metrics.Storage.BytesScanned
			qs.pushProcessed = res.Metrics.RowsProcessed
			qs.fused = res.Metrics.Pipeline.FusedPipelines
			qs.batches = res.Metrics.Pipeline.PipelineBatches
			qs.saved = res.Metrics.Pipeline.MaterializedBatchesSaved
		}
	}
	var pullTotal, pushTotal time.Duration
	for _, qs := range states {
		qr := PipelineQueryReport{
			Name: qs.q.Name, Pattern: qs.q.Pattern,
			FusedPipelines: qs.fused, PipelineBatches: qs.batches,
			MaterializedBatchesSaved: qs.saved,
		}
		qr.PullMS = float64(qs.pullLat) / float64(time.Millisecond)
		qr.PushMS = float64(qs.pushLat) / float64(time.Millisecond)
		if qs.pushLat > 0 {
			qr.Speedup = float64(qs.pullLat) / float64(qs.pushLat)
		}
		qr.Identical = qs.pullRows == qs.pushRows
		qr.BytesScanned = qs.pullBytes
		qr.BytesScannedSame = qs.pullBytes == qs.pushBytes
		qr.RowsProcessed = qs.pullProcessed
		qr.RowsProcessedSame = qs.pullProcessed == qs.pushProcessed
		if !qr.Identical || !qr.BytesScannedSame || !qr.RowsProcessedSame {
			cmp.AllIdentical = false
		}
		if qr.Speedup > cmp.MaxSpeedup {
			cmp.MaxSpeedup = qr.Speedup
		}
		pullTotal += qs.pullLat
		pushTotal += qs.pushLat
		cmp.Queries = append(cmp.Queries, qr)
	}
	if pushTotal > 0 {
		cmp.OverallSpeedup = float64(pullTotal) / float64(pushTotal)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_pipeline.json
// artifact).
func (c *PipelineComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *PipelineComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Push-pipeline comparison (scale=%.2f, parallelism=%d, batch=%d)\n",
		c.Scale, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | pull          | push       | speedup | fused | saved | identical")
	fmt.Fprintln(out, "------+---------------+------------+---------+-------+-------+----------")
	for _, q := range c.Queries {
		fmt.Fprintf(out, "%-5s | %11.2fms | %8.2fms | %6.2fx | %5d | %5d | %v\n",
			q.Name, q.PullMS, q.PushMS, q.Speedup, q.FusedPipelines, q.MaterializedBatchesSaved,
			q.Identical && q.BytesScannedSame && q.RowsProcessedSame)
	}
	fmt.Fprintf(out, "overall speedup: %.2fx, max: %.2fx, all results identical: %v\n",
		c.OverallSpeedup, c.MaxSpeedup, c.AllIdentical)
}
