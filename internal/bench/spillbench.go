package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// SpillOptions configures the memory-governance comparison: spill-heavy
// queries (high-cardinality aggregation, large sorts) run unlimited and
// then under a ladder of shrinking memory budgets derived from each
// query's own unlimited profile, measuring what graceful degradation to
// disk costs in latency.
type SpillOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	Queries     []string
}

// DefaultSpillQueries is the slice of the workload whose blocking state is
// dominated by spillable operators — the aggregation-heavy queries plus
// the sort-carrying join shapes.
var DefaultSpillQueries = []string{
	"q09", "q23", "q28", "q65", "f01", "f11", "f14", "f17", "f22", "f26",
}

// SpillRunReport is one query at one memory budget.
type SpillRunReport struct {
	// LimitBytes is the engine budget for this run; 0 means unlimited.
	LimitBytes int64   `json:"limit_bytes"`
	MS         float64 `json:"ms"`
	// Slowdown is this run's latency over the unlimited run's.
	Slowdown float64 `json:"slowdown"`
	// PeakBytes is the query's peak tracked memory; under a budget it never
	// exceeds LimitBytes.
	PeakBytes    int64 `json:"peak_bytes"`
	SpilledBytes int64 `json:"spilled_bytes"`
	SpillFiles   int64 `json:"spill_files"`
	// Identical is true when the run reproduced the unlimited run's rows
	// byte-for-byte in identical order.
	Identical bool `json:"identical_results"`
}

// SpillQueryReport is one query across the budget ladder.
type SpillQueryReport struct {
	Name    string           `json:"name"`
	Pattern string           `json:"pattern"`
	Runs    []SpillRunReport `json:"runs"`
}

// SpillComparison is the BENCH_spill.json payload.
type SpillComparison struct {
	Scale       float64            `json:"scale"`
	Parallelism int                `json:"parallelism"`
	BatchSize   int                `json:"batch_size"`
	Iterations  int                `json:"iterations"`
	Queries     []SpillQueryReport `json:"queries"`
	// AllIdentical is true when every budgeted run matched its unlimited
	// reference and stayed within its limit.
	AllIdentical bool `json:"all_identical"`
	// AnySpilled is true when at least one budgeted run actually shed bytes
	// to disk — the comparison is vacuous otherwise.
	AnySpilled bool `json:"any_spilled"`
}

// spillLimits derives the budget ladder for one query from its unlimited
// profile: fractions of the spillable state above the unspillable floor
// (join builds, window buffers, spools cannot shed), so every rung is
// feasible and the lower rungs force progressively more spilling.
func spillLimits(peak, floor int64) []int64 {
	const headroom = 256 << 10
	span := peak - floor
	if span <= headroom {
		return nil
	}
	var out []int64
	for _, num := range []int64{3, 2, 1} {
		l := floor + span*num/4
		if l < floor+headroom {
			l = floor + headroom
		}
		if len(out) == 0 || l < out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// RunSpillComparison measures the latency cost of spilling: each query
// runs unlimited, then at each budget rung, over one shared store with the
// same parallel configuration throughout — the only variable is how much
// memory the blocking operators may keep resident.
func RunSpillComparison(opts SpillOptions) (*SpillComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Queries) == 0 {
		opts.Queries = DefaultSpillQueries
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	spillDir, err := os.MkdirTemp("", "benchspill")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	base := engine.Config{EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize}
	unlimited := engine.OpenWithStore(st, base)

	cmp := &SpillComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, Iterations: opts.Iterations,
		AllIdentical: true,
	}
	for _, name := range opts.Queries {
		q, ok := tpcds.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", name)
		}
		qr := SpillQueryReport{Name: q.Name, Pattern: q.Pattern}

		var want string
		var refRun SpillRunReport
		var refLat time.Duration
		var floor int64
		for i := 0; i < opts.Iterations; i++ {
			res, err := unlimited.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (unlimited): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < refLat {
				refLat = res.Metrics.Elapsed
			}
			want = renderRows(res.Rows)
			refRun = SpillRunReport{
				PeakBytes: res.Metrics.PeakMemoryBytes, Slowdown: 1, Identical: true,
			}
			floor = 0
			for op, s := range res.Metrics.MemOperators {
				if op != "groupby" && op != "sort" {
					floor += s.PeakBytes
				}
			}
		}
		refRun.MS = float64(refLat) / float64(time.Millisecond)
		qr.Runs = append(qr.Runs, refRun)

		for _, limit := range spillLimits(refRun.PeakBytes, floor) {
			eng := engine.OpenWithStore(st, engine.Config{
				EnableFusion: base.EnableFusion, Parallelism: base.Parallelism, BatchSize: base.BatchSize,
				MemoryLimitBytes: limit, SpillDir: spillDir,
			})
			run := SpillRunReport{LimitBytes: limit, Identical: true}
			var lat time.Duration
			for i := 0; i < opts.Iterations; i++ {
				res, err := eng.Query(q.SQL)
				if err != nil {
					return nil, fmt.Errorf("bench: %s (limit %d): %w", q.Name, limit, err)
				}
				if i == 0 || res.Metrics.Elapsed < lat {
					lat = res.Metrics.Elapsed
				}
				run.PeakBytes = res.Metrics.PeakMemoryBytes
				run.SpilledBytes = res.Metrics.SpilledBytes
				run.SpillFiles = res.Metrics.SpillFiles
				run.Identical = renderRows(res.Rows) == want
			}
			run.MS = float64(lat) / float64(time.Millisecond)
			if refLat > 0 {
				run.Slowdown = float64(lat) / float64(refLat)
			}
			if !run.Identical || run.PeakBytes > limit {
				cmp.AllIdentical = false
			}
			if run.SpilledBytes > 0 {
				cmp.AnySpilled = true
			}
			qr.Runs = append(qr.Runs, run)
		}
		cmp.Queries = append(cmp.Queries, qr)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_spill.json
// artifact).
func (c *SpillComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *SpillComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Memory-budget spill comparison (scale=%.2f, parallelism=%d, batch=%d)\n",
		c.Scale, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | limit      | latency     | slowdown | peak       | spilled    | identical")
	fmt.Fprintln(out, "------+------------+-------------+----------+------------+------------+----------")
	for _, q := range c.Queries {
		for _, r := range q.Runs {
			lim := "unlimited"
			if r.LimitBytes > 0 {
				lim = fmt.Sprintf("%dK", r.LimitBytes>>10)
			}
			fmt.Fprintf(out, "%-5s | %-10s | %9.2fms | %7.2fx | %9dK | %9dK | %v\n",
				q.Name, lim, r.MS, r.Slowdown, r.PeakBytes>>10, r.SpilledBytes>>10, r.Identical)
		}
	}
	fmt.Fprintf(out, "all results identical within limits: %v, any run spilled: %v\n",
		c.AllIdentical, c.AnySpilled)
}
