package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/engine"
	"repro/internal/testgen"
)

// SharedExecOptions configures the cross-query shared-execution comparison:
// waves of K concurrent clients, each running its own overlapping scalar
// aggregation over the same fact table, once with ShareExec off (every
// client scans alone) and once on (the admission window batches the wave,
// fuses the plans and runs one scan for everybody).
type SharedExecOptions struct {
	// Rows is the fact-table row count (the testgen catalog at bench scale).
	Rows int
	Seed int64
	// Iterations is how many waves run per client count; wall times and
	// decode bytes are summed across them.
	Iterations  int
	Parallelism int
	BatchSize   int
	// Clients are the wave sizes compared, e.g. 1, 2, 4, 8.
	Clients []int
	// Window is the admission window for the shared runs. Batches seal as
	// soon as the whole wave arrives (MaxFusedQueries = wave size), so the
	// window is a scheduling backstop, not a per-wave latency tax.
	Window time.Duration
}

// DefaultSharedExecOptions models the paper's concurrent-dashboards
// motivation: up to eight clients asking overlapping questions of the same
// table at the same moment.
func DefaultSharedExecOptions() SharedExecOptions {
	return SharedExecOptions{
		Rows: 120000, Seed: 42, Iterations: 3,
		Parallelism: 4, BatchSize: 1024,
		Clients: []int{1, 2, 4, 8},
		Window:  50 * time.Millisecond,
	}
}

// sharedExecQuery is client j's query: the same scan and aggregate shapes
// over shifted selective windows, so every pair of clients overlaps but
// none are identical — the fused plan shares the scan, its union filter
// discards the rows no client wants in one pass, and the compensating
// masks split the survivors between the clients' aggregates.
func sharedExecQuery(j int) string {
	lo := 10 + 2*j
	return fmt.Sprintf(
		"SELECT COUNT(*) AS c, SUM(f_qty) AS sq, SUM(f_price) AS sp, MAX(f_price) AS xp"+
			" FROM fact WHERE f_qty BETWEEN %d AND %d AND f_price < %d.5",
		lo, lo+25, 2100-40*j)
}

// SharedExecWaveReport compares one wave size across modes.
type SharedExecWaveReport struct {
	Clients int `json:"clients"`

	SoloWallMS   float64 `json:"solo_wall_ms"`
	SharedWallMS float64 `json:"shared_wall_ms"`
	Speedup      float64 `json:"speedup"`

	// SoloDecodedBytes / SharedDecodedBytes are the physical decode work
	// summed over clients and iterations. Fused clients report the fused
	// run's physical counters, so the shared sum divides each client's
	// decode bytes by its FusedPlans — the per-plan work counted once.
	SoloDecodedBytes   int64   `json:"solo_decoded_bytes"`
	SharedDecodedBytes int64   `json:"shared_decoded_bytes"`
	DecodeReduction    float64 `json:"decode_reduction"`

	// FusedClients counts clients served from a fused plan (FusedPlans >= 2),
	// summed over iterations.
	FusedClients int64 `json:"fused_clients"`
	// Identical is true when every client in both modes returned rows
	// byte-identical to the serial solo reference with the same BytesScanned.
	Identical bool `json:"identical_results"`
}

// SharedExecComparison is the BENCH_sharedexec.json payload.
type SharedExecComparison struct {
	Rows        int     `json:"rows"`
	Parallelism int     `json:"parallelism"`
	BatchSize   int     `json:"batch_size"`
	Iterations  int     `json:"iterations"`
	WindowMS    float64 `json:"window_ms"`

	Waves []SharedExecWaveReport `json:"waves"`

	AllIdentical bool `json:"all_identical"`
}

// RunSharedExecComparison measures waves of concurrent overlapping queries
// with shared execution off and on against one store, verifying every
// client against a serial solo reference.
func RunSharedExecComparison(opts SharedExecOptions) (*SharedExecComparison, error) {
	if opts.Rows <= 0 {
		opts.Rows = 120000
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Clients) == 0 {
		opts.Clients = []int{1, 2, 4, 8}
	}
	if opts.Window <= 0 {
		opts.Window = 50 * time.Millisecond
	}
	st, err := testgen.NewStore(opts.Seed, opts.Rows)
	if err != nil {
		return nil, err
	}

	maxClients := 0
	for _, k := range opts.Clients {
		if k > maxClients {
			maxClients = k
		}
	}
	queries := make([]string, maxClients)
	for j := range queries {
		queries[j] = sharedExecQuery(j)
	}

	// Serial solo reference: the correctness oracle for every client.
	serial := engine.OpenWithStore(st, engine.Config{Parallelism: 1, BatchSize: 1})
	wantRows := make([]string, maxClients)
	wantScanned := make([]int64, maxClients)
	for j, q := range queries {
		res, err := serial.Query(q)
		if err != nil {
			return nil, fmt.Errorf("bench: client %d (reference): %w", j, err)
		}
		wantRows[j] = renderRows(res.Rows)
		wantScanned[j] = res.Metrics.Storage.BytesScanned
	}

	cmp := &SharedExecComparison{
		Rows: opts.Rows, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		Iterations: opts.Iterations, WindowMS: float64(opts.Window) / float64(time.Millisecond),
		AllIdentical: true,
	}

	runWave := func(k int, share bool) (wall time.Duration, decoded, fused int64, identical bool, err error) {
		cfg := engine.Config{Parallelism: opts.Parallelism, BatchSize: opts.BatchSize}
		if share {
			cfg.ShareExec = true
			cfg.AdmissionWindow = opts.Window
			cfg.MaxFusedQueries = k
		}
		eng := engine.OpenWithStore(st, cfg)
		identical = true
		for iter := 0; iter < opts.Iterations; iter++ {
			results := make([]*engine.Result, k)
			errs := make([]error, k)
			start := time.Now()
			var wg sync.WaitGroup
			for j := 0; j < k; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					results[j], errs[j] = eng.Query(queries[j])
				}()
			}
			wg.Wait()
			wall += time.Since(start)
			for j := 0; j < k; j++ {
				if errs[j] != nil {
					return 0, 0, 0, false, fmt.Errorf("bench: client %d (share=%v): %w", j, share, errs[j])
				}
				res := results[j]
				d := res.Metrics.Share.BytesDecoded
				if fp := res.Metrics.SharedExec.FusedPlans; fp > 1 {
					d /= fp // fused clients carry the fused run's counters
					fused++
				}
				decoded += d
				if renderRows(res.Rows) != wantRows[j] || res.Metrics.Storage.BytesScanned != wantScanned[j] {
					identical = false
				}
			}
		}
		return wall, decoded, fused, identical, nil
	}

	for _, k := range opts.Clients {
		soloWall, soloDecoded, _, soloIdent, err := runWave(k, false)
		if err != nil {
			return nil, err
		}
		sharedWall, sharedDecoded, fused, sharedIdent, err := runWave(k, true)
		if err != nil {
			return nil, err
		}
		wr := SharedExecWaveReport{
			Clients:            k,
			SoloWallMS:         float64(soloWall) / float64(time.Millisecond),
			SharedWallMS:       float64(sharedWall) / float64(time.Millisecond),
			SoloDecodedBytes:   soloDecoded,
			SharedDecodedBytes: sharedDecoded,
			FusedClients:       fused,
			Identical:          soloIdent && sharedIdent,
		}
		if sharedWall > 0 {
			wr.Speedup = float64(soloWall) / float64(sharedWall)
		}
		if sharedDecoded > 0 {
			wr.DecodeReduction = float64(soloDecoded) / float64(sharedDecoded)
		}
		if !wr.Identical {
			cmp.AllIdentical = false
		}
		cmp.Waves = append(cmp.Waves, wr)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_sharedexec.json
// artifact).
func (c *SharedExecComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *SharedExecComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Cross-query shared execution (%d fact rows, %d iters, parallelism=%d, batch=%d, window=%.0fms)\n",
		c.Rows, c.Iterations, c.Parallelism, c.BatchSize, c.WindowMS)
	fmt.Fprintln(out, "clients | solo wall | shared wall | speedup | solo decoded | shared decoded | reduction | fused | identical")
	fmt.Fprintln(out, "--------+-----------+-------------+---------+--------------+----------------+-----------+-------+----------")
	for _, w := range c.Waves {
		fmt.Fprintf(out, "%7d | %7.2fms | %9.2fms | %6.2fx | %9.2f MB | %11.2f MB | %8.2fx | %5d | %v\n",
			w.Clients, w.SoloWallMS, w.SharedWallMS, w.Speedup,
			float64(w.SoloDecodedBytes)/1e6, float64(w.SharedDecodedBytes)/1e6,
			w.DecodeReduction, w.FusedClients, w.Identical)
	}
	fmt.Fprintf(out, "all identical: %v\n", c.AllIdentical)
}
