package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// AggOptions configures the aggregation-parallelism comparison: an
// aggregation- and join-heavy slice of the workload run once serially
// ({Parallelism:1, BatchSize:1}) and once with the partition-wise parallel
// aggregation and parallel join build enabled.
type AggOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	Queries     []string
}

// DefaultAggQueries is the aggregation-heavy slice of the workload: scalar
// statistics, keyed and multi-key rollups, COUNT(DISTINCT), and join+agg
// shapes — the operators the partition-wise parallel paths accelerate.
var DefaultAggQueries = []string{
	"q09", "q23", "q28", "q65", "f01", "f11", "f14", "f17", "f22", "f26",
}

// DefaultAggOptions mirrors DefaultExecOptions but targets the aggregation
// slice with the full parallel configuration.
func DefaultAggOptions() AggOptions {
	return AggOptions{
		Scale: 1.0, Seed: 42, Iterations: 3,
		Parallelism: 8, BatchSize: 1024,
		Queries: DefaultAggQueries,
	}
}

// AggQueryReport compares one query between serial and parallel execution.
type AggQueryReport struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Latencies are the minimum over the run's iterations, in milliseconds.
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// Identical is true when both configurations returned byte-identical
	// rows in identical order.
	Identical bool `json:"identical_results"`
	// BytesScanned and RowsProcessed must match between configurations:
	// the parallel partitioning must not change what work is accounted.
	BytesScanned      int64 `json:"bytes_scanned"`
	BytesScannedSame  bool  `json:"bytes_scanned_same"`
	RowsProcessed     int64 `json:"rows_processed"`
	RowsProcessedSame bool  `json:"rows_processed_same"`
}

// AggComparison is the BENCH_agg.json payload.
type AggComparison struct {
	Scale          float64          `json:"scale"`
	Parallelism    int              `json:"parallelism"`
	BatchSize      int              `json:"batch_size"`
	Iterations     int              `json:"iterations"`
	Queries        []AggQueryReport `json:"queries"`
	OverallSpeedup float64          `json:"overall_speedup"`
	MaxSpeedup     float64          `json:"max_speedup"`
	AllIdentical   bool             `json:"all_identical"`
}

// RunAggComparison measures serial vs partition-wise parallel execution of
// aggregation-heavy queries over one shared store with fusion enabled on
// both sides, so the only difference between the two measurements is the
// execution configuration the result contract says must be unobservable.
func RunAggComparison(opts AggOptions) (*AggComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Queries) == 0 {
		opts.Queries = DefaultAggQueries
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	serial := engine.OpenWithStore(st, engine.Config{EnableFusion: true, Parallelism: 1, BatchSize: 1})
	par := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
	})

	cmp := &AggComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, Iterations: opts.Iterations,
		AllIdentical: true,
	}
	var serTotal, parTotal time.Duration
	for _, name := range opts.Queries {
		q, ok := tpcds.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", name)
		}
		qr := AggQueryReport{Name: q.Name, Pattern: q.Pattern}
		var serRows, parRows string
		var serBytes, parBytes, serProcessed, parProcessed int64
		var serLat, parLat time.Duration
		for i := 0; i < opts.Iterations; i++ {
			res, err := serial.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (serial): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < serLat {
				serLat = res.Metrics.Elapsed
			}
			serRows = renderRows(res.Rows)
			serBytes = res.Metrics.Storage.BytesScanned
			serProcessed = res.Metrics.RowsProcessed
		}
		for i := 0; i < opts.Iterations; i++ {
			res, err := par.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (parallel): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < parLat {
				parLat = res.Metrics.Elapsed
			}
			parRows = renderRows(res.Rows)
			parBytes = res.Metrics.Storage.BytesScanned
			parProcessed = res.Metrics.RowsProcessed
		}
		qr.SerialMS = float64(serLat) / float64(time.Millisecond)
		qr.ParallelMS = float64(parLat) / float64(time.Millisecond)
		if parLat > 0 {
			qr.Speedup = float64(serLat) / float64(parLat)
		}
		qr.Identical = serRows == parRows
		qr.BytesScanned = serBytes
		qr.BytesScannedSame = serBytes == parBytes
		qr.RowsProcessed = serProcessed
		qr.RowsProcessedSame = serProcessed == parProcessed
		if !qr.Identical || !qr.BytesScannedSame || !qr.RowsProcessedSame {
			cmp.AllIdentical = false
		}
		if qr.Speedup > cmp.MaxSpeedup {
			cmp.MaxSpeedup = qr.Speedup
		}
		serTotal += serLat
		parTotal += parLat
		cmp.Queries = append(cmp.Queries, qr)
	}
	if parTotal > 0 {
		cmp.OverallSpeedup = float64(serTotal) / float64(parTotal)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_agg.json
// artifact).
func (c *AggComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *AggComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Aggregation parallelism comparison (scale=%.2f, parallelism=%d, batch=%d)\n",
		c.Scale, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | serial        | parallel   | speedup | identical")
	fmt.Fprintln(out, "------+---------------+------------+---------+----------")
	for _, q := range c.Queries {
		fmt.Fprintf(out, "%-5s | %11.2fms | %8.2fms | %6.2fx | %v\n",
			q.Name, q.SerialMS, q.ParallelMS, q.Speedup,
			q.Identical && q.BytesScannedSame && q.RowsProcessedSame)
	}
	fmt.Fprintf(out, "overall speedup: %.2fx, max: %.2fx, all results identical: %v\n",
		c.OverallSpeedup, c.MaxSpeedup, c.AllIdentical)
}
