package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// ExecOptions configures the execution-model comparison: the same workload,
// same store, same (fused) plans, run once with the degenerate row-at-a-time
// configuration (Parallelism=1, BatchSize=1) and once vectorized with
// morsel-parallel scans.
type ExecOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	Queries     []string
}

// DefaultExecOptions exercises the whole workload at a scale where scans
// dominate and parallelism has partitions to chew on.
func DefaultExecOptions() ExecOptions {
	return ExecOptions{Scale: 1.0, Seed: 42, Iterations: 3, Parallelism: 4, BatchSize: 1024}
}

// ExecQueryReport compares one query across execution models.
type ExecQueryReport struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Latencies are the minimum over the run's iterations, in milliseconds.
	RowAtATimeMS float64 `json:"row_at_a_time_ms"`
	VectorizedMS float64 `json:"vectorized_ms"`
	Speedup      float64 `json:"speedup"`
	// Identical is true when both configurations returned byte-identical
	// rows in identical order — the refactor's correctness contract.
	Identical bool `json:"identical_results"`
	// BytesScanned must be the same for both configurations (scan
	// accounting is independent of the execution model).
	BytesScanned     int64 `json:"bytes_scanned"`
	BytesScannedSame bool  `json:"bytes_scanned_same"`
}

// ExecComparison is the BENCH_exec.json payload.
type ExecComparison struct {
	Scale          float64           `json:"scale"`
	Parallelism    int               `json:"parallelism"`
	BatchSize      int               `json:"batch_size"`
	Iterations     int               `json:"iterations"`
	Queries        []ExecQueryReport `json:"queries"`
	OverallSpeedup float64           `json:"overall_speedup"`
	MaxSpeedup     float64           `json:"max_speedup"`
	AllIdentical   bool              `json:"all_identical"`
}

// RunExecComparison measures row-at-a-time vs vectorized-parallel execution
// over one shared store with fusion enabled on both sides, so the only
// difference between the two measurements is the execution model.
func RunExecComparison(opts ExecOptions) (*ExecComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	row := engine.OpenWithStore(st, engine.Config{EnableFusion: true, Parallelism: 1, BatchSize: 1})
	vec := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
	})

	var queries []tpcds.Query
	if len(opts.Queries) == 0 {
		queries = tpcds.Queries()
	} else {
		for _, name := range opts.Queries {
			q, ok := tpcds.Get(name)
			if !ok {
				return nil, fmt.Errorf("bench: unknown query %q", name)
			}
			queries = append(queries, q)
		}
	}

	cmp := &ExecComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, Iterations: opts.Iterations,
		AllIdentical: true,
	}
	var rowTotal, vecTotal time.Duration
	for _, q := range queries {
		qr := ExecQueryReport{Name: q.Name, Pattern: q.Pattern}
		var rowRows, vecRows string
		var rowBytes, vecBytes int64
		var rowLat, vecLat time.Duration
		for i := 0; i < opts.Iterations; i++ {
			res, err := row.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (row-at-a-time): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < rowLat {
				rowLat = res.Metrics.Elapsed
			}
			rowRows = renderRows(res.Rows)
			rowBytes = res.Metrics.Storage.BytesScanned
		}
		for i := 0; i < opts.Iterations; i++ {
			res, err := vec.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (vectorized): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < vecLat {
				vecLat = res.Metrics.Elapsed
			}
			vecRows = renderRows(res.Rows)
			vecBytes = res.Metrics.Storage.BytesScanned
		}
		qr.RowAtATimeMS = float64(rowLat) / float64(time.Millisecond)
		qr.VectorizedMS = float64(vecLat) / float64(time.Millisecond)
		if vecLat > 0 {
			qr.Speedup = float64(rowLat) / float64(vecLat)
		}
		qr.Identical = rowRows == vecRows
		qr.BytesScanned = rowBytes
		qr.BytesScannedSame = rowBytes == vecBytes
		if !qr.Identical || !qr.BytesScannedSame {
			cmp.AllIdentical = false
		}
		if qr.Speedup > cmp.MaxSpeedup {
			cmp.MaxSpeedup = qr.Speedup
		}
		rowTotal += rowLat
		vecTotal += vecLat
		cmp.Queries = append(cmp.Queries, qr)
	}
	if vecTotal > 0 {
		cmp.OverallSpeedup = float64(rowTotal) / float64(vecTotal)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_exec.json
// artifact).
func (c *ExecComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *ExecComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Execution model comparison (scale=%.2f, parallelism=%d, batch=%d)\n",
		c.Scale, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | row-at-a-time | vectorized | speedup | identical")
	fmt.Fprintln(out, "------+---------------+------------+---------+----------")
	for _, q := range c.Queries {
		fmt.Fprintf(out, "%-5s | %11.2fms | %8.2fms | %6.2fx | %v\n",
			q.Name, q.RowAtATimeMS, q.VectorizedMS, q.Speedup, q.Identical && q.BytesScannedSame)
	}
	fmt.Fprintf(out, "overall speedup: %.2fx, max: %.2fx, all results identical: %v\n",
		c.OverallSpeedup, c.MaxSpeedup, c.AllIdentical)
}

// renderRows renders result rows order-sensitively for exact comparison.
func renderRows(rows [][]engine.Value) string {
	var b strings.Builder
	for _, r := range rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
