package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// SharedOptions configures the cross-query scan-sharing comparison: the
// same concurrent workload — several workers running identical-table
// queries over one store with staggered starts — once with ShareScans off
// and once on.
type SharedOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	// Concurrency is the number of workers running the query list at once.
	Concurrency int
	// CacheBytes bounds the decoded-chunk cache for the shared runs.
	CacheBytes int64
	Queries    []string
}

// DefaultSharedQueries are scan-heavy store_sales queries: every worker
// reads the same partitions, which is exactly the workload scan sharing
// amortizes.
var DefaultSharedQueries = []string{"q09", "q28", "q65", "q88"}

// DefaultSharedOptions models the paper's concurrent-queries motivation at
// benchmark scale: four identical query streams over one table.
func DefaultSharedOptions() SharedOptions {
	return SharedOptions{Scale: 1.0, Seed: 42, Iterations: 3, Parallelism: 4, BatchSize: 1024, Concurrency: 4}
}

// SharedQueryReport compares one query's physical decode work across modes,
// summed over all workers and iterations.
type SharedQueryReport struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// BytesScanned is the logical per-run scan volume, identical in every
	// mode and for every worker (sharing never changes what a query is
	// billed for).
	BytesScanned int64 `json:"bytes_scanned"`
	// UnsharedBytesDecoded / SharedBytesDecoded are the physical decode
	// bytes summed across workers and iterations.
	UnsharedBytesDecoded int64   `json:"unshared_bytes_decoded"`
	SharedBytesDecoded   int64   `json:"shared_bytes_decoded"`
	DecodeReduction      float64 `json:"decode_reduction"`
	// SharedHits/CacheHits/StreamHits break down where the shared runs got
	// their chunks (in-flight attach, decoded-chunk cache, morsel stream).
	SharedHits int64 `json:"shared_hits"`
	CacheHits  int64 `json:"cache_hits"`
	StreamHits int64 `json:"stream_hits"`
	// Identical is true when every run in both modes returned rows
	// byte-identical to the serial unshared reference and the same
	// BytesScanned.
	Identical bool `json:"identical_results"`
}

// SharedComparison is the BENCH_shared.json payload.
type SharedComparison struct {
	Scale       float64 `json:"scale"`
	Parallelism int     `json:"parallelism"`
	BatchSize   int     `json:"batch_size"`
	Concurrency int     `json:"concurrency"`
	Iterations  int     `json:"iterations"`
	CacheBytes  int64   `json:"cache_bytes"`

	Queries []SharedQueryReport `json:"queries"`

	UnsharedWallMS       float64 `json:"unshared_wall_ms"`
	SharedWallMS         float64 `json:"shared_wall_ms"`
	Speedup              float64 `json:"speedup"`
	UnsharedBytesDecoded int64   `json:"unshared_bytes_decoded"`
	SharedBytesDecoded   int64   `json:"shared_bytes_decoded"`
	DecodeReduction      float64 `json:"decode_reduction"`
	AllIdentical         bool    `json:"all_identical"`
}

// sharedModeResult accumulates one mode's run.
type sharedModeResult struct {
	wall      time.Duration
	decoded   []int64 // per query, summed over workers × iterations
	shared    []int64
	cache     []int64
	stream    []int64
	identical []int64 // 0 = every run matched the reference
}

// RunSharedComparison measures the concurrent workload with scan sharing
// off and on against one shared store, verifying every individual run
// against a serial unshared reference.
func RunSharedComparison(opts SharedOptions) (*SharedComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 4
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 4
	}
	if len(opts.Queries) == 0 {
		opts.Queries = DefaultSharedQueries
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	var queries []tpcds.Query
	for _, name := range opts.Queries {
		q, ok := tpcds.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", name)
		}
		queries = append(queries, q)
	}

	// Serial unshared reference: the correctness oracle for every run.
	serial := engine.OpenWithStore(st, engine.Config{EnableFusion: true, Parallelism: 1, BatchSize: 1})
	wantRows := make([]string, len(queries))
	wantScanned := make([]int64, len(queries))
	for i, q := range queries {
		res, err := serial.Query(q.SQL)
		if err != nil {
			return nil, fmt.Errorf("bench: %s (reference): %w", q.Name, err)
		}
		wantRows[i] = renderRows(res.Rows)
		wantScanned[i] = res.Metrics.Storage.BytesScanned
	}

	runMode := func(share bool) (*sharedModeResult, error) {
		eng := engine.OpenWithStore(st, engine.Config{
			EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
			ShareScans: share, ScanCacheBytes: opts.CacheBytes,
		})
		mode := &sharedModeResult{
			decoded:   make([]int64, len(queries)),
			shared:    make([]int64, len(queries)),
			cache:     make([]int64, len(queries)),
			stream:    make([]int64, len(queries)),
			identical: make([]int64, len(queries)),
		}
		for iter := 0; iter < opts.Iterations; iter++ {
			start := time.Now()
			var wg sync.WaitGroup
			errCh := make(chan error, opts.Concurrency)
			for w := 0; w < opts.Concurrency; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					// Staggered starts: later workers attach to earlier
					// workers' in-flight scans rather than racing them in
					// lockstep.
					time.Sleep(time.Duration(w) * 500 * time.Microsecond)
					for i, q := range queries {
						res, err := eng.Query(q.SQL)
						if err != nil {
							errCh <- fmt.Errorf("bench: %s (share=%v): %w", q.Name, share, err)
							return
						}
						atomic.AddInt64(&mode.decoded[i], res.Metrics.Share.BytesDecoded)
						atomic.AddInt64(&mode.shared[i], res.Metrics.Share.SharedHits)
						atomic.AddInt64(&mode.cache[i], res.Metrics.Share.CacheHits)
						atomic.AddInt64(&mode.stream[i], res.Metrics.Share.StreamHits)
						if renderRows(res.Rows) != wantRows[i] || res.Metrics.Storage.BytesScanned != wantScanned[i] {
							atomic.AddInt64(&mode.identical[i], 1)
						}
					}
				}()
			}
			wg.Wait()
			close(errCh)
			for err := range errCh {
				return nil, err
			}
			mode.wall += time.Since(start)
		}
		return mode, nil
	}

	unshared, err := runMode(false)
	if err != nil {
		return nil, err
	}
	shared, err := runMode(true)
	if err != nil {
		return nil, err
	}

	cmp := &SharedComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		Concurrency: opts.Concurrency, Iterations: opts.Iterations, CacheBytes: opts.CacheBytes,
		AllIdentical: true,
	}
	for i, q := range queries {
		qr := SharedQueryReport{
			Name: q.Name, Pattern: q.Pattern,
			BytesScanned:         wantScanned[i],
			UnsharedBytesDecoded: unshared.decoded[i],
			SharedBytesDecoded:   shared.decoded[i],
			SharedHits:           shared.shared[i],
			CacheHits:            shared.cache[i],
			StreamHits:           shared.stream[i],
			Identical:            unshared.identical[i] == 0 && shared.identical[i] == 0,
		}
		if qr.SharedBytesDecoded > 0 {
			qr.DecodeReduction = float64(qr.UnsharedBytesDecoded) / float64(qr.SharedBytesDecoded)
		}
		if !qr.Identical {
			cmp.AllIdentical = false
		}
		cmp.UnsharedBytesDecoded += qr.UnsharedBytesDecoded
		cmp.SharedBytesDecoded += qr.SharedBytesDecoded
		cmp.Queries = append(cmp.Queries, qr)
	}
	cmp.UnsharedWallMS = float64(unshared.wall) / float64(time.Millisecond)
	cmp.SharedWallMS = float64(shared.wall) / float64(time.Millisecond)
	if shared.wall > 0 {
		cmp.Speedup = float64(unshared.wall) / float64(shared.wall)
	}
	if cmp.SharedBytesDecoded > 0 {
		cmp.DecodeReduction = float64(cmp.UnsharedBytesDecoded) / float64(cmp.SharedBytesDecoded)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_shared.json
// artifact).
func (c *SharedComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *SharedComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Cross-query scan sharing (scale=%.2f, %d workers x %d iters, parallelism=%d, batch=%d)\n",
		c.Scale, c.Concurrency, c.Iterations, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | decoded unshared | decoded shared | reduction | identical")
	fmt.Fprintln(out, "------+------------------+----------------+-----------+----------")
	for _, q := range c.Queries {
		fmt.Fprintf(out, "%-5s | %13.2f MB | %11.2f MB | %8.2fx | %v\n",
			q.Name, float64(q.UnsharedBytesDecoded)/1e6, float64(q.SharedBytesDecoded)/1e6,
			q.DecodeReduction, q.Identical)
	}
	fmt.Fprintf(out, "wall: %.2fms unshared vs %.2fms shared (%.2fx); decode reduction %.2fx; all identical: %v\n",
		c.UnsharedWallMS, c.SharedWallMS, c.Speedup, c.DecodeReduction, c.AllIdentical)
}
