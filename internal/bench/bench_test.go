package bench

import (
	"strings"
	"testing"
)

func TestRunWorkloadSubset(t *testing.T) {
	report, err := Run(Options{Scale: 0.02, Seed: 1, Iterations: 1, Queries: []string{"q65", "f01"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Queries) != 2 {
		t.Fatalf("queries = %d", len(report.Queries))
	}
	q65 := report.Queries[0]
	if q65.Name != "q65" || !q65.PlanChanged {
		t.Errorf("q65 report wrong: %+v", q65)
	}
	if q65.BytesFraction() >= 1 {
		t.Errorf("q65 bytes fraction = %v, want < 1", q65.BytesFraction())
	}
	f01 := report.Queries[1]
	if f01.PlanChanged {
		t.Error("filler query must not change plan")
	}
	if f01.BytesFraction() != 1 {
		t.Errorf("filler bytes fraction = %v, want 1", f01.BytesFraction())
	}
}

func TestRunUnknownQuery(t *testing.T) {
	if _, err := Run(Options{Scale: 0.01, Queries: []string{"nope"}}); err == nil {
		t.Error("unknown query accepted")
	}
}

func TestReportRendering(t *testing.T) {
	report, err := Run(Options{Scale: 0.02, Seed: 1, Iterations: 1, Queries: []string{"q65", "q09"}})
	if err != nil {
		t.Fatal(err)
	}
	var f1, f2, sum, aux strings.Builder
	report.WriteFigure1(&f1)
	report.WriteFigure2(&f2)
	report.WriteSummary(&sum)
	report.WriteCPUAndMemory(&aux)
	if !strings.Contains(f1.String(), "q65") || !strings.Contains(f1.String(), "speedup") {
		t.Errorf("figure 1 output:\n%s", f1.String())
	}
	if !strings.Contains(f2.String(), "fraction") {
		t.Errorf("figure 2 output:\n%s", f2.String())
	}
	if !strings.Contains(sum.String(), "overall latency improvement") {
		t.Errorf("summary output:\n%s", sum.String())
	}
	if !strings.Contains(aux.String(), "cpu reduction") {
		t.Errorf("aux output:\n%s", aux.String())
	}
	if report.MaxSpeedup() < 1 {
		t.Errorf("max speedup = %v", report.MaxSpeedup())
	}
}

func TestQueryReportDerivedMetrics(t *testing.T) {
	r := QueryReport{BaselineLatency: 100, FusedLatency: 50, BaselineBytes: 200, FusedBytes: 50, BaselineCPU: 10, FusedCPU: 5}
	if r.Speedup() != 2 {
		t.Errorf("speedup = %v", r.Speedup())
	}
	if r.LatencyImprovement() != 0.5 {
		t.Errorf("improvement = %v", r.LatencyImprovement())
	}
	if r.BytesFraction() != 0.25 {
		t.Errorf("fraction = %v", r.BytesFraction())
	}
	if r.CPUReduction() != 0.5 {
		t.Errorf("cpu = %v", r.CPUReduction())
	}
	// Zero guards.
	z := QueryReport{}
	if z.Speedup() != 1 || z.LatencyImprovement() != 0 || z.BytesFraction() != 1 || z.CPUReduction() != 0 {
		t.Error("zero-value guards wrong")
	}
}
