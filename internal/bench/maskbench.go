package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/engine"
	"repro/internal/tpcds"
)

// MaskOptions configures the mask-kernel comparison: the same fused engine
// configuration run once with NaiveMasks (every filter predicate and
// aggregation FILTER mask evaluated as an independent per-expression value
// vector) and once with the mask-family compiler (shared-prefix factoring,
// deduplicated residuals, bitmap intermediates) — the default path.
type MaskOptions struct {
	Scale       float64
	Seed        int64
	Iterations  int
	Parallelism int
	BatchSize   int
	Queries     []string
}

// DefaultMaskQueries mixes the many-mask queries the family kernel targets
// with mask-free controls. Q09/Q28/Q88 fuse into aggregations carrying many
// sibling FILTER masks (Q88 fuses eight time-bucket subqueries); f03, f24
// and f30 never acquire masks, so they bound the regression the bitmap
// filter path may cost on ordinary predicates.
var DefaultMaskQueries = []string{
	"q09", "q28", "q88", "f03", "f24", "f30",
}

// DefaultMaskOptions mirrors DefaultAggOptions but compares mask engines.
func DefaultMaskOptions() MaskOptions {
	return MaskOptions{
		Scale: 1.0, Seed: 42, Iterations: 3,
		Parallelism: 8, BatchSize: 1024,
		Queries: DefaultMaskQueries,
	}
}

// MaskQueryReport compares one query between naive per-mask evaluation and
// the mask-family kernel.
type MaskQueryReport struct {
	Name    string `json:"name"`
	Pattern string `json:"pattern"`
	// Latencies are the minimum over the run's iterations, in milliseconds.
	NaiveMS  float64 `json:"naive_ms"`
	FamilyMS float64 `json:"family_ms"`
	Speedup  float64 `json:"speedup"`
	// MaskPrefixHits is the family run's Metrics.MaskPrefixHits: per-mask
	// row evaluations the factoring skipped. Zero marks a mask-free control.
	MaskPrefixHits int64 `json:"mask_prefix_hits"`
	// Identical is true when both paths returned byte-identical rows in
	// identical order.
	Identical bool `json:"identical_results"`
	// BytesScanned and RowsProcessed must match between paths: mask
	// factoring must not change what work is accounted.
	BytesScanned      int64 `json:"bytes_scanned"`
	BytesScannedSame  bool  `json:"bytes_scanned_same"`
	RowsProcessed     int64 `json:"rows_processed"`
	RowsProcessedSame bool  `json:"rows_processed_same"`
}

// MaskComparison is the BENCH_mask.json payload.
type MaskComparison struct {
	Scale          float64           `json:"scale"`
	Parallelism    int               `json:"parallelism"`
	BatchSize      int               `json:"batch_size"`
	Iterations     int               `json:"iterations"`
	Queries        []MaskQueryReport `json:"queries"`
	OverallSpeedup float64           `json:"overall_speedup"`
	MaxSpeedup     float64           `json:"max_speedup"`
	AllIdentical   bool              `json:"all_identical"`
}

// RunMaskComparison measures naive per-mask evaluation against the
// mask-family kernel over one shared store with fusion enabled and the same
// parallelism and batch size on both sides, so the only difference between
// the two measurements is how masks and filter predicates are evaluated —
// which the result contract says must be unobservable.
func RunMaskComparison(opts MaskOptions) (*MaskComparison, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.Scale <= 0 {
		opts.Scale = 1.0
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = 8
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = 1024
	}
	if len(opts.Queries) == 0 {
		opts.Queries = DefaultMaskQueries
	}
	st, err := tpcds.NewLoadedStore(opts.Scale, opts.Seed)
	if err != nil {
		return nil, err
	}
	naive := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
		NaiveMasks: true,
	})
	family := engine.OpenWithStore(st, engine.Config{
		EnableFusion: true, Parallelism: opts.Parallelism, BatchSize: opts.BatchSize,
	})

	cmp := &MaskComparison{
		Scale: opts.Scale, Parallelism: opts.Parallelism,
		BatchSize: opts.BatchSize, Iterations: opts.Iterations,
		AllIdentical: true,
	}
	var naiveTotal, familyTotal time.Duration
	for _, name := range opts.Queries {
		q, ok := tpcds.Get(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown query %q", name)
		}
		qr := MaskQueryReport{Name: q.Name, Pattern: q.Pattern}
		var naiveRows, familyRows string
		var naiveBytes, familyBytes, naiveProcessed, familyProcessed int64
		var naiveLat, familyLat time.Duration
		for i := 0; i < opts.Iterations; i++ {
			res, err := naive.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (naive): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < naiveLat {
				naiveLat = res.Metrics.Elapsed
			}
			naiveRows = renderRows(res.Rows)
			naiveBytes = res.Metrics.Storage.BytesScanned
			naiveProcessed = res.Metrics.RowsProcessed
		}
		for i := 0; i < opts.Iterations; i++ {
			res, err := family.Query(q.SQL)
			if err != nil {
				return nil, fmt.Errorf("bench: %s (family): %w", q.Name, err)
			}
			if i == 0 || res.Metrics.Elapsed < familyLat {
				familyLat = res.Metrics.Elapsed
			}
			familyRows = renderRows(res.Rows)
			familyBytes = res.Metrics.Storage.BytesScanned
			familyProcessed = res.Metrics.RowsProcessed
			qr.MaskPrefixHits = res.Metrics.MaskPrefixHits
		}
		qr.NaiveMS = float64(naiveLat) / float64(time.Millisecond)
		qr.FamilyMS = float64(familyLat) / float64(time.Millisecond)
		if familyLat > 0 {
			qr.Speedup = float64(naiveLat) / float64(familyLat)
		}
		qr.Identical = naiveRows == familyRows
		qr.BytesScanned = naiveBytes
		qr.BytesScannedSame = naiveBytes == familyBytes
		qr.RowsProcessed = naiveProcessed
		qr.RowsProcessedSame = naiveProcessed == familyProcessed
		if !qr.Identical || !qr.BytesScannedSame || !qr.RowsProcessedSame {
			cmp.AllIdentical = false
		}
		if qr.Speedup > cmp.MaxSpeedup {
			cmp.MaxSpeedup = qr.Speedup
		}
		naiveTotal += naiveLat
		familyTotal += familyLat
		cmp.Queries = append(cmp.Queries, qr)
	}
	if familyTotal > 0 {
		cmp.OverallSpeedup = float64(naiveTotal) / float64(familyTotal)
	}
	return cmp, nil
}

// WriteJSON emits the comparison as indented JSON (the BENCH_mask.json
// artifact).
func (c *MaskComparison) WriteJSON(out io.Writer) error {
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// WriteTable renders a human-readable view of the comparison.
func (c *MaskComparison) WriteTable(out io.Writer) {
	fmt.Fprintf(out, "Mask-family kernel comparison (scale=%.2f, parallelism=%d, batch=%d)\n",
		c.Scale, c.Parallelism, c.BatchSize)
	fmt.Fprintln(out, "query | naive         | family     | speedup | prefix hits | identical")
	fmt.Fprintln(out, "------+---------------+------------+---------+-------------+----------")
	for _, q := range c.Queries {
		fmt.Fprintf(out, "%-5s | %11.2fms | %8.2fms | %6.2fx | %11d | %v\n",
			q.Name, q.NaiveMS, q.FamilyMS, q.Speedup, q.MaskPrefixHits,
			q.Identical && q.BytesScannedSame && q.RowsProcessedSame)
	}
	fmt.Fprintf(out, "overall speedup: %.2fx, max: %.2fx, all results identical: %v\n",
		c.OverallSpeedup, c.MaxSpeedup, c.AllIdentical)
}
