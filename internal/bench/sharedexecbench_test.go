package bench

import (
	"strings"
	"testing"
	"time"
)

// TestRunSharedExecComparisonSmoke runs the shared-execution comparison at
// toy scale: every client must verify against the solo reference, and the
// multi-client wave must actually serve clients from fused plans (otherwise
// the benchmark is measuring nothing).
func TestRunSharedExecComparisonSmoke(t *testing.T) {
	cmp, err := RunSharedExecComparison(SharedExecOptions{
		Rows: 3000, Seed: 7, Iterations: 1,
		Parallelism: 2, BatchSize: 256,
		Clients: []int{1, 3},
		Window:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.AllIdentical {
		t.Fatalf("shared-execution clients diverged from solo reference: %+v", cmp.Waves)
	}
	if len(cmp.Waves) != 2 {
		t.Fatalf("got %d waves, want 2", len(cmp.Waves))
	}
	if cmp.Waves[1].FusedClients == 0 {
		t.Fatalf("3-client wave served no clients from fused plans: %+v", cmp.Waves[1])
	}
	var tbl strings.Builder
	cmp.WriteTable(&tbl)
	if !strings.Contains(tbl.String(), "all identical: true") {
		t.Fatalf("table rendering missing identity line:\n%s", tbl.String())
	}
}
