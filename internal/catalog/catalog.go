// Package catalog holds table metadata: schemas, column definitions, key
// constraints, partitioning information, and basic statistics. The binder
// resolves names against the catalog, the storage layer lays tables out
// according to their partition column, and the optimizer's heuristics read
// the statistics.
package catalog

import (
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/types"
)

// Column describes one column of a base table.
type Column struct {
	Name string
	Type types.Kind
}

// Table describes a base table. PartitionColumn, when non-empty, names the
// column whose values partition the table's storage layout (the analogue of
// Athena's date-partitioned S3 layouts); filters on that column enable
// partition pruning.
type Table struct {
	Name            string
	Columns         []Column
	PartitionColumn string
	// Keys lists the candidate keys of the table (each a set of column
	// names). The JoinOnKeys rule consults key information; per the paper,
	// Athena lacks general key propagation, so only GroupBy outputs derive
	// keys during planning — base-table keys are used by tests and examples.
	Keys [][]string
	// Stats carries coarse statistics used by rule-applicability heuristics.
	Stats Stats
}

// Stats holds coarse per-table statistics. Fields are atomic because the
// storage layer refreshes them on runtime appends while concurrent queries
// plan against them.
type Stats struct {
	RowCount   atomic.Int64
	Partitions atomic.Int64
}

// ColumnIndex returns the ordinal of the named column, or -1.
func (t *Table) ColumnIndex(name string) int {
	for i, c := range t.Columns {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Column returns the named column definition, or nil.
func (t *Table) Column(name string) *Column {
	if i := t.ColumnIndex(name); i >= 0 {
		return &t.Columns[i]
	}
	return nil
}

// HasKey reports whether the given set of column names is a superset of
// some declared key of the table.
func (t *Table) HasKey(cols []string) bool {
	set := make(map[string]bool, len(cols))
	for _, c := range cols {
		set[c] = true
	}
	for _, key := range t.Keys {
		all := true
		for _, kc := range key {
			if !set[kc] {
				all = false
				break
			}
		}
		if all && len(key) > 0 {
			return true
		}
	}
	return false
}

// Catalog is a named collection of tables.
type Catalog struct {
	tables map[string]*Table
}

// New returns an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Add registers a table, failing on duplicates or invalid definitions.
func (c *Catalog) Add(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("catalog: table must have a name")
	}
	if _, ok := c.tables[t.Name]; ok {
		return fmt.Errorf("catalog: table %q already exists", t.Name)
	}
	if len(t.Columns) == 0 {
		return fmt.Errorf("catalog: table %q has no columns", t.Name)
	}
	seen := make(map[string]bool, len(t.Columns))
	for _, col := range t.Columns {
		if col.Name == "" {
			return fmt.Errorf("catalog: table %q has an unnamed column", t.Name)
		}
		if seen[col.Name] {
			return fmt.Errorf("catalog: table %q has duplicate column %q", t.Name, col.Name)
		}
		if col.Type == types.KindUnknown {
			return fmt.Errorf("catalog: column %s.%s has unknown type", t.Name, col.Name)
		}
		seen[col.Name] = true
	}
	if t.PartitionColumn != "" && t.ColumnIndex(t.PartitionColumn) < 0 {
		return fmt.Errorf("catalog: table %q partition column %q does not exist", t.Name, t.PartitionColumn)
	}
	for _, key := range t.Keys {
		for _, kc := range key {
			if t.ColumnIndex(kc) < 0 {
				return fmt.Errorf("catalog: table %q key column %q does not exist", t.Name, kc)
			}
		}
	}
	c.tables[t.Name] = t
	return nil
}

// MustAdd is Add but panics on error; intended for static schema setup.
func (c *Catalog) MustAdd(t *Table) {
	if err := c.Add(t); err != nil {
		panic(err)
	}
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	t, ok := c.tables[name]
	return t, ok
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
