package catalog

import (
	"testing"

	"repro/internal/types"
)

func sample() *Table {
	return &Table{
		Name: "item",
		Columns: []Column{
			{Name: "i_item_sk", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
			{Name: "i_price", Type: types.KindFloat64},
		},
		Keys: [][]string{{"i_item_sk"}},
	}
}

func TestAddAndLookup(t *testing.T) {
	c := New()
	if err := c.Add(sample()); err != nil {
		t.Fatal(err)
	}
	tab, ok := c.Table("item")
	if !ok {
		t.Fatal("table not found")
	}
	if tab.ColumnIndex("i_brand") != 1 {
		t.Errorf("ColumnIndex(i_brand) = %d", tab.ColumnIndex("i_brand"))
	}
	if tab.ColumnIndex("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if col := tab.Column("i_price"); col == nil || col.Type != types.KindFloat64 {
		t.Error("Column(i_price) wrong")
	}
	if tab.Column("nope") != nil {
		t.Error("Column(nope) should be nil")
	}
}

func TestAddErrors(t *testing.T) {
	c := New()
	if err := c.Add(&Table{}); err == nil {
		t.Error("unnamed table accepted")
	}
	if err := c.Add(&Table{Name: "t"}); err == nil {
		t.Error("no-column table accepted")
	}
	if err := c.Add(&Table{Name: "t", Columns: []Column{{Name: "a", Type: types.KindInt64}, {Name: "a", Type: types.KindInt64}}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if err := c.Add(&Table{Name: "t", Columns: []Column{{Name: "a"}}}); err == nil {
		t.Error("unknown-type column accepted")
	}
	if err := c.Add(&Table{Name: "t", Columns: []Column{{Name: "a", Type: types.KindInt64}}, PartitionColumn: "b"}); err == nil {
		t.Error("bad partition column accepted")
	}
	if err := c.Add(&Table{Name: "t", Columns: []Column{{Name: "a", Type: types.KindInt64}}, Keys: [][]string{{"zz"}}}); err == nil {
		t.Error("bad key column accepted")
	}
	c.MustAdd(sample())
	if err := c.Add(sample()); err == nil {
		t.Error("duplicate table accepted")
	}
}

func TestHasKey(t *testing.T) {
	tab := sample()
	if !tab.HasKey([]string{"i_item_sk"}) {
		t.Error("exact key not recognized")
	}
	if !tab.HasKey([]string{"i_item_sk", "i_brand"}) {
		t.Error("superset of key not recognized")
	}
	if tab.HasKey([]string{"i_brand"}) {
		t.Error("non-key recognized as key")
	}
}

func TestNames(t *testing.T) {
	c := New()
	c.MustAdd(&Table{Name: "zeta", Columns: []Column{{Name: "a", Type: types.KindInt64}}})
	c.MustAdd(&Table{Name: "alpha", Columns: []Column{{Name: "a", Type: types.KindInt64}}})
	names := c.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names() = %v", names)
	}
}

func TestMustAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAdd should panic on error")
		}
	}()
	New().MustAdd(&Table{})
}
