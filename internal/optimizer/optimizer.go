// Package optimizer drives logical plan rewriting. It provides the rule
// engine the fusion rules plug into plus the classical rules of the
// "existing engine" the paper composes with: expression simplification,
// filter merging, predicate pushdown, projection pruning, distinct-
// aggregate lowering to MarkDistinct, and the semi-join/distinct interplay
// that enables the Q95 rewrite.
//
// Phases (matching §IV.E's ordering constraints):
//
//  1. Lowering: DISTINCT aggregates become MarkDistinct + masks.
//  2. Normalization: simplify, merge filters, push predicates down, so the
//     duplicate subtrees produced by CTE inlining end up structurally
//     identical and fusable.
//  3. Fusion (only when enabled): UnionAllOnJoin, UnionAllFusion,
//     GroupByJoinToWindow, the semi-join→distinct-join conversion with
//     distinct pushdown, and JoinOnKeys — all running before join
//     reordering over flattened n-ary join regions.
//  4. Cleanup: pushdown again (fusion exposes new opportunities), prune
//     unused columns (narrowing scans), and simplify.
package optimizer

import (
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/logical"
)

// Options configures an optimization run.
type Options struct {
	// EnableFusion turns the paper's rules on; off reproduces the baseline
	// engine.
	EnableFusion bool
	// MaxIterations caps each phase's fixpoint loop.
	MaxIterations int
	// Required lists the output columns the caller consumes; column pruning
	// preserves exactly these. Nil preserves the whole root schema.
	Required []*expr.Column
	// DisabledRules names fusion-phase rules to skip, for ablation studies
	// (e.g. "GroupByJoinToWindow", "JoinOnKeys", "UnionAllOnJoin",
	// "UnionAllFusion", "SemiJoinToDistinctJoin", "PushDistinctThroughJoin").
	DisabledRules []string
	// MinReuseRows gates each fusion rule on the estimated cardinality of
	// the duplicated common expression (the paper's statistics-based
	// applicability heuristic). Zero applies rules whenever they match.
	MinReuseRows float64
}

func (o Options) disabled(name string) bool {
	for _, d := range o.DisabledRules {
		if d == name {
			return true
		}
	}
	return false
}

// DefaultOptions enables fusion with a sane iteration cap.
func DefaultOptions() Options {
	return Options{EnableFusion: true, MaxIterations: 10}
}

// Trace records which rules changed the plan, in firing order.
type Trace struct {
	Fired []string
}

// Changed reports whether the named rule fired at least once.
func (t *Trace) Changed(name string) bool {
	for _, f := range t.Fired {
		if f == name {
			return true
		}
	}
	return false
}

// Any reports whether any fusion rule fired.
func (t *Trace) Any() bool { return len(t.Fired) > 0 }

// Optimize rewrites the plan under the given options and returns the new
// plan plus a trace of fusion-rule firings.
func Optimize(plan logical.Operator, opts Options) (logical.Operator, *Trace) {
	if opts.MaxIterations <= 0 {
		opts.MaxIterations = 10
	}
	trace := &Trace{}

	plan = LowerDistinctAggregates(plan)
	plan = normalize(plan, opts.MaxIterations)

	if opts.EnableFusion {
		var fusionRules []core.Rule
		for _, r := range []core.Rule{
			core.UnionAllOnJoin{MinReuseRows: opts.MinReuseRows},
			core.UnionAllFusion{MinReuseRows: opts.MinReuseRows},
			core.GroupByJoinToWindow{MinReuseRows: opts.MinReuseRows},
			SemiJoinToDistinctJoin{},
			PushDistinctThroughJoin{},
			core.JoinOnKeys{MinReuseRows: opts.MinReuseRows},
		} {
			if !opts.disabled(r.Name()) {
				fusionRules = append(fusionRules, r)
			}
		}
		for iter := 0; iter < opts.MaxIterations; iter++ {
			changed := false
			for _, r := range fusionRules {
				var fired bool
				plan, fired = applyEverywhere(plan, r)
				if fired {
					trace.Fired = append(trace.Fired, r.Name())
					changed = true
					// Re-normalize so later rules see canonical shapes.
					plan = normalize(plan, opts.MaxIterations)
				}
			}
			if !changed {
				break
			}
		}
	}

	plan = normalize(plan, opts.MaxIterations)
	plan = PruneColumns(plan, opts.Required)
	plan = normalize(plan, opts.MaxIterations)
	return plan, trace
}

// applyEverywhere applies the rule top-down at every node until it no
// longer fires anywhere (bounded to avoid pathological loops).
func applyEverywhere(plan logical.Operator, r core.Rule) (logical.Operator, bool) {
	firedAny := false
	for i := 0; i < 10; i++ {
		fired := false
		plan = logical.TransformDown(plan, func(op logical.Operator) logical.Operator {
			if fired {
				return op // one firing per sweep keeps rewrites predictable
			}
			out, changed := r.Apply(op)
			if changed {
				fired = true
				return out
			}
			return op
		})
		if !fired {
			break
		}
		firedAny = true
	}
	return plan, firedAny
}

// normalize runs the classical cleanup rules to fixpoint.
func normalize(plan logical.Operator, maxIter int) logical.Operator {
	for i := 0; i < maxIter; i++ {
		before := logical.Format(plan)
		plan = SimplifyExpressions(plan)
		plan = MergeFilters(plan)
		plan = PushDownPredicates(plan)
		plan = RemoveTrivialOperators(plan)
		if logical.Format(plan) == before {
			break
		}
	}
	return plan
}
