package optimizer

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// PushDownPredicates moves filter conjuncts as close to the scans as
// possible: through projections (by substitution), into the matching side
// of joins, below group-bys (key-only conjuncts), through unions (mapped
// per branch) and sorts. Besides its classical benefit — enabling partition
// pruning and early filtering — deterministic pushdown normalizes the
// duplicate subtrees produced by CTE inlining into identical shapes, which
// is what lets Fuse match them.
func PushDownPredicates(plan logical.Operator) logical.Operator {
	return pushDown(plan, nil)
}

// pushDown rewrites op with the given extra conjuncts (defined over op's
// output schema) applied as early as possible.
func pushDown(op logical.Operator, conds []expr.Expr) logical.Operator {
	switch o := op.(type) {
	case *logical.Filter:
		return pushDown(o.Input, append(append([]expr.Expr{}, conds...), expr.Conjuncts(o.Cond)...))

	case *logical.Project:
		// Substitute assignment expressions into the conjuncts and push.
		sub := func(e expr.Expr) expr.Expr {
			return expr.Transform(e, func(x expr.Expr) expr.Expr {
				if ref, ok := x.(*expr.ColumnRef); ok {
					for _, a := range o.Cols {
						if a.Col.ID == ref.Col.ID {
							return a.E
						}
					}
				}
				return x
			})
		}
		mapped := make([]expr.Expr, len(conds))
		for i, c := range conds {
			mapped[i] = sub(c)
		}
		return &logical.Project{Input: pushDown(o.Input, mapped), Cols: o.Cols}

	case *logical.Join:
		return pushDownJoin(o, conds)

	case *logical.GroupBy:
		keySet := make(map[expr.ColumnID]bool, len(o.Keys))
		for _, k := range o.Keys {
			keySet[k.ID] = true
		}
		var below, above []expr.Expr
		for _, c := range conds {
			if expr.RefersOnly(c, keySet) {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		out := logical.Operator(&logical.GroupBy{Input: pushDown(o.Input, below), Keys: o.Keys, Aggs: o.Aggs})
		return wrap(out, above)

	case *logical.UnionAll:
		newInputs := make([]logical.Operator, len(o.Inputs))
		for i, in := range o.Inputs {
			m := expr.Mapping{}
			for j, outCol := range o.Cols {
				m.Add(outCol.ID, o.InputCols[i][j])
			}
			branchConds := make([]expr.Expr, len(conds))
			for k, c := range conds {
				branchConds[k] = m.Apply(c)
			}
			newInputs[i] = pushDown(in, branchConds)
		}
		return &logical.UnionAll{Inputs: newInputs, Cols: o.Cols, InputCols: o.InputCols}

	case *logical.Sort:
		return &logical.Sort{Input: pushDown(o.Input, conds), Keys: o.Keys}

	case *logical.Window:
		// Safe only for conjuncts over columns that partition every window
		// function (partition-homogeneous predicates).
		var shared map[expr.ColumnID]bool
		for i, f := range o.Funcs {
			s := make(map[expr.ColumnID]bool, len(f.PartitionBy))
			for _, c := range f.PartitionBy {
				s[c.ID] = true
			}
			if i == 0 {
				shared = s
			} else {
				for id := range shared {
					if !s[id] {
						delete(shared, id)
					}
				}
			}
		}
		var below, above []expr.Expr
		for _, c := range conds {
			if len(shared) > 0 && expr.RefersOnly(c, shared) {
				below = append(below, c)
			} else {
				above = append(above, c)
			}
		}
		out := logical.Operator(&logical.Window{Input: pushDown(o.Input, below), Funcs: o.Funcs})
		return wrap(out, above)

	case *logical.Limit, *logical.EnforceSingleRow, *logical.MarkDistinct:
		// Row-count- or order-sensitive: recurse with nothing, keep conds
		// above.
		ch := op.Children()
		newCh := make([]logical.Operator, len(ch))
		for i, c := range ch {
			newCh[i] = pushDown(c, nil)
		}
		out := op
		if changedChildren(ch, newCh) {
			out = op.WithChildren(newCh)
		}
		return wrap(out, conds)

	default: // Scan, Values
		return wrap(op, conds)
	}
}

func pushDownJoin(o *logical.Join, conds []expr.Expr) logical.Operator {
	leftSet := logical.OutputSet(o.Left)
	rightSet := logical.OutputSet(o.Right)
	var leftConds, rightConds, here []expr.Expr

	classify := func(c expr.Expr, allowRight, allowAbove bool) {
		switch {
		case expr.RefersOnly(c, leftSet):
			leftConds = append(leftConds, c)
		case allowRight && expr.RefersOnly(c, rightSet):
			rightConds = append(rightConds, c)
		default:
			_ = allowAbove
			here = append(here, c)
		}
	}

	switch o.Kind {
	case logical.InnerJoin, logical.CrossJoin:
		for _, c := range append(append([]expr.Expr{}, conds...), expr.Conjuncts(o.Cond)...) {
			classify(c, true, true)
		}
		left := pushDown(o.Left, leftConds)
		right := pushDown(o.Right, rightConds)
		if len(here) == 0 {
			return &logical.Join{Kind: logical.CrossJoin, Left: left, Right: right}
		}
		return &logical.Join{Kind: logical.InnerJoin, Left: left, Right: right, Cond: expr.And(here...)}

	case logical.SemiJoin:
		// External conjuncts are over the left schema; left-only parts of
		// the join condition may also sink into the left side, right-only
		// parts into the right side.
		var above []expr.Expr
		for _, c := range conds {
			if expr.RefersOnly(c, leftSet) {
				leftConds = append(leftConds, c)
			} else {
				above = append(above, c)
			}
		}
		var joinCond []expr.Expr
		for _, c := range expr.Conjuncts(o.Cond) {
			switch {
			case expr.RefersOnly(c, leftSet):
				leftConds = append(leftConds, c)
			case expr.RefersOnly(c, rightSet):
				rightConds = append(rightConds, c)
			default:
				joinCond = append(joinCond, c)
			}
		}
		left := pushDown(o.Left, leftConds)
		right := pushDown(o.Right, rightConds)
		out := logical.Operator(&logical.Join{Kind: logical.SemiJoin, Left: left, Right: right, Cond: expr.And(joinCond...)})
		return wrap(out, above)

	case logical.LeftJoin:
		// Only left-side conjuncts sink; the join condition stays intact
		// (pushing right-side parts of an outer join's ON clause is safe,
		// but pushing WHERE conjuncts into the right side is not).
		var above []expr.Expr
		for _, c := range conds {
			if expr.RefersOnly(c, leftSet) {
				leftConds = append(leftConds, c)
			} else {
				above = append(above, c)
			}
		}
		left := pushDown(o.Left, leftConds)
		right := pushDown(o.Right, nil)
		out := logical.Operator(&logical.Join{Kind: logical.LeftJoin, Left: left, Right: right, Cond: o.Cond})
		return wrap(out, above)
	}
	return wrap(o, conds)
}

func wrap(op logical.Operator, conds []expr.Expr) logical.Operator {
	if len(conds) == 0 {
		return op
	}
	return logical.NewFilter(op, expr.Simplify(expr.And(conds...)))
}

func changedChildren(a, b []logical.Operator) bool {
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}
