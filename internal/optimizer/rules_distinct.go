package optimizer

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// LowerDistinctAggregates rewrites GroupBy operators containing DISTINCT
// aggregates into the MarkDistinct form of §III.F: each distinct aggregate
// gets a MarkDistinct operator over (grouping keys ∪ aggregate argument)
// below the GroupBy, and the aggregate's mask is tightened with the mark
// column. This is Athena's alternative implementation of distinct
// aggregates; lowering before optimization lets the fusion machinery handle
// queries like Q28 through the MarkDistinct fusion rules.
func LowerDistinctAggregates(plan logical.Operator) logical.Operator {
	return logical.Transform(plan, func(op logical.Operator) logical.Operator {
		gb, ok := op.(*logical.GroupBy)
		if !ok {
			return op
		}
		hasDistinct := false
		for _, a := range gb.Aggs {
			if a.Agg.Distinct {
				hasDistinct = true
				break
			}
		}
		if !hasDistinct {
			return op
		}

		input := gb.Input
		var extraAssigns []logical.Assignment
		aggs := make([]logical.AggAssign, len(gb.Aggs))
		// Reuse one MarkDistinct per distinct argument expression.
		marks := map[string]*expr.Column{}
		for i, a := range gb.Aggs {
			if !a.Agg.Distinct {
				aggs[i] = a
				continue
			}
			arg := a.Agg.Arg
			argCol, isRef := columnOf(arg)
			if !isRef {
				// Materialize the argument expression first.
				argCol = expr.NewColumn("$dval", arg.Type())
				extraAssigns = append(extraAssigns, logical.Assignment{Col: argCol, E: arg})
			}
			key := argCol.String()
			mark, seen := marks[key]
			if !seen {
				mark = expr.NewColumn("$distinct", types.KindBool)
				marks[key] = mark
				on := append(append([]*expr.Column{}, gb.Keys...), argCol)
				if len(extraAssigns) > 0 {
					proj := logical.IdentityProject(input, input.Schema())
					proj.Cols = append(proj.Cols, extraAssigns...)
					input = proj
					extraAssigns = nil
				}
				input = &logical.MarkDistinct{Input: input, MarkCol: mark, On: on}
			}
			agg := a.Agg
			agg.Distinct = false
			agg.Arg = expr.Ref(argCol)
			agg.Mask = expr.Simplify(expr.And(agg.Mask, expr.Ref(mark)))
			aggs[i] = logical.AggAssign{Col: a.Col, Agg: agg}
		}
		return &logical.GroupBy{Input: input, Keys: gb.Keys, Aggs: aggs}
	})
}

func columnOf(e expr.Expr) (*expr.Column, bool) {
	if ref, ok := e.(*expr.ColumnRef); ok {
		return ref.Col, true
	}
	return nil, false
}

// SemiJoinToDistinctJoin converts a semi join whose right side contains
// duplicate table scans (the heuristic proxy for "an expensive common
// expression worth deduplicating", e.g. Q95's self-joined ws_wh CTE) into
// an inner join against the distinct projection of the right-side join
// columns. The widened schema is harmless — columns are consumed by
// explicit identity — and the distinct GroupBy becomes visible to
// JoinOnKeys.
type SemiJoinToDistinctJoin struct{}

// Name implements core.Rule.
func (SemiJoinToDistinctJoin) Name() string { return "SemiJoinToDistinctJoin" }

// Apply implements core.Rule.
func (SemiJoinToDistinctJoin) Apply(op logical.Operator) (logical.Operator, bool) {
	j, ok := op.(*logical.Join)
	if !ok || j.Kind != logical.SemiJoin || j.Cond == nil {
		return op, false
	}
	if !hasDuplicateTableScan(j.Right) {
		return op, false
	}
	rightSet := logical.OutputSet(j.Right)
	var rightCols []*expr.Column
	seen := map[expr.ColumnID]bool{}
	for _, c := range expr.Conjuncts(j.Cond) {
		b, isBin := c.(*expr.Binary)
		if !isBin || b.Op != expr.OpEq {
			return op, false
		}
		lr, ok1 := b.L.(*expr.ColumnRef)
		rr, ok2 := b.R.(*expr.ColumnRef)
		if !ok1 || !ok2 {
			return op, false
		}
		rc := rr.Col
		if !rightSet[rc.ID] {
			rc = lr.Col
		}
		if !rightSet[rc.ID] {
			return op, false
		}
		if !seen[rc.ID] {
			seen[rc.ID] = true
			rightCols = append(rightCols, rc)
		}
	}
	if len(rightCols) == 0 {
		return op, false
	}
	distinct := &logical.GroupBy{Input: j.Right, Keys: rightCols}
	return &logical.Join{Kind: logical.InnerJoin, Left: j.Left, Right: distinct, Cond: j.Cond}, true
}

// PushDistinctThroughJoin pushes a no-aggregate GroupBy (a DISTINCT) below
// an inner equi-join when the grouping keys are exactly one side's join
// columns — the paper's "rule that pushes a distinct operation below a join
// whenever the distinct and join columns agree" from the Q95 walkthrough.
// The join of the two per-side distincts then produces exactly the original
// distinct key values (each at multiplicity one).
type PushDistinctThroughJoin struct{}

// Name implements core.Rule.
func (PushDistinctThroughJoin) Name() string { return "PushDistinctThroughJoin" }

// Apply implements core.Rule.
func (PushDistinctThroughJoin) Apply(op logical.Operator) (logical.Operator, bool) {
	gb, ok := op.(*logical.GroupBy)
	if !ok || len(gb.Aggs) != 0 || len(gb.Keys) == 0 {
		return op, false
	}
	j, ok := gb.Input.(*logical.Join)
	if !ok || j.Kind != logical.InnerJoin || j.Cond == nil {
		return op, false
	}
	leftSet := logical.OutputSet(j.Left)
	rightSet := logical.OutputSet(j.Right)
	var leftCols, rightCols []*expr.Column
	for _, c := range expr.Conjuncts(j.Cond) {
		b, isBin := c.(*expr.Binary)
		if !isBin || b.Op != expr.OpEq {
			return op, false
		}
		lr, ok1 := b.L.(*expr.ColumnRef)
		rr, ok2 := b.R.(*expr.ColumnRef)
		if !ok1 || !ok2 {
			return op, false
		}
		l, r := lr.Col, rr.Col
		if leftSet[r.ID] && rightSet[l.ID] {
			l, r = r, l
		}
		if !leftSet[l.ID] || !rightSet[r.ID] {
			return op, false
		}
		leftCols = append(leftCols, l)
		rightCols = append(rightCols, r)
	}
	// The grouping keys must be exactly one side's join columns.
	if equalColumnSets(gb.Keys, rightCols) {
		return &logical.Join{
			Kind:  logical.InnerJoin,
			Left:  &logical.GroupBy{Input: j.Left, Keys: dedupe(leftCols)},
			Right: &logical.GroupBy{Input: j.Right, Keys: dedupe(rightCols)},
			Cond:  j.Cond,
		}, true
	}
	if equalColumnSets(gb.Keys, leftCols) {
		return &logical.Join{
			Kind:  logical.InnerJoin,
			Left:  &logical.GroupBy{Input: j.Left, Keys: dedupe(leftCols)},
			Right: &logical.GroupBy{Input: j.Right, Keys: dedupe(rightCols)},
			Cond:  j.Cond,
		}, true
	}
	return op, false
}

func equalColumnSets(a, b []*expr.Column) bool {
	as := map[expr.ColumnID]bool{}
	for _, c := range a {
		as[c.ID] = true
	}
	bs := map[expr.ColumnID]bool{}
	for _, c := range b {
		if !as[c.ID] {
			return false
		}
		bs[c.ID] = true
	}
	return len(as) == len(bs)
}

func dedupe(cols []*expr.Column) []*expr.Column {
	seen := map[expr.ColumnID]bool{}
	var out []*expr.Column
	for _, c := range cols {
		if !seen[c.ID] {
			seen[c.ID] = true
			out = append(out, c)
		}
	}
	return out
}

// hasDuplicateTableScan reports whether the subtree scans any table more
// than once — the statistics-free heuristic for "contains a duplicated
// common expression".
func hasDuplicateTableScan(op logical.Operator) bool {
	counts := map[string]int{}
	dup := false
	logical.Walk(op, func(o logical.Operator) bool {
		if s, ok := o.(*logical.Scan); ok {
			counts[s.Table.Name]++
			if counts[s.Table.Name] > 1 {
				dup = true
				return false
			}
		}
		return !dup
	})
	return dup
}
