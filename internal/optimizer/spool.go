package optimizer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
)

// SpoolCommonSubplans implements the paper's §I comparator: instead of
// fusing, duplicated subtrees are materialized once and replayed to every
// consumer ("spooling [21]", which the paper names as Athena's roadmap for
// the general case). Duplicates are detected by canonical plan signatures
// (column identities renumbered per subtree, so two CTE inlinings match),
// and the largest duplicated subtrees win. Returns the rewritten plan and
// the number of spool groups introduced.
func SpoolCommonSubplans(plan logical.Operator) (logical.Operator, int) {
	counts := map[string]int{}
	countSignatures(plan, counts)

	groups := map[string]*spoolGroup{}
	next := 1
	out := spoolRewrite(plan, counts, groups, &next)

	// Unwrap groups that ended up with a single occurrence (their other
	// copies were nested inside a larger spooled subtree): a spool with one
	// reader is pure overhead.
	single := map[int]bool{}
	used := 0
	for _, g := range groups {
		if g.occurrences < 2 {
			single[g.id] = true
		} else {
			used++
		}
	}
	if len(single) > 0 {
		out = logical.Transform(out, func(op logical.Operator) logical.Operator {
			if s, ok := op.(*logical.Spool); ok && single[s.ID] && s.Producer != nil {
				return s.Producer
			}
			return op
		})
	}
	return out, used
}

type spoolGroup struct {
	id          int
	occurrences int
	hasProducer bool
}

func countSignatures(op logical.Operator, counts map[string]int) {
	counts[Signature(op)]++
	for _, c := range op.Children() {
		countSignatures(c, counts)
	}
}

func spoolRewrite(op logical.Operator, counts map[string]int, groups map[string]*spoolGroup, next *int) logical.Operator {
	sig := Signature(op)
	if counts[sig] >= 2 && worthSpooling(op) {
		g := groups[sig]
		if g == nil {
			g = &spoolGroup{id: *next}
			*next++
			groups[sig] = g
		}
		g.occurrences++
		s := &logical.Spool{ID: g.id, Cols: op.Schema()}
		if !g.hasProducer {
			g.hasProducer = true
			s.Producer = op
		}
		return s
	}
	ch := op.Children()
	if len(ch) == 0 {
		return op
	}
	newCh := make([]logical.Operator, len(ch))
	changed := false
	for i, c := range ch {
		newCh[i] = spoolRewrite(c, counts, groups, next)
		if newCh[i] != c {
			changed = true
		}
	}
	if changed {
		return op.WithChildren(newCh)
	}
	return op
}

// worthSpooling gates materialization to subtrees that do real work: they
// must read a table and contain more than a bare scan (materializing a
// plain scan re-buffers the base table for no benefit).
func worthSpooling(op logical.Operator) bool {
	if _, isScan := op.(*logical.Scan); isScan {
		return false
	}
	found := false
	logical.Walk(op, func(o logical.Operator) bool {
		if _, ok := o.(*logical.Scan); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// Signature renders a canonical description of a plan: column identities
// are renumbered in first-appearance order, so structurally identical
// subtrees (e.g. two inlinings of the same CTE) produce equal strings while
// any structural or literal difference changes the signature.
func Signature(op logical.Operator) string {
	var b strings.Builder
	ids := map[expr.ColumnID]int{}
	sigOp(&b, op, ids)
	return b.String()
}

func canonID(ids map[expr.ColumnID]int, id expr.ColumnID) int {
	if n, ok := ids[id]; ok {
		return n
	}
	n := len(ids)
	ids[id] = n
	return n
}

func sigOp(b *strings.Builder, op logical.Operator, ids map[expr.ColumnID]int) {
	switch o := op.(type) {
	case *logical.Scan:
		b.WriteString("scan(")
		b.WriteString(o.Table.Name)
		for i, name := range o.ColNames {
			b.WriteByte(',')
			b.WriteString(name)
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(canonID(ids, o.Cols[i].ID)))
		}
		b.WriteByte(')')
		return
	case *logical.Filter:
		sigOp(b, o.Input, ids)
		b.WriteString("|filter[")
		sigExpr(b, o.Cond, ids)
		b.WriteByte(']')
		return
	case *logical.Project:
		sigOp(b, o.Input, ids)
		b.WriteString("|project[")
		for i, a := range o.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			sigExpr(b, a.E, ids)
			b.WriteString("->")
			b.WriteString(strconv.Itoa(canonID(ids, a.Col.ID)))
		}
		b.WriteByte(']')
		return
	case *logical.Join:
		b.WriteString("join(")
		b.WriteString(o.Kind.String())
		b.WriteByte(';')
		sigOp(b, o.Left, ids)
		b.WriteByte(';')
		sigOp(b, o.Right, ids)
		b.WriteByte(';')
		sigExpr(b, o.Cond, ids)
		b.WriteByte(')')
		return
	case *logical.GroupBy:
		sigOp(b, o.Input, ids)
		b.WriteString("|groupby[")
		for i, k := range o.Keys {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(canonID(ids, k.ID)))
		}
		b.WriteByte(';')
		for i, a := range o.Aggs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(a.Agg.Fn.String())
			b.WriteByte('(')
			sigExpr(b, a.Agg.Arg, ids)
			b.WriteByte('#')
			sigExpr(b, a.Agg.Mask, ids)
			b.WriteString(")->")
			b.WriteString(strconv.Itoa(canonID(ids, a.Col.ID)))
		}
		b.WriteByte(']')
		return
	case *logical.MarkDistinct:
		sigOp(b, o.Input, ids)
		b.WriteString("|markdistinct[")
		for i, c := range o.On {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(canonID(ids, c.ID)))
		}
		b.WriteByte('#')
		sigExpr(b, o.Mask, ids)
		b.WriteString("->")
		b.WriteString(strconv.Itoa(canonID(ids, o.MarkCol.ID)))
		b.WriteByte(']')
		return
	case *logical.Window:
		sigOp(b, o.Input, ids)
		b.WriteString("|window[")
		for i, f := range o.Funcs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Agg.Fn.String())
			b.WriteByte('(')
			sigExpr(b, f.Agg.Arg, ids)
			b.WriteByte('#')
			sigExpr(b, f.Agg.Mask, ids)
			b.WriteString(")over(")
			for k, p := range f.PartitionBy {
				if k > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(canonID(ids, p.ID)))
			}
			b.WriteString(")->")
			b.WriteString(strconv.Itoa(canonID(ids, f.Col.ID)))
		}
		b.WriteByte(']')
		return
	case *logical.UnionAll:
		b.WriteString("union(")
		for i, in := range o.Inputs {
			if i > 0 {
				b.WriteByte(';')
			}
			sigOp(b, in, ids)
			b.WriteByte('[')
			for k, c := range o.InputCols[i] {
				if k > 0 {
					b.WriteByte(',')
				}
				b.WriteString(strconv.Itoa(canonID(ids, c.ID)))
			}
			b.WriteByte(']')
		}
		b.WriteString(")->")
		for i, c := range o.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(canonID(ids, c.ID)))
		}
		return
	case *logical.Values:
		b.WriteString("values(")
		for i, c := range o.Cols {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(c.Type.String())
			b.WriteByte('=')
			b.WriteString(strconv.Itoa(canonID(ids, c.ID)))
		}
		b.WriteByte(';')
		for _, row := range o.Rows {
			for _, v := range row {
				b.WriteString(v.String())
				b.WriteByte(',')
			}
			b.WriteByte('/')
		}
		b.WriteByte(')')
		return
	case *logical.Sort:
		sigOp(b, o.Input, ids)
		b.WriteString("|sort[")
		for i, k := range o.Keys {
			if i > 0 {
				b.WriteByte(',')
			}
			sigExpr(b, k.E, ids)
			if k.Desc {
				b.WriteString(" desc")
			}
		}
		b.WriteByte(']')
		return
	case *logical.Limit:
		sigOp(b, o.Input, ids)
		fmt.Fprintf(b, "|limit[%d]", o.N)
		return
	case *logical.EnforceSingleRow:
		sigOp(b, o.Input, ids)
		b.WriteString("|esr")
		return
	case *logical.Spool:
		fmt.Fprintf(b, "spool#%d", o.ID)
		if o.Producer != nil {
			b.WriteByte('(')
			sigOp(b, o.Producer, ids)
			b.WriteByte(')')
		}
		return
	default:
		fmt.Fprintf(b, "op(%T)", op)
	}
}

func sigExpr(b *strings.Builder, e expr.Expr, ids map[expr.ColumnID]int) {
	if e == nil {
		b.WriteByte('_')
		return
	}
	switch x := e.(type) {
	case *expr.ColumnRef:
		b.WriteByte('c')
		b.WriteString(strconv.Itoa(canonID(ids, x.Col.ID)))
	case *expr.Literal:
		b.WriteString(x.Val.String())
	case *expr.Binary:
		b.WriteByte('(')
		sigExpr(b, x.L, ids)
		b.WriteString(x.Op.String())
		sigExpr(b, x.R, ids)
		b.WriteByte(')')
	case *expr.Not:
		b.WriteString("not(")
		sigExpr(b, x.E, ids)
		b.WriteByte(')')
	case *expr.IsNull:
		b.WriteString("isnull(")
		sigExpr(b, x.E, ids)
		if x.Neg {
			b.WriteString(",neg")
		}
		b.WriteByte(')')
	case *expr.InList:
		b.WriteString("in(")
		sigExpr(b, x.E, ids)
		for _, it := range x.List {
			b.WriteByte(',')
			sigExpr(b, it, ids)
		}
		if x.Neg {
			b.WriteString(",neg")
		}
		b.WriteByte(')')
	case *expr.Like:
		b.WriteString("like(")
		sigExpr(b, x.E, ids)
		b.WriteByte(',')
		b.WriteString(x.Pattern)
		b.WriteByte(')')
	case *expr.Case:
		b.WriteString("case(")
		for _, w := range x.Whens {
			sigExpr(b, w.Cond, ids)
			b.WriteString("=>")
			sigExpr(b, w.Then, ids)
			b.WriteByte(';')
		}
		sigExpr(b, x.Else, ids)
		b.WriteByte(')')
	case *expr.Coalesce:
		b.WriteString("coalesce(")
		for i, a := range x.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			sigExpr(b, a, ids)
		}
		b.WriteByte(')')
	default:
		fmt.Fprintf(b, "e(%T)", e)
	}
}
