package optimizer

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// dupAgg builds a fresh instance of a common aggregation subtree.
func dupAgg() *logical.GroupBy {
	s := logical.NewScan(salesTable())
	f := logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Int(5))))
	return &logical.GroupBy{Input: f, Keys: []*expr.Column{s.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("rev", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.Cols[3])}}}}
}

func TestSignatureCanonicalizesColumnIDs(t *testing.T) {
	a, b := dupAgg(), dupAgg()
	if Signature(a) != Signature(b) {
		t.Fatalf("structurally identical subtrees must share a signature:\n%s\nvs\n%s",
			Signature(a), Signature(b))
	}
	// A literal change must change the signature.
	s := logical.NewScan(salesTable())
	c := &logical.GroupBy{Input: logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Int(6)))),
		Keys: []*expr.Column{s.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("rev", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.Cols[3])}}}}
	if Signature(a) == Signature(c) {
		t.Fatal("different literals must produce different signatures")
	}
	// A different aggregate function must change the signature.
	d := dupAgg()
	d.Aggs[0].Agg.Fn = expr.AggAvg
	if Signature(a) == Signature(d) {
		t.Fatal("different aggregate functions must differ")
	}
}

func TestSpoolCommonSubplansBasic(t *testing.T) {
	a, b := dupAgg(), dupAgg()
	join := &logical.Join{Kind: logical.InnerJoin, Left: a, Right: b,
		Cond: expr.Eq(expr.Ref(a.Keys[0]), expr.Ref(b.Keys[0]))}
	out, groups := SpoolCommonSubplans(join)
	if groups != 1 {
		t.Fatalf("groups = %d, want 1", groups)
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	producers, readers := 0, 0
	logical.Walk(out, func(op logical.Operator) bool {
		if sp, ok := op.(*logical.Spool); ok {
			if sp.Producer != nil {
				producers++
			} else {
				readers++
			}
		}
		return true
	})
	if producers != 1 || readers != 1 {
		t.Errorf("producers=%d readers=%d, want 1/1:\n%s", producers, readers, logical.Format(out))
	}
	// The consumer-side schema must keep the original columns so upstream
	// references stay valid.
	outSet := logical.OutputSet(out)
	for _, c := range join.Schema() {
		if !outSet[c.ID] {
			t.Errorf("lost column %s", c)
		}
	}
}

func TestSpoolSkipsBareScansAndSingles(t *testing.T) {
	tab := salesTable()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	join := &logical.Join{Kind: logical.CrossJoin, Left: s1, Right: s2}
	out, groups := SpoolCommonSubplans(join)
	if groups != 0 {
		t.Errorf("bare scans must not spool:\n%s", logical.Format(out))
	}
	// A unique subtree must not spool either.
	single := dupAgg()
	out2, groups2 := SpoolCommonSubplans(single)
	if groups2 != 0 {
		t.Errorf("unique subtree spooled:\n%s", logical.Format(out2))
	}
	if strings.Contains(logical.Format(out2), "Spool") {
		t.Error("no spool operators expected")
	}
}

func TestSpoolPicksLargestDuplicate(t *testing.T) {
	// Duplicate subtree X containing a smaller duplicate Y: only X spools.
	mk := func() logical.Operator {
		inner := dupAgg()
		return logical.NewFilter(inner, expr.NewBinary(expr.OpGt, expr.Ref(inner.Aggs[0].Col), expr.Lit(types.Float(1))))
	}
	a, b := mk(), mk()
	u := logical.NewUnionAll([]logical.Operator{a, b},
		[][]*expr.Column{{a.Schema()[0]}, {b.Schema()[0]}})
	out, groups := SpoolCommonSubplans(u)
	if groups != 1 {
		t.Fatalf("groups = %d, want exactly 1 (the maximal subtree):\n%s", groups, logical.Format(out))
	}
	spools := 0
	logical.Walk(out, func(op logical.Operator) bool {
		if _, ok := op.(*logical.Spool); ok {
			spools++
		}
		return true
	})
	if spools != 2 {
		t.Errorf("spool occurrences = %d, want 2:\n%s", spools, logical.Format(out))
	}
}

func TestSpoolThreeConsumers(t *testing.T) {
	a, b, c := dupAgg(), dupAgg(), dupAgg()
	u := logical.NewUnionAll([]logical.Operator{a, b, c},
		[][]*expr.Column{{a.Schema()[0]}, {b.Schema()[0]}, {c.Schema()[0]}})
	out, groups := SpoolCommonSubplans(u)
	if groups != 1 {
		t.Fatalf("groups = %d", groups)
	}
	readers := 0
	logical.Walk(out, func(op logical.Operator) bool {
		if sp, ok := op.(*logical.Spool); ok && sp.Producer == nil {
			readers++
		}
		return true
	})
	if readers != 2 {
		t.Errorf("readers = %d, want 2 (plus one producer)", readers)
	}
}
