package optimizer

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

func TestSimplifyExpressionsAcrossOperators(t *testing.T) {
	ss := logical.NewScan(salesTable())
	redundant := expr.NewBinary(expr.OpAnd, expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(1))), expr.TrueExpr())
	w := &logical.Window{Input: ss, Funcs: []logical.WindowAssign{{
		Col:         expr.NewColumn("w", types.KindFloat64),
		Agg:         expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(ss.Cols[3]), Mask: redundant},
		PartitionBy: []*expr.Column{ss.Cols[1]},
	}}}
	srt := &logical.Sort{Input: w, Keys: []logical.SortKey{{E: expr.NewBinary(expr.OpAdd, expr.Lit(types.Int(1)), expr.Lit(types.Int(2)))}}}
	md := &logical.MarkDistinct{Input: srt, MarkCol: expr.NewColumn("d", types.KindBool),
		On: []*expr.Column{ss.Cols[0]}, Mask: expr.TrueExpr()}
	out := SimplifyExpressions(md)
	mustValid(t, out)
	txt := logical.Format(out)
	if strings.Contains(txt, "AND true") {
		t.Errorf("window mask not simplified:\n%s", txt)
	}
	if !strings.Contains(txt, "Sort 3") {
		t.Errorf("sort key not folded:\n%s", txt)
	}
	// TRUE MarkDistinct mask must be dropped entirely.
	outMD := out.(*logical.MarkDistinct)
	if outMD.Mask != nil {
		t.Errorf("TRUE mask should become nil, got %s", outMD.Mask)
	}
}

func TestSimplifyFilterToTrueDisappears(t *testing.T) {
	ss := logical.NewScan(salesTable())
	f := &logical.Filter{Input: ss, Cond: expr.NewBinary(expr.OpOr, expr.TrueExpr(), expr.NotNull(expr.Ref(ss.Cols[0])))}
	out := SimplifyExpressions(f)
	if _, stillFilter := out.(*logical.Filter); stillFilter {
		t.Errorf("tautological filter survived:\n%s", logical.Format(out))
	}
}

func TestMergeFilters(t *testing.T) {
	ss := logical.NewScan(salesTable())
	inner := &logical.Filter{Input: ss, Cond: expr.NotNull(expr.Ref(ss.Cols[0]))}
	outer := &logical.Filter{Input: inner, Cond: expr.NotNull(expr.Ref(ss.Cols[1]))}
	out := MergeFilters(outer)
	f, ok := out.(*logical.Filter)
	if !ok {
		t.Fatalf("expected filter, got %T", out)
	}
	if _, nested := f.Input.(*logical.Filter); nested {
		t.Error("filters not merged")
	}
	if len(expr.Conjuncts(f.Cond)) != 2 {
		t.Errorf("merged condition wrong: %s", f.Cond)
	}
}

func TestRemoveSingletonUnion(t *testing.T) {
	ss := logical.NewScan(salesTable())
	u := &logical.UnionAll{
		Inputs:    []logical.Operator{ss},
		Cols:      []*expr.Column{expr.NewColumn("x", types.KindInt64)},
		InputCols: [][]*expr.Column{{ss.Cols[0]}},
	}
	out := RemoveTrivialOperators(u)
	if _, stillUnion := out.(*logical.UnionAll); stillUnion {
		t.Errorf("singleton union survived:\n%s", logical.Format(out))
	}
	mustValid(t, out)
}

func TestPushDownThroughWindowPartitionOnly(t *testing.T) {
	ss := logical.NewScan(salesTable())
	w := &logical.Window{Input: ss, Funcs: []logical.WindowAssign{{
		Col:         expr.NewColumn("w", types.KindFloat64),
		Agg:         expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(ss.Cols[3])},
		PartitionBy: []*expr.Column{ss.Cols[1]},
	}}}
	// A predicate on the partition column sinks below the window.
	partPred := expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[1]), expr.Lit(types.Int(2)))
	out := PushDownPredicates(logical.NewFilter(w, partPred))
	if _, topFilter := out.(*logical.Filter); topFilter {
		t.Errorf("partition predicate should sink below window:\n%s", logical.Format(out))
	}
	// A predicate on a non-partition column must stay above.
	otherPred := expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(2)))
	out2 := PushDownPredicates(logical.NewFilter(w, otherPred))
	if _, topFilter := out2.(*logical.Filter); !topFilter {
		t.Errorf("non-partition predicate must stay above window:\n%s", logical.Format(out2))
	}
}

func TestPushDownNotThroughMarkDistinct(t *testing.T) {
	ss := logical.NewScan(salesTable())
	md := &logical.MarkDistinct{Input: ss, MarkCol: expr.NewColumn("d", types.KindBool), On: []*expr.Column{ss.Cols[0]}}
	pred := expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(1)))
	out := PushDownPredicates(logical.NewFilter(md, pred))
	if _, topFilter := out.(*logical.Filter); !topFilter {
		t.Errorf("filter must stay above MarkDistinct (marks depend on full input):\n%s", logical.Format(out))
	}
}

func TestPushDownSemiJoinSides(t *testing.T) {
	probe := logical.NewScan(salesTable())
	build := logical.NewScan(itemTable())
	semi := &logical.Join{Kind: logical.SemiJoin, Left: probe, Right: build,
		Cond: expr.And(
			expr.Eq(expr.Ref(probe.Cols[0]), expr.Ref(build.Cols[0])),
			expr.Eq(expr.Ref(build.Cols[1]), expr.Lit(types.String("b"))),              // right-only
			expr.NewBinary(expr.OpGt, expr.Ref(probe.Cols[2]), expr.Lit(types.Int(1))), // left-only
		)}
	out := PushDownPredicates(semi)
	mustValid(t, out)
	j := out.(*logical.Join)
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left-only conjunct not pushed:\n%s", logical.Format(out))
	}
	if _, ok := j.Right.(*logical.Filter); !ok {
		t.Errorf("right-only conjunct not pushed:\n%s", logical.Format(out))
	}
	if len(expr.Conjuncts(j.Cond)) != 1 {
		t.Errorf("join condition should keep only the cross-side equality: %s", j.Cond)
	}
}

func TestPushDownLeftJoin(t *testing.T) {
	l := logical.NewScan(salesTable())
	r := logical.NewScan(itemTable())
	lj := &logical.Join{Kind: logical.LeftJoin, Left: l, Right: r,
		Cond: expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0]))}
	// Left-side predicate sinks; right-side predicate must NOT sink (it
	// would change NULL-extension semantics).
	cond := expr.And(
		expr.NewBinary(expr.OpGt, expr.Ref(l.Cols[2]), expr.Lit(types.Int(1))),
		expr.NotNull(expr.Ref(r.Cols[1])),
	)
	out := PushDownPredicates(logical.NewFilter(lj, cond))
	mustValid(t, out)
	top, isFilter := out.(*logical.Filter)
	if !isFilter {
		t.Fatalf("right-side predicate must stay above the left join:\n%s", logical.Format(out))
	}
	j := top.Input.(*logical.Join)
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left predicate not pushed:\n%s", logical.Format(out))
	}
	if _, ok := j.Right.(*logical.Filter); ok {
		t.Errorf("right predicate wrongly pushed into outer join side:\n%s", logical.Format(out))
	}
}

func TestLowerDistinctAggregateExpressionArg(t *testing.T) {
	ss := logical.NewScan(salesTable())
	gb := &logical.GroupBy{Input: ss, Aggs: []logical.AggAssign{{
		Col: expr.NewColumn("d", types.KindInt64),
		Agg: expr.AggCall{Fn: expr.AggCount, Distinct: true,
			Arg: expr.NewBinary(expr.OpAdd, expr.Ref(ss.Cols[0]), expr.Lit(types.Int(1)))},
	}}}
	out := LowerDistinctAggregates(gb)
	mustValid(t, out)
	// The expression argument must be materialized by a projection below
	// the MarkDistinct.
	txt := logical.Format(out)
	if !strings.Contains(txt, "MarkDistinct") || !strings.Contains(txt, "$dval") {
		t.Errorf("expression arg not materialized:\n%s", txt)
	}
}

func TestSignatureCoversAllOperators(t *testing.T) {
	ss := logical.NewScan(salesTable())
	plan := &logical.Limit{
		N: 5,
		Input: &logical.Sort{
			Keys: []logical.SortKey{{E: expr.Ref(ss.Cols[0])}},
			Input: &logical.EnforceSingleRow{
				Input: &logical.Window{
					Input: &logical.UnionAll{
						Inputs:    []logical.Operator{ss},
						Cols:      []*expr.Column{expr.NewColumn("u", types.KindInt64)},
						InputCols: [][]*expr.Column{{ss.Cols[0]}},
					},
				},
			},
		},
	}
	sig := Signature(plan)
	for _, want := range []string{"limit", "sort", "esr", "window", "union", "scan"} {
		if !strings.Contains(sig, want) {
			t.Errorf("signature missing %q: %s", want, sig)
		}
	}
	v := logical.NewValuesInt("tag", 1, 2)
	if !strings.Contains(Signature(v), "values") {
		t.Error("values signature missing")
	}
	sp := &logical.Spool{ID: 3, Producer: ss, Cols: ss.Cols}
	if !strings.Contains(Signature(sp), "spool#3") {
		t.Error("spool signature missing")
	}
	// Expression kinds.
	cond := expr.And(
		&expr.Not{E: expr.NotNull(expr.Ref(ss.Cols[0]))},
		&expr.InList{E: expr.Ref(ss.Cols[0]), List: []expr.Expr{expr.Lit(types.Int(1))}},
		&expr.Like{E: expr.Lit(types.String("x")), Pattern: "x%"},
		&expr.Case{Whens: []expr.When{{Cond: expr.TrueExpr(), Then: expr.Lit(types.Int(1))}}},
		&expr.Coalesce{Args: []expr.Expr{expr.Ref(ss.Cols[0])}},
	)
	f := &logical.Filter{Input: ss, Cond: cond}
	sig2 := Signature(f)
	for _, want := range []string{"not(", "in(", "like(", "case(", "coalesce("} {
		if !strings.Contains(sig2, want) {
			t.Errorf("expression signature missing %q", want)
		}
	}
}
