package optimizer

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// mapOperatorExprs returns a copy of the operator with every embedded
// expression rewritten by f (children untouched). Returns op unchanged when
// nothing changed.
func mapOperatorExprs(op logical.Operator, f func(expr.Expr) expr.Expr) logical.Operator {
	switch o := op.(type) {
	case *logical.Filter:
		c := f(o.Cond)
		if c == o.Cond {
			return op
		}
		return &logical.Filter{Input: o.Input, Cond: c}
	case *logical.Project:
		changed := false
		cols := make([]logical.Assignment, len(o.Cols))
		for i, a := range o.Cols {
			e := f(a.E)
			if e != a.E {
				changed = true
			}
			cols[i] = logical.Assignment{Col: a.Col, E: e}
		}
		if !changed {
			return op
		}
		return &logical.Project{Input: o.Input, Cols: cols}
	case *logical.Join:
		if o.Cond == nil {
			return op
		}
		c := f(o.Cond)
		if c == o.Cond {
			return op
		}
		return &logical.Join{Kind: o.Kind, Left: o.Left, Right: o.Right, Cond: c}
	case *logical.GroupBy:
		changed := false
		aggs := make([]logical.AggAssign, len(o.Aggs))
		for i, a := range o.Aggs {
			agg := a.Agg
			if agg.Arg != nil {
				if e := f(agg.Arg); e != agg.Arg {
					agg.Arg = e
					changed = true
				}
			}
			if agg.Mask != nil {
				if e := f(agg.Mask); e != agg.Mask {
					agg.Mask = e
					changed = true
				}
			}
			aggs[i] = logical.AggAssign{Col: a.Col, Agg: agg}
		}
		if !changed {
			return op
		}
		return &logical.GroupBy{Input: o.Input, Keys: o.Keys, Aggs: aggs}
	case *logical.Window:
		changed := false
		funcs := make([]logical.WindowAssign, len(o.Funcs))
		for i, w := range o.Funcs {
			agg := w.Agg
			if agg.Arg != nil {
				if e := f(agg.Arg); e != agg.Arg {
					agg.Arg = e
					changed = true
				}
			}
			if agg.Mask != nil {
				if e := f(agg.Mask); e != agg.Mask {
					agg.Mask = e
					changed = true
				}
			}
			funcs[i] = logical.WindowAssign{Col: w.Col, Agg: agg, PartitionBy: w.PartitionBy}
		}
		if !changed {
			return op
		}
		return &logical.Window{Input: o.Input, Funcs: funcs}
	case *logical.MarkDistinct:
		if o.Mask == nil {
			return op
		}
		m := f(o.Mask)
		if expr.IsTrueLiteral(m) {
			m = nil
		}
		if m == o.Mask {
			return op
		}
		return &logical.MarkDistinct{Input: o.Input, MarkCol: o.MarkCol, On: o.On, Mask: m}
	case *logical.Sort:
		changed := false
		keys := make([]logical.SortKey, len(o.Keys))
		for i, k := range o.Keys {
			e := f(k.E)
			if e != k.E {
				changed = true
			}
			keys[i] = logical.SortKey{E: e, Desc: k.Desc}
		}
		if !changed {
			return op
		}
		return &logical.Sort{Input: o.Input, Keys: keys}
	default:
		return op
	}
}

// SimplifyExpressions applies expression simplification to every operator.
func SimplifyExpressions(plan logical.Operator) logical.Operator {
	return logical.Transform(plan, func(op logical.Operator) logical.Operator {
		out := mapOperatorExprs(op, expr.Simplify)
		// A filter that simplified to TRUE disappears.
		if f, ok := out.(*logical.Filter); ok && expr.IsTrueLiteral(f.Cond) {
			return f.Input
		}
		return out
	})
}

// MergeFilters collapses adjacent filters into a single conjunction.
func MergeFilters(plan logical.Operator) logical.Operator {
	return logical.Transform(plan, func(op logical.Operator) logical.Operator {
		f, ok := op.(*logical.Filter)
		if !ok {
			return op
		}
		inner, ok := f.Input.(*logical.Filter)
		if !ok {
			return op
		}
		return &logical.Filter{Input: inner.Input, Cond: expr.And(f.Cond, inner.Cond)}
	})
}

// RemoveTrivialOperators drops operators that provably do nothing: identity
// projections, single-input unions, TRUE filters.
func RemoveTrivialOperators(plan logical.Operator) logical.Operator {
	return logical.Transform(plan, func(op logical.Operator) logical.Operator {
		switch o := op.(type) {
		case *logical.Filter:
			if expr.IsTrueLiteral(o.Cond) {
				return o.Input
			}
		case *logical.Project:
			// An all-identity projection only narrows or reorders the
			// schema; consumers reference columns by identity, so it can be
			// dropped entirely (column pruning re-narrows scans later).
			for _, a := range o.Cols {
				ref, ok := a.E.(*expr.ColumnRef)
				if !ok || ref.Col != a.Col {
					return op
				}
			}
			return o.Input
		case *logical.UnionAll:
			if len(o.Inputs) == 1 {
				proj := &logical.Project{Input: o.Inputs[0]}
				for j, c := range o.Cols {
					proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(o.InputCols[0][j])})
				}
				return proj
			}
		}
		return op
	})
}
