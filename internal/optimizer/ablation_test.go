package optimizer

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// TestDisabledRulesAblation verifies per-rule ablation: with JoinOnKeys
// disabled, the Q09-style cross join of scalar aggregates must keep its
// duplicated scans even though fusion is on.
func TestDisabledRulesAblation(t *testing.T) {
	tab := salesTable()
	mk := func(lo, hi int64) logical.Operator {
		s := logical.NewScan(tab)
		f := logical.NewFilter(s, expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[2]), expr.Lit(types.Int(lo))),
			expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[2]), expr.Lit(types.Int(hi))),
		))
		gb := &logical.GroupBy{Input: f, Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("v", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[3])},
		}}}
		return &logical.EnforceSingleRow{Input: gb}
	}
	build := func() logical.Operator {
		return &logical.Join{Kind: logical.CrossJoin, Left: mk(1, 5), Right: mk(6, 9)}
	}

	full, fullTrace := Optimize(build(), DefaultOptions())
	if !fullTrace.Changed("JoinOnKeys") {
		t.Fatal("precondition: JoinOnKeys fires with all rules on")
	}
	if logical.CountScansOf(full, "store_sales") != 1 {
		t.Fatal("precondition: full fusion leaves one scan")
	}

	opts := DefaultOptions()
	opts.DisabledRules = []string{"JoinOnKeys"}
	ablated, trace := Optimize(build(), opts)
	if trace.Changed("JoinOnKeys") {
		t.Error("disabled rule fired")
	}
	if got := logical.CountScansOf(ablated, "store_sales"); got != 2 {
		t.Errorf("ablated plan scans = %d, want 2:\n%s", got, logical.Format(ablated))
	}
}

// TestDisabledRulesLeaveOthersActive ensures disabling one rule does not
// silence the rest.
func TestDisabledRulesLeaveOthersActive(t *testing.T) {
	tab := salesTable()
	mkFilter := func(lo int64) (logical.Operator, *expr.Column) {
		s := logical.NewScan(tab)
		f := logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Int(lo))))
		return f, s.Cols[0]
	}
	b1, c1 := mkFilter(1)
	b2, c2 := mkFilter(5)
	u := logical.NewUnionAll([]logical.Operator{b1, b2}, [][]*expr.Column{{c1}, {c2}})

	opts := DefaultOptions()
	opts.DisabledRules = []string{"JoinOnKeys", "GroupByJoinToWindow"}
	out, trace := Optimize(u, opts)
	if !trace.Changed("UnionAllFusion") {
		t.Errorf("UnionAllFusion should still fire; trace=%v\n%s", trace.Fired, logical.Format(out))
	}
}

// TestMinReuseRowsGate checks the statistics-based applicability heuristic:
// with a threshold far above the table size, fusion rules decline to fire.
func TestMinReuseRowsGate(t *testing.T) {
	tab := salesTable()
	tab.Stats.RowCount.Store(100) // small table
	mk := func(lo int64) logical.Operator {
		s := logical.NewScan(tab)
		f := logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Int(lo))))
		gb := &logical.GroupBy{Input: f, Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("v", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[3])},
		}}}
		return &logical.EnforceSingleRow{Input: gb}
	}
	build := func() logical.Operator {
		return &logical.Join{Kind: logical.CrossJoin, Left: mk(1), Right: mk(5)}
	}

	// Threshold above the estimate: rule declines.
	opts := DefaultOptions()
	opts.MinReuseRows = 1e9
	_, trace := Optimize(build(), opts)
	if trace.Changed("JoinOnKeys") {
		t.Error("JoinOnKeys fired despite tiny estimated reuse")
	}
	// Threshold below: rule fires.
	opts.MinReuseRows = 1
	_, trace2 := Optimize(build(), opts)
	if !trace2.Changed("JoinOnKeys") {
		t.Error("JoinOnKeys should fire above the threshold")
	}
}
