package optimizer

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// PruneColumns removes columns nothing upstream consumes: scans narrow to
// the referenced columns (directly reducing bytes scanned from storage),
// projections drop dead assignments, group-bys drop dead aggregates,
// windows drop dead functions, unions drop dead outputs, and MarkDistinct
// operators whose mark column is dead disappear entirely. keep lists the
// root columns that must survive; nil keeps the whole root schema.
func PruneColumns(plan logical.Operator, keep []*expr.Column) logical.Operator {
	required := make(map[expr.ColumnID]bool)
	if keep == nil {
		for _, c := range plan.Schema() {
			required[c.ID] = true
		}
	} else {
		for _, c := range keep {
			required[c.ID] = true
		}
	}
	return prune(plan, required)
}

func prune(op logical.Operator, required map[expr.ColumnID]bool) logical.Operator {
	switch o := op.(type) {
	case *logical.Scan:
		var cols []*expr.Column
		var names []string
		for i, c := range o.Cols {
			if required[c.ID] {
				cols = append(cols, c)
				names = append(names, o.ColNames[i])
			}
		}
		if len(cols) == 0 {
			// Keep one column: a zero-column scan cannot drive row counts.
			cols = o.Cols[:1]
			names = o.ColNames[:1]
		}
		if len(cols) == len(o.Cols) {
			return o
		}
		return &logical.Scan{Table: o.Table, Cols: cols, ColNames: names}

	case *logical.Filter:
		need := clone(required)
		expr.CollectColumns(o.Cond, need)
		return &logical.Filter{Input: prune(o.Input, need), Cond: o.Cond}

	case *logical.Project:
		var cols []logical.Assignment
		for _, a := range o.Cols {
			if required[a.Col.ID] {
				cols = append(cols, a)
			}
		}
		if len(cols) == 0 {
			cols = o.Cols[:1]
		}
		need := make(map[expr.ColumnID]bool)
		for _, a := range cols {
			expr.CollectColumns(a.E, need)
		}
		return &logical.Project{Input: prune(o.Input, need), Cols: cols}

	case *logical.Join:
		need := clone(required)
		if o.Cond != nil {
			expr.CollectColumns(o.Cond, need)
		}
		return &logical.Join{Kind: o.Kind, Left: prune(o.Left, need), Right: prune(o.Right, need), Cond: o.Cond}

	case *logical.GroupBy:
		var aggs []logical.AggAssign
		for _, a := range o.Aggs {
			if required[a.Col.ID] {
				aggs = append(aggs, a)
			}
		}
		if len(o.Keys) == 0 && len(aggs) == 0 && len(o.Aggs) > 0 {
			aggs = o.Aggs[:1] // scalar aggregate must keep one output
		}
		need := make(map[expr.ColumnID]bool)
		for _, k := range o.Keys {
			need[k.ID] = true
		}
		for _, a := range aggs {
			if a.Agg.Arg != nil {
				expr.CollectColumns(a.Agg.Arg, need)
			}
			if a.Agg.Mask != nil {
				expr.CollectColumns(a.Agg.Mask, need)
			}
		}
		return &logical.GroupBy{Input: prune(o.Input, need), Keys: o.Keys, Aggs: aggs}

	case *logical.MarkDistinct:
		if !required[o.MarkCol.ID] {
			return prune(o.Input, required)
		}
		need := clone(required)
		delete(need, o.MarkCol.ID)
		for _, c := range o.On {
			need[c.ID] = true
		}
		if o.Mask != nil {
			expr.CollectColumns(o.Mask, need)
		}
		return &logical.MarkDistinct{Input: prune(o.Input, need), MarkCol: o.MarkCol, On: o.On, Mask: o.Mask}

	case *logical.Window:
		var funcs []logical.WindowAssign
		for _, f := range o.Funcs {
			if required[f.Col.ID] {
				funcs = append(funcs, f)
			}
		}
		if len(funcs) == 0 {
			return prune(o.Input, required)
		}
		need := clone(required)
		for _, f := range funcs {
			delete(need, f.Col.ID)
		}
		for _, f := range funcs {
			if f.Agg.Arg != nil {
				expr.CollectColumns(f.Agg.Arg, need)
			}
			if f.Agg.Mask != nil {
				expr.CollectColumns(f.Agg.Mask, need)
			}
			for _, p := range f.PartitionBy {
				need[p.ID] = true
			}
		}
		return &logical.Window{Input: prune(o.Input, need), Funcs: funcs}

	case *logical.UnionAll:
		var keep []int
		for j, c := range o.Cols {
			if required[c.ID] {
				keep = append(keep, j)
			}
		}
		if len(keep) == 0 {
			keep = []int{0}
		}
		cols := make([]*expr.Column, len(keep))
		inputCols := make([][]*expr.Column, len(o.Inputs))
		inputs := make([]logical.Operator, len(o.Inputs))
		for i := range o.Inputs {
			inputCols[i] = make([]*expr.Column, len(keep))
			need := make(map[expr.ColumnID]bool)
			for k, j := range keep {
				cols[k] = o.Cols[j]
				inputCols[i][k] = o.InputCols[i][j]
				need[o.InputCols[i][j].ID] = true
			}
			inputs[i] = prune(o.Inputs[i], need)
		}
		return &logical.UnionAll{Inputs: inputs, Cols: cols, InputCols: inputCols}

	case *logical.Sort:
		need := clone(required)
		for _, k := range o.Keys {
			expr.CollectColumns(k.E, need)
		}
		return &logical.Sort{Input: prune(o.Input, need), Keys: o.Keys}

	case *logical.Limit:
		return &logical.Limit{Input: prune(o.Input, required), N: o.N}

	case *logical.EnforceSingleRow:
		return &logical.EnforceSingleRow{Input: prune(o.Input, required)}

	case *logical.Values:
		return o

	default:
		return op
	}
}

func clone(s map[expr.ColumnID]bool) map[expr.ColumnID]bool {
	out := make(map[expr.ColumnID]bool, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}
