package optimizer

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

func salesTable() *catalog.Table {
	return &catalog.Table{
		Name: "store_sales",
		Columns: []catalog.Column{
			{Name: "ss_item_sk", Type: types.KindInt64},
			{Name: "ss_store_sk", Type: types.KindInt64},
			{Name: "ss_qty", Type: types.KindInt64},
			{Name: "ss_price", Type: types.KindFloat64},
		},
	}
}

func itemTable() *catalog.Table {
	return &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item_sk", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
		},
	}
}

func mustValid(t *testing.T, plan logical.Operator) {
	t.Helper()
	if err := logical.Validate(plan); err != nil {
		t.Fatalf("plan invalid: %v\n%s", err, logical.Format(plan))
	}
}

func TestPushDownThroughJoin(t *testing.T) {
	ss := logical.NewScan(salesTable())
	it := logical.NewScan(itemTable())
	join := &logical.Join{Kind: logical.CrossJoin, Left: ss, Right: it}
	cond := expr.And(
		expr.Eq(expr.Ref(ss.Cols[0]), expr.Ref(it.Cols[0])),
		expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(5))),
		expr.Eq(expr.Ref(it.Cols[1]), expr.Lit(types.String("b"))),
	)
	plan := logical.NewFilter(join, cond)
	out := PushDownPredicates(plan)
	mustValid(t, out)
	// Expect: InnerJoin(Filter(ss), Filter(it)) with equality as join cond.
	j, ok := out.(*logical.Join)
	if !ok || j.Kind != logical.InnerJoin {
		t.Fatalf("expected inner join at root:\n%s", logical.Format(out))
	}
	if _, ok := j.Left.(*logical.Filter); !ok {
		t.Errorf("left predicate not pushed:\n%s", logical.Format(out))
	}
	if _, ok := j.Right.(*logical.Filter); !ok {
		t.Errorf("right predicate not pushed:\n%s", logical.Format(out))
	}
}

func TestPushDownThroughProjectAndGroupBy(t *testing.T) {
	ss := logical.NewScan(salesTable())
	gb := &logical.GroupBy{Input: ss, Keys: []*expr.Column{ss.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("total", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(ss.Cols[3])}}}}
	// Filter on the grouping key must sink below the GroupBy to the scan.
	plan := logical.NewFilter(gb, expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[1]), expr.Lit(types.Int(10))))
	out := PushDownPredicates(plan)
	mustValid(t, out)
	if _, isFilter := out.(*logical.Filter); isFilter {
		t.Errorf("key filter should sink below GroupBy:\n%s", logical.Format(out))
	}
	// Filter on the aggregate output must stay above.
	gb2 := &logical.GroupBy{Input: logical.NewScan(salesTable()), Keys: nil,
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("total", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(ss.Cols[3])}}}}
	_ = gb2
}

func TestPushDownThroughUnion(t *testing.T) {
	s1, s2 := logical.NewScan(salesTable()), logical.NewScan(salesTable())
	u := logical.NewUnionAll([]logical.Operator{s1, s2},
		[][]*expr.Column{{s1.Cols[2]}, {s2.Cols[2]}})
	plan := logical.NewFilter(u, expr.NewBinary(expr.OpGt, expr.Ref(u.Cols[0]), expr.Lit(types.Int(3))))
	out := PushDownPredicates(plan)
	mustValid(t, out)
	uo, ok := out.(*logical.UnionAll)
	if !ok {
		t.Fatalf("union should be root after pushdown:\n%s", logical.Format(out))
	}
	for i, in := range uo.Inputs {
		if _, isFilter := in.(*logical.Filter); !isFilter {
			t.Errorf("branch %d did not receive pushed filter:\n%s", i, logical.Format(out))
		}
	}
}

func TestPushDownNotThroughLimit(t *testing.T) {
	ss := logical.NewScan(salesTable())
	lim := &logical.Limit{Input: ss, N: 10}
	plan := logical.NewFilter(lim, expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(3))))
	out := PushDownPredicates(plan)
	mustValid(t, out)
	if _, isFilter := out.(*logical.Filter); !isFilter {
		t.Errorf("filter must stay above Limit:\n%s", logical.Format(out))
	}
}

func TestPruneColumnsNarrowsScan(t *testing.T) {
	ss := logical.NewScan(salesTable())
	proj := &logical.Project{Input: ss, Cols: []logical.Assignment{
		logical.Assign("q", expr.Ref(ss.Cols[2])),
	}}
	out := PruneColumns(proj, nil)
	mustValid(t, out)
	scan := out.(*logical.Project).Input.(*logical.Scan)
	if len(scan.Cols) != 1 || scan.ColNames[0] != "ss_qty" {
		t.Errorf("scan not narrowed: %v", scan.ColNames)
	}
}

func TestPruneColumnsDropsDeadMarkDistinct(t *testing.T) {
	ss := logical.NewScan(salesTable())
	md := &logical.MarkDistinct{Input: ss, MarkCol: expr.NewColumn("d", types.KindBool), On: []*expr.Column{ss.Cols[0]}}
	proj := &logical.Project{Input: md, Cols: []logical.Assignment{
		logical.Assign("q", expr.Ref(ss.Cols[2])),
	}}
	out := PruneColumns(proj, nil)
	mustValid(t, out)
	found := false
	logical.Walk(out, func(o logical.Operator) bool {
		if _, ok := o.(*logical.MarkDistinct); ok {
			found = true
		}
		return true
	})
	if found {
		t.Errorf("dead MarkDistinct should be removed:\n%s", logical.Format(out))
	}
}

func TestPruneColumnsKeepsRootSchema(t *testing.T) {
	ss := logical.NewScan(salesTable())
	before := ss.Schema()
	out := PruneColumns(ss, nil)
	after := out.Schema()
	if len(before) != len(after) {
		t.Errorf("root schema changed: %d -> %d", len(before), len(after))
	}
}

func TestLowerDistinctAggregates(t *testing.T) {
	ss := logical.NewScan(salesTable())
	gb := &logical.GroupBy{Input: ss, Keys: []*expr.Column{ss.Cols[1]},
		Aggs: []logical.AggAssign{
			{Col: expr.NewColumn("dcount", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCount, Arg: expr.Ref(ss.Cols[0]), Distinct: true}},
			{Col: expr.NewColumn("total", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(ss.Cols[3])}},
		}}
	out := LowerDistinctAggregates(gb)
	mustValid(t, out)
	g := out.(*logical.GroupBy)
	if g.Aggs[0].Agg.Distinct {
		t.Error("distinct flag must be cleared")
	}
	if g.Aggs[0].Agg.Mask == nil {
		t.Error("distinct aggregate must gain a mark mask")
	}
	md, ok := g.Input.(*logical.MarkDistinct)
	if !ok {
		t.Fatalf("expected MarkDistinct input, got %T", g.Input)
	}
	// Mark set must include the grouping key and the argument.
	if len(md.On) != 2 {
		t.Errorf("MarkDistinct on %d cols, want 2 (group key + arg)", len(md.On))
	}
	// Two distinct aggs on the same argument share one MarkDistinct.
	gb2 := &logical.GroupBy{Input: logical.NewScan(salesTable()), Keys: nil,
		Aggs: []logical.AggAssign{
			{Col: expr.NewColumn("c1", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCount, Arg: expr.Ref(ss.Cols[0]), Distinct: true}},
		}}
	_ = gb2
}

func TestSemiJoinToDistinctJoinGate(t *testing.T) {
	// Right side without duplicate scans: rule must not fire.
	left := logical.NewScan(salesTable())
	right := logical.NewScan(itemTable())
	semi := &logical.Join{Kind: logical.SemiJoin, Left: left, Right: right,
		Cond: expr.Eq(expr.Ref(left.Cols[0]), expr.Ref(right.Cols[0]))}
	if _, changed := (SemiJoinToDistinctJoin{}).Apply(semi); changed {
		t.Error("rule fired without duplicate scans")
	}
	// Right side with a self-join (Q95's ws_wh): rule fires.
	w1, w2 := logical.NewScan(salesTable()), logical.NewScan(salesTable())
	selfJoin := &logical.Join{Kind: logical.InnerJoin, Left: w1, Right: w2,
		Cond: expr.Eq(expr.Ref(w1.Cols[0]), expr.Ref(w2.Cols[0]))}
	semi2 := &logical.Join{Kind: logical.SemiJoin, Left: left, Right: selfJoin,
		Cond: expr.Eq(expr.Ref(left.Cols[0]), expr.Ref(w1.Cols[0]))}
	out, changed := (SemiJoinToDistinctJoin{}).Apply(semi2)
	if !changed {
		t.Fatal("rule should fire on self-joined right side")
	}
	mustValid(t, out)
	j := out.(*logical.Join)
	if j.Kind != logical.InnerJoin {
		t.Error("result must be an inner join")
	}
	if gb, ok := j.Right.(*logical.GroupBy); !ok || len(gb.Keys) != 1 || len(gb.Aggs) != 0 {
		t.Errorf("right side must be a distinct GroupBy:\n%s", logical.Format(out))
	}
}

func TestPushDistinctThroughJoin(t *testing.T) {
	a := logical.NewScan(salesTable())
	b := logical.NewScan(itemTable())
	join := &logical.Join{Kind: logical.InnerJoin, Left: a, Right: b,
		Cond: expr.Eq(expr.Ref(a.Cols[0]), expr.Ref(b.Cols[0]))}
	distinct := &logical.GroupBy{Input: join, Keys: []*expr.Column{b.Cols[0]}}
	out, changed := (PushDistinctThroughJoin{}).Apply(distinct)
	if !changed {
		t.Fatal("rule should fire when keys equal right join columns")
	}
	mustValid(t, out)
	j := out.(*logical.Join)
	if _, ok := j.Left.(*logical.GroupBy); !ok {
		t.Error("left side must become distinct")
	}
	if _, ok := j.Right.(*logical.GroupBy); !ok {
		t.Error("right side must become distinct")
	}
	// Keys not matching join columns: no fire.
	distinct2 := &logical.GroupBy{Input: join, Keys: []*expr.Column{b.Cols[1]}}
	if _, changed := (PushDistinctThroughJoin{}).Apply(distinct2); changed {
		t.Error("rule fired with non-join-column keys")
	}
}

// TestOptimizeEndToEndScalarAggregates runs the full pipeline on a Q09-like
// plan and checks baseline-vs-fused scan counts.
func TestOptimizeEndToEndScalarAggregates(t *testing.T) {
	tab := salesTable()
	mkBranch := func(lo, hi int64) logical.Operator {
		s := logical.NewScan(tab)
		cond := expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[2]), expr.Lit(types.Int(lo))),
			expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[2]), expr.Lit(types.Int(hi))),
		)
		gb := &logical.GroupBy{Input: logical.NewFilter(s, cond),
			Aggs: []logical.AggAssign{{Col: expr.NewColumn("v", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[3])}}}}
		return &logical.EnforceSingleRow{Input: gb}
	}
	b1, b2, b3 := mkBranch(1, 20), mkBranch(21, 40), mkBranch(41, 60)
	plan := &logical.Join{Kind: logical.CrossJoin,
		Left:  &logical.Join{Kind: logical.CrossJoin, Left: b1, Right: b2},
		Right: b3}

	baseline, traceOff := Optimize(plan, Options{EnableFusion: false})
	mustValid(t, baseline)
	if traceOff.Any() {
		t.Error("baseline must not fire fusion rules")
	}
	if got := logical.CountScansOf(baseline, "store_sales"); got != 3 {
		t.Errorf("baseline scans = %d, want 3", got)
	}

	fused, traceOn := Optimize(plan, DefaultOptions())
	mustValid(t, fused)
	if !traceOn.Changed("JoinOnKeys") {
		t.Errorf("JoinOnKeys did not fire; trace=%v\n%s", traceOn.Fired, logical.Format(fused))
	}
	if got := logical.CountScansOf(fused, "store_sales"); got != 1 {
		t.Errorf("fused scans = %d, want 1:\n%s", got, logical.Format(fused))
	}
	// Output schema preserved.
	outSet := logical.OutputSet(fused)
	for _, c := range plan.Schema() {
		if !outSet[c.ID] {
			t.Errorf("fused plan lost column %s", c)
		}
	}
}

// TestOptimizeEndToEndQ95Chain checks the semi-join → distinct-join →
// distinct-pushdown → JoinOnKeys interplay on a Q95-shaped plan.
func TestOptimizeEndToEndQ95Chain(t *testing.T) {
	web := salesTable() // stands in for web_sales
	mkWsWh := func() (logical.Operator, *expr.Column) {
		w1, w2 := logical.NewScan(web), logical.NewScan(web)
		j := &logical.Join{Kind: logical.InnerJoin, Left: w1, Right: w2,
			Cond: expr.And(
				expr.Eq(expr.Ref(w1.Cols[0]), expr.Ref(w2.Cols[0])),
				expr.NewBinary(expr.OpNe, expr.Ref(w1.Cols[1]), expr.Ref(w2.Cols[1])),
			)}
		return j, w1.Cols[0]
	}
	probe := logical.NewScan(web)
	wh1, k1 := mkWsWh()
	wh2, k2 := mkWsWh()
	ret := logical.NewScan(itemTable()) // stands in for web_returns
	wh2join := &logical.Join{Kind: logical.InnerJoin, Left: wh2, Right: ret,
		Cond: expr.Eq(expr.Ref(k2), expr.Ref(ret.Cols[0]))}
	semi1 := &logical.Join{Kind: logical.SemiJoin, Left: probe, Right: wh1,
		Cond: expr.Eq(expr.Ref(probe.Cols[0]), expr.Ref(k1))}
	semi2 := &logical.Join{Kind: logical.SemiJoin, Left: semi1, Right: wh2join,
		Cond: expr.Eq(expr.Ref(probe.Cols[0]), expr.Ref(ret.Cols[0]))}

	baseline, _ := Optimize(semi2, Options{EnableFusion: false})
	mustValid(t, baseline)
	baseScans := logical.CountScansOf(baseline, "store_sales")
	if baseScans != 5 {
		t.Fatalf("baseline scans = %d, want 5 (probe + 2×self-join)", baseScans)
	}

	fused, trace := Optimize(semi2, DefaultOptions())
	mustValid(t, fused)
	fusedScans := logical.CountScansOf(fused, "store_sales")
	if fusedScans >= baseScans {
		t.Errorf("fusion did not reduce scans: %d -> %d; trace=%v\n%s",
			baseScans, fusedScans, trace.Fired, logical.Format(fused))
	}
	if !trace.Changed("JoinOnKeys") {
		t.Errorf("JoinOnKeys did not fire; trace=%v", trace.Fired)
	}
}

// Optimization must be idempotent on already-optimized plans.
func TestOptimizeIdempotent(t *testing.T) {
	ss := logical.NewScan(salesTable())
	plan := logical.NewFilter(ss, expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Int(1))))
	once, _ := Optimize(plan, DefaultOptions())
	twice, _ := Optimize(once, DefaultOptions())
	if logical.Format(once) != logical.Format(twice) {
		t.Errorf("not idempotent:\n%s\nvs\n%s", logical.Format(once), logical.Format(twice))
	}
}
