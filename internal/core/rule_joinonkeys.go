package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// JoinOnKeys implements §IV.B: a join of two fusable subqueries on columns
// that are keys of both sides extends each row with the other side's
// columns, so the pattern collapses to
//
//	Filter_{L AND R AND M(C2) AND cl1 IS NOT NULL AND ...}(P)
//
// plus a projection restoring both schemas. Athena lacks general key
// propagation, so — like the paper — the rule is specialized to shapes
// whose keys are known by construction: GroupBy outputs (grouping columns
// are a key) and EnforceSingleRow outputs (at most one row, the empty key).
// The scalar special case GroupBy_∅(Q1) ⨯ GroupBy_∅(Q2) →
// Filter_{L AND R}(GroupBy_∅,A1∪M(A2)(Q)) is what collapses Q09/Q28/Q88's
// fifteen scans into one. The rule operates over the flattened n-ary join
// and linearizes pairwise (§IV.E).
type JoinOnKeys struct {
	// MinReuseRows gates fusion on the estimated size of the duplicated
	// input (0 = always apply); see GroupByJoinToWindow.MinReuseRows.
	MinReuseRows float64
}

// Name implements Rule.
func (JoinOnKeys) Name() string { return "JoinOnKeys" }

// Apply implements Rule.
func (r JoinOnKeys) Apply(op logical.Operator) (logical.Operator, bool) {
	if !isJoinRegionRoot(op) {
		return op, false
	}
	g := FlattenJoin(op)
	if !g.IsNontrivial() {
		return op, false
	}
	changed := false
	for {
		if !applyJoinOnKeysOnce(g, r.MinReuseRows) {
			break
		}
		changed = true
	}
	if !changed {
		return op, false
	}
	return g.Build(), true
}

func applyJoinOnKeysOnce(g *JoinGraph, minReuseRows float64) bool {
	classes := equalityClasses(g.Conjuncts)
	for i := range g.Inputs {
		ki, ok := plannedKeys(g.Inputs[i])
		if !ok || !containsAnyScan(g.Inputs[i]) {
			continue
		}
		if minReuseRows > 0 && logical.EstimateRows(g.Inputs[i]) < minReuseRows {
			continue
		}
		for j := range g.Inputs {
			if i == j {
				continue
			}
			kj, ok := plannedKeys(g.Inputs[j])
			if !ok {
				continue
			}
			if tryJoinOnKeysPair(g, i, j, ki, kj, classes) {
				return true
			}
		}
	}
	return false
}

// equalityClasses computes the union-find equivalence classes induced by
// column-equality conjuncts across the whole join graph, so that keys
// equated transitively (probe.x = k1 AND probe.x = k2) are recognized as
// matching — the "extra predicates" latitude of §IV.B's condition
// decomposition.
func equalityClasses(conjuncts []expr.Expr) map[expr.ColumnID]expr.ColumnID {
	parent := make(map[expr.ColumnID]expr.ColumnID)
	var find func(expr.ColumnID) expr.ColumnID
	find = func(x expr.ColumnID) expr.ColumnID {
		p, ok := parent[x]
		if !ok {
			parent[x] = x
			return x
		}
		if p != x {
			p = find(p)
			parent[x] = p
		}
		return p
	}
	for _, c := range conjuncts {
		b, ok := c.(*expr.Binary)
		if !ok || b.Op != expr.OpEq {
			continue
		}
		lr, ok1 := b.L.(*expr.ColumnRef)
		rr, ok2 := b.R.(*expr.ColumnRef)
		if !ok1 || !ok2 {
			continue
		}
		parent[find(lr.Col.ID)] = find(rr.Col.ID)
	}
	// Flatten.
	out := make(map[expr.ColumnID]expr.ColumnID, len(parent))
	for id := range parent {
		out[id] = find(id)
	}
	return out
}

func sameClass(classes map[expr.ColumnID]expr.ColumnID, a, b expr.ColumnID) bool {
	ca, ok1 := classes[a]
	cb, ok2 := classes[b]
	return ok1 && ok2 && ca == cb
}

// plannedKeys returns a key of the operator's output derivable by
// construction: grouping columns for a GroupBy, the empty key for
// EnforceSingleRow (≤ 1 row). Filters preserve keys, and projections
// preserve keys that pass through as identity assignments — which lets the
// rule re-match the Project(Filter(...)) shells produced by its own earlier
// applications when linearizing an n-ary join two inputs at a time.
func plannedKeys(op logical.Operator) ([]*expr.Column, bool) {
	switch o := op.(type) {
	case *logical.GroupBy:
		return o.Keys, true
	case *logical.EnforceSingleRow:
		return nil, true
	case *logical.Filter:
		return plannedKeys(o.Input)
	case *logical.Project:
		keys, ok := plannedKeys(o.Input)
		if !ok {
			return nil, false
		}
		for _, k := range keys {
			passed := false
			for _, a := range o.Cols {
				if ref, isRef := a.E.(*expr.ColumnRef); isRef && ref.Col == k && a.Col == k {
					passed = true
					break
				}
			}
			if !passed {
				return nil, false
			}
		}
		return keys, true
	}
	return nil, false
}

func tryJoinOnKeysPair(g *JoinGraph, i, j int, ki, kj []*expr.Column, classes map[expr.ColumnID]expr.ColumnID) bool {
	inI, inJ := g.Inputs[i], g.Inputs[j]
	// Scalar case: both sides are single-row; the "join on keys" is a pure
	// cross product and no equalities are required. Keyed case: both key
	// sets must be covered by (possibly transitive) join equalities.
	if (len(ki) == 0) != (len(kj) == 0) {
		return false
	}
	res, ok := Fuse(inI, inJ)
	if !ok {
		return false
	}
	// Every key column of the j side must align with its mapping image on
	// the i side (cli = M(cri)) and be equated with it by the join graph.
	if len(kj) != len(ki) {
		return false
	}
	keyI := columnSet(ki)
	covered := make(map[expr.ColumnID]bool, len(ki))
	for _, k := range kj {
		img := res.M.Resolve(k)
		if !keyI[img.ID] || !sameClass(classes, k.ID, img.ID) {
			return false
		}
		covered[img.ID] = true
	}
	if len(covered) != len(ki) {
		return false
	}

	conds := []expr.Expr{res.L, res.R}
	for _, k := range ki {
		conds = append(conds, expr.NotNull(expr.Ref(k)))
	}
	filtered := logical.NewFilter(res.Plan, expr.Simplify(expr.And(conds...)))

	// Restore both schemas: input i's columns pass through the fused plan,
	// input j's are re-exposed via the mapping.
	proj := &logical.Project{Input: filtered}
	for _, c := range inI.Schema() {
		proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(c)})
	}
	fusedOut := logical.OutputSet(res.Plan)
	for _, c := range inJ.Schema() {
		mapped := res.M.Resolve(c)
		if mapped == c && !fusedOut[c.ID] {
			return false // defensive: P2 column unavailable in fused plan
		}
		if mapped == c {
			proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(c)})
		} else {
			proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(mapped)})
		}
	}

	// Replace the two inputs with the fused projection. The original
	// conjuncts are kept: equalities between the two sides become trivially
	// true on the fused rows (the projection exposes j's columns as i's
	// values) and the NOT NULL guards above reproduce their NULL-rejection.
	newInputs := make([]logical.Operator, 0, len(g.Inputs)-1)
	for idx, in := range g.Inputs {
		if idx == i {
			newInputs = append(newInputs, proj)
		} else if idx != j {
			newInputs = append(newInputs, in)
		}
	}
	g.Inputs = newInputs
	return true
}

func columnSet(cols []*expr.Column) map[expr.ColumnID]bool {
	s := make(map[expr.ColumnID]bool, len(cols))
	for _, c := range cols {
		s[c.ID] = true
	}
	return s
}
