// Package core implements the paper's primary contribution: query fusion
// (§III) and the optimization rules built on it (§IV).
//
// Fuse(P1, P2) merges two logical plans that compute on overlapping data
// into a single plan P together with (M, L, R): M maps output columns of P2
// to output columns of P, and L and R are compensating filter conditions
// over P's output that restore P1 and P2 respectively:
//
//	P1 = Project_{outCols(P1)}(Filter_L(P))
//	P2 = Project_{M(outCols(P2))}(Filter_R(P))
//
// Fusion is defined per root-operator shape (scans, filters, projections,
// joins, group-bys via aggregate masks, MarkDistinct, pass-through
// operators) and extended with the §III.G best-effort compensations for
// mismatched roots. Crucially, fused results are expressed with standard
// relational operators only, so every other optimizer rule composes with
// them.
package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// Result is the 4-tuple returned by a successful fusion.
type Result struct {
	// Plan is the fused plan; its schema includes all output columns of P1
	// plus any additional columns needed for P2's outputs and the
	// compensating filters.
	Plan logical.Operator
	// M maps output columns of P2 to output columns of Plan. Columns absent
	// from M kept their identity (they are P2 columns that appear verbatim
	// in the fused schema).
	M expr.Mapping
	// L restores P1: Filter_L(Plan) yields exactly P1's rows.
	L expr.Expr
	// R restores P2 (modulo M on columns).
	R expr.Expr
}

// trueL reports whether the compensating condition is trivially TRUE.
func trivial(e expr.Expr) bool { return e == nil || expr.IsTrueLiteral(e) }

// LTrivial and RTrivial report whether the compensations are TRUE, i.e. the
// two plans were merged without residual differences.
func (r *Result) LTrivial() bool { return trivial(r.L) }
func (r *Result) RTrivial() bool { return trivial(r.R) }

// maxFuseDepth bounds recursion; real plans are far shallower, and the
// §III.G root-mismatch compensations could otherwise ping-pong.
const maxFuseDepth = 64

// Fuse attempts to fuse two plans. The boolean result is false when fusion
// is not possible (the paper's ⊥).
func Fuse(p1, p2 logical.Operator) (*Result, bool) {
	return fuse(p1, p2, 0)
}

func fuse(p1, p2 logical.Operator, depth int) (*Result, bool) {
	if depth > maxFuseDepth {
		return nil, false
	}
	// Same-root shapes (§III.A–F, plus pass-through defaults of §III.G).
	switch x := p1.(type) {
	case *logical.Scan:
		if y, ok := p2.(*logical.Scan); ok {
			return fuseScans(x, y)
		}
	case *logical.Filter:
		if y, ok := p2.(*logical.Filter); ok {
			return fuseFilters(x, y, depth)
		}
	case *logical.Project:
		if y, ok := p2.(*logical.Project); ok {
			return fuseProjects(x, y, depth)
		}
	case *logical.Join:
		if y, ok := p2.(*logical.Join); ok {
			return fuseJoins(x, y, depth)
		}
	case *logical.GroupBy:
		if y, ok := p2.(*logical.GroupBy); ok {
			return fuseGroupBys(x, y, depth)
		}
	case *logical.MarkDistinct:
		if y, ok := p2.(*logical.MarkDistinct); ok {
			return fuseMarkDistincts(x, y, depth)
		}
	case *logical.EnforceSingleRow:
		if y, ok := p2.(*logical.EnforceSingleRow); ok {
			return fusePassThrough(x, y, depth)
		}
	case *logical.Limit:
		if y, ok := p2.(*logical.Limit); ok && x.N == y.N {
			return fusePassThrough(x, y, depth)
		}
	case *logical.Values:
		if y, ok := p2.(*logical.Values); ok {
			return fuseValues(x, y)
		}
	case *logical.Window:
		if y, ok := p2.(*logical.Window); ok {
			return fuseWindows(x, y, depth)
		}
	}
	// §III.G best-effort compensations for mismatched roots. Order matters:
	// skipping a MarkDistinct is strictly better than manufacturing trivial
	// operators (the paper's Filter/MarkDistinct example), so try it first.
	if res, ok := fuseMismatched(p1, p2, depth); ok {
		return res, true
	}
	return nil, false
}

// fuseScans implements §III.A: two scans fuse iff they read the same table.
// The fused scan reads the union of the two column sets; shared columns of
// P2 map positionally onto P1's instances, and P2-only columns keep their
// identity in the widened scan.
func fuseScans(s1, s2 *logical.Scan) (*Result, bool) {
	if s1.Table.Name != s2.Table.Name {
		return nil, false
	}
	m := expr.Identity()
	fused := s1
	var extraCols []*expr.Column
	var extraNames []string
	for i, name := range s2.ColNames {
		if c1 := s1.ColumnFor(name); c1 != nil {
			m.Add(s2.Cols[i].ID, c1)
		} else {
			extraCols = append(extraCols, s2.Cols[i])
			extraNames = append(extraNames, name)
		}
	}
	if len(extraCols) > 0 {
		fused = &logical.Scan{
			Table:    s1.Table,
			Cols:     append(append([]*expr.Column{}, s1.Cols...), extraCols...),
			ColNames: append(append([]string{}, s1.ColNames...), extraNames...),
		}
	}
	return &Result{Plan: fused, M: m, L: expr.TrueExpr(), R: expr.TrueExpr()}, true
}

// fuseFilters implements §III.B: fuse the inputs, take the disjunction of
// the two conditions as the new filter, and push each original condition
// into the respective compensating filter. Equivalent conditions simplify
// to the condition itself with unchanged compensations.
func fuseFilters(f1, f2 *logical.Filter, depth int) (*Result, bool) {
	in, ok := fuse(f1.Input, f2.Input, depth+1)
	if !ok {
		return nil, false
	}
	c1 := expr.And(f1.Cond, in.L)
	c2 := expr.And(in.M.Apply(f2.Cond), in.R)
	if expr.Equivalent(c1, c2) {
		return &Result{
			Plan: logical.NewFilter(in.Plan, expr.Simplify(c1)),
			M:    in.M,
			L:    expr.TrueExpr(),
			R:    expr.TrueExpr(),
		}, true
	}
	return &Result{
		Plan: logical.NewFilter(in.Plan, expr.Simplify(expr.Or(c1, c2))),
		M:    in.M,
		L:    expr.Simplify(c1),
		R:    expr.Simplify(c2),
	}, true
}

// fuseProjects implements §III.C: keep all of P1's assignments; for each P2
// assignment, reuse a P1 assignment computing the same (mapped) expression
// or append it. Columns needed by the compensating filters are passed
// through so L and R stay well-formed above the projection.
func fuseProjects(r1, r2 *logical.Project, depth int) (*Result, bool) {
	in, ok := fuse(r1.Input, r2.Input, depth+1)
	if !ok {
		return nil, false
	}
	assigns := append([]logical.Assignment{}, r1.Cols...)
	m := expr.Mapping{}
	for k, v := range in.M {
		m[k] = v
	}
	for _, a2 := range r2.Cols {
		mapped := in.M.Apply(a2.E)
		reused := false
		for _, a1 := range assigns {
			if expr.Equivalent(a1.E, mapped) {
				m.Add(a2.Col.ID, a1.Col)
				reused = true
				break
			}
		}
		if !reused {
			assigns = append(assigns, logical.Assignment{Col: a2.Col, E: mapped})
			// The column is now a first-class output of the fused
			// projection under its own identity; a child-level mapping for
			// it (e.g. from scan fusion) would point below the projection.
			delete(m, a2.Col.ID)
		}
	}
	// Pass through any columns the compensating filters reference that the
	// projection would otherwise drop.
	present := make(map[expr.ColumnID]bool, len(assigns))
	for _, a := range assigns {
		present[a.Col.ID] = true
	}
	need := make(map[expr.ColumnID]bool)
	expr.CollectColumns(in.L, need)
	expr.CollectColumns(in.R, need)
	for _, c := range in.Plan.Schema() {
		if need[c.ID] && !present[c.ID] {
			assigns = append(assigns, logical.Assignment{Col: c, E: expr.Ref(c)})
			present[c.ID] = true
		}
	}
	return &Result{
		Plan: &logical.Project{Input: in.Plan, Cols: assigns},
		M:    m,
		L:    in.L,
		R:    in.R,
	}, true
}

// fuseJoins implements §III.D: pairwise-fuse the two sides, require the
// join conditions to be equivalent modulo the merged mapping, and conjoin
// the per-side compensations. Semi joins additionally require the right
// side to fuse exactly, because right-side compensating columns are not
// visible in a semi join's output.
func fuseJoins(j1, j2 *logical.Join, depth int) (*Result, bool) {
	if j1.Kind != j2.Kind {
		return nil, false
	}
	left, ok := fuse(j1.Left, j2.Left, depth+1)
	if !ok {
		return nil, false
	}
	right, ok := fuse(j1.Right, j2.Right, depth+1)
	if !ok {
		return nil, false
	}
	m := left.M.Merge(right.M)
	fusedCond := j1.Cond
	var resid1, resid2 []expr.Expr
	switch {
	case j1.Cond == nil && j2.Cond == nil:
		// Cross joins: nothing to match.
	case j1.Cond == nil || j2.Cond == nil:
		return nil, false
	case expr.EquivalentUnder(m, j1.Cond, j2.Cond):
		// Exact match.
	case j1.Kind == logical.InnerJoin:
		// §III.D footnote: for inner joins, conditions that do not fully
		// match can be split into a common portion (the fused join's
		// condition) and per-side residuals folded into the compensating
		// filters. The join runs on the weaker common condition; gated on
		// at least one shared equality so the fused join stays an
		// equi-join.
		common, r1, r2, ok := splitCommonCondition(j1.Cond, m.Apply(j2.Cond))
		if !ok {
			return nil, false
		}
		fusedCond = common
		resid1, resid2 = r1, r2
	default:
		return nil, false
	}
	if j1.Kind == logical.SemiJoin || j1.Kind == logical.LeftJoin {
		// The right side's rows do not appear (semi) or appear
		// NULL-extended (left outer) in the output; residual right-side
		// compensations cannot be applied above the join, so require an
		// exact right-side fuse. Outer joins additionally must not widen
		// the left side (a left row only in P1 would leak into P2's
		// reconstruction via NULL-extension asymmetries), so require an
		// exact left-side fuse for LeftJoin too.
		if !right.LTrivial() || !right.RTrivial() {
			return nil, false
		}
		if j1.Kind == logical.LeftJoin && (!left.LTrivial() || !left.RTrivial()) {
			return nil, false
		}
	}
	return &Result{
		Plan: &logical.Join{Kind: j1.Kind, Left: left.Plan, Right: right.Plan, Cond: fusedCond},
		M:    m,
		L:    expr.Simplify(expr.And(append([]expr.Expr{left.L, right.L}, resid1...)...)),
		R:    expr.Simplify(expr.And(append([]expr.Expr{left.R, right.R}, resid2...)...)),
	}, true
}

// splitCommonCondition partitions two join conditions (already expressed
// over the fused children's columns) into the conjuncts they share and the
// per-side residuals. It succeeds only when at least one shared conjunct is
// an equality, so the fused join remains hashable.
func splitCommonCondition(c1, c2 expr.Expr) (common expr.Expr, resid1, resid2 []expr.Expr, ok bool) {
	conj1 := expr.Conjuncts(expr.Simplify(c1))
	conj2 := expr.Conjuncts(expr.Simplify(c2))
	used := make([]bool, len(conj2))
	var shared []expr.Expr
	hasEquality := false
	for _, a := range conj1 {
		matched := false
		for i, b := range conj2 {
			if !used[i] && expr.Equivalent(a, b) {
				used[i] = true
				matched = true
				break
			}
		}
		if matched {
			shared = append(shared, a)
			if bin, isBin := a.(*expr.Binary); isBin && bin.Op == expr.OpEq {
				hasEquality = true
			}
		} else {
			resid1 = append(resid1, a)
		}
	}
	for i, b := range conj2 {
		if !used[i] {
			resid2 = append(resid2, b)
		}
	}
	if !hasEquality {
		return nil, nil, nil, false
	}
	return expr.And(shared...), resid1, resid2, true
}

// fuseGroupBys implements §III.E. The grouping columns must agree modulo
// the input mapping. Every aggregate's mask is tightened with the side's
// compensating filter; P2 aggregates that become identical to an existing
// one are deduplicated through the mapping. For non-scalar groupings whose
// side-compensation is non-trivial, a compensating COUNT(*) aggregate is
// added and the new compensating filter becomes count > 0, so groups whose
// rows were all discarded by the mask produce no row for that side.
func fuseGroupBys(g1, g2 *logical.GroupBy, depth int) (*Result, bool) {
	in, ok := fuse(g1.Input, g2.Input, depth+1)
	if !ok {
		return nil, false
	}
	// Grouping columns must be equal as sets modulo mapping.
	if len(g1.Keys) != len(g2.Keys) {
		return nil, false
	}
	k1 := make(map[expr.ColumnID]bool, len(g1.Keys))
	for _, k := range g1.Keys {
		k1[k.ID] = true
	}
	m := expr.Mapping{}
	for k, v := range in.M {
		m[k] = v
	}
	for _, k := range g2.Keys {
		if !k1[in.M.Resolve(k).ID] {
			return nil, false
		}
	}

	newAggs := make([]logical.AggAssign, 0, len(g1.Aggs)+len(g2.Aggs)+2)
	for _, a := range g1.Aggs {
		tightened := a.Agg
		tightened.Mask = expr.Simplify(expr.And(a.Agg.Mask, in.L))
		if expr.IsTrueLiteral(tightened.Mask) {
			tightened.Mask = nil
		}
		newAggs = append(newAggs, logical.AggAssign{Col: a.Col, Agg: tightened})
	}
	for _, a := range g2.Aggs {
		mapped := in.M.ApplyAgg(a.Agg)
		mapped.Mask = expr.Simplify(expr.And(mapped.Mask, in.R))
		if expr.IsTrueLiteral(mapped.Mask) {
			mapped.Mask = nil
		}
		reused := false
		for _, existing := range newAggs {
			if expr.AggEqual(existing.Agg, mapped) {
				m.Add(a.Col.ID, existing.Col)
				reused = true
				break
			}
		}
		if !reused {
			newAggs = append(newAggs, logical.AggAssign{Col: a.Col, Agg: mapped})
		}
	}

	scalar := g1.IsScalar()
	compL, compR := expr.TrueExpr(), expr.TrueExpr()
	if !scalar && !trivial(in.L) {
		countL := expr.NewColumn("$countL", expr.AggCall{Fn: expr.AggCountStar}.ResultType())
		newAggs = append(newAggs, logical.AggAssign{
			Col: countL,
			Agg: expr.AggCall{Fn: expr.AggCountStar, Mask: in.L},
		})
		compL = expr.NewBinary(expr.OpGt, expr.Ref(countL), expr.Lit(intZero()))
	}
	if !scalar && !trivial(in.R) {
		countR := expr.NewColumn("$countR", expr.AggCall{Fn: expr.AggCountStar}.ResultType())
		newAggs = append(newAggs, logical.AggAssign{
			Col: countR,
			Agg: expr.AggCall{Fn: expr.AggCountStar, Mask: in.R},
		})
		compR = expr.NewBinary(expr.OpGt, expr.Ref(countR), expr.Lit(intZero()))
	}

	return &Result{
		Plan: &logical.GroupBy{Input: in.Plan, Keys: g1.Keys, Aggs: newAggs},
		M:    m,
		L:    compL,
		R:    compR,
	}, true
}

// fuseMarkDistincts implements §III.F with the native-mask optimization:
// fuse the inputs and chain the two MarkDistinct operators over the fused
// plan, restricting each to its side's rows via the compensating filter as
// the operator's mask. Each operator therefore distinguishes the first
// occurrence of its column combination among its own side's rows only, and
// no compensation columns need to be materialized.
func fuseMarkDistincts(d1, d2 *logical.MarkDistinct, depth int) (*Result, bool) {
	in, ok := fuse(d1.Input, d2.Input, depth+1)
	if !ok {
		return nil, false
	}
	on2 := make([]*expr.Column, len(d2.On))
	for i, c := range d2.On {
		on2[i] = in.M.Resolve(c)
	}
	mask1 := expr.Simplify(expr.And(d1.Mask, in.L))
	mask2 := expr.Simplify(expr.And(in.M.Apply(d2.Mask), in.R))
	m := expr.Mapping{}
	for k, v := range in.M {
		m[k] = v
	}
	// Identical column sets and masks make the two operators the same mark:
	// keep one and map the other's column onto it (the paper's "processing
	// a chain of MarkDistinct operators on both sides holistically").
	if samePartition(d1.On, on2) && expr.Equivalent(mask1, mask2) {
		fusedMD := &logical.MarkDistinct{Input: in.Plan, MarkCol: d1.MarkCol, On: d1.On, Mask: maskOrNil(mask1)}
		m.Add(d2.MarkCol.ID, d1.MarkCol)
		return &Result{Plan: fusedMD, M: m, L: in.L, R: in.R}, true
	}
	inner := &logical.MarkDistinct{Input: in.Plan, MarkCol: d2.MarkCol, On: on2, Mask: maskOrNil(mask2)}
	outer := &logical.MarkDistinct{Input: inner, MarkCol: d1.MarkCol, On: d1.On, Mask: maskOrNil(mask1)}
	return &Result{Plan: outer, M: m, L: in.L, R: in.R}, true
}

func maskOrNil(e expr.Expr) expr.Expr {
	if e == nil || expr.IsTrueLiteral(e) {
		return nil
	}
	return e
}

// fusePassThrough implements the §III.G default for operators that are
// equivalent given equal inputs (EnforceSingleRow, equal Limits). It
// requires the inputs to fuse exactly: a non-trivial compensation below a
// row-count-sensitive operator would change its semantics.
func fusePassThrough(p1, p2 logical.Operator, depth int) (*Result, bool) {
	c1, c2 := p1.Children()[0], p2.Children()[0]
	in, ok := fuse(c1, c2, depth+1)
	if !ok || !in.LTrivial() || !in.RTrivial() {
		return nil, false
	}
	return &Result{
		Plan: p1.WithChildren([]logical.Operator{in.Plan}),
		M:    in.M,
		L:    expr.TrueExpr(),
		R:    expr.TrueExpr(),
	}, true
}

// fuseValues fuses two identical constant tables positionally.
func fuseValues(v1, v2 *logical.Values) (*Result, bool) {
	if len(v1.Cols) != len(v2.Cols) || len(v1.Rows) != len(v2.Rows) {
		return nil, false
	}
	for i := range v1.Cols {
		if v1.Cols[i].Type != v2.Cols[i].Type {
			return nil, false
		}
	}
	for i := range v1.Rows {
		for j := range v1.Rows[i] {
			if !v1.Rows[i][j].Equal(v2.Rows[i][j]) {
				return nil, false
			}
		}
	}
	m := expr.Identity()
	for i := range v2.Cols {
		m.Add(v2.Cols[i].ID, v1.Cols[i])
	}
	return &Result{Plan: v1, M: m, L: expr.TrueExpr(), R: expr.TrueExpr()}, true
}

// fuseWindows merges two Window operators over exactly-fusable inputs,
// deduplicating identical windowed aggregates (same function, argument and
// partitioning modulo mapping) and appending the rest.
func fuseWindows(w1, w2 *logical.Window, depth int) (*Result, bool) {
	in, ok := fuse(w1.Input, w2.Input, depth+1)
	if !ok || !in.LTrivial() || !in.RTrivial() {
		return nil, false
	}
	m := expr.Mapping{}
	for k, v := range in.M {
		m[k] = v
	}
	funcs := append([]logical.WindowAssign{}, w1.Funcs...)
	for _, f2 := range w2.Funcs {
		mappedAgg := in.M.ApplyAgg(f2.Agg)
		part2 := make([]*expr.Column, len(f2.PartitionBy))
		for i, c := range f2.PartitionBy {
			part2[i] = in.M.Resolve(c)
		}
		reused := false
		for _, f1 := range funcs {
			if expr.AggEqual(f1.Agg, mappedAgg) && samePartition(f1.PartitionBy, part2) {
				m.Add(f2.Col.ID, f1.Col)
				reused = true
				break
			}
		}
		if !reused {
			funcs = append(funcs, logical.WindowAssign{Col: f2.Col, Agg: mappedAgg, PartitionBy: part2})
		}
	}
	return &Result{
		Plan: &logical.Window{Input: in.Plan, Funcs: funcs},
		M:    m,
		L:    expr.TrueExpr(),
		R:    expr.TrueExpr(),
	}, true
}

func samePartition(a, b []*expr.Column) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[expr.ColumnID]bool, len(a))
	for _, c := range a {
		set[c.ID] = true
	}
	for _, c := range b {
		if !set[c.ID] {
			return false
		}
	}
	return true
}

// fuseMismatched implements the §III.G best-effort compensations when the
// two roots differ. Preference order: skip a MarkDistinct root (re-adding
// it above the fused result), then manufacture an identity Project, then a
// trivial TRUE Filter.
func fuseMismatched(p1, p2 logical.Operator, depth int) (*Result, bool) {
	// Skip MarkDistinct on the left.
	if d1, ok := p1.(*logical.MarkDistinct); ok {
		if _, alsoMD := p2.(*logical.MarkDistinct); !alsoMD {
			in, ok := fuse(d1.Input, p2, depth+1)
			if !ok {
				return nil, false
			}
			return readdMarkDistinct(d1.MarkCol, d1.On, d1.Mask, in, in.L), true
		}
	}
	// Skip MarkDistinct on the right.
	if d2, ok := p2.(*logical.MarkDistinct); ok {
		if _, alsoMD := p1.(*logical.MarkDistinct); !alsoMD {
			in, ok := fuse(p1, d2.Input, depth+1)
			if !ok {
				return nil, false
			}
			on := make([]*expr.Column, len(d2.On))
			for i, c := range d2.On {
				on[i] = in.M.Resolve(c)
			}
			return readdMarkDistinct(d2.MarkCol, on, in.M.Apply(d2.Mask), in, in.R), true
		}
	}
	// Manufacture an identity projection on the projection-less side.
	if _, ok := p1.(*logical.Project); ok {
		if _, isProj := p2.(*logical.Project); !isProj {
			return fuse(p1, logical.IdentityProject(p2, p2.Schema()), depth+1)
		}
	}
	if _, ok := p2.(*logical.Project); ok {
		if _, isProj := p1.(*logical.Project); !isProj {
			return fuse(logical.IdentityProject(p1, p1.Schema()), p2, depth+1)
		}
	}
	// Manufacture a trivial TRUE filter on the filter-less side.
	if _, ok := p1.(*logical.Filter); ok {
		if _, isF := p2.(*logical.Filter); !isF {
			return fuse(p1, &logical.Filter{Input: p2, Cond: expr.TrueExpr()}, depth+1)
		}
	}
	if _, ok := p2.(*logical.Filter); ok {
		if _, isF := p1.(*logical.Filter); !isF {
			return fuse(&logical.Filter{Input: p1, Cond: expr.TrueExpr()}, p2, depth+1)
		}
	}
	return nil, false
}

// readdMarkDistinct re-adds a skipped MarkDistinct above the fused plan.
// comp is the compensating condition of the side the MarkDistinct came
// from; it becomes (part of) the operator's mask, so rows belonging only to
// the other side cannot consume this side's first-occurrence marks.
func readdMarkDistinct(markCol *expr.Column, on []*expr.Column, mask expr.Expr, in *Result, comp expr.Expr) *Result {
	return &Result{
		Plan: &logical.MarkDistinct{
			Input:   in.Plan,
			MarkCol: markCol,
			On:      on,
			Mask:    maskOrNil(expr.Simplify(expr.And(mask, comp))),
		},
		M: in.M,
		L: in.L,
		R: in.R,
	}
}

func intZero() types.Value { return types.Int(0) }
