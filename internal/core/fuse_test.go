package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// testItem returns a small TPC-DS-flavoured table for fusion tests.
func testItem() *catalog.Table {
	return &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item_sk", Type: types.KindInt64},
			{Name: "i_brand_id", Type: types.KindInt64},
			{Name: "i_category", Type: types.KindString},
			{Name: "i_size", Type: types.KindString},
		},
	}
}

func testSales() *catalog.Table {
	return &catalog.Table{
		Name: "store_sales",
		Columns: []catalog.Column{
			{Name: "ss_item_sk", Type: types.KindInt64},
			{Name: "ss_store_sk", Type: types.KindInt64},
			{Name: "ss_price", Type: types.KindFloat64},
		},
	}
}

func mustValidate(t *testing.T, op logical.Operator) {
	t.Helper()
	if err := logical.Validate(op); err != nil {
		t.Fatalf("fused plan invalid: %v\n%s", err, logical.Format(op))
	}
}

func TestFuseScansSameTable(t *testing.T) {
	tab := testItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	res, ok := Fuse(s1, s2)
	if !ok {
		t.Fatal("same-table scans must fuse")
	}
	if res.Plan != logical.Operator(s1) {
		t.Error("fused scan should be the first scan when columns cover")
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("scan fusion compensations must be TRUE")
	}
	for i := range s2.Cols {
		if res.M.Resolve(s2.Cols[i]) != s1.Cols[i] {
			t.Errorf("column %d not mapped positionally", i)
		}
	}
	mustValidate(t, res.Plan)
}

func TestFuseScansDifferentTables(t *testing.T) {
	s1 := logical.NewScan(testItem())
	s2 := logical.NewScan(testSales())
	if _, ok := Fuse(s1, s2); ok {
		t.Fatal("different tables must not fuse")
	}
}

func TestFuseScansColumnSubsets(t *testing.T) {
	tab := testItem()
	s1 := logical.NewScan(tab)
	s1.Cols, s1.ColNames = s1.Cols[:2], s1.ColNames[:2] // i_item_sk, i_brand_id
	s2 := logical.NewScan(tab)
	s2.Cols = []*expr.Column{s2.Cols[1], s2.Cols[3]} // i_brand_id, i_size
	s2.ColNames = []string{"i_brand_id", "i_size"}
	res, ok := Fuse(s1, s2)
	if !ok {
		t.Fatal("subset scans must fuse")
	}
	fused := res.Plan.(*logical.Scan)
	if len(fused.Cols) != 3 {
		t.Fatalf("fused scan should read union of columns, got %v", fused.ColNames)
	}
	if res.M.Resolve(s2.Cols[0]) != s1.Cols[1] {
		t.Error("shared column must map onto P1 instance")
	}
	if res.M.Resolve(s2.Cols[1]) != s2.Cols[1] {
		t.Error("P2-only column keeps identity")
	}
}

// Paper §III.B example: same scan, different filters → disjunction with
// compensating filters.
func TestFuseFilters(t *testing.T) {
	tab := testItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	music1 := expr.Eq(expr.Ref(s1.Cols[2]), expr.Lit(types.String("Music")))
	gt := expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[1]), expr.Lit(types.Int(1000)))
	f1 := &logical.Filter{Input: s1, Cond: expr.And(music1, gt)}

	music2 := expr.Eq(expr.Ref(s2.Cols[2]), expr.Lit(types.String("Music")))
	lt := expr.NewBinary(expr.OpLt, expr.Ref(s2.Cols[1]), expr.Lit(types.Int(50)))
	f2 := &logical.Filter{Input: s2, Cond: expr.And(music2, lt)}

	res, ok := Fuse(f1, f2)
	if !ok {
		t.Fatal("filters over same scan must fuse")
	}
	mustValidate(t, res.Plan)
	fused, isFilter := res.Plan.(*logical.Filter)
	if !isFilter {
		t.Fatalf("fused plan should be a Filter, got %T", res.Plan)
	}
	// Fused condition is the disjunction of both.
	if len(expr.Disjuncts(fused.Cond)) != 2 {
		t.Errorf("fused condition should be a 2-way disjunction: %s", fused.Cond)
	}
	// Compensations are the original (mapped) conditions.
	if !expr.Equivalent(res.L, f1.Cond) {
		t.Errorf("L = %s, want %s", res.L, f1.Cond)
	}
	wantR := expr.And(expr.Eq(expr.Ref(s1.Cols[2]), expr.Lit(types.String("Music"))),
		expr.NewBinary(expr.OpLt, expr.Ref(s1.Cols[1]), expr.Lit(types.Int(50))))
	if !expr.Equivalent(res.R, wantR) {
		t.Errorf("R = %s, want %s", res.R, wantR)
	}
}

func TestFuseFiltersEquivalentConditions(t *testing.T) {
	tab := testItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.Eq(expr.Ref(s1.Cols[2]), expr.Lit(types.String("Music")))}
	f2 := &logical.Filter{Input: s2, Cond: expr.Eq(expr.Ref(s2.Cols[2]), expr.Lit(types.String("Music")))}
	res, ok := Fuse(f1, f2)
	if !ok {
		t.Fatal("must fuse")
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Errorf("equivalent filters should fuse exactly; L=%s R=%s", res.L, res.R)
	}
	if !expr.Equivalent(res.Plan.(*logical.Filter).Cond, f1.Cond) {
		t.Error("fused condition should be the shared condition")
	}
}

// Paper §III.C: projections dedupe equivalent assignments through M.
func TestFuseProjects(t *testing.T) {
	tab := testItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	p1 := &logical.Project{Input: s1, Cols: []logical.Assignment{
		logical.Assign("brand_plus_one", expr.NewBinary(expr.OpAdd, expr.Ref(s1.Cols[1]), expr.Lit(types.Int(1)))),
	}}
	p2 := &logical.Project{Input: s2, Cols: []logical.Assignment{
		logical.Assign("x", expr.NewBinary(expr.OpAdd, expr.Ref(s2.Cols[1]), expr.Lit(types.Int(1)))),
		logical.Assign("y", expr.Lit(types.String("new brand"))),
	}}
	res, ok := Fuse(p1, p2)
	if !ok {
		t.Fatal("projects must fuse")
	}
	mustValidate(t, res.Plan)
	fused := res.Plan.(*logical.Project)
	if len(fused.Cols) != 2 {
		t.Fatalf("fused project should have 2 assignments (x reused), got %d", len(fused.Cols))
	}
	if res.M.Resolve(p2.Cols[0].Col) != p1.Cols[0].Col {
		t.Error("x must map to brand_plus_one")
	}
	if res.M.Resolve(p2.Cols[1].Col) != p2.Cols[1].Col {
		t.Error("y keeps its identity as a new assignment")
	}
}

// Compensating-filter columns must survive an enclosing projection.
func TestFuseProjectsPreserveCompensationColumns(t *testing.T) {
	tab := testItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[1]), expr.Lit(types.Int(10)))}
	f2 := &logical.Filter{Input: s2, Cond: expr.NewBinary(expr.OpLt, expr.Ref(s2.Cols[1]), expr.Lit(types.Int(5)))}
	// Projections keep only i_category — the filters' brand column would drop.
	p1 := &logical.Project{Input: f1, Cols: []logical.Assignment{logical.Assign("c", expr.Ref(s1.Cols[2]))}}
	p2 := &logical.Project{Input: f2, Cols: []logical.Assignment{logical.Assign("c", expr.Ref(s2.Cols[2]))}}
	res, ok := Fuse(p1, p2)
	if !ok {
		t.Fatal("must fuse")
	}
	mustValidate(t, res.Plan)
	out := logical.OutputSet(res.Plan)
	for id := range expr.Columns(res.L) {
		if !out[id] {
			t.Errorf("L references column #%d not in fused output", id)
		}
	}
	for id := range expr.Columns(res.R) {
		if !out[id] {
			t.Errorf("R references column #%d not in fused output", id)
		}
	}
}

// Paper §III.D: joins fuse when both sides fuse and conditions match mod M.
func TestFuseJoins(t *testing.T) {
	sales, item := testSales(), testItem()
	ss1, it1 := logical.NewScan(sales), logical.NewScan(item)
	ss2, it2 := logical.NewScan(sales), logical.NewScan(item)
	j1 := &logical.Join{Kind: logical.InnerJoin, Left: ss1, Right: it1,
		Cond: expr.Eq(expr.Ref(ss1.Cols[0]), expr.Ref(it1.Cols[0]))}
	j2 := &logical.Join{Kind: logical.InnerJoin, Left: ss2, Right: it2,
		Cond: expr.Eq(expr.Ref(ss2.Cols[0]), expr.Ref(it2.Cols[0]))}
	res, ok := Fuse(j1, j2)
	if !ok {
		t.Fatal("identical joins must fuse")
	}
	mustValidate(t, res.Plan)
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("identical joins should fuse exactly")
	}
	if logical.CountScansOf(res.Plan, "store_sales") != 1 {
		t.Error("fused join should scan store_sales once")
	}
}

func TestFuseJoinsDifferentConditions(t *testing.T) {
	sales, item := testSales(), testItem()
	ss1, it1 := logical.NewScan(sales), logical.NewScan(item)
	ss2, it2 := logical.NewScan(sales), logical.NewScan(item)
	j1 := &logical.Join{Kind: logical.InnerJoin, Left: ss1, Right: it1,
		Cond: expr.Eq(expr.Ref(ss1.Cols[0]), expr.Ref(it1.Cols[0]))}
	j2 := &logical.Join{Kind: logical.InnerJoin, Left: ss2, Right: it2,
		Cond: expr.Eq(expr.Ref(ss2.Cols[1]), expr.Ref(it2.Cols[0]))} // different key
	if _, ok := Fuse(j1, j2); ok {
		t.Fatal("joins with different conditions must not fuse")
	}
}

func TestFuseJoinsWithFilteredSides(t *testing.T) {
	sales, item := testSales(), testItem()
	ss1, it1 := logical.NewScan(sales), logical.NewScan(item)
	ss2, it2 := logical.NewScan(sales), logical.NewScan(item)
	f1 := &logical.Filter{Input: it1, Cond: expr.Eq(expr.Ref(it1.Cols[3]), expr.Lit(types.String("m")))}
	f2 := &logical.Filter{Input: it2, Cond: expr.Eq(expr.Ref(it2.Cols[3]), expr.Lit(types.String("l")))}
	j1 := &logical.Join{Kind: logical.InnerJoin, Left: ss1, Right: f1,
		Cond: expr.Eq(expr.Ref(ss1.Cols[0]), expr.Ref(it1.Cols[0]))}
	j2 := &logical.Join{Kind: logical.InnerJoin, Left: ss2, Right: f2,
		Cond: expr.Eq(expr.Ref(ss2.Cols[0]), expr.Ref(it2.Cols[0]))}
	res, ok := Fuse(j1, j2)
	if !ok {
		t.Fatal("joins with fusable filtered sides must fuse")
	}
	mustValidate(t, res.Plan)
	if res.LTrivial() || res.RTrivial() {
		t.Error("compensations should carry the side filters")
	}
}

// Paper §III.E first example: scalar-vs-mask compensation via COUNT(*).
func TestFuseGroupBysWithMasks(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	// G1 = GroupBy{store} x:=SUM(price) over Filter(item=1)
	f1 := &logical.Filter{Input: s1, Cond: expr.Eq(expr.Ref(s1.Cols[0]), expr.Lit(types.Int(1)))}
	g1 := &logical.GroupBy{Input: f1, Keys: []*expr.Column{s1.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("x", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s1.Cols[2])}}}}
	// G2 = GroupBy{store} y:=AVG(price) FILTER(item=2) over T
	g2 := &logical.GroupBy{Input: s2, Keys: []*expr.Column{s2.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("y", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s2.Cols[2]),
				Mask: expr.Eq(expr.Ref(s2.Cols[0]), expr.Lit(types.Int(2)))}}}}

	res, ok := Fuse(g1, g2)
	if !ok {
		t.Fatal("group-bys must fuse")
	}
	mustValidate(t, res.Plan)
	fused := res.Plan.(*logical.GroupBy)
	// x with tightened mask, y with mapped mask, plus compensating COUNT(*).
	if len(fused.Aggs) != 3 {
		t.Fatalf("fused aggs = %d, want 3 (x, y, countL):\n%s", len(fused.Aggs), logical.Format(fused))
	}
	if fused.Aggs[0].Agg.Mask == nil {
		t.Error("x's mask must be tightened with L (the filter)")
	}
	if fused.Aggs[2].Agg.Fn != expr.AggCountStar {
		t.Error("compensating aggregate must be COUNT(*)")
	}
	// L must be countL > 0; R trivial.
	if res.LTrivial() {
		t.Errorf("L should be count>0, got %s", res.L)
	}
	if !res.RTrivial() {
		t.Errorf("R should be TRUE, got %s", res.R)
	}
	// Underlying input no longer filtered: the filter became a mask.
	if _, isFilter := fused.Input.(*logical.Filter); isFilter {
		t.Error("side filter should have been absorbed into masks, not kept")
	}
}

func TestFuseGroupBysDedupAggs(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	g1 := &logical.GroupBy{Input: s1, Keys: []*expr.Column{s1.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("rev", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s1.Cols[2])}}}}
	g2 := &logical.GroupBy{Input: s2, Keys: []*expr.Column{s2.Cols[1]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("rev2", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s2.Cols[2])}}}}
	res, ok := Fuse(g1, g2)
	if !ok {
		t.Fatal("identical group-bys must fuse")
	}
	fused := res.Plan.(*logical.GroupBy)
	if len(fused.Aggs) != 1 {
		t.Fatalf("identical aggregates should dedupe, got %d", len(fused.Aggs))
	}
	if res.M.Resolve(g2.Aggs[0].Col) != g1.Aggs[0].Col {
		t.Error("rev2 must map to rev")
	}
	if res.M.Resolve(g2.Keys[0]) != g1.Keys[0] {
		t.Error("group key must map through M")
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("identical group-bys fuse exactly")
	}
}

func TestFuseGroupBysDifferentKeys(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	g1 := &logical.GroupBy{Input: s1, Keys: []*expr.Column{s1.Cols[1]}}
	g2 := &logical.GroupBy{Input: s2, Keys: []*expr.Column{s2.Cols[0]}}
	if _, ok := Fuse(g1, g2); ok {
		t.Fatal("different grouping keys must not fuse")
	}
	g3 := &logical.GroupBy{Input: logical.NewScan(tab), Keys: nil}
	if _, ok := Fuse(g1, g3); ok {
		t.Fatal("different key arity must not fuse")
	}
}

func TestFuseScalarGroupBys(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[2]), expr.Lit(types.Float(1)))}
	f2 := &logical.Filter{Input: s2, Cond: expr.NewBinary(expr.OpLt, expr.Ref(s2.Cols[2]), expr.Lit(types.Float(100)))}
	g1 := &logical.GroupBy{Input: f1, Aggs: []logical.AggAssign{{Col: expr.NewColumn("c1", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}}}}
	g2 := &logical.GroupBy{Input: f2, Aggs: []logical.AggAssign{{Col: expr.NewColumn("c2", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}}}}
	res, ok := Fuse(g1, g2)
	if !ok {
		t.Fatal("scalar group-bys must fuse")
	}
	mustValidate(t, res.Plan)
	// Scalar aggregates: no compensating counts, compensations TRUE.
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("scalar group-by compensations must be TRUE")
	}
	fused := res.Plan.(*logical.GroupBy)
	if len(fused.Aggs) != 2 {
		t.Fatalf("fused scalar aggs = %d, want 2", len(fused.Aggs))
	}
	// Both aggregates must have picked up their side's filter as mask.
	if fused.Aggs[0].Agg.Mask == nil || fused.Aggs[1].Agg.Mask == nil {
		t.Error("both aggregates need masks from the side filters")
	}
}

func TestFuseMarkDistincts(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	d1 := &logical.MarkDistinct{Input: s1, MarkCol: expr.NewColumn("d1", types.KindBool), On: []*expr.Column{s1.Cols[0]}}
	d2 := &logical.MarkDistinct{Input: s2, MarkCol: expr.NewColumn("d2", types.KindBool), On: []*expr.Column{s2.Cols[1]}}
	res, ok := Fuse(d1, d2)
	if !ok {
		t.Fatal("mark-distincts must fuse")
	}
	mustValidate(t, res.Plan)
	outer, isMD := res.Plan.(*logical.MarkDistinct)
	if !isMD {
		t.Fatalf("fused root should be MarkDistinct, got %T", res.Plan)
	}
	if _, innerMD := outer.Input.(*logical.MarkDistinct); !innerMD {
		t.Fatal("fused plan should chain two MarkDistinct operators")
	}
	out := logical.OutputSet(res.Plan)
	if !out[d1.MarkCol.ID] || !out[d2.MarkCol.ID] {
		t.Error("both mark columns must be visible in fused output")
	}
}

func TestFuseMarkDistinctsWithCompensation(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[2]), expr.Lit(types.Float(5)))}
	f2 := &logical.Filter{Input: s2, Cond: expr.NewBinary(expr.OpLt, expr.Ref(s2.Cols[2]), expr.Lit(types.Float(2)))}
	d1 := &logical.MarkDistinct{Input: f1, MarkCol: expr.NewColumn("d1", types.KindBool), On: []*expr.Column{s1.Cols[0]}}
	d2 := &logical.MarkDistinct{Input: f2, MarkCol: expr.NewColumn("d2", types.KindBool), On: []*expr.Column{s2.Cols[0]}}
	res, ok := Fuse(d1, d2)
	if !ok {
		t.Fatal("must fuse")
	}
	mustValidate(t, res.Plan)
	// Non-trivial compensations: each MarkDistinct must carry its side's
	// compensating filter as a native mask, so rows of the other side do
	// not consume its first-occurrence marks.
	outer := res.Plan.(*logical.MarkDistinct)
	inner := outer.Input.(*logical.MarkDistinct)
	if outer.Mask == nil || expr.IsTrueLiteral(outer.Mask) {
		t.Error("outer MarkDistinct must carry the L compensation as mask")
	}
	if inner.Mask == nil || expr.IsTrueLiteral(inner.Mask) {
		t.Error("inner MarkDistinct must carry the R compensation as mask")
	}
	if !expr.Equivalent(outer.Mask, res.L) {
		t.Errorf("outer mask %s should equal L %s", outer.Mask, res.L)
	}
	if !expr.Equivalent(inner.Mask, res.R) {
		t.Errorf("inner mask %s should equal R %s", inner.Mask, res.R)
	}
}

// §III.G example: Filter(T) vs MarkDistinct(Filter(T)) — skipping the
// MarkDistinct must win over manufacturing a trivial filter.
func TestFuseMismatchedSkipsMarkDistinct(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[2]), expr.Lit(types.Float(5)))}
	f2 := &logical.Filter{Input: s2, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s2.Cols[2]), expr.Lit(types.Float(5)))}
	d2 := &logical.MarkDistinct{Input: f2, MarkCol: expr.NewColumn("d", types.KindBool), On: []*expr.Column{s2.Cols[0]}}
	res, ok := Fuse(f1, d2)
	if !ok {
		t.Fatal("mismatched roots with MarkDistinct must fuse")
	}
	mustValidate(t, res.Plan)
	// The result re-adds MarkDistinct above the fused filters; the filters
	// fuse exactly, so the disjunction must have been pushed to the scan
	// level (single filter, not filter-over-trivial-filter).
	md, isMD := res.Plan.(*logical.MarkDistinct)
	if !isMD {
		t.Fatalf("root should be re-added MarkDistinct, got %T", res.Plan)
	}
	if _, isFilter := md.Input.(*logical.Filter); !isFilter {
		t.Fatalf("MarkDistinct input should be fused Filter, got %T", md.Input)
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("identical filters fuse exactly")
	}
}

func TestFuseEnforceSingleRow(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	g1 := &logical.GroupBy{Input: s1, Aggs: []logical.AggAssign{{Col: expr.NewColumn("a", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}}}}
	g2 := &logical.GroupBy{Input: s2, Aggs: []logical.AggAssign{{Col: expr.NewColumn("b", types.KindFloat64), Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s2.Cols[2])}}}}
	e1 := &logical.EnforceSingleRow{Input: g1}
	e2 := &logical.EnforceSingleRow{Input: g2}
	res, ok := Fuse(e1, e2)
	if !ok {
		t.Fatal("ESR over fusable scalar aggregates must fuse")
	}
	mustValidate(t, res.Plan)
	if _, isESR := res.Plan.(*logical.EnforceSingleRow); !isESR {
		t.Fatalf("root should stay EnforceSingleRow, got %T", res.Plan)
	}
	if len(res.Plan.Schema()) != 2 {
		t.Errorf("fused schema should carry both aggregates, got %d cols", len(res.Plan.Schema()))
	}
}

func TestFuseValues(t *testing.T) {
	v1 := logical.NewValuesInt("tag", 1, 2)
	v2 := logical.NewValuesInt("t2", 1, 2)
	res, ok := Fuse(v1, v2)
	if !ok {
		t.Fatal("identical constant tables must fuse")
	}
	if res.M.Resolve(v2.Cols[0]) != v1.Cols[0] {
		t.Error("values columns map positionally")
	}
	v3 := logical.NewValuesInt("t3", 1, 3)
	if _, ok := Fuse(v1, v3); ok {
		t.Fatal("different constant tables must not fuse")
	}
}

func TestFuseAllThreeBranches(t *testing.T) {
	tab := testItem()
	mkFilter := func(lo int64) logical.Operator {
		s := logical.NewScan(tab)
		return &logical.Filter{Input: s, Cond: expr.Eq(expr.Ref(s.Cols[1]), expr.Lit(types.Int(lo)))}
	}
	plans := []logical.Operator{mkFilter(1), mkFilter(2), mkFilter(3)}
	res, ok := FuseAll(plans)
	if !ok {
		t.Fatal("three filters over same table must fuse")
	}
	if len(res.Ms) != 3 || len(res.Comps) != 3 {
		t.Fatalf("n-ary result arity wrong: %d/%d", len(res.Ms), len(res.Comps))
	}
	mustValidate(t, res.Plan)
	if logical.CountScansOf(res.Plan, "item") != 1 {
		t.Error("n-ary fusion should leave one scan")
	}
	// Each compensation must restore its branch's filter.
	for i, want := range []int64{1, 2, 3} {
		found := false
		for _, c := range expr.Conjuncts(res.Comps[i]) {
			if b, isBin := c.(*expr.Binary); isBin && b.Op == expr.OpEq {
				if l, isLit := b.R.(*expr.Literal); isLit && l.Val.I == want {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("comp[%d] = %s does not restore brand=%d", i, res.Comps[i], want)
		}
	}
}

func TestFlattenAndRebuildJoinGraph(t *testing.T) {
	sales, item := testSales(), testItem()
	ss, it := logical.NewScan(sales), logical.NewScan(item)
	join := &logical.Join{Kind: logical.InnerJoin, Left: ss, Right: it,
		Cond: expr.Eq(expr.Ref(ss.Cols[0]), expr.Ref(it.Cols[0]))}
	top := &logical.Filter{Input: join, Cond: expr.NewBinary(expr.OpGt, expr.Ref(ss.Cols[2]), expr.Lit(types.Float(0)))}
	g := FlattenJoin(top)
	if len(g.Inputs) != 2 || len(g.Conjuncts) != 2 {
		t.Fatalf("flatten: %d inputs, %d conjuncts", len(g.Inputs), len(g.Conjuncts))
	}
	rebuilt := g.Build()
	mustValidate(t, rebuilt)
	// Single-input conjunct should be a filter on the input; join conjunct
	// on the join.
	if logical.CountOperators(rebuilt) < 4 {
		t.Errorf("rebuilt plan too small:\n%s", logical.Format(rebuilt))
	}
}

func TestJoinGraphSemiJoinIsLeaf(t *testing.T) {
	sales := testSales()
	s1, s2 := logical.NewScan(sales), logical.NewScan(sales)
	semi := &logical.Join{Kind: logical.SemiJoin, Left: s1, Right: s2,
		Cond: expr.Eq(expr.Ref(s1.Cols[0]), expr.Ref(s2.Cols[0]))}
	g := FlattenJoin(semi)
	if len(g.Inputs) != 1 {
		t.Errorf("semi join must not be flattened, got %d inputs", len(g.Inputs))
	}
}
