package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// This file replays the worked examples from the paper's §III, verbatim
// where the operator algebra allows, as executable conformance checks.

// paperItem mirrors the item columns the §III examples use.
func paperItem() *catalog.Table {
	return &catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item_sk", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
			{Name: "i_size", Type: types.KindString},
			{Name: "i_brand_id", Type: types.KindInt64},
			{Name: "i_category", Type: types.KindString},
			{Name: "i_item_desc", Type: types.KindString},
			{Name: "i_color", Type: types.KindString},
			{Name: "i_category_id", Type: types.KindInt64},
		},
	}
}

// §III.A: SELECT i_item_sk AS sk, i_brand AS brand FROM item fused with
// SELECT i_brand AS brand2, i_size AS size FROM item gives a single scan
// with mapping brand2 → brand.
func TestPaperExampleScanFusion(t *testing.T) {
	tab := paperItem()
	s1 := logical.NewScan(tab)
	p1 := &logical.Project{Input: s1, Cols: []logical.Assignment{
		{Col: s1.Cols[0], E: expr.Ref(s1.Cols[0])}, // sk
		{Col: s1.Cols[1], E: expr.Ref(s1.Cols[1])}, // brand
	}}
	s2 := logical.NewScan(tab)
	p2 := &logical.Project{Input: s2, Cols: []logical.Assignment{
		{Col: s2.Cols[1], E: expr.Ref(s2.Cols[1])}, // brand2
		{Col: s2.Cols[2], E: expr.Ref(s2.Cols[2])}, // size
	}}
	res, ok := Fuse(p1, p2)
	if !ok {
		t.Fatal("the §III.A example must fuse")
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("§III.A: compensations must be TRUE")
	}
	// brand2 maps to brand (P1's instance of i_brand).
	if res.M.Resolve(s2.Cols[1]) != s1.Cols[1] {
		t.Error("§III.A: brand2 must map to brand")
	}
	// The fused plan exposes sk, brand, size.
	outSet := logical.OutputSet(res.Plan)
	for _, c := range []*expr.Column{s1.Cols[0], s1.Cols[1]} {
		if !outSet[c.ID] {
			t.Errorf("§III.A: fused plan lost %s", c)
		}
	}
	if !outSet[res.M.Resolve(s2.Cols[2]).ID] {
		t.Error("§III.A: fused plan lost size")
	}
	if logical.CountScansOf(res.Plan, "item") != 1 {
		t.Error("§III.A: one scan expected")
	}
}

// §III.B: category='Music' AND brand_id>1000 fused with category='Music'
// AND brand_id<50 gives WHERE category='Music' AND (brand_id<50 OR
// brand_id>1000) with the original conditions as compensations.
func TestPaperExampleFilterFusion(t *testing.T) {
	tab := paperItem()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.And(
		expr.Eq(expr.Ref(s1.Cols[4]), expr.Lit(types.String("Music"))),
		expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[3]), expr.Lit(types.Int(1000))),
	)}
	f2 := &logical.Filter{Input: s2, Cond: expr.And(
		expr.Eq(expr.Ref(s2.Cols[4]), expr.Lit(types.String("Music"))),
		expr.NewBinary(expr.OpLt, expr.Ref(s2.Cols[3]), expr.Lit(types.Int(50))),
	)}
	res, ok := Fuse(f1, f2)
	if !ok {
		t.Fatal("the §III.B example must fuse")
	}
	mustValidate(t, res.Plan)
	// L restores P1, R restores P2 (modulo M).
	if !expr.Equivalent(res.L, f1.Cond) {
		t.Errorf("§III.B: L = %s", res.L)
	}
	if !expr.Equivalent(res.R, res.M.Apply(f2.Cond)) {
		t.Errorf("§III.B: R = %s", res.R)
	}
	// The fused condition accepts the union of rows: it must be the
	// disjunction of the two (the paper shows the factored Music AND
	// (brand range) form; ours is the unfactored equivalent).
	cond := res.Plan.(*logical.Filter).Cond
	if len(expr.Disjuncts(cond)) != 2 {
		t.Errorf("§III.B: fused condition should be a disjunction: %s", cond)
	}
}

// §III.C: Project x:=a+1 fused with Project y:=a'+1, z:=3 reuses x for y.
func TestPaperExampleProjectFusion(t *testing.T) {
	tab := &catalog.Table{Name: "t", Columns: []catalog.Column{{Name: "a", Type: types.KindInt64}}}
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	p1 := &logical.Project{Input: s1, Cols: []logical.Assignment{
		logical.Assign("x", expr.NewBinary(expr.OpAdd, expr.Ref(s1.Cols[0]), expr.Lit(types.Int(1)))),
	}}
	p2 := &logical.Project{Input: s2, Cols: []logical.Assignment{
		logical.Assign("y", expr.NewBinary(expr.OpAdd, expr.Ref(s2.Cols[0]), expr.Lit(types.Int(1)))),
		logical.Assign("z", expr.Lit(types.Int(3))),
	}}
	res, ok := Fuse(p1, p2)
	if !ok {
		t.Fatal("the §III.C example must fuse")
	}
	fused := res.Plan.(*logical.Project)
	if len(fused.Cols) != 2 {
		t.Fatalf("§III.C: expected assignments {x, z}, got %d", len(fused.Cols))
	}
	if res.M.Resolve(p2.Cols[0].Col) != p1.Cols[0].Col {
		t.Error("§III.C: y must map to x")
	}
	if res.M.Resolve(p2.Cols[1].Col) != p2.Cols[1].Col {
		t.Error("§III.C: z keeps its identity")
	}
	if !res.LTrivial() || !res.RTrivial() {
		t.Error("§III.C: compensations must be TRUE")
	}
}

// §III.E first example: G1 = GroupBy{a} x:=(SUM(b), TRUE) over Filter(c=1),
// G2 = GroupBy{a} y:=(AVG(b), d=1). The fusion yields masked aggregates
// [x:=(SUM(b),c=1), y:=(AVG(b),d=1), z:=(COUNT(*),c=1)] with L = z>0 and
// R = TRUE.
func TestPaperExampleGroupByFusion(t *testing.T) {
	tab := &catalog.Table{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: types.KindInt64},
		{Name: "b", Type: types.KindInt64},
		{Name: "c", Type: types.KindInt64},
		{Name: "d", Type: types.KindInt64},
	}}
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	g1 := &logical.GroupBy{
		Input: &logical.Filter{Input: s1, Cond: expr.Eq(expr.Ref(s1.Cols[2]), expr.Lit(types.Int(1)))},
		Keys:  []*expr.Column{s1.Cols[0]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("x", types.KindInt64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s1.Cols[1])}}},
	}
	g2 := &logical.GroupBy{
		Input: s2,
		Keys:  []*expr.Column{s2.Cols[0]},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("y", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s2.Cols[1]),
				Mask: expr.Eq(expr.Ref(s2.Cols[3]), expr.Lit(types.Int(1)))}}},
	}
	res, ok := Fuse(g1, g2)
	if !ok {
		t.Fatal("the §III.E example must fuse")
	}
	mustValidate(t, res.Plan)
	fused := res.Plan.(*logical.GroupBy)
	if len(fused.Aggs) != 3 {
		t.Fatalf("§III.E: aggs = %d, want 3 (x, y, z)", len(fused.Aggs))
	}
	// x's mask is the absorbed filter c=1.
	if fused.Aggs[0].Agg.Mask == nil || !strings.Contains(fused.Aggs[0].Agg.Mask.String(), "= 1") {
		t.Errorf("§III.E: x's mask = %v", fused.Aggs[0].Agg.Mask)
	}
	// z is COUNT(*) with the same mask; L = z > 0, R = TRUE.
	z := fused.Aggs[2]
	if z.Agg.Fn != expr.AggCountStar {
		t.Errorf("§III.E: compensating aggregate = %s", z.Agg)
	}
	if res.RTrivial() == false {
		t.Errorf("§III.E: R = %s, want TRUE", res.R)
	}
	wantL := expr.NewBinary(expr.OpGt, expr.Ref(z.Col), expr.Lit(types.Int(0)))
	if !expr.Equivalent(res.L, wantL) {
		t.Errorf("§III.E: L = %s, want %s", res.L, wantL)
	}
	// The filter below the group-by must be gone (absorbed into masks).
	if _, isFilter := fused.Input.(*logical.Filter); isFilter {
		t.Error("§III.E: the side filter must be absorbed into masks")
	}
}

// §III.F: GroupBy{a} [x:=count(b) distinct, y:=count(c) distinct] lowers to
// a MarkDistinct chain, and fusing two such plans chains the marks over one
// input. Here we verify the fusion of the §III.F operator pair directly.
func TestPaperExampleMarkDistinctChain(t *testing.T) {
	tab := &catalog.Table{Name: "t", Columns: []catalog.Column{
		{Name: "a", Type: types.KindInt64},
		{Name: "b", Type: types.KindInt64},
		{Name: "c", Type: types.KindInt64},
	}}
	s := logical.NewScan(tab)
	inner := &logical.MarkDistinct{Input: s, MarkCol: expr.NewColumn("dc", types.KindBool), On: []*expr.Column{s.Cols[2]}}
	outer := &logical.MarkDistinct{Input: inner, MarkCol: expr.NewColumn("db", types.KindBool), On: []*expr.Column{s.Cols[1]}}
	gb := &logical.GroupBy{Input: outer, Keys: []*expr.Column{s.Cols[0]},
		Aggs: []logical.AggAssign{
			{Col: expr.NewColumn("x", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCount, Arg: expr.Ref(s.Cols[1]), Mask: expr.Ref(outer.MarkCol)}},
			{Col: expr.NewColumn("y", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCount, Arg: expr.Ref(s.Cols[2]), Mask: expr.Ref(inner.MarkCol)}},
		}}
	if err := logical.Validate(gb); err != nil {
		t.Fatalf("§III.F shape invalid: %v", err)
	}
	// A second identical instance fuses into one plan with both mark chains
	// deduplicated (exact fuse).
	s2 := logical.NewScan(tab)
	inner2 := &logical.MarkDistinct{Input: s2, MarkCol: expr.NewColumn("dc", types.KindBool), On: []*expr.Column{s2.Cols[2]}}
	outer2 := &logical.MarkDistinct{Input: inner2, MarkCol: expr.NewColumn("db", types.KindBool), On: []*expr.Column{s2.Cols[1]}}
	gb2 := &logical.GroupBy{Input: outer2, Keys: []*expr.Column{s2.Cols[0]},
		Aggs: []logical.AggAssign{
			{Col: expr.NewColumn("x2", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCount, Arg: expr.Ref(s2.Cols[1]), Mask: expr.Ref(outer2.MarkCol)}},
		}}
	res, ok := Fuse(gb, gb2)
	if !ok {
		t.Fatal("§III.F: identical mark chains must fuse")
	}
	mustValidate(t, res.Plan)
	if got := logical.CountScansOf(res.Plan, "t"); got != 1 {
		t.Errorf("§III.F: scans = %d, want 1", got)
	}
	if res.M.Resolve(gb2.Aggs[0].Col) != gb.Aggs[0].Col {
		t.Error("§III.F: x2 must map to x")
	}
}
