package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// UnionAllFusion implements §IV.D: a UnionAll whose branches fuse is
// replaced by a single evaluation of the fused plan cross-joined with a
// constant tag table; compensating filters guarded by the tag restore each
// branch's rows, and a projection selects each branch's output columns via
// CASE on the tag:
//
//	Project_{UM(c1i) := CASE WHEN tag=1 THEN c1i ELSE M(c2i) END, ...}
//	  Filter_{(tag=1 AND L) OR (tag=2 AND R)}
//	    CrossJoin(P, ConstantTable((1),(2)) AS Temp(tag))
//
// The rule is natively n-ary (§IV.E recommends extending Fuse to n inputs
// for unions rather than iterating pairwise). When the compensating filters
// of a binary union are contradictory (L AND R ≡ FALSE), the replication is
// unnecessary and the simpler Filter_{L OR R} + CASE WHEN L form is used.
type UnionAllFusion struct {
	// MinReuseRows gates the rewrite on the estimated size of the fused
	// common expression (0 = always apply).
	MinReuseRows float64
}

// Name implements Rule.
func (UnionAllFusion) Name() string { return "UnionAllFusion" }

// Apply implements Rule.
func (r UnionAllFusion) Apply(op logical.Operator) (logical.Operator, bool) {
	u, ok := op.(*logical.UnionAll)
	if !ok || len(u.Inputs) < 2 {
		return op, false
	}
	res, ok := FuseAll(u.Inputs)
	if !ok || !containsAnyScan(res.Plan) {
		return op, false
	}
	if r.MinReuseRows > 0 && logical.EstimateRows(res.Plan) < r.MinReuseRows {
		return op, false
	}

	// Contradiction shortcut for the binary case.
	if len(u.Inputs) == 2 && expr.Contradictory(res.Comps[0], res.Comps[1]) {
		filtered := logical.NewFilter(res.Plan, expr.Simplify(expr.Or(res.Comps[0], res.Comps[1])))
		top := &logical.Project{Input: filtered}
		for j, outCol := range u.Cols {
			e0 := expr.Ref(res.Ms[0].Resolve(u.InputCols[0][j]))
			e1 := expr.Ref(res.Ms[1].Resolve(u.InputCols[1][j]))
			var e expr.Expr
			if expr.Equal(e0, e1) {
				e = e0
			} else {
				e = &expr.Case{Whens: []expr.When{{Cond: res.Comps[0], Then: e0}}, Else: e1}
			}
			top.Cols = append(top.Cols, logical.Assignment{Col: outCol, E: e})
		}
		return top, true
	}

	n := len(u.Inputs)
	tags := make([]int64, n)
	for i := range tags {
		tags[i] = int64(i + 1)
	}
	tagTable := logical.NewValuesInt("tag", tags...)
	tagCol := tagTable.Cols[0]
	cross := &logical.Join{Kind: logical.CrossJoin, Left: res.Plan, Right: tagTable}

	branchConds := make([]expr.Expr, n)
	for i := 0; i < n; i++ {
		branchConds[i] = expr.And(
			expr.Eq(expr.Ref(tagCol), expr.Lit(types.Int(tags[i]))),
			res.Comps[i],
		)
	}
	filtered := logical.NewFilter(cross, expr.Simplify(expr.Or(branchConds...)))

	top := &logical.Project{Input: filtered}
	for j, outCol := range u.Cols {
		exprs := make([]expr.Expr, n)
		allEqual := true
		for i := 0; i < n; i++ {
			exprs[i] = expr.Ref(res.Ms[i].Resolve(u.InputCols[i][j]))
			if i > 0 && !expr.Equal(exprs[i], exprs[0]) {
				allEqual = false
			}
		}
		var e expr.Expr
		if allEqual {
			// §IV.D extension: drop the CASE when every branch selects the
			// same fused column.
			e = exprs[0]
		} else {
			whens := make([]expr.When, 0, n-1)
			for i := 0; i < n-1; i++ {
				whens = append(whens, expr.When{
					Cond: expr.Eq(expr.Ref(tagCol), expr.Lit(types.Int(tags[i]))),
					Then: exprs[i],
				})
			}
			e = &expr.Case{Whens: whens, Else: exprs[n-1]}
		}
		top.Cols = append(top.Cols, logical.Assignment{Col: outCol, E: e})
	}
	return top, true
}
