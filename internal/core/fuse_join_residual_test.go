package core

import (
	"math/rand"
	"testing"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// These tests cover the §III.D footnote: inner joins whose conditions only
// partially match fuse on the common portion, with the differing conjuncts
// becoming compensating residuals.

func TestFuseJoinsResidualConditions(t *testing.T) {
	tab := testSales()
	mk := func(threshold int64) *logical.Join {
		l, r := logical.NewScan(tab), logical.NewScan(tab)
		cond := expr.And(
			expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0])),
			expr.NewBinary(expr.OpGt, expr.Ref(l.Cols[2]), expr.Lit(types.Float(float64(threshold)))),
		)
		return &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r, Cond: cond}
	}
	j1, j2 := mk(10), mk(20) // shared equality, differing threshold
	res, ok := Fuse(j1, j2)
	if !ok {
		t.Fatal("partially matching inner joins must fuse on the common portion")
	}
	mustValidate(t, res.Plan)
	fusedJoin, isJoin := res.Plan.(*logical.Join)
	if !isJoin {
		t.Fatalf("fused root should be a join, got %T", res.Plan)
	}
	// The fused condition is the shared equality only.
	if len(expr.Conjuncts(fusedJoin.Cond)) != 1 {
		t.Errorf("fused join condition should be the shared equality: %s", fusedJoin.Cond)
	}
	// Residuals land in the compensations.
	if res.LTrivial() || res.RTrivial() {
		t.Errorf("residual thresholds must appear in compensations: L=%s R=%s", res.L, res.R)
	}
}

func TestFuseJoinsNoSharedEqualityFails(t *testing.T) {
	tab := testSales()
	mk := func(col int) *logical.Join {
		l, r := logical.NewScan(tab), logical.NewScan(tab)
		return &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r,
			Cond: expr.Eq(expr.Ref(l.Cols[col]), expr.Ref(r.Cols[col]))}
	}
	// Different equality columns: no common equality conjunct → no fusion.
	if _, ok := Fuse(mk(0), mk(1)); ok {
		t.Fatal("joins sharing no equality conjunct must not fuse")
	}
}

func TestFuseJoinsResidualSemiJoinStillStrict(t *testing.T) {
	tab := testSales()
	mk := func(threshold float64) *logical.Join {
		l, r := logical.NewScan(tab), logical.NewScan(tab)
		cond := expr.And(
			expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0])),
			expr.NewBinary(expr.OpGt, expr.Ref(r.Cols[2]), expr.Lit(types.Float(threshold))),
		)
		return &logical.Join{Kind: logical.SemiJoin, Left: l, Right: r, Cond: cond}
	}
	if _, ok := Fuse(mk(10), mk(20)); ok {
		t.Fatal("semi joins with differing conditions must not fuse (no residual support)")
	}
}

// TestFuseJoinsResidualSemantics executes the reconstruction contract for
// the residual case.
func TestFuseJoinsResidualSemantics(t *testing.T) {
	st := propStore(t, rand.New(rand.NewSource(5)))
	tab, _ := st.Catalog().Table("sales")
	mk := func(threshold int64) *logical.Join {
		l, r := logical.NewScan(tab), logical.NewScan(tab)
		cond := expr.And(
			expr.Eq(expr.Ref(l.Cols[0]), expr.Ref(r.Cols[0])),
			expr.NewBinary(expr.OpGt, expr.Ref(l.Cols[2]), expr.Lit(types.Int(threshold))),
		)
		return &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r, Cond: cond}
	}
	j1, j2 := mk(10), mk(30)
	res, ok := Fuse(j1, j2)
	if !ok {
		t.Fatal("must fuse")
	}
	run := func(p logical.Operator) []string {
		r, err := exec.Run(p, st)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return bag(r)
	}
	want1 := run(j1)
	got1 := run(reconstruct(res.Plan, res.L, j1.Schema(), expr.Identity()))
	if !sameBags(want1, got1) {
		t.Fatalf("P1 reconstruction differs: %d vs %d rows", len(want1), len(got1))
	}
	want2 := run(j2)
	got2 := run(reconstruct(res.Plan, res.R, j2.Schema(), res.M))
	if !sameBags(want2, got2) {
		t.Fatalf("P2 reconstruction differs: %d vs %d rows", len(want2), len(got2))
	}
}
