package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// UnionAllOnJoin implements §IV.C: a UnionAll whose branches are joins (or
// semi joins) against fusable right-hand sides is rewritten by pushing the
// UnionAll below the join, tagging each branch, and reconstructing the join
// predicate with tag guards:
//
//	UnionAll(P1 ⋉_{C1} Z1, P2 ⋉_{C2} Z2)
//	→ SemiJoin_{(tag=1 AND C1' AND L) OR (tag=2 AND C2' AND R)}
//	    (UnionAll(Project_{tag:=1,...}(P1), Project_{tag:=2,...}(P2)), Z)
//
// where Fuse(Z1, Z2) = (Z, M, L, R) and Ci' rewrites branch columns to
// freshly added union outputs and Zi columns through M. The rule strips as
// many join levels as fuse in one application (the paper applies it
// "repeatedly, first fusing best_customer, then freq_items, and finally
// date_dim" on Q23) and handles n-ary unions natively.
type UnionAllOnJoin struct {
	// MinReuseRows gates the rewrite on the estimated size of the fused
	// right-hand sides (0 = always apply).
	MinReuseRows float64
}

// Name implements Rule.
func (UnionAllOnJoin) Name() string { return "UnionAllOnJoin" }

// uajBranch tracks one union branch during stripping: the remaining plan
// and, for each union output, the defining expression (over the remaining
// plan's columns plus already-fused right-side columns).
type uajBranch struct {
	op   logical.Operator
	outs []expr.Expr
}

// strippedLevel records one join level removed from every branch.
type strippedLevel struct {
	kind   logical.JoinKind
	fusedZ logical.Operator
	conds  []expr.Expr // per branch, right side already mapped to fusedZ
	comps  []expr.Expr // per branch, compensating filter over fusedZ
}

// Apply implements Rule.
func (r UnionAllOnJoin) Apply(op logical.Operator) (logical.Operator, bool) {
	u, ok := op.(*logical.UnionAll)
	if !ok || len(u.Inputs) < 2 {
		return op, false
	}
	branches := make([]*uajBranch, len(u.Inputs))
	for i, in := range u.Inputs {
		b := &uajBranch{op: in}
		for _, c := range u.InputCols[i] {
			b.outs = append(b.outs, expr.Ref(c))
		}
		branches[i] = b
	}

	var levels []strippedLevel
	for {
		peelProjects(branches)
		lvl, ok := stripLevel(branches)
		if !ok {
			break
		}
		levels = append(levels, lvl)
	}
	if len(levels) == 0 {
		return op, false
	}
	// Heuristic gate: at least one deduplicated right side must do real
	// work (read a table); otherwise the tag machinery is pure overhead.
	worthIt := false
	for _, lvl := range levels {
		if containsAnyScan(lvl.fusedZ) &&
			(r.MinReuseRows <= 0 || logical.EstimateRows(lvl.fusedZ) >= r.MinReuseRows) {
			worthIt = true
			break
		}
	}
	if !worthIt {
		return op, false
	}
	return rebuildUnionJoin(u, branches, levels), true
}

// peelProjects folds Project roots into each branch's output expressions
// (the §IV.E extension "carrying over projections across our
// transformations"), exposing the joins underneath.
func peelProjects(branches []*uajBranch) {
	for _, b := range branches {
		for {
			p, ok := b.op.(*logical.Project)
			if !ok {
				break
			}
			byID := make(map[expr.ColumnID]expr.Expr, len(p.Cols))
			for _, a := range p.Cols {
				byID[a.Col.ID] = a.E
			}
			for k, out := range b.outs {
				b.outs[k] = expr.Transform(out, func(x expr.Expr) expr.Expr {
					if ref, isRef := x.(*expr.ColumnRef); isRef {
						if e, found := byID[ref.Col.ID]; found {
							return e
						}
					}
					return x
				})
			}
			b.op = p.Input
		}
	}
}

// stripLevel removes one shared join level from every branch if all roots
// are joins of the same kind whose right sides fuse. On success the
// branches are mutated (op becomes the left input, outs remapped) and the
// stripped level is returned.
func stripLevel(branches []*uajBranch) (strippedLevel, bool) {
	joins := make([]*logical.Join, len(branches))
	for i, b := range branches {
		j, ok := b.op.(*logical.Join)
		if !ok {
			return strippedLevel{}, false
		}
		if i > 0 && j.Kind != joins[0].Kind {
			return strippedLevel{}, false
		}
		switch j.Kind {
		case logical.InnerJoin, logical.SemiJoin, logical.CrossJoin:
		default:
			return strippedLevel{}, false
		}
		joins[i] = j
	}
	rights := make([]logical.Operator, len(joins))
	for i, j := range joins {
		rights[i] = j.Right
	}
	fz, ok := FuseAll(rights)
	if !ok {
		return strippedLevel{}, false
	}
	lvl := strippedLevel{
		kind:   joins[0].Kind,
		fusedZ: fz.Plan,
		conds:  make([]expr.Expr, len(branches)),
		comps:  fz.Comps,
	}
	for i, b := range branches {
		lvl.conds[i] = fz.Ms[i].Apply(joins[i].Cond)
		// Inner/cross joins expose right-side columns; remap any union
		// outputs that referenced them onto the fused instance.
		for k, out := range b.outs {
			b.outs[k] = fz.Ms[i].Apply(out)
		}
		b.op = joins[i].Left
	}
	return lvl, true
}

// rebuildUnionJoin assembles the final plan: tagged union of the stripped
// branches, the fused joins re-applied with tag-guarded predicates, and a
// top projection restoring the original union schema.
func rebuildUnionJoin(u *logical.UnionAll, branches []*uajBranch, levels []strippedLevel) logical.Operator {
	n := len(branches)

	// Needed branch-local columns: those referenced by the branch's output
	// expressions or join conditions and produced by the stripped plan.
	needed := make([][]*expr.Column, n)
	for i, b := range branches {
		local := logical.OutputSet(b.op)
		want := make(map[expr.ColumnID]bool)
		for _, out := range b.outs {
			expr.CollectColumns(out, want)
		}
		for _, lvl := range levels {
			if lvl.conds[i] != nil {
				expr.CollectColumns(lvl.conds[i], want)
			}
		}
		for _, c := range b.op.Schema() {
			if want[c.ID] && local[c.ID] {
				needed[i] = append(needed[i], c)
			}
		}
	}

	// Build the tagged union: output 0 is the tag, then one output per
	// (branch, needed column); other branches supply NULL in that slot.
	tagOut := expr.NewColumn("$tag", types.KindInt64)
	unionCols := []*expr.Column{tagOut}
	subst := make([]expr.Mapping, n) // branch-local column -> union output
	for i := range branches {
		subst[i] = expr.Mapping{}
		for _, c := range needed[i] {
			out := expr.NewColumn(c.Name, c.Type)
			unionCols = append(unionCols, out)
			subst[i].Add(c.ID, out)
		}
	}
	inputs := make([]logical.Operator, n)
	inputCols := make([][]*expr.Column, n)
	for i, b := range branches {
		proj := &logical.Project{Input: b.op}
		proj.Cols = append(proj.Cols, logical.Assign("$tag", expr.Lit(types.Int(int64(i+1)))))
		for k := range branches {
			for _, c := range needed[k] {
				if k == i {
					proj.Cols = append(proj.Cols, logical.Assign(c.Name, expr.Ref(c)))
				} else {
					proj.Cols = append(proj.Cols, logical.Assign(c.Name, expr.Lit(types.NullOf(c.Type))))
				}
			}
		}
		inputs[i] = proj
		inputCols[i] = proj.Schema()
	}
	union := &logical.UnionAll{Inputs: inputs, Cols: unionCols, InputCols: inputCols}

	// Re-apply the stripped joins innermost-first. Whenever every branch's
	// condition decomposes into equalities against the same fused
	// right-side columns, the per-branch left sides are dispatched through
	// a CASE on the tag — keeping the join an equi-join the executor can
	// hash (the paper's UM(C1) construction); anything else falls back to a
	// tag-guarded disjunction.
	var current logical.Operator = union
	for li := len(levels) - 1; li >= 0; li-- {
		lvl := levels[li]
		cond := buildLevelCond(lvl, subst, tagOut)
		kind := lvl.kind
		if kind == logical.CrossJoin && !expr.IsTrueLiteral(cond) {
			kind = logical.InnerJoin
		}
		if kind == logical.InnerJoin && expr.IsTrueLiteral(cond) {
			kind = logical.CrossJoin
		}
		j := &logical.Join{Kind: kind, Left: current, Right: lvl.fusedZ}
		if !expr.IsTrueLiteral(cond) {
			j.Cond = cond
		}
		current = j
	}

	// Restore the original union output columns.
	top := buildUnionTopProject(u, branches, subst, tagOut, current)
	return top
}

func buildUnionTopProject(u *logical.UnionAll, branches []*uajBranch, subst []expr.Mapping, tagOut *expr.Column, current logical.Operator) *logical.Project {
	n := len(branches)
	top := &logical.Project{Input: current}
	for jIdx, outCol := range u.Cols {
		exprs := make([]expr.Expr, n)
		allEqual := true
		for i, b := range branches {
			exprs[i] = subst[i].Apply(b.outs[jIdx])
			if i > 0 && !expr.Equal(exprs[i], exprs[0]) {
				allEqual = false
			}
		}
		var e expr.Expr
		if allEqual {
			e = exprs[0]
		} else {
			whens := make([]expr.When, 0, n-1)
			for i := 0; i < n-1; i++ {
				whens = append(whens, expr.When{
					Cond: expr.Eq(expr.Ref(tagOut), expr.Lit(types.Int(int64(i+1)))),
					Then: exprs[i],
				})
			}
			e = &expr.Case{Whens: whens, Else: exprs[n-1]}
		}
		top.Cols = append(top.Cols, logical.Assignment{Col: outCol, E: e})
	}
	return top
}

// buildLevelCond assembles one re-applied join level's condition.
func buildLevelCond(lvl strippedLevel, subst []expr.Mapping, tagOut *expr.Column) expr.Expr {
	n := len(lvl.conds)
	zSet := logical.OutputSet(lvl.fusedZ)

	// Pure cross join with exact fusion: no condition at all.
	allTrivial := true
	for i := 0; i < n; i++ {
		if lvl.conds[i] != nil || !trivial(lvl.comps[i]) {
			allTrivial = false
			break
		}
	}
	if allTrivial {
		return expr.TrueExpr()
	}

	// Try the CASE-dispatched equi-join form.
	type branchEqs struct {
		byZ  map[expr.ColumnID]expr.Expr
		rest []expr.Expr
	}
	all := make([]branchEqs, n)
	decomposable := true
	for i := 0; i < n && decomposable; i++ {
		all[i].byZ = map[expr.ColumnID]expr.Expr{}
		for _, c := range expr.Conjuncts(subst[i].Apply(lvl.conds[i])) {
			b, ok := c.(*expr.Binary)
			if ok && b.Op == expr.OpEq {
				lside, rside := b.L, b.R
				if refersOnlySet(lside, zSet) {
					lside, rside = rside, lside
				}
				if zr, isRef := rside.(*expr.ColumnRef); isRef && zSet[zr.Col.ID] && !refersAnySet(lside, zSet) {
					if _, dup := all[i].byZ[zr.Col.ID]; !dup {
						all[i].byZ[zr.Col.ID] = lside
						continue
					}
				}
			}
			all[i].rest = append(all[i].rest, c)
		}
		if i > 0 && len(all[i].byZ) != len(all[0].byZ) {
			decomposable = false
		}
	}
	if decomposable {
		for z := range all[0].byZ {
			for i := 1; i < n; i++ {
				if _, ok := all[i].byZ[z]; !ok {
					decomposable = false
				}
			}
		}
	}

	if decomposable && len(all[0].byZ) > 0 {
		var parts []expr.Expr
		for z, first := range all[0].byZ {
			exprs := make([]expr.Expr, n)
			exprs[0] = first
			same := true
			for i := 1; i < n; i++ {
				exprs[i] = all[i].byZ[z]
				if !expr.Equal(exprs[i], exprs[0]) {
					same = false
				}
			}
			var leftKey expr.Expr
			if same {
				leftKey = exprs[0]
			} else {
				whens := make([]expr.When, 0, n-1)
				for i := 0; i < n-1; i++ {
					whens = append(whens, expr.When{
						Cond: expr.Eq(expr.Ref(tagOut), expr.Lit(types.Int(int64(i+1)))),
						Then: exprs[i],
					})
				}
				leftKey = &expr.Case{Whens: whens, Else: exprs[n-1]}
			}
			zCol := logical.OutputColumn(lvl.fusedZ, z)
			parts = append(parts, expr.Eq(leftKey, expr.Ref(zCol)))
		}
		// Residual conjuncts and compensations stay tag-guarded.
		var guards []expr.Expr
		needGuards := false
		for i := 0; i < n; i++ {
			g := expr.And(append([]expr.Expr{lvl.comps[i]}, all[i].rest...)...)
			if !expr.IsTrueLiteral(g) {
				needGuards = true
			}
			guards = append(guards, expr.And(
				expr.Eq(expr.Ref(tagOut), expr.Lit(types.Int(int64(i+1)))), g))
		}
		if needGuards {
			parts = append(parts, expr.Or(guards...))
		}
		return expr.Simplify(expr.And(parts...))
	}

	// Fallback: full tag-guarded disjunction.
	var branchConds []expr.Expr
	for i := 0; i < n; i++ {
		tagEq := expr.Eq(expr.Ref(tagOut), expr.Lit(types.Int(int64(i+1))))
		branchConds = append(branchConds,
			expr.And(tagEq, subst[i].Apply(lvl.conds[i]), lvl.comps[i]))
	}
	return expr.Simplify(expr.Or(branchConds...))
}

func refersOnlySet(e expr.Expr, set map[expr.ColumnID]bool) bool {
	return expr.RefersOnly(e, set)
}

func refersAnySet(e expr.Expr, set map[expr.ColumnID]bool) bool {
	any := false
	expr.Walk(e, func(x expr.Expr) bool {
		if ref, ok := x.(*expr.ColumnRef); ok && set[ref.Col.ID] {
			any = true
			return false
		}
		return true
	})
	return any
}
