package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// NaryResult is the result of fusing n plans into one (§IV.E's native n-ary
// extension of Fuse, used by the UnionAll rule): Plan covers every input,
// Ms[i] maps input i's output columns into Plan's output, and Comps[i] is
// the compensating filter restoring input i.
type NaryResult struct {
	Plan  logical.Operator
	Ms    []expr.Mapping
	Comps []expr.Expr
}

// FuseAll incrementally fuses a list of plans. Fusing the accumulated plan
// with the next input preserves all previously fused columns (the fused
// schema always includes every P1 output), so earlier mappings stay valid;
// earlier compensations are tightened with the new step's L.
func FuseAll(plans []logical.Operator) (*NaryResult, bool) {
	if len(plans) == 0 {
		return nil, false
	}
	res := &NaryResult{
		Plan:  plans[0],
		Ms:    []expr.Mapping{expr.Identity()},
		Comps: []expr.Expr{expr.TrueExpr()},
	}
	for _, next := range plans[1:] {
		step, ok := Fuse(res.Plan, next)
		if !ok {
			return nil, false
		}
		res.Plan = step.Plan
		for i := range res.Comps {
			res.Comps[i] = expr.Simplify(expr.And(res.Comps[i], step.L))
		}
		res.Ms = append(res.Ms, step.M)
		res.Comps = append(res.Comps, expr.Simplify(step.R))
	}
	return res, true
}

// JoinGraph is a flattened view of a tree of inner joins, cross joins and
// interleaved filters: a list of join inputs plus the conjuncts connecting
// them. The fusion rules operate on this view (the paper runs its
// join-based rules before join reordering, conceptually obtaining an n-ary
// join and attempting pairwise applications, §IV.E).
type JoinGraph struct {
	Inputs    []logical.Operator
	Conjuncts []expr.Expr
}

// FlattenJoin builds the join graph rooted at op. Only inner and cross
// joins (and filters directly above them) are flattened; anything else
// becomes a leaf input.
func FlattenJoin(op logical.Operator) *JoinGraph {
	g := &JoinGraph{}
	g.flatten(op)
	return g
}

func (g *JoinGraph) flatten(op logical.Operator) {
	switch o := op.(type) {
	case *logical.Join:
		if o.Kind == logical.InnerJoin || o.Kind == logical.CrossJoin {
			g.flatten(o.Left)
			g.flatten(o.Right)
			g.Conjuncts = append(g.Conjuncts, expr.Conjuncts(o.Cond)...)
			return
		}
	case *logical.Filter:
		g.flatten(o.Input)
		g.Conjuncts = append(g.Conjuncts, expr.Conjuncts(o.Cond)...)
		return
	}
	g.Inputs = append(g.Inputs, op)
}

// IsNontrivial reports whether the graph flattened more than a single leaf.
func (g *JoinGraph) IsNontrivial() bool { return len(g.Inputs) > 1 }

// Build reassembles the graph into a left-deep join tree. Each conjunct is
// attached at the lowest join at which all its columns are available;
// conjuncts referencing a single input are placed as filters on that input,
// and any leftovers (none, for well-formed graphs) become a top filter.
func (g *JoinGraph) Build() logical.Operator {
	if len(g.Inputs) == 0 {
		panic("core: empty join graph")
	}
	remaining := append([]expr.Expr{}, g.Conjuncts...)
	avail := logical.OutputSet(g.Inputs[0])
	take := func() []expr.Expr {
		var taken []expr.Expr
		var rest []expr.Expr
		for _, c := range remaining {
			if expr.RefersOnly(c, avail) {
				taken = append(taken, c)
			} else {
				rest = append(rest, c)
			}
		}
		remaining = rest
		return taken
	}

	cur := g.Inputs[0]
	if taken := take(); len(taken) > 0 {
		cur = logical.NewFilter(cur, expr.And(taken...))
	}
	for _, next := range g.Inputs[1:] {
		for _, c := range next.Schema() {
			avail[c.ID] = true
		}
		taken := take()
		if len(taken) > 0 {
			cur = &logical.Join{Kind: logical.InnerJoin, Left: cur, Right: next, Cond: expr.And(taken...)}
		} else {
			cur = &logical.Join{Kind: logical.CrossJoin, Left: cur, Right: next}
		}
	}
	if len(remaining) > 0 {
		cur = logical.NewFilter(cur, expr.And(remaining...))
	}
	return cur
}

// conjunctsBetween partitions the graph's conjuncts into: equality
// conjuncts linking exactly inputs i and j (returned as pairs), other
// conjuncts touching both i and j only, and the rest. Used by the join
// rules to test pairs of the n-ary join.
func (g *JoinGraph) conjunctsBetween(i, j int) (eqs []columnPair, residual []expr.Expr, rest []expr.Expr) {
	seti := logical.OutputSet(g.Inputs[i])
	setj := logical.OutputSet(g.Inputs[j])
	both := make(map[expr.ColumnID]bool, len(seti)+len(setj))
	for k := range seti {
		both[k] = true
	}
	for k := range setj {
		both[k] = true
	}
	for _, c := range g.Conjuncts {
		cols := expr.Columns(c)
		touchesI, touchesJ := false, false
		for id := range cols {
			if seti[id] {
				touchesI = true
			}
			if setj[id] {
				touchesJ = true
			}
		}
		if !(touchesI && touchesJ) || !expr.RefersOnly(c, both) {
			rest = append(rest, c)
			continue
		}
		if pair, ok := asEquality(c, seti, setj); ok {
			eqs = append(eqs, pair)
		} else {
			residual = append(residual, c)
		}
	}
	return eqs, residual, rest
}

// columnPair is an equality between a column of the "left" input and a
// column of the "right" input of a candidate pair.
type columnPair struct {
	left  *expr.Column
	right *expr.Column
}

// asEquality decomposes c into left-col = right-col relative to the two
// column sets.
func asEquality(c expr.Expr, left, right map[expr.ColumnID]bool) (columnPair, bool) {
	b, ok := c.(*expr.Binary)
	if !ok || b.Op != expr.OpEq {
		return columnPair{}, false
	}
	lr, ok1 := b.L.(*expr.ColumnRef)
	rr, ok2 := b.R.(*expr.ColumnRef)
	if !ok1 || !ok2 {
		return columnPair{}, false
	}
	if left[lr.Col.ID] && right[rr.Col.ID] {
		return columnPair{left: lr.Col, right: rr.Col}, true
	}
	if left[rr.Col.ID] && right[lr.Col.ID] {
		return columnPair{left: rr.Col, right: lr.Col}, true
	}
	return columnPair{}, false
}
