package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// salesAgg builds a fresh instance of the Q65-style common expression:
// GroupBy{store,item} revenue:=SUM(price) over Scan(store_sales).
// Returns the group-by and its scan for column access.
func salesAgg(t *testing.T) (*logical.GroupBy, *logical.Scan) {
	t.Helper()
	s := logical.NewScan(testSales())
	gb := &logical.GroupBy{
		Input: s,
		Keys:  []*expr.Column{s.Cols[1], s.Cols[0]}, // store, item
		Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("revenue", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.Cols[2])},
		}},
	}
	return gb, s
}

// TestGroupByJoinToWindow builds the motivating Q65 pattern:
//
//	sc ⨝_{store, revenue<=0.1*ave} GroupBy_{store}(AVG(revenue))(sa)
//
// where sc and sa are two instances of the same aggregation, and expects a
// single-scan window plan.
func TestGroupByJoinToWindow(t *testing.T) {
	sc, _ := salesAgg(t)
	sa, _ := salesAgg(t)
	scStore := sc.Keys[0]
	saStore := sa.Keys[0]
	sb := &logical.GroupBy{
		Input: sa,
		Keys:  []*expr.Column{saStore},
		Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("ave", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(sa.Aggs[0].Col)},
		}},
	}
	scRevenue := sc.Aggs[0].Col
	join := &logical.Join{
		Kind: logical.InnerJoin,
		Left: sc, Right: sb,
		Cond: expr.And(
			expr.Eq(expr.Ref(scStore), expr.Ref(saStore)),
			expr.NewBinary(expr.OpLe, expr.Ref(scRevenue),
				expr.NewBinary(expr.OpMul, expr.Lit(types.Float(0.1)), expr.Ref(sb.Aggs[0].Col))),
		),
	}
	if got := logical.CountScansOf(join, "store_sales"); got != 2 {
		t.Fatalf("precondition: %d scans, want 2", got)
	}

	out, changed := (GroupByJoinToWindow{}).Apply(join)
	if !changed {
		t.Fatalf("rule did not fire on:\n%s", logical.Format(join))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("rewritten plan invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "store_sales"); got != 1 {
		t.Errorf("rewritten plan scans store_sales %d times, want 1:\n%s", got, logical.Format(out))
	}
	hasWindow := false
	logical.Walk(out, func(o logical.Operator) bool {
		if _, ok := o.(*logical.Window); ok {
			hasWindow = true
		}
		return true
	})
	if !hasWindow {
		t.Errorf("rewritten plan has no Window operator:\n%s", logical.Format(out))
	}
	// The join output schema must be restorable: every original output
	// column (sc's and sb's) must appear in the rewritten schema.
	outSet := logical.OutputSet(out)
	for _, c := range join.Schema() {
		if !outSet[c.ID] {
			t.Errorf("rewritten plan lost output column %s", c)
		}
	}
	// A NOT NULL guard on the partition key must exist below the window.
	if !strings.Contains(logical.Format(out), "IS NOT NULL") {
		t.Error("rewritten plan lacks the NOT NULL partition guard")
	}
}

// The rule must not fire when the join keys do not cover the grouping keys.
func TestGroupByJoinToWindowKeyMismatch(t *testing.T) {
	sc, scScan := salesAgg(t)
	sa, _ := salesAgg(t)
	sb := &logical.GroupBy{
		Input: sa,
		Keys:  []*expr.Column{sa.Keys[0]},
		Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("ave", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(sa.Aggs[0].Col)},
		}},
	}
	_ = scScan
	// Join on item instead of store: does not match sb's grouping key.
	join := &logical.Join{
		Kind: logical.InnerJoin, Left: sc, Right: sb,
		Cond: expr.Eq(expr.Ref(sc.Keys[1]), expr.Ref(sb.Keys[0])),
	}
	if _, changed := (GroupByJoinToWindow{}).Apply(join); changed {
		t.Error("rule fired despite key mismatch")
	}
}

// TestGroupByJoinToWindowSeparatedInputs places the two fusable inputs at
// opposite ends of an n-ary join (the Q01 shape, where store and customer
// joins separate ctr1 from the decorrelated aggregate).
func TestGroupByJoinToWindowSeparatedInputs(t *testing.T) {
	ctr1, _ := salesAgg(t)
	ctr2, _ := salesAgg(t)
	avgGB := &logical.GroupBy{
		Input: ctr2,
		Keys:  []*expr.Column{ctr2.Keys[0]},
		Aggs: []logical.AggAssign{{
			Col: expr.NewColumn("avg_ret", types.KindFloat64),
			Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(ctr2.Aggs[0].Col)},
		}},
	}
	store := logical.NewScan(testItem()) // stands in for the store dimension
	inner := &logical.Join{Kind: logical.InnerJoin, Left: ctr1, Right: store,
		Cond: expr.Eq(expr.Ref(ctr1.Keys[0]), expr.Ref(store.Cols[0]))}
	outer := &logical.Join{Kind: logical.InnerJoin, Left: inner, Right: avgGB,
		Cond: expr.And(
			expr.Eq(expr.Ref(ctr1.Keys[0]), expr.Ref(avgGB.Keys[0])),
			expr.NewBinary(expr.OpGt, expr.Ref(ctr1.Aggs[0].Col), expr.Ref(avgGB.Aggs[0].Col)),
		)}

	out, changed := (GroupByJoinToWindow{}).Apply(outer)
	if !changed {
		t.Fatalf("rule did not fire across n-ary join:\n%s", logical.Format(outer))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "store_sales"); got != 1 {
		t.Errorf("store_sales scanned %d times, want 1:\n%s", got, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "item"); got != 1 {
		t.Errorf("dimension must survive, scanned %d times", got)
	}
}

// scalarAggBranch builds EnforceSingleRow(GroupBy_∅ agg(Filter(scan))) —
// the shape scalar subquery removal produces for Q09.
func scalarAggBranch(fn expr.AggFunc, lo, hi int64) (*logical.EnforceSingleRow, *logical.Scan) {
	s := logical.NewScan(testSales())
	cond := expr.And(
		expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(lo))),
		expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(hi))),
	)
	f := &logical.Filter{Input: s, Cond: cond}
	var agg expr.AggCall
	if fn == expr.AggCountStar {
		agg = expr.AggCall{Fn: fn}
	} else {
		agg = expr.AggCall{Fn: fn, Arg: expr.Ref(s.Cols[2])}
	}
	gb := &logical.GroupBy{Input: f, Aggs: []logical.AggAssign{{
		Col: expr.NewColumn("agg", agg.ResultType()), Agg: agg,
	}}}
	return &logical.EnforceSingleRow{Input: gb}, s
}

// TestJoinOnKeysScalar cross-joins several scalar aggregates over the same
// table with different range predicates — the Q09/Q28/Q88 pattern — and
// expects them all to collapse into one scan.
func TestJoinOnKeysScalar(t *testing.T) {
	e1, _ := scalarAggBranch(expr.AggCountStar, 1, 20)
	e2, _ := scalarAggBranch(expr.AggAvg, 1, 20)
	e3, _ := scalarAggBranch(expr.AggAvg, 21, 40)
	cross1 := &logical.Join{Kind: logical.CrossJoin, Left: e1, Right: e2}
	cross2 := &logical.Join{Kind: logical.CrossJoin, Left: cross1, Right: e3}
	if got := logical.CountScansOf(cross2, "store_sales"); got != 3 {
		t.Fatalf("precondition: %d scans", got)
	}

	out, changed := (JoinOnKeys{}).Apply(cross2)
	if !changed {
		t.Fatalf("rule did not fire:\n%s", logical.Format(cross2))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "store_sales"); got != 1 {
		t.Errorf("scans = %d, want 1:\n%s", got, logical.Format(out))
	}
	// All three aggregate outputs must survive.
	outSet := logical.OutputSet(out)
	for _, e := range []*logical.EnforceSingleRow{e1, e2, e3} {
		for _, c := range e.Schema() {
			if !outSet[c.ID] {
				t.Errorf("lost scalar aggregate column %s", c)
			}
		}
	}
	// The fused filter must be the disjunction of the ranges (pushed to one
	// filter below the group-by).
	txt := logical.Format(out)
	if !strings.Contains(txt, "OR") {
		t.Errorf("expected disjunctive fused filter:\n%s", txt)
	}
}

// TestJoinOnKeysKeyed joins two identical distinct-projections (GroupBy
// with no aggregates) on their full key — the Q95 R0/R2 situation.
func TestJoinOnKeysKeyed(t *testing.T) {
	mkDistinct := func() *logical.GroupBy {
		s := logical.NewScan(testSales())
		return &logical.GroupBy{Input: s, Keys: []*expr.Column{s.Cols[0]}}
	}
	r0, r2 := mkDistinct(), mkDistinct()
	probe := logical.NewScan(testSales())
	j1 := &logical.Join{Kind: logical.InnerJoin, Left: probe, Right: r0,
		Cond: expr.Eq(expr.Ref(probe.Cols[0]), expr.Ref(r0.Keys[0]))}
	j2 := &logical.Join{Kind: logical.InnerJoin, Left: j1, Right: r2,
		Cond: expr.Eq(expr.Ref(probe.Cols[0]), expr.Ref(r2.Keys[0]))}
	if got := logical.CountScansOf(j2, "store_sales"); got != 3 {
		t.Fatalf("precondition: %d scans", got)
	}

	out, changed := (JoinOnKeys{}).Apply(j2)
	if !changed {
		t.Fatalf("rule did not fire:\n%s", logical.Format(j2))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "store_sales"); got != 2 {
		t.Errorf("scans = %d, want 2 (probe + one distinct):\n%s", got, logical.Format(out))
	}
}

// The keyed rule must not fire when the join misses part of a key.
func TestJoinOnKeysPartialKey(t *testing.T) {
	mk := func() *logical.GroupBy {
		s := logical.NewScan(testSales())
		return &logical.GroupBy{Input: s, Keys: []*expr.Column{s.Cols[0], s.Cols[1]}}
	}
	g1, g2 := mk(), mk()
	join := &logical.Join{Kind: logical.InnerJoin, Left: g1, Right: g2,
		Cond: expr.Eq(expr.Ref(g1.Keys[0]), expr.Ref(g2.Keys[0]))} // only half the key
	if _, changed := (JoinOnKeys{}).Apply(join); changed {
		t.Error("rule fired on partial-key join")
	}
}

// expensiveCommon builds a fresh instance of a shared dimension subquery
// (distinct item keys with revenue above a threshold).
func expensiveCommon() *logical.GroupBy {
	s := logical.NewScan(testSales())
	f := &logical.Filter{Input: s, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Float(100)))}
	return &logical.GroupBy{Input: f, Keys: []*expr.Column{s.Cols[0]}}
}

// TestUnionAllOnJoin builds the Q23 shape: two branches over different fact
// tables, each semi-joined against an instance of the same expensive
// subquery, combined with UNION ALL. The rewrite must keep one instance.
func TestUnionAllOnJoin(t *testing.T) {
	cs := logical.NewScan(testItem())  // stands in for catalog_sales
	ws := logical.NewScan(testSales()) // stands in for web_sales
	z1, z2 := expensiveCommon(), expensiveCommon()
	b1 := &logical.Join{Kind: logical.SemiJoin, Left: cs, Right: z1,
		Cond: expr.Eq(expr.Ref(cs.Cols[0]), expr.Ref(z1.Keys[0]))}
	b2 := &logical.Join{Kind: logical.SemiJoin, Left: ws, Right: z2,
		Cond: expr.Eq(expr.Ref(ws.Cols[0]), expr.Ref(z2.Keys[0]))}
	u := logical.NewUnionAll(
		[]logical.Operator{b1, b2},
		[][]*expr.Column{{cs.Cols[1]}, {ws.Cols[1]}},
	)
	if got := logical.CountScansOf(u, "store_sales"); got != 3 {
		t.Fatalf("precondition: %d store_sales scans", got)
	}

	out, changed := (UnionAllOnJoin{}).Apply(u)
	if !changed {
		t.Fatalf("rule did not fire:\n%s", logical.Format(u))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	// One shared-z scan plus the genuine ws fact scan.
	if got := logical.CountScansOf(out, "store_sales"); got != 2 {
		t.Errorf("store_sales scans = %d, want 2:\n%s", got, logical.Format(out))
	}
	// Output schema preserved.
	outSet := logical.OutputSet(out)
	for _, c := range u.Cols {
		if !outSet[c.ID] {
			t.Errorf("lost union output %s", c)
		}
	}
	// The semi join must now sit above the union.
	if _, isProj := out.(*logical.Project); !isProj {
		t.Fatalf("expected top projection, got %T", out)
	}
	join, isJoin := out.(*logical.Project).Input.(*logical.Join)
	if !isJoin || join.Kind != logical.SemiJoin {
		t.Fatalf("expected semi join above union:\n%s", logical.Format(out))
	}
	if _, isUnion := join.Left.(*logical.UnionAll); !isUnion {
		t.Errorf("union must be pushed below the semi join:\n%s", logical.Format(out))
	}
}

// TestUnionAllOnJoinMultiLevel strips two shared semi-join levels in one
// application.
func TestUnionAllOnJoinMultiLevel(t *testing.T) {
	mkBranch := func(fact *logical.Scan) (logical.Operator, *logical.Scan) {
		za, zb := expensiveCommon(), expensiveCommon()
		_ = zb
		inner := &logical.Join{Kind: logical.SemiJoin, Left: fact, Right: za,
			Cond: expr.Eq(expr.Ref(fact.Cols[0]), expr.Ref(za.Keys[0]))}
		zc := expensiveCommon()
		outer := &logical.Join{Kind: logical.SemiJoin, Left: inner, Right: zc,
			Cond: expr.Eq(expr.Ref(fact.Cols[0]), expr.Ref(zc.Keys[0]))}
		return outer, fact
	}
	b1, cs := mkBranch(logical.NewScan(testItem()))
	b2, ws := mkBranch(logical.NewScan(testSales()))
	u := logical.NewUnionAll(
		[]logical.Operator{b1, b2},
		[][]*expr.Column{{cs.Cols[1]}, {ws.Cols[1]}},
	)
	before := logical.CountScansOf(u, "store_sales")
	out, changed := (UnionAllOnJoin{}).Apply(u)
	if !changed {
		t.Fatal("rule did not fire")
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	after := logical.CountScansOf(out, "store_sales")
	if after >= before {
		t.Errorf("scans did not decrease: before=%d after=%d", before, after)
	}
	// Two levels shared: 4 z-instances + ws fact = 5 before; 2 fused z + ws = 3 after.
	if after != 3 {
		t.Errorf("store_sales scans = %d, want 3:\n%s", after, logical.Format(out))
	}
}

// TestUnionAllFusion exercises the §I CTE example: two differently-filtered
// selections of the same subquery unioned together.
func TestUnionAllFusion(t *testing.T) {
	mk := func(category string) (logical.Operator, *expr.Column) {
		s := logical.NewScan(testItem())
		f := &logical.Filter{Input: s, Cond: expr.Eq(expr.Ref(s.Cols[2]), expr.Lit(types.String(category)))}
		return f, s.Cols[0]
	}
	b1, out1 := mk("Music")
	b2, out2 := mk("Books")
	u := logical.NewUnionAll([]logical.Operator{b1, b2}, [][]*expr.Column{{out1}, {out2}})

	out, changed := (UnionAllFusion{}).Apply(u)
	if !changed {
		t.Fatalf("rule did not fire:\n%s", logical.Format(u))
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "item"); got != 1 {
		t.Errorf("item scans = %d, want 1:\n%s", got, logical.Format(out))
	}
	// Disjoint single-column string equalities are contradictory, so the
	// simpler non-replicating form must be chosen (no Values table).
	hasValues := false
	logical.Walk(out, func(o logical.Operator) bool {
		if _, ok := o.(*logical.Values); ok {
			hasValues = true
		}
		return true
	})
	if hasValues {
		t.Errorf("contradictory branches should avoid tag replication:\n%s", logical.Format(out))
	}
}

// TestUnionAllFusionOverlapping uses overlapping predicates, which require
// the tag cross-join to preserve row multiplicity.
func TestUnionAllFusionOverlapping(t *testing.T) {
	mk := func(limit int64) (logical.Operator, *expr.Column) {
		s := logical.NewScan(testItem())
		f := &logical.Filter{Input: s, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[1]), expr.Lit(types.Int(limit)))}
		return f, s.Cols[0]
	}
	b1, out1 := mk(10)
	b2, out2 := mk(20) // overlaps: brand > 20 implies brand > 10
	u := logical.NewUnionAll([]logical.Operator{b1, b2}, [][]*expr.Column{{out1}, {out2}})

	out, changed := (UnionAllFusion{}).Apply(u)
	if !changed {
		t.Fatal("rule did not fire")
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	hasValues := false
	logical.Walk(out, func(o logical.Operator) bool {
		if _, ok := o.(*logical.Values); ok {
			hasValues = true
		}
		return true
	})
	if !hasValues {
		t.Errorf("overlapping branches need the tag table:\n%s", logical.Format(out))
	}
	if got := logical.CountScansOf(out, "item"); got != 1 {
		t.Errorf("item scans = %d, want 1", got)
	}
}

// TestUnionAllFusionNary fuses three branches at once.
func TestUnionAllFusionNary(t *testing.T) {
	mk := func(limit int64) (logical.Operator, *expr.Column) {
		s := logical.NewScan(testItem())
		f := &logical.Filter{Input: s, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[1]), expr.Lit(types.Int(limit)))}
		return f, s.Cols[0]
	}
	var ins []logical.Operator
	var cols [][]*expr.Column
	for _, lim := range []int64{10, 20, 30} {
		b, c := mk(lim)
		ins = append(ins, b)
		cols = append(cols, []*expr.Column{c})
	}
	u := logical.NewUnionAll(ins, cols)
	out, changed := (UnionAllFusion{}).Apply(u)
	if !changed {
		t.Fatal("rule did not fire on 3-ary union")
	}
	if err := logical.Validate(out); err != nil {
		t.Fatalf("invalid: %v\n%s", err, logical.Format(out))
	}
	if got := logical.CountScansOf(out, "item"); got != 1 {
		t.Errorf("item scans = %d, want 1", got)
	}
	// Tag table must have 3 rows.
	logical.Walk(out, func(o logical.Operator) bool {
		if v, ok := o.(*logical.Values); ok && len(v.Rows) != 3 {
			t.Errorf("tag table has %d rows, want 3", len(v.Rows))
		}
		return true
	})
}

// Rules must leave non-matching plans untouched.
func TestRulesNoFalsePositives(t *testing.T) {
	s1 := logical.NewScan(testSales())
	s2 := logical.NewScan(testItem())
	join := &logical.Join{Kind: logical.InnerJoin, Left: s1, Right: s2,
		Cond: expr.Eq(expr.Ref(s1.Cols[0]), expr.Ref(s2.Cols[0]))}
	for _, r := range []Rule{GroupByJoinToWindow{}, JoinOnKeys{}, UnionAllOnJoin{}, UnionAllFusion{}} {
		if _, changed := r.Apply(join); changed {
			t.Errorf("%s fired on a plain dimension join", r.Name())
		}
	}
	// Union over different tables must stay.
	u := logical.NewUnionAll(
		[]logical.Operator{s1, s2},
		[][]*expr.Column{{s1.Cols[0]}, {s2.Cols[0]}},
	)
	if _, changed := (UnionAllFusion{}).Apply(u); changed {
		t.Error("UnionAllFusion fired on branches over different tables")
	}
}
