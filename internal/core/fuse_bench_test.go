package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// Micro-benchmarks of the fusion machinery itself: optimization-time cost
// matters because the paper's rules attempt fusion a quadratic number of
// times over n-ary joins.

func benchAggPair() (logical.Operator, logical.Operator) {
	mk := func() logical.Operator {
		s := logical.NewScan(testSales())
		f := &logical.Filter{Input: s, Cond: expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(1))),
			expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(100))),
		)}
		return &logical.GroupBy{Input: f,
			Keys: []*expr.Column{s.Cols[1]},
			Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("rev", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.Cols[2])},
			}}}
	}
	return mk(), mk()
}

func BenchmarkFuseGroupByPair(b *testing.B) {
	p1, p2 := benchAggPair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := Fuse(p1, p2); !ok {
			b.Fatal("fusion failed")
		}
	}
}

func BenchmarkFuseAllEightBranches(b *testing.B) {
	var plans []logical.Operator
	for i := 0; i < 8; i++ {
		s := logical.NewScan(testSales())
		f := &logical.Filter{Input: s, Cond: expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(int64(i*10)))),
			expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(int64(i*10+9)))),
		)}
		plans = append(plans, &logical.GroupBy{Input: f,
			Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("c", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCountStar},
			}}})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := FuseAll(plans); !ok {
			b.Fatal("n-ary fusion failed")
		}
	}
}

func BenchmarkGroupByJoinToWindowRule(b *testing.B) {
	mkAgg := func() *logical.GroupBy {
		s := logical.NewScan(testSales())
		return &logical.GroupBy{Input: s,
			Keys: []*expr.Column{s.Cols[1], s.Cols[0]},
			Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("revenue", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.Cols[2])},
			}}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sc := mkAgg()
		sa := mkAgg()
		sb := &logical.GroupBy{Input: sa, Keys: []*expr.Column{sa.Keys[0]},
			Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("ave", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(sa.Aggs[0].Col)},
			}}}
		join := &logical.Join{Kind: logical.InnerJoin, Left: sc, Right: sb,
			Cond: expr.Eq(expr.Ref(sc.Keys[0]), expr.Ref(sb.Keys[0]))}
		b.StartTimer()
		if _, changed := (GroupByJoinToWindow{}).Apply(join); !changed {
			b.Fatal("rule did not fire")
		}
	}
}

func BenchmarkSimplifyLargeMask(b *testing.B) {
	s := logical.NewScan(testSales())
	var parts []expr.Expr
	for i := 0; i < 16; i++ {
		parts = append(parts, expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(int64(i)))),
			expr.NewBinary(expr.OpLe, expr.Ref(s.Cols[0]), expr.Lit(types.Int(int64(i+10)))),
		))
	}
	big := expr.And(parts[0], expr.Or(parts...))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		expr.Simplify(big)
	}
}
