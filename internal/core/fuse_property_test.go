package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// This file verifies the semantic contract of Fuse (§III) by execution:
// for random plan pairs (P1, P2) over shared data, whenever
// Fuse(P1, P2) = (P, M, L, R) succeeds it must hold that
//
//	rows(P1) = rows(Project_{outCols(P1)}(Filter_L(P)))
//	rows(P2) = rows(Project_{M(outCols(P2))}(Filter_R(P)))
//
// as bags. Plans are generated from randomized specs sharing a base shape
// (mirroring CTE instances that diverge through edits), which exercises
// scan/filter/project/group-by/mark-distinct fusion including compensating
// masks and COUNT(*) compensations.

// propTable is the shared test table.
func propTable() *catalog.Table {
	return &catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "item", Type: types.KindInt64},
			{Name: "store", Type: types.KindInt64},
			{Name: "qty", Type: types.KindInt64},
			{Name: "price", Type: types.KindFloat64},
		},
	}
}

func propStore(t *testing.T, rng *rand.Rand) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(propTable())
	st := storage.NewStore(cat)
	var rows [][]types.Value
	for i := 0; i < 200; i++ {
		qty := types.Int(rng.Int63n(50))
		if rng.Intn(20) == 0 {
			qty = types.NullOf(types.KindInt64) // NULLs exercise mask/group semantics
		}
		rows = append(rows, []types.Value{
			types.Int(rng.Int63n(8)),
			types.Int(rng.Int63n(4)),
			qty,
			types.Float(float64(rng.Int63n(1000)) / 10),
		})
	}
	if err := st.Load("sales", rows); err != nil {
		t.Fatal(err)
	}
	return st
}

// planSpec describes one randomly generated plan.
type planSpec struct {
	filterCol int   // -1 = no filter; else column index with range predicate
	filterLo  int64 // qty range bounds
	filterHi  int64
	project   bool
	groupKeys int // 0 = none, 1 = {store}, 2 = {store,item}; -1 = scalar agg
	aggFn     expr.AggFunc
	aggMaskLo int64 // -1 = no mask
	markCol   int   // -1 = no MarkDistinct; else column index
}

func randomSpec(rng *rand.Rand) planSpec {
	s := planSpec{filterCol: -1, groupKeys: 0, markCol: -1, aggMaskLo: -1}
	if rng.Intn(2) == 0 {
		s.filterCol = 2 // qty
		s.filterLo = rng.Int63n(40)
		s.filterHi = s.filterLo + rng.Int63n(20)
	}
	switch rng.Intn(4) {
	case 0:
		s.groupKeys = 1
	case 1:
		s.groupKeys = 2
	case 2:
		s.groupKeys = -1 // scalar
	}
	if s.groupKeys != 0 {
		s.aggFn = []expr.AggFunc{expr.AggCountStar, expr.AggSum, expr.AggAvg, expr.AggMin, expr.AggMax}[rng.Intn(5)]
		if rng.Intn(2) == 0 {
			s.aggMaskLo = rng.Int63n(40)
		}
	} else {
		if rng.Intn(3) == 0 {
			s.markCol = rng.Intn(2) // item or store
		}
		s.project = rng.Intn(2) == 0
	}
	return s
}

// mutate derives a second spec that often keeps the same shape (so fusion
// succeeds) but changes predicates, masks or functions.
func mutate(rng *rand.Rand, s planSpec) planSpec {
	out := s
	if s.filterCol >= 0 && rng.Intn(2) == 0 {
		out.filterLo = rng.Int63n(40)
		out.filterHi = out.filterLo + rng.Int63n(20)
	}
	if s.groupKeys != 0 {
		if rng.Intn(2) == 0 {
			out.aggFn = []expr.AggFunc{expr.AggCountStar, expr.AggSum, expr.AggAvg, expr.AggMin, expr.AggMax}[rng.Intn(5)]
		}
		if rng.Intn(2) == 0 {
			out.aggMaskLo = rng.Int63n(40)
		}
	}
	if rng.Intn(5) == 0 {
		// Occasionally change shape entirely; fusion may then fail, which
		// must be handled gracefully.
		out = randomSpec(rng)
	}
	return out
}

// buildPlan materializes a spec over a fresh scan instance.
func buildPlan(tab *catalog.Table, s planSpec) logical.Operator {
	scan := logical.NewScan(tab)
	var plan logical.Operator = scan
	if s.filterCol >= 0 {
		col := scan.Cols[s.filterCol]
		plan = logical.NewFilter(plan, expr.And(
			expr.NewBinary(expr.OpGe, expr.Ref(col), expr.Lit(types.Int(s.filterLo))),
			expr.NewBinary(expr.OpLe, expr.Ref(col), expr.Lit(types.Int(s.filterHi))),
		))
	}
	if s.markCol >= 0 {
		plan = &logical.MarkDistinct{
			Input:   plan,
			MarkCol: expr.NewColumn("d", types.KindBool),
			On:      []*expr.Column{scan.Cols[s.markCol]},
		}
	}
	if s.groupKeys != 0 {
		var keys []*expr.Column
		switch s.groupKeys {
		case 1:
			keys = []*expr.Column{scan.Cols[1]}
		case 2:
			keys = []*expr.Column{scan.Cols[1], scan.Cols[0]}
		}
		agg := expr.AggCall{Fn: s.aggFn}
		if s.aggFn != expr.AggCountStar {
			agg.Arg = expr.Ref(scan.Cols[3])
		}
		if s.aggMaskLo >= 0 {
			agg.Mask = expr.NewBinary(expr.OpGe, expr.Ref(scan.Cols[2]), expr.Lit(types.Int(s.aggMaskLo)))
		}
		plan = &logical.GroupBy{Input: plan, Keys: keys,
			Aggs: []logical.AggAssign{{Col: expr.NewColumn("agg", agg.ResultType()), Agg: agg}}}
	} else if s.project {
		plan = &logical.Project{Input: plan, Cols: []logical.Assignment{
			logical.Assign("x", expr.NewBinary(expr.OpAdd, expr.Ref(scan.Cols[0]), expr.Lit(types.Int(1)))),
			logical.Assign("p2", expr.NewBinary(expr.OpMul, expr.Ref(scan.Cols[3]), expr.Lit(types.Float(2)))),
		}}
	}
	return plan
}

// bag canonicalizes a result to a sorted multiset of strings.
func bag(res *exec.Result) []string {
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			if v.Kind == types.KindFloat64 && !v.Null {
				parts[j] = fmt.Sprintf("%.6f", v.F)
			} else {
				parts[j] = v.String()
			}
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

func sameBags(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reconstruct builds Project_cols(Filter_comp(fused)).
func reconstruct(fused logical.Operator, comp expr.Expr, cols []*expr.Column, m expr.Mapping) logical.Operator {
	filtered := logical.NewFilter(fused, expr.Simplify(comp))
	proj := &logical.Project{Input: filtered}
	for _, c := range cols {
		proj.Cols = append(proj.Cols, logical.Assign(c.Name, expr.Ref(m.Resolve(c))))
	}
	return proj
}

func TestFuseContractRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(20260706))
	st := propStore(t, rng)
	tab, _ := st.Catalog().Table("sales")

	fused, failed := 0, 0
	for iter := 0; iter < 400; iter++ {
		specA := randomSpec(rng)
		specB := mutate(rng, specA)
		p1 := buildPlan(tab, specA)
		p2 := buildPlan(tab, specB)

		res, ok := Fuse(p1, p2)
		if !ok {
			failed++
			continue
		}
		fused++
		if err := logical.Validate(res.Plan); err != nil {
			t.Fatalf("iter %d: fused plan invalid: %v\nP1:\n%sP2:\n%sfused:\n%s",
				iter, err, logical.Format(p1), logical.Format(p2), logical.Format(res.Plan))
		}

		run := func(plan logical.Operator) *exec.Result {
			r, err := exec.Run(plan, st)
			if err != nil {
				t.Fatalf("iter %d: execution failed: %v\n%s", iter, err, logical.Format(plan))
			}
			return r
		}
		want1 := bag(run(p1))
		want2 := bag(run(p2))
		got1 := bag(run(reconstruct(res.Plan, res.L, p1.Schema(), expr.Identity())))
		got2 := bag(run(reconstruct(res.Plan, res.R, p2.Schema(), res.M)))

		if !sameBags(want1, got1) {
			t.Fatalf("iter %d: P1 reconstruction differs (%d vs %d rows)\nspecA=%+v specB=%+v\nP1:\n%sfused:\n%sL=%s",
				iter, len(want1), len(got1), specA, specB, logical.Format(p1), logical.Format(res.Plan), res.L)
		}
		if !sameBags(want2, got2) {
			t.Fatalf("iter %d: P2 reconstruction differs (%d vs %d rows)\nspecA=%+v specB=%+v\nP2:\n%sfused:\n%sR=%s M=%v",
				iter, len(want2), len(got2), specA, specB, logical.Format(p2), logical.Format(res.Plan), res.R, res.M)
		}
	}
	if fused < 100 {
		t.Fatalf("only %d/%d pairs fused; generator too adversarial (failed=%d)", fused, 400, failed)
	}
	t.Logf("verified Fuse contract on %d random pairs (%d unfusable)", fused, failed)
}

// TestFuseAllContractRandomized extends the contract check to n-ary fusion.
func TestFuseAllContractRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	st := propStore(t, rng)
	tab, _ := st.Catalog().Table("sales")

	checked := 0
	for iter := 0; iter < 100; iter++ {
		base := randomSpec(rng)
		n := 2 + rng.Intn(3)
		specs := make([]planSpec, n)
		plans := make([]logical.Operator, n)
		for i := range specs {
			specs[i] = mutate(rng, base)
			plans[i] = buildPlan(tab, specs[i])
		}
		res, ok := FuseAll(plans)
		if !ok {
			continue
		}
		checked++
		if err := logical.Validate(res.Plan); err != nil {
			t.Fatalf("iter %d: invalid n-ary fusion: %v", iter, err)
		}
		for i, p := range plans {
			want, err := exec.Run(p, st)
			if err != nil {
				t.Fatalf("iter %d: branch %d failed: %v", iter, i, err)
			}
			got, err := exec.Run(reconstruct(res.Plan, res.Comps[i], p.Schema(), res.Ms[i]), st)
			if err != nil {
				t.Fatalf("iter %d: reconstruction %d failed: %v\n%s", iter, i, err, logical.Format(res.Plan))
			}
			if !sameBags(bag(want), bag(got)) {
				t.Fatalf("iter %d: branch %d reconstruction differs\nspecs=%+v\nfused:\n%scomp=%s",
					iter, i, specs, logical.Format(res.Plan), res.Comps[i])
			}
		}
	}
	if checked < 20 {
		t.Fatalf("only %d n-ary fusions checked", checked)
	}
	t.Logf("verified n-ary contract on %d random groups", checked)
}
