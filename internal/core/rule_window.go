package core

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// A Rule rewrites a plan rooted at op. It returns the rewritten plan and
// whether anything changed; an unchanged result must return op itself.
type Rule interface {
	Name() string
	Apply(op logical.Operator) (logical.Operator, bool)
}

// GroupByJoinToWindow implements §IV.A: the pattern P1 ⨝ GroupBy_K,A(P2)
// with Fuse(P1, P2) succeeding exactly and the join keys matching the
// grouping columns modulo the fuse mapping is replaced with a windowed
// aggregation over the single fused input:
//
//	Filter_{M(C2)}
//	  Window_{A OVER (PARTITION BY cl1..cln)}
//	    Filter_{cl1 IS NOT NULL AND ...}
//	      P
//
// followed by a projection that restores both original schemas (grouping
// columns of the right side are re-exposed through the mapping). The rule
// runs over the flattened n-ary join (§IV.E) so the two fusable inputs need
// not be adjacent — exactly the Q01 situation, where store and customer
// joins separate them.
type GroupByJoinToWindow struct {
	// MinReuseRows gates the rewrite on the estimated size of the common
	// expression: duplicates below the threshold are not worth rewriting
	// (the paper's statistics-based applicability heuristic, §IV.E).
	// Zero applies the rule whenever it matches.
	MinReuseRows float64
}

// Name implements Rule.
func (GroupByJoinToWindow) Name() string { return "GroupByJoinToWindow" }

// Apply implements Rule.
func (r GroupByJoinToWindow) Apply(op logical.Operator) (logical.Operator, bool) {
	if !isJoinRegionRoot(op) {
		return op, false
	}
	g := FlattenJoin(op)
	if !g.IsNontrivial() {
		return op, false
	}
	changed := false
	for {
		if !applyWindowOnce(g, r.MinReuseRows) {
			break
		}
		changed = true
	}
	if !changed {
		return op, false
	}
	return g.Build(), true
}

// isJoinRegionRoot limits rule invocations to nodes that head a join
// region; inner nodes of the same region are covered by the root's
// invocation.
func isJoinRegionRoot(op logical.Operator) bool {
	switch o := op.(type) {
	case *logical.Join:
		return o.Kind == logical.InnerJoin || o.Kind == logical.CrossJoin
	case *logical.Filter:
		if j, ok := o.Input.(*logical.Join); ok {
			return j.Kind == logical.InnerJoin || j.Kind == logical.CrossJoin
		}
	}
	return false
}

// applyWindowOnce scans the n-ary join for one applicable (P1, GroupBy(P2))
// pair, mutating the graph in place on success.
func applyWindowOnce(g *JoinGraph, minReuseRows float64) bool {
	for j, inputJ := range g.Inputs {
		gb, having, projAssigns := peelGroupBy(inputJ)
		if gb == nil || gb.IsScalar() || len(gb.Aggs) == 0 {
			continue
		}
		// Heuristic gates (§IV.E): only rewrite when the duplicated common
		// expression does real work — it reads at least one table, and its
		// estimated size clears the configured threshold.
		if !containsAnyScan(gb.Input) {
			continue
		}
		if minReuseRows > 0 && logical.EstimateRows(gb.Input) < minReuseRows {
			continue
		}
		for i := range g.Inputs {
			if i == j {
				continue
			}
			if tryWindowPair(g, i, j, gb, having, projAssigns) {
				return true
			}
		}
	}
	return false
}

// peelGroupBy unwraps an optional Project and/or Filter above a GroupBy
// (the §IV.E extensions: predicates pushed between the join and the
// group-by, and projections carried across the transformation). It returns
// the GroupBy, the peeled filter condition (over GroupBy outputs), and the
// peeled projection assignments, all to be re-applied above the window.
func peelGroupBy(op logical.Operator) (*logical.GroupBy, expr.Expr, []logical.Assignment) {
	var projAssigns []logical.Assignment
	if p, ok := op.(*logical.Project); ok {
		projAssigns = p.Cols
		op = p.Input
	}
	switch o := op.(type) {
	case *logical.GroupBy:
		return o, nil, projAssigns
	case *logical.Filter:
		if gb, ok := o.Input.(*logical.GroupBy); ok {
			return gb, o.Cond, projAssigns
		}
	}
	return nil, nil, nil
}

func containsAnyScan(op logical.Operator) bool {
	found := false
	logical.Walk(op, func(o logical.Operator) bool {
		if _, ok := o.(*logical.Scan); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func tryWindowPair(g *JoinGraph, i, j int, gb *logical.GroupBy, having expr.Expr, projAssigns []logical.Assignment) bool {
	inputI := g.Inputs[i]
	res, ok := Fuse(inputI, gb.Input)
	if !ok || !res.LTrivial() || !res.RTrivial() {
		return false
	}
	// substProj folds the peeled projection's computed columns back into an
	// expression so it can be evaluated over the window's output.
	substProj := func(e expr.Expr) expr.Expr {
		if len(projAssigns) == 0 {
			return e
		}
		return expr.Transform(e, func(x expr.Expr) expr.Expr {
			if ref, isRef := x.(*expr.ColumnRef); isRef {
				for _, a := range projAssigns {
					if a.Col.ID == ref.Col.ID {
						return a.E
					}
				}
			}
			return x
		})
	}
	eqs, residual, rest := g.conjunctsBetween(i, j)
	if len(eqs) == 0 {
		return false
	}
	// The equality conjuncts must cover exactly the grouping columns on the
	// group-by side, and each left column must be the mapping image of its
	// right column (cli = M(cri)).
	keySet := make(map[expr.ColumnID]bool, len(gb.Keys))
	for _, k := range gb.Keys {
		keySet[k.ID] = true
	}
	covered := make(map[expr.ColumnID]bool, len(eqs))
	for _, pair := range eqs {
		// conjunctsBetween orients pairs as (input i, input j), so the right
		// column belongs to the group-by side.
		l, r := pair.left, pair.right
		if !keySet[r.ID] {
			return false // equality on an aggregate output column
		}
		if res.M.Resolve(r) != l {
			return false
		}
		covered[r.ID] = true
	}
	if len(covered) != len(gb.Keys) {
		return false
	}

	// Build the replacement.
	var notNulls []expr.Expr
	partition := make([]*expr.Column, 0, len(gb.Keys))
	for _, k := range gb.Keys {
		mapped := res.M.Resolve(k)
		notNulls = append(notNulls, expr.NotNull(expr.Ref(mapped)))
		partition = append(partition, mapped)
	}
	base := logical.NewFilter(res.Plan, expr.And(notNulls...))
	funcs := make([]logical.WindowAssign, len(gb.Aggs))
	for idx, a := range gb.Aggs {
		funcs[idx] = logical.WindowAssign{
			Col:         a.Col, // keep identity: residuals reference it
			Agg:         res.M.ApplyAgg(a.Agg),
			PartitionBy: partition,
		}
	}
	win := &logical.Window{Input: base, Funcs: funcs}

	// Residual join conditions and the peeled post-group-by filter apply
	// above the window, with group-by-side columns mapped.
	var post []expr.Expr
	for _, c := range residual {
		post = append(post, res.M.Apply(substProj(c)))
	}
	if having != nil {
		post = append(post, res.M.Apply(having))
	}
	filtered := logical.NewFilter(win, expr.Simplify(expr.And(post...)))

	// Restore the combined schema of inputs i and j: input i's columns pass
	// through the fused plan; the group-by side's outputs are re-exposed —
	// key columns via the mapping, aggregate columns by identity (the
	// window kept them), peeled projection columns by re-evaluating their
	// expressions over the window output.
	proj := &logical.Project{Input: filtered}
	for _, c := range inputI.Schema() {
		proj.Cols = append(proj.Cols, logical.Assignment{Col: c, E: expr.Ref(c)})
	}
	if len(projAssigns) > 0 {
		for _, a := range projAssigns {
			proj.Cols = append(proj.Cols, logical.Assignment{Col: a.Col, E: res.M.Apply(a.E)})
		}
	} else {
		for _, k := range gb.Keys {
			proj.Cols = append(proj.Cols, logical.Assignment{Col: k, E: expr.Ref(res.M.Resolve(k))})
		}
		for _, a := range gb.Aggs {
			proj.Cols = append(proj.Cols, logical.Assignment{Col: a.Col, E: expr.Ref(a.Col)})
		}
	}

	// Splice: replace inputs i and j with the rewrite; keep only the
	// untouched conjuncts.
	newInputs := make([]logical.Operator, 0, len(g.Inputs)-1)
	for idx, in := range g.Inputs {
		if idx == i {
			newInputs = append(newInputs, proj)
		} else if idx != j {
			newInputs = append(newInputs, in)
		}
	}
	g.Inputs = newInputs
	g.Conjuncts = rest
	return true
}
