package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// TestFuseWindows covers Window-Window fusion: identical windowed
// aggregates deduplicate through the mapping, distinct ones append.
func TestFuseWindows(t *testing.T) {
	tab := testSales()
	mk := func(fn expr.AggFunc) (*logical.Window, *logical.Scan) {
		s := logical.NewScan(tab)
		return &logical.Window{Input: s, Funcs: []logical.WindowAssign{{
			Col:         expr.NewColumn("w", types.KindFloat64),
			Agg:         expr.AggCall{Fn: fn, Arg: expr.Ref(s.Cols[2])},
			PartitionBy: []*expr.Column{s.Cols[1]},
		}}}, s
	}
	w1, _ := mk(expr.AggAvg)
	w2, _ := mk(expr.AggAvg)
	res, ok := Fuse(w1, w2)
	if !ok {
		t.Fatal("identical windows must fuse")
	}
	mustValidate(t, res.Plan)
	fused := res.Plan.(*logical.Window)
	if len(fused.Funcs) != 1 {
		t.Fatalf("identical window functions must dedupe, got %d", len(fused.Funcs))
	}
	if res.M.Resolve(w2.Funcs[0].Col) != w1.Funcs[0].Col {
		t.Error("w2's output must map to w1's")
	}

	// Different function: appended, not deduped.
	w3, _ := mk(expr.AggSum)
	res2, ok := Fuse(w1, w3)
	if !ok {
		t.Fatal("windows with different functions must still fuse")
	}
	if len(res2.Plan.(*logical.Window).Funcs) != 2 {
		t.Fatalf("distinct window functions must append, got %d", len(res2.Plan.(*logical.Window).Funcs))
	}
}

// Windows over differently-filtered inputs do not fuse (non-trivial
// compensations would change partition contents).
func TestFuseWindowsRequiresExactInputs(t *testing.T) {
	tab := testSales()
	mk := func(lo float64) *logical.Window {
		s := logical.NewScan(tab)
		f := &logical.Filter{Input: s, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s.Cols[2]), expr.Lit(types.Float(lo)))}
		return &logical.Window{Input: f, Funcs: []logical.WindowAssign{{
			Col:         expr.NewColumn("w", types.KindFloat64),
			Agg:         expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.Cols[2])},
			PartitionBy: []*expr.Column{s.Cols[1]},
		}}}
	}
	if _, ok := Fuse(mk(1), mk(2)); ok {
		t.Fatal("windows over differing inputs must not fuse")
	}
}

// Limit fusion requires equal limits and exact children.
func TestFuseLimits(t *testing.T) {
	tab := testSales()
	mk := func(n int64) *logical.Limit {
		return &logical.Limit{Input: logical.NewScan(tab), N: n}
	}
	if res, ok := Fuse(mk(5), mk(5)); !ok {
		t.Fatal("equal limits over same scan must fuse")
	} else {
		mustValidate(t, res.Plan)
		if _, isLimit := res.Plan.(*logical.Limit); !isLimit {
			t.Errorf("fused root should stay Limit, got %T", res.Plan)
		}
	}
	if _, ok := Fuse(mk(5), mk(6)); ok {
		t.Fatal("different limits must not fuse")
	}
}

// Mismatched-root fallback: Project on one side only.
func TestFuseMismatchedProject(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	p1 := &logical.Project{Input: s1, Cols: []logical.Assignment{
		logical.Assign("x", expr.NewBinary(expr.OpMul, expr.Ref(s1.Cols[2]), expr.Lit(types.Float(2)))),
	}}
	res, ok := Fuse(p1, s2)
	if !ok {
		t.Fatal("project-vs-scan must fuse via manufactured identity projection")
	}
	mustValidate(t, res.Plan)
	// All of s2's columns must be reachable through M or identity.
	outSet := logical.OutputSet(res.Plan)
	for _, c := range s2.Cols {
		if !outSet[res.M.Resolve(c).ID] {
			t.Errorf("s2 column %s unreachable in fused plan", c)
		}
	}
	if !outSet[p1.Cols[0].Col.ID] {
		t.Error("p1's computed column lost")
	}
}

// Mismatched-root fallback: Filter on one side only.
func TestFuseMismatchedFilter(t *testing.T) {
	tab := testSales()
	s1, s2 := logical.NewScan(tab), logical.NewScan(tab)
	f1 := &logical.Filter{Input: s1, Cond: expr.NewBinary(expr.OpGt, expr.Ref(s1.Cols[2]), expr.Lit(types.Float(1)))}
	res, ok := Fuse(f1, s2)
	if !ok {
		t.Fatal("filter-vs-scan must fuse via trivial TRUE filter")
	}
	mustValidate(t, res.Plan)
	if res.LTrivial() {
		t.Errorf("L must restore the filter, got %s", res.L)
	}
	if !res.RTrivial() {
		t.Errorf("R must be TRUE (scan side unfiltered), got %s", res.R)
	}
}
