package memctl

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// fakeSpillable frees a fixed amount per Spill call through its tracker.
type fakeSpillable struct {
	label   string
	tracker *Tracker
	bytes   int64 // atomic
	spills  int64 // atomic
}

func (f *fakeSpillable) SpillableBytes() int64 { return atomic.LoadInt64(&f.bytes) }

func (f *fakeSpillable) Spill() (int64, error) {
	freed := atomic.SwapInt64(&f.bytes, 0)
	if freed > 0 {
		atomic.AddInt64(&f.spills, 1)
		f.tracker.Release(f.label, freed)
		f.tracker.AddSpill(f.label, freed, 1)
	}
	return freed, nil
}

func (f *fakeSpillable) Label() string { return f.label }

func TestReserveReleasePeak(t *testing.T) {
	p := NewPool(0, "")
	tr := p.NewTracker("SELECT 1")
	if err := tr.Reserve("sort", 100); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve("groupby", 50); err != nil {
		t.Fatal(err)
	}
	tr.Release("sort", 100)
	if err := tr.Reserve("groupby", 30); err != nil {
		t.Fatal(err)
	}
	if got := tr.Peak(); got != 150 {
		t.Fatalf("peak = %d, want 150", got)
	}
	st := tr.Stats()
	if st.Operators["groupby"].PeakBytes != 80 {
		t.Fatalf("groupby peak = %d, want 80", st.Operators["groupby"].PeakBytes)
	}
	tr.Close()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used after close = %d, want 0", got)
	}
	tr.Close() // idempotent
}

func TestReserveExceededWithoutSpillables(t *testing.T) {
	p := NewPool(1000, "")
	tr := p.NewTracker("SELECT big FROM t")
	if err := tr.Reserve("join", 900); err != nil {
		t.Fatal(err)
	}
	err := tr.Reserve("join", 200)
	if !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
	var me *MemoryExceededError
	if !errors.As(err, &me) {
		t.Fatalf("err %T is not *MemoryExceededError", err)
	}
	if me.Query != "SELECT big FROM t" || me.Operator != "join" || me.Limit != 1000 {
		t.Fatalf("error fields wrong: %+v", me)
	}
	if !strings.Contains(err.Error(), "SELECT big FROM t") {
		t.Fatalf("error text should carry the query: %v", err)
	}
	if me.Peak != 900 {
		t.Fatalf("peak = %d, want 900", me.Peak)
	}
}

func TestSpillPolicyLargestFirst(t *testing.T) {
	p := NewPool(1000, "")
	tr := p.NewTracker("q")
	small := &fakeSpillable{label: "small", tracker: tr}
	big := &fakeSpillable{label: "big", tracker: tr}
	tr.Register(small)
	tr.Register(big)

	if err := tr.Reserve("small", 300); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(&small.bytes, 300)
	if err := tr.Reserve("big", 600); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(&big.bytes, 600)

	// 900 used; reserving 500 must spill the largest consumer first, and
	// spilling big (600) alone suffices.
	if err := tr.Reserve("sort", 500); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(&big.spills); got != 1 {
		t.Fatalf("big spilled %d times, want 1", got)
	}
	if got := atomic.LoadInt64(&small.spills); got != 0 {
		t.Fatalf("small spilled %d times, want 0", got)
	}
	st := tr.Stats()
	if st.SpilledBytes != 600 || st.SpillFiles != 1 {
		t.Fatalf("spilled = %d/%d files, want 600/1", st.SpilledBytes, st.SpillFiles)
	}
	if st.PeakBytes > 1000 {
		t.Fatalf("peak %d exceeds limit", st.PeakBytes)
	}
}

// TestSpillAcrossTrackers verifies the pool spills consumers of other
// queries sharing the engine budget.
func TestSpillAcrossTrackers(t *testing.T) {
	p := NewPool(1000, "")
	tr1 := p.NewTracker("q1")
	tr2 := p.NewTracker("q2")
	s1 := &fakeSpillable{label: "agg", tracker: tr1}
	tr1.Register(s1)
	if err := tr1.Reserve("agg", 800); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(&s1.bytes, 800)
	if err := tr2.Reserve("sort", 700); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&s1.spills) != 1 {
		t.Fatal("q2's reservation should have spilled q1's aggregation")
	}
}

// TestReserveExhaustsSpillablesThenFails: victims that free nothing are
// skipped, and the reservation fails once nothing can be freed.
func TestReserveExhaustsSpillablesThenFails(t *testing.T) {
	p := NewPool(100, "")
	tr := p.NewTracker("q")
	stuck := &stuckSpillable{} // claims bytes but frees nothing
	tr.Register(stuck)
	if err := tr.Reserve("op", 90); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve("op", 50); !errors.Is(err, ErrMemoryExceeded) {
		t.Fatalf("err = %v, want ErrMemoryExceeded", err)
	}
}

type stuckSpillable struct{}

func (s *stuckSpillable) SpillableBytes() int64 { return 10 }
func (s *stuckSpillable) Spill() (int64, error) { return 0, nil }
func (s *stuckSpillable) Label() string         { return "stuck" }

func TestUnlimitedPoolNeverSpills(t *testing.T) {
	p := NewPool(0, "")
	tr := p.NewTracker("q")
	s := &fakeSpillable{label: "agg", tracker: tr}
	tr.Register(s)
	atomic.StoreInt64(&s.bytes, 1<<40)
	if err := tr.Reserve("agg", 1<<40); err != nil {
		t.Fatal(err)
	}
	if err := tr.Reserve("agg", 1<<40); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt64(&s.spills) != 0 {
		t.Fatal("unlimited pool must never spill")
	}
	if tr.Peak() != 2<<40 {
		t.Fatalf("peak = %d", tr.Peak())
	}
}

// TestConcurrentReserveRelease exercises the pool under the race detector.
func TestConcurrentReserveRelease(t *testing.T) {
	p := NewPool(1<<20, "")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := p.NewTracker("q")
			defer tr.Close()
			s := &fakeSpillable{label: "agg", tracker: tr}
			tr.Register(s)
			for i := 0; i < 200; i++ {
				if err := tr.Reserve("agg", 4096); err != nil {
					return
				}
				atomic.AddInt64(&s.bytes, 4096)
			}
		}(g)
	}
	wg.Wait()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool used after all trackers closed = %d, want 0", got)
	}
}
