package memctl

import (
	"sync"
	"testing"
	"time"
)

func TestTenantUsedRollup(t *testing.T) {
	p := NewPool(0, "")
	a1 := p.NewTenantTracker("q1", "acme")
	a2 := p.NewTenantTracker("q2", "acme")
	b := p.NewTenantTracker("q3", "zeta")
	plain := p.NewTracker("q4")

	if err := a1.Reserve("sort", 100); err != nil {
		t.Fatal(err)
	}
	if err := a2.Reserve("groupby", 40); err != nil {
		t.Fatal(err)
	}
	if err := b.Reserve("sort", 7); err != nil {
		t.Fatal(err)
	}
	if err := plain.Reserve("sort", 1000); err != nil {
		t.Fatal(err)
	}
	if got := p.TenantUsed("acme"); got != 140 {
		t.Errorf("acme used = %d, want 140", got)
	}
	if got := p.TenantUsed("zeta"); got != 7 {
		t.Errorf("zeta used = %d, want 7", got)
	}
	if got := p.TenantUsed("unknown"); got != 0 {
		t.Errorf("unknown tenant used = %d, want 0", got)
	}

	a1.Release("sort", 60)
	if got := p.TenantUsed("acme"); got != 80 {
		t.Errorf("acme used after release = %d, want 80", got)
	}
	// Closing a tracker returns its remaining reservation to the tenant.
	a1.Close()
	a2.Close()
	if got := p.TenantUsed("acme"); got != 0 {
		t.Errorf("acme used after close = %d, want 0", got)
	}
	// The other tenant and the unattributed tracker are untouched.
	if got := p.TenantUsed("zeta"); got != 7 {
		t.Errorf("zeta used = %d, want 7", got)
	}
	if got := p.Used(); got != 1007 {
		t.Errorf("pool used = %d, want 1007", got)
	}
}

func TestReleaseWaitWakesOnRelease(t *testing.T) {
	p := NewPool(0, "")
	tr := p.NewTracker("q")
	if err := tr.Reserve("sort", 10); err != nil {
		t.Fatal(err)
	}
	ch := p.ReleaseWait()
	select {
	case <-ch:
		t.Fatal("channel closed before any release")
	default:
	}
	tr.Release("sort", 5)
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("release did not close the wait channel")
	}
	// A fresh channel covers the next release.
	ch2 := p.ReleaseWait()
	select {
	case <-ch2:
		t.Fatal("fresh channel already closed")
	default:
	}
	tr.Close()
	select {
	case <-ch2:
	case <-time.After(time.Second):
		t.Fatal("tracker close did not close the wait channel")
	}
}

// TestReleaseWaitNoMissedWakeup exercises the queue-on-exceed pattern: the
// channel is taken BEFORE the failing attempt, so a release that lands
// during the attempt satisfies the ensuing wait instead of being missed.
func TestReleaseWaitNoMissedWakeup(t *testing.T) {
	p := NewPool(100, "")
	hog := p.NewTracker("hog")
	if err := hog.Reserve("sort", 100); err != nil {
		t.Fatal(err)
	}

	ch := p.ReleaseWait() // taken before the attempt
	tr := p.NewTracker("q")
	if err := tr.Reserve("sort", 50); err == nil {
		t.Fatal("reserve unexpectedly fit")
	}
	hog.Close() // the release lands "during the attempt"

	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("pre-taken channel missed the release")
	}
	if err := tr.Reserve("sort", 50); err != nil {
		t.Fatalf("retry after release failed: %v", err)
	}
	tr.Close()
}

func TestReleaseWaitConcurrent(t *testing.T) {
	p := NewPool(0, "")
	tr := p.NewTracker("q")
	const waiters = 8
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		ch := p.ReleaseWait() // all taken before the release
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-ch
		}()
	}
	if err := tr.Reserve("sort", 1); err != nil {
		t.Fatal(err)
	}
	tr.Release("sort", 1)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("waiters not all woken by one release")
	}
	tr.Close()
}
