// Package memctl is the engine's memory governance subsystem: a
// hierarchical budget that makes blocking operators degrade gracefully
// under memory pressure instead of growing without bound.
//
// The hierarchy has two levels. A Pool carries one engine's total budget
// (engine.Config{MemoryLimitBytes, SpillDir}); every query run opens a
// Tracker against the pool and charges its blocking operators'
// reservations there. Operators that can shed state to disk (hash
// aggregation partitions, sort run buffers) register as Spillable; when a
// reservation would push the pool over its limit, the pool picks the
// registered consumer with the most spillable bytes — across every query
// sharing the engine — and asks it to spill, repeating until the
// reservation fits or nothing spillable remains, at which point the
// reservation fails with ErrMemoryExceeded carrying the query text and its
// peak. Because the pool only ever admits reservations that fit, peak
// tracked memory never exceeds the configured limit.
//
// Lock discipline: SpillableBytes is called with the pool lock held and
// must be non-blocking (read an atomic). Spill is called without the pool
// lock and may take the consumer's own lock and perform I/O. Reserve must
// be called with no operator lock held — the pool may route the resulting
// spill to any registered consumer, including the caller's.
package memctl

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrMemoryExceeded is the sentinel matched by errors.Is when a
// reservation fails after exhausting every spill option.
var ErrMemoryExceeded = errors.New("memctl: query memory limit exceeded")

// MemoryExceededError reports a failed reservation with enough context to
// act on: which query, which operator, how much it wanted, where the query
// peaked against the limit, and which operators hold the budget now.
type MemoryExceededError struct {
	Query     string
	Operator  string
	Requested int64
	Limit     int64
	Peak      int64
	// Held maps operator label to its resident bytes at failure time —
	// the budget that could not be shed.
	Held map[string]int64
	// Clients is the number of client queries served by the failing run: 1
	// for an ordinary query, > 1 when a cross-query fused plan (one shared
	// reservation scope) fails on behalf of its whole batch.
	Clients int
}

func (e *MemoryExceededError) Error() string {
	q := e.Query
	if q == "" {
		q = "<unknown query>"
	}
	if e.Clients > 1 {
		q = fmt.Sprintf("%s (shared by %d clients)", q, e.Clients)
	}
	var held string
	if len(e.Held) > 0 {
		names := make([]string, 0, len(e.Held))
		for name := range e.Held {
			names = append(names, name)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, name := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", name, e.Held[name]))
		}
		held = "; held: " + strings.Join(parts, " ")
	}
	return fmt.Sprintf("memctl: memory limit exceeded: operator %s requested %d bytes, limit %d, query peak %d%s; query: %s",
		e.Operator, e.Requested, e.Limit, e.Peak, held, q)
}

// Is makes errors.Is(err, ErrMemoryExceeded) true.
func (e *MemoryExceededError) Is(target error) bool { return target == ErrMemoryExceeded }

// Spillable is a consumer that can shed tracked memory to disk on demand.
type Spillable interface {
	// SpillableBytes reports how many tracked bytes a Spill call could
	// currently free. Called with the pool lock held: must be non-blocking
	// (an atomic load), and must not call back into the pool or tracker.
	SpillableBytes() int64
	// Spill sheds state to disk, releasing the freed bytes through the
	// owning tracker, and reports how much it freed. Called without the
	// pool lock; may block on the consumer's own lock and on I/O.
	Spill() (freed int64, err error)
	// Label names the consumer for attribution (e.g. "groupby").
	Label() string
}

// Pool is one engine's memory budget plus the registry of spillable
// consumers across its in-flight queries.
type Pool struct {
	limit    int64
	spillDir string

	mu         sync.Mutex
	used       int64
	spillables map[Spillable]*Tracker
	// tenants rolls up resident bytes per service-layer tenant (trackers
	// opened with NewTenantTracker); the admission layer reads it to keep
	// one tenant's concurrent queries under a per-tenant budget.
	tenants map[string]int64
	// relCh is the queue-on-exceed notification: it is closed (and
	// replaced) whenever reserved memory decreases, so a service that got
	// ErrMemoryExceeded can park the query and retry on the next release
	// instead of failing it. nil until someone waits.
	relCh chan struct{}
}

// NewPool creates a pool. limitBytes <= 0 means unlimited (reservations
// are tracked for accounting but never fail and never trigger spills).
// spillDir is where registered consumers place spill files; "" means the
// OS temp directory.
func NewPool(limitBytes int64, spillDir string) *Pool {
	if limitBytes < 0 {
		limitBytes = 0
	}
	if spillDir == "" {
		spillDir = os.TempDir()
	}
	return &Pool{
		limit: limitBytes, spillDir: spillDir,
		spillables: make(map[Spillable]*Tracker),
		tenants:    make(map[string]int64),
	}
}

// Limit returns the pool budget in bytes (0 = unlimited).
func (p *Pool) Limit() int64 { return p.limit }

// SpillDir returns the directory spill files are created in.
func (p *Pool) SpillDir() string { return p.spillDir }

// Used returns the currently reserved bytes across all trackers.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// NewTracker opens a per-query accounting scope. query is the SQL text,
// used for error attribution.
func (p *Pool) NewTracker(query string) *Tracker {
	return &Tracker{pool: p, query: query, clients: 1, ops: make(map[string]*opState)}
}

// NewTenantTracker opens a per-query accounting scope attributed to a
// service-layer tenant: the query's resident bytes additionally roll up
// into Pool.TenantUsed(tenant), which the admission layer uses to hold one
// tenant's concurrent queries under a per-tenant memory budget.
func (p *Pool) NewTenantTracker(query, tenant string) *Tracker {
	return &Tracker{pool: p, query: query, tenant: tenant, clients: 1, ops: make(map[string]*opState)}
}

// TenantUsed returns the resident bytes currently reserved by trackers
// attributed to tenant (0 for unknown tenants).
func (p *Pool) TenantUsed(tenant string) int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.tenants[tenant]
}

// ReleaseWait returns a channel closed the next time reserved memory
// decreases (an operator Release, a spill freeing state, or a query
// closing its tracker). The queue-on-exceed pattern: grab the channel
// BEFORE running the query; on ErrMemoryExceeded, wait on it (with the
// caller's deadline) and retry — any release during the failed run has
// already closed the channel, so no wakeup is missed.
func (p *Pool) ReleaseWait() <-chan struct{} {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.relCh == nil {
		p.relCh = make(chan struct{})
	}
	return p.relCh
}

// notifyReleaseLocked wakes queue-on-exceed waiters; caller holds p.mu and
// has just decreased p.used.
func (p *Pool) notifyReleaseLocked() {
	if p.relCh != nil {
		close(p.relCh)
		p.relCh = nil
	}
}

// NewSharedTracker opens the accounting scope of a cross-query fused plan
// executed once on behalf of clients concurrent queries. The fused run
// holds ONE budget — its operators reserve against the pool exactly once,
// not once per client — and a reservation failure is attributed to the
// whole batch (MemoryExceededError.Clients).
func (p *Pool) NewSharedTracker(query string, clients int) *Tracker {
	if clients < 1 {
		clients = 1
	}
	return &Tracker{pool: p, query: query, clients: clients, ops: make(map[string]*opState)}
}

// pickVictim returns the registered spillable with the most spillable
// bytes, excluding dead entries. Caller holds p.mu.
func (p *Pool) pickVictim(dead map[Spillable]bool) Spillable {
	var best Spillable
	var bestBytes int64
	for s := range p.spillables {
		if dead[s] {
			continue
		}
		if b := s.SpillableBytes(); b > bestBytes {
			best, bestBytes = s, b
		}
	}
	return best
}

// OpStats is one operator's attribution within a query.
type OpStats struct {
	// PeakBytes is the operator's peak tracked resident bytes.
	PeakBytes int64
	// SpilledBytes / SpillFiles count what the operator wrote to disk.
	SpilledBytes int64
	SpillFiles   int64
}

// Stats is a tracker snapshot, exposed on exec.Metrics.
type Stats struct {
	PeakBytes    int64
	SpilledBytes int64
	SpillFiles   int64
	Operators    map[string]OpStats
}

type opState struct {
	used, peak   int64
	spilledBytes int64
	spillFiles   int64
}

// Tracker is one query's accounting scope against a pool. A shared tracker
// (NewSharedTracker) is the same scope opened for a fused plan serving
// several clients at once.
type Tracker struct {
	pool    *Pool
	query   string
	tenant  string // "" = unattributed; set by NewTenantTracker, immutable
	clients int

	mu           sync.Mutex
	used, peak   int64
	spilledBytes int64
	spillFiles   int64
	ops          map[string]*opState
	owned        []Spillable
	closed       bool
}

// SpillDir returns the pool's spill directory.
func (t *Tracker) SpillDir() string { return t.pool.spillDir }

// Limit returns the pool budget (0 = unlimited).
func (t *Tracker) Limit() int64 { return t.pool.limit }

// Reserve charges n bytes to the operator op. If the pool would exceed its
// limit, registered spillable consumers are spilled largest-first until the
// reservation fits; if nothing spillable remains it fails with a
// *MemoryExceededError (errors.Is ErrMemoryExceeded). Must be called with
// no operator lock held.
func (t *Tracker) Reserve(op string, n int64) error {
	if n <= 0 {
		return nil
	}
	p := t.pool
	p.mu.Lock()
	if p.limit > 0 {
		var dead map[Spillable]bool
		for p.used+n > p.limit {
			victim := p.pickVictim(dead)
			if victim == nil {
				p.mu.Unlock()
				return &MemoryExceededError{
					Query: t.query, Operator: op, Requested: n,
					Limit: p.limit, Peak: t.Peak(), Held: t.heldByOp(),
					Clients: t.clients,
				}
			}
			p.mu.Unlock()
			freed, err := victim.Spill()
			if err != nil {
				return fmt.Errorf("memctl: spilling %s: %w", victim.Label(), err)
			}
			p.mu.Lock()
			if freed == 0 {
				if dead == nil {
					dead = make(map[Spillable]bool)
				}
				dead[victim] = true
			}
		}
	}
	p.used += n
	if t.tenant != "" {
		p.tenants[t.tenant] += n
	}
	p.mu.Unlock()

	t.mu.Lock()
	t.used += n
	if t.used > t.peak {
		t.peak = t.used
	}
	s := t.op(op)
	s.used += n
	if s.used > s.peak {
		s.peak = s.used
	}
	t.mu.Unlock()
	return nil
}

// Release returns n bytes reserved by op to the pool.
func (t *Tracker) Release(op string, n int64) {
	if n <= 0 {
		return
	}
	p := t.pool
	p.mu.Lock()
	p.used -= n
	if t.tenant != "" {
		p.tenants[t.tenant] -= n
	}
	p.notifyReleaseLocked()
	p.mu.Unlock()
	t.mu.Lock()
	t.used -= n
	t.op(op).used -= n
	t.mu.Unlock()
}

// AddSpill records bytes and files written to disk by op.
func (t *Tracker) AddSpill(op string, bytes, files int64) {
	t.mu.Lock()
	t.spilledBytes += bytes
	t.spillFiles += files
	s := t.op(op)
	s.spilledBytes += bytes
	s.spillFiles += files
	t.mu.Unlock()
}

func (t *Tracker) op(name string) *opState {
	s := t.ops[name]
	if s == nil {
		s = &opState{}
		t.ops[name] = s
	}
	return s
}

// Register adds a spillable consumer owned by this tracker to the pool's
// victim registry.
func (t *Tracker) Register(s Spillable) {
	p := t.pool
	p.mu.Lock()
	p.spillables[s] = t
	p.mu.Unlock()
	t.mu.Lock()
	t.owned = append(t.owned, s)
	t.mu.Unlock()
}

// Unregister removes a consumer from the victim registry (idempotent).
// Operators call it once their state must stay resident (e.g. when an
// aggregation starts merging for emission).
func (t *Tracker) Unregister(s Spillable) {
	p := t.pool
	p.mu.Lock()
	delete(p.spillables, s)
	p.mu.Unlock()
}

// heldByOp snapshots per-operator resident bytes for error reporting.
func (t *Tracker) heldByOp() map[string]int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	held := make(map[string]int64, len(t.ops))
	for name, s := range t.ops {
		if s.used > 0 {
			held[name] = s.used
		}
	}
	return held
}

// Peak returns the query's peak tracked bytes.
func (t *Tracker) Peak() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peak
}

// Stats snapshots the tracker for metrics reporting.
func (t *Tracker) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := Stats{
		PeakBytes:    t.peak,
		SpilledBytes: t.spilledBytes,
		SpillFiles:   t.spillFiles,
	}
	if len(t.ops) > 0 {
		out.Operators = make(map[string]OpStats, len(t.ops))
		names := make([]string, 0, len(t.ops))
		for name := range t.ops {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			s := t.ops[name]
			out.Operators[name] = OpStats{PeakBytes: s.peak, SpilledBytes: s.spilledBytes, SpillFiles: s.spillFiles}
		}
	}
	return out
}

// Close returns every outstanding reservation to the pool and drops the
// tracker's consumers from the victim registry. Idempotent.
func (t *Tracker) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	remaining := t.used
	t.used = 0
	owned := t.owned
	t.owned = nil
	t.mu.Unlock()

	p := t.pool
	p.mu.Lock()
	p.used -= remaining
	if t.tenant != "" {
		if p.tenants[t.tenant] -= remaining; p.tenants[t.tenant] <= 0 {
			delete(p.tenants, t.tenant)
		}
	}
	for _, s := range owned {
		delete(p.spillables, s)
	}
	// A closing tracker frees budget even when remaining == 0 (its future
	// reservations stop competing), so always wake queued waiters.
	p.notifyReleaseLocked()
	p.mu.Unlock()
}
