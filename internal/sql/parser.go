package sql

import (
	"fmt"
	"strconv"
)

// Parser is a recursive-descent SQL parser over the token stream.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a single SELECT statement (optionally ended with ';').
func Parse(src string) (*SelectStmt, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	stmt, err := p.parseSelectStmt()
	if err != nil {
		return nil, err
	}
	p.accept(TokSymbol, ";")
	if !p.at(TokEOF, "") {
		return nil, p.errf("unexpected trailing input %q", p.peek().Text)
	}
	return stmt, nil
}

func (p *Parser) peek() Token { return p.toks[p.pos] }

func (p *Parser) at(kind TokenKind, text string) bool {
	t := p.peek()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) atKeyword(kw string) bool { return p.at(TokKeyword, kw) }

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if t.Kind != TokEOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(kind TokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(kind TokenKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %q, found %q", text, p.peek().Text)
}

func (p *Parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: parse error at offset %d: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

// parseSelectStmt parses [WITH ...] body [ORDER BY ...] [LIMIT n].
func (p *Parser) parseSelectStmt() (*SelectStmt, error) {
	stmt := &SelectStmt{}
	if p.accept(TokKeyword, "WITH") {
		for {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "AS"); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			stmt.With = append(stmt.With, CTE{Name: name, Query: q})
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	body, err := p.parseSetExpr()
	if err != nil {
		return nil, err
	}
	stmt.Body = body

	if p.accept(TokKeyword, "ORDER") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{E: e}
			if p.accept(TokKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(TokKeyword, "ASC")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "LIMIT") {
		t, err := p.expect(TokNumber, "")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value %q", t.Text)
		}
		stmt.Limit = &n
	}
	return stmt, nil
}

// parseSetExpr parses core (UNION ALL core)*.
func (p *Parser) parseSetExpr() (SetExpr, error) {
	first, err := p.parseSetPrimary()
	if err != nil {
		return nil, err
	}
	inputs := []SetExpr{first}
	for p.atKeyword("UNION") {
		p.next()
		if _, err := p.expect(TokKeyword, "ALL"); err != nil {
			return nil, p.errf("only UNION ALL is supported")
		}
		next, err := p.parseSetPrimary()
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, next)
	}
	if len(inputs) == 1 {
		return first, nil
	}
	return &UnionAllExpr{Inputs: inputs}, nil
}

// parseSetPrimary parses a SELECT core or a parenthesized set expression.
func (p *Parser) parseSetPrimary() (SetExpr, error) {
	if p.accept(TokSymbol, "(") {
		inner, err := p.parseSetExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseSelectCore()
}

func (p *Parser) parseSelectCore() (*SelectCore, error) {
	if _, err := p.expect(TokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	core := &SelectCore{}
	core.Distinct = p.accept(TokKeyword, "DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		core.Items = append(core.Items, item)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	if p.accept(TokKeyword, "FROM") {
		for {
			ref, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			core.From = append(core.From, ref)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Where = e
	}
	if p.accept(TokKeyword, "GROUP") {
		if _, err := p.expect(TokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			core.GroupBy = append(core.GroupBy, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(TokKeyword, "HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		core.Having = e
	}
	return core, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.accept(TokSymbol, "*") {
		return SelectItem{Star: true}, nil
	}
	// t.* form.
	if p.peek().Kind == TokIdent && p.pos+2 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokSymbol && p.toks[p.pos+1].Text == "." &&
		p.toks[p.pos+2].Kind == TokSymbol && p.toks[p.pos+2].Text == "*" {
		t := p.next()
		p.next()
		p.next()
		return SelectItem{Star: true, StarTable: t.Text}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	return item, nil
}

// parseTableRef parses primary (JOIN primary ON expr)* chains.
func (p *Parser) parseTableRef() (TableRef, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		kind := ""
		switch {
		case p.atKeyword("JOIN"):
			kind = "INNER"
			p.next()
		case p.atKeyword("INNER"):
			p.next()
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "INNER"
		case p.atKeyword("LEFT"):
			p.next()
			p.accept(TokKeyword, "OUTER")
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "LEFT"
		case p.atKeyword("CROSS"):
			p.next()
			if _, err := p.expect(TokKeyword, "JOIN"); err != nil {
				return nil, err
			}
			kind = "CROSS"
		default:
			return left, nil
		}
		right, err := p.parseTablePrimary()
		if err != nil {
			return nil, err
		}
		var on Expr
		if kind != "CROSS" {
			if _, err := p.expect(TokKeyword, "ON"); err != nil {
				return nil, err
			}
			on, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		left = &JoinRef{Kind: kind, Left: left, Right: right, On: on}
	}
}

func (p *Parser) parseTablePrimary() (TableRef, error) {
	if p.accept(TokSymbol, "(") {
		if p.atKeyword("VALUES") {
			ref, err := p.parseValues()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			alias, colAliases, err := p.parseTableAlias()
			if err != nil {
				return nil, err
			}
			ref.Alias, ref.ColAliases = alias, colAliases
			return ref, nil
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		alias, colAliases, err := p.parseTableAlias()
		if err != nil {
			return nil, err
		}
		return &Derived{Query: q, Alias: alias, ColAliases: colAliases}, nil
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ref := &TableName{Name: name}
	if p.accept(TokKeyword, "AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ref.Alias = a
	} else if p.peek().Kind == TokIdent {
		ref.Alias = p.next().Text
	}
	return ref, nil
}

// parseTableAlias parses [AS] alias [(col, ...)] after a derived table.
func (p *Parser) parseTableAlias() (string, []string, error) {
	alias := ""
	p.accept(TokKeyword, "AS")
	if p.peek().Kind == TokIdent {
		alias = p.next().Text
	}
	var cols []string
	if alias != "" && p.accept(TokSymbol, "(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return "", nil, err
			}
			cols = append(cols, c)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return "", nil, err
		}
	}
	return alias, cols, nil
}

func (p *Parser) parseValues() (*ValuesRef, error) {
	if _, err := p.expect(TokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ref := &ValuesRef{}
	for {
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		ref.Rows = append(ref.Rows, row)
		if !p.accept(TokSymbol, ",") {
			break
		}
	}
	return ref, nil
}

func (p *Parser) expectIdent() (string, error) {
	if p.peek().Kind == TokIdent {
		return p.next().Text, nil
	}
	return "", p.errf("expected identifier, found %q", p.peek().Text)
}

// --- expressions, precedence climbing ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.next()
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at(TokSymbol, "=") || p.at(TokSymbol, "<>") || p.at(TokSymbol, "<") ||
			p.at(TokSymbol, "<=") || p.at(TokSymbol, ">") || p.at(TokSymbol, ">="):
			op := p.next().Text
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: op, L: l, R: r}
		case p.atKeyword("IS"):
			p.next()
			neg := p.accept(TokKeyword, "NOT")
			if _, err := p.expect(TokKeyword, "NULL"); err != nil {
				return nil, err
			}
			l = &IsNullExpr{E: l, Neg: neg}
		case p.atKeyword("BETWEEN"), p.atKeyword("IN"), p.atKeyword("LIKE"), p.atKeyword("NOT"):
			neg := false
			if p.atKeyword("NOT") {
				// NOT BETWEEN / NOT IN / NOT LIKE.
				save := p.pos
				p.next()
				if !(p.atKeyword("BETWEEN") || p.atKeyword("IN") || p.atKeyword("LIKE")) {
					p.pos = save
					return l, nil
				}
				neg = true
			}
			switch {
			case p.accept(TokKeyword, "BETWEEN"):
				lo, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokKeyword, "AND"); err != nil {
					return nil, err
				}
				hi, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				l = &BetweenExpr{E: l, Lo: lo, Hi: hi, Neg: neg}
			case p.accept(TokKeyword, "IN"):
				if _, err := p.expect(TokSymbol, "("); err != nil {
					return nil, err
				}
				if p.atKeyword("SELECT") || p.atKeyword("WITH") {
					q, err := p.parseSelectStmt()
					if err != nil {
						return nil, err
					}
					if _, err := p.expect(TokSymbol, ")"); err != nil {
						return nil, err
					}
					l = &InExpr{E: l, Query: q, Neg: neg}
				} else {
					var list []Expr
					for {
						e, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						list = append(list, e)
						if !p.accept(TokSymbol, ",") {
							break
						}
					}
					if _, err := p.expect(TokSymbol, ")"); err != nil {
						return nil, err
					}
					l = &InExpr{E: l, List: list, Neg: neg}
				}
			case p.accept(TokKeyword, "LIKE"):
				t, err := p.expect(TokString, "")
				if err != nil {
					return nil, p.errf("LIKE requires a string literal pattern")
				}
				l = &LikeExpr{E: l, Pattern: t.Text, Neg: neg}
			}
		default:
			return l, nil
		}
	}
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "+") || p.at(TokSymbol, "-") {
		op := p.next().Text
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.at(TokSymbol, "*") || p.at(TokSymbol, "/") {
		op := p.next().Text
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.accept(TokSymbol, "-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "-", L: &NumberLit{Text: "0"}, R: e}, nil
	}
	p.accept(TokSymbol, "+")
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.next()
		return &NumberLit{Text: t.Text}, nil
	case t.Kind == TokString:
		p.next()
		return &StringLit{V: t.Text}, nil
	case p.atKeyword("TRUE"):
		p.next()
		return &BoolLit{V: true}, nil
	case p.atKeyword("FALSE"):
		p.next()
		return &BoolLit{V: false}, nil
	case p.atKeyword("NULL"):
		p.next()
		return &NullLit{}, nil
	case p.atKeyword("DATE"):
		p.next()
		s, err := p.expect(TokString, "")
		if err != nil {
			return nil, p.errf("DATE requires a string literal")
		}
		return &DateLit{V: s.Text}, nil
	case p.atKeyword("CASE"):
		return p.parseCase()
	case p.atKeyword("EXISTS"):
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		q, err := p.parseSelectStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Query: q}, nil
	case p.atKeyword("COALESCE"):
		p.next()
		if _, err := p.expect(TokSymbol, "("); err != nil {
			return nil, err
		}
		var args []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, e)
			if !p.accept(TokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return &FuncCall{Name: "coalesce", Args: args}, nil
	case p.accept(TokSymbol, "("):
		// Scalar subquery or parenthesized expression.
		if p.atKeyword("SELECT") || p.atKeyword("WITH") {
			q, err := p.parseSelectStmt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			return &SubqueryExpr{Query: q}, nil
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		return p.parseNameOrCall()
	default:
		return nil, p.errf("unexpected token %q in expression", t.Text)
	}
}

func (p *Parser) parseCase() (Expr, error) {
	p.next() // CASE
	out := &CaseExpr{}
	if !p.atKeyword("WHEN") {
		op, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Operand = op
	}
	for p.accept(TokKeyword, "WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, WhenClause{Cond: cond, Then: then})
	}
	if len(out.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.accept(TokKeyword, "ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	if _, err := p.expect(TokKeyword, "END"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseNameOrCall parses identifiers, qualified names, and function calls
// with the optional aggregate suffixes (DISTINCT, FILTER, OVER).
func (p *Parser) parseNameOrCall() (Expr, error) {
	first := p.next().Text
	if p.accept(TokSymbol, "(") {
		call := &FuncCall{Name: first}
		if p.accept(TokSymbol, "*") {
			call.Star = true
		} else if !p.at(TokSymbol, ")") {
			call.Distinct = p.accept(TokKeyword, "DISTINCT")
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, e)
				if !p.accept(TokSymbol, ",") {
					break
				}
			}
		}
		if _, err := p.expect(TokSymbol, ")"); err != nil {
			return nil, err
		}
		if p.accept(TokKeyword, "FILTER") {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokKeyword, "WHERE"); err != nil {
				return nil, err
			}
			f, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			call.Filter = f
		}
		if p.accept(TokKeyword, "OVER") {
			if _, err := p.expect(TokSymbol, "("); err != nil {
				return nil, err
			}
			spec := &WindowSpec{}
			if p.accept(TokKeyword, "PARTITION") {
				if _, err := p.expect(TokKeyword, "BY"); err != nil {
					return nil, err
				}
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					spec.PartitionBy = append(spec.PartitionBy, e)
					if !p.accept(TokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(TokSymbol, ")"); err != nil {
				return nil, err
			}
			call.Over = spec
		}
		return call, nil
	}
	parts := []string{first}
	for p.accept(TokSymbol, ".") {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		parts = append(parts, n)
	}
	return &Name{Parts: parts}, nil
}
