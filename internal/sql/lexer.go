// Package sql implements the engine's SQL front end: a hand-written lexer
// and recursive-descent parser for the ANSI SQL subset exercised by the
// TPC-DS workload — WITH/CTEs, joins, IN/scalar subqueries, GROUP BY with
// FILTER masks, DISTINCT aggregates, window functions over PARTITION BY,
// UNION ALL, CASE, BETWEEN, LIKE, ORDER BY/LIMIT, and VALUES.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexer tokens.
type TokenKind uint8

const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokSymbol // punctuation and operators
)

// Token is one lexical unit; Pos is a byte offset for error messages.
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers lower-cased
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "AS": true, "ON": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "OUTER": true,
	"CROSS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "UNION": true, "ALL": true, "DISTINCT": true,
	"WITH": true, "VALUES": true, "OVER": true, "PARTITION": true,
	"FILTER": true, "ASC": true, "DESC": true, "DATE": true, "SEMI": true,
	"COALESCE": true, "CAST": true, "INTERVAL": true,
}

// Lexer tokenizes SQL text.
type Lexer struct {
	src string
	pos int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error on malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		word := l.src[start:l.pos]
		upper := strings.ToUpper(word)
		if keywords[upper] {
			return Token{Kind: TokKeyword, Text: upper, Pos: start}, nil
		}
		return Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start}, nil
	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
		seenDot := false
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' && !seenDot) {
			if l.src[l.pos] == '.' {
				seenDot = true
			}
			l.pos++
		}
		return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
	case c == '\'':
		l.pos++
		var b strings.Builder
		for {
			if l.pos >= len(l.src) {
				return Token{}, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			if l.src[l.pos] == '\'' {
				// '' is an escaped quote.
				if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
					b.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				break
			}
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
	default:
		// Multi-char operators first.
		for _, op := range []string{"<>", "<=", ">=", "!=", "||"} {
			if strings.HasPrefix(l.src[l.pos:], op) {
				l.pos += len(op)
				text := op
				if op == "!=" {
					text = "<>"
				}
				return Token{Kind: TokSymbol, Text: text, Pos: start}, nil
			}
		}
		if strings.ContainsRune("(),.*+-/<>=;", rune(c)) {
			l.pos++
			return Token{Kind: TokSymbol, Text: string(c), Pos: start}, nil
		}
		return Token{}, fmt.Errorf("sql: unexpected character %q at offset %d", c, l.pos)
	}
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case unicode.IsSpace(rune(c)):
			l.pos++
		case strings.HasPrefix(l.src[l.pos:], "--"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
func isDigit(c byte) bool     { return c >= '0' && c <= '9' }

// Tokenize lexes the whole input.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
