package sql

import (
	"testing"
)

func mustParse(t *testing.T, src string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q) failed: %v", src, err)
	}
	return stmt
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s' FROM t -- comment\nWHERE x >= 1.5 /* block */ AND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	if toks[0].Text != "SELECT" || toks[0].Kind != TokKeyword {
		t.Errorf("first token = %+v", toks[0])
	}
	if toks[3].Kind != TokString || toks[3].Text != "it's" {
		t.Errorf("string literal = %+v", toks[3])
	}
	found := false
	for _, tok := range toks {
		if tok.Kind == TokSymbol && tok.Text == ">=" {
			found = true
		}
	}
	if !found {
		t.Error(">= not lexed as one token")
	}
	_ = kinds
}

func TestLexerErrors(t *testing.T) {
	if _, err := Tokenize("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Tokenize("SELECT @"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 1 ORDER BY a DESC LIMIT 10")
	core := stmt.Body.(*SelectCore)
	if len(core.Items) != 2 || core.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", core.Items)
	}
	if len(core.From) != 1 {
		t.Errorf("from = %+v", core.From)
	}
	if stmt.Limit == nil || *stmt.Limit != 10 {
		t.Errorf("limit = %v", stmt.Limit)
	}
	if len(stmt.OrderBy) != 1 || !stmt.OrderBy[0].Desc {
		t.Errorf("orderby = %+v", stmt.OrderBy)
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.z, d")
	core := stmt.Body.(*SelectCore)
	if len(core.From) != 2 {
		t.Fatalf("from list = %d items", len(core.From))
	}
	j, ok := core.From[0].(*JoinRef)
	if !ok || j.Kind != "LEFT" {
		t.Fatalf("outer join ref = %+v", core.From[0])
	}
	inner, ok := j.Left.(*JoinRef)
	if !ok || inner.Kind != "INNER" {
		t.Fatalf("inner join ref = %+v", j.Left)
	}
}

func TestParseCTEsAndUnion(t *testing.T) {
	stmt := mustParse(t, `
		WITH cte AS (SELECT a FROM t), cte2 AS (SELECT b FROM u)
		SELECT a FROM cte WHERE a = 1
		UNION ALL
		SELECT b FROM cte2
		UNION ALL
		SELECT 3`)
	if len(stmt.With) != 2 {
		t.Fatalf("with = %d", len(stmt.With))
	}
	u, ok := stmt.Body.(*UnionAllExpr)
	if !ok || len(u.Inputs) != 3 {
		t.Fatalf("union = %+v", stmt.Body)
	}
}

func TestParseSubqueries(t *testing.T) {
	stmt := mustParse(t, `
		SELECT x FROM t
		WHERE a IN (SELECT k FROM s)
		  AND b > (SELECT AVG(v) FROM s2 WHERE s2.g = t.g)
		  AND c IN (1, 2, 3)`)
	core := stmt.Body.(*SelectCore)
	conj, ok := core.Where.(*BinaryExpr)
	if !ok || conj.Op != "AND" {
		t.Fatalf("where = %+v", core.Where)
	}
}

func TestParseAggregatesWithFilterAndOver(t *testing.T) {
	stmt := mustParse(t, `
		SELECT COUNT(*) FILTER (WHERE x > 1) AS c,
		       SUM(DISTINCT y) AS s,
		       AVG(z) OVER (PARTITION BY g, h) AS w
		FROM t`)
	core := stmt.Body.(*SelectCore)
	c := core.Items[0].Expr.(*FuncCall)
	if !c.Star || c.Filter == nil {
		t.Errorf("count call = %+v", c)
	}
	s := core.Items[1].Expr.(*FuncCall)
	if !s.Distinct {
		t.Errorf("sum call = %+v", s)
	}
	w := core.Items[2].Expr.(*FuncCall)
	if w.Over == nil || len(w.Over.PartitionBy) != 2 {
		t.Errorf("window call = %+v", w)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t`)
	core := stmt.Body.(*SelectCore)
	c := core.Items[0].Expr.(*CaseExpr)
	if len(c.Whens) != 2 || c.Else == nil || c.Operand != nil {
		t.Errorf("case = %+v", c)
	}
}

func TestParseBetweenLikeIsNull(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b NOT LIKE 'x%' AND c IS NOT NULL AND d NOT IN (5)`)
	core := stmt.Body.(*SelectCore)
	if core.Where == nil {
		t.Fatal("no where")
	}
}

func TestParseValuesTable(t *testing.T) {
	stmt := mustParse(t, `SELECT tag FROM (VALUES (1), (2)) T(tag)`)
	core := stmt.Body.(*SelectCore)
	v, ok := core.From[0].(*ValuesRef)
	if !ok || len(v.Rows) != 2 || v.Alias != "t" || len(v.ColAliases) != 1 {
		t.Fatalf("values ref = %+v", core.From[0])
	}
}

func TestParseDerivedTable(t *testing.T) {
	stmt := mustParse(t, `SELECT q.a FROM (SELECT a FROM t GROUP BY a) q`)
	core := stmt.Body.(*SelectCore)
	d, ok := core.From[0].(*Derived)
	if !ok || d.Alias != "q" {
		t.Fatalf("derived = %+v", core.From[0])
	}
}

func TestParseDateLiteralAndArithmetic(t *testing.T) {
	stmt := mustParse(t, `SELECT d + 1, -x * 2 FROM t WHERE d = DATE '2000-01-02'`)
	core := stmt.Body.(*SelectCore)
	if len(core.Items) != 2 {
		t.Fatalf("items = %d", len(core.Items))
	}
	where := core.Where.(*BinaryExpr)
	if _, ok := where.R.(*DateLit); !ok {
		t.Errorf("rhs = %+v", where.R)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT a FROM t UNION SELECT b FROM u", // UNION without ALL
		"SELECT a FROM t ORDER BY",
		"SELECT a FROM t LIMIT x",
		"SELECT CASE END FROM t",
		"SELECT a FROM t t2 t3 t4",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseQ65Shape(t *testing.T) {
	mustParse(t, `
SELECT s_store_name, i_item_desc, revenue
FROM store, item,
    (SELECT ss_store_sk, AVG(revenue) AS ave
     FROM (SELECT ss_store_sk, ss_item_sk,
               SUM(ss_sales_price) AS revenue
           FROM store_sales, date_dim
           WHERE ss_sold_date_sk = d_date_sk
         AND d_month_seq BETWEEN 1212 AND 1247
           GROUP BY ss_store_sk, ss_item_sk) sa
     GROUP BY ss_store_sk) sb,
    (SELECT ss_store_sk, ss_item_sk,
            SUM(ss_sales_price) AS revenue
     FROM store_sales, date_dim
     WHERE ss_sold_date_sk = d_date_sk
     AND d_month_seq BETWEEN 1212 AND 1247
     GROUP BY ss_store_sk, ss_item_sk) sc
WHERE sb.ss_store_sk = sc.ss_store_sk
  AND sc.revenue <= 0.1 * sb.ave
  AND s_store_sk = sc.ss_store_sk
  AND i_item_sk = sc.ss_item_sk
ORDER BY s_store_name, i_item_desc LIMIT 100`)
}

func TestParseQ09Shape(t *testing.T) {
	mustParse(t, `
SELECT CASE
  WHEN (SELECT COUNT(*) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20) > 48409437
  THEN (SELECT AVG(ss_ext_discount_amt) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20)
  ELSE (SELECT AVG(ss_net_profit) FROM store_sales WHERE ss_quantity BETWEEN 1 AND 20) END
  AS bucket1
FROM reason
WHERE r_reason_sk = 1`)
}
