package sql

// The AST mirrors the grammar closely; the binder (package binder) lowers
// it to logical plans.

// SelectStmt is a full statement: optional CTEs, a set expression body, and
// optional ORDER BY / LIMIT.
type SelectStmt struct {
	With    []CTE
	Body    SetExpr
	OrderBy []OrderItem
	Limit   *int64
}

// CTE is one WITH binding.
type CTE struct {
	Name  string
	Query *SelectStmt
}

// OrderItem is one ORDER BY term.
type OrderItem struct {
	E    Expr
	Desc bool
}

// SetExpr is a select core or a UNION ALL of set expressions.
type SetExpr interface{ isSetExpr() }

// UnionAllExpr combines the rows of its inputs.
type UnionAllExpr struct {
	Inputs []SetExpr
}

func (*UnionAllExpr) isSetExpr() {}

// SelectCore is a single SELECT ... FROM ... WHERE ... GROUP BY ... HAVING.
type SelectCore struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
}

func (*SelectCore) isSetExpr() {}

// SelectItem is one projection: an expression with an optional alias, or a
// star (optionally qualified: t.*).
type SelectItem struct {
	Expr      Expr
	Alias     string
	Star      bool
	StarTable string
}

// TableRef is a FROM-clause item.
type TableRef interface{ isTableRef() }

// TableName references a base table or CTE, with an optional alias.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) isTableRef() {}

// Derived is a parenthesized subquery with an alias (and optional column
// aliases: (VALUES ...) T(tag)).
type Derived struct {
	Query      *SelectStmt
	Alias      string
	ColAliases []string
}

func (*Derived) isTableRef() {}

// JoinRef is an explicit JOIN ... ON.
type JoinRef struct {
	Kind  string // "INNER", "LEFT", "CROSS"
	Left  TableRef
	Right TableRef
	On    Expr
}

func (*JoinRef) isTableRef() {}

// ValuesRef is a VALUES constant table in FROM position.
type ValuesRef struct {
	Rows       [][]Expr
	Alias      string
	ColAliases []string
}

func (*ValuesRef) isTableRef() {}

// Expr is a scalar expression AST node.
type Expr interface{ isExpr() }

// Name is a possibly-qualified identifier (col or table.col).
type Name struct {
	Parts []string
}

func (*Name) isExpr() {}

// NumberLit is an unparsed numeric literal.
type NumberLit struct{ Text string }

func (*NumberLit) isExpr() {}

// StringLit is a string literal.
type StringLit struct{ V string }

func (*StringLit) isExpr() {}

// BoolLit is TRUE/FALSE.
type BoolLit struct{ V bool }

func (*BoolLit) isExpr() {}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) isExpr() {}

// DateLit is DATE 'yyyy-mm-dd'.
type DateLit struct{ V string }

func (*DateLit) isExpr() {}

// BinaryExpr is any infix operation, including AND/OR.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=", "AND", "OR"
	L, R Expr
}

func (*BinaryExpr) isExpr() {}

// NotExpr is logical negation.
type NotExpr struct{ E Expr }

func (*NotExpr) isExpr() {}

// IsNullExpr is IS [NOT] NULL.
type IsNullExpr struct {
	E   Expr
	Neg bool
}

func (*IsNullExpr) isExpr() {}

// BetweenExpr is [NOT] BETWEEN.
type BetweenExpr struct {
	E, Lo, Hi Expr
	Neg       bool
}

func (*BetweenExpr) isExpr() {}

// InExpr is [NOT] IN over a list or a subquery.
type InExpr struct {
	E     Expr
	List  []Expr
	Query *SelectStmt
	Neg   bool
}

func (*InExpr) isExpr() {}

// LikeExpr is [NOT] LIKE with a literal pattern.
type LikeExpr struct {
	E       Expr
	Pattern string
	Neg     bool
}

func (*LikeExpr) isExpr() {}

// WhenClause is one CASE arm.
type WhenClause struct {
	Cond Expr
	Then Expr
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

func (*CaseExpr) isExpr() {}

// WindowSpec is OVER (PARTITION BY ...).
type WindowSpec struct {
	PartitionBy []Expr
}

// FuncCall covers aggregates (with optional DISTINCT, FILTER, OVER) and
// scalar functions (COALESCE).
type FuncCall struct {
	Name     string
	Args     []Expr
	Star     bool // COUNT(*)
	Distinct bool
	Filter   Expr        // FILTER (WHERE ...)
	Over     *WindowSpec // window function when non-nil
}

func (*FuncCall) isExpr() {}

// SubqueryExpr is a scalar subquery in expression position.
type SubqueryExpr struct {
	Query *SelectStmt
}

func (*SubqueryExpr) isExpr() {}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Query *SelectStmt
	Neg   bool
}

func (*ExistsExpr) isExpr() {}
