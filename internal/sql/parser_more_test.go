package sql

import "testing"

func TestParseExists(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)`)
	core := stmt.Body.(*SelectCore)
	if _, ok := core.Where.(*ExistsExpr); !ok {
		t.Fatalf("where = %#v", core.Where)
	}
}

func TestParseSimpleCaseWithOperand(t *testing.T) {
	stmt := mustParse(t, `SELECT CASE a WHEN 1 THEN 'x' ELSE 'y' END FROM t`)
	c := stmt.Body.(*SelectCore).Items[0].Expr.(*CaseExpr)
	if c.Operand == nil {
		t.Fatal("operand form not recognized")
	}
}

func TestParseCoalesce(t *testing.T) {
	stmt := mustParse(t, `SELECT COALESCE(a, b, 0) FROM t`)
	f := stmt.Body.(*SelectCore).Items[0].Expr.(*FuncCall)
	if f.Name != "coalesce" || len(f.Args) != 3 {
		t.Fatalf("coalesce = %+v", f)
	}
}

func TestParseUnaryOperators(t *testing.T) {
	stmt := mustParse(t, `SELECT -a, +b, -(a + b) FROM t`)
	if len(stmt.Body.(*SelectCore).Items) != 3 {
		t.Fatal("unary items wrong")
	}
}

func TestParseParenthesizedSetExpr(t *testing.T) {
	stmt := mustParse(t, `(SELECT a FROM t) UNION ALL (SELECT b FROM u)`)
	u, ok := stmt.Body.(*UnionAllExpr)
	if !ok || len(u.Inputs) != 2 {
		t.Fatalf("body = %#v", stmt.Body)
	}
}

func TestParseInSubqueryWithCTE(t *testing.T) {
	mustParse(t, `SELECT a FROM t WHERE a IN (WITH c AS (SELECT x FROM u) SELECT x FROM c)`)
}

func TestParseAliasForms(t *testing.T) {
	stmt := mustParse(t, `SELECT x.a AS aa, y.b bb FROM t AS x, u y`)
	core := stmt.Body.(*SelectCore)
	if core.Items[0].Alias != "aa" || core.Items[1].Alias != "bb" {
		t.Errorf("aliases = %+v", core.Items)
	}
	if core.From[0].(*TableName).Alias != "x" || core.From[1].(*TableName).Alias != "y" {
		t.Errorf("table aliases wrong")
	}
}

func TestParseSemicolonAndComments(t *testing.T) {
	mustParse(t, "SELECT a FROM t; -- trailing comment")
	mustParse(t, "/* leading */ SELECT a FROM t")
}

func TestParseIsNullForms(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t WHERE a IS NULL OR b IS NOT NULL`)
	if stmt.Body.(*SelectCore).Where == nil {
		t.Fatal("where missing")
	}
}

func TestParseNegativeNumberAndDecimal(t *testing.T) {
	stmt := mustParse(t, `SELECT 0.5, .25 + 1, -3 FROM t`)
	if len(stmt.Body.(*SelectCore).Items) != 3 {
		t.Fatal("items wrong")
	}
}

func TestParseMoreErrors(t *testing.T) {
	bad := []string{
		`SELECT a FROM t WHERE a LIKE b`,            // LIKE needs a string literal
		`SELECT a FROM (SELECT b FROM u`,            // unclosed paren
		`SELECT COUNT( FROM t`,                      // bad call
		`WITH c AS SELECT a FROM t SELECT a FROM c`, // missing parens
		`SELECT a FROM t JOIN u`,                    // missing ON
		`SELECT a FROM t GROUP BY`,                  // missing expr
		`SELECT a FROM (VALUES ()) x(a)`,            // empty row
		`SELECT DATE 42 FROM t`,                     // DATE needs string
		`SELECT a FILTER (a > 1) FROM t`,            // FILTER needs WHERE
		`SELECT SUM(a) OVER (PARTITION a) FROM t`,   // missing BY
		`SELECT CASE WHEN a THEN b FROM t`,          // missing END
		`SELECT a BETWEEN 1 FROM t`,                 // missing AND
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseNotPrecedence(t *testing.T) {
	// NOT binds tighter than AND.
	stmt := mustParse(t, `SELECT a FROM t WHERE NOT a = 1 AND b = 2`)
	w := stmt.Body.(*SelectCore).Where.(*BinaryExpr)
	if w.Op != "AND" {
		t.Fatalf("top op = %s", w.Op)
	}
	if _, ok := w.L.(*NotExpr); !ok {
		t.Fatalf("left = %#v", w.L)
	}
}

func TestParseQualifiedStar(t *testing.T) {
	stmt := mustParse(t, `SELECT t.*, u.a FROM t, u`)
	items := stmt.Body.(*SelectCore).Items
	if !items[0].Star || items[0].StarTable != "t" {
		t.Fatalf("qualified star = %+v", items[0])
	}
}

func TestParseNotInChain(t *testing.T) {
	// "NOT" followed by something other than BETWEEN/IN/LIKE backtracks.
	stmt := mustParse(t, `SELECT a FROM t WHERE a > 1 AND NOT (b = 2)`)
	if stmt.Body.(*SelectCore).Where == nil {
		t.Fatal("where missing")
	}
}
