// Package service turns one resident engine.Engine into a multi-tenant
// query service: a bounded admission queue in front of per-tenant FIFO
// queues, a weighted-round-robin dispatcher that releases queries into the
// engine in rounds (announced to the shared-execution admission window, so
// queries from different connections fuse deterministically), per-tenant
// concurrency and memory budgets that make contended queries wait instead
// of fail, and a graceful drain for shutdown.
//
// The service adds scheduling, never semantics: a query's rows and logical
// metrics are byte-identical to running it alone on the engine — admission
// control decides only when work starts and on whose budget it is charged.
package service

import (
	"context"
	"errors"
	"sort"
	"sync"
	"time"

	"repro/engine"
)

// Sentinel errors; test with errors.Is.
var (
	// ErrQueueFull rejects a submission when the global admission queue is
	// at Config.QueueDepth — the service's only load-shedding.
	ErrQueueFull = errors.New("service: admission queue full")
	// ErrQueueTimeout fails a query still undispatched after
	// Config.QueueTimeout.
	ErrQueueTimeout = errors.New("service: queue wait timed out")
	// ErrClosed rejects submissions after Shutdown began.
	ErrClosed = errors.New("service: closed")
)

// itemState tracks where a submission is in its lifecycle (guarded by
// Server.mu).
type itemState int

const (
	stateQueued itemState = iota
	stateDispatched
)

// item is one queued query.
type item struct {
	tenant string
	sql    string
	ctx    context.Context
	enq    time.Time
	state  itemState
	res    chan itemResult // buffered(1); the run goroutine always delivers
}

type itemResult struct {
	res *engine.Result
	err error
}

// Server is the multi-tenant admission layer over one resident engine.
type Server struct {
	eng *engine.Engine
	cfg Config

	mu      sync.Mutex
	queues  map[string][]*item // per-tenant FIFO
	tenants []string           // sorted tenant names with history (stable WRR order)
	rr      int                // rotating WRR start position
	queued  int                // total items across queues
	running map[string]int     // per-tenant in-flight query count
	nrun    int                // total in-flight
	closed  bool

	kick    chan struct{} // wakes the dispatcher (capacity 1)
	drained chan struct{} // closed when shutdown has fully drained
	wg      sync.WaitGroup
	// retryMu serializes memory-exceeded retries: one retrying query runs
	// at a time, so two queries that each fit alone but not together cannot
	// fail each other's retry forever (see runWithMemoryWait).
	retryMu sync.Mutex

	stats serverStats
}

// serverStats accumulates scheduling observability (guarded by Server.mu).
type serverStats struct {
	submitted  int64
	rejected   int64
	dispatched int64
	completed  int64
	waits      map[string][]time.Duration // per-tenant queue waits, dispatch order
	order      []string                   // tenant of each dispatch, global order
}

// Stats is a point-in-time copy of the server's scheduling counters.
type Stats struct {
	// Submitted counts accepted submissions; Rejected counts ErrQueueFull.
	Submitted, Rejected int64
	// Dispatched counts queries released into the engine; Completed counts
	// queries whose result (or error) was produced.
	Dispatched, Completed int64
	// QueueWaits holds each tenant's queue-wait durations in dispatch
	// order.
	QueueWaits map[string][]time.Duration
	// DispatchOrder is the tenant of every dispatch, in global dispatch
	// order — what fairness assertions and the bench report read.
	DispatchOrder []string
}

// New creates a server over eng. The engine stays caller-owned: Shutdown
// drains the service but does not Close the engine.
func New(eng *engine.Engine, cfg Config) *Server {
	s := newStopped(eng, cfg)
	s.start()
	return s
}

// newStopped builds the server without its dispatcher goroutine; tests use
// it to enqueue a deterministic backlog before scheduling begins.
func newStopped(eng *engine.Engine, cfg Config) *Server {
	s := &Server{
		eng:     eng,
		cfg:     cfg.normalize(),
		queues:  make(map[string][]*item),
		running: make(map[string]int),
		kick:    make(chan struct{}, 1),
		drained: make(chan struct{}),
	}
	s.stats.waits = make(map[string][]time.Duration)
	return s
}

// start launches the dispatcher (exactly once).
func (s *Server) start() {
	s.wg.Add(1)
	go s.dispatcher()
	s.kickDispatcher()
}

// Config reports the server's normalized configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats snapshots the scheduling counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := Stats{
		Submitted:  s.stats.submitted,
		Rejected:   s.stats.rejected,
		Dispatched: s.stats.dispatched,
		Completed:  s.stats.completed,
		QueueWaits: make(map[string][]time.Duration, len(s.stats.waits)),
	}
	for t, ws := range s.stats.waits {
		out.QueueWaits[t] = append([]time.Duration(nil), ws...)
	}
	out.DispatchOrder = append([]string(nil), s.stats.order...)
	return out
}

// Submit runs sql on behalf of tenant, waiting in the admission queue until
// the dispatcher releases it. It returns ErrQueueFull when the global queue
// is at depth, ErrQueueTimeout when the query is still queued after
// Config.QueueTimeout, ctx's error if the caller gives up first, and
// otherwise exactly what the engine returns. An empty tenant maps to
// Config.DefaultTenant.
func (s *Server) Submit(ctx context.Context, tenant, sql string) (*engine.Result, error) {
	if tenant == "" {
		tenant = s.cfg.DefaultTenant
	}
	it := &item{tenant: tenant, sql: sql, ctx: ctx, enq: time.Now(), res: make(chan itemResult, 1)}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.queued >= s.cfg.QueueDepth {
		s.stats.rejected++
		s.mu.Unlock()
		return nil, ErrQueueFull
	}
	s.stats.submitted++
	if _, seen := s.queues[it.tenant]; !seen {
		if _, known := s.running[it.tenant]; !known {
			s.tenants = append(s.tenants, it.tenant)
			sort.Strings(s.tenants)
		}
	}
	s.queues[it.tenant] = append(s.queues[it.tenant], it)
	s.queued++
	s.mu.Unlock()
	s.kickDispatcher()

	timer := time.NewTimer(s.cfg.QueueTimeout)
	defer timer.Stop()
	for {
		select {
		case r := <-it.res:
			return r.res, r.err
		case <-timer.C:
			if s.tryRemove(it) {
				return nil, ErrQueueTimeout
			}
			// Already dispatched: the timeout no longer applies; keep
			// waiting for the engine (bounded by ctx).
			timer.Stop()
			select {
			case r := <-it.res:
				return r.res, r.err
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		case <-ctx.Done():
			if s.tryRemove(it) {
				return nil, ctx.Err()
			}
			// Dispatched with a dead ctx: the run sees the same ctx; return
			// promptly, the run goroutine delivers into the buffered channel.
			return nil, ctx.Err()
		}
	}
}

// Ingest appends rows to table through the resident engine. Appends bypass
// the admission queue — they are not queries, hold no tenant budget, and
// the storage layer already serializes concurrent appends — but they
// respect shutdown: once Shutdown begins, ingest fails with ErrClosed so a
// draining server's data stops moving under its in-flight queries' feet no
// later than its queue stops accepting work.
func (s *Server) Ingest(table string, rows [][]engine.Value) error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrClosed
	}
	return s.eng.Append(table, rows)
}

// tryRemove pulls a still-queued item out of its tenant queue, reporting
// whether it was removed (false means the dispatcher already took it).
func (s *Server) tryRemove(it *item) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if it.state != stateQueued {
		return false
	}
	q := s.queues[it.tenant]
	for i, qi := range q {
		if qi == it {
			s.queues[it.tenant] = append(q[:i], q[i+1:]...)
			s.queued--
			it.state = stateDispatched // terminal; never dispatched
			return true
		}
	}
	return false
}

func (s *Server) kickDispatcher() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// Shutdown stops accepting submissions and drains: everything already
// queued is still dispatched and every in-flight query runs to completion,
// so no accepted query loses its (byte-identical) result. If ctx expires
// first, remaining queued items fail with ErrClosed and Shutdown returns
// ctx.Err() without waiting on in-flight queries (the caller's
// engine.Close will). Idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.kickDispatcher()
	select {
	case <-s.drained:
		s.wg.Wait()
		return nil
	case <-ctx.Done():
		s.failQueued(ErrClosed)
		return ctx.Err()
	}
}

// failQueued delivers err to every still-queued item.
func (s *Server) failQueued(err error) {
	s.mu.Lock()
	var victims []*item
	for t, q := range s.queues {
		for _, it := range q {
			it.state = stateDispatched // terminal
			victims = append(victims, it)
		}
		s.queues[t] = nil
	}
	s.queued = 0
	s.mu.Unlock()
	for _, it := range victims {
		it.res <- itemResult{err: err}
	}
	s.kickDispatcher()
}

// dispatcher is the single scheduling goroutine: each wakeup assembles one
// weighted-round-robin round of eligible queries and releases it into the
// engine as one announced arrival round.
func (s *Server) dispatcher() {
	defer s.wg.Done()
	for {
		<-s.kick
		for {
			round := s.takeRound()
			if len(round) == 0 {
				break
			}
			s.launch(round)
		}
		s.mu.Lock()
		done := s.closed && s.queued == 0 && s.nrun == 0
		s.mu.Unlock()
		if done {
			close(s.drained)
			return
		}
	}
}

// eligibleLocked reports whether tenant may dispatch another query given
// inRound additions this round: under its concurrency cap, and under its
// memory budget (a tenant with nothing running is always eligible, so a
// single over-budget query degrades to the engine-wide limit instead of
// livelocking).
func (s *Server) eligibleLocked(tenant string, inRound int) bool {
	active := s.running[tenant] + inRound
	if active >= s.cfg.TenantConcurrency {
		return false
	}
	if s.cfg.TenantMemoryBytes > 0 && active > 0 &&
		s.eng.MemPool().TenantUsed(tenant) >= s.cfg.TenantMemoryBytes {
		return false
	}
	return true
}

// takeRound assembles the next dispatch round under weighted round-robin:
// tenants are visited in rotating stable order across repeated cycles; in
// each block of maxWeight cycles, tenant t participates in weight(t) of
// them, so backlogged tenants dispatch proportionally to their weights —
// and a lone backlogged tenant still fills the whole round (rounds stay
// work-conserving, which is what feeds multi-query fusion batches). The
// round closes at Config.MaxDispatch queries or when no tenant is
// eligible. Taken items are marked dispatched and their running counts
// charged before the lock drops, so a concurrent round cannot overshoot a
// tenant's cap.
func (s *Server) takeRound() []*item {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued == 0 || len(s.tenants) == 0 {
		return nil
	}
	inRound := make(map[string]int)
	var round []*item
	take := func(tenant string) bool {
		q := s.queues[tenant]
		if len(q) == 0 || !s.eligibleLocked(tenant, inRound[tenant]) {
			return false
		}
		it := q[0]
		s.queues[tenant] = q[1:]
		s.queued--
		it.state = stateDispatched
		inRound[tenant]++
		round = append(round, it)
		return true
	}
	n := len(s.tenants)
	start := s.rr % n
	for cycle := 0; len(round) < s.cfg.MaxDispatch; cycle++ {
		// The weighting period is the largest weight among tenants that
		// still have backlog, recomputed per cycle as queues drain.
		maxW := 0
		for _, tenant := range s.tenants {
			if len(s.queues[tenant]) > 0 {
				if w := s.cfg.weight(tenant); w > maxW {
					maxW = w
				}
			}
		}
		if maxW == 0 {
			break
		}
		progress := false
		for i := 0; i < n && len(round) < s.cfg.MaxDispatch; i++ {
			tenant := s.tenants[(start+i)%n]
			if cycle%maxW < s.cfg.weight(tenant) && take(tenant) {
				progress = true
			}
		}
		if !progress && cycle%maxW == maxW-1 {
			// A full weighting block passed with nothing taken: every
			// backlogged tenant is at its concurrency or memory cap.
			break
		}
	}
	s.rr++
	now := time.Now()
	for _, it := range round {
		s.running[it.tenant]++
		s.nrun++
		s.stats.dispatched++
		s.stats.waits[it.tenant] = append(s.stats.waits[it.tenant], now.Sub(it.enq))
		s.stats.order = append(s.stats.order, it.tenant)
	}
	return round
}

// launch releases one round into the engine. The round is announced to the
// shared-execution admission window first, so its queries — often from
// different connections — land in one fusion batch deterministically; the
// announcement's residue (queries that fail before reaching the window,
// e.g. parse errors) is cancelled once the whole round has finished.
func (s *Server) launch(round []*item) {
	expectDone := s.eng.ExpectShared(len(round))
	var rwg sync.WaitGroup
	for _, it := range round {
		rwg.Add(1)
		s.wg.Add(1)
		go func(it *item) {
			defer s.wg.Done()
			defer rwg.Done()
			res, err := s.runWithMemoryWait(it)
			it.res <- itemResult{res: res, err: err}
			s.mu.Lock()
			s.running[it.tenant]--
			if s.running[it.tenant] <= 0 {
				delete(s.running, it.tenant)
			}
			s.nrun--
			s.stats.completed++
			s.mu.Unlock()
			s.kickDispatcher() // a slot freed; re-evaluate the queues
		}(it)
	}
	go func() {
		rwg.Wait()
		expectDone()
	}()
}

// runWithMemoryWait executes one dispatched query, converting transient
// memory exhaustion into queueing: on ErrMemoryExceeded while someone else
// holds tracked memory, the query waits for the next release and retries
// instead of failing. Two invariants make this safe:
//
//   - No missed wakeups: the release channel is taken BEFORE each attempt,
//     so a release landing during the attempt satisfies the ensuing wait.
//   - Progress: retries are serialized through retryMu, so a retrying
//     query effectively runs alone among retriers — two queries that each
//     fit the budget alone but not together cannot keep failing each
//     other. A query that exhausts memory while the pool is empty cannot
//     be helped by waiting and fails with the engine's error.
func (s *Server) runWithMemoryWait(it *item) (*engine.Result, error) {
	pool := s.eng.MemPool()
	res, err := s.eng.QueryAs(it.ctx, it.tenant, it.sql)
	if err == nil || !errors.Is(err, engine.ErrMemoryExceeded) {
		return res, err
	}
	s.retryMu.Lock()
	defer s.retryMu.Unlock()
	for {
		relCh := pool.ReleaseWait()
		res, err = s.eng.QueryAs(it.ctx, it.tenant, it.sql)
		if err == nil || !errors.Is(err, engine.ErrMemoryExceeded) {
			return res, err
		}
		if pool.Used() == 0 {
			return nil, err
		}
		select {
		case <-relCh:
		case <-it.ctx.Done():
			return nil, err
		}
	}
}
