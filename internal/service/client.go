package service

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"

	"repro/internal/types"
)

// Client is the driver side of the wire protocol. It is safe for
// concurrent use: queries may be issued from many goroutines over one
// connection (pipelined; responses are matched by ID), which is how a
// load generator makes one connection participate in shared-execution
// batches.
type Client struct {
	conn net.Conn

	wmu sync.Mutex // serializes request writes

	mu      sync.Mutex
	nextID  int64
	pending map[int64]chan *Response
	readErr error
	closed  bool
}

// ClientResult is a query result decoded from the wire — rows are
// byte-identical to the engine's in-process result.
type ClientResult struct {
	Columns []string
	Rows    [][]types.Value
	Metrics ResultMetrics
}

// Dial connects to a NetServer.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, pending: make(map[int64]chan *Response)}
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; outstanding queries fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	r := bufio.NewReader(c.conn)
	var err error
	for {
		var line []byte
		line, err = r.ReadBytes('\n')
		if err != nil {
			break
		}
		var resp Response
		if jerr := json.Unmarshal(line, &resp); jerr != nil {
			err = fmt.Errorf("service: bad response line: %w", jerr)
			break
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- &resp
		}
	}
	c.mu.Lock()
	c.readErr = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	c.mu.Unlock()
}

// roundTrip sends req and waits for its response.
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("service: client closed")
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	b, err := marshalLine(req)
	if err != nil {
		return nil, err
	}
	c.wmu.Lock()
	_, err = c.conn.Write(b)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, fmt.Errorf("service: send: %w", err)
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			rerr := c.readErr
			c.mu.Unlock()
			if rerr == nil {
				rerr = fmt.Errorf("connection closed")
			}
			return nil, fmt.Errorf("service: %w", rerr)
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Hello declares the connection's tenant for all later queries.
func (c *Client) Hello(ctx context.Context, tenant string) error {
	resp, err := c.roundTrip(ctx, &Request{Op: "hello", Tenant: tenant})
	if err != nil {
		return err
	}
	if !resp.OK {
		return kindErr(resp.Kind, resp.Err)
	}
	return nil
}

// Ping round-trips a no-op (liveness check).
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.roundTrip(ctx, &Request{Op: "ping"})
	if err != nil {
		return err
	}
	if !resp.OK {
		return kindErr(resp.Kind, resp.Err)
	}
	return nil
}

// Query runs sql under the connection's tenant (or tenant overrides for
// this call when non-empty via QueryAs). Scheduling errors map back to the
// package sentinels: errors.Is(err, ErrQueueFull) works across the wire.
func (c *Client) Query(ctx context.Context, sql string) (*ClientResult, error) {
	return c.QueryAs(ctx, "", sql)
}

// Ingest appends rows to table on the server, returning once they are
// durably published (subsequent queries on any connection see them).
func (c *Client) Ingest(ctx context.Context, table string, rows [][]types.Value) error {
	resp, err := c.roundTrip(ctx, &Request{Op: "ingest", Table: table, Rows: encodeRows(rows)})
	if err != nil {
		return err
	}
	if !resp.OK {
		return kindErr(resp.Kind, resp.Err)
	}
	if resp.Appended != int64(len(rows)) {
		return fmt.Errorf("service: ingest acknowledged %d of %d rows", resp.Appended, len(rows))
	}
	return nil
}

// QueryAs is Query with a per-call tenant override.
func (c *Client) QueryAs(ctx context.Context, tenant, sql string) (*ClientResult, error) {
	resp, err := c.roundTrip(ctx, &Request{Op: "query", Tenant: tenant, SQL: sql})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, kindErr(resp.Kind, resp.Err)
	}
	rows, err := decodeRows(resp.Rows)
	if err != nil {
		return nil, err
	}
	res := &ClientResult{Columns: resp.Columns, Rows: rows}
	if resp.Metrics != nil {
		res.Metrics = *resp.Metrics
	}
	return res, nil
}
