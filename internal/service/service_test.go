package service

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/engine"
	"repro/internal/storage"
	"repro/internal/testgen"
	"repro/internal/types"
)

// testStore is the shared small test dataset (built once; stores are
// immutable after load except via Load, which these tests never call).
var (
	storeOnce sync.Once
	store     *storage.Store
	storeErr  error
)

func testStore(t testing.TB) *storage.Store {
	storeOnce.Do(func() { store, storeErr = testgen.NewStore(20260808, 500) })
	if storeErr != nil {
		t.Fatal(storeErr)
	}
	return store
}

// exactRows renders rows byte-exactly (float payloads as IEEE bits), so
// equality means the results are truly identical.
func exactRows(rows [][]types.Value) string {
	var b strings.Builder
	for _, row := range rows {
		for j, v := range row {
			if j > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d:%v:%d:%x:%q", v.Kind, v.Null, v.I, math.Float64bits(v.F), v.S)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// waitQueued blocks until n items sit in the server's queues (the server
// must be stopped, so nothing drains them).
func waitQueued(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		q := s.queued
		s.mu.Unlock()
		if q >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never reached %d items (at %d)", n, q)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSubmitMatchesSolo(t *testing.T) {
	st := testStore(t)
	solo := engine.OpenWithStore(st, engine.Config{})
	eng := engine.OpenWithStore(st, engine.Config{})
	defer eng.Close()
	s := New(eng, Config{})
	defer s.Shutdown(context.Background())

	for seed := int64(0); seed < 12; seed++ {
		q := testgen.New(seed).Query()
		want, err := solo.Query(q)
		if err != nil {
			t.Fatalf("solo seed %d: %v\n%s", seed, err, q)
		}
		got, err := s.Submit(context.Background(), "acme", q)
		if err != nil {
			t.Fatalf("service seed %d: %v\n%s", seed, err, q)
		}
		if exactRows(got.Rows) != exactRows(want.Rows) {
			t.Fatalf("seed %d: service rows differ from solo\n%s", seed, q)
		}
		if got.Metrics.Storage.BytesScanned != want.Metrics.Storage.BytesScanned {
			t.Fatalf("seed %d: BytesScanned %d != solo %d", seed,
				got.Metrics.Storage.BytesScanned, want.Metrics.Storage.BytesScanned)
		}
	}
}

func TestQueueFullRejects(t *testing.T) {
	eng := engine.OpenWithStore(testStore(t), engine.Config{})
	defer eng.Close()
	s := newStopped(eng, Config{QueueDepth: 2}) // dispatcher never runs

	var wg sync.WaitGroup
	errs := make([]error, 2)
	ctx, cancel := context.WithCancel(context.Background())
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Submit(ctx, "a", "SELECT f_qty FROM fact")
		}(i)
	}
	waitQueued(t, s, 2)
	if _, err := s.Submit(context.Background(), "a", "SELECT f_qty FROM fact"); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow Submit err = %v, want ErrQueueFull", err)
	}
	s.mu.Lock()
	if got := s.stats.rejected; got != 1 {
		t.Errorf("rejected = %d, want 1", got)
	}
	s.mu.Unlock()
	cancel()
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued submit %d err = %v, want context.Canceled", i, err)
		}
	}
}

func TestQueueTimeout(t *testing.T) {
	eng := engine.OpenWithStore(testStore(t), engine.Config{})
	defer eng.Close()
	s := newStopped(eng, Config{QueueTimeout: 20 * time.Millisecond})

	start := time.Now()
	_, err := s.Submit(context.Background(), "a", "SELECT f_qty FROM fact")
	if !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("err = %v, want ErrQueueTimeout", err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("timed out after %v, before the 20ms QueueTimeout", elapsed)
	}
	s.mu.Lock()
	if s.queued != 0 {
		t.Errorf("timed-out item left in queue (queued = %d)", s.queued)
	}
	s.mu.Unlock()
}

// TestWRRFairnessOrder floods one tenant's queue and checks weighted
// round-robin keeps a light tenant's queries interleaved instead of stuck
// behind the flood. The backlog is enqueued before the dispatcher starts,
// so the dispatch order is a property of the scheduler, not of timing.
func TestWRRFairnessOrder(t *testing.T) {
	eng := engine.OpenWithStore(testStore(t), engine.Config{})
	defer eng.Close()
	const flood, light = 60, 6
	s := newStopped(eng, Config{
		QueueDepth:        flood + light,
		TenantConcurrency: flood + light, // caps must not bind
		MaxDispatch:       4,
	})

	var wg sync.WaitGroup
	submit := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Submit(context.Background(), tenant, "SELECT f_qty FROM fact WHERE f_qty > 3"); err != nil {
					t.Errorf("%s submit: %v", tenant, err)
				}
			}()
		}
	}
	submit("flood", flood)
	submit("light", light)
	waitQueued(t, s, flood+light)
	s.start()
	wg.Wait()

	order := s.Stats().DispatchOrder
	if len(order) != flood+light {
		t.Fatalf("dispatched %d, want %d", len(order), flood+light)
	}
	last := -1
	for i, tenant := range order {
		if tenant == "light" {
			last = i
		}
	}
	// Equal weights: each WRR cycle takes one query per tenant, so the
	// light tenant's 6 queries dispatch within ~6 cycles (12 queries) plus
	// one round of slack — far before the flood drains.
	if bound := 2*light + s.cfg.MaxDispatch; last > bound {
		t.Fatalf("light tenant's last dispatch at position %d, want <= %d (starved behind flood)\norder: %v",
			last, bound, order)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestWeightedShares checks a weight-2 tenant dispatches twice as often as
// a weight-1 tenant while both have backlog.
func TestWeightedShares(t *testing.T) {
	eng := engine.OpenWithStore(testStore(t), engine.Config{})
	defer eng.Close()
	const each = 30
	s := newStopped(eng, Config{
		QueueDepth:        2 * each,
		TenantConcurrency: 2 * each,
		MaxDispatch:       3,
		Weights:           map[string]int{"gold": 2, "bronze": 1},
	})
	var wg sync.WaitGroup
	for _, tenant := range []string{"gold", "bronze"} {
		for i := 0; i < each; i++ {
			tenant := tenant
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := s.Submit(context.Background(), tenant, "SELECT f_k1 FROM fact"); err != nil {
					t.Errorf("%s submit: %v", tenant, err)
				}
			}()
		}
	}
	waitQueued(t, s, 2*each)
	s.start()
	wg.Wait()

	// While both tenants have backlog (the first 45 dispatches: bronze's
	// 30th arrives only after gold's 30 are done), gold should get ~2/3.
	order := s.Stats().DispatchOrder
	gold := 0
	for _, tenant := range order[:45] {
		if tenant == "gold" {
			gold++
		}
	}
	if gold < 27 || gold > 33 {
		t.Fatalf("gold got %d of first 45 dispatches, want ~30 (2:1 weights)\norder: %v", gold, order)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServiceFedSharedExecution proves the service's dispatch rounds feed
// the cross-query fusion window: two eligible queries from different
// connections' tenants land in one announced round and come back fused,
// with rows byte-identical to solo runs.
func TestServiceFedSharedExecution(t *testing.T) {
	st := testStore(t)
	solo := engine.OpenWithStore(st, engine.Config{})
	eng := engine.OpenWithStore(st, engine.Config{
		ShareExec:       true,
		AdmissionWindow: 250 * time.Millisecond, // backstop; the round seals the window
	})
	defer eng.Close()
	const q = "SELECT f_k1, f_qty FROM fact WHERE f_qty > 5"
	want, err := solo.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	s := newStopped(eng, Config{MaxDispatch: 2})
	results := make([]*engine.Result, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, tenant := range []string{"t1", "t2"} {
		wg.Add(1)
		go func(i int, tenant string) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(), tenant, q)
		}(i, tenant)
	}
	waitQueued(t, s, 2)
	s.start()
	wg.Wait()

	for i := range results {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if exactRows(results[i].Rows) != exactRows(want.Rows) {
			t.Fatalf("client %d: fused rows differ from solo", i)
		}
		sh := results[i].Metrics.SharedExec
		if sh.FusedPlans < 2 {
			t.Fatalf("client %d: FusedPlans = %d, want >= 2 (round did not fuse)\nstamp: %+v", i, sh.FusedPlans, sh)
		}
		if sh.BatchedQueries != 2 {
			t.Fatalf("client %d: BatchedQueries = %d, want 2", i, sh.BatchedQueries)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestMemoryContentionQueues pins most of the engine's memory budget from
// outside, submits a query that therefore cannot reserve its hash state,
// and frees the budget once the query has provably failed at least one
// attempt: the service must keep the query waiting and deliver its result
// instead of surfacing ErrMemoryExceeded.
func TestMemoryContentionQueues(t *testing.T) {
	st := testStore(t)
	eng := engine.OpenWithStore(st, engine.Config{MemoryLimitBytes: 64 << 10})
	defer eng.Close()
	s := New(eng, Config{})
	defer s.Shutdown(context.Background())

	const q = "SELECT d_grp, COUNT(*) FROM fact JOIN dim ON f_k1 = d_k GROUP BY d_grp"
	solo := engine.OpenWithStore(st, engine.Config{})
	want, err := solo.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	// Occupy all but a sliver of the budget so the join build cannot fit.
	hog := eng.MemPool().NewTracker("hog")
	if err := hog.Reserve("hog", 63<<10); err != nil {
		t.Fatalf("hog reserve: %v", err)
	}
	sawExceeded := make(chan struct{})
	go func() {
		// Release only after the pool has been driven to exhaustion at
		// least once (the query attempt failed and is now waiting).
		<-sawExceeded
		hog.Close()
	}()
	go func() {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if eng.MemPool().Used() >= 63<<10 && s.Stats().Dispatched > 0 {
				// The query has dispatched against a full pool; give it a
				// moment to fail its first attempt, then free the budget.
				time.Sleep(20 * time.Millisecond)
				close(sawExceeded)
				return
			}
			time.Sleep(time.Millisecond)
		}
		close(sawExceeded)
	}()

	res, err := s.Submit(context.Background(), "a", q)
	if err != nil {
		t.Fatalf("Submit = %v, want queued-then-success (not ErrMemoryExceeded)", err)
	}
	if exactRows(res.Rows) != exactRows(want.Rows) {
		t.Fatalf("retried query rows differ from solo")
	}
}

// TestShutdownDrains submits a backlog, shuts down mid-flight, and checks
// every accepted query still got its exact result while later submissions
// are rejected.
func TestShutdownDrains(t *testing.T) {
	st := testStore(t)
	solo := engine.OpenWithStore(st, engine.Config{})
	eng := engine.OpenWithStore(st, engine.Config{})
	defer eng.Close()
	const q = "SELECT f_tag, SUM(f_qty) FROM fact GROUP BY f_tag"
	want, err := solo.Query(q)
	if err != nil {
		t.Fatal(err)
	}

	s := newStopped(eng, Config{QueueDepth: 32})
	const n = 16
	results := make([]*engine.Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = s.Submit(context.Background(), fmt.Sprintf("t%d", i%3), q)
		}(i)
	}
	waitQueued(t, s, n)
	s.start()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	wg.Wait()
	for i := range results {
		if errs[i] != nil {
			t.Fatalf("drained query %d failed: %v", i, errs[i])
		}
		if exactRows(results[i].Rows) != exactRows(want.Rows) {
			t.Fatalf("drained query %d: rows differ from solo", i)
		}
	}
	if _, err := s.Submit(context.Background(), "a", q); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Submit err = %v, want ErrClosed", err)
	}
}
