package service

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/engine"
	"repro/internal/testgen"
)

// TestServiceSoak is the CI service-soak scenario: a flooding tenant and
// several light tenants drive concurrent queries through the full network
// stack into one resident ShareExec engine, and the test asserts the
// service's whole contract at once:
//
//   - every result is byte-identical to a solo run of the same query;
//   - the flooding tenant cannot starve the light tenants (queue-wait
//     fairness bound);
//   - queries from different connections were actually batched by the
//     shared-execution window (BatchedQueries observed > 1);
//   - graceful shutdown drains, and no goroutines leak once the server
//     and the engine are closed.
func TestServiceSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	st := testStore(t)
	solo := engine.OpenWithStore(st, engine.Config{})

	// The shared query mix: a fusion-eligible statement every tenant
	// repeats (the paper's concurrent-dashboards motivation), plus a few
	// generated shapes for coverage.
	const hot = "SELECT f_k1, f_qty FROM fact WHERE f_qty > 5"
	queries := []string{
		hot,
		"SELECT f_tag, SUM(f_qty) FROM fact GROUP BY f_tag",
		testgen.New(7).Query(),
		testgen.New(11).Query(),
	}
	want := make(map[string]string, len(queries))
	for _, q := range queries {
		res, err := solo.Query(q)
		if err != nil {
			t.Fatalf("solo %q: %v", q, err)
		}
		want[q] = exactRows(res.Rows)
	}

	eng := engine.OpenWithStore(st, engine.Config{
		ShareExec:        true,
		AdmissionWindow:  2 * time.Millisecond,
		ShareScans:       true,
		MemoryLimitBytes: 8 << 20,
		SpillDir:         t.TempDir(),
	})
	srv := New(eng, Config{
		TenantConcurrency: 3,
		Weights:           map[string]int{"flood": 1, "t1": 1, "t2": 1, "t3": 1},
	})
	ns := NewNetServer(srv)
	if err := ns.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := ns.Addr().String()

	type tenantLoad struct {
		name    string
		conns   int
		queries int // per connection
	}
	loads := []tenantLoad{
		{"flood", 2, 30},
		{"t1", 1, 8},
		{"t2", 1, 8},
		{"t3", 1, 8},
	}
	var batched atomic.Int64
	var wg sync.WaitGroup
	for _, ld := range loads {
		for c := 0; c < ld.conns; c++ {
			wg.Add(1)
			go func(ld tenantLoad, c int) {
				defer wg.Done()
				cl, err := Dial(addr)
				if err != nil {
					t.Errorf("%s conn %d: dial: %v", ld.name, c, err)
					return
				}
				defer cl.Close()
				ctx := context.Background()
				if err := cl.Hello(ctx, ld.name); err != nil {
					t.Errorf("%s conn %d: hello: %v", ld.name, c, err)
					return
				}
				// Keep up to 4 queries pipelined per connection.
				sem := make(chan struct{}, 4)
				var qwg sync.WaitGroup
				for i := 0; i < ld.queries; i++ {
					q := queries[i%len(queries)]
					if ld.name == "flood" && i%2 == 0 {
						q = hot // the flood hammers the hot statement
					}
					sem <- struct{}{}
					qwg.Add(1)
					go func(i int, q string) {
						defer qwg.Done()
						defer func() { <-sem }()
						res, err := cl.Query(ctx, q)
						if err != nil {
							t.Errorf("%s conn %d query %d: %v", ld.name, c, i, err)
							return
						}
						if got := exactRows(res.Rows); got != want[q] {
							t.Errorf("%s conn %d query %d: rows differ from solo run of %q", ld.name, c, i, q)
						}
						if res.Metrics.BatchedQueries > 1 {
							batched.Add(1)
						}
					}(i, q)
				}
				qwg.Wait()
			}(ld, c)
		}
	}
	wg.Wait()

	stats := srv.Stats()
	total := int64(0)
	for _, ld := range loads {
		total += int64(ld.conns * ld.queries)
	}
	if stats.Completed != total {
		t.Errorf("completed %d of %d queries", stats.Completed, total)
	}

	// Fairness: a light tenant's p99 queue wait must stay within a small
	// multiple of the flooding tenant's — a starved tenant would show
	// waits on the order of the whole run.
	p99 := func(ws []time.Duration) time.Duration {
		if len(ws) == 0 {
			return 0
		}
		sorted := append([]time.Duration(nil), ws...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		return sorted[(len(sorted)*99)/100]
	}
	floodP99 := p99(stats.QueueWaits["flood"])
	bound := 3*floodP99 + 250*time.Millisecond
	for _, tenant := range []string{"t1", "t2", "t3"} {
		if got := p99(stats.QueueWaits[tenant]); got > bound {
			t.Errorf("tenant %s p99 queue wait %v exceeds fairness bound %v (flood p99 %v)",
				tenant, got, bound, floodP99)
		}
	}

	if batched.Load() == 0 {
		t.Errorf("no query was ever batched by shared execution (service-fed windows not working)")
	}

	if err := ns.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("engine close: %v", err)
	}

	// Goroutine-leak check: everything the service and engine started must
	// be gone; allow a short settle and a small slack for runtime-internal
	// goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The engine rejects new work once closed.
	if _, err := eng.Query("SELECT f_k1 FROM fact"); err == nil {
		t.Error("closed engine accepted a query")
	}
}
