package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"repro/engine"
	"repro/internal/types"
)

func TestWireValueRoundTrip(t *testing.T) {
	cases := []types.Value{
		types.Int(0),
		types.Int(-(1 << 62)),
		types.Float(0),
		types.Float(math.Copysign(0, -1)), // -0.0 must survive
		types.Float(math.NaN()),
		types.Float(math.Inf(1)),
		types.Float(math.Inf(-1)),
		types.Float(3.141592653589793),
		types.String(""),
		types.String("line\nbreak\tand \"quotes\""),
		types.Bool(true),
		types.Date(19812),
		{Kind: types.KindInt64, Null: true},
		{Kind: types.KindFloat64, Null: true},
	}
	for i, v := range cases {
		got, err := FromWire(ToWire(v))
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, v, err)
		}
		// Compare bit-exactly: NaN != NaN under ==, so compare payload bits.
		if got.Kind != v.Kind || got.Null != v.Null || got.I != v.I || got.S != v.S ||
			math.Float64bits(got.F) != math.Float64bits(v.F) {
			t.Fatalf("case %d: round-trip %+v -> %+v", i, v, got)
		}
	}
}

func TestNetServerEndToEnd(t *testing.T) {
	st := testStore(t)
	solo := engine.OpenWithStore(st, engine.Config{})
	eng := engine.OpenWithStore(st, engine.Config{ShareExec: true, AdmissionWindow: 2 * time.Millisecond})
	defer eng.Close()
	srv := New(eng, Config{})
	ns := NewNetServer(srv)
	if err := ns.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := ns.Addr().String()

	queries := []string{
		"SELECT f_k1, f_qty FROM fact WHERE f_qty > 5",
		"SELECT f_tag, SUM(f_price) FROM fact GROUP BY f_tag",
		"SELECT d_grp, COUNT(*) FROM fact JOIN dim ON f_k1 = d_k GROUP BY d_grp",
	}
	want := make([]string, len(queries))
	for i, q := range queries {
		res, err := solo.Query(q)
		if err != nil {
			t.Fatalf("solo %q: %v", q, err)
		}
		want[i] = exactRows(res.Rows)
	}

	const conns = 3
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := Dial(addr)
			if err != nil {
				t.Errorf("conn %d dial: %v", c, err)
				return
			}
			defer cl.Close()
			ctx := context.Background()
			if err := cl.Hello(ctx, "tenant"); err != nil {
				t.Errorf("conn %d hello: %v", c, err)
				return
			}
			if err := cl.Ping(ctx); err != nil {
				t.Errorf("conn %d ping: %v", c, err)
				return
			}
			// Pipelined: all queries in flight at once on this connection.
			var qwg sync.WaitGroup
			for i, q := range queries {
				qwg.Add(1)
				go func(i int, q string) {
					defer qwg.Done()
					res, err := cl.Query(ctx, q)
					if err != nil {
						t.Errorf("conn %d query %d: %v", c, i, err)
						return
					}
					if got := exactRows(res.Rows); got != want[i] {
						t.Errorf("conn %d query %d: rows differ from solo", c, i)
					}
				}(i, q)
			}
			qwg.Wait()
			// A bad statement travels back as an ordinary error.
			if _, err := cl.Query(ctx, "SELEC nonsense"); err == nil {
				t.Errorf("conn %d: bad SQL did not error", c)
			}
		}(c)
	}
	wg.Wait()
	if err := ns.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The server is drained: a fresh dial must fail (listener closed).
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial after shutdown succeeded")
	}
	if _, err := srv.Submit(context.Background(), "a", queries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown Submit err = %v, want ErrClosed", err)
	}
}
