package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/engine"
)

// NetServer exposes a Server over TCP with the line-JSON wire protocol.
// Connections may pipeline: each request is handled in its own goroutine
// and responses (matched by ID) are written as they complete, so queries
// from one connection can land in the same dispatch round as queries from
// another — the service-fed path into cross-query shared execution.
type NetServer struct {
	srv *Server

	mu       sync.Mutex
	lis      net.Listener
	handlers map[*connHandler]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// NewNetServer wraps srv for network serving.
func NewNetServer(srv *Server) *NetServer {
	return &NetServer{srv: srv, handlers: make(map[*connHandler]struct{})}
}

// Addr reports the bound listen address (valid after Serve/Listen starts).
func (ns *NetServer) Addr() net.Addr {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.lis == nil {
		return nil
	}
	return ns.lis.Addr()
}

// Listen binds addr and starts accepting in a background goroutine,
// returning once the listener is bound (so Addr is valid).
func (ns *NetServer) Listen(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	ns.mu.Lock()
	if ns.closed {
		ns.mu.Unlock()
		lis.Close()
		return ErrClosed
	}
	ns.lis = lis
	ns.mu.Unlock()
	ns.wg.Add(1)
	go ns.acceptLoop(lis)
	return nil
}

func (ns *NetServer) acceptLoop(lis net.Listener) {
	defer ns.wg.Done()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal
		}
		h := &connHandler{ns: ns, conn: conn, tenant: ""}
		ns.mu.Lock()
		if ns.closed {
			ns.mu.Unlock()
			conn.Close()
			return
		}
		ns.handlers[h] = struct{}{}
		ns.mu.Unlock()
		ns.wg.Add(1)
		go h.run()
	}
}

// Shutdown drains gracefully: stop accepting, let the service drain every
// queued and in-flight query (their responses are written to their
// connections), then close connections. If ctx expires first, queued
// queries fail with ErrClosed and connections close immediately.
func (ns *NetServer) Shutdown(ctx context.Context) error {
	ns.mu.Lock()
	ns.closed = true
	lis := ns.lis
	ns.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	err := ns.srv.Shutdown(ctx)
	// After a clean drain every Submit has returned; wait for each
	// connection's response writes to land before cutting it.
	ns.mu.Lock()
	handlers := make([]*connHandler, 0, len(ns.handlers))
	for h := range ns.handlers {
		handlers = append(handlers, h)
	}
	ns.mu.Unlock()
	for _, h := range handlers {
		if err == nil {
			h.reqs.Wait()
		}
		h.conn.Close()
	}
	ns.wg.Wait()
	return err
}

// connHandler serves one connection.
type connHandler struct {
	ns   *NetServer
	conn net.Conn

	wmu    sync.Mutex // serializes response writes
	tmu    sync.Mutex // guards tenant
	tenant string
	reqs   sync.WaitGroup
}

func (h *connHandler) run() {
	defer h.ns.wg.Done()
	defer func() {
		h.reqs.Wait()
		h.conn.Close()
		h.ns.mu.Lock()
		delete(h.ns.handlers, h)
		h.ns.mu.Unlock()
	}()
	r := bufio.NewReader(h.conn)
	for {
		line, err := r.ReadBytes('\n')
		if err != nil {
			return // EOF or connection cut
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			h.write(&Response{ID: req.ID, Err: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		switch req.Op {
		case "hello":
			h.tmu.Lock()
			h.tenant = req.Tenant
			h.tmu.Unlock()
			h.write(&Response{ID: req.ID, OK: true})
		case "ping":
			h.write(&Response{ID: req.ID, OK: true})
		case "query":
			h.reqs.Add(1)
			go func(req Request) {
				defer h.reqs.Done()
				h.query(req)
			}(req)
		case "ingest":
			h.reqs.Add(1)
			go func(req Request) {
				defer h.reqs.Done()
				h.ingest(req)
			}(req)
		default:
			h.write(&Response{ID: req.ID, Err: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
}

func (h *connHandler) query(req Request) {
	h.tmu.Lock()
	tenant := h.tenant
	h.tmu.Unlock()
	if req.Tenant != "" {
		tenant = req.Tenant
	}
	res, err := h.ns.srv.Submit(context.Background(), tenant, req.SQL)
	if err != nil {
		h.write(&Response{ID: req.ID, Err: err.Error(), Kind: errKind(err)})
		return
	}
	h.write(&Response{
		ID:      req.ID,
		OK:      true,
		Columns: res.Columns,
		Rows:    encodeRows(res.Rows),
		Metrics: &ResultMetrics{
			BytesScanned:    res.Metrics.Storage.BytesScanned,
			RowsProcessed:   res.Metrics.RowsProcessed,
			BatchedQueries:  res.Metrics.SharedExec.BatchedQueries,
			FusedPlans:      res.Metrics.SharedExec.FusedPlans,
			ResultCacheHits: res.Metrics.ResultCache.Hits,
		},
	})
}

// ingest decodes an append request's rows and publishes them through the
// engine, invalidating the affected result-cache entries as a side effect.
func (h *connHandler) ingest(req Request) {
	rows, err := decodeRows(req.Rows)
	if err != nil {
		h.write(&Response{ID: req.ID, Err: err.Error()})
		return
	}
	if err := h.ns.srv.Ingest(req.Table, rows); err != nil {
		h.write(&Response{ID: req.ID, Err: err.Error(), Kind: errKind(err)})
		return
	}
	h.write(&Response{ID: req.ID, OK: true, Appended: int64(len(rows))})
}

// errKind classifies scheduling errors so remote clients can map them back
// to sentinels.
func errKind(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.Is(err, ErrQueueTimeout):
		return "queue_timeout"
	case errors.Is(err, ErrClosed), errors.Is(err, engine.ErrEngineClosed):
		return "closed"
	default:
		return ""
	}
}

// kindErr is errKind's client-side inverse.
func kindErr(kind, text string) error {
	switch kind {
	case "queue_full":
		return fmt.Errorf("%s: %w", text, ErrQueueFull)
	case "queue_timeout":
		return fmt.Errorf("%s: %w", text, ErrQueueTimeout)
	case "closed":
		return fmt.Errorf("%s: %w", text, ErrClosed)
	default:
		return errors.New(text)
	}
}

func (h *connHandler) write(resp *Response) {
	b, err := marshalLine(resp)
	if err != nil {
		b, _ = marshalLine(&Response{ID: resp.ID, Err: fmt.Sprintf("encode: %v", err)})
	}
	h.wmu.Lock()
	_, _ = h.conn.Write(b)
	h.wmu.Unlock()
}
