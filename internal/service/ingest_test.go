package service

import (
	"context"
	"errors"
	"testing"

	"repro/engine"
	"repro/internal/testgen"
	"repro/internal/types"
)

// TestIngestOverWire drives the full remote write path: a client appends
// rows over the wire (lossless values, NULLs and float bit patterns
// included), the server publishes them through the engine, the result
// cache's pre-append entry is invalidated, and subsequent queries on any
// connection see the new data byte-identically to an in-process run.
func TestIngestOverWire(t *testing.T) {
	st, err := testgen.NewStore(20260808, 300)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.OpenWithStore(st, engine.Config{ResultCacheBytes: 1 << 20})
	srv := New(eng, Config{})
	ns := NewNetServer(srv)
	if err := ns.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer ns.Shutdown(context.Background())

	cl, err := Dial(ns.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := context.Background()
	const q = "SELECT COUNT(*) AS c, SUM(f_qty) AS s FROM fact WHERE f_qty > 10"

	r1, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Metrics.ResultCacheHits == 0 {
		t.Fatal("repeat query over the wire reported no result-cache hit")
	}
	before := exactRows(r1.Rows)
	if got := exactRows(r2.Rows); got != before {
		t.Fatalf("cached wire result differs:\n%s\nvs\n%s", got, before)
	}

	rows := [][]types.Value{
		{types.Int(2), types.Int(9), types.Int(60), types.Float(12.25), types.String("alpha"), types.Int(1)},
		{types.Int(5), types.NullOf(types.KindInt64), types.Int(33), types.NullOf(types.KindFloat64), types.String(""), types.Int(4)},
	}
	if err := cl.Ingest(ctx, "fact", rows); err != nil {
		t.Fatalf("ingest: %v", err)
	}

	r3, err := cl.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Metrics.ResultCacheHits != 0 {
		t.Fatalf("post-ingest query hit a stale entry: %+v", r3.Metrics)
	}
	after := exactRows(r3.Rows)
	if after == before {
		t.Fatal("ingest did not change the aggregate — invalidation is vacuous")
	}
	inProc, err := eng.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := exactRows(inProc.Rows); after != want {
		t.Fatalf("wire result diverged from in-process run:\n%s\nvs\n%s", after, want)
	}

	// Errors surface: unknown table, then a mistyped row.
	if err := cl.Ingest(ctx, "nope", rows); err == nil {
		t.Fatal("ingest to unknown table succeeded")
	}
	bad := [][]types.Value{{types.String("x"), types.Int(0), types.Int(0), types.Float(0), types.String(""), types.Int(0)}}
	if err := cl.Ingest(ctx, "fact", bad); err == nil {
		t.Fatal("mistyped ingest row accepted")
	}
}

// TestIngestAfterShutdown verifies a draining server refuses new appends
// with the retriable "closed" classification.
func TestIngestAfterShutdown(t *testing.T) {
	st, err := testgen.NewStore(20260808, 50)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.OpenWithStore(st, engine.Config{})
	srv := New(eng, Config{})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	err = srv.Ingest("fact", [][]engine.Value{
		{engine.Int(1), engine.Int(1), engine.Int(1), engine.Float(1), engine.String("x"), engine.Int(0)},
	})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("ingest after shutdown = %v, want ErrClosed", err)
	}
}
