package service

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/types"
)

// Wire protocol: newline-delimited JSON, one message per line, symmetric
// request/response. A connection sends Requests and reads Responses in
// order (no pipelining ambiguity: responses carry the request's ID).
//
// Values cross the wire losslessly: the integer payload as an integer, the
// float payload as its IEEE-754 bit pattern rendered in hex (JSON numbers
// would round-trip through decimal and lose NaN payloads and signed
// zeros), strings verbatim. A result decoded by the client is
// byte-identical to the engine's in-process result, which is what lets the
// soak test compare service results against solo runs exactly.

// Request is one client→server message.
type Request struct {
	// ID is echoed on the matching Response.
	ID int64 `json:"id"`
	// Op is "hello", "query", "ingest", or "ping".
	Op string `json:"op"`
	// Tenant (hello) names the connection's tenant for all later queries.
	Tenant string `json:"tenant,omitempty"`
	// SQL (query) is the statement text.
	SQL string `json:"sql,omitempty"`
	// Table and Rows (ingest) name the append target and carry its rows in
	// the same lossless encoding responses use.
	Table string        `json:"table,omitempty"`
	Rows  [][]WireValue `json:"rows,omitempty"`
}

// Response is one server→client message.
type Response struct {
	ID int64 `json:"id"`
	OK bool  `json:"ok"`
	// Err is the error text when OK is false. Kind classifies retriable
	// scheduling errors: "queue_full", "queue_timeout", "closed", or "" for
	// ordinary query errors.
	Err  string `json:"err,omitempty"`
	Kind string `json:"kind,omitempty"`
	// Columns and Rows carry a query's result.
	Columns []string       `json:"columns,omitempty"`
	Rows    [][]WireValue  `json:"rows,omitempty"`
	Metrics *ResultMetrics `json:"metrics,omitempty"`
	// Appended (ingest) is the number of rows durably published.
	Appended int64 `json:"appended,omitempty"`
}

// ResultMetrics is the slice of engine metrics a remote client can act on.
type ResultMetrics struct {
	BytesScanned   int64 `json:"bytesScanned"`
	RowsProcessed  int64 `json:"rowsProcessed"`
	BatchedQueries int64 `json:"batchedQueries,omitempty"`
	FusedPlans     int64 `json:"fusedPlans,omitempty"`
	// ResultCacheHits counts sub-plans of this query served from the
	// semantic result cache (engine Config.ResultCacheBytes > 0).
	ResultCacheHits int64 `json:"resultCacheHits,omitempty"`
}

// WireValue is the lossless JSON form of a types.Value.
type WireValue struct {
	K uint8  `json:"k"`
	N bool   `json:"n,omitempty"`
	I int64  `json:"i,omitempty"`
	F string `json:"f,omitempty"` // IEEE-754 bits in hex; "" when unset
	S string `json:"s,omitempty"`
}

// ToWire encodes v losslessly.
func ToWire(v types.Value) WireValue {
	w := WireValue{K: uint8(v.Kind), N: v.Null, I: v.I, S: v.S}
	if bits := math.Float64bits(v.F); bits != 0 {
		w.F = fmt.Sprintf("%x", bits)
	}
	return w
}

// FromWire decodes w back to the exact Value ToWire encoded.
func FromWire(w WireValue) (types.Value, error) {
	v := types.Value{Kind: types.Kind(w.K), Null: w.N, I: w.I, S: w.S}
	if w.F != "" {
		var bits uint64
		if _, err := fmt.Sscanf(w.F, "%x", &bits); err != nil {
			return types.Value{}, fmt.Errorf("service: bad float bits %q: %w", w.F, err)
		}
		v.F = math.Float64frombits(bits)
	}
	return v, nil
}

// encodeRows converts an engine result's rows for the wire.
func encodeRows(rows [][]types.Value) [][]WireValue {
	out := make([][]WireValue, len(rows))
	for i, row := range rows {
		wr := make([]WireValue, len(row))
		for j, v := range row {
			wr[j] = ToWire(v)
		}
		out[i] = wr
	}
	return out
}

// decodeRows converts wire rows back to values.
func decodeRows(rows [][]WireValue) ([][]types.Value, error) {
	out := make([][]types.Value, len(rows))
	for i, row := range rows {
		vr := make([]types.Value, len(row))
		for j, w := range row {
			v, err := FromWire(w)
			if err != nil {
				return nil, err
			}
			vr[j] = v
		}
		out[i] = vr
	}
	return out, nil
}

// marshalLine renders one protocol message as a single JSON line.
func marshalLine(msg any) ([]byte, error) {
	b, err := json.Marshal(msg)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}
