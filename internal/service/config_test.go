package service

import (
	"reflect"
	"runtime"
	"testing"
	"time"
)

func TestConfigNormalizeDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.QueueDepth != DefaultQueueDepth {
		t.Errorf("QueueDepth = %d, want %d", c.QueueDepth, DefaultQueueDepth)
	}
	if c.TenantConcurrency != DefaultTenantConcurrency {
		t.Errorf("TenantConcurrency = %d, want %d", c.TenantConcurrency, DefaultTenantConcurrency)
	}
	if c.TenantMemoryBytes != 0 {
		t.Errorf("TenantMemoryBytes = %d, want 0 (uncapped)", c.TenantMemoryBytes)
	}
	if c.QueueTimeout != DefaultQueueTimeout {
		t.Errorf("QueueTimeout = %v, want %v", c.QueueTimeout, DefaultQueueTimeout)
	}
	if c.DefaultTenant != DefaultTenant {
		t.Errorf("DefaultTenant = %q, want %q", c.DefaultTenant, DefaultTenant)
	}
	if c.Weights != nil {
		t.Errorf("Weights = %v, want nil preserved", c.Weights)
	}
	wantDispatch := runtime.GOMAXPROCS(0)
	if wantDispatch < 2 {
		wantDispatch = 2
	}
	if c.MaxDispatch != wantDispatch {
		t.Errorf("MaxDispatch = %d, want %d", c.MaxDispatch, wantDispatch)
	}
}

func TestConfigNormalizeNegativeClamps(t *testing.T) {
	c := Config{
		QueueDepth:        -4,
		TenantConcurrency: -1,
		TenantMemoryBytes: -64,
		QueueTimeout:      -time.Second,
		MaxDispatch:       -2,
		Weights:           map[string]int{"a": -3, "b": 0, "c": 2},
	}.normalize()
	if c.QueueDepth != DefaultQueueDepth {
		t.Errorf("negative QueueDepth = %d, want default %d", c.QueueDepth, DefaultQueueDepth)
	}
	if c.TenantConcurrency != DefaultTenantConcurrency {
		t.Errorf("negative TenantConcurrency = %d, want default %d", c.TenantConcurrency, DefaultTenantConcurrency)
	}
	if c.TenantMemoryBytes != 0 {
		t.Errorf("negative TenantMemoryBytes = %d, want 0", c.TenantMemoryBytes)
	}
	if c.QueueTimeout != DefaultQueueTimeout {
		t.Errorf("negative QueueTimeout = %v, want default %v", c.QueueTimeout, DefaultQueueTimeout)
	}
	if c.MaxDispatch <= 0 {
		t.Errorf("negative MaxDispatch not clamped: %d", c.MaxDispatch)
	}
	// Non-positive weights clamp to 1 (kept, not dropped); explicit
	// positive weights survive.
	want := map[string]int{"a": 1, "b": 1, "c": 2}
	if !reflect.DeepEqual(c.Weights, want) {
		t.Errorf("Weights = %v, want %v", c.Weights, want)
	}
}

func TestConfigNormalizePreservesExplicit(t *testing.T) {
	in := Config{
		QueueDepth:        17,
		TenantConcurrency: 3,
		TenantMemoryBytes: 4 << 20,
		QueueTimeout:      250 * time.Millisecond,
		DefaultTenant:     "acme",
		Weights:           map[string]int{"acme": 2, "zeta": 5},
		MaxDispatch:       6,
	}
	got := in.normalize()
	if !reflect.DeepEqual(got, in) {
		t.Errorf("normalize changed explicit config:\n got %+v\nwant %+v", got, in)
	}
}

func TestConfigNormalizeIdempotent(t *testing.T) {
	once := Config{Weights: map[string]int{"a": 0}}.normalize()
	twice := once.normalize()
	if !reflect.DeepEqual(once, twice) {
		t.Errorf("normalize not idempotent:\n once %+v\ntwice %+v", once, twice)
	}
}

func TestConfigWeight(t *testing.T) {
	c := Config{Weights: map[string]int{"heavy": 3}}.normalize()
	if got := c.weight("heavy"); got != 3 {
		t.Errorf("weight(heavy) = %d, want 3", got)
	}
	if got := c.weight("unknown"); got != 1 {
		t.Errorf("weight(unknown) = %d, want 1", got)
	}
}
