package service

import (
	"runtime"
	"time"
)

// Default values for Config fields left zero; see normalize.
const (
	// DefaultQueueDepth bounds the global admission queue.
	DefaultQueueDepth = 256
	// DefaultTenantConcurrency is the per-tenant concurrent-query cap.
	DefaultTenantConcurrency = 4
	// DefaultQueueTimeout bounds how long an admitted query may wait in the
	// queue before it fails with ErrQueueTimeout.
	DefaultQueueTimeout = 30 * time.Second
	// DefaultTenant is the tenant name used for connections that never
	// authenticate one.
	DefaultTenant = "default"
)

// Config tunes the multi-tenant query service. The zero value is usable:
// normalize resolves every defaulted field, mirroring engine.Config.
type Config struct {
	// QueueDepth bounds the number of queries waiting for dispatch across
	// all tenants combined; submissions beyond it fail fast with
	// ErrQueueFull (the only load-shedding the service does — everything
	// under the bound waits rather than fails). <= 0 means
	// DefaultQueueDepth.
	QueueDepth int
	// TenantConcurrency caps how many of one tenant's queries may execute
	// simultaneously; further queries from that tenant queue behind them.
	// <= 0 means DefaultTenantConcurrency.
	TenantConcurrency int
	// TenantMemoryBytes caps one tenant's combined tracked memory
	// (memctl.Pool.TenantUsed): a tenant at its cap has its next query held
	// in the queue until the tenant's own releases bring it back under,
	// instead of letting one tenant walk the whole engine pool into
	// ErrMemoryExceeded. <= 0 means no per-tenant cap (the engine-wide
	// limit still applies).
	TenantMemoryBytes int64
	// QueueTimeout bounds queue wait: a query still undispatched after this
	// long fails with ErrQueueTimeout, and a query whose own context
	// carries an earlier deadline uses that instead. <= 0 means
	// DefaultQueueTimeout.
	QueueTimeout time.Duration
	// DefaultTenant names the tenant attributed to connections that never
	// declare one. Empty means "default".
	DefaultTenant string
	// Weights gives per-tenant weighted-round-robin dispatch shares; a
	// tenant absent from the map (or mapped to <= 0) gets weight 1.
	// Normalization clamps non-positive entries rather than dropping them,
	// so a config listing every tenant stays inspectable.
	Weights map[string]int
	// MaxDispatch caps how many queries one dispatcher round releases into
	// the engine together (they are announced to the shared-execution
	// admission window as one arrival round, so this is also the service's
	// fusion batch bound). <= 0 means the engine's parallelism, floored at
	// two so cross-connection fusion stays possible.
	MaxDispatch int
}

// normalize resolves every defaulted Config field to its effective value,
// the single place service-level defaults are decided (mirrors
// engine.Config.normalize).
func (c Config) normalize() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = DefaultQueueDepth
	}
	if c.TenantConcurrency <= 0 {
		c.TenantConcurrency = DefaultTenantConcurrency
	}
	if c.TenantMemoryBytes < 0 {
		c.TenantMemoryBytes = 0 // no per-tenant cap
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = DefaultQueueTimeout
	}
	if c.DefaultTenant == "" {
		c.DefaultTenant = DefaultTenant
	}
	if c.Weights != nil {
		w := make(map[string]int, len(c.Weights))
		for tenant, weight := range c.Weights {
			if weight <= 0 {
				weight = 1
			}
			w[tenant] = weight
		}
		c.Weights = w
	}
	if c.MaxDispatch <= 0 {
		c.MaxDispatch = runtime.GOMAXPROCS(0)
		if c.MaxDispatch < 2 {
			c.MaxDispatch = 2
		}
	}
	return c
}

// weight reports tenant's effective WRR share.
func (c Config) weight(tenant string) int {
	if w, ok := c.Weights[tenant]; ok && w > 0 {
		return w
	}
	return 1
}
