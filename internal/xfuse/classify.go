package xfuse

import (
	"repro/internal/expr"
	"repro/internal/logical"
)

// Shared execution admits exactly the plan shapes whose per-client logical
// metrics are derivable in closed form from the fused run — the contract is
// that a batched client's Metrics (rows, bytes) are byte-identical to a
// solo run, so anything we cannot attribute exactly bypasses the window and
// runs alone. Two classes qualify:
//
//   - classSFP: a Filter/Project stack over a Scan with at most one Filter
//     (the push pipeline's fusible chain). The client's rows are the fused
//     chain's output filtered by its compensating predicate, and the solo
//     RowsProcessed charge schedule depends only on the chain's stage
//     layout and the survivor count.
//
//   - classScalar: Project* over a scalar (no GROUP BY keys) aggregation
//     over such a chain. The paper's §III.E mask composition merges the
//     clients' aggregates into one fused GroupBy whose FILTER masks carry
//     the compensations, and a per-client COUNT(*) over its compensation
//     recovers the solo survivor count exactly.
//
// Everything else — LIMIT, ORDER BY, joins, grouped aggregation, window
// functions, DISTINCT (a MarkDistinct operator) — returns ok=false and the
// query never waits on an admission window.

type planClass int

const (
	classSFP planClass = iota
	classScalar
)

// classified is an eligible plan decomposed for fold-fusion.
type classified struct {
	class planClass
	// chainRoot is the fusible chain: the whole plan for classSFP, the
	// GroupBy input for classScalar.
	chainRoot logical.Operator
	// gb and tops (the Project stack above it, root-first) are set for
	// classScalar only.
	gb   *logical.GroupBy
	tops []*logical.Project
	// outCols is the plan's output schema.
	outCols []*expr.Column
}

// classify decides eligibility. ok=false means bypass: run solo, no window.
func classify(plan logical.Operator) (*classified, bool) {
	if chainEligible(plan) {
		return &classified{class: classSFP, chainRoot: plan, outCols: plan.Schema()}, true
	}
	var tops []*logical.Project
	cur := plan
	for {
		p, ok := cur.(*logical.Project)
		if !ok {
			break
		}
		tops = append(tops, p)
		cur = p.Input
	}
	if gb, ok := cur.(*logical.GroupBy); ok && gb.IsScalar() && chainEligible(gb.Input) {
		return &classified{
			class: classScalar, chainRoot: gb.Input,
			gb: gb, tops: tops, outCols: plan.Schema(),
		}, true
	}
	return nil, false
}

// chainEligible reports whether op is a Filter/Project stack over a Scan
// with at most one Filter — the shape whose solo charge schedule
// exec.ChainShape models exactly.
func chainEligible(op logical.Operator) bool {
	filters := 0
	for {
		switch o := op.(type) {
		case *logical.Scan:
			return true
		case *logical.Filter:
			filters++
			if filters > 1 {
				return false
			}
			op = o.Input
		case *logical.Project:
			op = o.Input
		default:
			return false
		}
	}
}

// chainShapeOK reports whether a fused chain is still executable as one
// chain (any Filter/Project stack over a Scan). Fusing two eligible chains
// always yields this shape; the check is the fold's safety net rather than
// a prediction.
func chainShapeOK(op logical.Operator) bool {
	for {
		switch o := op.(type) {
		case *logical.Scan:
			return true
		case *logical.Filter:
			op = o.Input
		case *logical.Project:
			op = o.Input
		default:
			return false
		}
	}
}

// trivialComp reports a compensation that admits every row.
func trivialComp(e expr.Expr) bool { return e == nil || expr.IsTrueLiteral(e) }

// compOrNil normalizes a compensation: nil for trivial.
func compOrNil(e expr.Expr) expr.Expr {
	if trivialComp(e) {
		return nil
	}
	return e
}

// schemaIDs collects an operator's output column IDs.
func schemaIDs(op logical.Operator) map[expr.ColumnID]bool {
	sch := op.Schema()
	ids := make(map[expr.ColumnID]bool, len(sch))
	for _, c := range sch {
		ids[c.ID] = true
	}
	return ids
}

// exprResolvable reports whether every column e references is in ids.
// nil expressions resolve trivially.
func exprResolvable(e expr.Expr, ids map[expr.ColumnID]bool) bool {
	if e == nil {
		return true
	}
	need := make(map[expr.ColumnID]bool)
	expr.CollectColumns(e, need)
	for id := range need {
		if !ids[id] {
			return false
		}
	}
	return true
}
