package xfuse

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

// sharedQueryText names a fused run for memory attribution and errors.
func sharedQueryText(clients int, firstSQL string) string {
	return fmt.Sprintf("[xfuse %d queries] %s", clients, firstSQL)
}

// stampMetrics rewrites a fused run's metrics into one member's as-if-solo
// view: logical counters (Storage, RowsProcessed, HashRows) become what the
// member's solo run would have charged, while the physical counters (Share,
// Pipeline, memory, MaskPrefixHits, Elapsed) keep telling the fused story,
// and SharedExec records how the query actually ran.
func stampMetrics(fused exec.Metrics, shape *exec.ChainShape, rowsProcessed, hashRows, batched, fusedPlans int64) exec.Metrics {
	m := fused
	m.Storage = shape.Storage
	m.RowsProcessed = rowsProcessed
	m.HashRows = hashRows
	m.SharedExec = exec.SharedExecMetrics{
		BatchedQueries: batched,
		FusedPlans:     fusedPlans,
		WindowWaits:    1,
	}
	return m
}

// runSFPGroup executes one fused Scan→Filter→Project chain for the group
// and demuxes its output: every member subscribes to the fused root with
// its compensating predicate and resolved output columns, and
// exec.RunShared routes each surviving row to the members whose predicates
// admit it (one mask-family pass for all members). Row order is the fused
// scan order, which Fuse preserves — identical to each member's solo order.
func (r *Runner) runSFPGroup(batched int64, g *group) {
	nm := len(g.members)
	layout := map[expr.ColumnID]int{}
	for i, c := range g.chain.Schema() {
		layout[c.ID] = i
	}
	subs := make([]exec.SharedSub, nm)
	for i := range g.members {
		cols := make([]int, len(g.outs[i]))
		for j, c := range g.outs[i] {
			pos, ok := layout[c.ID]
			if !ok {
				// Validated at fold time; a miss here means the fold was
				// unsound — fall everyone back rather than misroute.
				deliverSoloGroup(g, batched)
				return
			}
			cols[j] = pos
		}
		subs[i] = exec.SharedSub{Comp: g.comps[i], Cols: cols}
	}
	fres, perSub, err := exec.RunShared(g.chain, r.store, r.groupOptions(g), subs)
	if err != nil {
		deliverSoloGroup(g, batched)
		return
	}
	for i, e := range g.members {
		shape, ok, err := r.shapes.AnalyzeChain(e.cl.chainRoot, r.store)
		if err != nil || !ok {
			deliverSolo(e, batched)
			continue
		}
		rows := perSub[i]
		m := stampMetrics(fres.Metrics, shape,
			shape.SoloRowsProcessed(int64(len(rows))), 0, batched, int64(nm))
		offerResult(e, &m, rows)
		e.res = &exec.Result{Columns: e.cl.outCols, Rows: rows, Metrics: m}
		close(e.done)
	}
}

// runScalarGroup composes the members' scalar aggregations into one fused
// GroupBy over the fused chain (§III.E applied across queries): every
// member aggregate's FILTER mask is tightened with the member's
// compensating predicate, identical aggregates deduplicate, and a
// per-member COUNT(*) FILTER(comp) recovers the member's solo survivor
// count. The single fused output row is then replayed through each
// member's own Project stack (compiled by the ordinary executor, so
// expression semantics are bit-identical to solo).
func (r *Runner) runScalarGroup(batched int64, g *group) {
	nm := len(g.members)
	var merged []logical.AggAssign
	tailMaps := make([]expr.Mapping, nm)
	xfrowsCols := make([]*expr.Column, nm)
	for i, e := range g.members {
		tailMaps[i] = expr.Mapping{}
		for _, a := range e.cl.gb.Aggs {
			mapped := a.Agg
			if g.chainMaps[i] != nil {
				mapped = g.chainMaps[i].ApplyAgg(a.Agg)
			}
			mapped.Mask = compOrNil(expr.Simplify(expr.And(mapped.Mask, g.comps[i])))
			reused := false
			for _, ex := range merged {
				if expr.AggEqual(ex.Agg, mapped) {
					tailMaps[i].Add(a.Col.ID, ex.Col)
					reused = true
					break
				}
			}
			if !reused {
				// Keep the member's own column identity: its Project stack
				// above then resolves unmapped.
				merged = append(merged, logical.AggAssign{Col: a.Col, Agg: mapped})
			}
		}
		cnt := expr.AggCall{Fn: expr.AggCountStar, Mask: g.comps[i]}
		reused := false
		for _, ex := range merged {
			if expr.AggEqual(ex.Agg, cnt) {
				xfrowsCols[i] = ex.Col
				reused = true
				break
			}
		}
		if !reused {
			c := expr.NewColumn("$xfrows", cnt.ResultType())
			merged = append(merged, logical.AggAssign{Col: c, Agg: cnt})
			xfrowsCols[i] = c
		}
	}
	gbPlan := &logical.GroupBy{Input: g.chain, Aggs: merged}
	fres, err := exec.RunWith(gbPlan, r.store, r.groupOptions(g))
	if err != nil || len(fres.Rows) != 1 {
		deliverSoloGroup(g, batched)
		return
	}
	fusedSchema := gbPlan.Schema()
	pos := map[expr.ColumnID]int{}
	for i, c := range fusedSchema {
		pos[c.ID] = i
	}
	frow := fres.Rows[0]
	for i, e := range g.members {
		rows, ok := r.rebuildScalarResult(e.cl, tailMaps[i], fusedSchema, frow, pos)
		if !ok {
			deliverSolo(e, batched)
			continue
		}
		shape, chOK, err := r.shapes.AnalyzeChain(e.cl.chainRoot, r.store)
		if err != nil || !chOK {
			deliverSolo(e, batched)
			continue
		}
		survivors := frow[pos[xfrowsCols[i].ID]].I
		// The solo charge schedule past the chain: the aggregation charges
		// its input (the chain's survivors), and each Project above the
		// scalar GroupBy charges its single input row. HashRows counts the
		// one scalar group, created only when a row was consumed.
		rowsProcessed := shape.SoloRowsProcessed(survivors) + survivors + int64(len(e.cl.tops))
		var hashRows int64
		if survivors > 0 {
			hashRows = 1
		}
		m := stampMetrics(fres.Metrics, shape, rowsProcessed, hashRows, batched, int64(nm))
		offerResult(e, &m, rows)
		e.res = &exec.Result{Columns: e.cl.outCols, Rows: rows, Metrics: m}
		close(e.done)
	}
}

// rebuildScalarResult reconstructs one member's output row from the fused
// aggregation row. With no Project stack the member's aggregate columns are
// gathered directly; otherwise the fused row becomes a one-row Values leaf
// and the member's Projects (with deduplicated aggregate references
// remapped) execute over it through the ordinary executor — the same
// compiled-evaluator path a solo run uses, so computed expressions are
// bit-identical.
func (r *Runner) rebuildScalarResult(cl *classified, tail expr.Mapping, fusedSchema []*expr.Column, frow []types.Value, pos map[expr.ColumnID]int) ([]exec.Row, bool) {
	if len(cl.tops) == 0 {
		row := make(exec.Row, len(cl.outCols))
		for j, c := range cl.outCols {
			p, ok := pos[tail.Resolve(c).ID]
			if !ok {
				return nil, false
			}
			row[j] = frow[p]
		}
		return []exec.Row{row}, true
	}
	var cur logical.Operator = &logical.Values{Cols: fusedSchema, Rows: [][]types.Value{frow}}
	for i := len(cl.tops) - 1; i >= 0; i-- {
		t := cl.tops[i]
		assigns := make([]logical.Assignment, len(t.Cols))
		for j, a := range t.Cols {
			assigns[j] = logical.Assignment{Col: a.Col, E: tail.Apply(a.E)}
		}
		cur = &logical.Project{Input: cur, Cols: assigns}
	}
	res, err := exec.RunWith(cur, r.store, exec.Options{Parallelism: 1})
	if err != nil {
		return nil, false
	}
	return res.Rows, true
}
