package xfuse

import (
	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/logical"
)

// A group is a set of batch entries whose chains folded into one fused
// chain via repeated core.Fuse. The fold is left-associative: the current
// fused chain is always P1, so its columns keep their identity in the next
// fused plan (fuseProjects retains every P1 assignment, fuseScans maps P2
// columns onto P1's) — which is exactly what lets per-member compensations
// and output columns, resolved against an earlier chain, stay valid as the
// chain grows. Each fold is tentative: the candidate chain is validated
// (shape still a chain, every member's compensation and columns still
// resolvable) before committing, so a Fuse result we cannot route rows
// through simply rejects the member into another group.
type group struct {
	class planClass
	chain logical.Operator
	// members, and per member: comp (the accumulated compensating predicate
	// over the current chain schema selecting this member's rows; nil =
	// all), and for classSFP the member's output columns resolved into the
	// chain schema. For classScalar chainMap maps the member's original
	// chain columns to fused chain columns (nil = identity), consumed by
	// the aggregate composition at run time.
	members   []*entry
	comps     []expr.Expr
	outs      [][]*expr.Column
	chainMaps []expr.Mapping
}

// tryAdd attempts to fold e into g, returning false (g unchanged) when the
// plans do not fuse or the fused result fails validation.
func (g *group) tryAdd(e *entry) bool {
	if len(g.members) == 0 {
		g.chain = e.cl.chainRoot
		g.members = []*entry{e}
		g.comps = []expr.Expr{nil}
		g.chainMaps = []expr.Mapping{nil}
		if g.class == classSFP {
			g.outs = [][]*expr.Column{e.cl.outCols}
		} else {
			g.outs = [][]*expr.Column{nil}
		}
		return true
	}
	res, ok := core.Fuse(g.chain, e.cl.chainRoot)
	if !ok || !chainShapeOK(res.Plan) {
		return false
	}
	ids := schemaIDs(res.Plan)

	// Existing members: conjoin the fold's L (restores the previous chain)
	// onto each compensation; their columns kept identity.
	newComps := make([]expr.Expr, 0, len(g.comps)+1)
	for _, c := range g.comps {
		nc := compOrNil(expr.Simplify(expr.And(c, res.L)))
		if !exprResolvable(nc, ids) {
			return false
		}
		newComps = append(newComps, nc)
	}
	newComp := compOrNil(expr.Simplify(res.R))
	if !exprResolvable(newComp, ids) {
		return false
	}
	newComps = append(newComps, newComp)

	var newOuts [][]*expr.Column
	var newMap expr.Mapping
	switch g.class {
	case classSFP:
		newOuts = make([][]*expr.Column, 0, len(g.outs)+1)
		for _, cols := range g.outs {
			for _, c := range cols {
				if !ids[c.ID] {
					return false
				}
			}
			newOuts = append(newOuts, cols)
		}
		resolved := make([]*expr.Column, len(e.cl.outCols))
		for i, c := range e.cl.outCols {
			resolved[i] = res.M.Resolve(c)
			if !ids[resolved[i].ID] {
				return false
			}
		}
		newOuts = append(newOuts, resolved)
	case classScalar:
		// Validate that the new member's aggregates and every earlier
		// member's (already-mapped) aggregates still compile over the
		// candidate chain.
		for mi, m := range g.members {
			if !scalarMemberResolvable(m.cl.gb, g.chainMaps[mi], ids) {
				return false
			}
		}
		newMap = expr.Mapping{}
		for k, v := range res.M {
			newMap[k] = v
		}
		if !scalarMemberResolvable(e.cl.gb, newMap, ids) {
			return false
		}
		newOuts = append(g.outs, nil)
	}

	g.chain = res.Plan
	g.members = append(g.members, e)
	g.comps = newComps
	g.outs = newOuts
	g.chainMaps = append(g.chainMaps, newMap)
	return true
}

// scalarMemberResolvable checks that every aggregate argument and mask of
// gb, pushed through the member's chain mapping, references only fused
// chain columns.
func scalarMemberResolvable(gb *logical.GroupBy, m expr.Mapping, ids map[expr.ColumnID]bool) bool {
	for _, a := range gb.Aggs {
		mapped := a.Agg
		if m != nil {
			mapped = m.ApplyAgg(a.Agg)
		}
		if !exprResolvable(mapped.Arg, ids) || !exprResolvable(mapped.Mask, ids) {
			return false
		}
	}
	return true
}

// buildGroups greedily folds entries of one class: each entry joins the
// first existing group that accepts it, else opens its own. Greedy
// first-fit keeps the fold deterministic in arrival order.
func buildGroups(class planClass, entries []*entry) []*group {
	var groups []*group
	for _, e := range entries {
		placed := false
		for _, g := range groups {
			if g.tryAdd(e) {
				placed = true
				break
			}
		}
		if !placed {
			g := &group{class: class}
			g.tryAdd(e)
			groups = append(groups, g)
		}
	}
	return groups
}
