// Package xfuse implements cross-query shared execution: concurrently
// arriving queries are held in a short admission window, their optimized
// plans folded together with the paper's Fuse primitive, and one fused plan
// executed on behalf of the whole batch. Each client's rows are
// reconstructed from the fused output through its compensating predicate
// (the mask-family kernels evaluate all clients' predicates in one pass),
// and each client's logical metrics — bytes scanned, rows processed — are
// attributed as if its query had run alone, so batching is observable only
// through Metrics.SharedExec and the saved physical work.
//
// Shared execution never narrows coverage: a plan shape we cannot fuse or
// attribute exactly bypasses the window entirely, a window that expires
// with a single query falls back to solo execution, and any error in the
// fused run returns every member to the solo path (a genuine query error
// reproduces there).
package xfuse

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/exec"
	"repro/internal/logical"
	"repro/internal/rescache"
	"repro/internal/storage"
)

// Config tunes the admission window.
type Config struct {
	// Window is how long the first eligible query of a batch waits for
	// companions before the batch seals.
	Window time.Duration
	// MaxQueries seals a batch early once this many queries joined.
	MaxQueries int
}

// Runner batches eligible queries and executes fused plans. One Runner
// serves one engine instance; Submit is safe for concurrent use.
type Runner struct {
	store *storage.Store
	// opts is the engine's execution-option template; per-run fields
	// (QueryText, SharedClients) are overwritten per fused plan.
	opts exec.Options
	cfg  Config
	// shapes caches AnalyzeChain's partition-metadata replay per
	// (chain fingerprint, store epoch), so attributing a fused group's
	// members walks partition metadata once per distinct shape, not once
	// per member per run.
	shapes *exec.ShapeCache
	// rcache, when non-nil, is the store's semantic result cache: batch
	// members probe it before grouping and fused runs feed it afterwards
	// (see rescache.go in this package).
	rcache *rescache.Cache

	mu     sync.Mutex
	cur    *batch
	closed bool
	// expects are outstanding service-layer arrival announcements
	// (ExpectArrivals), oldest first; expectTotal is the sum of their
	// remaining counts. While expectTotal > 0 the window timer defers
	// sealing (bounded by one grace period), and the arrival that brings
	// the total to zero seals the current batch immediately — the service
	// has delivered its whole dispatch round into one window.
	expects     []*expectHandle
	expectTotal int
	// wg tracks batch-execution goroutines so Close can drain them.
	wg sync.WaitGroup
}

type expectHandle struct{ remaining int }

// NewRunner creates a runner over the engine's store and option template.
func NewRunner(store *storage.Store, opts exec.Options, cfg Config) *Runner {
	if cfg.MaxQueries < 1 {
		cfg.MaxQueries = 1
	}
	r := &Runner{store: store, opts: opts, cfg: cfg, shapes: exec.NewShapeCache()}
	if opts.ResultCacheBytes > 0 {
		r.rcache = rescache.For(store, opts.ResultCacheBytes)
	}
	return r
}

// ShapeCache exposes the runner's chain-shape cache (for tests).
func (r *Runner) ShapeCache() *exec.ShapeCache { return r.shapes }

// ExpectArrivals announces that n queries are about to be submitted — the
// service layer's dispatch round. While announcements are outstanding, the
// admission window holds open past its timer (bounded by one grace period)
// and seals the moment the last announced query arrives, so queries from
// different connections land in one batch deterministically instead of
// racing a wall-clock window. The returned func cancels whatever part of
// the announcement never arrived (prepare errors, ineligible statements
// that failed earlier); it is idempotent and must eventually be called.
//
// Announcements are a scheduling hint: they change when batches seal,
// never what a batch computes, so a mismatched count costs at most one
// grace period of latency.
func (r *Runner) ExpectArrivals(n int) (done func()) {
	if n <= 0 {
		return func() {}
	}
	h := &expectHandle{remaining: n}
	r.mu.Lock()
	r.expects = append(r.expects, h)
	r.expectTotal += n
	r.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			r.mu.Lock()
			r.expectTotal -= h.remaining
			h.remaining = 0
			sealNow := r.expectTotal == 0 && r.cur != nil
			b := r.cur
			if sealNow {
				r.sealLocked(b)
			}
			r.compactExpectsLocked()
			r.mu.Unlock()
		})
	}
}

// noteArrivalLocked consumes one outstanding expected arrival, reporting
// whether this arrival completed every announcement (the caller then seals
// the current batch once this query has joined it).
func (r *Runner) noteArrivalLocked() bool {
	if r.expectTotal == 0 {
		return false
	}
	r.expectTotal--
	for _, h := range r.expects {
		if h.remaining > 0 {
			h.remaining--
			break
		}
	}
	r.compactExpectsLocked()
	return r.expectTotal == 0
}

func (r *Runner) compactExpectsLocked() {
	live := r.expects[:0]
	for _, h := range r.expects {
		if h.remaining > 0 {
			live = append(live, h)
		}
	}
	r.expects = live
}

// Close seals any open window (releasing its waiters) and drains every
// batch-execution goroutine. Submissions after Close bypass batching and
// run solo; Close is idempotent.
func (r *Runner) Close() {
	r.mu.Lock()
	if !r.closed {
		r.closed = true
		if r.cur != nil {
			r.sealLocked(r.cur)
		}
	}
	r.mu.Unlock()
	r.wg.Wait()
}

// entry is one submitted query waiting on its batch.
type entry struct {
	sql  string
	plan logical.Operator
	cl   *classified

	// done is closed when the batch has decided this entry's fate; res,
	// stamp and err are valid after that. res == nil with err == nil means
	// "run solo, stamping stamp".
	done  chan struct{}
	res   *exec.Result
	stamp exec.SharedExecMetrics
	err   error
	// abandoned is set when the submitter's context was canceled; the
	// batch skips (or discards) this entry's work.
	abandoned atomic.Bool
	// rctx is this entry's result-cache transaction: begun at probe time
	// (before the fused run enumerates partitions) when the probe missed,
	// consumed by the post-run offer. nil when the cache is off, the plan
	// is ineligible, or the probe hit.
	rctx *rescache.Tx
}

// batch is one admission window's worth of eligible queries.
type batch struct {
	entries []*entry
	sealed  bool
	// graced marks a batch whose timer already fired once while arrival
	// announcements were outstanding; its rearmed timer seals
	// unconditionally.
	graced bool
	timer  *time.Timer
}

// Submit offers an optimized plan for shared execution. The three-way
// return mirrors the fallback contract:
//
//   - res != nil: the batch served this query; res is its complete result
//     with as-if-solo logical metrics and the SharedExec stamp set.
//   - res == nil, err == nil: run the plan solo. stamp is non-zero when
//     the query waited through a window (solo fallback) and zero when it
//     bypassed batching entirely (ineligible shape).
//   - err != nil: the submitter's ctx was canceled while waiting; no solo
//     run is owed.
//
// Submit blocks for at most one admission window plus the fused execution.
func (r *Runner) Submit(ctx context.Context, sql string, plan logical.Operator) (*exec.Result, exec.SharedExecMetrics, error) {
	var zero exec.SharedExecMetrics
	cl, ok := classify(plan)

	r.mu.Lock()
	roundDone := r.noteArrivalLocked()
	if !ok || r.closed {
		// Ineligible shapes still count as arrivals (the service announces
		// whole dispatch rounds without classifying), and the last arrival
		// seals the window even if it bypasses it.
		if roundDone && r.cur != nil {
			r.sealLocked(r.cur)
		}
		r.mu.Unlock()
		return nil, zero, nil
	}
	e := &entry{sql: sql, plan: plan, cl: cl, done: make(chan struct{})}
	b := r.cur
	if b == nil || b.sealed {
		b = &batch{}
		r.cur = b
		b.timer = time.AfterFunc(r.cfg.Window, func() { r.seal(b) })
	}
	b.entries = append(b.entries, e)
	if len(b.entries) >= r.cfg.MaxQueries || roundDone {
		r.sealLocked(b)
	}
	r.mu.Unlock()

	select {
	case <-e.done:
		return e.res, e.stamp, e.err
	case <-ctx.Done():
		e.abandoned.Store(true)
		return nil, zero, ctx.Err()
	}
}

func (r *Runner) seal(b *batch) {
	r.mu.Lock()
	// Outstanding arrival announcements hold the window open past its
	// timer, bounded by one grace period so announced-but-never-submitted
	// queries (prepare errors) cannot park a batch forever.
	if r.expectTotal > 0 && !b.sealed && !b.graced {
		b.graced = true
		b.timer = time.AfterFunc(4*r.cfg.Window, func() { r.seal(b) })
		r.mu.Unlock()
		return
	}
	r.sealLocked(b)
	r.mu.Unlock()
}

// sealLocked closes the batch to new arrivals and hands it to a dedicated
// execution goroutine. The goroutine — not a member — owns the run, so a
// member whose context cancels mid-flight never strands the rest of the
// batch. Queries arriving after the seal open a fresh batch.
func (r *Runner) sealLocked(b *batch) {
	if b.sealed {
		return
	}
	b.sealed = true
	if r.cur == b {
		r.cur = nil
	}
	if b.timer != nil {
		b.timer.Stop()
	}
	r.wg.Add(1)
	go r.execute(b)
}

// execute partitions the batch into fused groups and runs them. Members of
// single-entry groups (nothing fused with them) are released immediately to
// the solo path.
func (r *Runner) execute(b *batch) {
	defer r.wg.Done()
	var live []*entry
	for _, e := range b.entries {
		if !e.abandoned.Load() {
			live = append(live, e)
		}
	}
	n := int64(len(live))
	// Serve cached members before grouping: a hit needs no execution at
	// all, and excluding it keeps the fused plan to the members that do.
	live = r.probeCache(live, n)
	byClass := map[planClass][]*entry{}
	for _, e := range live {
		byClass[e.cl.class] = append(byClass[e.cl.class], e)
	}
	for class, entries := range byClass {
		for _, g := range buildGroups(class, entries) {
			if len(g.members) < 2 {
				deliverSolo(g.members[0], n)
				continue
			}
			r.wg.Add(1)
			g := g
			go func() {
				defer r.wg.Done()
				r.runGroup(n, g)
			}()
		}
	}
}

// deliverSolo releases an entry to the solo path with its window stamp.
func deliverSolo(e *entry, batched int64) {
	e.stamp = exec.SharedExecMetrics{BatchedQueries: batched, FusedPlans: 1, WindowWaits: 1}
	close(e.done)
}

// deliverSoloGroup falls a whole group back to solo execution — the
// fused-run error path. A genuine query error reproduces on the solo run;
// a shared-infrastructure error must not fail queries that would succeed
// alone.
func deliverSoloGroup(g *group, batched int64) {
	for _, e := range g.members {
		deliverSolo(e, batched)
	}
}

func (r *Runner) runGroup(batched int64, g *group) {
	switch g.class {
	case classSFP:
		r.runSFPGroup(batched, g)
	case classScalar:
		r.runScalarGroup(batched, g)
	}
}

// groupOptions builds the fused run's execution options: one shared memory
// attribution for the whole batch, query text naming it, and a worker
// budget scaled by the batch size — the fused plan is doing its members'
// combined work, so it gets the workers they would have used (capped at the
// hardware), not one member's share. Results are bit-identical at any
// parallelism, so the scaling is unobservable in rows and logical metrics.
func (r *Runner) groupOptions(g *group) exec.Options {
	opts := r.opts
	opts.SharedClients = len(g.members)
	opts.QueryText = sharedQueryText(len(g.members), g.members[0].sql)
	// A fused run serves several clients' combined work, so it gets its own
	// pool at the scaled width rather than drawing the engine-resident
	// pool's single-query share; the engine drains fused runs through
	// Runner.Close before closing its pool.
	opts.Workers = nil
	opts.Tenant = ""
	// The fused superset plan is not any member's sub-plan: caching it
	// would pollute the cache with compensating-predicate shapes no solo
	// query fingerprints to. Member-granularity reuse happens in the
	// runner instead (probeCache / offerResult).
	opts.ResultCacheBytes = 0
	if opts.Parallelism > 0 {
		scaled := opts.Parallelism * len(g.members)
		if max := runtime.GOMAXPROCS(0); scaled > max {
			scaled = max
		}
		if scaled > opts.Parallelism {
			opts.Parallelism = scaled
		}
	}
	return opts
}
