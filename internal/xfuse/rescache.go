package xfuse

import (
	"repro/internal/exec"
	"repro/internal/rescache"
	"repro/internal/types"
)

// This file joins shared execution to the semantic result cache
// (internal/rescache). Fused runs disable the executor-level cache hook
// (groupOptions zeroes ResultCacheBytes — a fused superset plan is not any
// member's sub-plan), and the runner instead interacts with the cache at
// member granularity: execute probes each batch member's whole plan before
// grouping, serving hits straight from cache with as-if-solo metrics, and
// the fused group runs offer each member's reconstructed result for
// admission afterwards, so a fused batch both consumes and feeds the same
// cache a solo run would.

// probeCache serves every live entry whose plan has a valid cached result
// and returns the members that still need execution. Misses keep their
// transaction (whose partition-set signature was snapshotted here, before
// the fused run enumerates partitions) on the entry for the offer after the
// group runs.
func (r *Runner) probeCache(live []*entry, batched int64) []*entry {
	if r.rcache == nil {
		return live
	}
	kept := live[:0]
	for _, e := range live {
		tx := r.rcache.Begin(e.plan, r.store)
		if tx == nil {
			kept = append(kept, e)
			continue
		}
		ent, ok := tx.Lookup()
		if !ok {
			e.rctx = tx
			kept = append(kept, e)
			continue
		}
		// Cached rows are shared and immutable; the client gets copies.
		rows := make([]exec.Row, len(ent.Rows))
		for i, row := range ent.Rows {
			rows[i] = append(exec.Row(nil), row...)
		}
		var m exec.Metrics
		m.Storage.BytesScanned = ent.Cost.BytesScanned
		m.Storage.RowsScanned = ent.Cost.RowsScanned
		m.RowsProcessed = ent.Cost.RowsProcessed
		m.HashRows = ent.Cost.HashRows
		m.MaskPrefixHits = ent.Cost.MaskPrefixHits
		m.ResultCache = exec.ResultCacheMetrics{Hits: 1, ServedBytes: ent.Bytes}
		m.SharedExec = exec.SharedExecMetrics{BatchedQueries: batched, FusedPlans: 1, WindowWaits: 1}
		e.res = &exec.Result{Columns: e.cl.outCols, Rows: rows, Metrics: m}
		close(e.done)
	}
	return kept
}

// offerResult proposes one member's fused-run output for cache admission
// and records the interaction (the probe's miss, any rejection or eviction)
// in the member's as-if-solo metrics. The offered cost is the member's
// stamped logical work, so a later hit replays exactly what a cold solo run
// would charge; rows are copied because cache entries must stay immutable
// while the member's result is handed to its client.
func offerResult(e *entry, m *exec.Metrics, rows []exec.Row) {
	if e.rctx == nil {
		return
	}
	m.ResultCache.Misses++
	cp := make([][]types.Value, len(rows))
	var bytes int64
	for i, row := range rows {
		cp[i] = append([]types.Value(nil), row...)
		bytes += rescache.RowBytes(cp[i])
	}
	cost := rescache.CostMetrics{
		BytesScanned:  m.Storage.BytesScanned,
		RowsScanned:   m.Storage.RowsScanned,
		RowsProcessed: m.RowsProcessed,
		HashRows:      m.HashRows,
	}
	admitted, evicted := e.rctx.Offer(cp, bytes, cost)
	if !admitted {
		m.ResultCache.AdmissionRejects++
	}
	m.ResultCache.EvictedBytes += evicted
}
