// Package types defines the SQL value model shared by every layer of the
// engine: the scalar kinds supported by the catalog, a NULL-aware Value
// representation, and the comparison/arithmetic semantics used by the
// expression evaluator.
//
// Values are represented by a single small struct (no interface boxing) so
// rows can be stored and copied as flat []Value slices by the columnar
// store and the streaming executor.
package types

import (
	"fmt"
	"strconv"
	"time"
)

// Kind enumerates the scalar data types supported by the engine.
type Kind uint8

const (
	// KindUnknown is the zero Kind; it appears only transiently during
	// binding (e.g. for a bare NULL literal before type inference).
	KindUnknown Kind = iota
	KindBool
	KindInt64
	KindFloat64
	KindString
	// KindDate stores days since the Unix epoch in the integer payload.
	KindDate
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBool:
		return "BOOLEAN"
	case KindInt64:
		return "BIGINT"
	case KindFloat64:
		return "DOUBLE"
	case KindString:
		return "VARCHAR"
	case KindDate:
		return "DATE"
	default:
		return "UNKNOWN"
	}
}

// IsNumeric reports whether the kind participates in arithmetic.
func (k Kind) IsNumeric() bool { return k == KindInt64 || k == KindFloat64 }

// FixedWidth returns the on-storage width in bytes for fixed-width kinds
// and 0 for variable-width kinds (strings). The storage layer uses this for
// bytes-scanned accounting.
func (k Kind) FixedWidth() int {
	switch k {
	case KindBool:
		return 1
	case KindInt64, KindFloat64:
		return 8
	case KindDate:
		return 4
	default:
		return 0
	}
}

// Value is a NULL-aware SQL scalar. The active payload field is determined
// by Kind: I holds BIGINT, BOOLEAN (0/1) and DATE (epoch days), F holds
// DOUBLE, S holds VARCHAR.
type Value struct {
	Kind Kind
	Null bool
	I    int64
	F    float64
	S    string
}

// Null values of each kind.
func NullOf(k Kind) Value { return Value{Kind: k, Null: true} }

// Constructors.
func Bool(b bool) Value {
	v := Value{Kind: KindBool}
	if b {
		v.I = 1
	}
	return v
}
func Int(i int64) Value     { return Value{Kind: KindInt64, I: i} }
func Float(f float64) Value { return Value{Kind: KindFloat64, F: f} }
func String(s string) Value { return Value{Kind: KindString, S: s} }
func Date(days int64) Value { return Value{Kind: KindDate, I: days} }
func Unknown() Value        { return Value{Kind: KindUnknown, Null: true} }

// DateFromString parses an ISO date (YYYY-MM-DD) into a DATE value.
func DateFromString(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Value{}, fmt.Errorf("invalid date %q: %w", s, err)
	}
	return Date(t.Unix() / 86400), nil
}

// AsBool returns the boolean payload; callers must check Null first.
func (v Value) AsBool() bool { return v.I != 0 }

// AsFloat converts any numeric payload to float64.
func (v Value) AsFloat() float64 {
	if v.Kind == KindFloat64 {
		return v.F
	}
	return float64(v.I)
}

// IsTrue reports whether the value is a non-NULL TRUE. This implements SQL
// three-valued filter semantics: NULL and FALSE both reject a row.
func (v Value) IsTrue() bool { return !v.Null && v.Kind == KindBool && v.I != 0 }

// ByteSize returns the accounting size of the value used for bytes-scanned
// metrics (variable-width kinds use payload length).
func (v Value) ByteSize() int {
	if w := v.Kind.FixedWidth(); w > 0 {
		return w
	}
	return len(v.S)
}

// String renders the value for plan output and result printing.
func (v Value) String() string {
	if v.Null {
		return "NULL"
	}
	switch v.Kind {
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindInt64:
		return strconv.FormatInt(v.I, 10)
	case KindFloat64:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case KindString:
		return "'" + v.S + "'"
	case KindDate:
		return time.Unix(v.I*86400, 0).UTC().Format("2006-01-02")
	default:
		return "?"
	}
}

// Equal reports deep equality including NULL-ness and kind. It is intended
// for tests and plan comparison, not SQL equality (use Compare for that).
func (v Value) Equal(o Value) bool {
	if v.Kind != o.Kind || v.Null != o.Null {
		return false
	}
	if v.Null {
		return true
	}
	switch v.Kind {
	case KindString:
		return v.S == o.S
	case KindFloat64:
		return v.F == o.F
	default:
		return v.I == o.I
	}
}

// Comparable reports whether two kinds can be compared (identical, or both
// numeric).
func Comparable(a, b Kind) bool {
	if a == b {
		return true
	}
	return a.IsNumeric() && b.IsNumeric()
}

// Compare implements SQL ordering for non-NULL values: -1, 0 or +1. Mixed
// int/float comparisons promote to float. Comparing incomparable kinds
// panics; the binder rejects such expressions before execution.
func Compare(a, b Value) int {
	if a.Kind != b.Kind && a.Kind.IsNumeric() && b.Kind.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.Kind != b.Kind {
		panic(fmt.Sprintf("types: cannot compare %s with %s", a.Kind, b.Kind))
	}
	switch a.Kind {
	case KindString:
		switch {
		case a.S < b.S:
			return -1
		case a.S > b.S:
			return 1
		default:
			return 0
		}
	case KindFloat64:
		switch {
		case a.F < b.F:
			return -1
		case a.F > b.F:
			return 1
		default:
			return 0
		}
	default:
		switch {
		case a.I < b.I:
			return -1
		case a.I > b.I:
			return 1
		default:
			return 0
		}
	}
}

// NumericResult returns the kind produced by arithmetic over two numeric
// kinds (float wins).
func NumericResult(a, b Kind) Kind {
	if a == KindFloat64 || b == KindFloat64 {
		return KindFloat64
	}
	return KindInt64
}
