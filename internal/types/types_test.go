package types

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindBool:    "BOOLEAN",
		KindInt64:   "BIGINT",
		KindFloat64: "DOUBLE",
		KindString:  "VARCHAR",
		KindDate:    "DATE",
		KindUnknown: "UNKNOWN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(1.5), "1.5"},
		{String("abc"), "'abc'"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{NullOf(KindInt64), "NULL"},
		{Date(0), "1970-01-01"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestDateFromString(t *testing.T) {
	v, err := DateFromString("2000-01-02")
	if err != nil {
		t.Fatal(err)
	}
	if v.Kind != KindDate {
		t.Fatalf("kind = %v", v.Kind)
	}
	if got := v.String(); got != "2000-01-02" {
		t.Errorf("round trip = %q", got)
	}
	if _, err := DateFromString("not-a-date"); err == nil {
		t.Error("expected error for invalid date")
	}
}

func TestIsTrue(t *testing.T) {
	if !Bool(true).IsTrue() {
		t.Error("true should be true")
	}
	if Bool(false).IsTrue() {
		t.Error("false should not be true")
	}
	if NullOf(KindBool).IsTrue() {
		t.Error("NULL should not be true")
	}
	if Int(1).IsTrue() {
		t.Error("non-boolean should not be true")
	}
}

func TestCompareNumericPromotion(t *testing.T) {
	if Compare(Int(2), Float(2.5)) != -1 {
		t.Error("2 < 2.5 failed")
	}
	if Compare(Float(3.0), Int(3)) != 0 {
		t.Error("3.0 == 3 failed")
	}
	if Compare(Int(5), Int(4)) != 1 {
		t.Error("5 > 4 failed")
	}
	if Compare(String("a"), String("b")) != -1 {
		t.Error("'a' < 'b' failed")
	}
}

func TestComparePanicsOnIncomparable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic comparing string and int")
		}
	}()
	Compare(String("a"), Int(1))
}

func TestEqual(t *testing.T) {
	if !Int(1).Equal(Int(1)) {
		t.Error("1 == 1")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("Equal must distinguish kinds")
	}
	if !NullOf(KindInt64).Equal(NullOf(KindInt64)) {
		t.Error("NULLs of same kind are Equal")
	}
	if NullOf(KindInt64).Equal(Int(0)) {
		t.Error("NULL != 0")
	}
}

func TestByteSize(t *testing.T) {
	if got := Int(1).ByteSize(); got != 8 {
		t.Errorf("int size = %d", got)
	}
	if got := String("abcd").ByteSize(); got != 4 {
		t.Errorf("string size = %d", got)
	}
	if got := Date(1).ByteSize(); got != 4 {
		t.Errorf("date size = %d", got)
	}
	if got := Bool(true).ByteSize(); got != 1 {
		t.Errorf("bool size = %d", got)
	}
}

// Property: Compare is antisymmetric and reflexive over int values.
func TestCompareProperties(t *testing.T) {
	anti := func(a, b int64) bool {
		return Compare(Int(a), Int(b)) == -Compare(Int(b), Int(a))
	}
	if err := quick.Check(anti, nil); err != nil {
		t.Error(err)
	}
	refl := func(a int64) bool { return Compare(Int(a), Int(a)) == 0 }
	if err := quick.Check(refl, nil); err != nil {
		t.Error(err)
	}
}

// Property: int/float comparison agrees with native float ordering.
func TestComparePromotionProperty(t *testing.T) {
	f := func(a int32, b float32) bool {
		got := Compare(Int(int64(a)), Float(float64(b)))
		af, bf := float64(a), float64(b)
		switch {
		case af < bf:
			return got == -1
		case af > bf:
			return got == 1
		default:
			return got == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNumericResult(t *testing.T) {
	if NumericResult(KindInt64, KindInt64) != KindInt64 {
		t.Error("int+int should be int")
	}
	if NumericResult(KindInt64, KindFloat64) != KindFloat64 {
		t.Error("int+float should be float")
	}
}
