package binder

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/sql"
)

// bindScalarSubquery plans a scalar subquery in expression position.
//
// Uncorrelated subqueries become EnforceSingleRow plans cross-joined into
// the current plan (the paper's "subquery removal", which sets up the
// JoinOnKeys scalar pattern for Q09/Q28/Q88).
//
// Correlated scalar-aggregate subqueries are decorrelated in the style of
// Galindo-Legaria & Joshi [20]: correlation equalities become grouping
// columns, and the grouped aggregate joins back to the outer query on them
// — producing the P1 ⨝ GroupBy(P2) shape that GroupByJoinToWindow rewrites
// into a window function (Q01/Q30).
func (ctx *coreCtx) bindScalarSubquery(stmt *sql.SelectStmt) (expr.Expr, error) {
	// Probe: bind with correlation tracking to classify the subquery.
	var rec []*expr.Column
	probeScope := &scope{parent: ctx.scope, correlated: &rec}
	probe, probeErr := ctx.b.bindSelect(stmt, probeScope, ctx.ctes)

	if probeErr == nil && len(rec) == 0 {
		// Uncorrelated: the probe result is the real plan.
		if len(probe.cols) != 1 {
			return nil, fmt.Errorf("binder: scalar subquery must return one column, got %d", len(probe.cols))
		}
		esr := &logical.EnforceSingleRow{Input: probe.plan}
		ctx.plan = &logical.Join{Kind: logical.CrossJoin, Left: ctx.plan, Right: esr}
		return expr.Ref(probe.cols[0]), nil
	}

	// Correlated (or the probe failed because outer references were
	// consumed oddly): decorrelate.
	return ctx.decorrelateScalarAgg(stmt)
}

// decorrelateScalarAgg handles SELECT <agg-expr> FROM ... WHERE
// <correlated equalities AND local predicates> with no GROUP BY.
func (ctx *coreCtx) decorrelateScalarAgg(stmt *sql.SelectStmt) (expr.Expr, error) {
	core, ok := stmt.Body.(*sql.SelectCore)
	if !ok {
		return nil, fmt.Errorf("binder: unsupported correlated subquery shape (set operation)")
	}
	if len(core.GroupBy) > 0 || core.Having != nil || core.Distinct ||
		len(stmt.OrderBy) > 0 || stmt.Limit != nil || len(core.Items) != 1 {
		return nil, fmt.Errorf("binder: unsupported correlated subquery shape")
	}
	ctes := ctx.ctes
	if len(stmt.With) > 0 {
		merged := make(map[string]*sql.SelectStmt, len(ctes)+len(stmt.With))
		for k, v := range ctes {
			merged[k] = v
		}
		for _, cte := range stmt.With {
			merged[cte.Name] = cte.Query
		}
		ctes = merged
	}

	var rec []*expr.Column
	sub := &coreCtx{
		b:      ctx.b,
		ctes:   ctes,
		scope:  &scope{parent: ctx.scope, correlated: &rec},
		aggMap: map[sql.Expr]*expr.Column{},
	}

	// FROM.
	var plan logical.Operator
	for _, ref := range core.From {
		p, err := sub.bindTableRef(ref)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			plan = p
		} else {
			plan = &logical.Join{Kind: logical.CrossJoin, Left: plan, Right: p}
		}
	}
	if plan == nil {
		return nil, fmt.Errorf("binder: correlated subquery requires a FROM clause")
	}
	sub.plan = plan

	// WHERE: separate correlation equalities from local predicates.
	localSet := logical.OutputSet(sub.plan)
	type corrPair struct{ outer, inner *expr.Column }
	var pairs []corrPair
	var local []expr.Expr
	if core.Where != nil {
		for _, conj := range splitAnd(core.Where) {
			before := len(rec)
			e, err := sub.bindExprNoSubquery(conj)
			if err != nil {
				return nil, err
			}
			if len(rec) == before {
				local = append(local, e)
				continue
			}
			bin, isBin := e.(*expr.Binary)
			if !isBin || bin.Op != expr.OpEq {
				return nil, fmt.Errorf("binder: correlated predicate %s must be a column equality", e)
			}
			lr, ok1 := bin.L.(*expr.ColumnRef)
			rr, ok2 := bin.R.(*expr.ColumnRef)
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("binder: correlated predicate %s must compare plain columns", e)
			}
			outerCol, innerCol := lr.Col, rr.Col
			if localSet[outerCol.ID] {
				outerCol, innerCol = innerCol, outerCol
			}
			if localSet[outerCol.ID] || !localSet[innerCol.ID] {
				return nil, fmt.Errorf("binder: correlated predicate %s must link one outer and one inner column", e)
			}
			pairs = append(pairs, corrPair{outer: outerCol, inner: innerCol})
		}
	}
	if len(pairs) == 0 {
		return nil, fmt.Errorf("binder: could not decorrelate subquery (no correlation equalities)")
	}
	if len(local) > 0 {
		sub.plan = logical.NewFilter(sub.plan, expr.And(local...))
	}

	// Aggregates: group by the correlation columns.
	aggCalls := collectAggregates(core)
	if len(aggCalls) == 0 {
		return nil, fmt.Errorf("binder: correlated subquery must compute an aggregate")
	}
	var keys []*expr.Column
	seen := map[expr.ColumnID]bool{}
	for _, p := range pairs {
		if !seen[p.inner.ID] {
			keys = append(keys, p.inner)
			seen[p.inner.ID] = true
		}
	}
	var aggs []logical.AggAssign
	for _, call := range aggCalls {
		agg, err := sub.bindAggCall(call)
		if err != nil {
			return nil, err
		}
		reused := false
		for _, existing := range aggs {
			if expr.AggEqual(existing.Agg, agg) {
				sub.aggMap[call] = existing.Col
				reused = true
				break
			}
		}
		if !reused {
			col := expr.NewColumn(call.Name, agg.ResultType())
			aggs = append(aggs, logical.AggAssign{Col: col, Agg: agg})
			sub.aggMap[call] = col
		}
	}
	gb := &logical.GroupBy{Input: sub.plan, Keys: keys, Aggs: aggs}
	sub.plan = gb

	// Bind the output expression (over aggregates) and project it together
	// with the grouping keys for the join.
	valExpr, err := sub.bindExprNoSubquery(core.Items[0].Expr)
	if err != nil {
		return nil, err
	}
	valAssign := logical.Assign("$scalar", valExpr)
	proj := &logical.Project{Input: gb, Cols: []logical.Assignment{valAssign}}
	for _, k := range keys {
		proj.Cols = append(proj.Cols, logical.Assignment{Col: k, E: expr.Ref(k)})
	}

	// Join back to the outer plan on the correlation columns.
	var conds []expr.Expr
	for _, p := range pairs {
		conds = append(conds, expr.Eq(expr.Ref(p.outer), expr.Ref(p.inner)))
	}
	ctx.plan = &logical.Join{
		Kind:  logical.InnerJoin,
		Left:  ctx.plan,
		Right: proj,
		Cond:  expr.And(conds...),
	}
	return expr.Ref(valAssign.Col), nil
}
