package binder

import (
	"strings"
	"testing"

	"repro/internal/logical"
)

func TestBindSimpleCaseOperand(t *testing.T) {
	// Simple CASE (with operand) desugars to searched CASE.
	plan, _ := mustBind(t, `
		SELECT CASE s_store WHEN 1 THEN 'one' WHEN 2 THEN 'two' ELSE 'many' END AS label
		FROM sales`)
	if !strings.Contains(logical.Format(plan), "CASE WHEN") {
		t.Errorf("simple case not desugared:\n%s", logical.Format(plan))
	}
}

func TestBindCoalesceAndLike(t *testing.T) {
	mustBind(t, `SELECT COALESCE(s_item, 0) AS it FROM sales WHERE 'abc' LIKE 'a%'`)
	mustBind(t, `SELECT s_item FROM sales, item WHERE i_brand NOT LIKE '%x%' AND s_item = i_item`)
}

func TestBindNotBetween(t *testing.T) {
	plan, _ := mustBind(t, `SELECT s_item FROM sales WHERE s_qty NOT BETWEEN 3 AND 7`)
	txt := logical.Format(plan)
	if !strings.Contains(txt, "<") && !strings.Contains(txt, ">") {
		t.Errorf("NOT BETWEEN should produce comparisons:\n%s", txt)
	}
}

func TestBindNestedCTEs(t *testing.T) {
	// A CTE referencing an earlier CTE.
	plan, _ := mustBind(t, `
		WITH base AS (SELECT s_store, s_price FROM sales WHERE s_qty > 1),
		     agg AS (SELECT s_store, SUM(s_price) AS rev FROM base GROUP BY s_store)
		SELECT s_store FROM agg WHERE rev > 10`)
	if logical.CountScansOf(plan, "sales") != 1 {
		t.Errorf("nested CTEs should inline to one scan:\n%s", logical.Format(plan))
	}
}

func TestBindCTEShadowing(t *testing.T) {
	// An inner WITH shadows the outer CTE of the same name.
	plan, _ := mustBind(t, `
		WITH c AS (SELECT s_item FROM sales)
		SELECT * FROM (
			WITH c AS (SELECT i_item FROM item)
			SELECT i_item FROM c) x`)
	if logical.CountScansOf(plan, "item") != 1 || logical.CountScansOf(plan, "sales") != 0 {
		t.Errorf("inner CTE must shadow outer:\n%s", logical.Format(plan))
	}
}

func TestBindUnionNested(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_item FROM sales
		UNION ALL
		(SELECT i_item FROM item UNION ALL SELECT st_store FROM store)`)
	unions := 0
	logical.Walk(plan, func(op logical.Operator) bool {
		if _, ok := op.(*logical.UnionAll); ok {
			unions++
		}
		return true
	})
	if unions < 1 {
		t.Errorf("nested unions missing:\n%s", logical.Format(plan))
	}
}

func TestBindGroupByExpression(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_qty * 2 AS dbl, COUNT(*) AS c FROM sales GROUP BY s_qty * 2 ORDER BY dbl`)
	var gb *logical.GroupBy
	logical.Walk(plan, func(op logical.Operator) bool {
		if g, ok := op.(*logical.GroupBy); ok {
			gb = g
		}
		return true
	})
	if gb == nil || len(gb.Keys) != 1 {
		t.Fatalf("expression group-by wrong:\n%s", logical.Format(plan))
	}
}

func TestBindHavingUsesAggregates(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_store FROM sales GROUP BY s_store HAVING SUM(s_price) > 5 AND COUNT(*) > 1`)
	// HAVING must become a filter above the group-by.
	found := false
	logical.Walk(plan, func(op logical.Operator) bool {
		if f, ok := op.(*logical.Filter); ok {
			if _, isGB := f.Input.(*logical.GroupBy); isGB {
				found = true
			}
		}
		return true
	})
	if !found {
		t.Errorf("HAVING filter missing:\n%s", logical.Format(plan))
	}
}

func TestBindWindowStarExposure(t *testing.T) {
	_, names := mustBind(t, `
		SELECT *, AVG(s_price) OVER (PARTITION BY s_store) AS avg_p FROM sales`)
	foundAvg := false
	for _, n := range names {
		if n == "avg_p" {
			foundAvg = true
		}
	}
	if !foundAvg || len(names) != 6 {
		t.Errorf("names = %v", names)
	}
}

func TestBindMoreErrors(t *testing.T) {
	mustFail(t, `SELECT s_item FROM sales WHERE EXISTS (SELECT 1 FROM item)`, "EXISTS")
	mustFail(t, `SELECT SUM(s_price) FROM sales GROUP BY SUM(s_price)`, "")
	mustFail(t, `SELECT s_item FROM (SELECT s_item FROM sales)`, "alias")
	mustFail(t, `SELECT x FROM (VALUES (1), (2, 3)) t(x)`, "uneven")
	mustFail(t, `SELECT x FROM (VALUES (s_item)) t(x)`, "")
	mustFail(t, `SELECT x FROM (VALUES (1)) t(x, y)`, "")
	mustFail(t, `SELECT RANK() OVER (PARTITION BY s_item) FROM sales`, "")
	mustFail(t, `SELECT SUM(s_price, s_qty) FROM sales`, "one argument")
	mustFail(t, `SELECT AVG(*) FROM sales`, "")
	mustFail(t, `SELECT nope(s_item) FROM sales`, "unknown function")
	mustFail(t, `SELECT s_item FROM sales ORDER BY nope`, "")
	mustFail(t, `SELECT t.s_item.x FROM sales t`, "")
}

func TestBindLeftJoin(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_item, i_brand FROM sales LEFT JOIN item ON s_item = i_item`)
	var lj *logical.Join
	logical.Walk(plan, func(op logical.Operator) bool {
		if j, ok := op.(*logical.Join); ok && j.Kind == logical.LeftJoin {
			lj = j
		}
		return true
	})
	if lj == nil {
		t.Fatalf("left join missing:\n%s", logical.Format(plan))
	}
}

func TestBindCrossJoinExplicit(t *testing.T) {
	plan, _ := mustBind(t, `SELECT s_item FROM sales CROSS JOIN item`)
	var cj *logical.Join
	logical.Walk(plan, func(op logical.Operator) bool {
		if j, ok := op.(*logical.Join); ok && j.Kind == logical.CrossJoin {
			cj = j
		}
		return true
	})
	if cj == nil {
		t.Fatalf("cross join missing:\n%s", logical.Format(plan))
	}
}

func TestBindSelectWithoutFrom(t *testing.T) {
	plan, names := mustBind(t, `SELECT 1 + 2 AS three, 'x' AS s`)
	if len(names) != 2 {
		t.Fatalf("names = %v", names)
	}
	if logical.CountOperators(plan) < 2 {
		t.Errorf("plan too small:\n%s", logical.Format(plan))
	}
}

func TestBindDateLiteral(t *testing.T) {
	mustBind(t, `SELECT s_item FROM sales WHERE s_date = 10957`)
	_, _, err := New(testCatalog()).BindSQL(`SELECT DATE 'not-a-date' AS d`)
	if err == nil {
		t.Error("bad date literal accepted")
	}
}
