package binder

import "repro/internal/sql"

// astEqual reports structural equality of two expression ASTs. It is used
// to match SELECT-list expressions against GROUP BY expressions (SQL's
// "grouped by the same expression" rule) before name resolution, since
// after aggregation the expression's inner columns are out of scope.
func astEqual(a, b sql.Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *sql.Name:
		y, ok := b.(*sql.Name)
		if !ok || len(x.Parts) != len(y.Parts) {
			return false
		}
		// Match on the unqualified column name: t.c and c resolve to the
		// same column whenever the query is unambiguous (which binding
		// enforces separately).
		return x.Parts[len(x.Parts)-1] == y.Parts[len(y.Parts)-1]
	case *sql.NumberLit:
		y, ok := b.(*sql.NumberLit)
		return ok && x.Text == y.Text
	case *sql.StringLit:
		y, ok := b.(*sql.StringLit)
		return ok && x.V == y.V
	case *sql.BoolLit:
		y, ok := b.(*sql.BoolLit)
		return ok && x.V == y.V
	case *sql.NullLit:
		_, ok := b.(*sql.NullLit)
		return ok
	case *sql.DateLit:
		y, ok := b.(*sql.DateLit)
		return ok && x.V == y.V
	case *sql.BinaryExpr:
		y, ok := b.(*sql.BinaryExpr)
		return ok && x.Op == y.Op && astEqual(x.L, y.L) && astEqual(x.R, y.R)
	case *sql.NotExpr:
		y, ok := b.(*sql.NotExpr)
		return ok && astEqual(x.E, y.E)
	case *sql.IsNullExpr:
		y, ok := b.(*sql.IsNullExpr)
		return ok && x.Neg == y.Neg && astEqual(x.E, y.E)
	case *sql.BetweenExpr:
		y, ok := b.(*sql.BetweenExpr)
		return ok && x.Neg == y.Neg && astEqual(x.E, y.E) && astEqual(x.Lo, y.Lo) && astEqual(x.Hi, y.Hi)
	case *sql.LikeExpr:
		y, ok := b.(*sql.LikeExpr)
		return ok && x.Neg == y.Neg && x.Pattern == y.Pattern && astEqual(x.E, y.E)
	case *sql.InExpr:
		y, ok := b.(*sql.InExpr)
		if !ok || x.Neg != y.Neg || len(x.List) != len(y.List) ||
			(x.Query == nil) != (y.Query == nil) || !astEqual(x.E, y.E) {
			return false
		}
		if x.Query != nil {
			return false // subqueries never match structurally
		}
		for i := range x.List {
			if !astEqual(x.List[i], y.List[i]) {
				return false
			}
		}
		return true
	case *sql.CaseExpr:
		y, ok := b.(*sql.CaseExpr)
		if !ok || len(x.Whens) != len(y.Whens) || !astEqual(x.Operand, y.Operand) || !astEqual(x.Else, y.Else) {
			return false
		}
		for i := range x.Whens {
			if !astEqual(x.Whens[i].Cond, y.Whens[i].Cond) || !astEqual(x.Whens[i].Then, y.Whens[i].Then) {
				return false
			}
		}
		return true
	case *sql.FuncCall:
		y, ok := b.(*sql.FuncCall)
		if !ok || x.Name != y.Name || x.Star != y.Star || x.Distinct != y.Distinct ||
			len(x.Args) != len(y.Args) || !astEqual(x.Filter, y.Filter) {
			return false
		}
		for i := range x.Args {
			if !astEqual(x.Args[i], y.Args[i]) {
				return false
			}
		}
		// Window specs never participate in GROUP BY matching.
		return x.Over == nil && y.Over == nil
	default:
		return false
	}
}
