package binder

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/logical"
	"repro/internal/types"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "s_item", Type: types.KindInt64},
			{Name: "s_store", Type: types.KindInt64},
			{Name: "s_qty", Type: types.KindInt64},
			{Name: "s_price", Type: types.KindFloat64},
			{Name: "s_date", Type: types.KindInt64},
		},
		PartitionColumn: "s_date",
	})
	cat.MustAdd(&catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
			{Name: "i_size", Type: types.KindString},
		},
	})
	cat.MustAdd(&catalog.Table{
		Name: "store",
		Columns: []catalog.Column{
			{Name: "st_store", Type: types.KindInt64},
			{Name: "st_name", Type: types.KindString},
		},
	})
	return cat
}

func mustBind(t *testing.T, query string) (logical.Operator, []string) {
	t.Helper()
	b := New(testCatalog())
	plan, names, err := b.BindSQL(query)
	if err != nil {
		t.Fatalf("bind %q failed: %v", query, err)
	}
	if err := logical.Validate(plan); err != nil {
		t.Fatalf("bound plan invalid: %v\n%s", err, logical.Format(plan))
	}
	return plan, names
}

func mustFail(t *testing.T, query, wantSubstr string) {
	t.Helper()
	b := New(testCatalog())
	_, _, err := b.BindSQL(query)
	if err == nil {
		t.Fatalf("bind %q should fail", query)
	}
	if wantSubstr != "" && !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("bind %q error %q does not mention %q", query, err, wantSubstr)
	}
}

func TestBindSimpleSelect(t *testing.T) {
	plan, names := mustBind(t, "SELECT s_item, s_qty * 2 AS dbl FROM sales WHERE s_qty > 3")
	if len(names) != 2 || names[0] != "s_item" || names[1] != "dbl" {
		t.Errorf("names = %v", names)
	}
	if logical.CountScansOf(plan, "sales") != 1 {
		t.Error("expected one scan")
	}
}

func TestBindStar(t *testing.T) {
	plan, names := mustBind(t, "SELECT * FROM item")
	if len(names) != 3 {
		t.Errorf("star expansion = %v", names)
	}
	_, qualifiedNames := mustBind(t, "SELECT i.* FROM item i, store s")
	if len(qualifiedNames) != 3 {
		t.Errorf("qualified star = %v", qualifiedNames)
	}
	_ = plan
}

func TestBindJoinAndQualifiedNames(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT st.st_name, s.s_qty
		FROM sales s JOIN store st ON s.s_store = st.st_store
		WHERE st.st_name = 'x'`)
	joins := 0
	logical.Walk(plan, func(op logical.Operator) bool {
		if j, ok := op.(*logical.Join); ok && j.Kind == logical.InnerJoin {
			joins++
		}
		return true
	})
	if joins != 1 {
		t.Errorf("inner joins = %d", joins)
	}
}

func TestBindGroupByWithAggregates(t *testing.T) {
	plan, names := mustBind(t, `
		SELECT s_store, SUM(s_price) AS revenue, COUNT(*) AS cnt
		FROM sales GROUP BY s_store HAVING COUNT(*) > 1`)
	if names[1] != "revenue" {
		t.Errorf("names = %v", names)
	}
	var gb *logical.GroupBy
	logical.Walk(plan, func(op logical.Operator) bool {
		if g, ok := op.(*logical.GroupBy); ok {
			gb = g
		}
		return true
	})
	if gb == nil || len(gb.Keys) != 1 || len(gb.Aggs) != 2 {
		t.Fatalf("groupby shape wrong:\n%s", logical.Format(plan))
	}
}

func TestBindAggregateWithFilterMask(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT COUNT(*) FILTER (WHERE s_qty > 5) AS big FROM sales`)
	var gb *logical.GroupBy
	logical.Walk(plan, func(op logical.Operator) bool {
		if g, ok := op.(*logical.GroupBy); ok {
			gb = g
		}
		return true
	})
	if gb == nil || gb.Aggs[0].Agg.Mask == nil {
		t.Fatalf("FILTER mask not bound:\n%s", logical.Format(plan))
	}
}

func TestBindDistinctAggregate(t *testing.T) {
	plan, _ := mustBind(t, `SELECT COUNT(DISTINCT s_item) FROM sales`)
	var gb *logical.GroupBy
	logical.Walk(plan, func(op logical.Operator) bool {
		if g, ok := op.(*logical.GroupBy); ok {
			gb = g
		}
		return true
	})
	if gb == nil || !gb.Aggs[0].Agg.Distinct {
		t.Fatalf("distinct flag lost:\n%s", logical.Format(plan))
	}
}

func TestBindWindowFunction(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_item, AVG(s_price) OVER (PARTITION BY s_store) AS avg_p FROM sales`)
	hasWindow := false
	logical.Walk(plan, func(op logical.Operator) bool {
		if _, ok := op.(*logical.Window); ok {
			hasWindow = true
		}
		return true
	})
	if !hasWindow {
		t.Fatalf("no window operator:\n%s", logical.Format(plan))
	}
}

func TestBindCTEInlinedPerReference(t *testing.T) {
	plan, _ := mustBind(t, `
		WITH agg AS (SELECT s_store, SUM(s_price) AS rev FROM sales GROUP BY s_store)
		SELECT a1.s_store FROM agg a1, agg a2 WHERE a1.s_store = a2.s_store`)
	if got := logical.CountScansOf(plan, "sales"); got != 2 {
		t.Errorf("CTE must inline per reference: %d scans, want 2\n%s", got, logical.Format(plan))
	}
}

func TestBindUnionAll(t *testing.T) {
	plan, names := mustBind(t, `
		SELECT s_item FROM sales WHERE s_qty > 5
		UNION ALL
		SELECT i_item FROM item`)
	u, ok := plan.(*logical.UnionAll)
	if !ok {
		t.Fatalf("root should be union, got %T", plan)
	}
	if len(u.Inputs) != 2 || len(names) != 1 {
		t.Errorf("union shape wrong")
	}
}

func TestBindInSubqueryBecomesSemiJoin(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_qty FROM sales
		WHERE s_item IN (SELECT i_item FROM item WHERE i_brand = 'b')`)
	semis := 0
	logical.Walk(plan, func(op logical.Operator) bool {
		if j, ok := op.(*logical.Join); ok && j.Kind == logical.SemiJoin {
			semis++
		}
		return true
	})
	if semis != 1 {
		t.Fatalf("semi joins = %d:\n%s", semis, logical.Format(plan))
	}
}

func TestBindUncorrelatedScalarSubquery(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s_item FROM sales
		WHERE s_price > (SELECT AVG(s_price) FROM sales)`)
	esrs := 0
	logical.Walk(plan, func(op logical.Operator) bool {
		if _, ok := op.(*logical.EnforceSingleRow); ok {
			esrs++
		}
		return true
	})
	if esrs != 1 {
		t.Fatalf("ESR count = %d:\n%s", esrs, logical.Format(plan))
	}
}

func TestBindCorrelatedScalarSubqueryDecorrelates(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT s1.s_item FROM sales s1
		WHERE s1.s_price > (SELECT AVG(s2.s_price) * 1.2 FROM sales s2 WHERE s2.s_store = s1.s_store)`)
	// Expect: no ESR; a keyed GroupBy joined back (the decorrelated shape).
	var keyedGBs int
	logical.Walk(plan, func(op logical.Operator) bool {
		if g, ok := op.(*logical.GroupBy); ok && len(g.Keys) > 0 {
			keyedGBs++
		}
		if _, ok := op.(*logical.EnforceSingleRow); ok {
			t.Error("correlated subquery must not use EnforceSingleRow")
		}
		return true
	})
	if keyedGBs != 1 {
		t.Fatalf("decorrelated GroupBy count = %d:\n%s", keyedGBs, logical.Format(plan))
	}
}

func TestBindValuesTable(t *testing.T) {
	plan, names := mustBind(t, `SELECT tag FROM (VALUES (1), (2)) t(tag)`)
	if len(names) != 1 || names[0] != "tag" {
		t.Errorf("names = %v", names)
	}
	var v *logical.Values
	logical.Walk(plan, func(op logical.Operator) bool {
		if x, ok := op.(*logical.Values); ok {
			v = x
		}
		return true
	})
	if v == nil || len(v.Rows) != 2 {
		t.Fatalf("values node missing:\n%s", logical.Format(plan))
	}
}

func TestBindSelectDistinct(t *testing.T) {
	plan, _ := mustBind(t, `SELECT DISTINCT s_store FROM sales`)
	gb, ok := plan.(*logical.GroupBy)
	if !ok || len(gb.Keys) != 1 || len(gb.Aggs) != 0 {
		t.Fatalf("distinct should plan as keyed GroupBy:\n%s", logical.Format(plan))
	}
}

func TestBindCaseAndBetween(t *testing.T) {
	mustBind(t, `
		SELECT CASE WHEN s_qty BETWEEN 1 AND 5 THEN 'low' ELSE 'high' END AS bucket
		FROM sales`)
}

func TestBindOrderLimitOverAlias(t *testing.T) {
	plan, _ := mustBind(t, `SELECT s_item AS it FROM sales ORDER BY it DESC LIMIT 5`)
	if _, ok := plan.(*logical.Limit); !ok {
		t.Fatalf("root should be limit:\n%s", logical.Format(plan))
	}
}

func TestBindErrors(t *testing.T) {
	mustFail(t, "SELECT nope FROM sales", "unknown column")
	mustFail(t, "SELECT s_item FROM nope", "unknown table")
	mustFail(t, "SELECT s_item FROM sales, item WHERE i_item = s_item AND s_qty IN (SELECT i_item FROM item) OR TRUE", "")
	mustFail(t, "SELECT i_item FROM item i1, item i2", "ambiguous")
	mustFail(t, "SELECT s_item FROM sales UNION ALL SELECT i_item, i_brand FROM item", "columns")
	mustFail(t, "SELECT (SELECT i_item, i_brand FROM item) FROM sales", "")
	mustFail(t, "SELECT s_item FROM sales WHERE s_item NOT IN (SELECT i_item FROM item)", "NOT IN")
}

func TestBindNestedDerivedTables(t *testing.T) {
	plan, _ := mustBind(t, `
		SELECT x.rev FROM (
			SELECT s_store, SUM(s_price) AS rev
			FROM (SELECT s_store, s_price FROM sales WHERE s_qty > 0) inner_t
			GROUP BY s_store
		) x WHERE x.rev > 10`)
	if logical.CountScansOf(plan, "sales") != 1 {
		t.Errorf("scan count wrong:\n%s", logical.Format(plan))
	}
}

func TestBindDuplicateOutputColumns(t *testing.T) {
	// SELECT a, a must not produce duplicate column IDs in the schema.
	plan, _ := mustBind(t, `SELECT s_item, s_item FROM sales`)
	seen := map[int32]bool{}
	for _, c := range plan.Schema() {
		if seen[int32(c.ID)] {
			t.Fatal("duplicate column IDs in output schema")
		}
		seen[int32(c.ID)] = true
	}
}
