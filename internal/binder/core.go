package binder

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/types"
)

// coreCtx tracks the evolving plan of one SELECT core while expressions are
// bound: subquery binding (semi joins, cross-joined scalar subqueries,
// decorrelated aggregates) splices new operators into ctx.plan.
type coreCtx struct {
	b      *Binder
	ctes   map[string]*sql.SelectStmt
	scope  *scope
	plan   logical.Operator
	aggMap map[sql.Expr]*expr.Column // aggregate/window AST node -> output column
	// groupExprs maps non-column GROUP BY expressions to their key columns
	// so equal SELECT-list expressions resolve to the grouping key.
	groupExprs []groupExpr
}

type groupExpr struct {
	ast sql.Expr
	col *expr.Column
}

func (b *Binder) bindCore(core *sql.SelectCore, outer *scope, ctes map[string]*sql.SelectStmt) (*bound, error) {
	ctx := &coreCtx{b: b, ctes: ctes, aggMap: map[sql.Expr]*expr.Column{}}
	ctx.scope = &scope{parent: outer}

	// FROM.
	var plan logical.Operator
	for _, ref := range core.From {
		p, err := ctx.bindTableRef(ref)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			plan = p
		} else {
			plan = &logical.Join{Kind: logical.CrossJoin, Left: plan, Right: p}
		}
	}
	if plan == nil {
		// SELECT without FROM: one empty row.
		plan = &logical.Values{Rows: [][]types.Value{{}}}
	}
	ctx.plan = plan

	// WHERE: split conjuncts; IN-subqueries become semi joins, everything
	// else becomes a filter (scalar subqueries splice joins as they bind).
	if core.Where != nil {
		var residual []expr.Expr
		for _, conj := range splitAnd(core.Where) {
			if in, ok := conj.(*sql.InExpr); ok && in.Query != nil {
				if err := ctx.bindInSubquery(in); err != nil {
					return nil, err
				}
				continue
			}
			e, err := ctx.bindExpr(conj)
			if err != nil {
				return nil, err
			}
			residual = append(residual, e)
		}
		if len(residual) > 0 {
			ctx.plan = logical.NewFilter(ctx.plan, expr.And(residual...))
		}
	}

	// Aggregation.
	aggCalls := collectAggregates(core)
	if len(core.GroupBy) > 0 || len(aggCalls) > 0 {
		if err := ctx.buildAggregation(core, aggCalls); err != nil {
			return nil, err
		}
	}

	// HAVING (aggregates were already collected and are resolvable through
	// aggMap).
	if core.Having != nil {
		e, err := ctx.bindExpr(core.Having)
		if err != nil {
			return nil, fmt.Errorf("binder: HAVING: %w", err)
		}
		ctx.plan = logical.NewFilter(ctx.plan, e)
	}

	// Window functions.
	if err := ctx.buildWindows(core); err != nil {
		return nil, err
	}

	// SELECT list.
	out, err := ctx.buildProjection(core)
	if err != nil {
		return nil, err
	}

	if core.Distinct {
		gb := &logical.GroupBy{Input: out.plan, Keys: out.cols}
		out.plan = gb
	}
	return out, nil
}

// bindTableRef binds one FROM item and registers it in the scope.
func (ctx *coreCtx) bindTableRef(ref sql.TableRef) (logical.Operator, error) {
	switch r := ref.(type) {
	case *sql.TableName:
		qualifier := r.Alias
		if qualifier == "" {
			qualifier = r.Name
		}
		// CTE reference: inline a fresh instance.
		if cte, ok := ctx.ctes[r.Name]; ok {
			sub, err := ctx.b.bindSelect(cte, nil, withoutName(ctx.ctes, r.Name))
			if err != nil {
				return nil, fmt.Errorf("binder: CTE %q: %w", r.Name, err)
			}
			ctx.scope.items = append(ctx.scope.items, scopeItem{qualifier: qualifier, cols: sub.cols, names: sub.names})
			return sub.plan, nil
		}
		tab, ok := ctx.b.cat.Table(r.Name)
		if !ok {
			return nil, fmt.Errorf("binder: unknown table %q", r.Name)
		}
		scan := logical.NewScan(tab)
		ctx.scope.items = append(ctx.scope.items, scopeItem{qualifier: qualifier, cols: scan.Cols, names: scan.ColNames})
		return scan, nil

	case *sql.Derived:
		if r.Alias == "" {
			return nil, fmt.Errorf("binder: derived table requires an alias")
		}
		sub, err := ctx.b.bindSelect(r.Query, nil, ctx.ctes)
		if err != nil {
			return nil, err
		}
		names := sub.names
		if len(r.ColAliases) > 0 {
			if len(r.ColAliases) != len(names) {
				return nil, fmt.Errorf("binder: %q declares %d column aliases for %d columns", r.Alias, len(r.ColAliases), len(names))
			}
			names = r.ColAliases
		}
		ctx.scope.items = append(ctx.scope.items, scopeItem{qualifier: r.Alias, cols: sub.cols, names: names})
		return sub.plan, nil

	case *sql.ValuesRef:
		if len(r.Rows) == 0 {
			return nil, fmt.Errorf("binder: empty VALUES")
		}
		width := len(r.Rows[0])
		rows := make([][]types.Value, len(r.Rows))
		for i, rw := range r.Rows {
			if len(rw) != width {
				return nil, fmt.Errorf("binder: VALUES rows have uneven widths")
			}
			rows[i] = make([]types.Value, width)
			for j, e := range rw {
				be, err := ctx.b.bindSimpleExpr(e, &scope{})
				if err != nil {
					return nil, err
				}
				v, ok := expr.EvalConst(be)
				if !ok {
					return nil, fmt.Errorf("binder: VALUES requires constant expressions")
				}
				rows[i][j] = v
			}
		}
		names := r.ColAliases
		if len(names) == 0 {
			names = make([]string, width)
			for j := range names {
				names[j] = "col" + strconv.Itoa(j+1)
			}
		}
		if len(names) != width {
			return nil, fmt.Errorf("binder: VALUES has %d columns but %d aliases", width, len(names))
		}
		v := &logical.Values{Rows: rows}
		for j := 0; j < width; j++ {
			v.Cols = append(v.Cols, expr.NewColumn(names[j], rows[0][j].Kind))
		}
		ctx.scope.items = append(ctx.scope.items, scopeItem{qualifier: r.Alias, cols: v.Cols, names: names})
		return v, nil

	case *sql.JoinRef:
		left, err := ctx.bindTableRef(r.Left)
		if err != nil {
			return nil, err
		}
		right, err := ctx.bindTableRef(r.Right)
		if err != nil {
			return nil, err
		}
		var kind logical.JoinKind
		switch r.Kind {
		case "INNER":
			kind = logical.InnerJoin
		case "LEFT":
			kind = logical.LeftJoin
		case "CROSS":
			kind = logical.CrossJoin
		default:
			return nil, fmt.Errorf("binder: unsupported join kind %q", r.Kind)
		}
		var cond expr.Expr
		if r.On != nil {
			cond, err = ctx.bindExprNoSubquery(r.On)
			if err != nil {
				return nil, err
			}
		}
		return &logical.Join{Kind: kind, Left: left, Right: right, Cond: cond}, nil

	default:
		return nil, fmt.Errorf("binder: unsupported table reference %T", ref)
	}
}

func withoutName(ctes map[string]*sql.SelectStmt, name string) map[string]*sql.SelectStmt {
	// A CTE body must not see its own name (no recursion); siblings remain
	// visible (TPC-DS CTEs reference earlier CTEs).
	out := make(map[string]*sql.SelectStmt, len(ctes))
	for k, v := range ctes {
		if k != name {
			out[k] = v
		}
	}
	return out
}

// splitAnd flattens an AND tree in the AST.
func splitAnd(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []sql.Expr{e}
}

// bindInSubquery plans `x IN (SELECT ...)` as a semi join on the current
// plan.
func (ctx *coreCtx) bindInSubquery(in *sql.InExpr) error {
	if in.Neg {
		return fmt.Errorf("binder: NOT IN (subquery) is not supported")
	}
	probe, err := ctx.bindExpr(in.E)
	if err != nil {
		return err
	}
	sub, err := ctx.b.bindSelect(in.Query, nil, ctx.ctes)
	if err != nil {
		return err
	}
	if len(sub.cols) != 1 {
		return fmt.Errorf("binder: IN subquery must return exactly one column, got %d", len(sub.cols))
	}
	ctx.plan = &logical.Join{
		Kind:  logical.SemiJoin,
		Left:  ctx.plan,
		Right: sub.plan,
		Cond:  expr.Eq(probe, expr.Ref(sub.cols[0])),
	}
	return nil
}

// aggFuncs maps SQL function names to aggregate functions.
var aggFuncs = map[string]expr.AggFunc{
	"count": expr.AggCount,
	"sum":   expr.AggSum,
	"avg":   expr.AggAvg,
	"min":   expr.AggMin,
	"max":   expr.AggMax,
}

func isAggCall(e sql.Expr) (*sql.FuncCall, bool) {
	f, ok := e.(*sql.FuncCall)
	if !ok || f.Over != nil {
		return nil, false
	}
	_, isAgg := aggFuncs[f.Name]
	return f, isAgg
}

// collectAggregates gathers aggregate calls from the select list and HAVING
// (not descending into subqueries, which have their own scopes).
func collectAggregates(core *sql.SelectCore) []*sql.FuncCall {
	var out []*sql.FuncCall
	var walk func(e sql.Expr)
	walk = func(e sql.Expr) {
		switch x := e.(type) {
		case nil:
			return
		case *sql.FuncCall:
			if f, ok := isAggCall(x); ok {
				out = append(out, f)
				return
			}
			for _, a := range x.Args {
				walk(a)
			}
			walk(x.Filter)
		case *sql.BinaryExpr:
			walk(x.L)
			walk(x.R)
		case *sql.NotExpr:
			walk(x.E)
		case *sql.IsNullExpr:
			walk(x.E)
		case *sql.BetweenExpr:
			walk(x.E)
			walk(x.Lo)
			walk(x.Hi)
		case *sql.LikeExpr:
			walk(x.E)
		case *sql.InExpr:
			walk(x.E)
			for _, i := range x.List {
				walk(i)
			}
		case *sql.CaseExpr:
			walk(x.Operand)
			for _, w := range x.Whens {
				walk(w.Cond)
				walk(w.Then)
			}
			walk(x.Else)
		}
	}
	for _, item := range core.Items {
		walk(item.Expr)
	}
	walk(core.Having)
	return out
}

// buildAggregation plans the GroupBy node and narrows the scope to grouping
// keys plus aggregate outputs.
func (ctx *coreCtx) buildAggregation(core *sql.SelectCore, aggCalls []*sql.FuncCall) error {
	// Bind grouping expressions; non-column expressions are materialized
	// through a pre-projection.
	var keys []*expr.Column
	var preAssigns []logical.Assignment
	keySet := map[expr.ColumnID]bool{}
	for _, g := range core.GroupBy {
		e, err := ctx.bindExpr(g)
		if err != nil {
			return fmt.Errorf("binder: GROUP BY: %w", err)
		}
		if ref, ok := e.(*expr.ColumnRef); ok {
			if !keySet[ref.Col.ID] {
				keys = append(keys, ref.Col)
				keySet[ref.Col.ID] = true
			}
			continue
		}
		a := logical.Assign("$gkey", e)
		preAssigns = append(preAssigns, a)
		keys = append(keys, a.Col)
		keySet[a.Col.ID] = true
		ctx.groupExprs = append(ctx.groupExprs, groupExpr{ast: g, col: a.Col})
	}
	if len(preAssigns) > 0 {
		proj := logical.IdentityProject(ctx.plan, ctx.plan.Schema())
		proj.Cols = append(proj.Cols, preAssigns...)
		ctx.plan = proj
	}

	// Bind aggregates.
	var aggs []logical.AggAssign
	for _, call := range aggCalls {
		agg, err := ctx.bindAggCall(call)
		if err != nil {
			return err
		}
		// Reuse identical aggregates.
		reused := false
		for _, existing := range aggs {
			if expr.AggEqual(existing.Agg, agg) {
				ctx.aggMap[call] = existing.Col
				reused = true
				break
			}
		}
		if !reused {
			col := expr.NewColumn(call.Name, agg.ResultType())
			aggs = append(aggs, logical.AggAssign{Col: col, Agg: agg})
			ctx.aggMap[call] = col
		}
	}

	ctx.plan = &logical.GroupBy{Input: ctx.plan, Keys: keys, Aggs: aggs}

	// Narrow the scope: only grouping keys stay addressable by name.
	var newItems []scopeItem
	for _, it := range ctx.scope.items {
		ni := scopeItem{qualifier: it.qualifier}
		for i, c := range it.cols {
			if keySet[c.ID] {
				ni.cols = append(ni.cols, c)
				ni.names = append(ni.names, it.names[i])
			}
		}
		if len(ni.cols) > 0 {
			newItems = append(newItems, ni)
		}
	}
	ctx.scope.items = newItems
	return nil
}

func (ctx *coreCtx) bindAggCall(call *sql.FuncCall) (expr.AggCall, error) {
	fn := aggFuncs[call.Name]
	agg := expr.AggCall{Fn: fn, Distinct: call.Distinct}
	if call.Star {
		if call.Name != "count" {
			return agg, fmt.Errorf("binder: %s(*) is not valid", call.Name)
		}
		agg.Fn = expr.AggCountStar
	} else {
		if len(call.Args) != 1 {
			return agg, fmt.Errorf("binder: %s takes exactly one argument", call.Name)
		}
		arg, err := ctx.bindExpr(call.Args[0])
		if err != nil {
			return agg, err
		}
		agg.Arg = arg
	}
	if call.Filter != nil {
		mask, err := ctx.bindExpr(call.Filter)
		if err != nil {
			return agg, err
		}
		agg.Mask = mask
	}
	return agg, nil
}

// buildWindows plans a Window node for OVER(...) calls in the select list.
func (ctx *coreCtx) buildWindows(core *sql.SelectCore) error {
	var funcs []logical.WindowAssign
	var walk func(e sql.Expr) error
	walk = func(e sql.Expr) error {
		f, ok := e.(*sql.FuncCall)
		if ok && f.Over != nil {
			if _, isAgg := aggFuncs[f.Name]; !isAgg {
				return fmt.Errorf("binder: unsupported window function %q", f.Name)
			}
			agg, err := ctx.bindAggCall(&sql.FuncCall{
				Name: f.Name, Args: f.Args, Star: f.Star, Filter: f.Filter,
			})
			if err != nil {
				return err
			}
			var part []*expr.Column
			for _, p := range f.Over.PartitionBy {
				pe, err := ctx.bindExpr(p)
				if err != nil {
					return err
				}
				ref, isRef := pe.(*expr.ColumnRef)
				if !isRef {
					return fmt.Errorf("binder: PARTITION BY requires plain columns")
				}
				part = append(part, ref.Col)
			}
			col := expr.NewColumn(f.Name+"_w", agg.ResultType())
			funcs = append(funcs, logical.WindowAssign{Col: col, Agg: agg, PartitionBy: part})
			ctx.aggMap[e] = col
			return nil
		}
		switch x := e.(type) {
		case *sql.BinaryExpr:
			if err := walk(x.L); err != nil {
				return err
			}
			return walk(x.R)
		case *sql.CaseExpr:
			for _, w := range x.Whens {
				if err := walk(w.Cond); err != nil {
					return err
				}
				if err := walk(w.Then); err != nil {
					return err
				}
			}
			if x.Else != nil {
				return walk(x.Else)
			}
		case *sql.FuncCall:
			for _, a := range x.Args {
				if err := walk(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	for _, item := range core.Items {
		if item.Expr == nil {
			continue
		}
		if err := walk(item.Expr); err != nil {
			return err
		}
	}
	if len(funcs) > 0 {
		ctx.plan = &logical.Window{Input: ctx.plan, Funcs: funcs}
	}
	return nil
}

// buildProjection binds the select list into the final Project.
func (ctx *coreCtx) buildProjection(core *sql.SelectCore) (*bound, error) {
	out := &bound{}
	proj := &logical.Project{}
	for _, item := range core.Items {
		if item.Star {
			for _, it := range ctx.scope.items {
				if item.StarTable != "" && it.qualifier != item.StarTable {
					continue
				}
				for i, c := range it.cols {
					a := logical.Assignment{Col: c, E: expr.Ref(c)}
					proj.Cols = append(proj.Cols, a)
					out.names = append(out.names, it.names[i])
				}
			}
			// Star also exposes window columns bound from this core.
			continue
		}
		e, err := ctx.bindExpr(item.Expr)
		if err != nil {
			return nil, err
		}
		name := item.Alias
		if name == "" {
			if n, ok := item.Expr.(*sql.Name); ok {
				name = n.Parts[len(n.Parts)-1]
			} else {
				name = "_col" + strconv.Itoa(len(proj.Cols)+1)
			}
		}
		// Preserve column identity for plain references: renaming is a
		// scope-level concern, and keeping the underlying column instance
		// lets derived-table projections reduce to identities the
		// normalizer can strip, so CTE instances stay structurally fusable.
		var a logical.Assignment
		if ref, ok := e.(*expr.ColumnRef); ok {
			a = logical.Assignment{Col: ref.Col, E: e}
		} else {
			a = logical.Assign(name, e)
		}
		proj.Cols = append(proj.Cols, a)
		out.names = append(out.names, name)
	}
	// SELECT * alongside window functions: also expose the window columns.
	if len(proj.Cols) > 0 {
		if w, ok := ctx.plan.(*logical.Window); ok {
			hasStar := false
			for _, item := range core.Items {
				if item.Star {
					hasStar = true
				}
			}
			if hasStar {
				exposed := map[expr.ColumnID]bool{}
				for _, a := range proj.Cols {
					exposed[a.Col.ID] = true
				}
				for _, f := range w.Funcs {
					used := false
					for _, a := range proj.Cols {
						if refs := expr.Columns(a.E); refs[f.Col.ID] {
							used = true
						}
					}
					if !used && !exposed[f.Col.ID] {
						proj.Cols = append(proj.Cols, logical.Assignment{Col: f.Col, E: expr.Ref(f.Col)})
						out.names = append(out.names, f.Col.Name)
					}
				}
			}
		}
	}
	if len(proj.Cols) == 0 {
		return nil, fmt.Errorf("binder: empty select list")
	}
	// Deduplicate identical output columns (SELECT *, t.* overlaps) by
	// re-projecting duplicates under fresh identities.
	seen := map[expr.ColumnID]bool{}
	for i, a := range proj.Cols {
		if ref, ok := a.E.(*expr.ColumnRef); ok && a.Col == ref.Col {
			if seen[a.Col.ID] {
				fresh := expr.NewColumn(a.Col.Name, a.Col.Type)
				proj.Cols[i] = logical.Assignment{Col: fresh, E: a.E}
			}
			seen[a.Col.ID] = true
		}
	}
	proj.Input = ctx.plan
	out.plan = proj
	out.cols = proj.Schema()
	return out, nil
}

// bindSimpleExpr binds an expression that may not contain subqueries or
// aggregates (VALUES rows, ORDER BY keys).
func (b *Binder) bindSimpleExpr(e sql.Expr, s *scope) (expr.Expr, error) {
	ctx := &coreCtx{b: b, scope: s, aggMap: map[sql.Expr]*expr.Column{}}
	return ctx.bindExprNoSubquery(e)
}

func (ctx *coreCtx) bindExprNoSubquery(e sql.Expr) (expr.Expr, error) {
	switch e.(type) {
	case *sql.SubqueryExpr, *sql.ExistsExpr:
		return nil, fmt.Errorf("binder: subquery not allowed in this position")
	}
	return ctx.bindExpr(e)
}

// bindExpr lowers an AST expression; subqueries splice joins into ctx.plan.
func (ctx *coreCtx) bindExpr(e sql.Expr) (expr.Expr, error) {
	// A SELECT-list expression equal to a GROUP BY expression resolves to
	// the grouping key column.
	for _, g := range ctx.groupExprs {
		if astEqual(e, g.ast) {
			return expr.Ref(g.col), nil
		}
	}
	switch x := e.(type) {
	case *sql.Name:
		col, _, err := ctx.scope.resolve(x.Parts)
		if err != nil {
			return nil, err
		}
		if col == nil {
			return nil, fmt.Errorf("binder: unknown column %q", strings.Join(x.Parts, "."))
		}
		return expr.Ref(col), nil

	case *sql.NumberLit:
		if strings.Contains(x.Text, ".") {
			f, err := strconv.ParseFloat(x.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("binder: bad number %q", x.Text)
			}
			return expr.Lit(types.Float(f)), nil
		}
		i, err := strconv.ParseInt(x.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("binder: bad number %q", x.Text)
		}
		return expr.Lit(types.Int(i)), nil

	case *sql.StringLit:
		return expr.Lit(types.String(x.V)), nil
	case *sql.BoolLit:
		return expr.Lit(types.Bool(x.V)), nil
	case *sql.NullLit:
		return expr.Lit(types.Unknown()), nil
	case *sql.DateLit:
		v, err := types.DateFromString(x.V)
		if err != nil {
			return nil, err
		}
		return expr.Lit(v), nil

	case *sql.BinaryExpr:
		l, err := ctx.bindExpr(x.L)
		if err != nil {
			return nil, err
		}
		r, err := ctx.bindExpr(x.R)
		if err != nil {
			return nil, err
		}
		op, ok := binOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("binder: unsupported operator %q", x.Op)
		}
		return expr.NewBinary(op, l, r), nil

	case *sql.NotExpr:
		inner, err := ctx.bindExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil

	case *sql.IsNullExpr:
		inner, err := ctx.bindExpr(x.E)
		if err != nil {
			return nil, err
		}
		return &expr.IsNull{E: inner, Neg: x.Neg}, nil

	case *sql.BetweenExpr:
		inner, err := ctx.bindExpr(x.E)
		if err != nil {
			return nil, err
		}
		lo, err := ctx.bindExpr(x.Lo)
		if err != nil {
			return nil, err
		}
		hi, err := ctx.bindExpr(x.Hi)
		if err != nil {
			return nil, err
		}
		rng := expr.And(
			expr.NewBinary(expr.OpGe, inner, lo),
			expr.NewBinary(expr.OpLe, inner, hi),
		)
		if x.Neg {
			return &expr.Not{E: rng}, nil
		}
		return rng, nil

	case *sql.InExpr:
		if x.Query != nil {
			return nil, fmt.Errorf("binder: IN (subquery) is only supported as a top-level WHERE conjunct")
		}
		inner, err := ctx.bindExpr(x.E)
		if err != nil {
			return nil, err
		}
		list := make([]expr.Expr, len(x.List))
		for i, item := range x.List {
			list[i], err = ctx.bindExpr(item)
			if err != nil {
				return nil, err
			}
		}
		return &expr.InList{E: inner, List: list, Neg: x.Neg}, nil

	case *sql.LikeExpr:
		inner, err := ctx.bindExpr(x.E)
		if err != nil {
			return nil, err
		}
		var out expr.Expr = &expr.Like{E: inner, Pattern: x.Pattern}
		if x.Neg {
			out = &expr.Not{E: out}
		}
		return out, nil

	case *sql.CaseExpr:
		return ctx.bindCase(x)

	case *sql.FuncCall:
		if col, ok := ctx.aggMap[e]; ok {
			return expr.Ref(col), nil
		}
		if x.Name == "coalesce" {
			args := make([]expr.Expr, len(x.Args))
			for i, a := range x.Args {
				var err error
				args[i], err = ctx.bindExpr(a)
				if err != nil {
					return nil, err
				}
			}
			return &expr.Coalesce{Args: args}, nil
		}
		if _, isAgg := aggFuncs[x.Name]; isAgg {
			return nil, fmt.Errorf("binder: aggregate %q not allowed in this position", x.Name)
		}
		return nil, fmt.Errorf("binder: unknown function %q", x.Name)

	case *sql.SubqueryExpr:
		return ctx.bindScalarSubquery(x.Query)

	case *sql.ExistsExpr:
		return nil, fmt.Errorf("binder: EXISTS is not supported; rewrite as IN")

	default:
		return nil, fmt.Errorf("binder: unsupported expression %T", e)
	}
}

var binOps = map[string]expr.BinOp{
	"+": expr.OpAdd, "-": expr.OpSub, "*": expr.OpMul, "/": expr.OpDiv,
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe, "AND": expr.OpAnd, "OR": expr.OpOr,
}

func (ctx *coreCtx) bindCase(x *sql.CaseExpr) (expr.Expr, error) {
	out := &expr.Case{}
	var operand expr.Expr
	if x.Operand != nil {
		var err error
		operand, err = ctx.bindExpr(x.Operand)
		if err != nil {
			return nil, err
		}
	}
	for _, w := range x.Whens {
		cond, err := ctx.bindExpr(w.Cond)
		if err != nil {
			return nil, err
		}
		if operand != nil {
			cond = expr.Eq(operand, cond)
		}
		then, err := ctx.bindExpr(w.Then)
		if err != nil {
			return nil, err
		}
		out.Whens = append(out.Whens, expr.When{Cond: cond, Then: then})
	}
	if x.Else != nil {
		e, err := ctx.bindExpr(x.Else)
		if err != nil {
			return nil, err
		}
		out.Else = e
	}
	return out, nil
}
