// Package binder lowers SQL ASTs to logical plans. Design choices mirror
// the paper's engine:
//
//   - CTEs are inlined at every reference with fresh column identities —
//     the source of the duplicated subtrees the fusion rules remove.
//   - IN (subquery) predicates become semi joins.
//   - Uncorrelated scalar subqueries become EnforceSingleRow plans attached
//     by cross joins ("subquery removal ... into relational subtrees
//     connected via cross products", §V.B).
//   - Correlated scalar-aggregate subqueries are decorrelated [20] into a
//     grouped aggregate joined on the correlation columns — producing
//     exactly the P1 ⨝ GroupBy(P2) pattern GroupByJoinToWindow targets.
//   - DISTINCT aggregates keep a Distinct flag that the optimizer lowers to
//     MarkDistinct operators.
package binder

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/sql"
	"repro/internal/types"
)

// Binder binds statements against a catalog.
type Binder struct {
	cat *catalog.Catalog
}

// New creates a binder.
func New(cat *catalog.Catalog) *Binder { return &Binder{cat: cat} }

// Bind lowers a parsed statement to a logical plan. The returned names
// parallel the plan's output schema.
func (b *Binder) Bind(stmt *sql.SelectStmt) (logical.Operator, []string, error) {
	out, err := b.bindSelect(stmt, nil, map[string]*sql.SelectStmt{})
	if err != nil {
		return nil, nil, err
	}
	return out.plan, out.names, nil
}

// BindSQL parses and binds in one step.
func (b *Binder) BindSQL(query string) (logical.Operator, []string, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	return b.Bind(stmt)
}

// bound is a plan plus its named output columns.
type bound struct {
	plan  logical.Operator
	cols  []*expr.Column
	names []string
}

// scopeItem is one named relation visible in a scope.
type scopeItem struct {
	qualifier string
	cols      []*expr.Column
	names     []string
}

// scope resolves column names; parent scopes provide correlation for
// subqueries.
type scope struct {
	parent *scope
	items  []scopeItem
	// correlated collects outer-column references resolved through this
	// scope's boundary (set on subquery scopes).
	correlated *[]*expr.Column
}

func (s *scope) resolve(parts []string) (*expr.Column, bool, error) {
	switch len(parts) {
	case 1:
		var found *expr.Column
		for _, it := range s.items {
			for i, n := range it.names {
				if n == parts[0] {
					if found != nil && found != it.cols[i] {
						return nil, false, fmt.Errorf("binder: ambiguous column %q", parts[0])
					}
					found = it.cols[i]
				}
			}
		}
		if found != nil {
			return found, false, nil
		}
	case 2:
		for _, it := range s.items {
			if it.qualifier != parts[0] {
				continue
			}
			for i, n := range it.names {
				if n == parts[1] {
					return it.cols[i], false, nil
				}
			}
			return nil, false, fmt.Errorf("binder: relation %q has no column %q", parts[0], parts[1])
		}
	default:
		return nil, false, fmt.Errorf("binder: unsupported qualified name %s", strings.Join(parts, "."))
	}
	if s.parent != nil {
		col, _, err := s.parent.resolve(parts)
		if err != nil || col == nil {
			return col, false, err
		}
		if s.correlated != nil {
			*s.correlated = append(*s.correlated, col)
		}
		return col, true, nil
	}
	return nil, false, nil
}

// bindSelect lowers a full statement: CTE registration, body, ORDER BY,
// LIMIT.
func (b *Binder) bindSelect(stmt *sql.SelectStmt, outer *scope, ctes map[string]*sql.SelectStmt) (*bound, error) {
	if len(stmt.With) > 0 {
		inner := make(map[string]*sql.SelectStmt, len(ctes)+len(stmt.With))
		for k, v := range ctes {
			inner[k] = v
		}
		for _, cte := range stmt.With {
			inner[cte.Name] = cte.Query
		}
		ctes = inner
	}

	var out *bound
	var err error
	switch body := stmt.Body.(type) {
	case *sql.SelectCore:
		out, err = b.bindCore(body, outer, ctes)
	case *sql.UnionAllExpr:
		out, err = b.bindUnion(body, outer, ctes)
	default:
		return nil, fmt.Errorf("binder: unsupported set expression %T", stmt.Body)
	}
	if err != nil {
		return nil, err
	}

	if len(stmt.OrderBy) > 0 {
		outScope := &scope{items: []scopeItem{{cols: out.cols, names: out.names}}}
		keys := make([]logical.SortKey, len(stmt.OrderBy))
		for i, item := range stmt.OrderBy {
			e, err := b.bindSimpleExpr(item.E, outScope)
			if err != nil {
				// Output columns are unqualified; allow table-qualified
				// ORDER BY names to resolve by their bare column name.
				if n, isName := item.E.(*sql.Name); isName && len(n.Parts) == 2 {
					e, err = b.bindSimpleExpr(&sql.Name{Parts: n.Parts[1:]}, outScope)
				}
				if err != nil {
					return nil, fmt.Errorf("binder: ORDER BY: %w", err)
				}
			}
			keys[i] = logical.SortKey{E: e, Desc: item.Desc}
		}
		out.plan = &logical.Sort{Input: out.plan, Keys: keys}
	}
	if stmt.Limit != nil {
		out.plan = &logical.Limit{Input: out.plan, N: *stmt.Limit}
	}
	return out, nil
}

func (b *Binder) bindUnion(u *sql.UnionAllExpr, outer *scope, ctes map[string]*sql.SelectStmt) (*bound, error) {
	var inputs []logical.Operator
	var inputCols [][]*expr.Column
	var first *bound
	for i, in := range u.Inputs {
		var sub *bound
		var err error
		switch body := in.(type) {
		case *sql.SelectCore:
			sub, err = b.bindCore(body, outer, ctes)
		case *sql.UnionAllExpr:
			sub, err = b.bindUnion(body, outer, ctes)
		default:
			err = fmt.Errorf("binder: unsupported union input %T", in)
		}
		if err != nil {
			return nil, err
		}
		if i == 0 {
			first = sub
		} else if len(sub.cols) != len(first.cols) {
			return nil, fmt.Errorf("binder: UNION ALL branches have %d vs %d columns", len(first.cols), len(sub.cols))
		} else {
			for j := range sub.cols {
				if !types.Comparable(sub.cols[j].Type, first.cols[j].Type) &&
					sub.cols[j].Type != types.KindUnknown && first.cols[j].Type != types.KindUnknown {
					return nil, fmt.Errorf("binder: UNION ALL column %d type mismatch: %s vs %s",
						j+1, first.cols[j].Type, sub.cols[j].Type)
				}
			}
		}
		inputs = append(inputs, sub.plan)
		inputCols = append(inputCols, sub.cols)
	}
	union := logical.NewUnionAll(inputs, inputCols)
	return &bound{plan: union, cols: union.Cols, names: first.names}, nil
}
