package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// batchFn is a compiled expression evaluated over the active rows of a
// batch: it writes exactly one value per active row into out, in selection
// order (len(out) == b.Len()). Predicates and projections run through
// batchFns so a filter's cost is a pass over column vectors guided by the
// selection vector, not an interpreted call per row.
//
// Compiled batchFns own internal scratch buffers and are therefore bound to
// a single operator instance within a single run; they must not be shared
// across goroutines. Operators above the scan leaves run single-threaded,
// so this holds by construction.
type batchFn func(b *vec.Batch, out []types.Value)

// batchEvaluator pairs a batchFn with a reusable output buffer.
type batchEvaluator struct {
	fn  batchFn
	buf []types.Value
}

func newBatchEvaluator(e expr.Expr, layout map[expr.ColumnID]int) (*batchEvaluator, error) {
	if e == nil {
		return nil, nil
	}
	fn, err := compileBatchExpr(e, layout)
	if err != nil {
		return nil, fmt.Errorf("exec: batch-compiling %s: %w", e, err)
	}
	return &batchEvaluator{fn: fn}, nil
}

// eval evaluates the expression over b's active rows into an internal
// buffer valid until the next eval call.
func (ev *batchEvaluator) eval(b *vec.Batch) []types.Value {
	n := b.Len()
	if cap(ev.buf) < n {
		ev.buf = make([]types.Value, n)
	}
	out := ev.buf[:n]
	ev.fn(b, out)
	return out
}

// compileBatchExpr lowers an expression into a vectorized closure. Column
// references, literals, binary operators, NOT, IS NULL and COALESCE are
// compiled natively over column vectors; rarer node types fall back to the
// row-at-a-time compileExpr closure driven through a gathered scratch row,
// so every expression the row engine supported stays supported.
func compileBatchExpr(e expr.Expr, layout map[expr.ColumnID]int) (batchFn, error) {
	switch x := e.(type) {
	case *expr.Literal:
		v := x.Val
		return func(_ *vec.Batch, out []types.Value) {
			for i := range out {
				out[i] = v
			}
		}, nil

	case *expr.ColumnRef:
		idx, ok := layout[x.Col.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column %s not bound in row layout", x.Col)
		}
		return func(b *vec.Batch, out []types.Value) {
			col := b.Cols[idx]
			if b.Sel == nil {
				copy(out, col[:len(out)])
				return
			}
			for i, r := range b.Sel {
				out[i] = col[r]
			}
		}, nil

	case *expr.Binary:
		return compileBatchBinary(x, layout)

	case *expr.Not:
		inner, err := compileBatchExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		return func(b *vec.Batch, out []types.Value) {
			inner(b, out)
			for i, v := range out {
				if v.Null {
					out[i] = types.NullOf(types.KindBool)
				} else {
					out[i] = types.Bool(!v.AsBool())
				}
			}
		}, nil

	case *expr.IsNull:
		inner, err := compileBatchExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(b *vec.Batch, out []types.Value) {
			inner(b, out)
			for i, v := range out {
				out[i] = types.Bool(v.Null != neg)
			}
		}, nil

	case *expr.Coalesce:
		args := make([]batchFn, len(x.Args))
		for i, a := range x.Args {
			var err error
			if args[i], err = compileBatchExpr(a, layout); err != nil {
				return nil, err
			}
		}
		kind := x.Type()
		var scratch []types.Value
		return func(b *vec.Batch, out []types.Value) {
			n := len(out)
			for i := range out {
				out[i] = types.NullOf(kind)
			}
			if cap(scratch) < n {
				scratch = make([]types.Value, n)
			}
			sv := scratch[:n]
			for ai, a := range args {
				if ai == 0 {
					a(b, out)
					continue
				}
				done := true
				for i := range out {
					if out[i].Null {
						done = false
						break
					}
				}
				if done {
					return
				}
				a(b, sv)
				for i := range out {
					if out[i].Null {
						out[i] = sv[i]
					}
				}
			}
		}, nil

	default:
		// Row fallback (CASE, IN, LIKE, future node types): gather each
		// active row into a scratch row and run the row-compiled closure.
		fn, err := compileExpr(e, layout)
		if err != nil {
			return nil, err
		}
		var scratch Row
		return func(b *vec.Batch, out []types.Value) {
			w := b.Width()
			if cap(scratch) < w {
				scratch = make(Row, w)
			}
			row := scratch[:w]
			for i := range out {
				b.Gather(i, row)
				out[i] = fn(row)
			}
		}, nil
	}
}

func compileBatchBinary(x *expr.Binary, layout map[expr.ColumnID]int) (batchFn, error) {
	// Column-vs-literal comparisons are the leaves of almost every
	// predicate; they read the column vector directly with no operand
	// materialization.
	if x.Op.IsComparison() {
		if fn := compileCmpColLit(x, layout); fn != nil {
			return fn, nil
		}
		if fn := compileCmpColCol(x, layout); fn != nil {
			return fn, nil
		}
	}
	l, err := compileBatchExpr(x.L, layout)
	if err != nil {
		return nil, err
	}
	r, err := compileBatchExpr(x.R, layout)
	if err != nil {
		return nil, err
	}
	// AND/OR short-circuit with selection vectors, exactly like the row
	// engine but batch-wise: the left vector decides most rows, and the
	// right side is evaluated only over the undecided sub-batch. This is
	// what keeps deep machine-generated predicates (the fusion rewrite's
	// accumulated masks) from paying full-tree evaluation per row.
	switch x.Op {
	case expr.OpAnd, expr.OpOr:
		isAnd := x.Op == expr.OpAnd
		var lbuf, rbuf []types.Value
		var log, phys []int
		return func(b *vec.Batch, out []types.Value) {
			n := len(out)
			if cap(lbuf) < n {
				lbuf = make([]types.Value, n)
			}
			lv := lbuf[:n]
			l(b, lv)
			log, phys = log[:0], phys[:0]
			for i := 0; i < n; i++ {
				v := lv[i]
				if !v.Null && v.AsBool() != isAnd {
					// false AND _, true OR _: decided by the left side.
					out[i] = types.Bool(!isAnd)
					continue
				}
				log = append(log, i)
				phys = append(phys, b.RowIdx(i))
			}
			if len(log) == 0 {
				return
			}
			if cap(rbuf) < len(log) {
				rbuf = make([]types.Value, len(log))
			}
			rv := rbuf[:len(log)]
			r(b.WithSel(phys), rv)
			if isAnd {
				for j, i := range log {
					out[i] = kleeneAnd(lv[i], rv[j])
				}
			} else {
				for j, i := range log {
					out[i] = kleeneOr(lv[i], rv[j])
				}
			}
		}, nil
	}

	// Comparisons and arithmetic evaluate both operand vectors fully; SQL
	// scalar expressions are pure, so this matches the row engine
	// value-for-value (division by zero yields NULL, not a fault).
	var lbuf, rbuf []types.Value
	operands := func(b *vec.Batch, n int) ([]types.Value, []types.Value) {
		if cap(lbuf) < n {
			lbuf = make([]types.Value, n)
			rbuf = make([]types.Value, n)
		}
		lv, rv := lbuf[:n], rbuf[:n]
		l(b, lv)
		r(b, rv)
		return lv, rv
	}
	if x.Op.IsComparison() {
		op := x.Op
		return func(b *vec.Batch, out []types.Value) {
			lv, rv := operands(b, len(out))
			for i := range out {
				a, c := lv[i], rv[i]
				if a.Null || c.Null {
					out[i] = types.NullOf(types.KindBool)
					continue
				}
				out[i] = types.Bool(compareSatisfies(op, types.Compare(a, c)))
			}
		}, nil
	}
	// Arithmetic.
	op := x.Op
	resultKind := x.Type()
	return func(b *vec.Batch, out []types.Value) {
		lv, rv := operands(b, len(out))
		for i := range out {
			out[i] = arith(op, resultKind, lv[i], rv[i])
		}
	}, nil
}

// compileCmpColLit specializes `column <op> literal` (either operand
// order); returns nil when the shape does not match, deferring to the
// generic path.
func compileCmpColLit(x *expr.Binary, layout map[expr.ColumnID]int) batchFn {
	op := x.Op
	cr, crOK := x.L.(*expr.ColumnRef)
	lit, litOK := x.R.(*expr.Literal)
	if !crOK || !litOK {
		lit, litOK = x.L.(*expr.Literal)
		cr, crOK = x.R.(*expr.ColumnRef)
		if !crOK || !litOK {
			return nil
		}
		op = flipCmp(op)
	}
	idx, ok := layout[cr.Col.ID]
	if !ok {
		return nil // the generic path reports the unbound column
	}
	c := lit.Val
	if c.Null {
		return func(_ *vec.Batch, out []types.Value) {
			for i := range out {
				out[i] = types.NullOf(types.KindBool)
			}
		}
	}
	return func(b *vec.Batch, out []types.Value) {
		col := b.Cols[idx]
		if b.Sel == nil {
			for i := range out {
				if v := col[i]; v.Null {
					out[i] = types.NullOf(types.KindBool)
				} else {
					out[i] = types.Bool(compareSatisfies(op, types.Compare(v, c)))
				}
			}
			return
		}
		for i, r := range b.Sel {
			if v := col[r]; v.Null {
				out[i] = types.NullOf(types.KindBool)
			} else {
				out[i] = types.Bool(compareSatisfies(op, types.Compare(v, c)))
			}
		}
	}
}

// compileCmpColCol specializes `column <op> column` — join residuals and
// key comparisons — reading both column vectors directly with no operand
// materialization. Returns nil when the shape does not match.
func compileCmpColCol(x *expr.Binary, layout map[expr.ColumnID]int) batchFn {
	lcr, lok := x.L.(*expr.ColumnRef)
	rcr, rok := x.R.(*expr.ColumnRef)
	if !lok || !rok {
		return nil
	}
	li, ok := layout[lcr.Col.ID]
	if !ok {
		return nil
	}
	ri, ok := layout[rcr.Col.ID]
	if !ok {
		return nil
	}
	op := x.Op
	return func(b *vec.Batch, out []types.Value) {
		lcol, rcol := b.Cols[li], b.Cols[ri]
		if b.Sel == nil {
			for i := range out {
				lv, rv := lcol[i], rcol[i]
				if lv.Null || rv.Null {
					out[i] = types.NullOf(types.KindBool)
				} else {
					out[i] = types.Bool(compareSatisfies(op, types.Compare(lv, rv)))
				}
			}
			return
		}
		for i, r := range b.Sel {
			lv, rv := lcol[r], rcol[r]
			if lv.Null || rv.Null {
				out[i] = types.NullOf(types.KindBool)
			} else {
				out[i] = types.Bool(compareSatisfies(op, types.Compare(lv, rv)))
			}
		}
	}
}

// flipCmp mirrors a comparison when its operands are swapped.
func flipCmp(op expr.BinOp) expr.BinOp {
	switch op {
	case expr.OpLt:
		return expr.OpGt
	case expr.OpLe:
		return expr.OpGe
	case expr.OpGt:
		return expr.OpLt
	case expr.OpGe:
		return expr.OpLe
	default: // Eq, Ne are symmetric
		return op
	}
}

func kleeneAnd(lv, rv types.Value) types.Value {
	if !lv.Null && !lv.AsBool() {
		return types.Bool(false)
	}
	if !rv.Null && !rv.AsBool() {
		return types.Bool(false)
	}
	if lv.Null || rv.Null {
		return types.NullOf(types.KindBool)
	}
	return types.Bool(true)
}

func kleeneOr(lv, rv types.Value) types.Value {
	if !lv.Null && lv.AsBool() {
		return types.Bool(true)
	}
	if !rv.Null && rv.AsBool() {
		return types.Bool(true)
	}
	if lv.Null || rv.Null {
		return types.NullOf(types.KindBool)
	}
	return types.Bool(false)
}

func compareSatisfies(op expr.BinOp, c int) bool {
	switch op {
	case expr.OpEq:
		return c == 0
	case expr.OpNe:
		return c != 0
	case expr.OpLt:
		return c < 0
	case expr.OpLe:
		return c <= 0
	case expr.OpGt:
		return c > 0
	default:
		return c >= 0
	}
}

func arith(op expr.BinOp, resultKind types.Kind, lv, rv types.Value) types.Value {
	if lv.Null || rv.Null {
		return types.NullOf(resultKind)
	}
	if op == expr.OpDiv {
		rf := rv.AsFloat()
		if rf == 0 {
			return types.NullOf(types.KindFloat64)
		}
		return types.Float(lv.AsFloat() / rf)
	}
	if lv.Kind == types.KindFloat64 || rv.Kind == types.KindFloat64 {
		lf, rf := lv.AsFloat(), rv.AsFloat()
		switch op {
		case expr.OpAdd:
			return types.Float(lf + rf)
		case expr.OpSub:
			return types.Float(lf - rf)
		default:
			return types.Float(lf * rf)
		}
	}
	switch op {
	case expr.OpAdd:
		return types.Int(lv.I + rv.I)
	case expr.OpSub:
		return types.Int(lv.I - rv.I)
	default:
		return types.Int(lv.I * rv.I)
	}
}
