package exec

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/logical"
	"repro/internal/memctl"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

func (ex *executor) buildSort(s *logical.Sort) (BatchIterator, error) {
	// A sort over a fusible chain becomes a pipeline sink: each morsel's
	// worker cuts its own stable-sorted runs and emission k-way merges them
	// in morsel order (pipesink.go), reusing the spill-merge machinery.
	if !ex.opts.PullExec && ex.opts.Parallelism > 1 {
		if it, ok, err := ex.buildSortRunSink(s); ok || err != nil {
			return it, err
		}
	}
	in, err := ex.buildConsumed(s.Input)
	if err != nil {
		return nil, err
	}
	return ex.newSortIter(s, in)
}

// sortKeyEvs compiles one instance of the sort-key evaluators (row
// evaluators own scratch, so every goroutine sorting rows needs its own).
func sortKeyEvs(s *logical.Sort) ([]*evaluator, error) {
	layout := layoutOf(s.Input)
	evs := make([]*evaluator, len(s.Keys))
	for i, k := range s.Keys {
		ev, err := newEvaluator(k.E, layout)
		if err != nil {
			return nil, err
		}
		evs[i] = ev
	}
	return evs, nil
}

func (ex *executor) newSortIter(s *logical.Sort, in BatchIterator) (BatchIterator, error) {
	evs, err := sortKeyEvs(s)
	if err != nil {
		return nil, err
	}
	it := &sortIter{
		in: in, evs: evs, keys: s.Keys,
		width: len(s.Input.Schema()), batchSize: ex.opts.BatchSize, m: ex.metrics,
		tracker: ex.tracker, spillDir: ex.mempool.SpillDir(),
	}
	// Remove run files even if the query is abandoned mid-emission (LIMIT,
	// error); SpillFile.Close is idempotent, so double-close on the normal
	// path is harmless.
	ex.onClose(it.closeRuns)
	return it, nil
}

// sortIter is a blocking sort with graceful degradation: input rows buffer
// in memory under a memctl reservation, and when the pool asks it to shed
// memory it stable-sorts the buffered rows and writes them to a spill run.
// Emission is then a k-way merge of the sorted runs.
//
// The merge reproduces the in-memory sort bit-for-bit. Each run holds a
// contiguous range of input rows (runs are cut in input order and the
// in-memory leftover is the final run), each run is sorted with
// sort.SliceStable, and merge ties break toward the earlier run — so equal
// keys emit in input order, exactly as one global stable sort would.
// NULLs order last ascending, first descending.
type sortIter struct {
	in        BatchIterator
	evs       []*evaluator
	keys      []logical.SortKey
	width     int
	batchSize int
	m         *Metrics
	tracker   *memctl.Tracker
	spillDir  string

	// mu guards buf, runs and resident against concurrent Spill calls from
	// the pool. resident is read via atomic by SpillableBytes (which must
	// not block) and only written under mu.
	mu       sync.Mutex
	buf      []Row
	resident int64
	runs     []*storage.SpillFile

	built bool
	// Exactly one of out (no spill happened) and merge (spilled) is set.
	out   *rowsBatcher
	merge *sortMerger
}

// SpillableBytes reports the buffered input's resident estimate. Called
// with the pool lock held, so it must not take it.mu.
func (it *sortIter) SpillableBytes() int64 { return atomic.LoadInt64(&it.resident) }

func (it *sortIter) Label() string { return opSort }

// Spill sorts the buffered rows and writes them out as one run, freeing
// the buffer's reservation. Called by the pool without its lock held.
func (it *sortIter) Spill() (int64, error) {
	it.mu.Lock()
	defer it.mu.Unlock()
	if len(it.buf) == 0 {
		return 0, nil
	}
	sortRowsStable(it.buf, it.evs, it.keys)
	f, err := writeSortedRun(it.spillDir, it.width, it.buf)
	if err != nil {
		return 0, err
	}
	it.runs = append(it.runs, f)
	freed := it.resident
	atomic.StoreInt64(&it.resident, 0)
	it.buf = nil
	it.tracker.Release(opSort, freed)
	it.tracker.AddSpill(opSort, f.Bytes(), 1)
	return freed, nil
}

func (it *sortIter) closeRuns() {
	it.mu.Lock()
	defer it.mu.Unlock()
	for _, f := range it.runs {
		f.Close()
	}
}

func (it *sortIter) NextBatch() (*vec.Batch, error) {
	if !it.built {
		if err := it.build(); err != nil {
			return nil, err
		}
		it.built = true
	}
	if it.merge != nil {
		return it.merge.NextBatch()
	}
	return it.out.NextBatch()
}

func (it *sortIter) build() error {
	it.tracker.Register(it)
	err := it.drainInput()
	it.tracker.Unregister(it)
	if err != nil {
		return err
	}

	// Snapshot under mu: a Spill picked as victim just before Unregister
	// may still be running and move buf into a new run.
	it.mu.Lock()
	rows, runs, resident := it.buf, it.runs, it.resident
	it.buf = nil
	it.mu.Unlock()

	sortRowsStable(rows, it.evs, it.keys)
	if len(runs) == 0 {
		// Pure in-memory path — identical to the pre-spill implementation.
		// The batcher releases each row's reservation as it streams out.
		it.out = &rowsBatcher{
			rows: rows, width: it.width, batchSize: it.batchSize,
			tracker: it.tracker, op: opSort, residual: resident,
		}
		return nil
	}
	cursors := make([]*sortRunCursor, 0, len(runs)+1)
	for _, f := range runs {
		cursors = append(cursors, &sortRunCursor{file: f, rd: f.NewReader(), width: it.width})
	}
	if len(rows) > 0 {
		// The in-memory leftover is the latest contiguous input range, so
		// it merges as the final run.
		cursors = append(cursors, &sortRunCursor{rows: rows, residual: resident, tracker: it.tracker})
	} else if resident > 0 {
		it.tracker.Release(opSort, resident)
	}
	for _, c := range cursors {
		if err := c.advance(it.evs); err != nil {
			return err
		}
	}
	it.merge = &sortMerger{
		cursors: cursors, evs: it.evs, keys: it.keys,
		width: it.width, batchSize: it.batchSize,
	}
	return nil
}

func (it *sortIter) drainInput() error {
	for {
		b, err := it.in.NextBatch()
		if err != nil {
			return err
		}
		if b == nil {
			return nil
		}
		n := b.Len()
		it.m.addProcessed(int64(n))
		// Reserve and buffer in bounded chunks, with no lock held during
		// Reserve: the pool may pick this very iterator as the spill
		// victim, shedding the rows buffered so far mid-batch.
		chunk := make([]Row, 0, n)
		var bytes int64
		flush := func() error {
			if len(chunk) == 0 {
				return nil
			}
			if err := it.tracker.Reserve(opSort, bytes); err != nil {
				return err
			}
			it.mu.Lock()
			it.buf = append(it.buf, chunk...)
			atomic.AddInt64(&it.resident, bytes)
			it.mu.Unlock()
			chunk, bytes = chunk[:0:0], 0
			return nil
		}
		for i := 0; i < n; i++ {
			row := make(Row, it.width)
			b.Gather(i, row)
			chunk = append(chunk, row)
			bytes += rowMemBytes(row)
			if bytes >= reserveChunkBytes {
				if err := flush(); err != nil {
					return err
				}
			}
		}
		if err := flush(); err != nil {
			return err
		}
	}
}

// sortRowsStable stable-sorts rows in place by the given sort keys.
func sortRowsStable(rows []Row, evs []*evaluator, keys []logical.SortKey) {
	vals := make([][]types.Value, len(rows))
	for i, row := range rows {
		kv := make([]types.Value, len(evs))
		for k, ev := range evs {
			kv[k] = ev.eval(row)
		}
		vals[i] = kv
	}
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return compareKeys(vals[order[a]], vals[order[b]], keys) < 0
	})
	sorted := make([]Row, len(order))
	for i, o := range order {
		sorted[i] = rows[o]
	}
	copy(rows, sorted)
}

// compareKeys orders two key tuples under the sort direction: negative when
// a sorts before b.
func compareKeys(a, b []types.Value, keys []logical.SortKey) int {
	for k := range keys {
		c := compareForSort(a[k], b[k])
		if c == 0 {
			continue
		}
		if keys[k].Desc {
			return -c
		}
		return c
	}
	return 0
}

// sortRunCursor walks one sorted run — either a spill file or the
// in-memory leftover.
type sortRunCursor struct {
	// File-backed run.
	file  *storage.SpillFile
	rd    *storage.SpillReader
	width int
	// Memory-backed run; residual is its reservation, released on
	// exhaustion.
	rows     []Row
	idx      int
	residual int64
	tracker  *memctl.Tracker

	cur  Row
	key  []types.Value
	done bool
}

func (c *sortRunCursor) advance(evs []*evaluator) error {
	if c.rd != nil {
		row := make(Row, c.width)
		ok, err := c.rd.Next(row)
		if err != nil {
			return err
		}
		if !ok {
			c.done = true
			c.file.Close()
			return nil
		}
		c.cur = row
	} else {
		if c.idx >= len(c.rows) {
			c.done = true
			if c.residual > 0 {
				c.tracker.Release(opSort, c.residual)
				c.residual = 0
			}
			return nil
		}
		c.cur = c.rows[c.idx]
		c.idx++
		// Release the emitted row's share so downstream consumers can use
		// it; any rounding remainder goes when the cursor exhausts.
		if c.residual > 0 {
			rb := rowMemBytes(c.cur)
			if rb > c.residual {
				rb = c.residual
			}
			c.residual -= rb
			c.tracker.Release(opSort, rb)
		}
	}
	if c.key == nil {
		c.key = make([]types.Value, len(evs))
	}
	for k, ev := range evs {
		c.key[k] = ev.eval(c.cur)
	}
	return nil
}

// sortMerger k-way merges the sorted runs. Ties pick the earliest run,
// which carries the earliest input rows — the stability tie-break. It is
// shared by the blocking sortIter and the push-pipeline sort-run sink,
// so it carries its own key machinery rather than a parent iterator.
type sortMerger struct {
	cursors   []*sortRunCursor
	evs       []*evaluator
	keys      []logical.SortKey
	width     int
	batchSize int
}

func (m *sortMerger) NextBatch() (*vec.Batch, error) {
	bl := vec.NewBuilder(m.width, m.batchSize)
	for !bl.Full() {
		var best *sortRunCursor
		for _, c := range m.cursors {
			if c.done {
				continue
			}
			if best == nil || compareKeys(c.key, best.key, m.keys) < 0 {
				best = c
			}
		}
		if best == nil {
			break
		}
		bl.Append(best.cur)
		if err := best.advance(m.evs); err != nil {
			return nil, err
		}
	}
	if bl.Len() == 0 {
		return nil, nil
	}
	return bl.Flush(), nil
}

// compareForSort orders NULLs after every value.
func compareForSort(a, b types.Value) int {
	switch {
	case a.Null && b.Null:
		return 0
	case a.Null:
		return 1
	case b.Null:
		return -1
	default:
		return types.Compare(a, b)
	}
}
