package exec

import (
	"math"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// skipFixture builds a fact table whose per-partition value ranges are
// disjoint — the layout zone maps exploit — plus a small dimension:
//
//	fact: 4 partitions (f_part 0..3) of 25 rows each
//	  f_v    partition p holds p*100 .. p*100+24
//	  f_w    0..24 within each partition (overlapping across partitions)
//	  f_f    float: f_v/2; partition 3 rows with f_w%5==0 hold NaN;
//	         partition 0 rows with f_w%7==0 hold -0
//	  f_s    "s<p>"; all-NULL in partition 2
//	dim: d_k int64, d_name string
func skipFixture(t *testing.T, dimKeys []int64) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "fact",
		Columns: []catalog.Column{
			{Name: "f_v", Type: types.KindInt64},
			{Name: "f_w", Type: types.KindInt64},
			{Name: "f_f", Type: types.KindFloat64},
			{Name: "f_s", Type: types.KindString},
			{Name: "f_part", Type: types.KindInt64},
		},
		PartitionColumn: "f_part",
	})
	cat.MustAdd(&catalog.Table{
		Name: "dim",
		Columns: []catalog.Column{
			{Name: "d_k", Type: types.KindInt64},
			{Name: "d_name", Type: types.KindString},
		},
		Keys: [][]string{{"d_k"}},
	})
	st := storage.NewStore(cat)
	var rows [][]types.Value
	for p := int64(0); p < 4; p++ {
		for w := int64(0); w < 25; w++ {
			v := p*100 + w
			f := types.Float(float64(v) / 2)
			if p == 3 && w%5 == 0 {
				f = types.Float(math.NaN())
			}
			if p == 0 && w%7 == 0 {
				f = types.Float(math.Copysign(0, -1))
			}
			s := types.String("s" + string(rune('0'+p)))
			if p == 2 {
				s = types.NullOf(types.KindString)
			}
			rows = append(rows, []types.Value{types.Int(v), types.Int(w), f, s, types.Int(p)})
		}
	}
	if err := st.Load("fact", rows); err != nil {
		t.Fatal(err)
	}
	var drows [][]types.Value
	for _, k := range dimKeys {
		drows = append(drows, []types.Value{types.Int(k), types.String("d")})
	}
	if err := st.Load("dim", drows); err != nil {
		t.Fatal(err)
	}
	return st
}

// skipConfigs are the execution paths a prune decision can ride: pull and
// push, serial and morsel-parallel.
func skipConfigs() map[string]Options {
	return map[string]Options{
		"pull-serial":   {PullExec: true, Parallelism: 1},
		"pull-parallel": {PullExec: true, Parallelism: 4},
		"push-serial":   {Parallelism: 1},
		"push-parallel": {Parallelism: 4},
	}
}

func rowsKey(rows []Row) string {
	var sb strings.Builder
	var kb strings.Builder
	for _, r := range rows {
		sb.WriteString(encodeKey(&kb, r))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// runSkipDiff executes the plan with skipping on and off under every
// execution config and requires byte-identical rows and logical metrics.
// wantPrune asserts that the skipping run actually pruned (non-vacuity).
func runSkipDiff(t *testing.T, st *storage.Store, plan logical.Operator, wantPrune bool) {
	t.Helper()
	for name, opts := range skipConfigs() {
		base := opts
		base.NoSkip = true
		ref, err := RunWith(plan, st, base)
		if err != nil {
			t.Fatalf("%s: baseline run: %v", name, err)
		}
		got, err := RunWith(plan, st, opts)
		if err != nil {
			t.Fatalf("%s: skip run: %v", name, err)
		}
		if rowsKey(got.Rows) != rowsKey(ref.Rows) {
			t.Fatalf("%s: rows diverge with skipping on (%d vs %d rows)", name, len(got.Rows), len(ref.Rows))
		}
		if got.Metrics.Storage.BytesScanned != ref.Metrics.Storage.BytesScanned ||
			got.Metrics.Storage.RowsScanned != ref.Metrics.Storage.RowsScanned {
			t.Fatalf("%s: storage metrics diverge: %+v vs %+v", name, got.Metrics.Storage, ref.Metrics.Storage)
		}
		if got.Metrics.RowsProcessed != ref.Metrics.RowsProcessed {
			t.Fatalf("%s: RowsProcessed = %d with skip, %d without", name,
				got.Metrics.RowsProcessed, ref.Metrics.RowsProcessed)
		}
		if ref.Metrics.Skip.ChunksPruned != 0 || ref.Metrics.Skip.PrunedBytes != 0 {
			t.Fatalf("%s: NoSkip run reported pruning: %+v", name, ref.Metrics.Skip)
		}
		if wantPrune && got.Metrics.Skip.PartitionsPruned == 0 {
			t.Fatalf("%s: expected pruning, Skip = %+v", name, got.Metrics.Skip)
		}
		if !wantPrune && got.Metrics.Skip.PartitionsPruned != 0 {
			t.Fatalf("%s: unexpected pruning: %+v", name, got.Metrics.Skip)
		}
		if wantPrune && got.Metrics.Skip.PrunedBytes == 0 {
			t.Fatalf("%s: pruned partitions but no pruned bytes: %+v", name, got.Metrics.Skip)
		}
	}
}

func factPlan(t *testing.T, st *storage.Store, cond func(s *logical.Scan) expr.Expr) logical.Operator {
	t.Helper()
	s := scanOf(t, st, "fact")
	return logical.NewFilter(s, cond(s))
}

func TestSkipZoneMapRangePredicate(t *testing.T) {
	st := skipFixture(t, []int64{1})
	// f_v >= 300 holds only in partition 3; zone maps prune 0..2 (a
	// non-partition column, so the partition pruner cannot help).
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300)))
	}), true)
	// f_v = 150: inside partition 1's range but absent; min/max alone
	// cannot prune partition 1, the rest go.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.Eq(expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(150)))
	}), true)
}

func TestSkipAllNullChunk(t *testing.T) {
	st := skipFixture(t, []int64{1})
	// f_s = 's1': partition 2's all-NULL chunk and the other partitions'
	// disjoint single-value chunks all prune; only partition 1 survives.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.Eq(expr.Ref(s.ColumnFor("f_s")), expr.Lit(types.String("s1")))
	}), true)
	// f_s IS NULL prunes every no-NULL partition, keeps the all-NULL one.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return &expr.IsNull{E: expr.Ref(s.ColumnFor("f_s"))}
	}), true)
	// f_s IS NOT NULL prunes exactly the all-NULL partition.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return &expr.IsNull{E: expr.Ref(s.ColumnFor("f_s")), Neg: true}
	}), true)
}

func TestSkipFloatNaNAndNegZero(t *testing.T) {
	st := skipFixture(t, []int64{1})
	// f_f > 1000: every regular value is below; partition 3's NaN rows
	// cannot satisfy an ordering predicate either, so everything prunes.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("f_f")), expr.Lit(types.Float(1000)))
	}), true)
	// f_f < 0: partition 0's -0 values compare equal to 0, so its chunk
	// bounds ([-0, 12]) admit no row; nothing anywhere is negative.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.NewBinary(expr.OpLt, expr.Ref(s.ColumnFor("f_f")), expr.Lit(types.Float(0)))
	}), true)
	// f_f = NaN-adjacent range probe: a predicate the NaN-bearing partition
	// must NOT be pruned for if the engine's comparison semantics admit it.
	// The differential (rows identical) is the assertion; prune or not is
	// whatever the zone map soundly decides.
	for name, opts := range skipConfigs() {
		plan := factPlan(t, st, func(s *logical.Scan) expr.Expr {
			return expr.Eq(expr.Ref(s.ColumnFor("f_f")), expr.Lit(types.Float(51)))
		})
		base := opts
		base.NoSkip = true
		ref, err := RunWith(plan, st, base)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunWith(plan, st, opts)
		if err != nil {
			t.Fatal(err)
		}
		if rowsKey(got.Rows) != rowsKey(ref.Rows) || got.Metrics.RowsProcessed != ref.Metrics.RowsProcessed {
			t.Fatalf("%s: NaN-range probe diverges", name)
		}
	}
}

func TestSkipInList(t *testing.T) {
	st := skipFixture(t, []int64{1})
	// Every listed value misses partitions 0, 1 and 3.
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return &expr.InList{E: expr.Ref(s.ColumnFor("f_v")), List: []expr.Expr{
			expr.Lit(types.Int(205)), expr.Lit(types.Int(210)), expr.Lit(types.NullOf(types.KindInt64)),
		}}
	}), true)
}

func TestSkipColVsColNoPruning(t *testing.T) {
	st := skipFixture(t, []int64{1})
	// A column-to-column comparison compiles to no zone check: rows stay
	// identical and nothing is pruned (soundness over completeness).
	runSkipDiff(t, st, factPlan(t, st, func(s *logical.Scan) expr.Expr {
		return expr.NewBinary(expr.OpLt, expr.Ref(s.ColumnFor("f_v")), expr.Ref(s.ColumnFor("f_w")))
	}), false)
}

func TestSkipLimitEarlyExit(t *testing.T) {
	st := skipFixture(t, []int64{1})
	s := scanOf(t, st, "fact")
	plan := &logical.Limit{
		Input: logical.NewFilter(s, expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300)))),
		N:     5,
	}
	// LIMIT truncates the pull mid-stream; the consumer-side recharge must
	// keep RowsProcessed identical to a truncated no-skip run. Skip
	// counters may legitimately run ahead of the truncation, so only the
	// logical metrics and rows are compared here.
	for name, opts := range skipConfigs() {
		base := opts
		base.NoSkip = true
		ref, err := RunWith(plan, st, base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := RunWith(plan, st, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got.Rows) != 5 || rowsKey(got.Rows) != rowsKey(ref.Rows) {
			t.Fatalf("%s: LIMIT rows diverge (%d vs %d)", name, len(got.Rows), len(ref.Rows))
		}
		if got.Metrics.RowsProcessed != ref.Metrics.RowsProcessed ||
			got.Metrics.Storage != ref.Metrics.Storage {
			t.Fatalf("%s: LIMIT metrics diverge: processed %d vs %d", name,
				got.Metrics.RowsProcessed, ref.Metrics.RowsProcessed)
		}
	}
}

func TestSkipScalarAggAndSortSinks(t *testing.T) {
	st := skipFixture(t, []int64{1})
	s := scanOf(t, st, "fact")
	filt := logical.NewFilter(s, expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300))))
	sum := expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor("f_w"))}
	agg := &logical.GroupBy{Input: filt, Aggs: []logical.AggAssign{
		{Col: expr.NewColumn("t", sum.ResultType()), Agg: sum},
	}}
	runSkipDiff(t, st, agg, true)

	s2 := scanOf(t, st, "fact")
	filt2 := logical.NewFilter(s2, expr.NewBinary(expr.OpGe, expr.Ref(s2.ColumnFor("f_v")), expr.Lit(types.Int(300))))
	srt := &logical.Sort{Input: filt2, Keys: []logical.SortKey{{E: expr.Ref(s2.ColumnFor("f_w")), Desc: true}}}
	runSkipDiff(t, st, srt, true)
}

func TestSidewaysJoinFilter(t *testing.T) {
	// Build keys live in [0, 24]: only fact partition 0 can match, the
	// other three prune on the published min/max without decoding.
	st := skipFixture(t, []int64{3, 7, 24})
	s := scanOf(t, st, "fact")
	d := scanOf(t, st, "dim")
	join := func(kind logical.JoinKind) logical.Operator {
		return &logical.Join{Kind: kind, Left: s, Right: d,
			Cond: expr.Eq(expr.Ref(s.ColumnFor("f_v")), expr.Ref(d.ColumnFor("d_k")))}
	}
	runSkipDiff(t, st, join(logical.InnerJoin), true)
	runSkipDiff(t, st, join(logical.SemiJoin), true)
	// LEFT JOIN NULL-extends unmatched probe rows: nothing may be skipped.
	runSkipDiff(t, st, join(logical.LeftJoin), false)
}

func TestSidewaysBloomRefinement(t *testing.T) {
	// Keys 105 and 2000: the build range [105, 2000] overlaps partitions 1
	// (100..124, contains 105 — kept) and 2 (200..224 — min/max overlap but
	// no value is in the bloom, so partition 2 prunes by bloom). Partitions
	// 0 and 3 prune on min/max alone... partition 3 (300..324) lies inside
	// [105, 2000] too, so it is also a bloom prune.
	st := skipFixture(t, []int64{105, 2000})
	s := scanOf(t, st, "fact")
	d := scanOf(t, st, "dim")
	plan := &logical.Join{Kind: logical.InnerJoin, Left: s, Right: d,
		Cond: expr.Eq(expr.Ref(s.ColumnFor("f_v")), expr.Ref(d.ColumnFor("d_k")))}
	runSkipDiff(t, st, plan, true)
	got, err := RunWith(plan, st, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics.Skip.BloomPruned == 0 {
		t.Fatalf("expected bloom prunes, Skip = %+v", got.Metrics.Skip)
	}
}

func TestSidewaysEmptyBuild(t *testing.T) {
	// An empty dimension can never match: every probe partition prunes.
	st := skipFixture(t, nil)
	s := scanOf(t, st, "fact")
	d := scanOf(t, st, "dim")
	plan := &logical.Join{Kind: logical.InnerJoin, Left: s, Right: d,
		Cond: expr.Eq(expr.Ref(s.ColumnFor("f_v")), expr.Ref(d.ColumnFor("d_k")))}
	runSkipDiff(t, st, plan, true)
}

func TestSkipWithScanShare(t *testing.T) {
	// Interleave a pruning query with a full scan over one sharing store:
	// chunks one query pruned must still be decodable (and cacheable) by
	// the other, in either order.
	st := skipFixture(t, []int64{1})
	opts := Options{Parallelism: 2, ShareScans: true, ScanCacheBytes: 1 << 20}
	sel := func() logical.Operator {
		s := scanOf(t, st, "fact")
		return logical.NewFilter(s, expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300))))
	}
	full := func() logical.Operator { return scanOf(t, st, "fact") }

	r1, err := RunWith(sel(), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Metrics.Skip.PartitionsPruned == 0 {
		t.Fatalf("selective query did not prune: %+v", r1.Metrics.Skip)
	}
	r2, err := RunWith(full(), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Rows) != 100 {
		t.Fatalf("full scan after pruning run returned %d rows", len(r2.Rows))
	}
	// Reverse order: cache warmed by the full scan, pruning still applies.
	r3, err := RunWith(sel(), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Metrics.Skip.PartitionsPruned == 0 {
		t.Fatalf("warm-cache selective query did not prune: %+v", r3.Metrics.Skip)
	}
	if len(r3.Rows) != len(r1.Rows) {
		t.Fatalf("warm vs cold selective rows: %d vs %d", len(r3.Rows), len(r1.Rows))
	}
}

// TestSharedPrefixSkip exercises the fused-run path: the mask family's
// shared prefix (f_v >= 300) prunes partitions on behalf of the whole
// batch, and every subscriber's rows and the fused logical metrics stay
// identical to a NoSkip fused run.
func TestSharedPrefixSkip(t *testing.T) {
	st := skipFixture(t, []int64{1})
	build := func() (logical.Operator, []SharedSub) {
		s := scanOf(t, st, "fact")
		ge := func() expr.Expr {
			return expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300)))
		}
		c0 := expr.And(ge(), expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("f_w")), expr.Lit(types.Int(10))))
		c1 := expr.And(ge(), expr.NewBinary(expr.OpLe, expr.Ref(s.ColumnFor("f_w")), expr.Lit(types.Int(10))))
		union := expr.NewBinary(expr.OpOr, c0, c1)
		plan := logical.NewFilter(s, union)
		subs := []SharedSub{
			{Comp: c0, Cols: []int{0, 1}},
			{Comp: c1, Cols: []int{0}},
		}
		return plan, subs
	}
	for _, par := range []int{1, 4} {
		plan, subs := build()
		base, basePer, err := RunShared(plan, st, Options{Parallelism: par, NoSkip: true}, subs)
		if err != nil {
			t.Fatal(err)
		}
		plan2, subs2 := build()
		got, gotPer, err := RunShared(plan2, st, Options{Parallelism: par}, subs2)
		if err != nil {
			t.Fatal(err)
		}
		for i := range subs {
			if rowsKey(gotPer[i]) != rowsKey(basePer[i]) {
				t.Fatalf("par=%d sub %d rows diverge (%d vs %d)", par, i, len(gotPer[i]), len(basePer[i]))
			}
		}
		if got.Metrics.RowsProcessed != base.Metrics.RowsProcessed ||
			got.Metrics.Storage != base.Metrics.Storage {
			t.Fatalf("par=%d fused metrics diverge: processed %d vs %d", par,
				got.Metrics.RowsProcessed, base.Metrics.RowsProcessed)
		}
		if got.Metrics.Skip.PartitionsPruned == 0 {
			t.Fatalf("par=%d shared prefix pruned nothing: %+v", par, got.Metrics.Skip)
		}
	}
}

// TestSkipWithResultCache runs a selective chain twice under the result
// cache: the miss run prunes (and its captured cost is as-if-scanned), the
// hit replays with identical rows and logical metrics and zero new prunes.
func TestSkipWithResultCache(t *testing.T) {
	st := skipFixture(t, []int64{1})
	opts := Options{Parallelism: 2, ResultCacheBytes: 1 << 20}
	mk := func() logical.Operator {
		s := scanOf(t, st, "fact")
		return logical.NewFilter(s, expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("f_v")), expr.Lit(types.Int(300))))
	}
	miss, err := RunWith(mk(), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if miss.Metrics.ResultCache.Misses != 1 || miss.Metrics.Skip.PartitionsPruned == 0 {
		t.Fatalf("miss run: %+v / %+v", miss.Metrics.ResultCache, miss.Metrics.Skip)
	}
	hit, err := RunWith(mk(), st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Metrics.ResultCache.Hits != 1 {
		t.Fatalf("expected a cache hit: %+v", hit.Metrics.ResultCache)
	}
	if rowsKey(hit.Rows) != rowsKey(miss.Rows) {
		t.Fatal("cache hit rows diverge from miss run")
	}
	if hit.Metrics.RowsProcessed != miss.Metrics.RowsProcessed ||
		hit.Metrics.Storage != miss.Metrics.Storage {
		t.Fatalf("cache hit metrics diverge: processed %d vs %d",
			hit.Metrics.RowsProcessed, miss.Metrics.RowsProcessed)
	}
	if hit.Metrics.Skip.PartitionsPruned != 0 {
		t.Fatalf("replay reported physical prunes: %+v", hit.Metrics.Skip)
	}
}
