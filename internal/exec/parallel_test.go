package exec

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
)

// parallelFixture builds a store shaped to stress the partition/merge
// paths: 400 fact rows over 5 storage partitions with a constant column
// (shard skew), a unique column (group cardinality beyond any batch size),
// a NULL-bearing key, and a small build-side table with NULL and duplicate
// join keys.
func parallelFixture(t *testing.T) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "f",
		Columns: []catalog.Column{
			{Name: "one", Type: types.KindInt64},   // constant: single group / one shard
			{Name: "uniq", Type: types.KindInt64},  // distinct per row: cardinality > batch
			{Name: "nk", Type: types.KindInt64},    // NULL every 7th row
			{Name: "val", Type: types.KindFloat64}, // float accumulation order matters
			{Name: "part", Type: types.KindInt64},  // storage partition
			{Name: "small", Type: types.KindInt64}, // 3 groups
		},
		PartitionColumn: "part",
	})
	cat.MustAdd(&catalog.Table{
		Name: "b",
		Columns: []catalog.Column{
			{Name: "bk", Type: types.KindInt64},
			{Name: "bv", Type: types.KindString},
		},
	})
	st := storage.NewStore(cat)
	var rows [][]types.Value
	for i := 0; i < 400; i++ {
		nk := types.Int(int64(i % 11))
		if i%7 == 0 {
			nk = types.NullOf(types.KindInt64)
		}
		rows = append(rows, []types.Value{
			types.Int(1),
			types.Int(int64(i)),
			nk,
			types.Float(float64(i) * 0.37),
			types.Int(int64(i % 5)),
			types.Int(int64(i % 3)),
		})
	}
	if err := st.Load("f", rows); err != nil {
		t.Fatal(err)
	}
	bRows := [][]types.Value{
		{types.Int(0), types.String("zero")},
		{types.Int(0), types.String("zero-dup")},
		{types.Int(1), types.String("one")},
		{types.NullOf(types.KindInt64), types.String("null-key")},
		{types.Int(2), types.String("two")},
	}
	if err := st.Load("b", bRows); err != nil {
		t.Fatal(err)
	}
	return st
}

// diffOptions is the configuration matrix each case runs under; the first
// entry is the row-at-a-time reference every other entry must match
// byte-for-byte (rows, order, BytesScanned, RowsProcessed).
var diffOptions = []Options{
	{Parallelism: 1, BatchSize: 1},
	{Parallelism: 8, BatchSize: 1024},
	{Parallelism: 4, BatchSize: 16},
	{Parallelism: 3, BatchSize: 7},
}

func renderResult(res *Result) string {
	var b strings.Builder
	for _, r := range res.Rows {
		for j, v := range r {
			if j > 0 {
				b.WriteByte('|')
			}
			b.WriteString(v.String())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func assertConfigInvariant(t *testing.T, st *storage.Store, plan logical.Operator, wantRows int) {
	t.Helper()
	if err := logical.Validate(plan); err != nil {
		t.Fatalf("invalid plan: %v\n%s", err, logical.Format(plan))
	}
	var want string
	var wantBytes, wantProcessed int64
	for i, opts := range diffOptions {
		res, err := RunWith(plan, st, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if wantRows >= 0 && len(res.Rows) != wantRows {
			t.Fatalf("opts %+v: %d rows, want %d", opts, len(res.Rows), wantRows)
		}
		got := renderResult(res)
		if i == 0 {
			want = got
			wantBytes = res.Metrics.Storage.BytesScanned
			wantProcessed = res.Metrics.RowsProcessed
			continue
		}
		if got != want {
			t.Fatalf("opts %+v: rows differ from row-at-a-time reference\ngot:\n%s\nwant:\n%s", opts, got, want)
		}
		if res.Metrics.Storage.BytesScanned != wantBytes {
			t.Errorf("opts %+v: bytes scanned %d != %d", opts, res.Metrics.Storage.BytesScanned, wantBytes)
		}
		if res.Metrics.RowsProcessed != wantProcessed {
			t.Errorf("opts %+v: rows processed %d != %d", opts, res.Metrics.RowsProcessed, wantProcessed)
		}
	}
}

func sumAgg(s *logical.Scan, col string) logical.AggAssign {
	return logical.AggAssign{
		Col: expr.NewColumn("s_"+col, types.KindFloat64),
		Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor(col))},
	}
}

func countStar() logical.AggAssign {
	return logical.AggAssign{
		Col: expr.NewColumn("cnt", types.KindInt64),
		Agg: expr.AggCall{Fn: expr.AggCountStar},
	}
}

// TestParallelGroupByPartitionMerge drives the partition-wise aggregation
// through its edge cases; every configuration must reproduce the
// row-at-a-time reference exactly.
func TestParallelGroupByPartitionMerge(t *testing.T) {
	st := parallelFixture(t)
	cases := []struct {
		name     string
		key      string
		empty    bool
		wantRows int
	}{
		{name: "empty_input", key: "small", empty: true, wantRows: 0},
		{name: "single_group", key: "one", wantRows: 1},
		{name: "skew_all_rows_one_shard", key: "one", wantRows: 1},
		{name: "cardinality_exceeds_batch", key: "uniq", wantRows: 400},
		{name: "null_group_keys", key: "nk", wantRows: 12}, // 11 non-null + NULL group
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s := scanOf(t, st, "f")
			var input logical.Operator = s
			if tc.empty {
				input = logical.NewFilter(s, expr.FalseExpr())
			}
			plan := &logical.GroupBy{
				Input: input,
				Keys:  []*expr.Column{s.ColumnFor(tc.key)},
				Aggs: []logical.AggAssign{
					countStar(),
					sumAgg(s, "val"),
					{Col: expr.NewColumn("masked", types.KindInt64),
						Agg: expr.AggCall{Fn: expr.AggCountStar,
							Mask: expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("uniq")), expr.Lit(types.Int(200)))}},
				},
			}
			assertConfigInvariant(t, st, plan, tc.wantRows)
		})
	}
}

// TestParallelGroupByMultiKey covers composite keys with NULLs in one
// component, where key hashing and key encoding must stay aligned.
func TestParallelGroupByMultiKey(t *testing.T) {
	st := parallelFixture(t)
	s := scanOf(t, st, "f")
	plan := &logical.GroupBy{
		Input: s,
		Keys:  []*expr.Column{s.ColumnFor("small"), s.ColumnFor("nk")},
		Aggs:  []logical.AggAssign{countStar(), sumAgg(s, "val")},
	}
	assertConfigInvariant(t, st, plan, -1)
}

// TestParallelJoinBuildPartition drives the partitioned parallel hash-join
// build: empty build side, NULL build and probe keys, duplicate build keys
// (bucket order must be preserved) and LEFT JOIN NULL extension.
func TestParallelJoinBuildPartition(t *testing.T) {
	st := parallelFixture(t)
	cases := []struct {
		name       string
		kind       logical.JoinKind
		emptyBuild bool
	}{
		{name: "inner", kind: logical.InnerJoin},
		{name: "left_null_extend", kind: logical.LeftJoin},
		{name: "empty_build_side", kind: logical.InnerJoin, emptyBuild: true},
		{name: "left_empty_build", kind: logical.LeftJoin, emptyBuild: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			f := scanOf(t, st, "f")
			b := scanOf(t, st, "b")
			var right logical.Operator = b
			if tc.emptyBuild {
				right = logical.NewFilter(b, expr.FalseExpr())
			}
			// Join on nk = bk: NULLs on both sides, duplicates in the build
			// (bk=0 twice), probe keys 0..10 vs build keys 0..2.
			plan := &logical.Join{
				Kind:  tc.kind,
				Left:  f,
				Right: right,
				Cond:  expr.Eq(expr.Ref(f.ColumnFor("nk")), expr.Ref(b.ColumnFor("bk"))),
			}
			assertConfigInvariant(t, st, plan, -1)
		})
	}
}

// TestParallelJoinAboveParallelAgg stacks the two new parallel operators —
// aggregation feeding a join build — to confirm pool sharing composes.
func TestParallelJoinAboveParallelAgg(t *testing.T) {
	st := parallelFixture(t)
	f := scanOf(t, st, "f")
	b := scanOf(t, st, "b")
	gb := &logical.GroupBy{
		Input: f,
		Keys:  []*expr.Column{f.ColumnFor("nk")},
		Aggs:  []logical.AggAssign{countStar(), sumAgg(f, "val")},
	}
	plan := &logical.Join{
		Kind:  logical.InnerJoin,
		Left:  gb,
		Right: b,
		Cond:  expr.Eq(expr.Ref(f.ColumnFor("nk")), expr.Ref(b.ColumnFor("bk"))),
	}
	assertConfigInvariant(t, st, plan, -1)
}

// TestMorselTargetStable pins the scan morsel sizing used by the shared
// pool so parallel and serial scans keep charging identical storage bytes.
func TestMorselTargetStable(t *testing.T) {
	st := parallelFixture(t)
	for _, opts := range diffOptions {
		res, err := RunWith(scanOf(t, st, "f"), st, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 400 {
			t.Fatalf("opts %+v: %d rows", opts, len(res.Rows))
		}
	}
}
