package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/types"
)

// evalFn is a compiled expression: column references are resolved to row
// slots once at build time, so per-row evaluation does no map lookups and
// no tree walking. This matters for fused plans, which trade duplicate
// scans for extra mask evaluations per row.
type evalFn func(Row) types.Value

// compileExpr lowers an expression into a closure over the row layout.
func compileExpr(e expr.Expr, layout map[expr.ColumnID]int) (evalFn, error) {
	switch x := e.(type) {
	case *expr.Literal:
		v := x.Val
		return func(Row) types.Value { return v }, nil

	case *expr.ColumnRef:
		idx, ok := layout[x.Col.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column %s not bound in row layout", x.Col)
		}
		return func(r Row) types.Value { return r[idx] }, nil

	case *expr.Binary:
		return compileBinary(x, layout)

	case *expr.Not:
		inner, err := compileExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		return func(r Row) types.Value {
			v := inner(r)
			if v.Null {
				return types.NullOf(types.KindBool)
			}
			return types.Bool(!v.AsBool())
		}, nil

	case *expr.IsNull:
		inner, err := compileExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		neg := x.Neg
		return func(r Row) types.Value {
			v := inner(r)
			if neg {
				return types.Bool(!v.Null)
			}
			return types.Bool(v.Null)
		}, nil

	case *expr.Case:
		conds := make([]evalFn, len(x.Whens))
		thens := make([]evalFn, len(x.Whens))
		for i, w := range x.Whens {
			var err error
			if conds[i], err = compileExpr(w.Cond, layout); err != nil {
				return nil, err
			}
			if thens[i], err = compileExpr(w.Then, layout); err != nil {
				return nil, err
			}
		}
		var elseFn evalFn
		if x.Else != nil {
			var err error
			if elseFn, err = compileExpr(x.Else, layout); err != nil {
				return nil, err
			}
		}
		resultKind := x.Type()
		return func(r Row) types.Value {
			for i := range conds {
				if conds[i](r).IsTrue() {
					return thens[i](r)
				}
			}
			if elseFn != nil {
				return elseFn(r)
			}
			return types.NullOf(resultKind)
		}, nil

	case *expr.InList:
		inner, err := compileExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		items := make([]evalFn, len(x.List))
		for i, it := range x.List {
			if items[i], err = compileExpr(it, layout); err != nil {
				return nil, err
			}
		}
		neg := x.Neg
		return func(r Row) types.Value {
			v := inner(r)
			if v.Null {
				return types.NullOf(types.KindBool)
			}
			sawNull := false
			for _, it := range items {
				iv := it(r)
				if iv.Null {
					sawNull = true
					continue
				}
				if types.Compare(v, iv) == 0 {
					return types.Bool(!neg)
				}
			}
			if sawNull {
				return types.NullOf(types.KindBool)
			}
			return types.Bool(neg)
		}, nil

	case *expr.Like:
		inner, err := compileExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		pattern := x.Pattern
		return func(r Row) types.Value {
			v := inner(r)
			if v.Null {
				return types.NullOf(types.KindBool)
			}
			return types.Bool(expr.MatchLike(v.S, pattern))
		}, nil

	case *expr.Coalesce:
		args := make([]evalFn, len(x.Args))
		for i, a := range x.Args {
			var err error
			if args[i], err = compileExpr(a, layout); err != nil {
				return nil, err
			}
		}
		kind := x.Type()
		return func(r Row) types.Value {
			for _, a := range args {
				if v := a(r); !v.Null {
					return v
				}
			}
			return types.NullOf(kind)
		}, nil

	default:
		return nil, fmt.Errorf("exec: cannot compile %T", e)
	}
}

func compileBinary(x *expr.Binary, layout map[expr.ColumnID]int) (evalFn, error) {
	l, err := compileExpr(x.L, layout)
	if err != nil {
		return nil, err
	}
	r, err := compileExpr(x.R, layout)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case expr.OpAnd:
		return func(row Row) types.Value {
			lv := l(row)
			if !lv.Null && !lv.AsBool() {
				return types.Bool(false)
			}
			rv := r(row)
			if !rv.Null && !rv.AsBool() {
				return types.Bool(false)
			}
			if lv.Null || rv.Null {
				return types.NullOf(types.KindBool)
			}
			return types.Bool(true)
		}, nil
	case expr.OpOr:
		return func(row Row) types.Value {
			lv := l(row)
			if !lv.Null && lv.AsBool() {
				return types.Bool(true)
			}
			rv := r(row)
			if !rv.Null && rv.AsBool() {
				return types.Bool(true)
			}
			if lv.Null || rv.Null {
				return types.NullOf(types.KindBool)
			}
			return types.Bool(false)
		}, nil
	}
	if x.Op.IsComparison() {
		op := x.Op
		return func(row Row) types.Value {
			lv := l(row)
			if lv.Null {
				return types.NullOf(types.KindBool)
			}
			rv := r(row)
			if rv.Null {
				return types.NullOf(types.KindBool)
			}
			c := types.Compare(lv, rv)
			switch op {
			case expr.OpEq:
				return types.Bool(c == 0)
			case expr.OpNe:
				return types.Bool(c != 0)
			case expr.OpLt:
				return types.Bool(c < 0)
			case expr.OpLe:
				return types.Bool(c <= 0)
			case expr.OpGt:
				return types.Bool(c > 0)
			default:
				return types.Bool(c >= 0)
			}
		}, nil
	}
	// Arithmetic.
	op := x.Op
	resultKind := x.Type()
	return func(row Row) types.Value {
		lv := l(row)
		if lv.Null {
			return types.NullOf(resultKind)
		}
		rv := r(row)
		if rv.Null {
			return types.NullOf(resultKind)
		}
		if op == expr.OpDiv {
			rf := rv.AsFloat()
			if rf == 0 {
				return types.NullOf(types.KindFloat64)
			}
			return types.Float(lv.AsFloat() / rf)
		}
		if lv.Kind == types.KindFloat64 || rv.Kind == types.KindFloat64 {
			lf, rf := lv.AsFloat(), rv.AsFloat()
			switch op {
			case expr.OpAdd:
				return types.Float(lf + rf)
			case expr.OpSub:
				return types.Float(lf - rf)
			default:
				return types.Float(lf * rf)
			}
		}
		switch op {
		case expr.OpAdd:
			return types.Int(lv.I + rv.I)
		case expr.OpSub:
			return types.Int(lv.I - rv.I)
		default:
			return types.Int(lv.I * rv.I)
		}
	}, nil
}
