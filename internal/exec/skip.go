package exec

import (
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Data skipping. Storage chunks carry write-time zone maps
// (storage.ChunkStats: min/max, null count, NaN flag); this file turns the
// scan predicates that reach a leaf — the chain's own conjuncts, the
// mask-family shared-prefix conjuncts of a fused run, and sideways min/max
// + bloom filters published by hash-join builds — into per-partition prune
// decisions evaluated BEFORE decode.
//
// The contract that keeps every differential in the repo green: pruning
// changes only physical work. Partitions with a provably-empty survivor
// set skip decode, but BytesScanned/RowsScanned are still charged at
// ScanPartitions (unchanged), and RowsProcessed is re-charged exactly
// as-if-scanned — NumRows times the charge schedule the partition's rows
// would have walked (scan emit plus every stage at or below the filter
// that kills them). The recharge is applied at the consumer-side stream
// position the partition's batches would have occupied, which keeps LIMIT
// early-exit byte-identical too: a zero-survivor partition's batches are
// consumed atomically by the filter's hunt loop in a no-skip run, so the
// consumer reaches the partition's position exactly when it would have
// paid for it.

// SkipMetrics counts data-skipping activity for one run. Counters are
// informational (the logical metrics above are recharged exactly); under
// LIMIT, scan workers running ahead of the consumer may count prunes the
// truncated no-skip run would never have reached.
type SkipMetrics struct {
	// ChunksPruned counts column chunks whose decode was skipped;
	// PartitionsPruned the partitions they belong to.
	ChunksPruned     int64
	PartitionsPruned int64
	// BloomPruned counts partitions pruned by a sideways bloom filter
	// (min/max overlapped but no build key could match).
	BloomPruned int64
	// PrunedBytes is the encoded payload bytes whose decode was skipped —
	// still charged to BytesScanned, no longer paid in decode work.
	PrunedBytes int64
}

func (m *Metrics) addChunksPruned(n int64)     { atomic.AddInt64(&m.Skip.ChunksPruned, n) }
func (m *Metrics) addPartitionsPruned(n int64) { atomic.AddInt64(&m.Skip.PartitionsPruned, n) }
func (m *Metrics) addBloomPruned(n int64)      { atomic.AddInt64(&m.Skip.BloomPruned, n) }
func (m *Metrics) addPrunedBytes(n int64)      { atomic.AddInt64(&m.Skip.PrunedBytes, n) }

// skipCheck is one compiled zone-map test: prunable reports whether the
// predicate it was compiled from is provably false-or-NULL for every row
// of a chunk with the given stats.
type skipCheck struct {
	col      string
	prunable func(st *storage.ChunkStats, count int) bool
}

// skipController carries a scan leaf's prune state. One controller exists
// per built scan leaf (nil under Options.NoSkip); its checks are filled in
// by whichever layer knows the predicate — the pull filter directly above
// the scan, the push chain compiler, or a hash join attaching sideways
// filters — together with the matching RowsProcessed recharge factor.
type skipController struct {
	m    *Metrics
	cols []string
	// rcDepth is the result-cache capture depth the scan was built at.
	// Layers outside the captured subtree (a filter above a captured bare
	// scan, a join build) must not configure checks on it: pruning driven
	// by a predicate that is not part of the cached sub-plan would corrupt
	// the entry other queries replay.
	rcDepth int
	// factor is the as-if-scanned RowsProcessed charge per pruned row:
	// FilterPos+2 for predicate checks (scan emit + stages up to and
	// including the filter), 2+numProjects for sideways filters (scan emit
	// + projects + join probe input).
	factor   int64
	checks   []skipCheck
	sideways []*sidewaysFilter
}

// configure installs predicate-driven zone checks and their recharge
// factor. No-op on a nil controller or when there is nothing to check.
func (sc *skipController) configure(factor int64, checks []skipCheck) {
	if sc == nil || len(checks) == 0 {
		return
	}
	sc.factor = factor
	sc.checks = checks
}

func (sc *skipController) active() bool {
	return sc != nil && (len(sc.checks) > 0 || len(sc.sideways) > 0)
}

// shouldPrune decides whether the partition's survivor set is provably
// empty, bumping the Skip counters on a prune. Safe to call from scan
// workers; the RowsProcessed recharge is the caller's job (consumer-side).
func (sc *skipController) shouldPrune(p *storage.Partition) bool {
	if !sc.active() {
		return false
	}
	pruned, byBloom := false, false
	for _, ck := range sc.checks {
		chunk := p.Chunk(ck.col)
		if chunk == nil {
			continue
		}
		st := chunk.Stats()
		if st == nil {
			continue // legacy stats-less chunk: must decode
		}
		if ck.prunable(st, chunk.Count) {
			pruned = true
			break
		}
	}
	if !pruned {
		for _, sf := range sc.sideways {
			switch sf.check(p) {
			case sidewaysPrune:
				pruned = true
			case sidewaysPruneBloom:
				pruned, byBloom = true, true
			}
			if pruned {
				break
			}
		}
	}
	if !pruned {
		return false
	}
	sc.m.addPartitionsPruned(1)
	sc.m.addChunksPruned(int64(len(sc.cols)))
	if byBloom {
		sc.m.addBloomPruned(1)
	}
	var bytes int64
	for _, c := range sc.cols {
		if ch := p.Chunk(c); ch != nil {
			bytes += ch.Bytes
		}
	}
	sc.m.addPrunedBytes(bytes)
	return true
}

// recharge restores the exact as-if-scanned RowsProcessed for rows pruned
// rows of skipped partitions.
func (sc *skipController) recharge(rows int64) {
	if rows > 0 {
		sc.m.addProcessed(rows * sc.factor)
	}
}

// registerScanCtrl records the controller created for a scan leaf so later
// build stages (the pull filter above it, a joining hash build) can find
// it. Every registration allocates a fresh record: configuring layers
// snapshot the record before building a subtree and only act when the
// pointer changed, so a result-cache replay (which builds no scan) can
// never hand them a stale controller belonging to an earlier build of the
// same node. Building the same node twice also marks the record as a
// duplicate, which blocks sideways attachment (ambiguous ownership).
func (ex *executor) registerScanCtrl(s *logical.Scan, ctrl *skipController) {
	if ex.sideCtrls == nil {
		ex.sideCtrls = make(map[*logical.Scan]*scanCtrlReg)
	}
	ex.sideCtrls[s] = &scanCtrlReg{ctrl: ctrl, dup: ex.sideCtrls[s] != nil}
}

// lookupScanCtrl returns the controller of the scan's most recent build in
// this run, nil when none exists (NoSkip, or a cache replay skipped the
// build). Configuring layers must additionally check ctrl.rcDepth against
// their own depth.
func (ex *executor) lookupScanCtrl(s *logical.Scan) (*skipController, bool) {
	reg := ex.sideCtrls[s]
	if reg == nil {
		return nil, false
	}
	return reg.ctrl, reg.dup
}

type scanCtrlReg struct {
	ctrl *skipController
	dup  bool
}

// configureScanSkip compiles zone-map checks for a scan leaf from the
// filter conjuncts directly above it — plus any fused shared-prefix
// conjuncts RunShared resolved for the leaf — and installs them at the
// given as-if-scanned recharge factor. prev is the leaf's registration
// record snapshotted before the subtree build: an unchanged record means
// the build did not reach the scan (result-cache replay), and a depth
// mismatch means the scan was captured into a cache entry the configuring
// filter is not part of; both cases leave pruning off.
func (ex *executor) configureScanSkip(s *logical.Scan, prev *scanCtrlReg, conjuncts []expr.Expr, factor int64) {
	reg := ex.sideCtrls[s]
	if reg == nil || reg == prev || reg.ctrl.rcDepth != ex.rcDepth {
		return
	}
	checks := compileSkipChecks(conjuncts, scanAliasMap(s))
	checks = append(checks, ex.extraSkip[s]...)
	reg.ctrl.configure(factor, checks)
}

// configureChainSkip installs zone checks for a fused chain's scan from the
// chain's first filter stage, resolved through the project stages below it,
// plus any fused shared-prefix checks RunShared staged for the leaf. The
// recharge factor is fp+2: a pruned row would have charged the scan emit
// plus every stage up to and including the filter that kills it (the same
// schedule ChainShape.SoloRowsProcessed replays for zero survivors). Called
// immediately after scanSource registered the leaf, so the controller is
// necessarily fresh and same-depth.
func (ex *executor) configureChainSkip(cs *chainSpec) {
	ctrl, _ := ex.lookupScanCtrl(cs.scan)
	if ctrl == nil || ctrl.rcDepth != ex.rcDepth {
		return
	}
	fp := -1
	for si := range cs.stages {
		if cs.stages[si].kind == stageFilter {
			fp = si
			break
		}
	}
	if fp < 0 {
		return
	}
	checks := compileSkipChecks(expr.Conjuncts(cs.stages[fp].cond), chainAliasMap(cs, fp))
	checks = append(checks, ex.extraSkip[cs.scan]...)
	ctrl.configure(int64(fp)+2, checks)
}

// feedPrefixSkip stages zone checks compiled from a fused run's mask-family
// shared-prefix conjuncts — the predicate intersection every batched client
// agrees on — for the plan's scan leaf. A root row failing a prefix
// conjunct fails every client's compensating mask, and the fused filter
// admits exactly the union of client rows, so such rows are dropped at the
// chain's filter stage. Requiring exactly one filter stage pins *where*:
// zero survivors at that stage, which is what the chain's recharge factor
// assumes. The checks join whatever the chain's own filter contributes via
// configureChainSkip / configureScanSkip.
func (ex *executor) feedPrefixSkip(plan logical.Operator, prefix []expr.Expr) {
	cs, ok := compileChain(plan)
	if !ok {
		return
	}
	filters := 0
	for si := range cs.stages {
		if cs.stages[si].kind == stageFilter {
			filters++
		}
	}
	if filters != 1 {
		return
	}
	checks := compileSkipChecks(prefix, chainAliasMap(cs, len(cs.stages)))
	if len(checks) == 0 {
		return
	}
	if ex.extraSkip == nil {
		ex.extraSkip = make(map[*logical.Scan][]skipCheck)
	}
	ex.extraSkip[cs.scan] = checks
}

// scanAliasMap is the identity resolution over a scan leaf: each scan
// output column ID maps to its storage column name.
func scanAliasMap(s *logical.Scan) map[expr.ColumnID]string {
	m := make(map[expr.ColumnID]string, len(s.Cols))
	for i, c := range s.Cols {
		m[c.ID] = s.ColNames[i]
	}
	return m
}

// chainAliasMap resolves column IDs visible at the input of stage upto
// (pass len(stages) for the chain root's output) down to scan column names
// through pure project aliases. IDs crossing a computed assignment drop
// out — predicates over them simply compile to no zone check.
func chainAliasMap(cs *chainSpec, upto int) map[expr.ColumnID]string {
	m := scanAliasMap(cs.scan)
	if upto > len(cs.stages) {
		upto = len(cs.stages)
	}
	for si := 0; si < upto; si++ {
		ss := &cs.stages[si]
		if ss.kind != stageProject {
			continue
		}
		nm := make(map[expr.ColumnID]string, len(ss.assigns))
		for _, a := range ss.assigns {
			if cr, ok := a.E.(*expr.ColumnRef); ok {
				if name, ok2 := m[cr.Col.ID]; ok2 {
					nm[a.Col.ID] = name
				}
			}
		}
		m = nm
	}
	return m
}

// compileSkipChecks turns conjuncts into zone-map checks, resolving column
// references to storage column names through resolve. Only shapes a zone
// map can decide contribute: one scan column compared against a literal
// (either orientation), IS [NOT] NULL on a scan column, and positive IN
// lists of literals. Everything else — column-vs-column, arithmetic,
// non-column operands, unresolvable references — compiles to no check, and
// pruning simply sees fewer opportunities; soundness never depends on
// completeness.
func compileSkipChecks(conjuncts []expr.Expr, resolve map[expr.ColumnID]string) []skipCheck {
	scanCol := func(e expr.Expr) (string, bool) {
		cr, ok := e.(*expr.ColumnRef)
		if !ok {
			return "", false
		}
		name, ok := resolve[cr.Col.ID]
		return name, ok
	}
	var out []skipCheck
	for _, cj := range conjuncts {
		switch x := cj.(type) {
		case *expr.Binary:
			if !x.Op.IsComparison() {
				continue
			}
			if col, ok := scanCol(x.L); ok {
				if lit, ok2 := x.R.(*expr.Literal); ok2 {
					out = append(out, cmpCheck(col, x.Op, lit.Val))
				}
			} else if col, ok := scanCol(x.R); ok {
				if lit, ok2 := x.L.(*expr.Literal); ok2 {
					out = append(out, cmpCheck(col, flipCmp(x.Op), lit.Val))
				}
			}
		case *expr.IsNull:
			if col, ok := scanCol(x.E); ok {
				neg := x.Neg
				out = append(out, skipCheck{col: col, prunable: func(st *storage.ChunkStats, count int) bool {
					if neg {
						return st.NullCount == count // IS NOT NULL over all-NULL
					}
					return st.NullCount == 0 // IS NULL over no-NULL
				}})
			}
		case *expr.InList:
			if x.Neg {
				continue
			}
			col, ok := scanCol(x.E)
			if !ok {
				continue
			}
			lits := make([]types.Value, 0, len(x.List))
			allLit := true
			for _, item := range x.List {
				l, isLit := item.(*expr.Literal)
				if !isLit {
					allLit = false
					break
				}
				lits = append(lits, l.Val)
			}
			if !allLit {
				continue
			}
			out = append(out, skipCheck{col: col, prunable: func(st *storage.ChunkStats, count int) bool {
				for _, v := range lits {
					// A NULL list item yields NULL, never TRUE — it cannot
					// save a row, so it cannot block pruning either.
					if v.Null {
						continue
					}
					if !cmpPrunable(st, count, expr.OpEq, v) {
						return false
					}
				}
				return true
			}})
		}
	}
	return out
}

func cmpCheck(col string, op expr.BinOp, lit types.Value) skipCheck {
	return skipCheck{col: col, prunable: func(st *storage.ChunkStats, count int) bool {
		return cmpPrunable(st, count, op, lit)
	}}
}

// cmpPrunable reports whether `col OP lit` is false-or-NULL for every row
// of a chunk. types.Compare over [Min, Max] spans the contiguous range
// [Compare(Min,lit), Compare(Max,lit)]; the predicate survives only if
// some point of that range satisfies the operator. NaN compares 0 against
// everything under types.Compare, so a NaN-bearing chunk extends the range
// to include 0 (the bounds themselves exclude NaN at write time).
func cmpPrunable(st *storage.ChunkStats, count int, op expr.BinOp, lit types.Value) bool {
	if lit.Null {
		return true // comparison with NULL is NULL for every row
	}
	if st.NullCount == count {
		return true // all-NULL chunk: every comparison is NULL
	}
	lo, hi := 1, -1 // empty range
	if st.HasBounds {
		if !types.Comparable(st.Min.Kind, lit.Kind) {
			return false
		}
		lo = types.Compare(st.Min, lit)
		hi = types.Compare(st.Max, lit)
		if lo > hi {
			lo, hi = hi, lo
		}
	}
	if st.HasNaN {
		if !st.HasBounds {
			lo, hi = 0, 0 // every non-NULL value is NaN
		} else {
			if lo > 0 {
				lo = 0
			}
			if hi < 0 {
				hi = 0
			}
		}
	}
	if lo > hi {
		return false // no usable bounds: must decode
	}
	for c := lo; c <= hi; c++ {
		if compareSatisfies(op, c) {
			return false
		}
	}
	return true
}

// ---- Sideways join filters ----

// bloomWords sizes the blocked bloom filter over build keys: 1<<14 bits in
// 256 words. Fixed so parallel build shards can OR-merge their filters.
const bloomWords = 256

func bloomSet(bloom []uint64, h uint64) {
	bits := uint64(1)<<(h&63) | uint64(1)<<((h>>6)&63)
	bloom[(h>>32)%bloomWords] |= bits
}

func bloomMay(bloom []uint64, h uint64) bool {
	bits := uint64(1)<<(h&63) | uint64(1)<<((h>>6)&63)
	return bloom[(h>>32)%bloomWords]&bits == bits
}

// buildKeyStats is the published summary of one key position of a
// completed hash-join build: the range of regular (non-NULL, non-NaN) key
// values, whether NaN keys exist (they join under encodeKey equality), and
// a blocked bloom filter (nil for float keys, whose hash canonicalizes
// NaN).
type buildKeyStats struct {
	hasRows   bool
	hasBounds bool
	min, max  types.Value
	hasNaN    bool
	bloom     []uint64
}

type sidewaysVerdict uint8

const (
	sidewaysPass sidewaysVerdict = iota
	sidewaysPrune
	sidewaysPruneBloom
)

// sidewaysFilter connects one hash-join build key position to the probe
// scan column it equi-joins against. state is nil until the build
// completes — probe workers that outrun the build simply do not prune.
// (They cannot: hashJoinIter drains its build before the first probe
// pull, and probe iterators start lazily.)
type sidewaysFilter struct {
	col    string // probe-side scan column
	keyPos int    // build key position (index into rightKeys)
	kind   types.Kind
	state  atomic.Pointer[buildKeyStats]
}

// check decides whether the probe partition can contain any row whose key
// matches a build key. A NULL probe key never matches (and the attaching
// join kinds, inner and semi, drop unmatched rows), so all-NULL chunks
// prune unconditionally once the build is known.
func (sf *sidewaysFilter) check(p *storage.Partition) sidewaysVerdict {
	st := sf.state.Load()
	if st == nil {
		return sidewaysPass
	}
	if !st.hasRows {
		return sidewaysPrune // empty build side: nothing ever matches
	}
	chunk := p.Chunk(sf.col)
	if chunk == nil {
		return sidewaysPass
	}
	cst := chunk.Stats()
	if cst == nil {
		return sidewaysPass
	}
	if cst.NullCount == chunk.Count {
		return sidewaysPrune
	}
	// A NaN probe value can only match a NaN build key (encodeKey equality).
	nanMatch := cst.HasNaN && st.hasNaN
	if !cst.HasBounds {
		// Every non-NULL probe value is NaN.
		if nanMatch {
			return sidewaysPass
		}
		return sidewaysPrune
	}
	if !st.hasBounds {
		// Build has rows but no regular-valued keys (all NaN).
		if nanMatch {
			return sidewaysPass
		}
		return sidewaysPrune
	}
	if types.Compare(cst.Max, st.min) < 0 || types.Compare(cst.Min, st.max) > 0 {
		if nanMatch {
			return sidewaysPass
		}
		return sidewaysPrune
	}
	if st.bloom != nil {
		if miss, decided := bloomDisjoint(st.bloom, cst); decided && miss && !nanMatch {
			return sidewaysPruneBloom
		}
	}
	return sidewaysPass
}

// bloomDisjoint tests whether NO value the chunk can contain is possibly
// present in the build bloom. Integer-family chunks enumerate their value
// domain when the span is small; string chunks decide only the
// single-value case. decided=false means the domain was too wide to test.
func bloomDisjoint(bloom []uint64, cst *storage.ChunkStats) (miss, decided bool) {
	var scratch [1]types.Value
	switch cst.Min.Kind {
	case types.KindInt64, types.KindDate, types.KindBool:
		lo, hi := cst.Min.I, cst.Max.I
		if span := hi - lo; span < 0 || span >= 1024 {
			return false, false
		}
		for v := lo; v <= hi; v++ {
			scratch[0] = types.Value{Kind: cst.Min.Kind, I: v}
			if bloomMay(bloom, vec.HashKey(scratch[:])) {
				return false, true
			}
		}
		return true, true
	case types.KindString:
		if cst.Min.S != cst.Max.S {
			return false, false
		}
		scratch[0] = cst.Min
		return !bloomMay(bloom, vec.HashKey(scratch[:])), true
	}
	return false, false
}

// keyAccum accumulates build-side key statistics during table insertion;
// the parallel build keeps one per shard per key position and merges
// after the workers drain.
type keyAccum struct {
	kind      types.Kind
	hasRows   bool
	hasBounds bool
	min, max  types.Value
	hasNaN    bool
	bloom     []uint64
	scratch   [1]types.Value
}

func newKeyAccum(kind types.Kind) *keyAccum {
	a := &keyAccum{kind: kind}
	if kind != types.KindFloat64 {
		a.bloom = make([]uint64, bloomWords)
	}
	return a
}

// observe records one inserted (non-NULL-key) build row's key value.
func (a *keyAccum) observe(v types.Value) {
	a.hasRows = true
	if v.Kind == types.KindFloat64 && v.F != v.F {
		a.hasNaN = true
		return
	}
	if !a.hasBounds {
		a.min, a.max, a.hasBounds = v, v, true
	} else {
		if types.Compare(v, a.min) < 0 {
			a.min = v
		}
		if types.Compare(v, a.max) > 0 {
			a.max = v
		}
	}
	if a.bloom != nil {
		a.scratch[0] = v
		bloomSet(a.bloom, vec.HashKey(a.scratch[:]))
	}
}

func (a *keyAccum) merge(b *keyAccum) {
	if b == nil || !b.hasRows {
		return
	}
	a.hasRows = true
	a.hasNaN = a.hasNaN || b.hasNaN
	if b.hasBounds {
		if !a.hasBounds {
			a.min, a.max, a.hasBounds = b.min, b.max, true
		} else {
			if types.Compare(b.min, a.min) < 0 {
				a.min = b.min
			}
			if types.Compare(b.max, a.max) > 0 {
				a.max = b.max
			}
		}
	}
	if a.bloom != nil && b.bloom != nil {
		for i := range a.bloom {
			a.bloom[i] |= b.bloom[i]
		}
	}
}

// publish installs the accumulated summary into the filter, enabling
// probe-side pruning from this point on.
func (a *keyAccum) publish(sf *sidewaysFilter) {
	sf.state.Store(&buildKeyStats{
		hasRows:   a.hasRows,
		hasBounds: a.hasBounds,
		min:       a.min,
		max:       a.max,
		hasNaN:    a.hasNaN,
		bloom:     a.bloom,
	})
}

// probeScan recognizes a join's probe subtree as a pure Project* chain
// over one Scan, returning the leaf and the project stages root-to-leaf.
func probeScan(op logical.Operator) (*logical.Scan, []*logical.Project) {
	var projects []*logical.Project
	for {
		switch o := op.(type) {
		case *logical.Project:
			projects = append(projects, o)
			op = o.Input
		case *logical.Scan:
			return o, projects
		default:
			return nil, nil
		}
	}
}

// attachSideways wires a hash join's build keys into the probe-side scan's
// controller. The probe subtree must be a pure Project* chain over one
// Scan (a Filter would make unmatched-row elimination observable upstream;
// anything else ends the walk), the join must drop unmatched probe rows
// (inner/semi — a LEFT JOIN NULL-extends them, so nothing may be skipped),
// and each attached key must resolve through pure column aliases to a scan
// column of the same kind as the build key (encodeKey equality implies
// range-comparability only within a kind). prev is the probe scan's
// registration snapshotted before the probe subtree build — an unchanged
// record means a cache replay served the probe and no live scan exists.
// Returns the filters for the hashJoinIter to fill at build completion, or
// nil when attachment is unsafe.
func (ex *executor) attachSideways(j *logical.Join, leftKeyExprs, rightKeyExprs []expr.Expr, prev *scanCtrlReg) []*sidewaysFilter {
	if ex.opts.NoSkip {
		return nil
	}
	if j.Kind != logical.InnerJoin && j.Kind != logical.SemiJoin {
		return nil
	}
	scan, projects := probeScan(j.Left)
	if scan == nil {
		return nil
	}
	reg := ex.sideCtrls[scan]
	if reg == nil || reg == prev || reg.dup || reg.ctrl.rcDepth != ex.rcDepth {
		// No live controller (NoSkip, or a cache replay served the probe),
		// an ambiguous double-build, or the probe scan lives inside a
		// result-cache capture whose entry must stay join-independent.
		return nil
	}
	ctrl := reg.ctrl
	if len(ctrl.checks) > 0 || len(ctrl.sideways) > 0 {
		// The leaf already carries a predicate configuration (defensive:
		// the walk above admits no filter) — factors would conflict.
		return nil
	}
	var filters []*sidewaysFilter
	for ki, ke := range leftKeyExprs {
		cr, ok := ke.(*expr.ColumnRef)
		if !ok {
			continue
		}
		id := cr.Col.ID
		// Resolve through the project stages top-down; only pure aliases.
		resolved := true
		for _, p := range projects {
			next, ok := aliasTarget(p, id)
			if !ok {
				resolved = false
				break
			}
			id = next
		}
		if !resolved {
			continue
		}
		col, ok := scanColName(scan, id)
		if !ok {
			continue
		}
		if rightKeyExprs[ki].Type() != colKind(scan, id) {
			continue
		}
		filters = append(filters, &sidewaysFilter{col: col, keyPos: ki, kind: rightKeyExprs[ki].Type()})
	}
	if len(filters) == 0 {
		return nil
	}
	ctrl.factor = int64(2 + len(projects))
	ctrl.sideways = filters
	return filters
}

// aliasTarget resolves output column id through a project stage when its
// assignment is a pure column reference.
func aliasTarget(p *logical.Project, id expr.ColumnID) (expr.ColumnID, bool) {
	for _, a := range p.Cols {
		if a.Col.ID == id {
			if cr, ok := a.E.(*expr.ColumnRef); ok {
				return cr.Col.ID, true
			}
			return 0, false
		}
	}
	return 0, false
}

func scanColName(s *logical.Scan, id expr.ColumnID) (string, bool) {
	for i, c := range s.Cols {
		if c.ID == id {
			return s.ColNames[i], true
		}
	}
	return "", false
}

func colKind(s *logical.Scan, id expr.ColumnID) types.Kind {
	for _, c := range s.Cols {
		if c.ID == id {
			return c.Type
		}
	}
	return types.KindInt64
}
