package exec

import (
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/optimizer"
	"repro/internal/storage"
	"repro/internal/types"
)

// fixture builds a small catalog + store with a partitioned sales table and
// an item dimension.
func fixture(t *testing.T) *storage.Store {
	t.Helper()
	cat := catalog.New()
	cat.MustAdd(&catalog.Table{
		Name: "sales",
		Columns: []catalog.Column{
			{Name: "s_item", Type: types.KindInt64},
			{Name: "s_store", Type: types.KindInt64},
			{Name: "s_qty", Type: types.KindInt64},
			{Name: "s_price", Type: types.KindFloat64},
			{Name: "s_date", Type: types.KindInt64},
		},
		PartitionColumn: "s_date",
	})
	cat.MustAdd(&catalog.Table{
		Name: "item",
		Columns: []catalog.Column{
			{Name: "i_item", Type: types.KindInt64},
			{Name: "i_brand", Type: types.KindString},
		},
		Keys: [][]string{{"i_item"}},
	})
	st := storage.NewStore(cat)
	var rows [][]types.Value
	// 12 rows across 3 date partitions.
	for i := 0; i < 12; i++ {
		rows = append(rows, []types.Value{
			types.Int(int64(i % 4)),       // item 0..3
			types.Int(int64(i % 2)),       // store 0..1
			types.Int(int64(i)),           // qty
			types.Float(float64(i) * 1.5), // price
			types.Int(int64(i % 3)),       // date partition 0..2
		})
	}
	if err := st.Load("sales", rows); err != nil {
		t.Fatal(err)
	}
	items := [][]types.Value{
		{types.Int(0), types.String("alpha")},
		{types.Int(1), types.String("beta")},
		{types.Int(2), types.String("gamma")},
		{types.Int(3), types.String("delta")},
	}
	if err := st.Load("item", items); err != nil {
		t.Fatal(err)
	}
	return st
}

func scanOf(t *testing.T, st *storage.Store, name string) *logical.Scan {
	t.Helper()
	tab, ok := st.Catalog().Table(name)
	if !ok {
		t.Fatalf("no table %s", name)
	}
	return logical.NewScan(tab)
}

func runPlan(t *testing.T, st *storage.Store, plan logical.Operator) *Result {
	t.Helper()
	if err := logical.Validate(plan); err != nil {
		t.Fatalf("invalid plan: %v\n%s", err, logical.Format(plan))
	}
	res, err := Run(plan, st)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, logical.Format(plan))
	}
	return res
}

func TestScanAllRows(t *testing.T) {
	st := fixture(t)
	res := runPlan(t, st, scanOf(t, st, "sales"))
	if len(res.Rows) != 12 {
		t.Errorf("scan returned %d rows, want 12", len(res.Rows))
	}
	if res.Metrics.Storage.BytesScanned == 0 {
		t.Error("scan must account bytes")
	}
}

func TestFilterAndPartitionPruning(t *testing.T) {
	st := fixture(t)
	full := scanOf(t, st, "sales")
	fullRes := runPlan(t, st, full)

	s := scanOf(t, st, "sales")
	plan := logical.NewFilter(s, expr.Eq(expr.Ref(s.ColumnFor("s_date")), expr.Lit(types.Int(1))))
	res := runPlan(t, st, plan)
	if len(res.Rows) != 4 {
		t.Errorf("filtered rows = %d, want 4", len(res.Rows))
	}
	// Partition pruning must reduce bytes scanned to ~1/3.
	if res.Metrics.Storage.BytesScanned*2 >= fullRes.Metrics.Storage.BytesScanned {
		t.Errorf("pruning ineffective: %d vs full %d",
			res.Metrics.Storage.BytesScanned, fullRes.Metrics.Storage.BytesScanned)
	}
	if res.Metrics.Storage.RowsScanned != 4 {
		t.Errorf("rows scanned = %d, want 4 after pruning", res.Metrics.Storage.RowsScanned)
	}
}

func TestColumnPruningReducesBytes(t *testing.T) {
	st := fixture(t)
	wide := scanOf(t, st, "sales")
	wideRes := runPlan(t, st, wide)

	narrow := scanOf(t, st, "sales")
	narrow.Cols = narrow.Cols[:1]
	narrow.ColNames = narrow.ColNames[:1]
	narrowRes := runPlan(t, st, narrow)
	if narrowRes.Metrics.Storage.BytesScanned >= wideRes.Metrics.Storage.BytesScanned {
		t.Errorf("narrow scan not cheaper: %d vs %d",
			narrowRes.Metrics.Storage.BytesScanned, wideRes.Metrics.Storage.BytesScanned)
	}
}

func TestProjectEvaluation(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	plan := &logical.Project{Input: s, Cols: []logical.Assignment{
		logical.Assign("double_qty", expr.NewBinary(expr.OpMul, expr.Ref(s.ColumnFor("s_qty")), expr.Lit(types.Int(2)))),
	}}
	res := runPlan(t, st, plan)
	var sum int64
	for _, r := range res.Rows {
		sum += r[0].I
	}
	if sum != 2*(0+1+2+3+4+5+6+7+8+9+10+11) {
		t.Errorf("sum of doubled qty = %d", sum)
	}
}

func TestHashJoinInner(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	i := scanOf(t, st, "item")
	join := &logical.Join{Kind: logical.InnerJoin, Left: s, Right: i,
		Cond: expr.Eq(expr.Ref(s.ColumnFor("s_item")), expr.Ref(i.ColumnFor("i_item")))}
	res := runPlan(t, st, join)
	if len(res.Rows) != 12 {
		t.Errorf("join rows = %d, want 12 (every sale matches one item)", len(res.Rows))
	}
	if len(res.Rows[0]) != 7 {
		t.Errorf("join width = %d, want 7", len(res.Rows[0]))
	}
}

func TestHashJoinSemiAndResidual(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	i := scanOf(t, st, "item")
	// Semi join against items with brand >= "beta" lexically.
	semi := &logical.Join{Kind: logical.SemiJoin, Left: s, Right: i,
		Cond: expr.And(
			expr.Eq(expr.Ref(s.ColumnFor("s_item")), expr.Ref(i.ColumnFor("i_item"))),
			expr.NewBinary(expr.OpGe, expr.Ref(i.ColumnFor("i_brand")), expr.Lit(types.String("beta"))),
		)}
	res := runPlan(t, st, semi)
	// items 1 (beta), 2 (gamma), 3 (delta): 9 of 12 sales rows.
	if len(res.Rows) != 9 {
		t.Errorf("semi join rows = %d, want 9", len(res.Rows))
	}
	if len(res.Rows[0]) != 5 {
		t.Errorf("semi join must output left schema only, got width %d", len(res.Rows[0]))
	}
}

func TestLeftJoinNullExtension(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	i := scanOf(t, st, "item")
	// Restrict right side to item 0 only.
	filtered := logical.NewFilter(i, expr.Eq(expr.Ref(i.ColumnFor("i_item")), expr.Lit(types.Int(0))))
	left := &logical.Join{Kind: logical.LeftJoin, Left: s, Right: filtered,
		Cond: expr.Eq(expr.Ref(s.ColumnFor("s_item")), expr.Ref(i.ColumnFor("i_item")))}
	res := runPlan(t, st, left)
	if len(res.Rows) != 12 {
		t.Errorf("left join rows = %d, want 12", len(res.Rows))
	}
	nulls := 0
	for _, r := range res.Rows {
		if r[5].Null {
			nulls++
		}
	}
	if nulls != 9 {
		t.Errorf("null-extended rows = %d, want 9", nulls)
	}
}

func TestCrossJoin(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "item")
	v := logical.NewValuesInt("tag", 1, 2)
	cross := &logical.Join{Kind: logical.CrossJoin, Left: s, Right: v}
	res := runPlan(t, st, cross)
	if len(res.Rows) != 8 {
		t.Errorf("cross join rows = %d, want 8", len(res.Rows))
	}
}

func TestGroupByWithMasks(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	qty := s.ColumnFor("s_qty")
	gb := &logical.GroupBy{
		Input: s,
		Keys:  []*expr.Column{s.ColumnFor("s_store")},
		Aggs: []logical.AggAssign{
			{Col: expr.NewColumn("cnt_small", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggCountStar,
					Mask: expr.NewBinary(expr.OpLt, expr.Ref(qty), expr.Lit(types.Int(6)))}},
			{Col: expr.NewColumn("total", types.KindInt64),
				Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(qty)}},
		},
	}
	res := runPlan(t, st, gb)
	if len(res.Rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		store := r[0].I
		// Stores alternate; each store has qty values store, store+2, ... store+10.
		wantCount := int64(3) // of the 6 rows per store, those with qty<6: qty=store,store+2,store+4
		if r[1].I != wantCount {
			t.Errorf("store %d masked count = %d, want %d", store, r[1].I, wantCount)
		}
		wantTotal := int64(0)
		for q := store; q < 12; q += 2 {
			wantTotal += q
		}
		if r[2].I != wantTotal {
			t.Errorf("store %d total = %d, want %d", store, r[2].I, wantTotal)
		}
	}
}

func TestScalarGroupByOnEmptyInput(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	empty := logical.NewFilter(s, expr.FalseExpr())
	gb := &logical.GroupBy{Input: empty, Aggs: []logical.AggAssign{
		{Col: expr.NewColumn("c", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}},
		{Col: expr.NewColumn("m", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggMax, Arg: expr.Ref(s.ColumnFor("s_qty"))}},
	}}
	res := runPlan(t, st, gb)
	if len(res.Rows) != 1 {
		t.Fatalf("scalar aggregate must emit one row, got %d", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("COUNT over empty = %v, want 0", res.Rows[0][0])
	}
	if !res.Rows[0][1].Null {
		t.Errorf("MAX over empty = %v, want NULL", res.Rows[0][1])
	}
}

func TestMarkDistinct(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	md := &logical.MarkDistinct{Input: s, MarkCol: expr.NewColumn("d", types.KindBool),
		On: []*expr.Column{s.ColumnFor("s_item")}}
	res := runPlan(t, st, md)
	marked := 0
	for _, r := range res.Rows {
		if r[5].IsTrue() {
			marked++
		}
	}
	if marked != 4 {
		t.Errorf("marked rows = %d, want 4 distinct items", marked)
	}
}

func TestWindowPartitionedAvg(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	w := &logical.Window{Input: s, Funcs: []logical.WindowAssign{{
		Col:         expr.NewColumn("avg_qty", types.KindFloat64),
		Agg:         expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.ColumnFor("s_qty"))},
		PartitionBy: []*expr.Column{s.ColumnFor("s_store")},
	}}}
	res := runPlan(t, st, w)
	if len(res.Rows) != 12 {
		t.Fatalf("window must preserve rows, got %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		store := r[1].I
		want := float64(store) + 5 // avg of store, store+2, ..., store+10
		if r[5].F != want {
			t.Errorf("store %d avg = %v, want %v", store, r[5].F, want)
		}
	}
}

func TestUnionAllExec(t *testing.T) {
	st := fixture(t)
	s1, s2 := scanOf(t, st, "item"), scanOf(t, st, "item")
	u := logical.NewUnionAll(
		[]logical.Operator{s1, s2},
		[][]*expr.Column{{s1.ColumnFor("i_item")}, {s2.ColumnFor("i_item")}},
	)
	res := runPlan(t, st, u)
	if len(res.Rows) != 8 {
		t.Errorf("union rows = %d, want 8", len(res.Rows))
	}
}

func TestSortAndLimit(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	sorted := &logical.Sort{Input: s, Keys: []logical.SortKey{{E: expr.Ref(s.ColumnFor("s_qty")), Desc: true}}}
	lim := &logical.Limit{Input: sorted, N: 3}
	res := runPlan(t, st, lim)
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %d", len(res.Rows))
	}
	if res.Rows[0][2].I != 11 || res.Rows[1][2].I != 10 || res.Rows[2][2].I != 9 {
		t.Errorf("descending sort wrong: %v %v %v", res.Rows[0][2], res.Rows[1][2], res.Rows[2][2])
	}
}

func TestEnforceSingleRow(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	gb := &logical.GroupBy{Input: s, Aggs: []logical.AggAssign{
		{Col: expr.NewColumn("c", types.KindInt64), Agg: expr.AggCall{Fn: expr.AggCountStar}},
	}}
	res := runPlan(t, st, &logical.EnforceSingleRow{Input: gb})
	if len(res.Rows) != 1 || res.Rows[0][0].I != 12 {
		t.Errorf("ESR result wrong: %v", res.Rows)
	}
	// Multi-row input must error.
	multi := &logical.EnforceSingleRow{Input: scanOf(t, st, "item")}
	if _, err := Run(multi, st); err == nil {
		t.Error("ESR over multi-row input must fail")
	}
	// Empty input yields one NULL row.
	empty := logical.NewFilter(scanOf(t, st, "item"), expr.FalseExpr())
	res2 := runPlan(t, st, &logical.EnforceSingleRow{Input: empty})
	if len(res2.Rows) != 1 || !res2.Rows[0][0].Null {
		t.Errorf("ESR over empty input should emit NULL row: %v", res2.Rows)
	}
}

// canonical renders a result set order-insensitively for equivalence checks.
func canonical(res *Result) []string {
	lines := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			// Round floats to tolerate summation-order differences.
			if v.Kind == types.KindFloat64 && !v.Null {
				parts[j] = types.Float(float64(int64(v.F*1e6+0.5)) / 1e6).String()
			} else {
				parts[j] = v.String()
			}
		}
		lines[i] = strings.Join(parts, ",")
	}
	sort.Strings(lines)
	return lines
}

// sameResults asserts two results are bag-equal modulo column order given
// explicit projections.
func sameResults(t *testing.T, a, b *Result) {
	t.Helper()
	ca, cb := canonical(a), canonical(b)
	if len(ca) != len(cb) {
		t.Fatalf("row counts differ: %d vs %d", len(ca), len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs:\n  %s\n  %s", i, ca[i], cb[i])
		}
	}
}

// TestFusionPreservesSemanticsUnionAll is the executor-level equivalence
// check for the UnionAll rule: same rows with and without fusion.
func TestFusionPreservesSemanticsUnionAll(t *testing.T) {
	st := fixture(t)
	build := func() logical.Operator {
		mk := func(limit int64) (logical.Operator, *expr.Column) {
			s := scanOf(t, st, "sales")
			f := logical.NewFilter(s, expr.NewBinary(expr.OpGt, expr.Ref(s.ColumnFor("s_qty")), expr.Lit(types.Int(limit))))
			return f, s.ColumnFor("s_item")
		}
		b1, c1 := mk(3)
		b2, c2 := mk(7) // overlapping predicates
		return logical.NewUnionAll([]logical.Operator{b1, b2}, [][]*expr.Column{{c1}, {c2}})
	}
	baselinePlan, _ := optimizer.Optimize(build(), optimizer.Options{EnableFusion: false})
	fusedPlan, trace := optimizer.Optimize(build(), optimizer.DefaultOptions())
	if !trace.Changed("UnionAllFusion") {
		t.Fatalf("fusion did not fire; trace=%v\n%s", trace.Fired, logical.Format(fusedPlan))
	}
	base := runPlan(t, st, baselinePlan)
	fused := runPlan(t, st, fusedPlan)
	sameResults(t, base, fused)
	if fused.Metrics.Storage.BytesScanned >= base.Metrics.Storage.BytesScanned {
		t.Errorf("fused plan should scan fewer bytes: %d vs %d",
			fused.Metrics.Storage.BytesScanned, base.Metrics.Storage.BytesScanned)
	}
}

// TestFusionPreservesSemanticsGroupByJoin checks the window rewrite
// end-to-end against the baseline join-aggregate plan.
func TestFusionPreservesSemanticsGroupByJoin(t *testing.T) {
	st := fixture(t)
	build := func() logical.Operator {
		mkAgg := func() *logical.GroupBy {
			s := scanOf(t, st, "sales")
			return &logical.GroupBy{
				Input: s,
				Keys:  []*expr.Column{s.ColumnFor("s_store"), s.ColumnFor("s_item")},
				Aggs: []logical.AggAssign{{
					Col: expr.NewColumn("revenue", types.KindFloat64),
					Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor("s_price"))},
				}},
			}
		}
		sc := mkAgg()
		sa := mkAgg()
		sb := &logical.GroupBy{
			Input: sa,
			Keys:  []*expr.Column{sa.Keys[0]},
			Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("ave", types.KindFloat64),
				Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(sa.Aggs[0].Col)},
			}},
		}
		join := &logical.Join{Kind: logical.InnerJoin, Left: sc, Right: sb,
			Cond: expr.And(
				expr.Eq(expr.Ref(sc.Keys[0]), expr.Ref(sb.Keys[0])),
				expr.NewBinary(expr.OpGt, expr.Ref(sc.Aggs[0].Col),
					expr.NewBinary(expr.OpMul, expr.Lit(types.Float(0.5)), expr.Ref(sb.Aggs[0].Col))),
			)}
		// Project a stable output (store, item, revenue, ave).
		return &logical.Project{Input: join, Cols: []logical.Assignment{
			logical.Assign("store", expr.Ref(sc.Keys[0])),
			logical.Assign("item", expr.Ref(sc.Keys[1])),
			logical.Assign("revenue", expr.Ref(sc.Aggs[0].Col)),
			logical.Assign("ave", expr.Ref(sb.Aggs[0].Col)),
		}}
	}
	baselinePlan, _ := optimizer.Optimize(build(), optimizer.Options{EnableFusion: false})
	fusedPlan, trace := optimizer.Optimize(build(), optimizer.DefaultOptions())
	if !trace.Changed("GroupByJoinToWindow") {
		t.Fatalf("window rule did not fire; trace=%v\n%s", trace.Fired, logical.Format(fusedPlan))
	}
	base := runPlan(t, st, baselinePlan)
	fused := runPlan(t, st, fusedPlan)
	sameResults(t, base, fused)
	if logical.CountScansOf(fusedPlan, "sales") != 1 {
		t.Errorf("fused plan should scan sales once")
	}
}

// TestFusionPreservesSemanticsScalarAggs checks the JoinOnKeys scalar path.
func TestFusionPreservesSemanticsScalarAggs(t *testing.T) {
	st := fixture(t)
	build := func() logical.Operator {
		mk := func(lo, hi int64, fn expr.AggFunc) logical.Operator {
			s := scanOf(t, st, "sales")
			qty := s.ColumnFor("s_qty")
			f := logical.NewFilter(s, expr.And(
				expr.NewBinary(expr.OpGe, expr.Ref(qty), expr.Lit(types.Int(lo))),
				expr.NewBinary(expr.OpLe, expr.Ref(qty), expr.Lit(types.Int(hi))),
			))
			var agg expr.AggCall
			if fn == expr.AggCountStar {
				agg = expr.AggCall{Fn: fn}
			} else {
				agg = expr.AggCall{Fn: fn, Arg: expr.Ref(s.ColumnFor("s_price"))}
			}
			gb := &logical.GroupBy{Input: f, Aggs: []logical.AggAssign{{
				Col: expr.NewColumn("v", agg.ResultType()), Agg: agg,
			}}}
			return &logical.EnforceSingleRow{Input: gb}
		}
		b1 := mk(0, 5, expr.AggCountStar)
		b2 := mk(0, 5, expr.AggAvg)
		b3 := mk(6, 11, expr.AggAvg)
		return &logical.Join{Kind: logical.CrossJoin,
			Left:  &logical.Join{Kind: logical.CrossJoin, Left: b1, Right: b2},
			Right: b3}
	}
	baselinePlan, _ := optimizer.Optimize(build(), optimizer.Options{EnableFusion: false})
	fusedPlan, trace := optimizer.Optimize(build(), optimizer.DefaultOptions())
	if !trace.Changed("JoinOnKeys") {
		t.Fatalf("JoinOnKeys did not fire; trace=%v", trace.Fired)
	}
	base := runPlan(t, st, baselinePlan)
	fused := runPlan(t, st, fusedPlan)
	sameResults(t, base, fused)
	if base.Metrics.Storage.BytesScanned <= fused.Metrics.Storage.BytesScanned {
		t.Errorf("fused bytes %d should be below baseline %d",
			fused.Metrics.Storage.BytesScanned, base.Metrics.Storage.BytesScanned)
	}
}
