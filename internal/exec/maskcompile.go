package exec

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/types"
	"repro/internal/vec"
)

// bitmapFn is a compiled boolean expression evaluated over the active rows
// of a batch into a vec.Bitmap: bit i holds the three-valued result for
// logical row i (selection order). The closure fully defines out for
// b.Len() rows on every call — callers never pre-reset.
//
// Like batchFns, bitmapFns own scratch state and are bound to one operator
// instance on one goroutine.
type bitmapFn func(b *vec.Batch, out *vec.Bitmap)

// maskEvaluator pairs a bitmapFn with a reusable result bitmap.
type maskEvaluator struct {
	fn bitmapFn
	bm vec.Bitmap
}

func newMaskEvaluator(e expr.Expr, layout map[expr.ColumnID]int) (*maskEvaluator, error) {
	if e == nil {
		return nil, nil
	}
	fn, err := compileBitmapExpr(e, layout)
	if err != nil {
		return nil, fmt.Errorf("exec: bitmap-compiling %s: %w", e, err)
	}
	return &maskEvaluator{fn: fn}, nil
}

// eval evaluates the expression over b's active rows into an internal
// bitmap valid until the next eval call.
func (ev *maskEvaluator) eval(b *vec.Batch) *vec.Bitmap {
	ev.fn(b, &ev.bm)
	return &ev.bm
}

// compileBitmapExpr lowers a boolean expression into a bitmap-producing
// closure. Boolean structure (AND/OR/NOT, IS NULL, comparisons against
// literals or other columns) is compiled natively — intermediates are
// bit-planes combined with word kernels instead of []types.Value vectors.
// Anything else routes through compileBatchExpr and converts the value
// vector once at the boundary, so coverage matches the value engine.
func compileBitmapExpr(e expr.Expr, layout map[expr.ColumnID]int) (bitmapFn, error) {
	switch x := e.(type) {
	case *expr.Literal:
		v := x.Val
		return func(b *vec.Batch, out *vec.Bitmap) {
			out.Reset(b.Len())
			switch {
			case v.Null:
				out.FillNull()
			case v.IsTrue():
				out.FillTrue()
			}
		}, nil

	case *expr.ColumnRef:
		idx, ok := layout[x.Col.ID]
		if !ok {
			return nil, fmt.Errorf("exec: column %s not bound in row layout", x.Col)
		}
		return func(b *vec.Batch, out *vec.Bitmap) {
			col := b.Cols[idx]
			out.Reset(b.Len())
			if b.Sel == nil {
				for i := 0; i < out.Len(); i++ {
					if v := col[i]; v.Null {
						out.SetNull(i)
					} else if v.IsTrue() {
						out.SetTrue(i)
					}
				}
				return
			}
			for i, r := range b.Sel {
				if v := col[r]; v.Null {
					out.SetNull(i)
				} else if v.IsTrue() {
					out.SetTrue(i)
				}
			}
		}, nil

	case *expr.Not:
		inner, err := compileBitmapExpr(x.E, layout)
		if err != nil {
			return nil, err
		}
		return func(b *vec.Batch, out *vec.Bitmap) {
			inner(b, out)
			out.Not()
		}, nil

	case *expr.IsNull:
		if cr, ok := x.E.(*expr.ColumnRef); ok {
			idx, bound := layout[cr.Col.ID]
			if !bound {
				return nil, fmt.Errorf("exec: column %s not bound in row layout", cr.Col)
			}
			neg := x.Neg
			return func(b *vec.Batch, out *vec.Bitmap) {
				col := b.Cols[idx]
				out.Reset(b.Len())
				if b.Sel == nil {
					for i := 0; i < out.Len(); i++ {
						if col[i].Null != neg {
							out.SetTrue(i)
						}
					}
					return
				}
				for i, r := range b.Sel {
					if col[r].Null != neg {
						out.SetTrue(i)
					}
				}
			}, nil
		}
		return compileBitmapFallback(e, layout)

	case *expr.Binary:
		switch {
		case x.Op == expr.OpAnd:
			// Conjuncts drops TRUE literals; an empty list means the AND is
			// vacuously TRUE.
			return compileBitmapNary(expr.Conjuncts(x), layout, (*vec.Bitmap).AndWith, true)
		case x.Op == expr.OpOr:
			return compileBitmapNary(expr.Disjuncts(x), layout, (*vec.Bitmap).OrWith, false)
		case x.Op.IsComparison():
			if fn := compileBitmapCmpColLit(x, layout); fn != nil {
				return fn, nil
			}
			if fn := compileBitmapCmpColCol(x, layout); fn != nil {
				return fn, nil
			}
			return compileBitmapCmpGeneric(x, layout)
		}
		return compileBitmapFallback(e, layout)

	default:
		return compileBitmapFallback(e, layout)
	}
}

// compileBitmapNary folds a flattened AND/OR operand list with a Kleene
// word kernel: the first operand evaluates into out, the rest into a
// scratch bitmap merged in.
func compileBitmapNary(parts []expr.Expr, layout map[expr.ColumnID]int, merge func(*vec.Bitmap, *vec.Bitmap), empty bool) (bitmapFn, error) {
	if len(parts) == 0 {
		return func(b *vec.Batch, out *vec.Bitmap) {
			out.Reset(b.Len())
			if empty {
				out.FillTrue()
			}
		}, nil
	}
	fns := make([]bitmapFn, len(parts))
	for i, p := range parts {
		var err error
		if fns[i], err = compileBitmapExpr(p, layout); err != nil {
			return nil, err
		}
	}
	var scratch vec.Bitmap
	return func(b *vec.Batch, out *vec.Bitmap) {
		fns[0](b, out)
		for _, fn := range fns[1:] {
			fn(b, &scratch)
			merge(out, &scratch)
		}
	}, nil
}

// compileBitmapCmpColLit is the bit-producing twin of compileCmpColLit.
func compileBitmapCmpColLit(x *expr.Binary, layout map[expr.ColumnID]int) bitmapFn {
	op := x.Op
	cr, crOK := x.L.(*expr.ColumnRef)
	lit, litOK := x.R.(*expr.Literal)
	if !crOK || !litOK {
		lit, litOK = x.L.(*expr.Literal)
		cr, crOK = x.R.(*expr.ColumnRef)
		if !crOK || !litOK {
			return nil
		}
		op = flipCmp(op)
	}
	idx, ok := layout[cr.Col.ID]
	if !ok {
		return nil
	}
	c := lit.Val
	if c.Null {
		return func(b *vec.Batch, out *vec.Bitmap) {
			out.Reset(b.Len())
			out.FillNull()
		}
	}
	return func(b *vec.Batch, out *vec.Bitmap) {
		col := b.Cols[idx]
		out.Reset(b.Len())
		if b.Sel == nil {
			for i := 0; i < out.Len(); i++ {
				if v := col[i]; v.Null {
					out.SetNull(i)
				} else if compareSatisfies(op, types.Compare(v, c)) {
					out.SetTrue(i)
				}
			}
			return
		}
		for i, r := range b.Sel {
			if v := col[r]; v.Null {
				out.SetNull(i)
			} else if compareSatisfies(op, types.Compare(v, c)) {
				out.SetTrue(i)
			}
		}
	}
}

// compileBitmapCmpColCol is the bit-producing twin of compileCmpColCol.
func compileBitmapCmpColCol(x *expr.Binary, layout map[expr.ColumnID]int) bitmapFn {
	lcr, lok := x.L.(*expr.ColumnRef)
	rcr, rok := x.R.(*expr.ColumnRef)
	if !lok || !rok {
		return nil
	}
	li, ok := layout[lcr.Col.ID]
	if !ok {
		return nil
	}
	ri, ok := layout[rcr.Col.ID]
	if !ok {
		return nil
	}
	op := x.Op
	return func(b *vec.Batch, out *vec.Bitmap) {
		lcol, rcol := b.Cols[li], b.Cols[ri]
		out.Reset(b.Len())
		if b.Sel == nil {
			for i := 0; i < out.Len(); i++ {
				lv, rv := lcol[i], rcol[i]
				if lv.Null || rv.Null {
					out.SetNull(i)
				} else if compareSatisfies(op, types.Compare(lv, rv)) {
					out.SetTrue(i)
				}
			}
			return
		}
		for i, r := range b.Sel {
			lv, rv := lcol[r], rcol[r]
			if lv.Null || rv.Null {
				out.SetNull(i)
			} else if compareSatisfies(op, types.Compare(lv, rv)) {
				out.SetTrue(i)
			}
		}
	}
}

// compileBitmapCmpGeneric handles comparisons over computed operands by
// materializing both operand vectors and writing bits.
func compileBitmapCmpGeneric(x *expr.Binary, layout map[expr.ColumnID]int) (bitmapFn, error) {
	l, err := compileBatchExpr(x.L, layout)
	if err != nil {
		return nil, err
	}
	r, err := compileBatchExpr(x.R, layout)
	if err != nil {
		return nil, err
	}
	op := x.Op
	var lbuf, rbuf []types.Value
	return func(b *vec.Batch, out *vec.Bitmap) {
		n := b.Len()
		if cap(lbuf) < n {
			lbuf = make([]types.Value, n)
			rbuf = make([]types.Value, n)
		}
		lv, rv := lbuf[:n], rbuf[:n]
		l(b, lv)
		r(b, rv)
		out.Reset(n)
		for i := 0; i < n; i++ {
			a, c := lv[i], rv[i]
			if a.Null || c.Null {
				out.SetNull(i)
			} else if compareSatisfies(op, types.Compare(a, c)) {
				out.SetTrue(i)
			}
		}
	}, nil
}

// compileBitmapFallback evaluates through the value engine and converts at
// the boundary: TRUE bit iff the value IsTrue, NULL bit iff NULL. Non-bool
// non-NULL values land FALSE, matching row-engine mask semantics.
func compileBitmapFallback(e expr.Expr, layout map[expr.ColumnID]int) (bitmapFn, error) {
	fn, err := compileBatchExpr(e, layout)
	if err != nil {
		return nil, err
	}
	var scratch []types.Value
	return func(b *vec.Batch, out *vec.Bitmap) {
		n := b.Len()
		if cap(scratch) < n {
			scratch = make([]types.Value, n)
		}
		sv := scratch[:n]
		fn(b, sv)
		out.Reset(n)
		for i, v := range sv {
			if v.Null {
				out.SetNull(i)
			} else if v.IsTrue() {
				out.SetTrue(i)
			}
		}
	}, nil
}
