package exec

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
	"repro/internal/vec"
)

// maskTestCols builds the column set and layout the family tests share.
func maskTestCols() (a, c, d, flag *expr.Column, layout map[expr.ColumnID]int) {
	a = expr.NewColumn("a", types.KindInt64)
	c = expr.NewColumn("c", types.KindInt64)
	d = expr.NewColumn("d", types.KindFloat64)
	flag = expr.NewColumn("flag", types.KindBool)
	layout = map[expr.ColumnID]int{a.ID: 0, c.ID: 1, d.ID: 2, flag.ID: 3}
	return
}

func randomMaskBatch(rng *rand.Rand, n int) *vec.Batch {
	cols := make([][]types.Value, 4)
	for i := range cols {
		cols[i] = make([]types.Value, n)
	}
	for i := 0; i < n; i++ {
		if rng.Intn(8) == 0 {
			cols[0][i] = types.NullOf(types.KindInt64)
		} else {
			cols[0][i] = types.Int(int64(rng.Intn(100)))
		}
		if rng.Intn(8) == 0 {
			cols[1][i] = types.NullOf(types.KindInt64)
		} else {
			cols[1][i] = types.Int(int64(rng.Intn(100)))
		}
		if rng.Intn(8) == 0 {
			cols[2][i] = types.NullOf(types.KindFloat64)
		} else {
			cols[2][i] = types.Float(rng.Float64() * 100)
		}
		if rng.Intn(8) == 0 {
			cols[3][i] = types.NullOf(types.KindBool)
		} else {
			cols[3][i] = types.Bool(rng.Intn(2) == 0)
		}
	}
	b := vec.NewDense(cols, n)
	if rng.Intn(2) == 0 {
		var sel []int
		for i := 0; i < n; i++ {
			if rng.Intn(3) > 0 {
				sel = append(sel, i)
			}
		}
		if len(sel) > 0 {
			return b.WithSel(sel)
		}
	}
	return b
}

// checkFamilyAgainstRows compares every mask's family truth bitmap against
// the row engine's IsTrue over gathered rows — the ground truth the whole
// mask machinery must match.
func checkFamilyAgainstRows(t *testing.T, masks []expr.Expr, layout map[expr.ColumnID]int, batches []*vec.Batch) {
	t.Helper()
	fam, err := newMaskFamily(masks, layout)
	if err != nil {
		t.Fatal(err)
	}
	rowFns := make([]evalFn, len(masks))
	for mi, m := range masks {
		if rowFns[mi], err = compileExpr(m, layout); err != nil {
			t.Fatal(err)
		}
	}
	for bi, b := range batches {
		truths := fam.eval(b)
		row := make(Row, b.Width())
		for i := 0; i < b.Len(); i++ {
			b.Gather(i, row)
			for mi := range masks {
				want := rowFns[mi](row).IsTrue()
				if truths[mi].True(i) != want {
					t.Fatalf("mask %d (%s) batch %d row %d: family=%v row-engine=%v",
						mi, masks[mi], bi, i, truths[mi].True(i), want)
				}
			}
		}
	}
}

// TestMaskFamilyFactoring pins the shared-prefix factoring: sibling masks
// that share conjuncts (in any operand order) evaluate the shared part
// once, and every mask's bits still match the row engine.
func TestMaskFamilyFactoring(t *testing.T) {
	a, c, _, flag, layout := maskTestCols()
	p := expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(20)))
	q := expr.NewBinary(expr.OpLt, expr.Ref(c), expr.Lit(types.Int(70)))
	r1 := expr.Ref(flag)
	r2 := expr.NewBinary(expr.OpEq, expr.Ref(a), expr.Ref(c))

	masks := []expr.Expr{
		expr.And(p, q, r1),
		expr.And(p, q, r2),
		expr.And(q, p), // commutated: still shares both conjuncts
	}
	fam, err := newMaskFamily(masks, layout)
	if err != nil {
		t.Fatal(err)
	}
	if got := fam.prefixLen(); got != 2 {
		t.Fatalf("prefixLen = %d, want 2 (p and q shared by every mask)", got)
	}
	if len(fam.residFns) != 2 {
		t.Fatalf("residFns = %d, want 2 (r1, r2)", len(fam.residFns))
	}
	if len(fam.maskResids[2]) != 0 {
		t.Fatalf("mask 2 residuals = %v, want none", fam.maskResids[2])
	}

	rng := rand.New(rand.NewSource(7))
	batches := []*vec.Batch{
		randomMaskBatch(rng, 1),
		randomMaskBatch(rng, 63),
		randomMaskBatch(rng, 64),
		randomMaskBatch(rng, 200),
	}
	checkFamilyAgainstRows(t, masks, layout, batches)

	// The shared prefix must have eliminated rows for more than one mask.
	fam.eval(batches[3])
	if fam.hits() == 0 {
		t.Error("prefixHits stayed 0 despite a selective shared prefix")
	}
}

// TestMaskFamilyRandom cross-checks family evaluation against the row
// engine over randomly composed mask sets — including single-mask families
// (the filter path), disjoint families (empty prefix), and masks that
// degenerate to TRUE or contradiction.
func TestMaskFamilyRandom(t *testing.T) {
	a, c, d, flag, layout := maskTestCols()
	pool := []expr.Expr{
		expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(20))),
		expr.NewBinary(expr.OpLe, expr.Ref(c), expr.Lit(types.Int(70))),
		expr.NewBinary(expr.OpLt, expr.Ref(d), expr.Lit(types.Float(50))),
		expr.Ref(flag),
		&expr.Not{E: expr.Ref(flag)},
		expr.NewBinary(expr.OpEq, expr.Ref(a), expr.Ref(c)),
		&expr.IsNull{E: expr.Ref(d)},
		&expr.IsNull{E: expr.Ref(a), Neg: true},
		expr.Or(
			expr.NewBinary(expr.OpLt, expr.Ref(a), expr.Lit(types.Int(10))),
			expr.NewBinary(expr.OpGt, expr.Ref(c), expr.Lit(types.Int(90)))),
		&expr.InList{E: expr.Ref(a), List: []expr.Expr{expr.Lit(types.Int(3)), expr.Lit(types.Int(33))}},
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		nMasks := 1 + rng.Intn(5)
		masks := make([]expr.Expr, nMasks)
		for mi := range masks {
			var conjs []expr.Expr
			for _, p := range pool {
				if rng.Intn(3) == 0 {
					conjs = append(conjs, p)
				}
			}
			masks[mi] = expr.And(conjs...) // empty set yields TRUE
		}
		batches := []*vec.Batch{randomMaskBatch(rng, 1+rng.Intn(150))}
		checkFamilyAgainstRows(t, masks, layout, batches)
	}
}

// TestMaskFamilyScratchReuse evaluates batches of shrinking and growing
// sizes through one family instance: scratch reuse across calls must not
// leak bits between batches.
func TestMaskFamilyScratchReuse(t *testing.T) {
	a, c, _, flag, layout := maskTestCols()
	p := expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(50)))
	masks := []expr.Expr{
		expr.And(p, expr.Ref(flag)),
		expr.And(p, expr.NewBinary(expr.OpLt, expr.Ref(c), expr.Lit(types.Int(30)))),
	}
	rng := rand.New(rand.NewSource(5))
	batches := []*vec.Batch{
		randomMaskBatch(rng, 130),
		randomMaskBatch(rng, 7),
		randomMaskBatch(rng, 130),
		randomMaskBatch(rng, 64),
	}
	checkFamilyAgainstRows(t, masks, layout, batches)
}

// TestCompileAggsCanonicalDedup shows the satellite fix firing: masks that
// are equal only modulo commutativity share one mask slot, and a mask that
// simplifies to TRUE compiles as unmasked.
func TestCompileAggsCanonicalDedup(t *testing.T) {
	a, c, _, _, layout := maskTestCols()
	p := expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(20)))
	q := expr.NewBinary(expr.OpLt, expr.Ref(c), expr.Lit(types.Int(70)))
	aggs := []logical.AggAssign{
		{Col: expr.NewColumn("x", types.KindInt64),
			Agg: expr.AggCall{Fn: expr.AggCountStar, Mask: expr.And(p, q)}},
		{Col: expr.NewColumn("y", types.KindInt64),
			Agg: expr.AggCall{Fn: expr.AggCountStar, Mask: expr.And(q, p)}},
		{Col: expr.NewColumn("z", types.KindInt64),
			Agg: expr.AggCall{Fn: expr.AggCountStar, Mask: expr.Or(p, expr.TrueExpr())}},
	}
	ca, err := compileAggs(aggs, layout)
	if err != nil {
		t.Fatal(err)
	}
	if len(ca.masks) != 1 {
		t.Fatalf("distinct masks = %d, want 1: `p AND q` and `q AND p` must dedup", len(ca.masks))
	}
	if ca.aggs[0].maskIdx != ca.aggs[1].maskIdx {
		t.Errorf("commuted masks got different slots: %d vs %d", ca.aggs[0].maskIdx, ca.aggs[1].maskIdx)
	}
	if ca.aggs[2].maskIdx != -1 {
		t.Errorf("`p OR TRUE` should simplify to an unmasked aggregate, got slot %d", ca.aggs[2].maskIdx)
	}
}

// TestBitmapCompilerMatchesValueCompiler sweeps every boolean expression
// class through both compilers: TRUE bits must equal IsTrue and NULL bits
// must equal Null, dense and under selection.
func TestBitmapCompilerMatchesValueCompiler(t *testing.T) {
	a, c, d, flag, layout := maskTestCols()
	exprs := []expr.Expr{
		expr.Lit(types.Bool(true)),
		expr.Lit(types.Bool(false)),
		expr.Lit(types.NullOf(types.KindBool)),
		expr.Ref(flag),
		&expr.Not{E: expr.Ref(flag)},
		&expr.Not{E: &expr.Not{E: expr.Ref(flag)}},
		&expr.IsNull{E: expr.Ref(a)},
		&expr.IsNull{E: expr.Ref(a), Neg: true},
		&expr.IsNull{E: expr.NewBinary(expr.OpAdd, expr.Ref(a), expr.Ref(c))}, // non-column inner: fallback
		expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(30))),
		expr.NewBinary(expr.OpGt, expr.Lit(types.Int(30)), expr.Ref(a)), // literal-first
		expr.NewBinary(expr.OpEq, expr.Ref(a), expr.Lit(types.NullOf(types.KindInt64))),
		expr.NewBinary(expr.OpLe, expr.Ref(a), expr.Ref(c)),
		expr.NewBinary(expr.OpLt, expr.NewBinary(expr.OpAdd, expr.Ref(a), expr.Ref(c)), expr.Lit(types.Int(80))), // generic cmp
		expr.And(expr.Ref(flag), expr.NewBinary(expr.OpGt, expr.Ref(a), expr.Lit(types.Int(10)))),
		expr.Or(expr.Ref(flag), &expr.IsNull{E: expr.Ref(d)}),
		expr.And(
			expr.Or(expr.Ref(flag), expr.NewBinary(expr.OpLt, expr.Ref(c), expr.Lit(types.Int(40)))),
			&expr.Not{E: &expr.IsNull{E: expr.Ref(a)}},
			expr.NewBinary(expr.OpNe, expr.Ref(a), expr.Ref(c))),
		&expr.InList{E: expr.Ref(a), List: []expr.Expr{expr.Lit(types.Int(5)), expr.Lit(types.Int(50))}}, // fallback
		&expr.Like{E: expr.Lit(types.String("hello")), Pattern: "he%"},                                   // fallback, constant
	}
	rng := rand.New(rand.NewSource(23))
	batches := []*vec.Batch{
		randomMaskBatch(rng, 65),
		randomMaskBatch(rng, 128),
		randomMaskBatch(rng, 9),
	}
	for _, e := range exprs {
		mfn, err := compileBitmapExpr(e, layout)
		if err != nil {
			t.Fatalf("bitmap-compile %s: %v", e, err)
		}
		bfn, err := compileBatchExpr(e, layout)
		if err != nil {
			t.Fatalf("batch-compile %s: %v", e, err)
		}
		for bi, b := range batches {
			var bm vec.Bitmap
			mfn(b, &bm)
			out := make([]types.Value, b.Len())
			bfn(b, out)
			for i := range out {
				if bm.True(i) != out[i].IsTrue() || bm.Null(i) != out[i].Null {
					t.Fatalf("%s batch %d row %d: bitmap (t=%v,n=%v) value %v",
						e, bi, i, bm.True(i), bm.Null(i), out[i])
				}
			}
		}
	}
}
