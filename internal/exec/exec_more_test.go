package exec

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/types"
)

func TestWindowWithMask(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	// AVG of qty over qty>=6 rows only, per store.
	w := &logical.Window{Input: s, Funcs: []logical.WindowAssign{{
		Col: expr.NewColumn("avg_big", types.KindFloat64),
		Agg: expr.AggCall{Fn: expr.AggAvg, Arg: expr.Ref(s.ColumnFor("s_qty")),
			Mask: expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("s_qty")), expr.Lit(types.Int(6)))},
		PartitionBy: []*expr.Column{s.ColumnFor("s_store")},
	}}}
	res := runPlan(t, st, w)
	for _, r := range res.Rows {
		store := r[1].I
		// Store 0 has qty {0,2,4,6,8,10}: masked avg = (6+8+10)/3 = 8.
		// Store 1 has qty {1,3,5,7,9,11}: masked avg = (7+9+11)/3 = 9.
		want := float64(8 + store)
		if r[5].F != want {
			t.Errorf("store %d masked window avg = %v, want %v", store, r[5].F, want)
		}
	}
}

func TestMarkDistinctChainMerged(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	inner := &logical.MarkDistinct{Input: s, MarkCol: expr.NewColumn("d1", types.KindBool),
		On: []*expr.Column{s.ColumnFor("s_item")}}
	outer := &logical.MarkDistinct{Input: inner, MarkCol: expr.NewColumn("d2", types.KindBool),
		On:   []*expr.Column{s.ColumnFor("s_store")},
		Mask: expr.NewBinary(expr.OpGe, expr.Ref(s.ColumnFor("s_qty")), expr.Lit(types.Int(6)))}
	res := runPlan(t, st, outer)
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	d1Marks, d2Marks := 0, 0
	for _, r := range res.Rows {
		if r[5].IsTrue() {
			d1Marks++
		}
		if r[6].IsTrue() {
			d2Marks++
		}
	}
	if d1Marks != 4 {
		t.Errorf("inner marks = %d, want 4 distinct items", d1Marks)
	}
	// Masked outer: first occurrence of each store among qty>=6 rows only.
	if d2Marks != 2 {
		t.Errorf("outer masked marks = %d, want 2 stores", d2Marks)
	}
}

func TestSpoolExecutesOnceAndReplays(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	gb := &logical.GroupBy{Input: s, Keys: []*expr.Column{s.ColumnFor("s_store")},
		Aggs: []logical.AggAssign{{Col: expr.NewColumn("total", types.KindInt64),
			Agg: expr.AggCall{Fn: expr.AggSum, Arg: expr.Ref(s.ColumnFor("s_qty"))}}}}
	producer := &logical.Spool{ID: 1, Producer: gb, Cols: gb.Schema()}
	// The reader occurrence uses fresh column identities, mapped
	// positionally at execution.
	readerCols := []*expr.Column{
		expr.NewColumn("s_store", types.KindInt64),
		expr.NewColumn("total", types.KindInt64),
	}
	reader := &logical.Spool{ID: 1, Cols: readerCols}
	join := &logical.Join{Kind: logical.InnerJoin, Left: producer, Right: reader,
		Cond: expr.Eq(expr.Ref(gb.Keys[0]), expr.Ref(readerCols[0]))}
	res := runPlan(t, st, join)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per store)", len(res.Rows))
	}
	if res.Metrics.SpoolBytesWritten == 0 {
		t.Error("spool write not accounted")
	}
	if res.Metrics.SpoolBytesRead != 2*res.Metrics.SpoolBytesWritten {
		t.Errorf("spool read = %d, want 2x write %d",
			res.Metrics.SpoolBytesRead, res.Metrics.SpoolBytesWritten)
	}
	// The base table must be scanned exactly once.
	if res.Metrics.Storage.RowsScanned != 12 {
		t.Errorf("rows scanned = %d, want 12 (single scan)", res.Metrics.Storage.RowsScanned)
	}
}

func TestSpoolMissingProducerErrors(t *testing.T) {
	st := fixture(t)
	orphan := &logical.Spool{ID: 42, Cols: []*expr.Column{expr.NewColumn("x", types.KindInt64)}}
	if _, err := Run(orphan, st); err == nil {
		t.Error("orphan spool reader must fail")
	}
}

func TestSortNullsLastAscending(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "item")
	// NULL-extend a value via a left join against nothing, then sort.
	empty := logical.NewFilter(scanOf(t, st, "sales"), expr.FalseExpr())
	lj := &logical.Join{Kind: logical.LeftJoin, Left: s, Right: empty,
		Cond: expr.Eq(expr.Ref(s.ColumnFor("i_item")), expr.Ref(empty.Schema()[0]))}
	proj := &logical.Project{Input: lj, Cols: []logical.Assignment{
		logical.Assign("v", &expr.Coalesce{Args: []expr.Expr{expr.Ref(lj.Schema()[2]), expr.Ref(s.ColumnFor("i_item"))}}),
		logical.Assign("n", expr.Ref(lj.Schema()[3])), // always NULL
	}}
	sorted := &logical.Sort{Input: proj, Keys: []logical.SortKey{
		{E: expr.Ref(proj.Cols[1].Col)}, // all NULL: stable no-op
		{E: expr.Ref(proj.Cols[0].Col)},
	}}
	res := runPlan(t, st, sorted)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i-1][0].I > res.Rows[i][0].I {
			t.Errorf("sort order violated at %d", i)
		}
	}
}

func TestNestedLoopNonEquiJoin(t *testing.T) {
	st := fixture(t)
	l := scanOf(t, st, "item")
	r := scanOf(t, st, "item")
	// Band join: i_item < i_item' (pure non-equi → nested loop).
	join := &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r,
		Cond: expr.NewBinary(expr.OpLt, expr.Ref(l.ColumnFor("i_item")), expr.Ref(r.ColumnFor("i_item")))}
	res := runPlan(t, st, join)
	if len(res.Rows) != 6 { // C(4,2)
		t.Errorf("band join rows = %d, want 6", len(res.Rows))
	}
}

func TestConstantKeyHashJoin(t *testing.T) {
	st := fixture(t)
	l := scanOf(t, st, "item")
	r := scanOf(t, st, "item")
	// One side of the equality is a constant expression over the left side.
	join := &logical.Join{Kind: logical.InnerJoin, Left: l, Right: r,
		Cond: expr.Eq(
			expr.NewBinary(expr.OpAdd, expr.Ref(l.ColumnFor("i_item")), expr.Lit(types.Int(1))),
			expr.Ref(r.ColumnFor("i_item")),
		)}
	res := runPlan(t, st, join)
	if len(res.Rows) != 3 { // 0+1=1, 1+1=2, 2+1=3
		t.Errorf("expression-key join rows = %d, want 3", len(res.Rows))
	}
}

func TestLimitZero(t *testing.T) {
	st := fixture(t)
	s := scanOf(t, st, "sales")
	res := runPlan(t, st, &logical.Limit{Input: s, N: 0})
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}
