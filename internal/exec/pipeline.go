package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/expr"
	"repro/internal/logical"
	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// Push-based pipeline fusion. The plan's fusion rewrites merge logical
// operators, but a pull executor un-fuses them again at run time: every
// operator boundary is a virtual NextBatch call and every projection a dense
// batch materialization. This file compiles maximal non-blocking
// Scan→Filter→Project chains into one push-driven loop executed per morsel:
// the chain carries a survivor selection and column references through its
// stages, filters narrow the selection with the mask-family bitmap kernels,
// and projections alias pure column references instead of copying them.
// Pipeline breakers — aggregation finish, sort, join build, window, spool —
// keep their pull implementations and consume fused chains through the
// BatchIterator facade; the scalar-aggregation and sort-run sinks
// (pipesink.go) additionally accept pushed per-morsel sub-batches directly.
//
// Options.PullExec disables all of it, keeping the original pull path alive
// as the differential baseline.

// stageKind discriminates the fused stage forms.
type stageKind uint8

const (
	stageFilter stageKind = iota
	stageProject
)

// stageSpec is the compile-once description of one fused stage; per-worker
// instances are built from it because evaluators own scratch buffers and
// are bound to one goroutine. For filter stages the mask-family factoring
// analysis is itself worker-independent, so it is cached here (famSpec) on
// first instantiation and shared by every later worker — only the bitmap
// closure compilation repeats per worker.
type stageSpec struct {
	kind    stageKind
	cond    expr.Expr            // filter predicate
	assigns []logical.Assignment // project outputs
	layout  map[expr.ColumnID]int
	famSpec *maskFamilySpec // lazily built shared factoring for filter stages
}

// chainSpec is a compiled fusible chain: a scan leaf (with any partition
// pruner peeled from the filter directly above it) plus the fused stages in
// source-to-sink order.
type chainSpec struct {
	scan   *logical.Scan
	prune  storage.Pruner
	stages []stageSpec
	// pruneCond / pruneCol describe the peeled prune predicate (nil when no
	// pruning) for fingerprinting: the chain-shape cache keys ScanPartitions
	// replays on them instead of re-walking partition metadata.
	pruneCond expr.Expr
	pruneCol  *expr.Column
}

// compileChain recognizes a maximal non-blocking chain rooted at op: any
// stack of Filter/Project operators over a Scan leaf. Partition-prune
// peeling matches the pull builder exactly (only the filter directly above
// the scan peels), so both execution models scan identical partitions.
func compileChain(op logical.Operator) (*chainSpec, bool) {
	var rev []stageSpec
	cur := op
	for {
		switch o := cur.(type) {
		case *logical.Scan:
			return finishChain(o, nil, nil, nil, rev), true
		case *logical.Filter:
			if scan, ok := o.Input.(*logical.Scan); ok {
				pruner, pruneCond, pruneCol, residual := splitPartitionPruneCond(scan, o.Cond)
				if pruner != nil {
					if residual != nil {
						rev = append(rev, stageSpec{kind: stageFilter, cond: residual, layout: layoutOf(scan)})
					}
					return finishChain(scan, pruner, pruneCond, pruneCol, rev), true
				}
			}
			rev = append(rev, stageSpec{kind: stageFilter, cond: o.Cond, layout: layoutOf(o.Input)})
			cur = o.Input
		case *logical.Project:
			rev = append(rev, stageSpec{kind: stageProject, assigns: o.Cols, layout: layoutOf(o.Input)})
			cur = o.Input
		default:
			return nil, false
		}
	}
}

func finishChain(scan *logical.Scan, prune storage.Pruner, pruneCond expr.Expr, pruneCol *expr.Column, rev []stageSpec) *chainSpec {
	cs := &chainSpec{scan: scan, prune: prune, pruneCond: pruneCond, pruneCol: pruneCol}
	for i := len(rev) - 1; i >= 0; i-- {
		cs.stages = append(cs.stages, rev[i])
	}
	return cs
}

// pipeStage is one instantiated fused stage. Exactly one of the filter
// fields (fam is the bitmap mask-family kernel, cond the NaiveMasks
// baseline) or the project fields is populated. For projects, projSrc[i]
// >= 0 aliases input column projSrc[i] zero-copy; -1 computes projFns[i].
type pipeStage struct {
	kind    stageKind
	fam     *maskFamily
	cond    *batchEvaluator
	projSrc []int
	projFns []batchFn
}

// newPipeStages instantiates the chain's stages for one goroutine. The
// per-worker calls for one chain all happen sequentially on the coordinator
// goroutine (newChainIterator / the sink constructors), so the famSpec
// cache needs no lock.
func newPipeStages(cs *chainSpec, naiveMasks bool) ([]pipeStage, error) {
	stages := make([]pipeStage, len(cs.stages))
	for si := range cs.stages {
		ss := &cs.stages[si]
		switch ss.kind {
		case stageFilter:
			if naiveMasks {
				ev, err := newBatchEvaluator(ss.cond, ss.layout)
				if err != nil {
					return nil, err
				}
				stages[si] = pipeStage{kind: stageFilter, cond: ev}
			} else {
				if ss.famSpec == nil {
					ss.famSpec = newMaskFamilySpec([]expr.Expr{ss.cond}, ss.layout)
				}
				fam, err := ss.famSpec.instantiate()
				if err != nil {
					return nil, err
				}
				stages[si] = pipeStage{kind: stageFilter, fam: fam}
			}
		case stageProject:
			st := pipeStage{
				kind:    stageProject,
				projSrc: make([]int, len(ss.assigns)),
				projFns: make([]batchFn, len(ss.assigns)),
			}
			for i, a := range ss.assigns {
				if cr, ok := a.E.(*expr.ColumnRef); ok {
					if idx, ok2 := ss.layout[cr.Col.ID]; ok2 {
						st.projSrc[i] = idx
						continue
					}
				}
				st.projSrc[i] = -1
				fn, err := compileBatchExpr(a.E, ss.layout)
				if err != nil {
					return nil, err
				}
				st.projFns[i] = fn
			}
			stages[si] = st
		}
	}
	return stages, nil
}

// runStages pushes one source batch through the fused chain. Each stage
// charges its input rows exactly where the equivalent pull operator would,
// so RowsProcessed is byte-identical to the pull path on fully-consumed
// runs. Returns nil when a filter stage eliminates every row.
//
// Emitted batches never alias stage scratch (selections and computed
// columns are freshly allocated; aliased columns point into the decoded
// partition vectors), so a morsel's whole batch list stays valid while its
// worker reuses the stages on later batches.
func runStages(stages []pipeStage, b *vec.Batch, m *Metrics) *vec.Batch {
	for si := range stages {
		st := &stages[si]
		n := b.Len()
		m.addProcessed(int64(n))
		switch st.kind {
		case stageFilter:
			if st.fam != nil {
				truth := st.fam.eval(b)[0]
				count := truth.Count()
				if count == n && b.Sel == nil {
					break // every row passes: push the batch through untouched
				}
				if count == 0 {
					return nil
				}
				sel := make([]int, 0, count)
				for i := 0; i < n; i++ {
					if truth.True(i) {
						sel = append(sel, b.RowIdx(i))
					}
				}
				b = b.WithSel(sel)
			} else {
				vals := st.cond.eval(b)
				sel := make([]int, 0, n)
				for i := 0; i < n; i++ {
					if vals[i].IsTrue() {
						sel = append(sel, b.RowIdx(i))
					}
				}
				if len(sel) == 0 {
					return nil
				}
				if len(sel) == n && b.Sel == nil {
					break
				}
				b = b.WithSel(sel)
			}
		case stageProject:
			out := make([][]types.Value, len(st.projSrc))
			if b.Sel == nil {
				aliased := false
				for i, src := range st.projSrc {
					if src >= 0 {
						out[i] = b.Cols[src]
						aliased = true
						continue
					}
					col := make([]types.Value, n)
					st.projFns[i](b, col)
					out[i] = col
				}
				if aliased {
					// The pull projector would have copied every aliased
					// column into a fresh dense vector.
					m.addMaterializedSaved(1)
				}
				b = vec.NewDense(out, n)
			} else {
				// Survivors stay a selection: computed columns scatter into
				// physical positions, aliased columns ride along zero-copy,
				// and no dense gather happens at all.
				for i, src := range st.projSrc {
					if src >= 0 {
						out[i] = b.Cols[src]
						continue
					}
					tmp := make([]types.Value, n)
					st.projFns[i](b, tmp)
					col := make([]types.Value, b.N)
					for k, r := range b.Sel {
						col[r] = tmp[k]
					}
					out[i] = col
				}
				m.addMaterializedSaved(1)
				b = &vec.Batch{Cols: out, Sel: b.Sel, N: b.N}
			}
		}
	}
	return b
}

// buildPipeline tries to compile op as a push pipeline. ok=false means the
// operator is not a fusible chain root (or push execution is disabled) and
// the caller should fall through to the pull builders.
func (ex *executor) buildPipeline(op logical.Operator) (BatchIterator, bool, error) {
	if ex.opts.PullExec || ex.noPush > 0 {
		return nil, false, nil
	}
	switch op.(type) {
	case *logical.Filter, *logical.Project:
		// Only chain roots with at least one fusible stage; bare scans keep
		// the existing leaf builders, which are already materialization-free.
	default:
		return nil, false, nil
	}
	cs, ok := compileChain(op)
	if !ok || len(cs.stages) == 0 {
		return nil, false, nil
	}
	it, err := ex.newChainIterator(cs)
	if err != nil {
		return nil, false, err
	}
	return it, true, nil
}

// newChainIterator builds the physical form of a fused chain: morsel-
// parallel push workers when the scan is large enough, a serial fused loop
// otherwise.
func (ex *executor) newChainIterator(cs *chainSpec) (BatchIterator, error) {
	// Compile one stage instance up front so expression errors surface
	// before any goroutine starts; the serial path reuses it.
	stages, err := newPipeStages(cs, ex.opts.NaiveMasks)
	if err != nil {
		return nil, err
	}
	parts, share, err := ex.scanSource(cs.scan, cs.prune)
	if err != nil {
		return nil, err
	}
	ex.configureChainSkip(cs)
	ctrl, _ := ex.lookupScanCtrl(cs.scan)
	ex.metrics.addFusedPipelines(1)
	if ex.opts.Parallelism > 1 {
		morsels := buildMorsels(parts, morselTarget(parts, ex.opts.BatchSize, ex.opts.Parallelism))
		if len(morsels) > 1 {
			it, err := newPipelineIter(ex, cs, morsels, share)
			if err != nil {
				return nil, err
			}
			it.ctrl = ctrl
			ex.closers = append(ex.closers, it.close)
			if share != nil {
				ex.closers = append(ex.closers, share.Close)
			}
			return it, nil
		}
	}
	if share != nil {
		ex.closers = append(ex.closers, share.Close)
	}
	src := &scanIter{cols: cs.scan.ColNames, parts: parts, batchSize: ex.opts.BatchSize, m: ex.metrics, share: share, ctrl: ctrl}
	return &chainIter{src: src, stages: stages, m: ex.metrics, co: batchCoalescer{target: ex.opts.BatchSize}}, nil
}

// batchCoalescer repacks a stream of decoded batches to the nominal batch
// size. Decode batches never span partitions, so date-partitioned facts with
// many small partitions feed the push loop far-below-nominal batches, where
// per-batch costs (mask-family setup, selection builds, evaluator dispatch)
// dominate per-row work. Repacking is one columnar copy per short batch;
// already-full batches pass through untouched, so large partitions and
// BatchSize 1 pay nothing. Row order is preserved exactly — results and
// per-row accounting are unchanged, only batch boundaries move.
type batchCoalescer struct {
	target int
	cols   [][]types.Value
	n      int
}

func (co *batchCoalescer) ensure(width int) {
	if co.cols == nil {
		co.cols = make([][]types.Value, width)
		for c := range co.cols {
			co.cols[c] = make([]types.Value, 0, co.target)
		}
	}
}

func (co *batchCoalescer) take(b *vec.Batch, lo, hi int) {
	co.ensure(len(b.Cols))
	if b.Sel == nil {
		for c := range co.cols {
			co.cols[c] = append(co.cols[c], b.Cols[c][lo:hi]...)
		}
	} else {
		for _, r := range b.Sel[lo:hi] {
			for c := range co.cols {
				co.cols[c] = append(co.cols[c], b.Cols[c][r])
			}
		}
	}
	co.n += hi - lo
}

// add accepts the next source batch and returns a full batch when one is
// ready (nil otherwise). Source batches never exceed the target, so at most
// one batch completes per add.
func (co *batchCoalescer) add(b *vec.Batch) *vec.Batch {
	bn := b.Len()
	if bn == 0 {
		return nil
	}
	if co.n == 0 && bn >= co.target {
		return b
	}
	fill := co.target - co.n
	if fill > bn {
		fill = bn
	}
	co.take(b, 0, fill)
	var out *vec.Batch
	if co.n >= co.target {
		out = co.flush()
	}
	if fill < bn {
		co.take(b, fill, bn)
	}
	return out
}

// flush returns the pending short batch, nil when empty.
func (co *batchCoalescer) flush() *vec.Batch {
	if co.n == 0 {
		return nil
	}
	b := vec.NewDense(co.cols, co.n)
	co.cols, co.n = nil, 0
	return b
}

// chainIter is the serial fused chain: one loop per source batch, no
// intermediate operator boundaries.
type chainIter struct {
	src     BatchIterator
	stages  []pipeStage
	m       *Metrics
	co      batchCoalescer
	srcDone bool
}

func (it *chainIter) NextBatch() (*vec.Batch, error) {
	for {
		var cb *vec.Batch
		if !it.srcDone {
			b, err := it.src.NextBatch()
			if err != nil {
				return nil, err
			}
			if b == nil {
				it.srcDone = true
				cb = it.co.flush()
			} else {
				cb = it.co.add(b)
			}
		}
		if cb == nil {
			if it.srcDone {
				return nil, nil
			}
			continue
		}
		it.m.addPipelineBatches(1)
		if out := runStages(it.stages, cb, it.m); out != nil {
			return out, nil
		}
	}
}

// orderedRun schedules morsels across workers and delivers each morsel's
// result strictly in morsel order — the generalization of the parallel
// scan's delivery discipline that every push pipeline (fused chains and the
// blocking sinks) shares. Workers claim morsel indices from an atomic
// counter; each result travels through a dedicated 1-slot channel so a
// worker always finishes its claimed morsel even if the consumer has gone
// away, and a token semaphore bounds produced-but-unconsumed morsels.
type orderedRun[T any] struct {
	n       int
	workers int
	next    int64
	stop    chan struct{}
	tokens  chan struct{}
	results []chan T
	wg      sync.WaitGroup
	started bool
	mi      int
}

func newOrderedRun[T any](n, workers int) *orderedRun[T] {
	if workers > n {
		workers = n
	}
	r := &orderedRun[T]{
		n:       n,
		workers: workers,
		stop:    make(chan struct{}),
		tokens:  make(chan struct{}, 2*workers),
		results: make([]chan T, n),
	}
	for i := range r.results {
		r.results[i] = make(chan T, 1)
	}
	return r
}

// start launches the workers; work(w, i) processes morsel i on worker w
// (the worker index keys per-worker stage and sink state). Idempotent.
func (r *orderedRun[T]) start(work func(w, i int) T) {
	if r.started {
		return
	}
	r.started = true
	r.wg.Add(r.workers)
	for w := 0; w < r.workers; w++ {
		go func(w int) {
			defer r.wg.Done()
			for {
				select {
				case <-r.stop:
					return
				case r.tokens <- struct{}{}:
				}
				i := int(atomic.AddInt64(&r.next, 1)) - 1
				if i >= r.n {
					<-r.tokens
					return
				}
				r.results[i] <- work(w, i)
			}
		}(w)
	}
}

// recv returns the next morsel's result in order; ok=false at exhaustion.
func (r *orderedRun[T]) recv() (T, bool) {
	var zero T
	if r.mi >= r.n {
		return zero, false
	}
	t := <-r.results[r.mi]
	r.mi++
	<-r.tokens
	return t, true
}

// close stops the workers and waits for in-flight morsels to finish. Safe
// to call before start and more than once.
func (r *orderedRun[T]) close() {
	if !r.started {
		return
	}
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// pipelineIter is the morsel-parallel fused chain: each worker decodes its
// claimed morsel and pushes every batch through its own stage instances in
// one loop, delivering the chain's output batches in morsel order. All
// metric charges (scan output, per-stage inputs) happen worker-side; sums
// are order-independent and every pipeline consumer drains totally, so the
// totals match the pull path exactly.
type pipelineIter struct {
	run       *orderedRun[morselResult]
	morsels   []morsel
	cols      []string
	batchSize int
	m         *Metrics
	pool      *workerPool
	share     *scanshare.Scan
	// ctrl prunes partitions before decode (nil-safe). Workers decide and
	// tally prunes per morsel; the consumer recharges on receipt — pipelines
	// never run under LIMIT, so only the total matters, not the position.
	ctrl    *skipController
	wstages [][]pipeStage

	cur    []*vec.Batch
	curIdx int
}

func newPipelineIter(ex *executor, cs *chainSpec, morsels []morsel, share *scanshare.Scan) (*pipelineIter, error) {
	run := newOrderedRun[morselResult](len(morsels), ex.opts.Parallelism)
	wstages := make([][]pipeStage, run.workers)
	for w := range wstages {
		st, err := newPipeStages(cs, ex.opts.NaiveMasks)
		if err != nil {
			return nil, err
		}
		wstages[w] = st
	}
	return &pipelineIter{
		run: run, morsels: morsels, cols: cs.scan.ColNames,
		batchSize: ex.opts.BatchSize, m: ex.metrics, pool: ex.pool,
		share: share, wstages: wstages,
	}, nil
}

func (it *pipelineIter) work(w, i int) morselResult {
	// The decode and the fused stage loop are the CPU work; they run under
	// one shared pool slot like the pull scan's morsel decode.
	it.pool.acquire()
	defer it.pool.release()
	stages := it.wstages[w]
	var out, src []*vec.Batch
	var err error
	co := batchCoalescer{target: it.batchSize}
	push := func(cb *vec.Batch) {
		it.m.addProcessed(int64(cb.Len()))
		it.m.addPipelineBatches(1)
		if ob := runStages(stages, cb, it.m); ob != nil {
			out = append(out, ob)
		}
	}
	var skipped int64
	for _, p := range it.morsels[i].parts {
		if it.ctrl.shouldPrune(p) {
			skipped += int64(p.NumRows)
			continue
		}
		if src, err = partitionBatches(p, it.cols, it.batchSize, it.share, it.run.stop, it.m, src[:0]); err != nil {
			return morselResult{err: err}
		}
		for _, b := range src {
			if cb := co.add(b); cb != nil {
				push(cb)
			}
		}
	}
	if cb := co.flush(); cb != nil {
		push(cb)
	}
	return morselResult{batches: out, skipped: skipped}
}

func (it *pipelineIter) NextBatch() (*vec.Batch, error) {
	it.run.start(it.work)
	for {
		if it.curIdx < len(it.cur) {
			b := it.cur[it.curIdx]
			it.curIdx++
			return b, nil
		}
		res, ok := it.run.recv()
		if !ok {
			return nil, nil
		}
		if res.err != nil {
			return nil, res.err
		}
		it.ctrl.recharge(res.skipped)
		it.cur, it.curIdx = res.batches, 0
	}
}

func (it *pipelineIter) close() { it.run.close() }
