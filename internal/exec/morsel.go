package exec

import (
	"sync"
	"sync/atomic"

	"repro/internal/scanshare"
	"repro/internal/storage"
	"repro/internal/types"
	"repro/internal/vec"
)

// A morsel is the unit of parallel scan work: a run of consecutive
// partitions totalling roughly morselTarget rows. Workers claim morsels
// from a shared counter (morsel-driven scheduling), decode their column
// chunks into batches, and hand them to the consumer through per-morsel
// slots so the output order — and therefore every downstream result — is
// identical to the serial scan's partition order.
type morsel struct {
	parts []*storage.Partition
}

// buildMorsels groups consecutive partitions until each group holds at
// least target rows. Grouping keeps per-morsel scheduling overhead amortized
// when tables have many small partitions (date-partitioned facts).
func buildMorsels(parts []*storage.Partition, target int) []morsel {
	var out []morsel
	var cur []*storage.Partition
	rows := 0
	for _, p := range parts {
		cur = append(cur, p)
		rows += p.NumRows
		if rows >= target {
			out = append(out, morsel{parts: cur})
			cur, rows = nil, 0
		}
	}
	if len(cur) > 0 {
		out = append(out, morsel{parts: cur})
	}
	return out
}

// morselTarget picks the morsel size: large enough to amortize channel and
// decode-setup overhead (at least one batch), small enough to keep every
// worker busy (~4 morsels per worker when the table is large).
func morselTarget(parts []*storage.Partition, batchSize, parallelism int) int {
	total := 0
	for _, p := range parts {
		total += p.NumRows
	}
	target := total / (parallelism * 4)
	if target < batchSize {
		target = batchSize
	}
	return target
}

// partitionBatches decodes one partition's columns in a single pass each —
// through the scan-share session when one is open — and slices the vectors
// into dense batches (zero-copy subslices). stop abandons waits on other
// queries' in-flight decodes when this query goes away early.
func partitionBatches(p *storage.Partition, cols []string, batchSize int, share *scanshare.Scan, stop <-chan struct{}, m *Metrics, dst []*vec.Batch) ([]*vec.Batch, error) {
	decoded, err := decodePartition(p, cols, share, stop, m)
	if err != nil {
		return nil, err
	}
	for lo := 0; lo < p.NumRows; lo += batchSize {
		hi := lo + batchSize
		if hi > p.NumRows {
			hi = p.NumRows
		}
		bcols := make([][]types.Value, len(decoded))
		for c := range decoded {
			bcols[c] = decoded[c][lo:hi]
		}
		dst = append(dst, vec.NewDense(bcols, hi-lo))
	}
	return dst, nil
}

// morselItem is one in-order element of a scanned morsel: a decoded batch,
// or a marker for a pruned partition (b nil, skip its row count). Markers
// keep the as-if-scanned RowsProcessed recharge at the exact stream
// position the partition's batches would have occupied, which is what
// makes pruning invisible to LIMIT truncation.
type morselItem struct {
	b    *vec.Batch
	skip int64
}

type morselResult struct {
	batches []*vec.Batch
	items   []morselItem
	// skipped totals pruned rows of a pipeline morsel (recharged by the
	// pipeline consumer when the result is received).
	skipped int64
	err     error
}

// parallelScanIter is the morsel-parallel scan leaf. Workers race down the
// morsel list; each morsel's batches are delivered through a dedicated
// 1-slot channel and consumed strictly in morsel order. A token semaphore
// bounds decoded-but-unconsumed morsels so a fast scan cannot buffer the
// whole table, and close() releases the pool even when the consumer stops
// early (LIMIT) or the query errors.
type parallelScanIter struct {
	cols      []string
	morsels   []morsel
	batchSize int
	workers   int
	m         *Metrics
	pool      *workerPool
	// share, when non-nil, routes partition decodes through the cross-query
	// scan-share session (set by buildScan before the first NextBatch).
	share *scanshare.Scan
	// ctrl prunes partitions before decode (set by buildScan; nil-safe).
	// Workers decide prunes; the consumer applies the recharge in order.
	ctrl *skipController

	started bool
	next    int64
	stop    chan struct{}
	tokens  chan struct{}
	results []chan morselResult
	wg      sync.WaitGroup

	mi     int
	cur    []morselItem
	curIdx int
}

func newParallelScan(cols []string, morsels []morsel, batchSize, workers int, m *Metrics, pool *workerPool) *parallelScanIter {
	if workers > len(morsels) {
		workers = len(morsels)
	}
	it := &parallelScanIter{
		cols:      cols,
		morsels:   morsels,
		batchSize: batchSize,
		workers:   workers,
		m:         m,
		pool:      pool,
		stop:      make(chan struct{}),
		tokens:    make(chan struct{}, 2*workers),
		results:   make([]chan morselResult, len(morsels)),
	}
	for i := range it.results {
		it.results[i] = make(chan morselResult, 1)
	}
	return it
}

func (it *parallelScanIter) start() {
	it.started = true
	it.wg.Add(it.workers)
	for w := 0; w < it.workers; w++ {
		go it.worker()
	}
}

func (it *parallelScanIter) worker() {
	defer it.wg.Done()
	for {
		select {
		case <-it.stop:
			return
		case it.tokens <- struct{}{}:
		}
		i := int(atomic.AddInt64(&it.next, 1)) - 1
		if i >= len(it.morsels) {
			<-it.tokens
			return
		}
		// The decode is the CPU work; it runs under a shared pool slot so
		// scan leaves and the blocking operators above them together never
		// exceed Parallelism concurrent workers.
		it.pool.acquire()
		var items []morselItem
		var err error
		for _, p := range it.morsels[i].parts {
			if it.ctrl.shouldPrune(p) {
				items = append(items, morselItem{skip: int64(p.NumRows)})
				continue
			}
			var batches []*vec.Batch
			if batches, err = partitionBatches(p, it.cols, it.batchSize, it.share, it.stop, it.m, nil); err != nil {
				break
			}
			for _, b := range batches {
				items = append(items, morselItem{b: b})
			}
		}
		it.pool.release()
		// Capacity-1 channel: the send never blocks, so a worker always
		// finishes its claimed morsel even if the consumer has gone away.
		it.results[i] <- morselResult{items: items, err: err}
	}
}

func (it *parallelScanIter) NextBatch() (*vec.Batch, error) {
	if !it.started {
		it.start()
	}
	for {
		if it.curIdx < len(it.cur) {
			item := it.cur[it.curIdx]
			it.curIdx++
			if item.b == nil {
				// Pruned partition: recharge exactly where its batches would
				// have been consumed.
				it.ctrl.recharge(item.skip)
				continue
			}
			it.m.addProcessed(int64(item.b.Len()))
			return item.b, nil
		}
		if it.mi >= len(it.morsels) {
			return nil, nil
		}
		res := <-it.results[it.mi]
		it.mi++
		<-it.tokens
		if res.err != nil {
			return nil, res.err
		}
		it.cur, it.curIdx = res.items, 0
	}
}

// close signals the workers to drain and waits for in-flight decodes to
// finish, so no worker touches storage metrics after close returns. Safe to
// call before the first NextBatch; the executor's close guard ensures it
// runs exactly once per Run.
func (it *parallelScanIter) close() {
	if it.started {
		close(it.stop)
		it.wg.Wait()
	}
}
